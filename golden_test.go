package repro

import "testing"

// Golden regression tests: with a fixed seed every run in this repository
// is fully deterministic, so exact outputs are stable across platforms and
// guard against accidental drift in the RNG, the engine's delivery order,
// or the protocols. If a deliberate protocol change shifts these values,
// re-derive them and update — the point is that such shifts are always
// deliberate.

func TestGoldenArbMIS(t *testing.T) {
	g := UnionOfTrees(1000, 2, 42)
	if g.M() != 1997 {
		t.Fatalf("generator drift: m = %d, want 1997", g.M())
	}
	out, err := ComputeMIS(g, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.MISSize() != 373 || out.TotalRounds() != 20 {
		t.Fatalf("|MIS|=%d rounds=%d, want 373/20", out.MISSize(), out.TotalRounds())
	}
}

func TestGoldenMetivier(t *testing.T) {
	g := UnionOfTrees(1000, 2, 42)
	set, res, err := Metivier(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	size := 0
	for _, b := range set {
		if b {
			size++
		}
	}
	if size != 373 || res.Rounds != 10 || res.Messages != 8900 {
		t.Fatalf("got size=%d rounds=%d messages=%d, want 373/10/8900", size, res.Rounds, res.Messages)
	}
}

func TestGoldenLubyB(t *testing.T) {
	g := UnionOfTrees(1000, 2, 42)
	set, res, err := LubyB(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	size := 0
	for _, b := range set {
		if b {
			size++
		}
	}
	if size != 364 || res.Rounds != 17 {
		t.Fatalf("got size=%d rounds=%d, want 364/17", size, res.Rounds)
	}
}

func TestGoldenMatching(t *testing.T) {
	g := UnionOfTrees(1000, 2, 42)
	partners, res, err := MaximalMatching(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pairs := 0
	for _, p := range partners {
		if p != MatchingUnmatched {
			pairs++
		}
	}
	if pairs/2 != 427 || res.Rounds != 23 {
		t.Fatalf("got pairs=%d rounds=%d, want 427/23", pairs/2, res.Rounds)
	}
}

func TestGoldenTreeMIS(t *testing.T) {
	tr := RandomTree(512, 7)
	out, err := TreeMIS(tr, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.MISSize() != 257 || out.TotalRounds() != 35 {
		t.Fatalf("got |MIS|=%d rounds=%d, want 257/35", out.MISSize(), out.TotalRounds())
	}
}
