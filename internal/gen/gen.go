// Package gen provides the graph generators used by the experiments: the
// bounded-arboricity families the paper targets (trees, forests,
// union-of-forests, planar grids, k-trees, geometric graphs) plus the dense
// baselines (G(n,p), preferential attachment) used to show where the
// shattering algorithm's poly(α) cost stops paying off.
//
// Every generator is deterministic given an *rng.RNG and returns a simple
// graph; arboricity-sensitive generators document the bound they guarantee.
package gen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Path returns the path graph on n vertices (arboricity 1).
func Path(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, maxInt(0, n-1))
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	return graph.MustNew(n, edges)
}

// Cycle returns the cycle graph on n >= 3 vertices (arboricity 2, barely).
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: cycle needs n >= 3")
	}
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: (i + 1) % n})
	}
	return graph.MustNew(n, edges)
}

// Star returns the star K_{1,n-1}: vertex 0 adjacent to all others
// (arboricity 1, maximum degree n-1). Stars stress the ρ_k opt-out: the
// center is a high-degree parent of every leaf.
func Star(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, maxInt(0, n-1))
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: i})
	}
	return graph.MustNew(n, edges)
}

// CompleteBinaryTree returns the complete binary tree on n vertices with
// the standard heap numbering (arboricity 1).
func CompleteBinaryTree(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, maxInt(0, n-1))
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: (i - 1) / 2})
	}
	return graph.MustNew(n, edges)
}

// RandomTree returns a uniformly random labeled tree on n vertices via a
// random Prüfer sequence (arboricity 1). Uniformity over all n^(n-2)
// labeled trees is what makes tree experiments representative of
// "unoriented trees" in the Lenzen-Wattenhofer sense rather than of one
// topology.
func RandomTree(n int, r *rng.RNG) *graph.Graph {
	if n <= 0 {
		return graph.MustNew(maxInt(n, 0), nil)
	}
	if n <= 2 {
		if n == 2 {
			return graph.MustNew(2, []graph.Edge{{U: 0, V: 1}})
		}
		return graph.MustNew(n, nil)
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = r.Intn(n)
	}
	return fromPrufer(n, prufer)
}

// fromPrufer decodes a Prüfer sequence into its labeled tree.
func fromPrufer(n int, prufer []int) *graph.Graph {
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, v := range prufer {
		deg[v]++
	}
	// Min-heap-free decoding: maintain the smallest leaf pointer.
	edges := make([]graph.Edge, 0, n-1)
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		edges = append(edges, graph.Edge{U: leaf, V: v})
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	edges = append(edges, graph.Edge{U: leaf, V: n - 1})
	return graph.MustNew(n, edges)
}

// Caterpillar returns a caterpillar tree: a spine of length spine with legs
// legs attached to each spine vertex (arboricity 1). Caterpillars are the
// canonical hard case for naive tree MIS analyses because spine vertices
// share many leaf children.
func Caterpillar(spine, legs int) *graph.Graph {
	if spine <= 0 {
		return graph.MustNew(0, nil)
	}
	n := spine * (1 + legs)
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < spine; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			edges = append(edges, graph.Edge{U: i, V: next})
			next++
		}
	}
	return graph.MustNew(n, edges)
}

// UnionOfTrees returns a graph that is the union of alpha independent
// uniformly random spanning trees on the same vertex set. Its arboricity is
// at most alpha by construction (each tree is a forest); duplicate edges
// between trees are merged, so the edge count can be slightly below
// alpha·(n-1). This is the workhorse arboricity-α family for the
// experiments.
func UnionOfTrees(n, alpha int, r *rng.RNG) *graph.Graph {
	if alpha <= 0 {
		panic("gen: UnionOfTrees needs alpha >= 1")
	}
	var edges []graph.Edge
	for t := 0; t < alpha; t++ {
		tree := RandomTree(n, r.Split(uint64(t)))
		edges = append(edges, tree.Edges()...)
	}
	return graph.MustNew(n, edges)
}

// Grid returns the rows×cols grid graph (planar, arboricity 2).
func Grid(rows, cols int) *graph.Graph {
	n := rows * cols
	var edges []graph.Edge
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return graph.MustNew(n, edges)
}

// Torus returns the rows×cols torus (4-regular for rows,cols >= 3,
// arboricity at most 3).
func Torus(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic("gen: torus needs rows, cols >= 3")
	}
	n := rows * cols
	var edges []graph.Edge
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			edges = append(edges,
				graph.Edge{U: id(r, c), V: id(r, (c+1)%cols)},
				graph.Edge{U: id(r, c), V: id((r+1)%rows, c)},
			)
		}
	}
	return graph.MustNew(n, edges)
}

// KTree returns a random k-tree on n >= k+1 vertices: start from K_{k+1}
// and repeatedly attach a new vertex to a random existing k-clique.
// k-trees have treewidth exactly k and arboricity at most k (they are
// k-degenerate).
func KTree(n, k int, r *rng.RNG) *graph.Graph {
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("gen: KTree requires 1 <= k < n, got n=%d k=%d", n, k))
	}
	var edges []graph.Edge
	// cliques holds k-subsets eligible for attachment.
	var cliques [][]int
	base := make([]int, k+1)
	for i := range base {
		base[i] = i
	}
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
		// Each k-subset of the base clique is eligible.
		sub := make([]int, 0, k)
		for j := 0; j <= k; j++ {
			if j != i {
				sub = append(sub, j)
			}
		}
		cliques = append(cliques, sub)
	}
	for v := k + 1; v < n; v++ {
		c := cliques[r.Intn(len(cliques))]
		for _, u := range c {
			edges = append(edges, graph.Edge{U: v, V: u})
		}
		// New eligible cliques: v plus each (k-1)-subset of c.
		for skip := 0; skip < k; skip++ {
			sub := make([]int, 0, k)
			sub = append(sub, v)
			for j, u := range c {
				if j != skip {
					sub = append(sub, u)
				}
			}
			cliques = append(cliques, sub)
		}
	}
	return graph.MustNew(n, edges)
}

// GNP returns an Erdős–Rényi G(n, p) graph. For p well above log(n)/n this
// family has arboricity Θ(np) and is the regime where the paper concedes
// Ghaffari/Luby win.
func GNP(n int, p float64, r *rng.RNG) *graph.Graph {
	var edges []graph.Edge
	if p >= 1 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, graph.Edge{U: i, V: j})
			}
		}
		return graph.MustNew(n, edges)
	}
	if p <= 0 {
		return graph.MustNew(n, nil)
	}
	// Batagelj–Brandes geometric skipping over pairs (j, i) with j < i:
	// O(n + m) expected time instead of O(n²).
	logq := math.Log(1 - p)
	i, j := 1, -1
	for i < n {
		skip := int(math.Floor(math.Log(1-r.Float64()) / logq))
		j += 1 + skip
		for j >= i && i < n {
			j -= i
			i++
		}
		if i < n {
			edges = append(edges, graph.Edge{U: j, V: i})
		}
	}
	return graph.MustNew(n, edges)
}

// RandomGeometric returns a random geometric graph: n points uniform in the
// unit square, edges between pairs at distance <= radius. RGGs model the
// wireless/sensor deployments that motivate distributed MIS (cluster-head
// election); for radius ~ c/√n the expected degree — and hence arboricity —
// is O(c²). It also returns the point coordinates for the sensor example.
func RandomGeometric(n int, radius float64, r *rng.RNG) (*graph.Graph, [][2]float64) {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{r.Float64(), r.Float64()}
	}
	// Grid-bucket the points so neighbor search is O(n) for radius ~ 1/√n.
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	bucket := make(map[[2]int][]int)
	cellOf := func(p [2]float64) [2]int {
		cx := int(p[0] * float64(cells))
		cy := int(p[1] * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for i, p := range pts {
		c := cellOf(p)
		bucket[c] = append(bucket[c], i)
	}
	r2 := radius * radius
	var edges []graph.Edge
	for i, p := range pts {
		c := cellOf(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bucket[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= i {
						continue
					}
					ddx, ddy := p[0]-pts[j][0], p[1]-pts[j][1]
					if ddx*ddx+ddy*ddy <= r2 {
						edges = append(edges, graph.Edge{U: i, V: j})
					}
				}
			}
		}
	}
	return graph.MustNew(n, edges), pts
}

// PreferentialAttachment returns a Barabási–Albert graph: each new vertex
// attaches m edges to existing vertices chosen proportionally to degree.
// Arboricity is at most m (it is m-degenerate by construction); the degree
// distribution is heavy-tailed, exercising the high-degree opt-out.
func PreferentialAttachment(n, m int, r *rng.RNG) *graph.Graph {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("gen: PreferentialAttachment requires 1 <= m < n, got n=%d m=%d", n, m))
	}
	var edges []graph.Edge
	// endpoints doubles as the degree-proportional sampling urn.
	var endpoints []int
	// Seed: star on m+1 vertices.
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: i, V: m})
		endpoints = append(endpoints, i, m)
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			u := endpoints[r.Intn(len(endpoints))]
			if u != v {
				chosen[u] = true
			}
		}
		targets := make([]int, 0, m)
		for u := range chosen {
			targets = append(targets, u)
		}
		sort.Ints(targets) // determinism: map iteration order is random
		for _, u := range targets {
			edges = append(edges, graph.Edge{U: v, V: u})
			endpoints = append(endpoints, v, u)
		}
	}
	return graph.MustNew(n, edges)
}

// RandomForest returns a forest of roughly `trees` uniformly random trees
// partitioning n vertices (arboricity 1, disconnected).
func RandomForest(n, trees int, r *rng.RNG) *graph.Graph {
	if trees < 1 {
		panic("gen: RandomForest needs trees >= 1")
	}
	if trees > n {
		trees = n
	}
	// Split n vertices into `trees` contiguous blocks of near-equal size.
	var edges []graph.Edge
	start := 0
	for t := 0; t < trees; t++ {
		size := n / trees
		if t < n%trees {
			size++
		}
		sub := RandomTree(size, r.Split(uint64(t)))
		for _, e := range sub.Edges() {
			edges = append(edges, graph.Edge{U: e.U + start, V: e.V + start})
		}
		start += size
	}
	return graph.MustNew(n, edges)
}

// Hypercube returns the d-dimensional hypercube graph on 2^d vertices
// (d-regular, arboricity ⌈d/2⌉ + small).
func Hypercube(d int) *graph.Graph {
	if d < 0 || d > 24 {
		panic("gen: hypercube dimension out of range")
	}
	n := 1 << d
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << b)
			if v < w {
				edges = append(edges, graph.Edge{U: v, V: w})
			}
		}
	}
	return graph.MustNew(n, edges)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Relabel returns an isomorphic copy of g with vertex v renamed to
// perm[v]. perm must be a permutation of 0..n-1. Relabeling is how the
// tests check that algorithm guarantees do not secretly depend on the ID
// assignment (IDs are only ever used for tie-breaking). It delegates to
// graph.Relabel, the direct CSR rebuild the engine's layout pass uses.
func Relabel(g *graph.Graph, perm []int) (*graph.Graph, error) {
	return graph.Relabel(g, perm)
}

// RandomRegular returns a random d-regular graph on n vertices via the
// configuration model with retries: d half-edges per vertex are paired
// uniformly; pairings with self-loops or duplicate edges are rejected and
// retried (fast for the small d used here). n·d must be even and d < n.
// Random regular graphs are expanders whp — the opposite extreme from the
// bounded-arboricity families, useful as a dense control in experiments.
func RandomRegular(n, d int, r *rng.RNG) *graph.Graph {
	if d < 0 || d >= n || (n*d)%2 != 0 {
		panic(fmt.Sprintf("gen: RandomRegular requires 0 <= d < n and even n·d, got n=%d d=%d", n, d))
	}
	if d == 0 {
		return graph.MustNew(n, nil)
	}
	stubs := make([]int, 0, n*d)
	for attempt := 0; ; attempt++ {
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		r.Shuffle(stubs)
		edges := make([]graph.Edge, 0, len(stubs)/2)
		ok := true
		seen := make(map[[2]int]bool, len(stubs)/2)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			if u > v {
				u, v = v, u
			}
			key := [2]int{u, v}
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
			edges = append(edges, graph.Edge{U: u, V: v})
		}
		if ok {
			return graph.MustNew(n, edges)
		}
		if attempt > 1000*n {
			panic("gen: RandomRegular failed to converge (d too large for rejection sampling)")
		}
	}
}
