package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestPath(t *testing.T) {
	g := Path(10)
	if g.N() != 10 || g.M() != 9 || !g.IsForest() {
		t.Fatalf("path: n=%d m=%d forest=%v", g.N(), g.M(), g.IsForest())
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("path maxdeg = %d", g.MaxDegree())
	}
}

func TestPathTiny(t *testing.T) {
	if Path(0).N() != 0 || Path(1).N() != 1 || Path(1).M() != 0 {
		t.Fatal("tiny paths wrong")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(7)
	if g.N() != 7 || g.M() != 7 || g.IsForest() {
		t.Fatal("cycle wrong")
	}
	_, count := g.Components()
	if count != 1 {
		t.Fatal("cycle disconnected")
	}
}

func TestCyclePanicsSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Cycle(2)
}

func TestStar(t *testing.T) {
	g := Star(50)
	if g.Degree(0) != 49 {
		t.Fatalf("center degree %d", g.Degree(0))
	}
	if !g.IsForest() {
		t.Fatal("star should be a tree")
	}
	lo, hi := g.ArboricityBounds()
	if lo != 1 || hi != 1 {
		t.Fatalf("star arboricity [%d,%d]", lo, hi)
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(15)
	if g.M() != 14 || !g.IsForest() {
		t.Fatal("binary tree wrong")
	}
	if g.Degree(0) != 2 {
		t.Fatalf("root degree %d", g.Degree(0))
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("maxdeg %d", g.MaxDegree())
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 3, 10, 100, 1000} {
		g := RandomTree(n, r.Split(uint64(n)))
		if g.N() != n {
			t.Fatalf("n=%d: got %d vertices", n, g.N())
		}
		if n > 0 && g.M() != n-1 {
			t.Fatalf("n=%d: %d edges", n, g.M())
		}
		if !g.IsForest() {
			t.Fatalf("n=%d: not a forest", n)
		}
		if n > 0 {
			if _, count := g.Components(); count != 1 {
				t.Fatalf("n=%d: disconnected", n)
			}
		}
	}
}

func TestRandomTreeDeterministic(t *testing.T) {
	a := RandomTree(100, rng.New(42))
	b := RandomTree(100, rng.New(42))
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed, different trees")
		}
	}
}

func TestRandomTreeVariety(t *testing.T) {
	// Different seeds should (almost surely) give different trees.
	a := RandomTree(50, rng.New(1))
	b := RandomTree(50, rng.New(2))
	same := true
	ea, eb := a.Edges(), b.Edges()
	if len(ea) == len(eb) {
		for i := range ea {
			if ea[i] != eb[i] {
				same = false
				break
			}
		}
	} else {
		same = false
	}
	if same {
		t.Fatal("two seeds produced identical trees")
	}
}

func TestRandomTreePruferProperty(t *testing.T) {
	// quick.Check: any random tree is connected and acyclic.
	r := rng.New(3)
	if err := quick.Check(func(seed uint64) bool {
		n := 3 + int(seed%200)
		g := RandomTree(n, r.Split(seed))
		_, count := g.Components()
		return g.M() == n-1 && count == 1
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.N() != 20 || g.M() != 19 || !g.IsForest() {
		t.Fatalf("caterpillar n=%d m=%d", g.N(), g.M())
	}
	if Caterpillar(0, 3).N() != 0 {
		t.Fatal("empty caterpillar")
	}
}

func TestUnionOfTreesArboricity(t *testing.T) {
	r := rng.New(5)
	for alpha := 1; alpha <= 5; alpha++ {
		g := UnionOfTrees(200, alpha, r.Split(uint64(alpha)))
		lo, hi := g.ArboricityBounds()
		if lo > alpha {
			t.Fatalf("alpha=%d: lower bound %d exceeds construction", alpha, lo)
		}
		// Degeneracy of a union of alpha forests is < 2*alpha.
		if hi >= 2*alpha+1 {
			t.Fatalf("alpha=%d: upper bound %d too large", alpha, hi)
		}
		if g.M() > alpha*(g.N()-1) {
			t.Fatalf("alpha=%d: too many edges %d", alpha, g.M())
		}
	}
}

func TestUnionOfTreesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UnionOfTrees(10, 0, rng.New(1))
}

func TestGrid(t *testing.T) {
	g := Grid(4, 5)
	if g.N() != 20 {
		t.Fatalf("n = %d", g.N())
	}
	// Grid edges: rows*(cols-1) + (rows-1)*cols = 4*4 + 3*5 = 31.
	if g.M() != 31 {
		t.Fatalf("m = %d", g.M())
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("maxdeg = %d", g.MaxDegree())
	}
	lo, hi := g.ArboricityBounds()
	if lo < 1 || hi > 3 {
		t.Fatalf("grid arboricity bounds [%d,%d]", lo, hi)
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("torus n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus not 4-regular at %d", v)
		}
	}
}

func TestKTree(t *testing.T) {
	r := rng.New(7)
	for _, k := range []int{1, 2, 3} {
		g := KTree(100, k, r.Split(uint64(k)))
		if g.N() != 100 {
			t.Fatalf("k=%d n=%d", k, g.N())
		}
		// k-tree on n vertices has k*n - k(k+1)/2 edges.
		want := k*100 - k*(k+1)/2
		if g.M() != want {
			t.Fatalf("k=%d: m=%d want %d", k, g.M(), want)
		}
		_, hi := g.ArboricityBounds()
		if hi > k {
			t.Fatalf("k=%d: degeneracy %d > k", k, hi)
		}
	}
}

func TestKTreeK1IsTree(t *testing.T) {
	g := KTree(50, 1, rng.New(9))
	if !g.IsForest() {
		t.Fatal("1-tree should be a tree")
	}
}

func TestGNPEdgeCount(t *testing.T) {
	r := rng.New(11)
	n, p := 300, 0.1
	g := GNP(n, p, r)
	want := p * float64(n*(n-1)/2)
	got := float64(g.M())
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Fatalf("GNP edge count %v, want ~%v", got, want)
	}
}

func TestGNPExtremes(t *testing.T) {
	r := rng.New(12)
	if GNP(10, 0, r).M() != 0 {
		t.Fatal("GNP(p=0) has edges")
	}
	if GNP(10, 1, r).M() != 45 {
		t.Fatal("GNP(p=1) not complete")
	}
}

func TestGNPValidEdges(t *testing.T) {
	r := rng.New(13)
	g := GNP(50, 0.2, r)
	for _, e := range g.Edges() {
		if e.U < 0 || e.V >= 50 || e.U >= e.V {
			t.Fatalf("bad edge %v", e)
		}
	}
}

func TestRandomGeometric(t *testing.T) {
	r := rng.New(14)
	g, pts := RandomGeometric(500, 0.08, r)
	if g.N() != 500 || len(pts) != 500 {
		t.Fatal("RGG size wrong")
	}
	// Verify against brute force.
	r2 := 0.08 * 0.08
	m := 0
	for i := 0; i < 500; i++ {
		for j := i + 1; j < 500; j++ {
			dx, dy := pts[i][0]-pts[j][0], pts[i][1]-pts[j][1]
			if dx*dx+dy*dy <= r2 {
				m++
				if !g.HasEdge(i, j) {
					t.Fatalf("missing edge (%d,%d)", i, j)
				}
			}
		}
	}
	if m != g.M() {
		t.Fatalf("RGG has %d edges, brute force found %d", g.M(), m)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	r := rng.New(15)
	g := PreferentialAttachment(200, 3, r)
	if g.N() != 200 {
		t.Fatalf("n = %d", g.N())
	}
	// Each of the 199-3 = 196... vertices after the seed adds exactly 3
	// distinct edges; seed star has 3.
	want := 3 + (200-4)*3
	if g.M() != want {
		t.Fatalf("m = %d, want %d", g.M(), want)
	}
	_, hi := g.ArboricityBounds()
	if hi > 3 {
		t.Fatalf("PA(m=3) degeneracy %d > 3", hi)
	}
}

func TestRandomForest(t *testing.T) {
	r := rng.New(16)
	g := RandomForest(100, 7, r)
	if !g.IsForest() {
		t.Fatal("not a forest")
	}
	_, count := g.Components()
	if count != 7 {
		t.Fatalf("components = %d, want 7", count)
	}
}

func TestRandomForestMoreTreesThanVertices(t *testing.T) {
	g := RandomForest(3, 10, rng.New(17))
	if g.N() != 3 || g.M() != 0 {
		t.Fatal("degenerate forest wrong")
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("hypercube n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatal("hypercube not regular")
		}
	}
}

func TestHypercubeZeroDim(t *testing.T) {
	g := Hypercube(0)
	if g.N() != 1 || g.M() != 0 {
		t.Fatal("0-cube wrong")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	cases := []struct {
		name string
		make func(seed uint64) *graph.Graph
	}{
		{"UnionOfTrees", func(s uint64) *graph.Graph { return UnionOfTrees(80, 3, rng.New(s)) }},
		{"GNP", func(s uint64) *graph.Graph { return GNP(80, 0.1, rng.New(s)) }},
		{"KTree", func(s uint64) *graph.Graph { return KTree(80, 2, rng.New(s)) }},
		{"PA", func(s uint64) *graph.Graph { return PreferentialAttachment(80, 2, rng.New(s)) }},
		{"RGG", func(s uint64) *graph.Graph { g, _ := RandomGeometric(80, 0.15, rng.New(s)); return g }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, b := c.make(99), c.make(99)
			ea, eb := a.Edges(), b.Edges()
			if len(ea) != len(eb) {
				t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
			}
			for i := range ea {
				if ea[i] != eb[i] {
					t.Fatalf("edge %d differs", i)
				}
			}
		})
	}
}

func TestRelabel(t *testing.T) {
	g := Path(4)
	perm := []int{3, 2, 1, 0}
	h, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 4 || h.M() != 3 {
		t.Fatal("relabel changed size")
	}
	// Path 0-1-2-3 reversed is 3-2-1-0: same graph here, so degrees match.
	for v := 0; v < 4; v++ {
		if g.Degree(v) != h.Degree(perm[v]) {
			t.Fatalf("degree of %d changed", v)
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	r := rng.New(99)
	if err := quick.Check(func(seed uint64) bool {
		rr := r.Split(seed)
		g := UnionOfTrees(30, 2, rr)
		perm := rr.Perm(30)
		h, err := Relabel(g, perm)
		if err != nil {
			return false
		}
		if h.M() != g.M() {
			return false
		}
		for _, e := range g.Edges() {
			if !h.HasEdge(perm[e.U], perm[e.V]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g := Path(3)
	for _, perm := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 5}} {
		if _, err := Relabel(g, perm); err == nil {
			t.Fatalf("perm %v accepted", perm)
		}
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(77)
	for _, c := range []struct{ n, d int }{{20, 3}, {50, 4}, {100, 2}, {10, 0}} {
		g := RandomRegular(c.n, c.d, r.Split(uint64(c.n*100+c.d)))
		if g.N() != c.n {
			t.Fatalf("n=%d", g.N())
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != c.d {
				t.Fatalf("(%d,%d): degree(%d) = %d", c.n, c.d, v, g.Degree(v))
			}
		}
	}
}

func TestRandomRegularPanics(t *testing.T) {
	for _, c := range []struct{ n, d int }{{5, 3}, {4, 4}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("(%d,%d) did not panic", c.n, c.d)
				}
			}()
			RandomRegular(c.n, c.d, rng.New(1))
		}()
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a := RandomRegular(40, 3, rng.New(5))
	b := RandomRegular(40, 3, rng.New(5))
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed, different graphs")
		}
	}
}
