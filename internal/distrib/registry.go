package distrib

import (
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/mis/colevishkin"
	"repro/internal/mis/degreduce"
	"repro/internal/mis/ftmetivier"
	"repro/internal/mis/ghaffari"
	"repro/internal/mis/localmin"
	"repro/internal/mis/luby"
	"repro/internal/mis/metivier"
)

// Program names the node program a distributed run executes, in a form
// that crosses process boundaries: an algorithm name from the registry
// below plus its numeric arguments. The coordinator and every worker
// construct the factory independently from the same Program, so both
// sides run identical state machines.
type Program struct {
	// Algorithm is a registry name (see Algorithms).
	Algorithm string
	// Args parameterizes the factory. Most algorithms take none;
	// degreduce takes [iterations], ftmetivier takes [maxIters] (0 =
	// default budget), and colevishkin takes the n parent IDs of a BFS
	// forest, encoded as uint64(int64(parent)) with -1 for roots.
	Args []uint64
}

// factories maps algorithm names to factory constructors. n is the
// vertex count of the run's graph. The tree-MIS program is deliberately
// absent: it needs whole-graph forest preprocessing that does not
// decompose into per-shard configuration.
var factories = map[string]func(prog Program, n int) (func(v int) congest.Node, error){
	"metivier": func(_ Program, _ int) (func(v int) congest.Node, error) {
		return metivier.New(), nil
	},
	"ftmetivier": func(p Program, _ int) (func(v int) congest.Node, error) {
		iters := 0
		if len(p.Args) > 0 {
			iters = int(int64(p.Args[0]))
		}
		return ftmetivier.New(iters), nil
	},
	"luby-a": func(_ Program, n int) (func(v int) congest.Node, error) {
		return luby.NewA(n), nil
	},
	"luby-b": func(_ Program, _ int) (func(v int) congest.Node, error) {
		return luby.NewB(), nil
	},
	"ghaffari": func(_ Program, _ int) (func(v int) congest.Node, error) {
		return ghaffari.New(), nil
	},
	"localmin": func(_ Program, _ int) (func(v int) congest.Node, error) {
		return localmin.New(), nil
	},
	"degreduce": func(p Program, _ int) (func(v int) congest.Node, error) {
		iters := 4
		if len(p.Args) > 0 {
			iters = int(int64(p.Args[0]))
		}
		if iters < 1 {
			return nil, fmt.Errorf("distrib: degreduce needs a positive iteration count, got %d", iters)
		}
		return degreduce.New(iters), nil
	},
	"colevishkin": func(p Program, n int) (func(v int) congest.Node, error) {
		if len(p.Args) != n {
			return nil, fmt.Errorf("distrib: colevishkin needs %d parent args, got %d", n, len(p.Args))
		}
		parent := make([]int, n)
		for v := range parent {
			parent[v] = int(int64(p.Args[v]))
		}
		return colevishkin.New(parent, n), nil
	},
}

// Algorithms lists the registry's algorithm names, sorted.
func Algorithms() []string {
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Factory resolves a Program to the node factory both the coordinator's
// mirror and the shard workers construct.
func Factory(prog Program, n int) (func(v int) congest.Node, error) {
	ctor, ok := factories[prog.Algorithm]
	if !ok {
		return nil, fmt.Errorf("distrib: unknown algorithm %q (have %v)", prog.Algorithm, Algorithms())
	}
	return ctor(prog, n)
}

// ColeVishkinArgs packs a BFS parent forest into Program args.
func ColeVishkinArgs(parent []int) []uint64 {
	args := make([]uint64, len(parent))
	for v, p := range parent {
		args[v] = uint64(int64(p))
	}
	return args
}
