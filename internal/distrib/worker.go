package distrib

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"repro/internal/congest"
	"repro/internal/trace"
)

// workerSocketEnv is the self-exec hook: when set, the process is a
// shard worker spawned by an ExecFleet and must dial the fleet's unix
// socket instead of running its normal main (or test) body.
const workerSocketEnv = "MISNODE_SOCKET"

// MaybeWorker turns the current process into a shard worker when the
// MISNODE_SOCKET environment variable is set, and returns immediately
// otherwise. ExecFleet spawns workers by re-executing the current binary
// with that variable set, so every binary (and every test binary, via
// TestMain) that drives an ExecFleet must call MaybeWorker first — the
// worker serves runs over the socket until the fleet closes it, then
// exits without ever reaching the caller's own main body.
func MaybeWorker() {
	path := os.Getenv(workerSocketEnv)
	if path == "" {
		return
	}
	c, err := net.Dial("unix", path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "misnode worker: dial %s: %v\n", path, err)
		os.Exit(3)
	}
	if err := ServeConn(c); err != nil {
		fmt.Fprintf(os.Stderr, "misnode worker: %v\n", err)
		c.Close()
		os.Exit(1)
	}
	c.Close()
	os.Exit(0)
}

// workerMetrics is the per-shard Prometheus surface a worker exposes on
// its /metrics endpoint: the trace registry plus the worker's own frame
// and sweep counters.
type workerMetrics struct {
	reg      *trace.Registry
	rounds   *trace.Counter
	msgsIn   *trace.Counter
	pktsOut  *trace.Counter
	bytesIn  *trace.Counter
	bytesOut *trace.Counter
	live     *trace.Gauge
	shard    *trace.Gauge
}

// newWorkerMetrics builds the registry and registers the misnode metric
// family.
func newWorkerMetrics() *workerMetrics {
	reg := trace.NewRegistry()
	return &workerMetrics{
		reg:      reg,
		rounds:   reg.Counter("misnode_rounds_total", "rounds swept by this shard worker"),
		msgsIn:   reg.Counter("misnode_messages_in_total", "messages delivered to this shard's inboxes"),
		pktsOut:  reg.Counter("misnode_packets_out_total", "messages sent by this shard's nodes"),
		bytesIn:  reg.Counter("misnode_frame_bytes_in_total", "frame bytes received from the coordinator"),
		bytesOut: reg.Counter("misnode_frame_bytes_out_total", "frame bytes sent to the coordinator"),
		live:     reg.Gauge("misnode_live_vertices", "not-yet-halted vertices in the shard"),
		shard:    reg.Gauge("misnode_shard_index", "this worker's shard index"),
	}
}

// serveMetrics binds the requested listen address and serves /metrics
// from the registry for the life of the process. It returns the bound
// address (the request may use port 0).
func serveMetrics(addr string, reg *trace.Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("distrib: metrics listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	//lint:advisory the metrics HTTP server is advisory observability on its own socket; it never touches run state
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

// ServeConn runs the worker side of the shard protocol over an
// established coordinator connection: config, hello, then round sweeps
// until the finish/outputs exchange ends the run — and then back to
// waiting for the next run's config, so one worker process serves a
// reused fleet back-to-back. It returns nil when the coordinator closes
// the connection cleanly between runs; any protocol failure is sent to
// the coordinator as an error frame (best effort) and returned. The
// metrics endpoint, when requested, is bound once per connection and its
// address re-announced in each run's hello. The frame codec's decode
// buffers are likewise per-connection and reused across frames.
//
// ServeConn is a worker-process entry point: the coordinator owns every
// engine-side RNG stream, so nothing reachable from here may draw —
// misvet's draworder analyzer enforces that.
//
//draworder:worker
func ServeConn(c net.Conn) error {
	fc := newFrameConn(c)
	var enc encoder
	var sc decodeScratch
	var m *workerMetrics
	metricsAddr := ""

	fail := func(err error) error {
		encodeError(&enc, err.Error())
		_ = fc.writeFrame(enc.buf) // best effort: the peer may already be gone
		return err
	}

	for {
		payload, err := fc.readFrame()
		if err != nil {
			// EOF at config-wait is the clean between-runs shutdown: the
			// fleet closed the connection instead of starting another run.
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		kind, dec, err := payloadKind(payload)
		if err != nil {
			return err
		}
		if kind != fkConfig {
			return fail(fmt.Errorf("distrib: worker expected config frame, got %s", kind))
		}
		cm, err := decodeConfig(dec)
		if err != nil {
			return fail(err)
		}
		factory, err := Factory(cm.prog, cm.cfg.N)
		if err != nil {
			return fail(err)
		}
		adj := cm.adj
		lo := cm.cfg.Lo
		worker, err := congest.NewShardWorker(cm.cfg, func(v int) []int { return adj[v-lo] }, cm.ext, factory)
		if err != nil {
			return fail(err)
		}

		if cm.metricsAddr != "" && m == nil {
			m = newWorkerMetrics()
			if metricsAddr, err = serveMetrics(cm.metricsAddr, m.reg); err != nil {
				return fail(err)
			}
		}
		if m != nil {
			m.shard.Set(int64(cm.cfg.Index))
			m.live.Set(int64(worker.Live()))
		}
		encodeHello(&enc, metricsAddr)
		if err := fc.writeFrame(enc.buf); err != nil {
			return err
		}

		if err := serveRun(fc, &enc, &sc, worker, m, fail); err != nil {
			return err
		}
	}
}

// serveRun drives one run's round loop: sweep every fkRound until the
// fkFinish/outputs exchange ends it.
//
//draworder:worker
func serveRun(fc *frameConn, enc *encoder, sc *decodeScratch, worker *congest.ShardWorker, m *workerMetrics, fail func(error) error) error {
	for {
		payload, err := fc.readFrame()
		if err != nil {
			return err
		}
		kind, dec, err := payloadKind(payload)
		if err != nil {
			return fail(err)
		}
		switch kind {
		case fkRound:
			in, err := sc.round(dec)
			if err != nil {
				return fail(err)
			}
			out, err := worker.Sweep(in)
			if err != nil {
				return fail(err)
			}
			encodeSweep(enc, out)
			if err := fc.writeFrame(enc.buf); err != nil {
				return err
			}
			if m != nil {
				m.rounds.Inc()
				m.msgsIn.Add(int64(len(in.Inbox)))
				m.pktsOut.Add(int64(len(out.Packets)))
				m.live.Set(int64(worker.Live()))
				m.bytesIn.Add(fc.bytesIn - m.bytesIn.Value())
				m.bytesOut.Add(fc.bytesOut - m.bytesOut.Value())
			}
		case fkFinish:
			if err := dec.done(); err != nil {
				return fail(err)
			}
			encodeOutputs(enc, worker.Outputs())
			return fc.writeFrame(enc.buf)
		default:
			return fail(fmt.Errorf("distrib: worker expected round or finish frame, got %s", kind))
		}
	}
}
