package distrib

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
)

// spawnTimeout bounds how long ExecFleet waits for a just-spawned worker
// to dial back, and dialTimeout how long DialFleet retries a misnode
// address before giving up.
const (
	spawnTimeout = 30 * time.Second
	dialTimeout  = 10 * time.Second
)

// handshake runs the coordinator side of connection setup: ship the
// shard's config (program spec + adjacency of the owned range) and read
// the worker's hello. It returns the worker's metrics address.
func handshake(fc *frameConn, g *graph.Graph, prog Program, cfg congest.ShardConfig, metricsAddr string) (string, error) {
	adj := make([][]int, cfg.Hi-cfg.Lo)
	for v := cfg.Lo; v < cfg.Hi; v++ {
		adj[v-cfg.Lo] = g.Neighbors(v)
	}
	var enc encoder
	encodeConfig(&enc, configMsg{cfg: cfg, prog: prog, adj: adj, metricsAddr: metricsAddr})
	if err := fc.writeFrame(enc.buf); err != nil {
		return "", err
	}
	payload, err := fc.readFrame()
	if err != nil {
		return "", err
	}
	kind, dec, err := payloadKind(payload)
	if err != nil {
		return "", err
	}
	switch kind {
	case fkHello:
		return decodeHello(dec)
	case fkError:
		msg, derr := decodeError(dec)
		if derr != nil {
			return "", derr
		}
		return "", fmt.Errorf("distrib: worker rejected config: %s", msg)
	default:
		return "", fmt.Errorf("distrib: expected hello frame, got %s", kind)
	}
}

// shardConn is the coordinator's framed connection to one worker. It
// implements congest.ShardConn and measures the advisory per-round
// transport volume and latency the EvFrame event reports.
type shardConn struct {
	fc      *frameConn
	enc     encoder
	sentAt  time.Time
	lastOut int64
}

// Send ships one round input.
//
//lint:advisory the send timestamp feeds the advisory EvFrame latency measurement, never program logic
func (sc *shardConn) Send(in congest.RoundInput) error {
	sc.sentAt = time.Now()
	before := sc.fc.bytesOut
	encodeRound(&sc.enc, in)
	if err := sc.fc.writeFrame(sc.enc.buf); err != nil {
		return err
	}
	sc.lastOut = sc.fc.bytesOut - before
	return nil
}

// Recv collects the worker's round output and annotates it with the
// advisory transport measurements.
//
//lint:advisory round-trip latency is an advisory transport measurement, never program logic
func (sc *shardConn) Recv() (congest.RoundOutput, error) {
	before := sc.fc.bytesIn
	payload, err := sc.fc.readFrame()
	if err != nil {
		return congest.RoundOutput{}, err
	}
	kind, dec, err := payloadKind(payload)
	if err != nil {
		return congest.RoundOutput{}, err
	}
	var out congest.RoundOutput
	switch kind {
	case fkSweep:
		if out, err = decodeSweep(dec); err != nil {
			return congest.RoundOutput{}, err
		}
	case fkError:
		msg, derr := decodeError(dec)
		if derr != nil {
			return congest.RoundOutput{}, derr
		}
		return congest.RoundOutput{}, fmt.Errorf("distrib: worker failed: %s", msg)
	default:
		return congest.RoundOutput{}, fmt.Errorf("distrib: expected sweep frame, got %s", kind)
	}
	out.BytesOut = sc.lastOut
	out.BytesIn = sc.fc.bytesIn - before
	out.LatencyNanos = time.Since(sc.sentAt).Nanoseconds()
	return out, nil
}

// Outputs ends the run and collects the worker's exported states.
func (sc *shardConn) Outputs() ([]uint64, error) {
	encodeFinish(&sc.enc)
	if err := sc.fc.writeFrame(sc.enc.buf); err != nil {
		return nil, err
	}
	payload, err := sc.fc.readFrame()
	if err != nil {
		return nil, err
	}
	kind, dec, err := payloadKind(payload)
	if err != nil {
		return nil, err
	}
	switch kind {
	case fkOutputs:
		return decodeOutputs(dec)
	case fkError:
		msg, derr := decodeError(dec)
		if derr != nil {
			return nil, derr
		}
		return nil, fmt.Errorf("distrib: worker failed: %s", msg)
	default:
		return nil, fmt.Errorf("distrib: expected outputs frame, got %s", kind)
	}
}

// Close tears the connection down.
func (sc *shardConn) Close() error { return sc.fc.close() }

// ExecFleet spawns shard workers by re-executing the current binary with
// the MISNODE_SOCKET environment variable set (see MaybeWorker): each
// worker dials the fleet's unix socket, receives its config, and serves
// one run. The fleet tracks worker processes so tests can SIGKILL one
// mid-run and crash recovery can respawn it.
type ExecFleet struct {
	g            *graph.Graph
	prog         Program
	shards       int
	metrics      bool
	dir          string
	socket       string
	ln           *net.UnixListener
	cmds         []*exec.Cmd
	conns        []*shardConn
	metricsAddrs []string
}

// ExecOption configures an ExecFleet.
type ExecOption func(*ExecFleet)

// WithMetrics makes every spawned worker expose its Prometheus registry
// on an ephemeral per-shard /metrics endpoint (127.0.0.1); the bound
// addresses are available from MetricsAddr after the shard starts.
func WithMetrics() ExecOption {
	return func(f *ExecFleet) { f.metrics = true }
}

// NewExecFleet prepares a self-exec worker fleet of the given shard
// count over a fresh unix socket. Close releases the socket, the workers
// and the temp directory.
func NewExecFleet(g *graph.Graph, prog Program, shards int, opts ...ExecOption) (*ExecFleet, error) {
	if shards < 1 {
		return nil, fmt.Errorf("distrib: fleet needs at least one shard, got %d", shards)
	}
	if _, err := Factory(prog, g.N()); err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "misfleet-")
	if err != nil {
		return nil, fmt.Errorf("distrib: fleet temp dir: %w", err)
	}
	socket := filepath.Join(dir, "fleet.sock")
	ln, err := net.Listen("unix", socket)
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("distrib: fleet listen: %w", err)
	}
	f := &ExecFleet{
		g:            g,
		prog:         prog,
		shards:       shards,
		dir:          dir,
		socket:       socket,
		ln:           ln.(*net.UnixListener),
		cmds:         make([]*exec.Cmd, shards),
		conns:        make([]*shardConn, shards),
		metricsAddrs: make([]string, shards),
	}
	for _, o := range opts {
		o(f)
	}
	return f, nil
}

// NumShards returns the fleet's worker count.
func (f *ExecFleet) NumShards() int { return f.shards }

// Transport names the fleet's transport for topology reporting.
func (f *ExecFleet) Transport() string { return "unix" }

// Socket returns the fleet's unix socket path.
func (f *ExecFleet) Socket() string { return f.socket }

// Pid returns the worker process ID for a shard (0 before it starts),
// so tests can deliver signals to a live worker.
func (f *ExecFleet) Pid(shard int) int {
	if f.cmds[shard] == nil || f.cmds[shard].Process == nil {
		return 0
	}
	return f.cmds[shard].Process.Pid
}

// MetricsAddr returns the worker's bound /metrics address ("" when
// metrics are off or the shard has not started).
func (f *ExecFleet) MetricsAddr(shard int) string { return f.metricsAddrs[shard] }

// Shard spawns (or, during crash recovery, respawns) the worker for
// cfg.Index: start the process, accept its dial-back, and run the config
// handshake.
//
//lint:advisory the accept deadline is a liveness timeout on worker startup, never program logic
func (f *ExecFleet) Shard(cfg congest.ShardConfig) (congest.ShardConn, error) {
	s := cfg.Index
	if s < 0 || s >= f.shards {
		return nil, fmt.Errorf("distrib: shard index %d outside fleet of %d", s, f.shards)
	}
	f.reap(s)
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("distrib: resolve executable: %w", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), workerSocketEnv+"="+f.socket)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("distrib: spawn worker: %w", err)
	}
	if err := f.ln.SetDeadline(time.Now().Add(spawnTimeout)); err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, err
	}
	conn, err := f.ln.Accept()
	if err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("distrib: worker for shard %d never dialed back: %w", s, err)
	}
	fc := newFrameConn(conn)
	metricsReq := ""
	if f.metrics {
		metricsReq = "127.0.0.1:0"
	}
	addr, err := handshake(fc, f.g, f.prog, cfg, metricsReq)
	if err != nil {
		_ = fc.close()
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, err
	}
	f.cmds[s] = cmd
	f.conns[s] = &shardConn{fc: fc}
	f.metricsAddrs[s] = addr
	return f.conns[s], nil
}

// reap kills and waits any previous worker for the shard (a respawn may
// replace a process that is wedged rather than dead).
func (f *ExecFleet) reap(s int) {
	if f.cmds[s] == nil {
		return
	}
	_ = f.cmds[s].Process.Kill()
	_ = f.cmds[s].Wait()
	f.cmds[s] = nil
}

// Close shuts the fleet down: connections, worker processes, socket and
// temp directory.
func (f *ExecFleet) Close() error {
	for _, c := range f.conns {
		if c != nil {
			_ = c.Close()
		}
	}
	for s := range f.cmds {
		f.reap(s)
	}
	err := f.ln.Close()
	os.RemoveAll(f.dir)
	return err
}

// DialFleet connects to pre-started cmd/misnode workers over TCP, one
// address per shard. Respawning through a DialFleet redials the same
// address: a misnode process accepts a fresh run connection after the
// previous one ends, and an externally supervised misnode that crashed
// is expected to come back on the same address.
type DialFleet struct {
	g     *graph.Graph
	prog  Program
	addrs []string
	conns []*shardConn
}

// NewDialFleet prepares a TCP fleet over the given misnode addresses.
func NewDialFleet(g *graph.Graph, prog Program, addrs []string) (*DialFleet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distrib: dial fleet needs at least one address")
	}
	if _, err := Factory(prog, g.N()); err != nil {
		return nil, err
	}
	return &DialFleet{g: g, prog: prog, addrs: addrs, conns: make([]*shardConn, len(addrs))}, nil
}

// NumShards returns the fleet's worker count.
func (f *DialFleet) NumShards() int { return len(f.addrs) }

// Transport names the fleet's transport for topology reporting.
func (f *DialFleet) Transport() string { return "tcp" }

// Addrs returns the configured misnode addresses.
func (f *DialFleet) Addrs() []string { return f.addrs }

// Shard dials the shard's misnode (with retries, so a respawn can wait
// out a supervisor restart) and runs the config handshake.
//
//lint:advisory the dial retry loop times out worker startup, never program logic
func (f *DialFleet) Shard(cfg congest.ShardConfig) (congest.ShardConn, error) {
	s := cfg.Index
	if s < 0 || s >= len(f.addrs) {
		return nil, fmt.Errorf("distrib: shard index %d outside fleet of %d", s, len(f.addrs))
	}
	deadline := time.Now().Add(dialTimeout)
	var conn net.Conn
	var err error
	for {
		conn, err = net.DialTimeout("tcp", f.addrs[s], time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("distrib: dial misnode %s: %w", f.addrs[s], err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fc := newFrameConn(conn)
	if _, err := handshake(fc, f.g, f.prog, cfg, ""); err != nil {
		_ = fc.close()
		return nil, err
	}
	f.conns[s] = &shardConn{fc: fc}
	return f.conns[s], nil
}

// Close closes every live connection.
func (f *DialFleet) Close() error {
	var first error
	for _, c := range f.conns {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Run executes a program over g on a fresh self-exec fleet and returns
// the per-vertex exported states' run result — the distributed
// equivalent of the per-algorithm Run helpers. It wires the fleet into
// Options and closes it afterwards.
func Run(g *graph.Graph, prog Program, shards int, opts congest.Options, fleetOpts ...ExecOption) (congest.Result, *congest.Runner, error) {
	fleet, err := NewExecFleet(g, prog, shards, fleetOpts...)
	if err != nil {
		return congest.Result{}, nil, err
	}
	defer fleet.Close()
	factory, err := Factory(prog, g.N())
	if err != nil {
		return congest.Result{}, nil, err
	}
	opts.Driver = congest.DriverDistributed
	opts.Fleet = fleet
	r := congest.NewRunner(g, factory, opts)
	res, err := r.Run()
	return res, r, err
}
