package distrib

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/layout"
)

// spawnTimeout bounds how long ExecFleet waits for a just-spawned worker
// to dial back, dialTimeout how long DialFleet retries a misnode address
// before giving up, and rehandshakeTimeout how long a fleet waits for a
// kept-alive worker to accept a new run's config before falling back to
// a respawn (a wedged worker must not hang the next run).
const (
	spawnTimeout       = 30 * time.Second
	dialTimeout        = 10 * time.Second
	rehandshakeTimeout = 5 * time.Second
)

// layoutView caches the fleet side of a run's vertex ordering: the
// relabeled internal-order graph plus the internal→external ID map that
// the config frames ship. Fleets resolve it lazily on the first Shard
// call and keep it for the fleet's life, so reconfiguring a reused fleet
// for another run of the same layout costs nothing.
type layoutView struct {
	resolved bool
	name     layout.Ordering
	ig       *graph.Graph
	ext      []int
}

// view resolves (and caches) the ordering for g.
func (lv *layoutView) view(g *graph.Graph, name string) (*graph.Graph, []int, error) {
	o, err := layout.Parse(name)
	if err != nil {
		return nil, nil, err
	}
	if lv.resolved && lv.name == o {
		return lv.ig, lv.ext, nil
	}
	perm, ext, err := layout.Compute(g, o)
	if err != nil {
		return nil, nil, err
	}
	ig := g
	if perm != nil {
		if ig, err = graph.Relabel(g, perm); err != nil {
			return nil, nil, err
		}
	}
	lv.resolved, lv.name, lv.ig, lv.ext = true, o, ig, ext
	return ig, ext, nil
}

// handshake runs the coordinator side of connection setup: ship the
// shard's config (program spec + internal-order adjacency of the owned
// range + ID map) and read the worker's hello. It returns the worker's
// metrics address.
func handshake(fc *frameConn, ig *graph.Graph, ext []int, prog Program, cfg congest.ShardConfig, metricsAddr string) (string, error) {
	adj := make([][]int, cfg.Hi-cfg.Lo)
	for v := cfg.Lo; v < cfg.Hi; v++ {
		adj[v-cfg.Lo] = ig.Neighbors(v)
	}
	var enc encoder
	encodeConfig(&enc, configMsg{cfg: cfg, prog: prog, adj: adj, ext: ext, metricsAddr: metricsAddr})
	if err := fc.writeFrame(enc.buf); err != nil {
		return "", err
	}
	payload, err := fc.readFrame()
	if err != nil {
		return "", err
	}
	kind, dec, err := payloadKind(payload)
	if err != nil {
		return "", err
	}
	switch kind {
	case fkHello:
		return decodeHello(dec)
	case fkError:
		msg, derr := decodeError(dec)
		if derr != nil {
			return "", derr
		}
		return "", fmt.Errorf("distrib: worker rejected config: %s", msg)
	default:
		return "", fmt.Errorf("distrib: expected hello frame, got %s", kind)
	}
}

// shardConn is the coordinator's framed connection to one worker. It
// implements congest.ShardConn and measures the advisory per-round
// transport volume and latency the EvFrame event reports.
type shardConn struct {
	fc      *frameConn
	enc     encoder
	dec     decodeScratch
	sentAt  time.Time
	lastOut int64
}

// Send ships one round input.
//
//lint:advisory the send timestamp feeds the advisory EvFrame latency measurement, never program logic
func (sc *shardConn) Send(in congest.RoundInput) error {
	sc.sentAt = time.Now()
	before := sc.fc.bytesOut
	encodeRound(&sc.enc, in)
	if err := sc.fc.writeFrame(sc.enc.buf); err != nil {
		return err
	}
	sc.lastOut = sc.fc.bytesOut - before
	return nil
}

// Recv collects the worker's round output and annotates it with the
// advisory transport measurements.
//
//lint:advisory round-trip latency is an advisory transport measurement, never program logic
func (sc *shardConn) Recv() (congest.RoundOutput, error) {
	before := sc.fc.bytesIn
	payload, err := sc.fc.readFrame()
	if err != nil {
		return congest.RoundOutput{}, err
	}
	kind, dec, err := payloadKind(payload)
	if err != nil {
		return congest.RoundOutput{}, err
	}
	var out congest.RoundOutput
	switch kind {
	case fkSweep:
		if out, err = sc.dec.sweep(dec); err != nil {
			return congest.RoundOutput{}, err
		}
	case fkError:
		msg, derr := decodeError(dec)
		if derr != nil {
			return congest.RoundOutput{}, derr
		}
		return congest.RoundOutput{}, fmt.Errorf("distrib: worker failed: %s", msg)
	default:
		return congest.RoundOutput{}, fmt.Errorf("distrib: expected sweep frame, got %s", kind)
	}
	out.BytesOut = sc.lastOut
	out.BytesIn = sc.fc.bytesIn - before
	out.LatencyNanos = time.Since(sc.sentAt).Nanoseconds()
	return out, nil
}

// Outputs ends the run and collects the worker's exported states.
func (sc *shardConn) Outputs() ([]uint64, error) {
	encodeFinish(&sc.enc)
	if err := sc.fc.writeFrame(sc.enc.buf); err != nil {
		return nil, err
	}
	payload, err := sc.fc.readFrame()
	if err != nil {
		return nil, err
	}
	kind, dec, err := payloadKind(payload)
	if err != nil {
		return nil, err
	}
	switch kind {
	case fkOutputs:
		return sc.dec.outputs(dec)
	case fkError:
		msg, derr := decodeError(dec)
		if derr != nil {
			return nil, derr
		}
		return nil, fmt.Errorf("distrib: worker failed: %s", msg)
	default:
		return nil, fmt.Errorf("distrib: expected outputs frame, got %s", kind)
	}
}

// Close tears the connection down.
func (sc *shardConn) Close() error { return sc.fc.close() }

// rehandshake re-runs the config handshake on a live worker connection
// (fleet reuse: one spawned fleet serving several runs back-to-back).
// The whole exchange runs under a socket deadline so a wedged or
// mid-run worker fails fast instead of hanging the next run; the caller
// falls back to a respawn on any error.
//
//lint:advisory the rehandshake deadline is a liveness timeout on worker reconfiguration, never program logic
func rehandshake(fc *frameConn, ig *graph.Graph, ext []int, prog Program, cfg congest.ShardConfig, metricsAddr string) (string, error) {
	if err := fc.c.SetDeadline(time.Now().Add(rehandshakeTimeout)); err != nil {
		return "", err
	}
	addr, err := handshake(fc, ig, ext, prog, cfg, metricsAddr)
	if derr := fc.c.SetDeadline(time.Time{}); err == nil && derr != nil {
		return "", derr
	}
	return addr, err
}

// ExecFleet spawns shard workers by re-executing the current binary with
// the MISNODE_SOCKET environment variable set (see MaybeWorker): each
// worker dials the fleet's unix socket, receives its config, and serves
// one run. The fleet tracks worker processes so tests can SIGKILL one
// mid-run and crash recovery can respawn it.
type ExecFleet struct {
	g            *graph.Graph
	prog         Program
	shards       int
	metrics      bool
	dir          string
	socket       string
	ln           *net.UnixListener
	cmds         []*exec.Cmd
	conns        []*shardConn
	metricsAddrs []string
	lv           layoutView
}

// ExecOption configures an ExecFleet.
type ExecOption func(*ExecFleet)

// WithMetrics makes every spawned worker expose its Prometheus registry
// on an ephemeral per-shard /metrics endpoint (127.0.0.1); the bound
// addresses are available from MetricsAddr after the shard starts.
func WithMetrics() ExecOption {
	return func(f *ExecFleet) { f.metrics = true }
}

// NewExecFleet prepares a self-exec worker fleet of the given shard
// count over a fresh unix socket. Close releases the socket, the workers
// and the temp directory.
func NewExecFleet(g *graph.Graph, prog Program, shards int, opts ...ExecOption) (*ExecFleet, error) {
	if shards < 1 {
		return nil, fmt.Errorf("distrib: fleet needs at least one shard, got %d", shards)
	}
	if _, err := Factory(prog, g.N()); err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "misfleet-")
	if err != nil {
		return nil, fmt.Errorf("distrib: fleet temp dir: %w", err)
	}
	socket := filepath.Join(dir, "fleet.sock")
	ln, err := net.Listen("unix", socket)
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("distrib: fleet listen: %w", err)
	}
	f := &ExecFleet{
		g:            g,
		prog:         prog,
		shards:       shards,
		dir:          dir,
		socket:       socket,
		ln:           ln.(*net.UnixListener),
		cmds:         make([]*exec.Cmd, shards),
		conns:        make([]*shardConn, shards),
		metricsAddrs: make([]string, shards),
	}
	for _, o := range opts {
		o(f)
	}
	return f, nil
}

// NumShards returns the fleet's worker count.
func (f *ExecFleet) NumShards() int { return f.shards }

// Transport names the fleet's transport for topology reporting.
func (f *ExecFleet) Transport() string { return "unix" }

// Socket returns the fleet's unix socket path.
func (f *ExecFleet) Socket() string { return f.socket }

// Pid returns the worker process ID for a shard (0 before it starts),
// so tests can deliver signals to a live worker.
func (f *ExecFleet) Pid(shard int) int {
	if f.cmds[shard] == nil || f.cmds[shard].Process == nil {
		return 0
	}
	return f.cmds[shard].Process.Pid
}

// MetricsAddr returns the worker's bound /metrics address ("" when
// metrics are off or the shard has not started).
func (f *ExecFleet) MetricsAddr(shard int) string { return f.metricsAddrs[shard] }

// Shard provides the worker for cfg.Index. A worker kept alive by a
// previous run on this fleet is reused: the fleet re-runs the config
// handshake on its live connection (workers loop back to config-wait
// after exporting outputs), so consecutive runs skip the process spawn.
// Any rehandshake failure — the worker died, is wedged mid-run, or
// rejected the config — falls back to the spawn path, which is also how
// crash recovery respawns a shard mid-run.
//
//lint:advisory the accept deadline is a liveness timeout on worker startup, never program logic
func (f *ExecFleet) Shard(cfg congest.ShardConfig) (congest.ShardConn, error) {
	s := cfg.Index
	if s < 0 || s >= f.shards {
		return nil, fmt.Errorf("distrib: shard index %d outside fleet of %d", s, f.shards)
	}
	ig, ext, err := f.lv.view(f.g, cfg.Layout)
	if err != nil {
		return nil, err
	}
	metricsReq := ""
	if f.metrics {
		metricsReq = "127.0.0.1:0"
	}
	if f.cmds[s] != nil && f.conns[s] != nil {
		if addr, err := rehandshake(f.conns[s].fc, ig, ext, f.prog, cfg, metricsReq); err == nil {
			f.metricsAddrs[s] = addr
			return f.conns[s], nil
		}
		_ = f.conns[s].Close()
		f.conns[s] = nil
	}
	f.reap(s)
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("distrib: resolve executable: %w", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), workerSocketEnv+"="+f.socket)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("distrib: spawn worker: %w", err)
	}
	if err := f.ln.SetDeadline(time.Now().Add(spawnTimeout)); err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, err
	}
	conn, err := f.ln.Accept()
	if err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("distrib: worker for shard %d never dialed back: %w", s, err)
	}
	fc := newFrameConn(conn)
	addr, err := handshake(fc, ig, ext, f.prog, cfg, metricsReq)
	if err != nil {
		_ = fc.close()
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, err
	}
	f.cmds[s] = cmd
	f.conns[s] = &shardConn{fc: fc}
	f.metricsAddrs[s] = addr
	return f.conns[s], nil
}

// reap kills and waits any previous worker for the shard (a respawn may
// replace a process that is wedged rather than dead).
func (f *ExecFleet) reap(s int) {
	if f.cmds[s] == nil {
		return
	}
	_ = f.cmds[s].Process.Kill()
	_ = f.cmds[s].Wait()
	f.cmds[s] = nil
}

// Close shuts the fleet down: connections, worker processes, socket and
// temp directory.
func (f *ExecFleet) Close() error {
	for _, c := range f.conns {
		if c != nil {
			_ = c.Close()
		}
	}
	for s := range f.cmds {
		f.reap(s)
	}
	err := f.ln.Close()
	os.RemoveAll(f.dir)
	return err
}

// DialFleet connects to pre-started cmd/misnode workers over TCP, one
// address per shard. Respawning through a DialFleet redials the same
// address: a misnode process accepts a fresh run connection after the
// previous one ends, and an externally supervised misnode that crashed
// is expected to come back on the same address.
type DialFleet struct {
	g     *graph.Graph
	prog  Program
	addrs []string
	conns []*shardConn
	lv    layoutView
}

// NewDialFleet prepares a TCP fleet over the given misnode addresses.
func NewDialFleet(g *graph.Graph, prog Program, addrs []string) (*DialFleet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distrib: dial fleet needs at least one address")
	}
	if _, err := Factory(prog, g.N()); err != nil {
		return nil, err
	}
	return &DialFleet{g: g, prog: prog, addrs: addrs, conns: make([]*shardConn, len(addrs))}, nil
}

// NumShards returns the fleet's worker count.
func (f *DialFleet) NumShards() int { return len(f.addrs) }

// Transport names the fleet's transport for topology reporting.
func (f *DialFleet) Transport() string { return "tcp" }

// Addrs returns the configured misnode addresses.
func (f *DialFleet) Addrs() []string { return f.addrs }

// Shard dials the shard's misnode (with retries, so a respawn can wait
// out a supervisor restart) and runs the config handshake.
//
//lint:advisory the dial retry loop times out worker startup, never program logic
func (f *DialFleet) Shard(cfg congest.ShardConfig) (congest.ShardConn, error) {
	s := cfg.Index
	if s < 0 || s >= len(f.addrs) {
		return nil, fmt.Errorf("distrib: shard index %d outside fleet of %d", s, len(f.addrs))
	}
	ig, ext, err := f.lv.view(f.g, cfg.Layout)
	if err != nil {
		return nil, err
	}
	// A connection kept alive by a previous run is reconfigured in place;
	// failure falls through to a fresh dial.
	if f.conns[s] != nil {
		if _, err := rehandshake(f.conns[s].fc, ig, ext, f.prog, cfg, ""); err == nil {
			return f.conns[s], nil
		}
		_ = f.conns[s].Close()
		f.conns[s] = nil
	}
	deadline := time.Now().Add(dialTimeout)
	var conn net.Conn
	for {
		conn, err = net.DialTimeout("tcp", f.addrs[s], time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("distrib: dial misnode %s: %w", f.addrs[s], err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fc := newFrameConn(conn)
	if _, err := handshake(fc, ig, ext, f.prog, cfg, ""); err != nil {
		_ = fc.close()
		return nil, err
	}
	f.conns[s] = &shardConn{fc: fc}
	return f.conns[s], nil
}

// Close closes every live connection.
func (f *DialFleet) Close() error {
	var first error
	for _, c := range f.conns {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Run executes a program over g on a fresh self-exec fleet and returns
// the per-vertex exported states' run result — the distributed
// equivalent of the per-algorithm Run helpers. It wires the fleet into
// Options and closes it afterwards.
func Run(g *graph.Graph, prog Program, shards int, opts congest.Options, fleetOpts ...ExecOption) (congest.Result, *congest.Runner, error) {
	fleet, err := NewExecFleet(g, prog, shards, fleetOpts...)
	if err != nil {
		return congest.Result{}, nil, err
	}
	defer fleet.Close()
	factory, err := Factory(prog, g.N())
	if err != nil {
		return congest.Result{}, nil, err
	}
	opts.Driver = congest.DriverDistributed
	opts.Fleet = fleet
	r := congest.NewRunner(g, factory, opts)
	res, err := r.Run()
	return res, r, err
}
