// Package distrib is the transport layer of the distributed CONGEST
// driver (congest.DriverDistributed): a length-prefixed binary frame
// codec, socket connections to shard worker processes (self-exec'd over
// unix sockets, or pre-started cmd/misnode workers over TCP), the worker
// serve loop, and the algorithm registry that lets a worker process
// construct the same node state machines the coordinator mirrors.
//
// Determinism contract. Nothing in this package draws randomness or
// makes a scheduling decision that the run can observe: the coordinator
// (internal/congest) performs every fault/RNG draw and every merge in
// global sender order, and this package only moves already-ordered
// round batches across process boundaries. The codec is fully
// deterministic (no maps, no timestamps inside deterministic payloads);
// the advisory frame-byte and latency measurements the connections take
// are reported out of band of the replay digest. Socket I/O helpers that
// must touch the wall clock or spawn goroutines (dial retries, metrics
// servers) carry //lint:advisory escapes with their reasons.
package distrib

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/congest"
	"repro/internal/trace"
)

// frameKind tags a protocol frame's payload. The kinds are distrib's own
// namespace (transport frames, not congest.Wire payload kinds). Zero is
// invalid so a truncated or zeroed frame is detectably corrupt.
type frameKind byte

const (
	// fkConfig is coordinator → worker: the shard's run configuration,
	// program spec and adjacency. First frame on every connection.
	fkConfig frameKind = iota + 1
	// fkHello is worker → coordinator: config accepted; carries the
	// worker's metrics listen address ("" when metrics are off).
	fkHello
	// fkRound is coordinator → worker: one round's input batch.
	fkRound
	// fkSweep is worker → coordinator: one round's output batch.
	fkSweep
	// fkFinish is coordinator → worker: the run is over, export state.
	fkFinish
	// fkOutputs is worker → coordinator: the per-vertex exported states.
	fkOutputs
	// fkError is worker → coordinator: a fatal protocol-level failure
	// (unknown algorithm, malformed input), as text. The connection is
	// dead after it.
	fkError
)

// String names the frame kind for error messages. The switch is the
// canonical kind registry: misvet's framecodec analyzer holds it to
// enumerating every declared kind.
func (k frameKind) String() string {
	//framecodec:exhaustive
	switch k {
	case fkConfig:
		return "config"
	case fkHello:
		return "hello"
	case fkRound:
		return "round"
	case fkSweep:
		return "sweep"
	case fkFinish:
		return "finish"
	case fkOutputs:
		return "outputs"
	case fkError:
		return "error"
	default:
		return fmt.Sprintf("frame-kind(%d)", byte(k))
	}
}

// maxFrameLen bounds a single frame's payload so a corrupt length prefix
// cannot drive an arbitrarily large allocation.
const maxFrameLen = 1 << 30

// encoder builds one frame payload (kind byte + body) in a reusable
// buffer. Integers use uvarint; signed fields use zigzag; RNG seeds and
// wire words use fixed 8-byte little-endian (they are uniformly random,
// varints would expand them).
type encoder struct {
	buf []byte
}

// reset starts a new payload of the given kind.
func (e *encoder) reset(k frameKind) {
	e.buf = append(e.buf[:0], byte(k))
}

func (e *encoder) u8(x byte)      { e.buf = append(e.buf, x) }
func (e *encoder) u64(x uint64)   { e.buf = binary.AppendUvarint(e.buf, x) }
func (e *encoder) i64(x int64)    { e.buf = binary.AppendVarint(e.buf, x) }
func (e *encoder) fix64(x uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, x) }

func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// decoder walks one frame payload with bounds-checked reads. Every
// failure names the field being read, so a truncated or corrupt frame is
// rejected with a contextual error — never a panic.
type decoder struct {
	buf []byte
	pos int
}

// errTruncated builds the contextual decode error.
func (d *decoder) errAt(field, why string) error {
	return fmt.Errorf("distrib: frame corrupt at byte %d: %s reading %s", d.pos, why, field)
}

func (d *decoder) u8(field string) (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, d.errAt(field, "truncated")
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) u64(field string) (uint64, error) {
	x, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.errAt(field, "bad uvarint")
	}
	d.pos += n
	return x, nil
}

func (d *decoder) i64(field string) (int64, error) {
	x, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.errAt(field, "bad varint")
	}
	d.pos += n
	return x, nil
}

func (d *decoder) fix64(field string) (uint64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, d.errAt(field, "truncated")
	}
	x := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return x, nil
}

// count reads a collection length and sanity-bounds it against the bytes
// actually present (each element costs at least min bytes), so a corrupt
// count cannot drive an oversized allocation.
func (d *decoder) count(field string, min int) (int, error) {
	x, err := d.u64(field)
	if err != nil {
		return 0, err
	}
	if min < 1 {
		min = 1
	}
	if x > uint64(len(d.buf)-d.pos)/uint64(min)+1 {
		return 0, d.errAt(field, "implausible count")
	}
	if x > math.MaxInt32 {
		return 0, d.errAt(field, "count overflow")
	}
	return int(x), nil
}

func (d *decoder) str(field string) (string, error) {
	n, err := d.count(field+" length", 1)
	if err != nil {
		return "", err
	}
	if d.pos+n > len(d.buf) {
		return "", d.errAt(field, "truncated")
	}
	s := string(d.buf[d.pos : d.pos+n])
	d.pos += n
	return s, nil
}

// done verifies the payload was consumed exactly.
func (d *decoder) done() error {
	if d.pos != len(d.buf) {
		return fmt.Errorf("distrib: frame has %d trailing bytes after payload", len(d.buf)-d.pos)
	}
	return nil
}

// payloadKind splits a frame payload into its kind tag and body.
func payloadKind(p []byte) (frameKind, *decoder, error) {
	if len(p) == 0 {
		return 0, nil, fmt.Errorf("distrib: empty frame payload")
	}
	return frameKind(p[0]), &decoder{buf: p, pos: 1}, nil
}

// configMsg is the fkConfig payload: the engine shard config, the
// program spec, the owned vertices' adjacency (internal order under a
// non-identity layout), the whole graph's internal→external ID map (empty
// for identity), and the requested metrics listen address.
type configMsg struct {
	cfg         congest.ShardConfig
	prog        Program
	adj         [][]int
	ext         []int // internal -> external IDs for the whole graph; nil = identity
	metricsAddr string
}

// encodeConfig serializes a configMsg. Adjacency lists are sorted
// ascending, so neighbors encode as a first absolute ID plus deltas.
func encodeConfig(e *encoder, m configMsg) {
	e.reset(fkConfig)
	c := m.cfg
	e.u64(uint64(c.Index))
	e.u64(uint64(c.NumShards))
	e.u64(uint64(c.Lo))
	e.u64(uint64(c.Hi))
	e.u64(uint64(c.N))
	e.fix64(c.Seed)
	e.u64(uint64(c.MessageBitLimit))
	if c.Traced {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.str(c.Layout)
	e.str(m.prog.Algorithm)
	e.u64(uint64(len(m.prog.Args)))
	for _, a := range m.prog.Args {
		e.fix64(a)
	}
	e.str(m.metricsAddr)
	e.u64(uint64(len(m.ext)))
	for _, x := range m.ext {
		e.u64(uint64(x))
	}
	for _, nbrs := range m.adj {
		e.u64(uint64(len(nbrs)))
		prev := 0
		for i, w := range nbrs {
			if i == 0 {
				e.u64(uint64(w))
			} else {
				e.u64(uint64(w - prev))
			}
			prev = w
		}
	}
}

// decodeConfig parses an fkConfig body.
func decodeConfig(d *decoder) (configMsg, error) {
	var m configMsg
	fields := []struct {
		dst  *int
		name string
	}{
		{&m.cfg.Index, "config.index"},
		{&m.cfg.NumShards, "config.num-shards"},
		{&m.cfg.Lo, "config.lo"},
		{&m.cfg.Hi, "config.hi"},
		{&m.cfg.N, "config.n"},
	}
	for _, f := range fields {
		x, err := d.u64(f.name)
		if err != nil {
			return m, err
		}
		if x > math.MaxInt32 {
			return m, d.errAt(f.name, "value overflow")
		}
		*f.dst = int(x)
	}
	seed, err := d.fix64("config.seed")
	if err != nil {
		return m, err
	}
	m.cfg.Seed = seed
	limit, err := d.u64("config.bit-limit")
	if err != nil {
		return m, err
	}
	if limit > math.MaxInt32 {
		return m, d.errAt("config.bit-limit", "value overflow")
	}
	m.cfg.MessageBitLimit = int(limit)
	traced, err := d.u8("config.traced")
	if err != nil {
		return m, err
	}
	m.cfg.Traced = traced != 0
	if m.cfg.Layout, err = d.str("config.layout"); err != nil {
		return m, err
	}
	if m.prog.Algorithm, err = d.str("config.algorithm"); err != nil {
		return m, err
	}
	nArgs, err := d.count("config.args", 8)
	if err != nil {
		return m, err
	}
	m.prog.Args = make([]uint64, nArgs)
	for i := range m.prog.Args {
		if m.prog.Args[i], err = d.fix64("config.arg"); err != nil {
			return m, err
		}
	}
	if m.metricsAddr, err = d.str("config.metrics-addr"); err != nil {
		return m, err
	}
	if m.cfg.Lo < 0 || m.cfg.Hi < m.cfg.Lo || m.cfg.Hi > m.cfg.N {
		//idspace:ok the shard range is an internal-order concept; the error describes it as such
		return m, fmt.Errorf("distrib: config shard range [%d, %d) invalid for n=%d", m.cfg.Lo, m.cfg.Hi, m.cfg.N)
	}
	nExt, err := d.count("config.ext", 1)
	if err != nil {
		return m, err
	}
	if nExt != 0 {
		// The ID map must be a full permutation of [0, N): anything less
		// would let a corrupt frame alias two internal vertices to one
		// external identity.
		if nExt != m.cfg.N {
			return m, fmt.Errorf("distrib: config ID map has %d entries for n=%d", nExt, m.cfg.N)
		}
		m.ext = make([]int, nExt)
		seen := make([]bool, nExt)
		for i := range m.ext {
			x, err := d.u64("config.ext-id")
			if err != nil {
				return m, err
			}
			if x >= uint64(nExt) || seen[x] {
				return m, d.errAt("config.ext-id", "not a permutation")
			}
			seen[x] = true
			m.ext[i] = int(x)
		}
	}
	m.adj = make([][]int, m.cfg.Hi-m.cfg.Lo)
	for i := range m.adj {
		deg, err := d.count("config.degree", 1)
		if err != nil {
			return m, err
		}
		nbrs := make([]int, deg)
		prev := 0
		for j := range nbrs {
			delta, err := d.u64("config.neighbor")
			if err != nil {
				return m, err
			}
			w := int(delta)
			if j > 0 {
				if delta == 0 {
					return m, d.errAt("config.neighbor", "non-ascending adjacency")
				}
				w = prev + int(delta)
			}
			if w < 0 || w >= m.cfg.N {
				return m, fmt.Errorf("distrib: config adjacency neighbor %d out of range [0, %d)", w, m.cfg.N)
			}
			nbrs[j] = w
			prev = w
		}
		m.adj[i] = nbrs
	}
	return m, d.done()
}

// encodeHello serializes the worker's post-config acknowledgement.
func encodeHello(e *encoder, metricsAddr string) {
	e.reset(fkHello)
	e.str(metricsAddr)
}

// decodeHello parses an fkHello body.
func decodeHello(d *decoder) (string, error) {
	addr, err := d.str("hello.metrics-addr")
	if err != nil {
		return "", err
	}
	return addr, d.done()
}

// encodeRound serializes one round input.
func encodeRound(e *encoder, in congest.RoundInput) {
	e.reset(fkRound)
	e.u64(uint64(in.Round))
	e.u64(uint64(len(in.Fates)))
	for _, f := range in.Fates {
		e.u64(uint64(f.V))
		e.u8(byte(f.Fate))
	}
	e.u64(uint64(len(in.InboxLens)))
	for _, l := range in.InboxLens {
		e.u64(uint64(l))
	}
	e.u64(uint64(len(in.Inbox)))
	for _, msg := range in.Inbox {
		encodeMessage(e, msg)
	}
}

// encodeMessage serializes one delivered message (sender + wire payload).
func encodeMessage(e *encoder, msg congest.Message) {
	e.u64(uint64(msg.From))
	e.u8(byte(msg.Wire.Kind))
	e.u64(uint64(msg.Wire.Bits))
	e.fix64(msg.Wire.A)
	e.fix64(msg.Wire.B)
}

// decodeMessage parses one delivered message.
func decodeMessage(d *decoder) (congest.Message, error) {
	var msg congest.Message
	from, err := d.u64("message.from")
	if err != nil {
		return msg, err
	}
	if from > math.MaxInt32 {
		return msg, d.errAt("message.from", "value overflow")
	}
	msg.From = int(from)
	kind, err := d.u8("message.kind")
	if err != nil {
		return msg, err
	}
	msg.Wire.Kind = congest.WireKind(kind)
	bits, err := d.u64("message.bits")
	if err != nil {
		return msg, err
	}
	if bits > congest.MaxWireBits {
		return msg, d.errAt("message.bits", "bit size exceeds the CONGEST budget")
	}
	msg.Wire.Bits = uint16(bits)
	if msg.Wire.A, err = d.fix64("message.a"); err != nil {
		return msg, err
	}
	if msg.Wire.B, err = d.fix64("message.b"); err != nil {
		return msg, err
	}
	return msg, nil
}

// decodeScratch holds the grow-only buffers one connection reuses across
// frame decodes: steady-state rounds re-fill previously allocated slices
// instead of making fresh ones per frame. The decoded structures alias the
// scratch, so a result is valid only until the same scratch's next decode
// — which matches how both ends consume frames (a round input is fully
// swept, a round output fully applied and digested, before the next
// frame is read).
type decodeScratch struct {
	fates  []congest.VertexFate
	lens   []int32
	inbox  []congest.Message
	pkts   []congest.Packet
	events []trace.Event
	halted []int32
	vals   []uint64
}

// grown returns s resized to n elements, reallocating only on growth.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// decodeRound parses an fkRound body into freshly allocated slices.
// Connections that decode many frames should use decodeScratch.round.
func decodeRound(d *decoder) (congest.RoundInput, error) {
	var sc decodeScratch
	return sc.round(d)
}

// round parses an fkRound body, reusing the scratch buffers.
func (sc *decodeScratch) round(d *decoder) (congest.RoundInput, error) {
	var in congest.RoundInput
	round, err := d.u64("round.number")
	if err != nil {
		return in, err
	}
	if round > math.MaxInt32 {
		return in, d.errAt("round.number", "value overflow")
	}
	in.Round = int(round)
	nFates, err := d.count("round.fates", 2)
	if err != nil {
		return in, err
	}
	sc.fates = grown(sc.fates, nFates)
	in.Fates = sc.fates
	for i := range in.Fates {
		v, err := d.u64("round.fate-vertex")
		if err != nil {
			return in, err
		}
		if v > math.MaxInt32 {
			return in, d.errAt("round.fate-vertex", "value overflow")
		}
		fate, err := d.u8("round.fate")
		if err != nil {
			return in, err
		}
		in.Fates[i] = congest.VertexFate{V: int32(v), Fate: int32(fate)}
	}
	nLens, err := d.count("round.inbox-lens", 1)
	if err != nil {
		return in, err
	}
	sc.lens = grown(sc.lens, nLens)
	in.InboxLens = sc.lens
	for i := range in.InboxLens {
		l, err := d.u64("round.inbox-len")
		if err != nil {
			return in, err
		}
		if l > math.MaxInt32 {
			return in, d.errAt("round.inbox-len", "value overflow")
		}
		in.InboxLens[i] = int32(l)
	}
	nMsgs, err := d.count("round.inbox", 12)
	if err != nil {
		return in, err
	}
	sc.inbox = grown(sc.inbox, nMsgs)
	in.Inbox = sc.inbox
	for i := range in.Inbox {
		if in.Inbox[i], err = decodeMessage(d); err != nil {
			return in, err
		}
	}
	return in, d.done()
}

// encodeSweep serializes one round output. The advisory transport fields
// are connection-side measurements and do not travel the wire.
func encodeSweep(e *encoder, out congest.RoundOutput) {
	e.reset(fkSweep)
	e.u64(uint64(len(out.Packets)))
	for _, p := range out.Packets {
		e.u64(uint64(p.To))
		e.u64(uint64(p.From))
		e.u8(byte(p.Wire.Kind))
		e.u64(uint64(p.Wire.Bits))
		e.fix64(p.Wire.A)
		e.fix64(p.Wire.B)
	}
	e.u64(uint64(len(out.Events)))
	for _, ev := range out.Events {
		e.u8(byte(ev.Type))
		e.u64(uint64(ev.Round))
		e.i64(int64(ev.V))
		e.i64(int64(ev.W))
		e.i64(ev.X)
		e.i64(ev.Y)
		e.i64(ev.Z)
	}
	e.u64(uint64(len(out.Halted)))
	for _, v := range out.Halted {
		e.u64(uint64(v))
	}
	e.fix64(out.Draws)
	e.str(out.Err)
}

// decodeSweep parses an fkSweep body into freshly allocated slices.
// Connections that decode many frames should use decodeScratch.sweep.
func decodeSweep(d *decoder) (congest.RoundOutput, error) {
	var sc decodeScratch
	return sc.sweep(d)
}

// sweep parses an fkSweep body, reusing the scratch buffers.
func (sc *decodeScratch) sweep(d *decoder) (congest.RoundOutput, error) {
	var out congest.RoundOutput
	nPkts, err := d.count("sweep.packets", 13)
	if err != nil {
		return out, err
	}
	sc.pkts = grown(sc.pkts, nPkts)
	out.Packets = sc.pkts
	for i := range out.Packets {
		var p congest.Packet
		to, err := d.u64("sweep.packet-to")
		if err != nil {
			return out, err
		}
		from, err := d.u64("sweep.packet-from")
		if err != nil {
			return out, err
		}
		if to > math.MaxInt32 || from > math.MaxInt32 {
			return out, d.errAt("sweep.packet", "vertex overflow")
		}
		p.To, p.From = int32(to), int32(from)
		kind, err := d.u8("sweep.packet-kind")
		if err != nil {
			return out, err
		}
		p.Wire.Kind = congest.WireKind(kind)
		bits, err := d.u64("sweep.packet-bits")
		if err != nil {
			return out, err
		}
		if bits > congest.MaxWireBits {
			return out, d.errAt("sweep.packet-bits", "bit size exceeds the CONGEST budget")
		}
		p.Wire.Bits = uint16(bits)
		if p.Wire.A, err = d.fix64("sweep.packet-a"); err != nil {
			return out, err
		}
		if p.Wire.B, err = d.fix64("sweep.packet-b"); err != nil {
			return out, err
		}
		out.Packets[i] = p
	}
	nEvents, err := d.count("sweep.events", 7)
	if err != nil {
		return out, err
	}
	sc.events = grown(sc.events, nEvents)
	out.Events = sc.events
	for i := range out.Events {
		var ev trace.Event
		t, err := d.u8("sweep.event-type")
		if err != nil {
			return out, err
		}
		ev.Type = trace.Type(t)
		round, err := d.u64("sweep.event-round")
		if err != nil {
			return out, err
		}
		if round > math.MaxInt32 {
			return out, d.errAt("sweep.event-round", "value overflow")
		}
		ev.Round = int32(round)
		v, err := d.i64("sweep.event-v")
		if err != nil {
			return out, err
		}
		w, err := d.i64("sweep.event-w")
		if err != nil {
			return out, err
		}
		if v > math.MaxInt32 || v < math.MinInt32 || w > math.MaxInt32 || w < math.MinInt32 {
			return out, d.errAt("sweep.event", "vertex overflow")
		}
		ev.V, ev.W = int32(v), int32(w)
		if ev.X, err = d.i64("sweep.event-x"); err != nil {
			return out, err
		}
		if ev.Y, err = d.i64("sweep.event-y"); err != nil {
			return out, err
		}
		if ev.Z, err = d.i64("sweep.event-z"); err != nil {
			return out, err
		}
		out.Events[i] = ev
	}
	nHalted, err := d.count("sweep.halted", 1)
	if err != nil {
		return out, err
	}
	sc.halted = grown(sc.halted, nHalted)
	out.Halted = sc.halted
	for i := range out.Halted {
		v, err := d.u64("sweep.halted-vertex")
		if err != nil {
			return out, err
		}
		if v > math.MaxInt32 {
			return out, d.errAt("sweep.halted-vertex", "value overflow")
		}
		out.Halted[i] = int32(v)
	}
	if out.Draws, err = d.fix64("sweep.draws"); err != nil {
		return out, err
	}
	if out.Err, err = d.str("sweep.err"); err != nil {
		return out, err
	}
	return out, d.done()
}

// encodeFinish serializes the end-of-run request.
func encodeFinish(e *encoder) {
	e.reset(fkFinish)
}

// encodeOutputs serializes the worker's exported per-vertex states.
func encodeOutputs(e *encoder, vals []uint64) {
	e.reset(fkOutputs)
	e.u64(uint64(len(vals)))
	for _, x := range vals {
		e.fix64(x)
	}
}

// decodeOutputs parses an fkOutputs body into a fresh slice.
func decodeOutputs(d *decoder) ([]uint64, error) {
	var sc decodeScratch
	return sc.outputs(d)
}

// outputs parses an fkOutputs body, reusing the scratch buffer.
func (sc *decodeScratch) outputs(d *decoder) ([]uint64, error) {
	n, err := d.count("outputs.count", 8)
	if err != nil {
		return nil, err
	}
	sc.vals = grown(sc.vals, n)
	vals := sc.vals
	for i := range vals {
		if vals[i], err = d.fix64("outputs.value"); err != nil {
			return nil, err
		}
	}
	return vals, d.done()
}

// encodeError serializes a fatal worker-side failure.
func encodeError(e *encoder, msg string) {
	e.reset(fkError)
	e.str(msg)
}

// decodeError parses an fkError body.
func decodeError(d *decoder) (string, error) {
	msg, err := d.str("error.message")
	if err != nil {
		return "", err
	}
	return msg, d.done()
}
