// End-to-end suite for the distributed multi-process driver: every run
// here spawns real worker processes (the test binary re-execs itself via
// TestMain/MaybeWorker) and must be bit-identical with the sequential
// driver — statuses, Result counters, and deterministic trace
// fingerprints, clean and faulted, including runs where a worker is
// SIGKILLed mid-run and recovered from the replay log.
package distrib_test

import (
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"

	"repro/internal/congest"
	"repro/internal/distrib"
	"repro/internal/faultsim"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/rng"
	"repro/internal/trace"
)

// TestMain is the self-exec hook: when ExecFleet spawns this test binary
// as a shard worker, MaybeWorker serves the run and exits before any
// test runs.
func TestMain(m *testing.M) {
	distrib.MaybeWorker()
	os.Exit(m.Run())
}

// bfsParents builds the rooted-forest parent map Cole-Vishkin needs
// (mirrors the congest cross-driver suite).
func bfsParents(g *graph.Graph) []int {
	parent := make([]int, g.N())
	for v := range parent {
		parent[v] = -2
	}
	for s := 0; s < g.N(); s++ {
		if parent[s] != -2 {
			continue
		}
		parent[s] = -1
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if parent[w] == -2 {
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
	}
	return parent
}

// runSequential executes prog under the sequential driver with the same
// factory a worker constructs, as the reference for every comparison.
func runSequential(t *testing.T, g *graph.Graph, prog distrib.Program, opts congest.Options) ([]base.Status, congest.Result, error) {
	t.Helper()
	factory, err := distrib.Factory(prog, g.N())
	if err != nil {
		t.Fatal(err)
	}
	opts.Driver = congest.DriverSequential
	r := congest.NewRunner(g, factory, opts)
	res, err := r.Run()
	if err != nil {
		return nil, res, err
	}
	return base.Statuses(r, g.N()), res, nil
}

// runDistributed executes prog over a fresh self-exec fleet.
func runDistributed(t *testing.T, g *graph.Graph, prog distrib.Program, shards int, opts congest.Options) ([]base.Status, congest.Result, error) {
	t.Helper()
	res, r, err := distrib.Run(g, prog, shards, opts)
	if err != nil {
		return nil, res, err
	}
	return base.Statuses(r, g.N()), res, nil
}

// compareRuns fails the test on any divergence between a sequential
// reference and a distributed run of the same program and options.
func compareRuns(t *testing.T, label string, g *graph.Graph, prog distrib.Program, shards int, opts congest.Options) {
	t.Helper()
	seqSt, seqRes, seqErr := runSequential(t, g, prog, opts)
	distSt, distRes, distErr := runDistributed(t, g, prog, shards, opts)
	if (seqErr == nil) != (distErr == nil) || (seqErr != nil && seqErr.Error() != distErr.Error()) {
		t.Fatalf("%s: sequential err %v, distributed err %v", label, seqErr, distErr)
	}
	if seqRes != distRes {
		t.Fatalf("%s: sequential Result %+v != distributed Result %+v", label, seqRes, distRes)
	}
	for v := range seqSt {
		if seqSt[v] != distSt[v] {
			t.Fatalf("%s: node %d status %v sequential, %v distributed", label, v, seqSt[v], distSt[v])
		}
	}
}

// TestDistributedMatchesSequentialClean sweeps every registry algorithm:
// a clean distributed run over real worker processes must reproduce the
// sequential driver's statuses and counters exactly.
func TestDistributedMatchesSequentialClean(t *testing.T) {
	n := 96
	union := gen.UnionOfTrees(n, 2, rng.New(12))
	forest := gen.RandomTree(n, rng.New(11))
	for _, name := range distrib.Algorithms() {
		prog := distrib.Program{Algorithm: name}
		g := union
		if name == "colevishkin" {
			g = forest
			prog.Args = distrib.ColeVishkinArgs(bfsParents(forest))
		}
		compareRuns(t, name, g, prog, 3, congest.Options{Seed: 77})
	}
}

// TestDistributedShardCounts checks the driver across degenerate and
// uneven fleet shapes: one shard, more shards than fits evenly, and more
// shards than vertices (the engine clamps; empty shards never spawn).
func TestDistributedShardCounts(t *testing.T) {
	prog := distrib.Program{Algorithm: "metivier"}
	g := gen.UnionOfTrees(40, 2, rng.New(5))
	for _, shards := range []int{1, 3, 7, 64} {
		compareRuns(t, "metivier/shards", g, prog, shards, congest.Options{Seed: 9})
	}
}

// TestDistributedFaulted runs the full faultsim plan spectrum through the
// distributed driver: fates and message faults are drawn on the
// coordinator, so faulted executions must stay bit-identical too.
func TestDistributedFaulted(t *testing.T) {
	n := 128
	g := gen.UnionOfTrees(n, 2, rng.New(21))
	plan := faultsim.Compose(
		faultsim.BernoulliDrop{P: 0.08},
		faultsim.NewCrashRestart(map[int]faultsim.Window{
			1:     {Down: 2, Up: 8},
			n / 2: {Down: 3, Up: 0},
			n - 1: {Down: 5, Up: 20},
		}),
		faultsim.DelayK{K: 3},
	)
	for _, alg := range []string{"metivier", "ftmetivier"} {
		prog := distrib.Program{Algorithm: alg}
		opts := congest.Options{Seed: 33, Faults: plan, MaxRounds: 400}
		compareRuns(t, alg+"/faulted", g, prog, 3, opts)
	}
}

// goldenFaultedPlan is the exact plan of the congest package's
// TestGoldenFaultedExecution; the distributed driver must reproduce the
// same pinned run.
func goldenFaultedPlan() faultsim.Plan {
	return faultsim.Compose(
		faultsim.BernoulliDrop{P: 0.1},
		faultsim.NewCrashRestart(map[int]faultsim.Window{
			5:   {Down: 2, Up: 14},
			64:  {Down: 4, Up: 0},
			128: {Down: 6, Up: 0},
			200: {Down: 3, Up: 0},
		}),
	)
}

// goldenFaultedConstants are the pinned values shared with the congest
// golden suite. Any drift is a cross-PR determinism break.
const (
	goldenRounds      = 204
	goldenMIS         = 94
	goldenCrashed     = 3
	goldenFingerprint = uint64(0x6608fb1ead99f649)
)

// statusFingerprint matches the congest golden suite's pinning hash
// (FNV-1a over the status bytes).
func statusFingerprint(st []base.Status) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, s := range st {
		h ^= uint64(byte(s))
		h *= prime64
	}
	return h
}

// checkGolden asserts a run reproduced the pinned golden faulted
// execution exactly.
func checkGolden(t *testing.T, label string, g *graph.Graph, st []base.Status, res congest.Result, plan faultsim.Plan) {
	t.Helper()
	if res.Rounds != goldenRounds {
		t.Fatalf("%s: rounds = %d, want %d", label, res.Rounds, goldenRounds)
	}
	crashed := faultsim.CrashedAt(plan, res.Rounds+1, g.N())
	rep, err := faultsim.Check(g, base.MISSet(st), crashed)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe() {
		t.Fatalf("%s: independence violated: %v", label, rep.Violations)
	}
	if rep.InMIS != goldenMIS || rep.Crashed != goldenCrashed {
		t.Fatalf("%s: |MIS| = %d crashed = %d, want %d/%d", label, rep.InMIS, rep.Crashed, goldenMIS, goldenCrashed)
	}
	if fp := statusFingerprint(st); fp != goldenFingerprint {
		t.Fatalf("%s: status fingerprint %#x, want %#x", label, fp, goldenFingerprint)
	}
}

// TestDistributedGoldenFaulted extends the engine's pinned golden faulted
// execution to the distributed driver: n = 256 over four worker
// processes must land on the exact fingerprint every in-process driver
// pins.
func TestDistributedGoldenFaulted(t *testing.T) {
	n := 256
	g := gen.UnionOfTrees(n, 2, rng.New(77))
	plan := goldenFaultedPlan()
	prog := distrib.Program{Algorithm: "ftmetivier"}
	opts := congest.Options{Seed: 1234, Faults: plan, MaxRounds: 400}
	st, res, err := runDistributed(t, g, prog, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "distributed", g, st, res, plan)
}

// TestDistributedTraceFingerprint pins the deterministic event stream:
// a traced distributed run must produce the exact deterministic
// fingerprint of the traced sequential run — program events, halts, RNG
// accounting and round markers all cross the socket unchanged.
func TestDistributedTraceFingerprint(t *testing.T) {
	n := 512
	g := gen.UnionOfTrees(n, 2, rng.New(3))
	prog := distrib.Program{Algorithm: "metivier"}
	factory, err := distrib.Factory(prog, n)
	if err != nil {
		t.Fatal(err)
	}

	seqRec := trace.NewRecorder(0)
	seqRunner := congest.NewRunner(g, factory, congest.Options{Seed: 42, Events: seqRec})
	seqRes, err := seqRunner.Run()
	if err != nil {
		t.Fatal(err)
	}

	distRec := trace.NewRecorder(0)
	distRes, _, err := distrib.Run(g, prog, 3, congest.Options{Seed: 42, Events: distRec})
	if err != nil {
		t.Fatal(err)
	}
	if seqRes != distRes {
		t.Fatalf("Result diverged: sequential %+v, distributed %+v", seqRes, distRes)
	}
	if seqRec.Fingerprint() != distRec.Fingerprint() {
		t.Fatalf("deterministic fingerprint diverged: sequential %#x, distributed %#x",
			seqRec.Fingerprint(), distRec.Fingerprint())
	}
	if seqRec.DeterministicCount() != distRec.DeterministicCount() {
		t.Fatalf("deterministic event count diverged: sequential %d, distributed %d",
			seqRec.DeterministicCount(), distRec.DeterministicCount())
	}
}

// killerSink is a trace sink that SIGKILLs a worker process when a pinned
// round starts, and counts the respawn events recovery emits.
type killerSink struct {
	inner    trace.Sink
	killAt   int32
	pid      func() int
	fired    bool
	respawns int
}

func (k *killerSink) Emit(e trace.Event) {
	k.inner.Emit(e)
	switch {
	case e.Type == trace.EvRoundStart && e.Round == k.killAt && !k.fired:
		k.fired = true
		if pid := k.pid(); pid > 0 {
			_ = syscall.Kill(pid, syscall.SIGKILL)
		}
	case e.Type == trace.EvRespawn:
		k.respawns++
	}
}

// TestDistributedCrashRecovery is the subsystem's headline guarantee: a
// shard worker SIGKILLed at a pinned round mid-way through the golden
// faulted run is respawned and fast-forwarded from the replay log, and
// the run still converges to the exact pinned golden fingerprint.
func TestDistributedCrashRecovery(t *testing.T) {
	n := 256
	g := gen.UnionOfTrees(n, 2, rng.New(77))
	plan := goldenFaultedPlan()
	prog := distrib.Program{Algorithm: "ftmetivier"}
	fleet, err := distrib.NewExecFleet(g, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	const killRound = 57
	const killShard = 2
	rec := trace.NewRecorder(0)
	killer := &killerSink{inner: rec, killAt: killRound, pid: func() int { return fleet.Pid(killShard) }}
	factory, err := distrib.Factory(prog, n)
	if err != nil {
		t.Fatal(err)
	}
	opts := congest.Options{
		Seed: 1234, Faults: plan, MaxRounds: 400,
		Driver: congest.DriverDistributed, Fleet: fleet, Events: killer,
	}
	r := congest.NewRunner(g, factory, opts)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !killer.fired {
		t.Fatalf("kill hook never fired: run ended after %d rounds", res.Rounds)
	}
	if killer.respawns == 0 {
		t.Fatal("no respawn event observed: the killed worker was never recovered")
	}
	checkGolden(t, "recovered", g, base.Statuses(r, n), res, plan)
}

// TestFleetReuse is the fleet-reuse guarantee: one ExecFleet serves
// several runs back-to-back over the same worker processes — a clean
// traced run, the pinned golden faulted run, and a relabeled run — each
// reconfigured over the live connections, with no respawns in between,
// and every run bit-identical to its sequential reference.
func TestFleetReuse(t *testing.T) {
	n := 256
	g := gen.UnionOfTrees(n, 2, rng.New(77))
	prog := distrib.Program{Algorithm: "ftmetivier"}
	shards := 4
	fleet, err := distrib.NewExecFleet(g, prog, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	factory, err := distrib.Factory(prog, n)
	if err != nil {
		t.Fatal(err)
	}

	// Run 1 (clean, traced): pins the deterministic event fingerprint
	// against a traced sequential run of the same options.
	distRec := trace.NewRecorder(0)
	r1 := congest.NewRunner(g, factory, congest.Options{
		Seed: 42, Events: distRec, Driver: congest.DriverDistributed, Fleet: fleet,
	})
	res1, err := r1.Run()
	if err != nil {
		t.Fatal(err)
	}
	seqRec := trace.NewRecorder(0)
	seqRunner := congest.NewRunner(g, factory, congest.Options{Seed: 42, Events: seqRec})
	seqRes, err := seqRunner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res1 != seqRes {
		t.Fatalf("run 1: Result %+v != sequential %+v", res1, seqRes)
	}
	if distRec.Fingerprint() != seqRec.Fingerprint() {
		t.Fatalf("run 1: fingerprint %#x != sequential %#x", distRec.Fingerprint(), seqRec.Fingerprint())
	}
	pids := make([]int, shards)
	for s := range pids {
		if pids[s] = fleet.Pid(s); pids[s] <= 0 {
			t.Fatalf("run 1: shard %d has no live worker", s)
		}
	}

	// Run 2 (faulted): the same processes must reproduce the pinned
	// golden faulted execution after in-place reconfiguration.
	plan := goldenFaultedPlan()
	r2 := congest.NewRunner(g, factory, congest.Options{
		Seed: 1234, Faults: plan, MaxRounds: 400,
		Driver: congest.DriverDistributed, Fleet: fleet,
	})
	res2, err := r2.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "reused fleet", g, base.Statuses(r2, n), res2, plan)

	// Run 3 (relabeled): reuse once more under a non-identity layout; the
	// external-ID statuses must match the sequential run of that layout.
	r3 := congest.NewRunner(g, factory, congest.Options{
		Seed: 42, Layout: "bfs", Driver: congest.DriverDistributed, Fleet: fleet,
	})
	res3, err := r3.Run()
	if err != nil {
		t.Fatal(err)
	}
	seqSt, seqRes3, err := runSequential(t, g, prog, congest.Options{Seed: 42, Layout: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	if res3 != seqRes3 {
		t.Fatalf("run 3: Result %+v != sequential %+v", res3, seqRes3)
	}
	distSt := base.Statuses(r3, n)
	for v := range seqSt {
		if seqSt[v] != distSt[v] {
			t.Fatalf("run 3: node %d status %v sequential, %v distributed", v, seqSt[v], distSt[v])
		}
	}

	// All three runs must have ridden the same worker processes.
	for s := range pids {
		if got := fleet.Pid(s); got != pids[s] {
			t.Fatalf("shard %d respawned between runs: pid %d -> %d", s, pids[s], got)
		}
	}
}

// TestDialFleetTCP runs the distributed driver over TCP against
// in-process listeners speaking the worker protocol — the transport
// cmd/misnode serves — and checks bit-identity with sequential.
func TestDialFleetTCP(t *testing.T) {
	n := 80
	g := gen.UnionOfTrees(n, 2, rng.New(8))
	prog := distrib.Program{Algorithm: "metivier"}
	shards := 3

	addrs := make([]string, shards)
	lns := make([]net.Listener, shards)
	for s := 0; s < shards; s++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns[s] = ln
		addrs[s] = ln.Addr().String()
		go func(ln net.Listener) {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go func(c net.Conn) {
					defer c.Close()
					_ = distrib.ServeConn(c)
				}(c)
			}
		}(ln)
	}

	fleet, err := distrib.NewDialFleet(g, prog, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if got := fleet.Transport(); got != "tcp" {
		t.Fatalf("Transport() = %q, want tcp", got)
	}
	factory, err := distrib.Factory(prog, n)
	if err != nil {
		t.Fatal(err)
	}
	opts := congest.Options{Seed: 77, Driver: congest.DriverDistributed, Fleet: fleet}
	r := congest.NewRunner(g, factory, opts)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}

	seqSt, seqRes, err := runSequential(t, g, prog, congest.Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if res != seqRes {
		t.Fatalf("tcp Result %+v != sequential %+v", res, seqRes)
	}
	distSt := base.Statuses(r, n)
	for v := range seqSt {
		if seqSt[v] != distSt[v] {
			t.Fatalf("node %d status %v sequential, %v tcp", v, seqSt[v], distSt[v])
		}
	}
}

// scraperSink scrapes a worker's /metrics endpoint once a pinned round
// starts, while the worker is still alive mid-run.
type scraperSink struct {
	at   int32
	addr func() string
	body atomic.Pointer[string]
}

func (s *scraperSink) Emit(e trace.Event) {
	if e.Type != trace.EvRoundStart || e.Round != s.at || s.body.Load() != nil {
		return
	}
	resp, err := http.Get("http://" + s.addr() + "/metrics")
	if err != nil {
		msg := "scrape error: " + err.Error()
		s.body.Store(&msg)
		return
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		msg := "scrape read error: " + err.Error()
		s.body.Store(&msg)
		return
	}
	body := string(b)
	s.body.Store(&body)
}

// TestWorkerMetricsEndpoint spawns a fleet with per-shard Prometheus
// endpoints and scrapes one mid-run: the misnode metric family must be
// present and the shard must have swept rounds by the time it is scraped.
func TestWorkerMetricsEndpoint(t *testing.T) {
	n := 64
	g := gen.UnionOfTrees(n, 2, rng.New(4))
	prog := distrib.Program{Algorithm: "metivier"}
	fleet, err := distrib.NewExecFleet(g, prog, 2, distrib.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	scraper := &scraperSink{at: 2, addr: func() string { return fleet.MetricsAddr(0) }}
	factory, err := distrib.Factory(prog, n)
	if err != nil {
		t.Fatal(err)
	}
	opts := congest.Options{Seed: 6, Driver: congest.DriverDistributed, Fleet: fleet, Events: scraper}
	r := congest.NewRunner(g, factory, opts)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	bp := scraper.body.Load()
	if bp == nil {
		t.Fatal("metrics scrape never ran: run ended before the pinned round")
	}
	body := *bp
	if strings.HasPrefix(body, "scrape") {
		t.Fatalf("metrics scrape failed: %s", body)
	}
	for _, metric := range []string{
		"misnode_rounds_total", "misnode_messages_in_total", "misnode_packets_out_total",
		"misnode_frame_bytes_in_total", "misnode_frame_bytes_out_total",
		"misnode_live_vertices", "misnode_shard_index",
	} {
		if !strings.Contains(body, metric) {
			t.Fatalf("metrics output missing %s:\n%s", metric, body)
		}
	}
	if fleet.MetricsAddr(1) == "" {
		t.Fatal("shard 1 reported no metrics address")
	}
}

// TestFrameEventsEmitted checks the coordinator publishes advisory
// EvFrame transport events when timing is requested, and that they stay
// out of the deterministic fingerprint.
func TestFrameEventsEmitted(t *testing.T) {
	n := 48
	g := gen.UnionOfTrees(n, 2, rng.New(2))
	prog := distrib.Program{Algorithm: "metivier"}
	rec := trace.NewRecorder(0)
	_, _, err := distrib.Run(g, prog, 2, congest.Options{Seed: 5, Events: rec, EventTiming: true})
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	var bytesOut int64
	for _, e := range rec.Events() {
		if e.Type == trace.EvFrame {
			frames++
			bytesOut += e.X
			if e.Type.Deterministic() {
				t.Fatal("EvFrame must be advisory, not deterministic")
			}
		}
	}
	if frames == 0 {
		t.Fatal("no EvFrame events observed with EventTiming on")
	}
	if bytesOut == 0 {
		t.Fatal("EvFrame events carried no transport volume")
	}

	// The same run untimed must fingerprint identically: EvFrame is
	// advisory and cannot leak into the deterministic stream.
	rec2 := trace.NewRecorder(0)
	_, _, err = distrib.Run(g, prog, 2, congest.Options{Seed: 5, Events: rec2})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fingerprint() != rec2.Fingerprint() {
		t.Fatalf("EventTiming changed the deterministic fingerprint: %#x vs %#x",
			rec.Fingerprint(), rec2.Fingerprint())
	}
}

// TestRunValidation covers the driver's refusal paths: a missing fleet, a
// bad algorithm name, and a malformed program argument must all surface
// as errors, never panics.
func TestRunValidation(t *testing.T) {
	g := gen.UnionOfTrees(16, 2, rng.New(1))
	factory, err := distrib.Factory(distrib.Program{Algorithm: "metivier"}, g.N())
	if err != nil {
		t.Fatal(err)
	}
	r := congest.NewRunner(g, factory, congest.Options{Driver: congest.DriverDistributed})
	if _, err := r.Run(); err == nil {
		t.Fatal("DriverDistributed without a fleet must fail")
	}
	if _, err := distrib.Factory(distrib.Program{Algorithm: "nope"}, 16); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
	if _, err := distrib.Factory(distrib.Program{Algorithm: "colevishkin"}, 16); err == nil {
		t.Fatal("colevishkin without parents must fail")
	}
	if _, err := distrib.Factory(distrib.Program{Algorithm: "degreduce", Args: []uint64{0}}, 16); err == nil {
		t.Fatal("degreduce with zero iterations must fail")
	}
	if _, err := distrib.NewExecFleet(g, distrib.Program{Algorithm: "metivier"}, 0); err == nil {
		t.Fatal("zero-shard fleet must fail")
	}
	if _, err := distrib.NewDialFleet(g, distrib.Program{Algorithm: "metivier"}, nil); err == nil {
		t.Fatal("empty dial fleet must fail")
	}
}
