// Frame codec hardening: exhaustive round-trip property tests over every
// proto wire kind and boundary bit size, plus adversarial decoding —
// every truncated prefix and a fuzz sweep of corrupt payloads must be
// rejected with a contextual error, never a panic, and corrupt counts
// must not drive oversized allocations.
package distrib

import (
	"math"
	"net"
	"reflect"
	"strings"
	"testing"

	"repro/internal/congest"
	"repro/internal/mis/proto"
	"repro/internal/rng"
	"repro/internal/trace"
)

// protoKinds is the exhaustive wire-kind set programs put on the wire.
func protoKinds() []congest.WireKind {
	return []congest.WireKind{
		proto.WirePriority, proto.WireEpochPriority, proto.WireFlag,
		proto.WireDegree, proto.WireDesire, proto.WireColor,
		proto.WireLevel, proto.WireForestEdge,
	}
}

// boundaryBits are the payload sizes worth probing: empty, single bit,
// around the byte boundary, and the engine's 128-bit CONGEST cap.
func boundaryBits() []uint16 {
	return []uint16{0, 1, 7, 8, 63, 64, 127, uint16(congest.MaxWireBits)}
}

// boundaryWords are the 64-bit payload word values worth probing.
func boundaryWords() []uint64 {
	return []uint64{0, 1, math.MaxUint32, math.MaxUint64 - 1, math.MaxUint64}
}

// decodeAs reruns payloadKind + the kind's decoder, returning the decode
// error (nil on success). It is the single entry point the adversarial
// tests drive so no decoder path can panic unobserved.
func decodeAs(payload []byte) error {
	kind, dec, err := payloadKind(payload)
	if err != nil {
		return err
	}
	switch kind {
	case fkConfig:
		_, err = decodeConfig(dec)
	case fkHello:
		_, err = decodeHello(dec)
	case fkRound:
		_, err = decodeRound(dec)
	case fkSweep:
		_, err = decodeSweep(dec)
	case fkFinish:
		err = dec.done()
	case fkOutputs:
		_, err = decodeOutputs(dec)
	case fkError:
		_, err = decodeError(dec)
	default:
		err = dec.done()
	}
	return err
}

// TestRoundTripAllWireKinds sends one message of every proto kind at
// every boundary bit size and word value through the round codec.
func TestRoundTripAllWireKinds(t *testing.T) {
	var msgs []congest.Message
	from := 0
	for _, k := range protoKinds() {
		for _, bits := range boundaryBits() {
			for _, word := range boundaryWords() {
				msgs = append(msgs, congest.Message{
					From: from,
					Wire: congest.Wire{Kind: k, Bits: bits, A: word, B: ^word},
				})
				from++
			}
		}
	}
	in := congest.RoundInput{
		Round:     3,
		Fates:     []congest.VertexFate{{V: 0, Fate: 1}, {V: int32(len(msgs) - 1), Fate: 2}},
		InboxLens: []int32{int32(len(msgs))},
		Inbox:     msgs,
	}
	var e encoder
	encodeRound(&e, in)
	kind, dec, err := payloadKind(e.buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != fkRound {
		t.Fatalf("payload kind = %s, want round", kind)
	}
	got, err := decodeRound(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round input did not survive the round trip:\n got %+v\nwant %+v", got, in)
	}
}

// TestSweepRoundTrip exercises the worker→coordinator payload with
// boundary packets, negative event fields, and an error string.
func TestSweepRoundTrip(t *testing.T) {
	out := congest.RoundOutput{
		Packets: []congest.Packet{
			{To: 0, From: 0, Wire: congest.Wire{Kind: proto.WirePriority, Bits: 1, A: 1}},
			{To: math.MaxInt32, From: math.MaxInt32, Wire: congest.Wire{
				Kind: proto.WireForestEdge, Bits: uint16(congest.MaxWireBits),
				A: math.MaxUint64, B: math.MaxUint64,
			}},
		},
		Events: []trace.Event{
			{Type: trace.EvHalt, Round: 7, V: 12},
			{Type: trace.EvNodeState, Round: math.MaxInt32, V: -1, W: math.MinInt32,
				X: math.MinInt64, Y: math.MaxInt64, Z: -1},
		},
		Halted: []int32{0, 5, math.MaxInt32},
		Draws:  math.MaxUint64,
		Err:    "congest: node 5 sent to non-neighbor 9",
	}
	var e encoder
	encodeSweep(&e, out)
	_, dec, err := payloadKind(e.buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSweep(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, out) {
		t.Fatalf("sweep output did not survive the round trip:\n got %+v\nwant %+v", got, out)
	}
}

// TestConfigRoundTrip exercises the handshake payload with boundary
// seeds, program args, and gap-heavy adjacency deltas.
func TestConfigRoundTrip(t *testing.T) {
	m := configMsg{
		cfg: congest.ShardConfig{
			Index: 2, NumShards: 4, Lo: 10, Hi: 14, N: 1 << 20,
			Seed: math.MaxUint64, MessageBitLimit: 128, Traced: true,
			Layout: "degsort",
		},
		prog:        Program{Algorithm: "colevishkin", Args: []uint64{0, 1, math.MaxUint64, 42}},
		adj:         [][]int{{0, 1, 1<<20 - 1}, {}, {13}, {3, 7, 11, 12}},
		metricsAddr: "127.0.0.1:0",
	}
	var e encoder
	encodeConfig(&e, m)
	_, dec, err := payloadKind(e.buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeConfig(dec)
	if err != nil {
		t.Fatal(err)
	}
	// The decoder canonicalizes an empty adjacency row to an empty slice.
	if len(m.adj[1]) == 0 && len(got.adj[1]) == 0 {
		got.adj[1] = m.adj[1]
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("config did not survive the round trip:\n got %+v\nwant %+v", got, m)
	}
}

// TestSmallFramesRoundTrip covers hello, outputs, error and finish.
func TestSmallFramesRoundTrip(t *testing.T) {
	var e encoder
	encodeHello(&e, "10.0.0.1:9999")
	_, dec, _ := payloadKind(e.buf)
	if addr, err := decodeHello(dec); err != nil || addr != "10.0.0.1:9999" {
		t.Fatalf("hello round trip: %q, %v", addr, err)
	}
	vals := []uint64{0, 1, math.MaxUint64}
	encodeOutputs(&e, vals)
	_, dec, _ = payloadKind(e.buf)
	if got, err := decodeOutputs(dec); err != nil || !reflect.DeepEqual(got, vals) {
		t.Fatalf("outputs round trip: %v, %v", got, err)
	}
	encodeError(&e, "boom")
	_, dec, _ = payloadKind(e.buf)
	if msg, err := decodeError(dec); err != nil || msg != "boom" {
		t.Fatalf("error round trip: %q, %v", msg, err)
	}
	encodeFinish(&e)
	_, dec, _ = payloadKind(e.buf)
	if err := dec.done(); err != nil {
		t.Fatalf("finish frame should carry no body: %v", err)
	}
}

// samplePayloads builds one representative encoded payload per frame kind.
func samplePayloads() map[string][]byte {
	var e encoder
	out := map[string][]byte{}
	encodeConfig(&e, configMsg{
		cfg:  congest.ShardConfig{Index: 1, NumShards: 2, Lo: 2, Hi: 4, N: 8, Seed: 99},
		prog: Program{Algorithm: "metivier", Args: []uint64{7}},
		adj:  [][]int{{0, 3}, {1}},
	})
	out["config"] = append([]byte(nil), e.buf...)
	encodeHello(&e, "127.0.0.1:41234")
	out["hello"] = append([]byte(nil), e.buf...)
	encodeRound(&e, congest.RoundInput{
		Round:     2,
		Fates:     []congest.VertexFate{{V: 3, Fate: 1}},
		InboxLens: []int32{1, 2},
		Inbox: []congest.Message{
			{From: 0, Wire: congest.Wire{Kind: proto.WireFlag, Bits: 1, A: 1}},
			{From: 5, Wire: congest.Wire{Kind: proto.WireDegree, Bits: 32, A: 9}},
			{From: 6, Wire: congest.Wire{Kind: proto.WireColor, Bits: 8, A: 3, B: 1}},
		},
	})
	out["round"] = append([]byte(nil), e.buf...)
	encodeSweep(&e, congest.RoundOutput{
		Packets: []congest.Packet{{To: 1, From: 2, Wire: congest.Wire{Kind: proto.WireDesire, Bits: 2, A: 2}}},
		Events:  []trace.Event{{Type: trace.EvHalt, Round: 2, V: 3}},
		Halted:  []int32{3},
		Draws:   17,
		Err:     "",
	})
	out["sweep"] = append([]byte(nil), e.buf...)
	encodeOutputs(&e, []uint64{1, 2, 3})
	out["outputs"] = append([]byte(nil), e.buf...)
	encodeError(&e, "worker failed")
	out["error"] = append([]byte(nil), e.buf...)
	encodeFinish(&e)
	out["finish"] = append([]byte(nil), e.buf...)
	return out
}

// TestTruncatedFramesRejected decodes every strict prefix of every frame
// kind: each must fail with a contextual error (and never panic) — a
// partial frame cannot be mistaken for a complete one.
func TestTruncatedFramesRejected(t *testing.T) {
	for name, payload := range samplePayloads() {
		if err := decodeAs(payload); err != nil {
			t.Fatalf("%s: intact payload rejected: %v", name, err)
		}
		for cut := 0; cut < len(payload); cut++ {
			err := decodeAs(payload[:cut])
			if err == nil {
				t.Fatalf("%s: prefix of %d/%d bytes decoded cleanly", name, cut, len(payload))
			}
			if !strings.Contains(err.Error(), "distrib:") {
				t.Fatalf("%s: prefix error lacks context: %v", name, err)
			}
		}
	}
}

// TestTrailingBytesRejected appends garbage to every frame kind: done()
// must flag the surplus.
func TestTrailingBytesRejected(t *testing.T) {
	for name, payload := range samplePayloads() {
		grown := append(append([]byte(nil), payload...), 0x5a)
		if err := decodeAs(grown); err == nil {
			t.Fatalf("%s: payload with trailing bytes decoded cleanly", name)
		}
	}
}

// TestCorruptCountsRejected hand-crafts payloads whose collection counts
// vastly exceed the bytes present: the plausibility bound must reject
// them before any allocation happens.
func TestCorruptCountsRejected(t *testing.T) {
	var e encoder
	e.reset(fkRound)
	e.u64(0)        // round
	e.u64(1 << 40)  // absurd fate count
	_, dec, _ := payloadKind(e.buf)
	if _, err := decodeRound(dec); err == nil || !strings.Contains(err.Error(), "implausible count") {
		t.Fatalf("absurd fate count not rejected: %v", err)
	}
	e.reset(fkOutputs)
	e.u64(math.MaxUint64 / 2)
	_, dec, _ = payloadKind(e.buf)
	if _, err := decodeOutputs(dec); err == nil || !strings.Contains(err.Error(), "implausible count") {
		t.Fatalf("absurd outputs count not rejected: %v", err)
	}
	e.reset(fkError)
	e.u64(1 << 35)
	_, dec, _ = payloadKind(e.buf)
	if _, err := decodeError(dec); err == nil {
		t.Fatal("absurd string length not rejected")
	}
}

// TestNonAscendingAdjacencyRejected corrupts a config's delta-coded
// adjacency with a zero delta (a duplicate neighbor).
func TestNonAscendingAdjacencyRejected(t *testing.T) {
	var e encoder
	e.reset(fkConfig)
	for _, x := range []uint64{0, 1, 0, 2, 8} { // index, shards, lo, hi, n
		e.u64(x)
	}
	e.fix64(7) // seed
	e.u64(0)   // bit limit
	e.u8(0)    // traced
	e.str("")  // layout
	e.str("metivier")
	e.u64(0) // args
	e.str("")
	e.u64(0) // ext: identity
	e.u64(3) // degree of vertex 0
	e.u64(4)
	e.u64(0) // zero delta: duplicate neighbor
	e.u64(1)
	// vertex 1 row omitted: the zero delta must fail first.
	_, dec, _ := payloadKind(e.buf)
	if _, err := decodeConfig(dec); err == nil || !strings.Contains(err.Error(), "non-ascending adjacency") {
		t.Fatalf("duplicate adjacency not rejected: %v", err)
	}
}

// TestConfigExtRoundTrip exercises the handshake's external-ID map: a
// full permutation survives the trip, and identity ships as zero entries.
func TestConfigExtRoundTrip(t *testing.T) {
	m := configMsg{
		cfg: congest.ShardConfig{
			Index: 0, NumShards: 2, Lo: 0, Hi: 3, N: 6, Seed: 7, Layout: "bfs",
		},
		prog: Program{Algorithm: "metivier"},
		ext:  []int{5, 3, 0, 1, 4, 2},
		adj:  [][]int{{1, 2}, {0}, {0, 5}},
	}
	var e encoder
	encodeConfig(&e, m)
	_, dec, err := payloadKind(e.buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeConfig(dec)
	if err != nil {
		t.Fatal(err)
	}
	// The decoder canonicalizes empty args to an empty slice.
	if len(got.prog.Args) == 0 && len(m.prog.Args) == 0 {
		got.prog.Args = m.prog.Args
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("ext config did not survive the round trip:\n got %+v\nwant %+v", got, m)
	}

	m.ext = nil
	m.cfg.Layout = ""
	encodeConfig(&e, m)
	_, dec, _ = payloadKind(e.buf)
	got, err = decodeConfig(dec)
	if err != nil {
		t.Fatal(err)
	}
	if got.ext != nil {
		t.Fatalf("identity config decoded a non-nil ext map: %v", got.ext)
	}
}

// TestConfigExtRejected feeds the decoder corrupt external-ID maps: a
// count that is neither 0 nor N, an out-of-range entry, and a duplicate.
// Each must fail with a contextual error, never alias two vertices.
func TestConfigExtRejected(t *testing.T) {
	encode := func(ext []uint64, extCount uint64) []byte {
		var e encoder
		e.reset(fkConfig)
		for _, x := range []uint64{0, 1, 0, 4, 4} { // index, shards, lo, hi, n
			e.u64(x)
		}
		e.fix64(7) // seed
		e.u64(0)   // bit limit
		e.u8(0)    // traced
		e.str("")  // layout
		e.str("metivier")
		e.u64(0) // args
		e.str("")
		e.u64(extCount)
		for _, x := range ext {
			e.u64(x)
		}
		// Adjacency rows omitted: the ext map must fail first.
		return append([]byte(nil), e.buf...)
	}
	cases := []struct {
		name string
		ext  []uint64
		n    uint64
		want string
	}{
		{"short count", []uint64{0, 1, 2}, 3, "3 entries for n=4"},
		{"out of range", []uint64{0, 1, 2, 4}, 4, "not a permutation"},
		{"duplicate", []uint64{0, 1, 1, 2}, 4, "not a permutation"},
	}
	for _, tc := range cases {
		_, dec, err := payloadKind(encode(tc.ext, tc.n))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if _, err := decodeConfig(dec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: corrupt ext map not rejected: %v", tc.name, err)
		}
	}
}

// TestDecodeScratchReuse drives one decodeScratch through a sequence of
// frames with very different sizes — the reused-buffer path every worker
// and coordinator connection runs — and checks each decode matches a
// fresh-allocation decode, including shrinking after a large frame.
func TestDecodeScratchReuse(t *testing.T) {
	r := rng.New(0xc0de)
	mkRound := func(nMsgs, nFates, nLens int) congest.RoundInput {
		in := congest.RoundInput{Round: int(r.Uint64() % 100)}
		for i := 0; i < nFates; i++ {
			in.Fates = append(in.Fates, congest.VertexFate{V: int32(i), Fate: int32(r.Uint64() % 3)})
		}
		for i := 0; i < nLens; i++ {
			in.InboxLens = append(in.InboxLens, 0)
		}
		for i := 0; i < nMsgs; i++ {
			if nLens > 0 {
				in.InboxLens[int(r.Uint64()%uint64(nLens))]++
			}
			in.Inbox = append(in.Inbox, congest.Message{
				From: int(r.Uint64() % 1000),
				Wire: congest.Wire{Kind: proto.WireFlag, Bits: 64, A: r.Uint64()},
			})
		}
		// Inbox is delivered grouped by destination; only the lens sum matters.
		if nLens == 0 {
			in.Inbox = nil
		}
		return in
	}
	var e encoder
	var sc decodeScratch
	sizes := []struct{ msgs, fates, lens int }{
		{0, 0, 0}, {1000, 64, 32}, {3, 1, 2}, {0, 0, 8}, {500, 0, 16}, {1, 1, 1},
	}
	for i, sz := range sizes {
		in := mkRound(sz.msgs, sz.fates, sz.lens)
		encodeRound(&e, in)
		_, dec, err := payloadKind(e.buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := sc.round(dec)
		if err != nil {
			t.Fatalf("frame %d: scratch decode: %v", i, err)
		}
		_, dec, _ = payloadKind(e.buf)
		fresh, err := decodeRound(dec)
		if err != nil {
			t.Fatalf("frame %d: fresh decode: %v", i, err)
		}
		// The scratch path hands back empty (not nil) slices for empty
		// sections; only contents matter on the wire.
		normRound(&got)
		normRound(&fresh)
		if !reflect.DeepEqual(got, fresh) {
			t.Fatalf("frame %d: scratch decode diverged from fresh decode:\n got %+v\nwant %+v", i, got, fresh)
		}
	}
	// The sweep and outputs paths share the same scratch.
	outSizes := []int{0, 2000, 5}
	for i, n := range outSizes {
		out := congest.RoundOutput{Draws: uint64(n)}
		for j := 0; j < n; j++ {
			out.Packets = append(out.Packets, congest.Packet{
				To: int32(j), From: int32(j), Wire: congest.Wire{Kind: proto.WireFlag, Bits: 1, A: 1},
			})
			out.Halted = append(out.Halted, int32(j))
		}
		encodeSweep(&e, out)
		_, dec, _ := payloadKind(e.buf)
		got, err := sc.sweep(dec)
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
		_, dec, _ = payloadKind(e.buf)
		fresh, _ := decodeSweep(dec)
		normSweep(&got)
		normSweep(&fresh)
		if !reflect.DeepEqual(got, fresh) {
			t.Fatalf("sweep %d: scratch decode diverged from fresh decode", i)
		}
		vals := make([]uint64, n)
		for j := range vals {
			vals[j] = r.Uint64()
		}
		encodeOutputs(&e, vals)
		_, dec, _ = payloadKind(e.buf)
		gotVals, err := sc.outputs(dec)
		if err != nil {
			t.Fatalf("outputs %d: %v", i, err)
		}
		if len(gotVals) != len(vals) || (len(vals) > 0 && !reflect.DeepEqual(gotVals, vals)) {
			t.Fatalf("outputs %d: scratch decode diverged: got %v want %v", i, gotVals, vals)
		}
	}
}

// normRound and normSweep map empty slices to nil so scratch-backed and
// freshly allocated decodes compare equal.
func normRound(in *congest.RoundInput) {
	if len(in.Fates) == 0 {
		in.Fates = nil
	}
	if len(in.InboxLens) == 0 {
		in.InboxLens = nil
	}
	if len(in.Inbox) == 0 {
		in.Inbox = nil
	}
}

func normSweep(out *congest.RoundOutput) {
	if len(out.Packets) == 0 {
		out.Packets = nil
	}
	if len(out.Events) == 0 {
		out.Events = nil
	}
	if len(out.Halted) == 0 {
		out.Halted = nil
	}
}

// TestFuzzDecodersNeverPanic throws deterministic pseudo-random garbage
// (and mutated valid frames) at every decoder: errors are expected,
// panics and runaway allocations are not.
func TestFuzzDecodersNeverPanic(t *testing.T) {
	r := rng.New(0xf022)
	buf := make([]byte, 256)
	for trial := 0; trial < 4096; trial++ {
		n := int(r.Uint64() % uint64(len(buf)))
		payload := buf[:n]
		for i := range payload {
			payload[i] = byte(r.Uint64())
		}
		if n > 0 {
			// Half the trials get a valid kind byte so the real decoders run.
			if r.Uint64()&1 == 0 {
				payload[0] = byte(1 + r.Uint64()%7)
			}
		}
		_ = decodeAs(payload)
	}
	// Mutate valid frames: flip one byte at a time and decode. Some
	// mutations stay well-formed; the property under test is no-panic.
	for _, payload := range samplePayloads() {
		for i := range payload {
			mut := append([]byte(nil), payload...)
			mut[i] ^= 0xff
			_ = decodeAs(mut)
		}
	}
}

// TestFrameConnRoundTrip pushes frames through a real socket pair and
// checks framing, byte accounting, and oversize rejection.
func TestFrameConnRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fa, fb := newFrameConn(a), newFrameConn(b)

	var e encoder
	encodeHello(&e, "addr")
	sent := append([]byte(nil), e.buf...)
	errc := make(chan error, 1)
	go func() { errc <- fa.writeFrame(sent) }()
	payload, err := fb.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-errc; werr != nil {
		t.Fatal(werr)
	}
	if !reflect.DeepEqual(payload, sent) {
		t.Fatalf("frame payload changed in flight: %x != %x", payload, sent)
	}
	if fa.bytesOut != int64(4+len(sent)) || fb.bytesIn != int64(4+len(sent)) {
		t.Fatalf("byte accounting off: out=%d in=%d want %d", fa.bytesOut, fb.bytesIn, 4+len(sent))
	}

	if err := fa.writeFrame(make([]byte, maxFrameLen+1)); err == nil {
		t.Fatal("oversized frame write not rejected")
	}

	// A corrupt length prefix past the cap must be rejected by the reader.
	go func() {
		hdr := []byte{0xff, 0xff, 0xff, 0xff}
		a.Write(hdr)
	}()
	if _, err := fb.readFrame(); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("corrupt length prefix not rejected: %v", err)
	}
}
