package distrib

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// frameConn wraps a stream socket with the length-prefixed framing both
// sides of the protocol speak: every frame is a 4-byte little-endian
// payload length followed by the payload (kind byte + body). The wrapper
// counts bytes in each direction so connections can report the advisory
// per-round transport volume.
type frameConn struct {
	c        net.Conn
	r        *bufio.Reader
	w        *bufio.Writer
	lenBuf   [4]byte
	readBuf  []byte
	bytesIn  int64
	bytesOut int64
}

// newFrameConn wraps an established socket.
func newFrameConn(c net.Conn) *frameConn {
	return &frameConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

// writeFrame sends one frame (length prefix + payload) and flushes.
func (fc *frameConn) writeFrame(payload []byte) error {
	if len(payload) > maxFrameLen {
		return fmt.Errorf("distrib: frame payload of %d bytes exceeds limit %d", len(payload), maxFrameLen)
	}
	binary.LittleEndian.PutUint32(fc.lenBuf[:], uint32(len(payload)))
	if _, err := fc.w.Write(fc.lenBuf[:]); err != nil {
		return fmt.Errorf("distrib: write frame length: %w", err)
	}
	if _, err := fc.w.Write(payload); err != nil {
		return fmt.Errorf("distrib: write frame payload: %w", err)
	}
	if err := fc.w.Flush(); err != nil {
		return fmt.Errorf("distrib: flush frame: %w", err)
	}
	fc.bytesOut += int64(4 + len(payload))
	return nil
}

// readFrame receives one frame payload. The returned slice is valid only
// until the next readFrame call (the buffer is reused).
func (fc *frameConn) readFrame() ([]byte, error) {
	if _, err := io.ReadFull(fc.r, fc.lenBuf[:]); err != nil {
		return nil, fmt.Errorf("distrib: read frame length: %w", err)
	}
	n := binary.LittleEndian.Uint32(fc.lenBuf[:])
	if n > maxFrameLen {
		return nil, fmt.Errorf("distrib: frame length %d exceeds limit %d", n, maxFrameLen)
	}
	if cap(fc.readBuf) < int(n) {
		fc.readBuf = make([]byte, n)
	}
	fc.readBuf = fc.readBuf[:n]
	if _, err := io.ReadFull(fc.r, fc.readBuf); err != nil {
		return nil, fmt.Errorf("distrib: read frame payload: %w", err)
	}
	fc.bytesIn += int64(4 + n)
	return fc.readBuf, nil
}

// close tears the socket down.
func (fc *frameConn) close() error { return fc.c.Close() }
