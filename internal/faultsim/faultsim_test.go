package faultsim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestBernoulliDropExtremes(t *testing.T) {
	r := rng.New(1)
	never := BernoulliDrop{P: 0}
	always := BernoulliDrop{P: 1}
	for i := 0; i < 100; i++ {
		if never.Message(i, 0, 1, r).Drop {
			t.Fatal("P=0 dropped a message")
		}
		if !always.Message(i, 0, 1, r).Drop {
			t.Fatal("P=1 delivered a message")
		}
	}
	if never.Vertex(5, 3) != VertexUp {
		t.Fatal("message-only plan crashed a vertex")
	}
}

func TestBernoulliDropDeterministic(t *testing.T) {
	drop := BernoulliDrop{P: 0.5}
	var a, b []bool
	for _, out := range []*[]bool{&a, &b} {
		r := rng.New(42)
		for i := 0; i < 200; i++ {
			*out = append(*out, drop.Message(i, i, i+1, r).Drop)
		}
	}
	some := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical streams", i)
		}
		some = some || a[i]
	}
	if !some {
		t.Fatal("P=0.5 never dropped in 200 draws")
	}
}

func TestLinkBurstWindowAndDirection(t *testing.T) {
	b := NewLinkBurst([]Link{{From: 1, To: 2}}, 3, 5)
	r := rng.New(1)
	cases := []struct {
		round, from, to int
		drop            bool
	}{
		{2, 1, 2, false}, // before the window
		{3, 1, 2, true},  // window start
		{5, 1, 2, true},  // window end (inclusive)
		{6, 1, 2, false}, // after the window
		{4, 2, 1, false}, // reverse direction unaffected
		{4, 1, 3, false}, // other link unaffected
	}
	for _, c := range cases {
		if got := b.Message(c.round, c.from, c.to, r).Drop; got != c.drop {
			t.Errorf("round %d %d->%d: drop=%v, want %v", c.round, c.from, c.to, got, c.drop)
		}
	}
}

func TestBothWays(t *testing.T) {
	links := BothWays([][2]int{{1, 2}, {3, 4}})
	if len(links) != 4 {
		t.Fatalf("got %d links, want 4", len(links))
	}
	set := map[Link]bool{}
	for _, l := range links {
		set[l] = true
	}
	for _, want := range []Link{{1, 2}, {2, 1}, {3, 4}, {4, 3}} {
		if !set[want] {
			t.Fatalf("missing link %v", want)
		}
	}
}

func TestPartitionCutsCrossTraffic(t *testing.T) {
	side := []bool{false, false, true, true}
	p := NewPartition(side, 2, 4)
	r := rng.New(1)
	if !p.Message(3, 0, 2, r).Drop || !p.Message(3, 3, 1, r).Drop {
		t.Fatal("cross-side message survived the partition window")
	}
	if p.Message(3, 0, 1, r).Drop || p.Message(3, 2, 3, r).Drop {
		t.Fatal("same-side message dropped")
	}
	if p.Message(5, 0, 2, r).Drop {
		t.Fatal("cross-side message dropped outside the window")
	}
}

func TestCrashStopFates(t *testing.T) {
	c := NewCrashStop(map[int]int{7: 4})
	if c.Vertex(3, 7) != VertexUp {
		t.Fatal("vertex down before its crash round")
	}
	for _, round := range []int{4, 5, 1000} {
		if c.Vertex(round, 7) != VertexGone {
			t.Fatalf("round %d: crash-stopped vertex not gone", round)
		}
	}
	if c.Vertex(100, 8) != VertexUp {
		t.Fatal("untouched vertex crashed")
	}
	if f := c.Message(4, 1, 2, rng.New(1)); f.Drop || f.Delay != 0 {
		t.Fatal("vertex-only plan touched a message")
	}
}

func TestCrashRestartWindow(t *testing.T) {
	c := NewCrashRestart(map[int]Window{
		1: {Down: 3, Up: 6},
		2: {Down: 2, Up: 0}, // never rejoins
	})
	if c.Vertex(2, 1) != VertexUp || c.Vertex(6, 1) != VertexUp {
		t.Fatal("vertex 1 down outside its window")
	}
	for round := 3; round < 6; round++ {
		if c.Vertex(round, 1) != VertexDown {
			t.Fatalf("round %d: vertex 1 not down", round)
		}
	}
	if c.Vertex(2, 2) != VertexGone {
		t.Fatal("open-ended window is not gone")
	}
}

func TestDelayK(t *testing.T) {
	r := rng.New(1)
	if f := (DelayK{K: 3}).Message(1, 0, 1, r); f.Drop || f.Delay != 3 {
		t.Fatalf("got %+v, want delay 3", f)
	}
	if f := (DelayK{K: 0}).Message(1, 0, 1, r); f.Delay != 0 {
		t.Fatal("K=0 delayed a message")
	}
}

func TestComposeSemantics(t *testing.T) {
	r := rng.New(1)
	p := Compose(
		DelayK{K: 2},
		NewLinkBurst([]Link{{From: 0, To: 1}}, 1, 10),
		DelayK{K: 5},
	)
	if !p.Message(4, 0, 1, r).Drop {
		t.Fatal("composed plan lost the burst layer's drop")
	}
	if f := p.Message(4, 1, 0, r); f.Drop || f.Delay != 5 {
		t.Fatalf("got %+v, want max delay 5", f)
	}

	v := Compose(
		NewCrashRestart(map[int]Window{1: {Down: 2, Up: 9}}),
		NewCrashStop(map[int]int{1: 5}),
	)
	if v.Vertex(3, 1) != VertexDown {
		t.Fatal("want down from the restart layer")
	}
	if v.Vertex(6, 1) != VertexGone {
		t.Fatal("want gone once the crash-stop layer fires")
	}
	if v.Vertex(1, 1) != VertexUp {
		t.Fatal("want up before either layer fires")
	}

	if single := Compose(DelayK{K: 1}); single.Message(0, 0, 0, r).Delay != 1 {
		t.Fatal("single-plan compose must behave as the plan itself")
	}
}

func TestVertexFateString(t *testing.T) {
	for fate, want := range map[VertexFate]string{
		VertexUp: "up", VertexDown: "down", VertexGone: "gone", VertexFate(9): "vertexfate(9)",
	} {
		if fate.String() != want {
			t.Errorf("%d: got %q, want %q", int(fate), fate.String(), want)
		}
	}
}

func TestCrashedAt(t *testing.T) {
	plan := NewCrashRestart(map[int]Window{0: {Down: 2, Up: 4}, 3: {Down: 1, Up: 0}})
	crashed := CrashedAt(plan, 3, 4)
	want := []bool{true, false, false, true}
	for v := range want {
		if crashed[v] != want[v] {
			t.Fatalf("round 3 vertex %d: crashed=%v, want %v", v, crashed[v], want[v])
		}
	}
	for _, c := range CrashedAt(nil, 3, 4) {
		if c {
			t.Fatal("nil plan crashed a vertex")
		}
	}
}

func TestSpreadCrashes(t *testing.T) {
	crashes := SpreadCrashes(100, 10, 2, 4)
	if len(crashes) != 10 {
		t.Fatalf("got %d victims, want 10", len(crashes))
	}
	for v, r := range crashes {
		if v < 0 || v >= 100 {
			t.Fatalf("victim %d out of range", v)
		}
		if r < 2 || r >= 6 {
			t.Fatalf("victim %d crashes at round %d, want [2,6)", v, r)
		}
	}
	vs := Victims(crashes)
	for i := 1; i < len(vs); i++ {
		if vs[i-1] >= vs[i] {
			t.Fatal("Victims not sorted ascending")
		}
	}
	if len(SpreadCrashes(10, 0, 1, 1)) != 0 || len(SpreadCrashes(0, 5, 1, 1)) != 0 {
		t.Fatal("degenerate schedules must be empty")
	}
	if got := len(SpreadCrashes(4, 9, 1, 1)); got != 4 {
		t.Fatalf("count clamped to n: got %d victims, want 4", got)
	}
}

// path5 builds the path 0-1-2-3-4.
func path5(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.New(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCheckSafeAndCovered(t *testing.T) {
	g := path5(t)
	rep, err := Check(g, []bool{true, false, false, true, false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe() || rep.InMIS != 2 || rep.Covered != 5 || rep.Undecided != 0 {
		t.Fatalf("unexpected report: %s", rep)
	}
	if rep.Coverage() != 1 {
		t.Fatalf("coverage %v, want 1", rep.Coverage())
	}
}

func TestCheckDetectsIndependenceViolation(t *testing.T) {
	g := path5(t)
	rep, err := Check(g, []bool{false, true, true, false, false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe() {
		t.Fatal("adjacent members not reported")
	}
	if len(rep.Violations) != 1 || rep.Violations[0] != (Link{From: 1, To: 2}) {
		t.Fatalf("violations %v, want [{1 2}]", rep.Violations)
	}
}

func TestCheckCoverageExcludesCrashed(t *testing.T) {
	g := path5(t)
	// Vertex 0 in the set; 2 crashed; 3 and 4 undecided.
	rep, err := Check(g, []bool{true, false, false, false, false},
		[]bool{false, false, true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashed != 1 || rep.Covered != 2 || rep.Undecided != 2 {
		t.Fatalf("unexpected report: %s", rep)
	}
	if got, want := rep.Coverage(), 0.5; got != want {
		t.Fatalf("coverage %v, want %v", got, want)
	}
}

func TestCheckAllCrashed(t *testing.T) {
	g := path5(t)
	rep, err := Check(g, make([]bool, 5), []bool{true, true, true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage() != 1 {
		t.Fatal("an empty obligation must count as full coverage")
	}
}

func TestCheckLengthValidation(t *testing.T) {
	g := path5(t)
	if _, err := Check(g, make([]bool, 3), nil); err == nil {
		t.Fatal("short membership slice accepted")
	}
	if _, err := Check(g, make([]bool, 5), make([]bool, 2)); err == nil {
		t.Fatal("short crash slice accepted")
	}
}
