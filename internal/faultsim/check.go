package faultsim

import (
	"fmt"

	"repro/internal/graph"
)

// Report is the invariant checker's verdict on one faulted run. Faulted
// executions cannot promise the clean-run contract (a complete MIS), so
// the checker splits it into a safety half that must always hold and a
// liveness half that is quantified instead of asserted:
//
//   - safety: the reported set is independent — no two adjacent vertices
//     both claim membership, crashed or not;
//   - liveness: coverage — the fraction of surviving (non-crashed)
//     vertices that are decided, i.e. in the set or adjacent to a set
//     member.
type Report struct {
	// N is the number of vertices in the graph.
	N int
	// Crashed is the number of vertices dead at the end of the run.
	Crashed int
	// InMIS is the number of vertices claiming set membership.
	InMIS int
	// Covered is the number of surviving vertices that are in the set or
	// have a neighbor (surviving or not) in the set.
	Covered int
	// Undecided is the number of surviving vertices left uncovered — the
	// liveness the faults destroyed.
	Undecided int
	// Violations lists independence violations as edges (u, v) with both
	// endpoints in the set. Empty means the run was safe.
	Violations []Link
}

// Safe reports whether independence held.
func (r *Report) Safe() bool { return len(r.Violations) == 0 }

// Coverage returns Covered as a fraction of surviving vertices (1 when
// every vertex crashed: an empty obligation is met).
func (r *Report) Coverage() float64 {
	alive := r.N - r.Crashed
	if alive <= 0 {
		return 1
	}
	return float64(r.Covered) / float64(alive)
}

// String renders the verdict for experiment notes and error messages.
func (r *Report) String() string {
	return fmt.Sprintf("safe=%v coverage=%.3f (|MIS|=%d, crashed=%d, undecided=%d of %d)",
		r.Safe(), r.Coverage(), r.InMIS, r.Crashed, r.Undecided, r.N)
}

// Check audits a faulted run's output. inMIS[v] marks the vertices
// claiming set membership; crashed[v] marks vertices dead at the end of
// the run (nil means none — see CrashedAt for deriving it from a Plan).
// Check never fails on liveness: a stalled or partial run yields a low
// Coverage, not an error.
func Check(g *graph.Graph, inMIS, crashed []bool) (*Report, error) {
	n := g.N()
	if len(inMIS) != n {
		return nil, fmt.Errorf("faultsim: Check got %d membership flags for %d vertices", len(inMIS), n)
	}
	if crashed == nil {
		crashed = make([]bool, n)
	}
	if len(crashed) != n {
		return nil, fmt.Errorf("faultsim: Check got %d crash flags for %d vertices", len(crashed), n)
	}
	rep := &Report{N: n}
	for v := 0; v < n; v++ {
		if crashed[v] {
			rep.Crashed++
		}
		if !inMIS[v] {
			continue
		}
		rep.InMIS++
		for _, w := range g.Neighbors(v) {
			if w > v && inMIS[w] {
				rep.Violations = append(rep.Violations, Link{From: v, To: w})
			}
		}
	}
	for v := 0; v < n; v++ {
		if crashed[v] {
			continue
		}
		covered := inMIS[v]
		for _, w := range g.Neighbors(v) {
			if covered {
				break
			}
			covered = inMIS[w]
		}
		if covered {
			rep.Covered++
		} else {
			rep.Undecided++
		}
	}
	return rep, nil
}
