// Package faultsim is the deterministic fault-injection subsystem for the
// CONGEST engine. A Plan decides, per round, the fate of every
// (src, dst, round) message and of every vertex; the engine consults the
// plan on the coordinator during delivery — in global ascending-sender
// order, from a dedicated fault RNG stream split from the run seed — so a
// faulted execution is bit-identical across the sequential, worker-pool,
// and goroutine-per-vertex drivers, exactly like a clean one.
//
// The package generalizes the engine's original single uniform DropProb
// knob into structured, composable fault models:
//
//   - BernoulliDrop: each message lost independently with probability P
//     (the back-compat implementation of Options.DropProb);
//   - LinkBurst: a chosen set of directed links goes dark for a round
//     window, modelling a flapping cable or a jammed radio cell;
//   - Partition: the vertex set is bipartitioned and all cross-side
//     traffic is lost for a window, modelling a network split;
//   - CrashStop / CrashRestart: a vertex stops executing at a round,
//     permanently or until a rejoin round (it comes back silent, with
//     whatever state it had — crash-recovery without stable storage);
//   - DelayK: every message is deferred K extra rounds, modelling bounded
//     asynchrony on top of the synchronous schedule.
//
// Compose layers several plans; Check (check.go) verifies safety and
// quantifies liveness degradation of a faulted run's output.
//
// Determinism contract: a Plan must be a pure function of its inputs —
// Message may consume draws from the supplied RNG (the engine hands every
// call the same coordinator-owned fault stream, in the same global order,
// under every driver), and Vertex must use no randomness at all, because
// the engine calls it from shard workers concurrently. Plans therefore
// must not carry mutable state.
package faultsim

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Fate is a plan's verdict on one message. The zero value delivers on
// time.
type Fate struct {
	// Drop discards the message.
	Drop bool
	// Delay defers consumption by this many extra rounds (0 = on time).
	// A message sent in round r is normally consumed in round r+1; Delay d
	// pushes that to round r+1+d. Negative values are treated as 0.
	Delay int
}

// VertexFate is a plan's verdict on one vertex for one round.
type VertexFate int

const (
	// VertexUp means the vertex executes normally.
	VertexUp VertexFate = iota
	// VertexDown means the vertex is crashed this round: it does not
	// execute, and messages that would be consumed by it this round are
	// lost. It may come back up in a later round (crash-restart).
	VertexDown
	// VertexGone means the vertex is crashed forever (crash-stop). The
	// engine retires it so the run can still terminate.
	VertexGone
)

// String names the fate for diagnostics.
func (f VertexFate) String() string {
	switch f {
	case VertexUp:
		return "up"
	case VertexDown:
		return "down"
	case VertexGone:
		return "gone"
	default:
		return fmt.Sprintf("vertexfate(%d)", int(f))
	}
}

// Plan is a fault model. See the package comment for the determinism
// contract; round numbering follows congest.Context.Round (Init is round
// 0, communication rounds are 1, 2, ...).
type Plan interface {
	// Message decides the fate of a message sent in round `round` from
	// vertex `from` to vertex `to`. It runs on the coordinator during
	// delivery, once per message, in global ascending-sender order; r is
	// the run's dedicated fault stream. Vertex IDs are external (original
	// graph) IDs regardless of the engine's storage layout.
	//
	//idspace:external from to
	Message(round, from, to int, r *rng.RNG) Fate
	// Vertex reports v's fate in round `round`. Vertex fates apply to
	// rounds >= 1: the engine always executes Init (round 0) so every
	// node's state exists before the faulty network does. Vertex may be
	// called concurrently and must not consume randomness. v is an
	// external (original graph) ID.
	//
	//idspace:external v
	Vertex(round, v int) VertexFate
}

// Deliver is the zero Fate, for readability in plan implementations.
var Deliver = Fate{}

// Dropped is the drop verdict, for readability in plan implementations.
var Dropped = Fate{Drop: true}

// upOnly provides the trivial Vertex method for message-only plans.
type upOnly struct{}

// Vertex reports every vertex up.
func (upOnly) Vertex(int, int) VertexFate { return VertexUp }

// BernoulliDrop drops each message independently with probability P. It
// reproduces the engine's legacy Options.DropProb behaviour bit-for-bit:
// one Bool(P) draw per message from the fault stream, in global sender
// order.
type BernoulliDrop struct {
	upOnly
	// P is the per-message loss probability, clamped to [0, 1].
	P float64
}

// Message draws the message's fate.
func (b BernoulliDrop) Message(_, _, _ int, r *rng.RNG) Fate {
	if r.Bool(b.P) {
		return Dropped
	}
	return Deliver
}

// Link is a directed (From, To) edge in a fault plan. Fault plans address
// directions independently: losing u→v does not imply losing v→u.
type Link struct {
	From, To int
}

// LinkBurst drops every message on a chosen link set for the send-round
// window [FromRound, ToRound] (inclusive). Construct with NewLinkBurst.
type LinkBurst struct {
	upOnly
	links              map[Link]bool
	fromRound, toRound int
}

// NewLinkBurst builds a burst plan over the given directed links active
// for send rounds [fromRound, toRound]. Use BothWays to fail a link in
// both directions.
func NewLinkBurst(links []Link, fromRound, toRound int) *LinkBurst {
	set := make(map[Link]bool, len(links))
	for _, l := range links {
		set[l] = true
	}
	return &LinkBurst{links: set, fromRound: fromRound, toRound: toRound}
}

// BothWays expands each undirected pair {u, v} into both directed links.
func BothWays(pairs [][2]int) []Link {
	links := make([]Link, 0, 2*len(pairs))
	for _, p := range pairs {
		links = append(links, Link{From: p[0], To: p[1]}, Link{From: p[1], To: p[0]})
	}
	return links
}

// Message drops traffic on burst links inside the window.
func (b *LinkBurst) Message(round, from, to int, _ *rng.RNG) Fate {
	if round >= b.fromRound && round <= b.toRound && b.links[Link{From: from, To: to}] {
		return Dropped
	}
	return Deliver
}

// Partition bipartitions the vertex set and loses all cross-side traffic
// for the send-round window [FromRound, ToRound]. Construct with
// NewPartition.
type Partition struct {
	upOnly
	side               []bool
	fromRound, toRound int
}

// NewPartition builds a partition plan: side[v] assigns vertex v to one of
// the two sides; messages whose endpoints disagree during the window are
// lost. The slice is not copied and must not be mutated afterwards.
func NewPartition(side []bool, fromRound, toRound int) *Partition {
	return &Partition{side: side, fromRound: fromRound, toRound: toRound}
}

// Message drops cross-partition traffic inside the window.
func (p *Partition) Message(round, from, to int, _ *rng.RNG) Fate {
	if round >= p.fromRound && round <= p.toRound &&
		from < len(p.side) && to < len(p.side) && p.side[from] != p.side[to] {
		return Dropped
	}
	return Deliver
}

// deliverAll provides the trivial Message method for vertex-only plans.
type deliverAll struct{}

// Message delivers every message on time.
func (deliverAll) Message(int, int, int, *rng.RNG) Fate { return Deliver }

// CrashStop fail-stops chosen vertices: from its crash round on, a vertex
// never executes again and all traffic addressed to it is lost. Construct
// with NewCrashStop.
type CrashStop struct {
	deliverAll
	at map[int]int
}

// NewCrashStop builds a crash-stop plan: crashes[v] = r kills vertex v
// from round r on (r < 1 is clamped to 1; Init always runs). The map is
// not copied and must not be mutated afterwards.
func NewCrashStop(crashes map[int]int) *CrashStop {
	return &CrashStop{at: crashes}
}

// Vertex reports crashed vertices gone.
func (c *CrashStop) Vertex(round, v int) VertexFate {
	if r, ok := c.at[v]; ok && round >= r {
		return VertexGone
	}
	return VertexUp
}

// Window is a crash-restart schedule for one vertex: down for rounds
// [Down, Up), rejoining silently (with its pre-crash state) at round Up.
// Up <= 0 means the vertex never rejoins (equivalent to crash-stop).
type Window struct {
	Down, Up int
}

// CrashRestart crashes chosen vertices for a round window each. Construct
// with NewCrashRestart.
type CrashRestart struct {
	deliverAll
	windows map[int]Window
}

// NewCrashRestart builds a crash-restart plan from per-vertex windows. The
// map is not copied and must not be mutated afterwards.
func NewCrashRestart(windows map[int]Window) *CrashRestart {
	return &CrashRestart{windows: windows}
}

// Vertex reports vertices inside their crash window down (or gone when
// the window never closes).
func (c *CrashRestart) Vertex(round, v int) VertexFate {
	w, ok := c.windows[v]
	if !ok || round < w.Down {
		return VertexUp
	}
	if w.Up <= 0 {
		return VertexGone
	}
	if round < w.Up {
		return VertexDown
	}
	return VertexUp
}

// DelayK defers every message by K extra rounds, modelling a network that
// is K rounds slower than the lock-step schedule assumes (bounded
// asynchrony). K <= 0 delivers on time.
type DelayK struct {
	upOnly
	// K is the number of extra rounds every message spends in flight.
	K int
}

// Message defers the message by K rounds.
func (d DelayK) Message(int, int, int, *rng.RNG) Fate {
	if d.K > 0 {
		return Fate{Delay: d.K}
	}
	return Deliver
}

// composite layers several plans; see Compose.
type composite struct {
	plans []Plan
}

// Compose layers plans into one: a message is dropped as soon as any layer
// drops it (layers are consulted in argument order, so RNG consumption is
// deterministic), surviving messages accumulate the maximum delay any
// layer imposes, and a vertex's fate is the worst any layer reports
// (Gone > Down > Up). Composing zero plans yields a no-fault plan.
func Compose(plans ...Plan) Plan {
	if len(plans) == 1 {
		return plans[0]
	}
	return &composite{plans: plans}
}

// Message consults every layer in order until one drops.
func (c *composite) Message(round, from, to int, r *rng.RNG) Fate {
	out := Deliver
	for _, p := range c.plans {
		f := p.Message(round, from, to, r)
		if f.Drop {
			return Dropped
		}
		if f.Delay > out.Delay {
			out.Delay = f.Delay
		}
	}
	return out
}

// Vertex reports the worst fate any layer assigns.
func (c *composite) Vertex(round, v int) VertexFate {
	out := VertexUp
	for _, p := range c.plans {
		if f := p.Vertex(round, v); f > out {
			out = f
		}
	}
	return out
}

// CrashedAt evaluates a plan's vertex fates at one round for an n-vertex
// graph: crashed[v] is true when v is down or gone in `round`. Passing the
// round after a run's last (Result.Rounds + 1) yields the set of vertices
// that were dead at the end — what Check needs to score coverage.
func CrashedAt(p Plan, round, n int) []bool {
	crashed := make([]bool, n)
	if p == nil {
		return crashed
	}
	for v := 0; v < n; v++ {
		crashed[v] = p.Vertex(round, v) != VertexUp
	}
	return crashed
}

// SpreadCrashes builds a deterministic crash-stop schedule that kills
// `count` vertices of an n-vertex graph, evenly spread over vertex IDs,
// with crash rounds cycling over [firstRound, firstRound+stride). It is
// the experiment harness's standard way to parameterize crash intensity
// without consuming the fault stream.
func SpreadCrashes(n, count, firstRound, stride int) map[int]int {
	crashes := make(map[int]int, count)
	if n <= 0 || count <= 0 {
		return crashes
	}
	if count > n {
		count = n
	}
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < count; i++ {
		v := i * n / count
		crashes[v] = firstRound + i%stride
	}
	return crashes
}

// Victims returns the sorted vertex IDs a crash schedule touches — handy
// for reporting which nodes an experiment killed.
func Victims(crashes map[int]int) []int {
	vs := make([]int, 0, len(crashes))
	for v := range crashes {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}
