// Package readk implements the read-k machinery at the heart of the
// reproduced paper: read-k families of boolean random variables, the
// Gavinsky-Lovett-Saks-Srinivasan (2015) conjunction and tail inequalities
// (Theorems 1.1 and 1.2 of the paper), the classical Chernoff/Azuma
// comparators the paper contrasts them with, Monte-Carlo and exact
// estimators for validating the bounds, and builders that extract the
// paper's Event (1)/(2)/(3) dependency structures from real graph
// orientations (Section 3.1).
//
// A read-k family is a collection Y₁..Yₙ of boolean variables, each a
// function of a subset P_j of independent base variables X₁..X_m, such
// that every X_i appears in at most k of the P_j. The Y's may be highly
// dependent on each other — only their reads of the X's are bounded.
package readk

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Family is a read-k family under construction or analysis. Base variables
// are identified by index 0..m-1 and realized as independent uniform uint64
// draws; each member variable is a boolean function receiving the values of
// exactly its declared dependencies, in declaration order.
type Family struct {
	m    int
	deps [][]int
	fns  []func(vals []uint64) bool
	mult []int // mult[i] = number of members reading X_i
}

// NewFamily creates an empty family over m base variables.
func NewFamily(m int) (*Family, error) {
	if m < 1 {
		return nil, fmt.Errorf("readk: need at least one base variable, got %d", m)
	}
	return &Family{m: m, mult: make([]int, m)}, nil
}

// ErrBadDep reports a dependency index outside the base-variable range.
var ErrBadDep = errors.New("readk: dependency index out of range")

// Add appends a member variable reading the given base variables. The
// function receives the base values at those indices, in the same order.
// Duplicate indices within one member are rejected (they would double-count
// multiplicity).
func (f *Family) Add(deps []int, fn func(vals []uint64) bool) error {
	seen := make(map[int]bool, len(deps))
	for _, d := range deps {
		if d < 0 || d >= f.m {
			return fmt.Errorf("%w: %d (m=%d)", ErrBadDep, d, f.m)
		}
		if seen[d] {
			return fmt.Errorf("readk: duplicate dependency %d", d)
		}
		seen[d] = true
	}
	f.deps = append(f.deps, append([]int(nil), deps...))
	f.fns = append(f.fns, fn)
	for _, d := range deps {
		f.mult[d]++
	}
	return nil
}

// N returns the number of member variables.
func (f *Family) N() int { return len(f.fns) }

// M returns the number of base variables.
func (f *Family) M() int { return f.m }

// K returns the family's read parameter: the maximum number of members any
// single base variable influences. An empty family has K = 0.
func (f *Family) K() int {
	k := 0
	for _, c := range f.mult {
		if c > k {
			k = c
		}
	}
	return k
}

// Eval computes all member values for the given base assignment.
func (f *Family) Eval(x []uint64) ([]bool, error) {
	if len(x) != f.m {
		return nil, fmt.Errorf("readk: assignment has %d values for %d base variables", len(x), f.m)
	}
	out := make([]bool, f.N())
	scratch := make([]uint64, 0, 16)
	for j, fn := range f.fns {
		scratch = scratch[:0]
		for _, d := range f.deps[j] {
			scratch = append(scratch, x[d])
		}
		out[j] = fn(scratch)
	}
	return out, nil
}

// Sample draws a uniform base assignment and evaluates the members.
func (f *Family) Sample(r *rng.RNG) []bool {
	x := make([]uint64, f.m)
	for i := range x {
		x[i] = r.Uint64()
	}
	out, err := f.Eval(x)
	if err != nil {
		// len(x) == f.m by construction; unreachable.
		panic(err)
	}
	return out
}

// MonteCarlo holds empirical estimates from repeated sampling.
type MonteCarlo struct {
	// Trials is the number of samples taken.
	Trials int
	// AllOnes is the fraction of samples with every member true
	// (the conjunction probability of Theorem 1.1).
	AllOnes float64
	// Means[j] estimates p_j = Pr[Y_j = 1].
	Means []float64
	// SumHist[s] is the fraction of samples whose member sum was s.
	SumHist []float64
}

// MeanP returns the average of the member means (the p of Theorem 1.2).
func (mc *MonteCarlo) MeanP() float64 {
	var s float64
	for _, p := range mc.Means {
		s += p
	}
	return s / float64(len(mc.Means))
}

// TailLE returns the empirical probability that the member sum is <= t.
func (mc *MonteCarlo) TailLE(t int) float64 {
	if t < 0 {
		return 0
	}
	if t >= len(mc.SumHist) {
		return 1
	}
	var s float64
	for i := 0; i <= t; i++ {
		s += mc.SumHist[i]
	}
	return s
}

// ExpectedSum returns the empirical E[Y] = Σ p_j.
func (mc *MonteCarlo) ExpectedSum() float64 {
	var s float64
	for _, p := range mc.Means {
		s += p
	}
	return s
}

// Estimate runs trials Monte-Carlo samples.
func (f *Family) Estimate(r *rng.RNG, trials int) (*MonteCarlo, error) {
	if trials < 1 {
		return nil, fmt.Errorf("readk: trials must be positive, got %d", trials)
	}
	if f.N() == 0 {
		return nil, errors.New("readk: empty family")
	}
	mc := &MonteCarlo{
		Trials:  trials,
		Means:   make([]float64, f.N()),
		SumHist: make([]float64, f.N()+1),
	}
	allOnes := 0
	for t := 0; t < trials; t++ {
		ys := f.Sample(r)
		sum := 0
		for j, y := range ys {
			if y {
				mc.Means[j]++
				sum++
			}
		}
		if sum == f.N() {
			allOnes++
		}
		mc.SumHist[sum]++
	}
	for j := range mc.Means {
		mc.Means[j] /= float64(trials)
	}
	for s := range mc.SumHist {
		mc.SumHist[s] /= float64(trials)
	}
	mc.AllOnes = float64(allOnes) / float64(trials)
	return mc, nil
}

// ExactBinary enumerates all 2^m assignments with each base variable in
// {0, 1} and returns exact statistics. It requires member functions that
// depend only on the low bit of each value, and panics for m > 24 (it is a
// test oracle). Returns the exact conjunction probability and member means.
func (f *Family) ExactBinary() (allOnes float64, means []float64) {
	if f.m > 24 {
		panic("readk: ExactBinary is an oracle for small m only")
	}
	means = make([]float64, f.N())
	x := make([]uint64, f.m)
	total := 1 << uint(f.m)
	all := 0
	for mask := 0; mask < total; mask++ {
		for i := range x {
			x[i] = uint64((mask >> uint(i)) & 1)
		}
		ys, err := f.Eval(x)
		if err != nil {
			panic(err) // unreachable: x has length f.m
		}
		sum := 0
		for j, y := range ys {
			if y {
				means[j]++
				sum++
			}
		}
		if sum == f.N() {
			all++
		}
	}
	for j := range means {
		means[j] /= float64(total)
	}
	return float64(all) / float64(total), means
}

// ConjunctionBound is Theorem 1.1 (Gavinsky et al. Theorem 1.2): for a
// read-k family with Pr[Y_j = 1] = p for all j,
//
//	Pr[Y₁ = ... = Yₙ = 1] ≤ p^(n/k).
//
// With independent members the bound would be pⁿ; the read-k structure
// costs exactly the exponent factor 1/k.
func ConjunctionBound(p float64, n, k int) float64 {
	if k < 1 || n < 1 {
		return 1
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return math.Pow(p, float64(n)/float64(k))
}

// TailForm1 is Theorem 1.2 form (1): for a read-k family with mean p,
//
//	Pr[Y ≤ (p-ε)n] ≤ exp(-2ε²n/k).
func TailForm1(eps float64, n, k int) float64 {
	if k < 1 || n < 1 || eps <= 0 {
		return 1
	}
	return math.Exp(-2 * eps * eps * float64(n) / float64(k))
}

// TailForm2 is Theorem 1.2 form (2), the one the paper's analysis uses:
//
//	Pr[Y ≤ (1-δ)E[Y]] ≤ exp(-δ²E[Y]/(2k)).
func TailForm2(delta, expY float64, k int) float64 {
	if k < 1 || delta <= 0 || expY <= 0 {
		return 1
	}
	return math.Exp(-delta * delta * expY / (2 * float64(k)))
}

// ChernoffLower is the classical multiplicative Chernoff lower-tail bound
// for independent indicators: Pr[Y ≤ (1-δ)E[Y]] ≤ exp(-δ²E[Y]/2). It is
// TailForm2 with k = 1 — the read-k bound degrades by exactly 1/k in the
// exponent.
func ChernoffLower(delta, expY float64) float64 {
	return TailForm2(delta, expY, 1)
}

// AzumaBound is the Azuma/McDiarmid-style bound one gets by viewing
// Y = ΣY_j as a k-Lipschitz function of the m independent base variables:
// Pr[Y ≤ E[Y] - t] ≤ exp(-t²/(2mk²)). Gavinsky et al. note their tail
// bound is more general; the experiments show it is also much stronger
// when n ≪ m·k.
func AzumaBound(t float64, m, k int) float64 {
	if m < 1 || k < 1 || t <= 0 {
		return 1
	}
	return math.Exp(-t * t / (2 * float64(m) * float64(k) * float64(k)))
}

// TailForm2ViaForm1 evaluates the lower-tail bound one obtains by feeding
// δ·E[Y]/n into form (1): with mean p = E[Y]/n,
//
//	Pr[Y ≤ (1-δ)E[Y]] = Pr[Y ≤ (p - δp)·n] ≤ exp(-2δ²p²n/k)
//	                  = exp(-2δ²p·E[Y]/k).
//
// The paper notes form (2) "is fairly routine to derive" from form (1)
// (its reference [13]); this direct substitution is the first step of that
// derivation and already matches form (2) up to the constant in the
// exponent: it is stronger than form (2) whenever p ≥ 1/4 and weaker for
// very sparse means, which is why [13]'s derivation massages the constant.
// Exported so the experiments can show both curves.
func TailForm2ViaForm1(delta, expY float64, n, k int) float64 {
	if n < 1 || k < 1 || delta <= 0 || expY <= 0 {
		return 1
	}
	p := expY / float64(n)
	return TailForm1(delta*p, n, k)
}
