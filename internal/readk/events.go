package readk

import (
	"fmt"

	"repro/internal/graph"
)

// This file builds the paper's three event families (Section 3.1) from a
// concrete graph orientation, with one base variable per vertex (its
// priority draw). The builders return the family together with the read
// parameter the paper claims for it, so tests and experiments can check
// K() against the claim:
//
//	Event (1): Y_x = "r(x) < max r(child)", x in an independent M — read-α
//	Event (2): Y_u = "r(u) > max r(competitive parent)"          — read-ρₖ
//	Event (3): Z_w = "some child of w beats all its children"    — read-α(α+1)

// priorityOf treats base value v as a priority; comparisons use the raw
// uint64 order with index tie-breaks applied by the caller where needed.

// Event1Family builds, for each x in m (which must be independent in the
// graph), the indicator Y_x of "x's priority is smaller than some child's"
// — the complement of the winning event of Theorem 3.1. The claimed read
// parameter is the maximum, over vertices, of the number of parents inside
// m (at most α for an α-orientation).
func Event1Family(o *graph.Orientation, m []int) (*Family, int, error) {
	g := o.Graph()
	if err := requireIndependent(g, m); err != nil {
		return nil, 0, err
	}
	f, err := NewFamily(g.N())
	if err != nil {
		return nil, 0, err
	}
	for _, x := range m {
		deps := append([]int{x}, o.Children(x)...)
		if err := f.Add(deps, func(vals []uint64) bool {
			// vals[0] = r(x); vals[1:] = children's priorities.
			for _, c := range vals[1:] {
				if c > vals[0] {
					return true
				}
			}
			return false
		}); err != nil {
			return nil, 0, err
		}
	}
	return f, maxIntSlice(1, f.mult), nil
}

// Event2Family builds, for each u in m, the indicator F_u of "u's priority
// exceeds every competitive parent's", where a vertex is competitive when
// its degree is at most rho. The claimed read parameter is ρ: a competitive
// parent has at most ρ children, so its priority is read at most ρ times
// (plus each u reading its own draw once).
func Event2Family(o *graph.Orientation, m []int, rho int) (*Family, int, error) {
	g := o.Graph()
	f, err := NewFamily(g.N())
	if err != nil {
		return nil, 0, err
	}
	for _, u := range m {
		deps := []int{u}
		for _, p := range o.Parents(u) {
			if g.Degree(p) <= rho {
				deps = append(deps, p)
			}
		}
		if err := f.Add(deps, func(vals []uint64) bool {
			for _, p := range vals[1:] {
				if p >= vals[0] {
					return false
				}
			}
			return true
		}); err != nil {
			return nil, 0, err
		}
	}
	return f, maxIntSlice(1, f.mult), nil
}

// Event3Family builds, for each w in m, the indicator G_w of "some child of
// w has a priority larger than all of that child's children" — the
// elimination event of Theorem 3.3. G_w reads w's children and
// grandchildren (and w's own draw, which the paper notes is immaterial);
// in an α-orientation a vertex is a child of at most α members and a
// grandchild of at most α² members, giving the paper's read-α(α+1).
func Event3Family(o *graph.Orientation, m []int) (*Family, int, error) {
	g := o.Graph()
	f, err := NewFamily(g.N())
	if err != nil {
		return nil, 0, err
	}
	for _, w := range m {
		// Vertices can recur (a grandchild reachable via two children, or
		// a vertex that is both child and grandchild), so dependencies are
		// deduplicated through a position map and each child's comparison
		// set references positions.
		deps := []int{w}
		pos := map[int]int{w: 0}
		position := func(v int) int {
			if p, ok := pos[v]; ok {
				return p
			}
			p := len(deps)
			deps = append(deps, v)
			pos[v] = p
			return p
		}
		type segment struct {
			childPos int
			gcPos    []int
		}
		var segs []segment
		for _, c := range o.Children(w) {
			seg := segment{childPos: position(c)}
			for _, gc := range o.Children(c) {
				seg.gcPos = append(seg.gcPos, position(gc))
			}
			segs = append(segs, seg)
		}
		if err := f.Add(deps, func(vals []uint64) bool {
			for _, s := range segs {
				beatsAll := true
				for _, p := range s.gcPos {
					if vals[p] >= vals[s.childPos] {
						beatsAll = false
						break
					}
				}
				if beatsAll {
					return true
				}
			}
			return false
		}); err != nil {
			return nil, 0, err
		}
	}
	return f, maxIntSlice(1, f.mult), nil
}

func requireIndependent(g *graph.Graph, m []int) error {
	in := make(map[int]bool, len(m))
	for _, v := range m {
		in[v] = true
	}
	for _, v := range m {
		for _, w := range g.Neighbors(v) {
			if in[w] {
				return fmt.Errorf("readk: event-1 set must be independent; edge (%d,%d)", v, w)
			}
		}
	}
	return nil
}

// maxIntSlice returns the maximum of floor and the values in xs.
func maxIntSlice(floor int, xs []int) int {
	m := floor
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// IndependentSubset greedily extracts an independent subset of m of size at
// least |m|/(Δ(m)+1); the paper's Theorem 3.1 proof uses the existence of
// such a subset of size |m|/2α inside any set on an arboricity-α graph.
func IndependentSubset(g *graph.Graph, m []int) []int {
	in := make(map[int]bool, len(m))
	for _, v := range m {
		in[v] = true
	}
	blocked := make(map[int]bool, len(m))
	var ind []int
	for _, v := range m {
		if blocked[v] {
			continue
		}
		ind = append(ind, v)
		for _, w := range g.Neighbors(v) {
			if in[w] {
				blocked[w] = true
			}
		}
	}
	return ind
}
