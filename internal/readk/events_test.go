package readk

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// arbGraphAndOrientation builds an arboricity-alpha graph with its
// degeneracy orientation.
func arbGraphAndOrientation(n, alpha int, seed uint64) (*graph.Graph, *graph.Orientation) {
	g := gen.UnionOfTrees(n, alpha, rng.New(seed))
	o, _ := g.OrientByDegeneracy()
	return g, o
}

func TestEvent1FamilyReadBound(t *testing.T) {
	for alpha := 1; alpha <= 4; alpha++ {
		g, o := arbGraphAndOrientation(300, alpha, uint64(alpha))
		// M = an independent subset of all vertices.
		all := make([]int, g.N())
		for v := range all {
			all[v] = v
		}
		m := IndependentSubset(g, all)
		f, k, err := Event1Family(o, m)
		if err != nil {
			t.Fatal(err)
		}
		if f.N() != len(m) {
			t.Fatalf("alpha=%d: %d members for |M|=%d", alpha, f.N(), len(m))
		}
		// Paper claim: the family is read-α' where α' bounds out-degree.
		// Our orientation has out-degree ≤ degeneracy ≤ 2α-1.
		maxOut := o.MaxOutDegree()
		if k > maxOut {
			t.Fatalf("alpha=%d: family K=%d exceeds orientation out-degree %d", alpha, k, maxOut)
		}
		if f.K() != k {
			t.Fatalf("reported k %d != computed K %d", k, f.K())
		}
	}
}

func TestEvent1FamilyRejectsDependentSet(t *testing.T) {
	g := gen.Path(5)
	o, _ := g.OrientByDegeneracy()
	if _, _, err := Event1Family(o, []int{0, 1}); err == nil {
		t.Fatal("adjacent M accepted")
	}
}

func TestEvent1ConjunctionBoundHolds(t *testing.T) {
	// Theorem 3.1's engine: Pr[every x in M has a child beating it] must
	// respect the read-k conjunction bound computed from the empirical
	// per-member mean.
	g, o := arbGraphAndOrientation(200, 2, 9)
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	// Restrict to independent vertices that actually have children, so
	// member probabilities are bounded away from 0.
	var m []int
	for _, v := range IndependentSubset(g, all) {
		if len(o.Children(v)) > 0 {
			m = append(m, v)
		}
	}
	if len(m) < 10 {
		t.Skip("degenerate orientation")
	}
	f, k, err := Event1Family(o, m)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := f.Estimate(rng.New(10), 30000)
	if err != nil {
		t.Fatal(err)
	}
	// Conservative: use the max member mean as the p of Theorem 1.1 (the
	// theorem assumes equal p; the bound with max p dominates).
	maxP := 0.0
	for _, p := range mc.Means {
		if p > maxP {
			maxP = p
		}
	}
	bound := ConjunctionBound(maxP, f.N(), k)
	if mc.AllOnes > bound+0.02 {
		t.Fatalf("conjunction %v exceeds bound %v (p=%v n=%d k=%d)", mc.AllOnes, bound, maxP, f.N(), k)
	}
}

func TestEvent2FamilyReadBound(t *testing.T) {
	g, o := arbGraphAndOrientation(300, 3, 11)
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	rho := 6
	f, k, err := Event2Family(o, all, rho)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: each competitive parent (degree ≤ ρ) has at most
	// ρ children, so no base variable is read more than ρ+... times; with
	// the member's own read included the bound is max(ρ, own-reads) ≤
	// ρ + 1 in the worst accounting. Assert the structural bound.
	if k > rho+1 {
		t.Fatalf("K=%d exceeds rho+1=%d", k, rho+1)
	}
	if f.N() != g.N() {
		t.Fatalf("members %d != n %d", f.N(), g.N())
	}
}

func TestEvent2HighRhoMeansHighRead(t *testing.T) {
	// With rho = ∞ (no opt-out) a popular parent is read by all its
	// children: K can blow past any constant — demonstrating exactly why
	// the paper's ρₖ opt-out exists.
	g := gen.Star(100) // center is parent of everyone under degeneracy orientation
	o, _ := g.OrientByDegeneracy()
	leaves := make([]int, 0, 99)
	for v := 1; v < 100; v++ {
		leaves = append(leaves, v)
	}
	_, kNoCap, err := Event2Family(o, leaves, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	_, kCap, err := Event2Family(o, leaves, 2)
	if err != nil {
		t.Fatal(err)
	}
	if kNoCap < 50 {
		t.Fatalf("uncapped star K=%d, expected ~99", kNoCap)
	}
	if kCap > 3 {
		t.Fatalf("capped star K=%d, expected small", kCap)
	}
}

func TestEvent2TailBoundHolds(t *testing.T) {
	// Theorem 3.2's engine: X = #nodes beating all competitive parents is
	// concentrated; the lower tail respects TailForm1 with k = rho.
	g, o := arbGraphAndOrientation(400, 2, 12)
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	rho := 2 * g.MaxDegree() // everyone competitive; k still bounded by max children
	f, k, err := Event2Family(o, all, rho)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := f.Estimate(rng.New(13), 20000)
	if err != nil {
		t.Fatal(err)
	}
	expY := mc.ExpectedSum()
	for _, delta := range []float64{0.1, 0.3} {
		emp := mc.TailLE(int((1 - delta) * expY))
		bound := TailForm2(delta, expY, k)
		if emp > bound+0.02 {
			t.Fatalf("delta=%v: empirical %v exceeds bound %v (k=%d)", delta, emp, bound, k)
		}
	}
}

func TestEvent3FamilyReadBound(t *testing.T) {
	for alpha := 1; alpha <= 3; alpha++ {
		g, o := arbGraphAndOrientation(300, alpha, uint64(20+alpha))
		all := make([]int, g.N())
		for v := range all {
			all[v] = v
		}
		f, k, err := Event3Family(o, all)
		if err != nil {
			t.Fatal(err)
		}
		// Structural claim: read ≤ d(d+1) + 1 where d is the orientation's
		// max out-degree (the paper's α(α+1) with its ideal α-orientation).
		d := o.MaxOutDegree()
		limit := d*(d+1) + 1
		if k > limit {
			t.Fatalf("alpha=%d: K=%d exceeds d(d+1)+1=%d", alpha, k, limit)
		}
		if f.N() != g.N() {
			t.Fatalf("members %d", f.N())
		}
	}
}

func TestEvent3MembersFireWhenChildBeatsGrandchildren(t *testing.T) {
	// Deterministic check on a tiny rooted tree: 0 <- 1 <- 2 (2's parent 1,
	// 1's parent 0). With priorities r(1) > r(2), member Y_0 must fire.
	g := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	pos := []int{2, 1, 0} // peel order 2,1,0 → 2's parent 1, 1's parent 0
	o, err := g.OrientByOrder(pos)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: children of 0 = {1}, children of 1 = {2}.
	if len(o.Children(0)) != 1 || o.Children(0)[0] != 1 {
		t.Fatalf("children(0) = %v", o.Children(0))
	}
	f, _, err := Event3Family(o, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Base assignment: r(0)=5, r(1)=9, r(2)=3 → child 1 beats grandchild 2.
	ys, err := f.Eval([]uint64{5, 9, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !ys[0] {
		t.Fatal("Y_0 should fire when child beats grandchildren")
	}
	// r(1)=2 < r(2)=3 → no child of 0 beats its children.
	ys, err = f.Eval([]uint64{5, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if ys[0] {
		t.Fatal("Y_0 fired although the child loses to its grandchild")
	}
}

func TestIndependentSubset(t *testing.T) {
	g := gen.Cycle(10)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ind := IndependentSubset(g, all)
	if len(ind) < 10/3 {
		t.Fatalf("independent subset too small: %d", len(ind))
	}
	in := make(map[int]bool)
	for _, v := range ind {
		in[v] = true
	}
	for _, v := range ind {
		for _, w := range g.Neighbors(v) {
			if in[w] {
				t.Fatalf("edge (%d,%d) inside subset", v, w)
			}
		}
	}
}

func TestIndependentSubsetSizeGuarantee(t *testing.T) {
	// On an arboricity-α graph the greedy subset of the whole vertex set
	// has size ≥ n/(2α+1) (average degree < 2α).
	for alpha := 1; alpha <= 4; alpha++ {
		g := gen.UnionOfTrees(200, alpha, rng.New(uint64(alpha)))
		all := make([]int, g.N())
		for v := range all {
			all[v] = v
		}
		ind := IndependentSubset(g, all)
		if want := g.N() / (2*alpha + 1); len(ind) < want {
			t.Fatalf("alpha=%d: subset %d < guarantee %d", alpha, len(ind), want)
		}
	}
}
