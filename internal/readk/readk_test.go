package readk

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// slidingParity builds the canonical read-k family: n members over m base
// bits, member j reading bits j..j+k-1 (cyclically) and reporting their
// parity. Every bit is read by exactly k members when n == m.
func slidingParity(tb testing.TB, m, k int) *Family {
	if tb != nil {
		tb.Helper()
	}
	fail := func(err error) {
		if tb != nil {
			tb.Fatal(err)
		} else {
			panic(err)
		}
	}
	f, err := NewFamily(m)
	if err != nil {
		fail(err)
	}
	for j := 0; j < m; j++ {
		deps := make([]int, k)
		for i := 0; i < k; i++ {
			deps[i] = (j + i) % m
		}
		if err := f.Add(deps, func(vals []uint64) bool {
			var p uint64
			for _, v := range vals {
				p ^= v & 1
			}
			return p == 1
		}); err != nil {
			fail(err)
		}
	}
	return f
}

func TestFamilyBasics(t *testing.T) {
	f := slidingParity(t, 10, 3)
	if f.N() != 10 || f.M() != 10 {
		t.Fatalf("n=%d m=%d", f.N(), f.M())
	}
	if f.K() != 3 {
		t.Fatalf("K = %d, want 3", f.K())
	}
}

func TestNewFamilyRejectsZero(t *testing.T) {
	if _, err := NewFamily(0); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestAddRejectsBadDeps(t *testing.T) {
	f, _ := NewFamily(3)
	if err := f.Add([]int{5}, func([]uint64) bool { return true }); err == nil {
		t.Fatal("out-of-range dep accepted")
	}
	if err := f.Add([]int{1, 1}, func([]uint64) bool { return true }); err == nil {
		t.Fatal("duplicate dep accepted")
	}
	if err := f.Add([]int{-1}, func([]uint64) bool { return true }); err == nil {
		t.Fatal("negative dep accepted")
	}
}

func TestEvalPassesOnlyDeclaredDeps(t *testing.T) {
	f, _ := NewFamily(4)
	var got []uint64
	if err := f.Add([]int{2, 0}, func(vals []uint64) bool {
		got = append([]uint64(nil), vals...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Eval([]uint64{10, 11, 12, 13}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 12 || got[1] != 10 {
		t.Fatalf("member saw %v", got)
	}
}

func TestEvalRejectsWrongLength(t *testing.T) {
	f := slidingParity(t, 4, 2)
	if _, err := f.Eval([]uint64{1, 2}); err == nil {
		t.Fatal("wrong-length assignment accepted")
	}
}

func TestKEmptyFamily(t *testing.T) {
	f, _ := NewFamily(3)
	if f.K() != 0 {
		t.Fatalf("empty family K = %d", f.K())
	}
}

func TestExactBinaryParity(t *testing.T) {
	// Each parity member has p = 1/2 exactly.
	f := slidingParity(t, 8, 3)
	all, means := f.ExactBinary()
	for j, p := range means {
		if p != 0.5 {
			t.Fatalf("member %d mean %v", j, p)
		}
	}
	// The exact conjunction probability must respect Theorem 1.1.
	bound := ConjunctionBound(0.5, f.N(), f.K())
	if all > bound+1e-12 {
		t.Fatalf("exact conjunction %v exceeds read-k bound %v", all, bound)
	}
}

func TestExactBinaryPanicsOnLargeM(t *testing.T) {
	f, _ := NewFamily(30)
	_ = f.Add([]int{0}, func(v []uint64) bool { return v[0]&1 == 1 })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.ExactBinary()
}

func TestEstimateMatchesExact(t *testing.T) {
	f := slidingParity(t, 10, 2)
	exactAll, exactMeans := f.ExactBinary()
	mc, err := f.Estimate(rng.New(1), 200000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.AllOnes-exactAll) > 0.005 {
		t.Fatalf("MC all-ones %v vs exact %v", mc.AllOnes, exactAll)
	}
	for j := range exactMeans {
		if math.Abs(mc.Means[j]-exactMeans[j]) > 0.01 {
			t.Fatalf("member %d: MC %v vs exact %v", j, mc.Means[j], exactMeans[j])
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	f := slidingParity(t, 4, 2)
	if _, err := f.Estimate(rng.New(1), 0); err == nil {
		t.Fatal("0 trials accepted")
	}
	empty, _ := NewFamily(2)
	if _, err := empty.Estimate(rng.New(1), 10); err == nil {
		t.Fatal("empty family accepted")
	}
}

func TestMonteCarloAccessors(t *testing.T) {
	f := slidingParity(t, 6, 2)
	mc, err := f.Estimate(rng.New(2), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.MeanP()-0.5) > 0.02 {
		t.Fatalf("MeanP = %v", mc.MeanP())
	}
	if math.Abs(mc.ExpectedSum()-3) > 0.1 {
		t.Fatalf("ExpectedSum = %v", mc.ExpectedSum())
	}
	if mc.TailLE(-1) != 0 || mc.TailLE(6) != 1 {
		t.Fatal("TailLE extremes wrong")
	}
	// CDF monotone.
	for s := 0; s < 6; s++ {
		if mc.TailLE(s) > mc.TailLE(s+1)+1e-12 {
			t.Fatal("TailLE not monotone")
		}
	}
}

func TestConjunctionBoundProperties(t *testing.T) {
	// k=1 reduces to independence: p^n.
	if got, want := ConjunctionBound(0.5, 10, 1), math.Pow(0.5, 10); math.Abs(got-want) > 1e-15 {
		t.Fatalf("k=1 bound %v, want %v", got, want)
	}
	// Larger k weakens the bound.
	if ConjunctionBound(0.5, 10, 2) <= ConjunctionBound(0.5, 10, 1) {
		t.Fatal("bound should weaken with k")
	}
	// Edges.
	if ConjunctionBound(0, 5, 2) != 0 || ConjunctionBound(1, 5, 2) != 1 {
		t.Fatal("p edge cases wrong")
	}
	if ConjunctionBound(0.5, 0, 2) != 1 || ConjunctionBound(0.5, 5, 0) != 1 {
		t.Fatal("degenerate n/k should return trivial bound")
	}
}

func TestConjunctionBoundHoldsOnReadKFamilies(t *testing.T) {
	// The theorem must hold empirically on families engineered to have
	// high conjunction probability: Y_j = OR of its k bits, p = 1-2^-k.
	r := rng.New(3)
	for _, k := range []int{1, 2, 3, 4} {
		m := 12
		f, _ := NewFamily(m)
		for j := 0; j < m; j++ {
			deps := make([]int, k)
			for i := 0; i < k; i++ {
				deps[i] = (j + i) % m
			}
			if err := f.Add(deps, func(vals []uint64) bool {
				for _, v := range vals {
					if v&1 == 1 {
						return true
					}
				}
				return false
			}); err != nil {
				t.Fatal(err)
			}
		}
		exactAll, means := f.ExactBinary()
		p := means[0]
		bound := ConjunctionBound(p, f.N(), k)
		if exactAll > bound+1e-12 {
			t.Fatalf("k=%d: conjunction %v exceeds bound %v", k, exactAll, bound)
		}
		mc, err := f.Estimate(r.Split(uint64(k)), 100000)
		if err != nil {
			t.Fatal(err)
		}
		if mc.AllOnes > bound+0.01 {
			t.Fatalf("k=%d: MC conjunction %v exceeds bound %v", k, mc.AllOnes, bound)
		}
	}
}

func TestTailForm1Holds(t *testing.T) {
	// P(Y <= (p-eps)n) <= exp(-2 eps^2 n / k) on the parity family.
	f := slidingParity(t, 2000, 4)
	mc, err := f.Estimate(rng.New(4), 20000)
	if err != nil {
		t.Fatal(err)
	}
	n := f.N()
	p := mc.MeanP()
	for _, eps := range []float64{0.02, 0.05, 0.1} {
		threshold := int(math.Floor((p - eps) * float64(n)))
		emp := mc.TailLE(threshold)
		bound := TailForm1(eps, n, f.K())
		if emp > bound+0.01 {
			t.Fatalf("eps=%v: empirical %v exceeds bound %v", eps, emp, bound)
		}
	}
}

func TestTailForm2Holds(t *testing.T) {
	f := slidingParity(t, 2000, 4)
	mc, err := f.Estimate(rng.New(5), 20000)
	if err != nil {
		t.Fatal(err)
	}
	expY := mc.ExpectedSum()
	for _, delta := range []float64{0.05, 0.1, 0.2} {
		threshold := int(math.Floor((1 - delta) * expY))
		emp := mc.TailLE(threshold)
		bound := TailForm2(delta, expY, f.K())
		if emp > bound+0.01 {
			t.Fatalf("delta=%v: empirical %v exceeds bound %v", delta, emp, bound)
		}
	}
}

func TestTailBoundRelationships(t *testing.T) {
	// Chernoff = form 2 at k=1; read-k bound weakens monotonically in k;
	// Azuma with m ~ n·k/k... is weaker than form 1 when n ≪ m·k².
	if ChernoffLower(0.1, 100) != TailForm2(0.1, 100, 1) {
		t.Fatal("Chernoff != TailForm2(k=1)")
	}
	prev := 0.0
	for k := 1; k <= 8; k++ {
		b := TailForm2(0.2, 50, k)
		if b < prev {
			t.Fatalf("bound not monotone in k at %d", k)
		}
		prev = b
	}
	// Degenerate inputs return the trivial bound 1.
	for _, b := range []float64{
		TailForm1(0, 10, 2), TailForm1(0.1, 0, 2), TailForm1(0.1, 10, 0),
		TailForm2(0, 5, 2), TailForm2(0.1, 0, 2), TailForm2(0.1, 5, 0),
		AzumaBound(0, 5, 2), AzumaBound(1, 0, 2),
	} {
		if b != 1 {
			t.Fatalf("degenerate bound %v != 1", b)
		}
	}
}

func TestReadKBeatsAzumaInTheRelevantRegime(t *testing.T) {
	// Paper remark: the GLSS tail bound is stronger than what k-Lipschitz
	// Azuma gives. With n = m members, deviation t = eps*n:
	// form1: exp(-2 eps² n/k) vs Azuma: exp(-eps² n/(2k²)) — form1 smaller
	// for all k >= 1.
	n, k := 1000, 4
	eps := 0.1
	form1 := TailForm1(eps, n, k)
	azuma := AzumaBound(eps*float64(n), n, k)
	if form1 >= azuma {
		t.Fatalf("form1 %v not stronger than Azuma %v", form1, azuma)
	}
}

func BenchmarkEstimate(b *testing.B) {
	f := slidingParity(nil, 100, 4)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Estimate(r, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTailForm2ViaForm1Relationship(t *testing.T) {
	// Substituting ε = δp into form (1) gives exp(-2δ²p·E/k); form (2) is
	// exp(-δ²E/2k). The derived bound must be the stronger of the two
	// exactly when p >= 1/4, and both must hold empirically.
	n, k := 1000, 4
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		expY := p * float64(n)
		delta := 0.2
		derived := TailForm2ViaForm1(delta, expY, n, k)
		form2 := TailForm2(delta, expY, k)
		if p > 0.25 && derived >= form2 {
			t.Fatalf("p=%v: derived %v should beat form2 %v", p, derived, form2)
		}
		if p < 0.25 && derived <= form2 {
			t.Fatalf("p=%v: derived %v should be weaker than form2 %v", p, derived, form2)
		}
	}
	// Degenerate inputs return the trivial bound.
	if TailForm2ViaForm1(0, 10, 100, 2) != 1 || TailForm2ViaForm1(0.1, 10, 0, 2) != 1 {
		t.Fatal("degenerate inputs should return 1")
	}
}

func TestTailForm2ViaForm1HoldsEmpirically(t *testing.T) {
	f := slidingParity(t, 1000, 4)
	mc, err := f.Estimate(rng.New(6), 20000)
	if err != nil {
		t.Fatal(err)
	}
	expY := mc.ExpectedSum()
	delta := 0.1
	emp := mc.TailLE(int((1 - delta) * expY))
	if bound := TailForm2ViaForm1(delta, expY, f.N(), f.K()); emp > bound+0.01 {
		t.Fatalf("empirical %v exceeds derived bound %v", emp, bound)
	}
}
