package matching

import (
	"testing"
	"testing/quick"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestMaximalMatchingOnFamilies(t *testing.T) {
	r := rng.New(1)
	cases := map[string]*graph.Graph{
		"path-even": gen.Path(10),
		"path-odd":  gen.Path(11),
		"cycle":     gen.Cycle(9),
		"star":      gen.Star(30),
		"tree":      gen.RandomTree(300, r.Split(1)),
		"grid":      gen.Grid(12, 12),
		"gnp":       gen.GNP(150, 0.1, r.Split(2)),
		"union3":    gen.UnionOfTrees(200, 3, r.Split(3)),
		"single":    graph.MustNew(1, nil),
		"isolated":  graph.MustNew(5, nil),
		"one-edge":  graph.MustNew(2, []graph.Edge{{U: 0, V: 1}}),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			partners, _, err := Run(g, congest.Options{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			// Run verifies internally; double-check the API contract.
			if err := Verify(g, partners); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestManySeeds(t *testing.T) {
	g := gen.UnionOfTrees(120, 2, rng.New(4))
	for seed := uint64(0); seed < 25; seed++ {
		if _, _, err := Run(g, congest.Options{Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestIsolatedVerticesUnmatched(t *testing.T) {
	g := graph.MustNew(4, []graph.Edge{{U: 0, V: 1}})
	partners, _, err := Run(g, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if partners[2] != Unmatched || partners[3] != Unmatched {
		t.Fatal("isolated vertices matched")
	}
	if partners[0] != 1 || partners[1] != 0 {
		t.Fatalf("lone edge not matched: %v", partners)
	}
}

func TestSize(t *testing.T) {
	if Size([]int{1, 0, Unmatched, 4, 3}) != 2 {
		t.Fatal("Size wrong")
	}
	if Size(nil) != 0 {
		t.Fatal("Size(nil) wrong")
	}
}

func TestVerifyRejects(t *testing.T) {
	g := gen.Path(4) // 0-1-2-3
	cases := []struct {
		name     string
		partners []int
	}{
		{"wrong-length", []int{Unmatched}},
		{"asymmetric", []int{1, Unmatched, Unmatched, Unmatched}},
		{"non-edge", []int{2, Unmatched, 0, Unmatched}},
		{"out-of-range", []int{9, Unmatched, Unmatched, Unmatched}},
		{"not-maximal", []int{Unmatched, Unmatched, Unmatched, Unmatched}},
		{"half-maximal", []int{1, 0, Unmatched, Unmatched}}, // edge 2-3 uncovered
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := Verify(g, c.partners); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

func TestVerifyAcceptsValid(t *testing.T) {
	g := gen.Path(4)
	if err := Verify(g, []int{1, 0, 3, 2}); err != nil {
		t.Fatal(err)
	}
	// {1-2} alone covers all three path edges' endpoints except edge 0-1
	// has endpoint 1 matched and edge 2-3 endpoint 2 matched: maximal.
	if err := Verify(g, []int{Unmatched, 2, 1, Unmatched}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelDriverIdentical(t *testing.T) {
	g := gen.RandomTree(150, rng.New(5))
	a, ares, err := Run(g, congest.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, bres, err := Run(g, congest.Options{Seed: 3, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if ares != bres {
		t.Fatalf("stats differ: %+v vs %+v", ares, bres)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d differs", v)
		}
	}
}

func TestRoundsLogarithmic(t *testing.T) {
	g := gen.GNP(500, 0.03, rng.New(6))
	_, res, err := Run(g, congest.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 3*15*9 { // generous O(log n)
		t.Fatalf("took %d rounds", res.Rounds)
	}
}

func TestMatchingSizeAtLeastHalfMaximum(t *testing.T) {
	// Any maximal matching is a 2-approximation of the maximum matching.
	// On an even path the maximum is n/2 edges, so maximal >= n/4.
	g := gen.Path(40)
	if err := quick.Check(func(seed uint64) bool {
		partners, _, err := Run(g, congest.Options{Seed: seed})
		if err != nil {
			return false
		}
		return Size(partners) >= 10
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageBitsConstant(t *testing.T) {
	g := gen.RandomTree(200, rng.New(7))
	_, res, err := Run(g, congest.Options{Seed: 4, MessageBitLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMessageBits > 8 {
		t.Fatalf("max bits %d", res.MaxMessageBits)
	}
}
