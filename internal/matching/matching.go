// Package matching implements the randomized distributed maximal-matching
// algorithm in the style of Israeli and Itai (IPL 1986) — one of the three
// late-80s algorithms the reproduced paper's introduction credits with the
// O(log n) symmetry-breaking breakthrough (its reference [8]). MIS and
// maximal matching are sibling primitives: a maximal matching is exactly an
// MIS of the line graph, and the same shattering/read-k analysis questions
// arise for it.
//
// Each iteration costs three CONGEST rounds:
//
//	phase 0: process "matched" announcements; each still-active node
//	         flips sender/receiver; senders propose to one uniformly
//	         random active neighbor
//	phase 1: receivers accept their lowest-ID proposal
//	phase 2: accepted pairs announce "matched" and halt; nodes whose
//	         active neighborhood has emptied halt unmatched (all their
//	         edges are covered)
package matching

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/proto"
)

// Unmatched marks a node with no partner in the result.
const Unmatched = -1

// node is the per-vertex state machine.
type node struct {
	active  *base.ActiveSet
	partner int
	// sender records this iteration's role; proposal the target.
	sender   bool
	proposal int
	// accepted is the sender this receiver accepted this iteration.
	accepted int
}

// Partner returns the matched partner's ID, or Unmatched.
func (nd *node) Partner() int { return nd.partner }

// New returns a factory for matching nodes.
func New() func(v int) congest.Node {
	return func(int) congest.Node {
		return &node{partner: Unmatched, accepted: Unmatched, proposal: Unmatched}
	}
}

// Run computes a maximal matching of g: result[v] is v's partner or
// Unmatched. The matching is verified before return.
func Run(g *graph.Graph, opts congest.Options) ([]int, congest.Result, error) {
	r := congest.NewRunner(g, New(), opts)
	res, err := r.Run()
	if err != nil {
		return nil, res, err
	}
	partners := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		partners[v] = r.Node(v).(*node).Partner()
	}
	if err := Verify(g, partners); err != nil {
		return nil, res, err
	}
	return partners, res, nil
}

// Verify checks that partners encodes a maximal matching of g: partnership
// is symmetric, partners are adjacent, and no edge has two unmatched
// endpoints.
func Verify(g *graph.Graph, partners []int) error {
	if len(partners) != g.N() {
		return fmt.Errorf("matching: %d entries for %d vertices", len(partners), g.N())
	}
	for v, p := range partners {
		if p == Unmatched {
			continue
		}
		if p < 0 || p >= g.N() {
			return fmt.Errorf("matching: node %d has partner %d out of range", v, p)
		}
		if partners[p] != v {
			return fmt.Errorf("matching: asymmetric pair (%d,%d)", v, p)
		}
		if !g.HasEdge(v, p) {
			return fmt.Errorf("matching: pair (%d,%d) is not an edge", v, p)
		}
	}
	for _, e := range g.Edges() {
		if partners[e.U] == Unmatched && partners[e.V] == Unmatched {
			return fmt.Errorf("matching: edge (%d,%d) has both endpoints unmatched", e.U, e.V)
		}
	}
	return nil
}

// Size returns the number of matched pairs.
func Size(partners []int) int {
	n := 0
	for _, p := range partners {
		if p != Unmatched {
			n++
		}
	}
	return n / 2
}

func (nd *node) Init(ctx *congest.Context) {
	nd.active = base.NewActiveSet(ctx.Neighbors())
	nd.startIteration(ctx)
}

// startIteration is phase 0's work after removal processing.
func (nd *node) startIteration(ctx *congest.Context) {
	if nd.active.Count() == 0 {
		ctx.Halt() // every incident edge is covered by a matched neighbor
		return
	}
	nd.proposal = Unmatched
	nd.accepted = Unmatched
	nd.sender = ctx.RNG().Bool(0.5)
	if !nd.sender {
		return
	}
	// Propose to a uniformly random active neighbor. The active set aliases
	// ctx.Neighbors(), so the set slot doubles as the SendSlot address.
	idx := ctx.RNG().Intn(nd.active.Count())
	i := 0
	slot := -1
	nd.active.EachSlot(func(s, id int) {
		if i == idx {
			nd.proposal = id
			slot = s
		}
		i++
	})
	ctx.SendSlot(slot, proto.Flag{Kind: proto.KindPropose}.Wire())
}

func (nd *node) Round(ctx *congest.Context, inbox []congest.Message) {
	switch ctx.Round() % 3 {
	case 1: // proposals arrived; receivers accept the lowest-ID sender
		if nd.sender {
			return
		}
		for _, m := range inbox { // inbox sorted by sender ID
			if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindPropose {
				nd.accepted = m.From
				ctx.Send(m.From, proto.Flag{Kind: proto.KindAccept}.Wire())
				break
			}
		}
	case 2: // accepts arrived; pairs commit and announce
		if nd.sender {
			for _, m := range inbox {
				if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindAccept && m.From == nd.proposal {
					nd.partner = m.From
					break
				}
			}
		} else if nd.accepted != Unmatched {
			nd.partner = nd.accepted
		}
		if nd.partner != Unmatched {
			ctx.Broadcast(proto.Flag{Kind: proto.KindMatched}.Wire())
			ctx.Halt()
		}
	case 0: // matched announcements; next iteration
		for _, m := range inbox {
			if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindMatched {
				nd.active.Remove(m.From)
			}
		}
		nd.startIteration(ctx)
	}
}
