package congest

import (
	"math/bits"
	"runtime"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestFrontierWords(t *testing.T) {
	cases := []struct{ lo, hi, want int }{
		{0, 0, 0}, {5, 5, 0}, {7, 3, 0},
		{0, 1, 1}, {0, 64, 1}, {0, 65, 2},
		{63, 64, 1}, {63, 65, 2}, {64, 128, 1},
		{100, 200, 3}, {1, 4096, 64},
	}
	for _, c := range cases {
		if got := frontierWords(c.lo, c.hi); got != c.want {
			t.Errorf("frontierWords(%d, %d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

// frontierSet lists the vertex IDs a shard's frontier has set, in order.
func frontierSet(sh *shard) []int {
	var out []int
	base := sh.lo >> 6
	for wi, w := range sh.frontier {
		vbase := (base + wi) << 6
		for rem := w; rem != 0; {
			b := bits.TrailingZeros64(rem)
			rem &^= 1 << uint(b)
			out = append(out, vbase+b)
		}
	}
	return out
}

func TestResetFrontierMasksRangeEdges(t *testing.T) {
	for _, c := range []struct{ lo, hi int }{
		{0, 64}, {0, 100}, {10, 70}, {100, 101}, {65, 191}, {0, 1}, {63, 64}, {7, 7},
	} {
		sh := &shard{}
		sh.resetFrontier(c.lo, c.hi)
		if sh.liveCount != c.hi-c.lo {
			t.Fatalf("[%d,%d): liveCount = %d, want %d", c.lo, c.hi, sh.liveCount, c.hi-c.lo)
		}
		got := frontierSet(sh)
		if len(got) != c.hi-c.lo {
			t.Fatalf("[%d,%d): %d bits set, want %d", c.lo, c.hi, len(got), c.hi-c.lo)
		}
		for i, v := range got {
			if v != c.lo+i {
				t.Fatalf("[%d,%d): bit %d is vertex %d, want %d", c.lo, c.hi, i, v, c.lo+i)
			}
		}
	}
}

func TestLoadFrontierCopiesAndMasks(t *testing.T) {
	// Global bitset over 256 vertices with every third vertex live.
	global := make([]uint64, 4)
	want := map[int]bool{}
	for v := 0; v < 256; v += 3 {
		global[v>>6] |= 1 << uint(v&63)
		want[v] = true
	}
	for _, c := range []struct{ lo, hi int }{
		{0, 256}, {0, 64}, {64, 128}, {30, 200}, {100, 101}, {90, 90},
	} {
		sh := &shard{}
		sh.loadFrontier(c.lo, c.hi, global)
		got := frontierSet(sh)
		count := 0
		for v := c.lo; v < c.hi; v++ {
			if want[v] {
				if count >= len(got) || got[count] != v {
					t.Fatalf("[%d,%d): missing or misplaced vertex %d in %v", c.lo, c.hi, v, got)
				}
				count++
			}
		}
		if count != len(got) || sh.liveCount != count {
			t.Fatalf("[%d,%d): %d bits, liveCount %d, want %d", c.lo, c.hi, len(got), sh.liveCount, count)
		}
	}
}

func TestWorkerCountEdgeCases(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name    string
		workers int
		n       int
		want    int
	}{
		{"zero-vertices-default", 0, 0, 1},
		{"zero-vertices-explicit", 8, 0, 1},
		{"negative-workers-small-n", -5, 1, 1},
		{"workers-exceed-n", 100, 3, 3},
		{"workers-within-n", 3, 10, 3},
		{"default-clamped-to-n", 0, 1, 1},
	}
	for _, c := range cases {
		if got := (Options{Workers: c.workers}).WorkerCount(c.n); got != c.want {
			t.Errorf("%s: WorkerCount(%d) with Workers=%d = %d, want %d",
				c.name, c.n, c.workers, got, c.want)
		}
	}
	// The default resolves to GOMAXPROCS before the n clamp.
	if got := (Options{}).WorkerCount(1 << 20); got != maxprocs {
		t.Errorf("default WorkerCount(large n) = %d, want GOMAXPROCS = %d", got, maxprocs)
	}
	// Zero-vertex runs still execute under every driver (the returned 1 is
	// nominal: runPool short-circuits before starting workers).
	r := NewRunner(ringGraph(3), haltFactory, Options{Seed: 1, Driver: DriverPool, Workers: -3})
	if _, err := r.Run(); err != nil {
		t.Fatalf("negative Workers run failed: %v", err)
	}
}

// TestEfficiencyDispatchedShards is the regression test for the
// tail-round efficiency bug: a round where the empty-shard skip
// dispatched a single shard must count one shard's capacity in the
// denominator, not the widest-ever worker count. Here two perfectly
// efficient rounds — four balanced shards, then one straggler shard with
// the other three skipped — must report efficiency 1.0; the old
// Workers × Critical formula reported 50ms/80ms = 0.625.
func TestEfficiencyDispatchedShards(t *testing.T) {
	var d DriverStats
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	d.Observe(PoolRoundMetrics{
		Round: 0,
		Busy:  []time.Duration{ms(10), ms(10), ms(10), ms(10)},
		Live:  []int{10, 10, 10, 10},
	})
	d.Observe(PoolRoundMetrics{
		Round: 1,
		Busy:  []time.Duration{ms(10), 0, 0, 0}, // shards 1-3 skipped
		Live:  []int{5, 0, 0, 0},
	})
	if d.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", d.Workers)
	}
	if want := ms(50); d.DispatchedCritical != want {
		t.Fatalf("DispatchedCritical = %v, want %v", d.DispatchedCritical, want)
	}
	if e := d.Efficiency(); e != 1.0 {
		t.Fatalf("Efficiency = %v, want 1.0 (old formula: 0.625)", e)
	}
	// A genuinely unbalanced round still scores below 1: two dispatched
	// shards, one twice as slow.
	var u DriverStats
	u.Observe(PoolRoundMetrics{
		Busy: []time.Duration{ms(10), ms(20), 0},
		Live: []int{4, 4, 0},
	})
	if e := u.Efficiency(); e != 0.75 {
		t.Fatalf("unbalanced Efficiency = %v, want 0.75", e)
	}
	// A dispatched shard that halted everything this round (live 0 after,
	// busy > 0) still counts as dispatched.
	var h DriverStats
	h.Observe(PoolRoundMetrics{
		Busy: []time.Duration{ms(10), ms(10)},
		Live: []int{0, 0},
	})
	if e := h.Efficiency(); e != 1.0 {
		t.Fatalf("final-round Efficiency = %v, want 1.0", e)
	}
}

// skewHalter drives a deliberately skewed shattering shape: vertices at or
// above cut halt in round haltAt, the rest keep broadcasting until round
// last. With cut at n/8, three of four equal-width shards drain at once
// and the survivors concentrate in shard 0 — the layout rebalancing exists
// to fix.
type skewHalter struct {
	cut, haltAt, last int
}

func (s *skewHalter) Init(ctx *Context) { ctx.Broadcast(rawWire(8)) }

func (s *skewHalter) Round(ctx *Context, _ []Message) {
	if ctx.Round() >= s.haltAt && ctx.ID() >= s.cut {
		ctx.Halt()
		return
	}
	if ctx.Round() >= s.last {
		ctx.Halt()
		return
	}
	ctx.Broadcast(rawWire(8))
}

// TestRebalanceTriggersAndPreservesDeterminism runs the skewed workload on
// the pool driver and requires (a) that rebalancing actually fired, (b)
// that the deterministic event fingerprint, Result, and round count are
// identical to the sequential driver and to the pool with rebalancing
// disabled, and (c) that the post-run shard ranges still partition [0, n).
func TestRebalanceTriggersAndPreservesDeterminism(t *testing.T) {
	const n = 4096
	g := ringGraph(n)
	factory := func(int) Node { return &skewHalter{cut: n / 8, haltAt: 2, last: 12} }

	run := func(opts Options) (Result, uint64, int64) {
		rec := trace.NewRecorder(0)
		rebalances := int64(0)
		opts.Seed = 7
		opts.Events = countingSink{rec: rec, rebalances: &rebalances}
		r := NewRunner(g, factory, opts)
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, rec.Fingerprint(), rebalances
	}

	seqRes, seqFP, seqReb := run(Options{Driver: DriverSequential})
	if seqReb != 0 {
		t.Fatalf("sequential driver rebalanced %d times, want 0", seqReb)
	}
	poolRes, poolFP, poolReb := run(Options{Driver: DriverPool, Workers: 4})
	if poolReb == 0 {
		t.Fatal("pool driver never rebalanced on a skewed workload")
	}
	offRes, offFP, offReb := run(Options{Driver: DriverPool, Workers: 4, NoRebalance: true})
	if offReb != 0 {
		t.Fatalf("NoRebalance run still rebalanced %d times", offReb)
	}
	if poolRes != seqRes || offRes != seqRes {
		t.Fatalf("Results diverge: seq %+v, pool %+v, pool-norebalance %+v", seqRes, poolRes, offRes)
	}
	if poolFP != seqFP || offFP != seqFP {
		t.Fatalf("fingerprints diverge: seq %#x, pool %#x, pool-norebalance %#x", seqFP, poolFP, offFP)
	}
}

// countingSink forwards to a recorder and counts rebalance events.
type countingSink struct {
	rec        *trace.Recorder
	rebalances *int64
}

func (s countingSink) Emit(e trace.Event) {
	if e.Type == trace.EvRebalance {
		*s.rebalances++
	}
	s.rec.Emit(e)
}

// TestRebalancePartitionInvariants drives the rebalancer directly: after
// any rebalance the shard ranges must partition [0, n) contiguously, every
// shard's liveCount must equal its frontier popcount, the total must be
// conserved, and every context must point at the shard that owns it.
func TestRebalancePartitionInvariants(t *testing.T) {
	const n = 2048
	r := NewRunner(ringGraph(n), func(int) Node { return steadyBroadcaster{} }, Options{
		Seed: 1, Parallel: true,
	})
	st := r.newExecState(4)
	// Manufacture heavy skew: clear every bit outside [0, n/8).
	for _, sh := range st.shards {
		for v := n / 8; v < n; v++ {
			if v >= sh.lo && v < sh.hi {
				wi := v>>6 - sh.lo>>6
				if sh.frontier[wi]&(1<<uint(v&63)) != 0 {
					sh.frontier[wi] &^= 1 << uint(v&63)
					sh.liveCount--
				}
			}
		}
	}
	st.maybeRebalance(1)
	if st.rebalances != 1 {
		t.Fatalf("rebalances = %d, want 1", st.rebalances)
	}
	lo := 0
	total := 0
	for s, sh := range st.shards {
		if sh.lo != lo {
			t.Fatalf("shard %d starts at %d, want %d (ranges must be contiguous)", s, sh.lo, lo)
		}
		if sh.hi < sh.lo {
			t.Fatalf("shard %d range [%d, %d) inverted", s, sh.lo, sh.hi)
		}
		count := 0
		for _, w := range sh.frontier {
			count += bits.OnesCount64(w)
		}
		if count != sh.liveCount {
			t.Fatalf("shard %d liveCount %d != popcount %d", s, sh.liveCount, count)
		}
		for v := sh.lo; v < sh.hi; v++ {
			if st.ctxs[v].shard != sh {
				t.Fatalf("vertex %d context points at the wrong shard", v)
			}
			if st.vshard != nil && st.vshard[v] != int32(sh.idx) {
				t.Fatalf("vertex %d vshard = %d, want %d", v, st.vshard[v], sh.idx)
			}
		}
		total += count
		lo = sh.hi
	}
	if lo != n {
		t.Fatalf("shard ranges end at %d, want %d", lo, n)
	}
	if total != n/8 {
		t.Fatalf("live total %d after rebalance, want %d", total, n/8)
	}
	// The load must actually be spread: no shard may hold more than half
	// the surviving frontier (before, shard 0 held all of it).
	for s, sh := range st.shards {
		if sh.liveCount > total/2 {
			t.Fatalf("shard %d still holds %d of %d live vertices", s, sh.liveCount, total)
		}
	}
}

// TestRebalanceBelowThresholdIsNoop pins the trigger's guard rails: too
// little total work, or a balanced histogram, must leave the layout alone.
func TestRebalanceBelowThresholdIsNoop(t *testing.T) {
	const n = 128 // 4 shards × 32 vertices < rebalanceMinPerShard each
	r := NewRunner(ringGraph(n), func(int) Node { return steadyBroadcaster{} }, Options{
		Seed: 1, Parallel: true,
	})
	st := r.newExecState(4)
	st.maybeRebalance(1)
	if st.rebalances != 0 {
		t.Fatalf("rebalanced with %d vertices across 4 shards (floor is %d/shard)", n, rebalanceMinPerShard)
	}
	// Plenty of work but perfectly balanced: still a no-op.
	r2 := NewRunner(ringGraph(1024), func(int) Node { return steadyBroadcaster{} }, Options{
		Seed: 1, Parallel: true,
	})
	st2 := r2.newExecState(4)
	st2.maybeRebalance(1)
	if st2.rebalances != 0 {
		t.Fatal("rebalanced a perfectly balanced layout")
	}
}
