package congest

import (
	"testing"

	"repro/internal/faultsim"
	"repro/internal/graph"
	"repro/internal/rng"
)

// steadyBroadcaster broadcasts every round and never halts — the
// steady-state message load the allocation gate measures.
type steadyBroadcaster struct{}

func (steadyBroadcaster) Init(ctx *Context)               { ctx.Broadcast(rawWire(8)) }
func (steadyBroadcaster) Round(ctx *Context, _ []Message) { ctx.Broadcast(rawWire(8)) }

// ringGraph builds a cycle on n vertices.
func ringGraph(n int) *graph.Graph {
	edges := make([]graph.Edge, n)
	for i := 0; i < n-1; i++ {
		edges[i] = graph.Edge{U: i, V: i + 1}
	}
	edges[n-1] = graph.Edge{U: 0, V: n - 1}
	return graph.MustNew(n, edges)
}

// delayEveryFourth delays every fourth message by two rounds and never
// drops or crashes anything, exercising the delay-bucket free list without
// consuming randomness.
type delayEveryFourth struct{ n int }

func (d *delayEveryFourth) Message(_, _, _ int, _ *rng.RNG) faultsim.Fate {
	d.n++
	if d.n%4 == 0 {
		return faultsim.Fate{Delay: 2}
	}
	return faultsim.Fate{}
}

func (*delayEveryFourth) Vertex(int, int) faultsim.VertexFate { return faultsim.VertexUp }

// TestSteadyStateRoundZeroAllocs is the allocation gate for the value-typed
// message path: once the reused buffers (shard outboxes, the inbox arena)
// have grown to steady-state capacity, a full sequential round — sweep,
// delivery, live refresh, round bookkeeping — must allocate nothing. It
// drives the exact per-round body of runLoop whitebox so the measurement
// isolates rounds from run setup.
func TestSteadyStateRoundZeroAllocs(t *testing.T) {
	const n = 1024
	r := NewRunner(ringGraph(n), func(int) Node { return steadyBroadcaster{} }, Options{Seed: 1})
	st := r.newExecState(1)
	round := 0
	oneRound := func() {
		r.startRound(st, round)
		for _, sh := range st.shards {
			r.sweepShard(st, sh, round)
		}
		if err := r.deliver(st, round); err != nil {
			t.Fatal(err)
		}
		st.refreshLive()
		r.endRound(st, round)
		round++
	}
	// Warm up: round 0 (Init) plus a few steady rounds grow every reused
	// buffer to its final capacity.
	for i := 0; i < 4; i++ {
		oneRound()
	}
	if avg := testing.AllocsPerRun(20, oneRound); avg != 0 {
		t.Fatalf("steady-state sequential round allocates %v objects, want 0", avg)
	}
}

// TestSteadyStateRoundZeroAllocsBucketed extends the gate to the pool
// driver's destination-bucketed delivery (deliverBuckets/mergeBucket):
// once the per-destination buckets, frontiers, and arena have grown to
// steady-state capacity, a bucketed round must allocate nothing. The
// shards are swept on the test goroutine (the worker barrier is driver
// plumbing, not allocation behavior) and the coordinator-loop merge runs,
// which is byte-for-byte the same merge the workers execute in parallel.
func TestSteadyStateRoundZeroAllocsBucketed(t *testing.T) {
	const n = 1024
	r := NewRunner(ringGraph(n), func(int) Node { return steadyBroadcaster{} }, Options{
		Seed:     1,
		Parallel: true,
	})
	st := r.newExecState(4)
	if st.buckets != 4 {
		t.Fatalf("expected bucketed delivery (buckets=4), got %d", st.buckets)
	}
	round := 0
	oneRound := func() {
		r.startRound(st, round)
		for _, sh := range st.shards {
			r.sweepShard(st, sh, round)
		}
		if err := r.deliver(st, round); err != nil {
			t.Fatal(err)
		}
		st.refreshLive()
		r.endRound(st, round)
		round++
	}
	for i := 0; i < 4; i++ {
		oneRound()
	}
	if avg := testing.AllocsPerRun(20, oneRound); avg != 0 {
		t.Fatalf("steady-state bucketed round allocates %v objects, want 0", avg)
	}
}

// TestSteadyStateRoundZeroAllocsRelabeled extends the gate to a
// non-identity layout: with the BFS relabeling active, every round runs
// the external↔internal translation path (extID, the dual
// neighbors/targets context slices) and must still allocate nothing.
func TestSteadyStateRoundZeroAllocsRelabeled(t *testing.T) {
	const n = 1024
	r := NewRunner(ringGraph(n), func(int) Node { return steadyBroadcaster{} }, Options{
		Seed:   1,
		Layout: "bfs",
	})
	if r.layoutErr != nil {
		t.Fatal(r.layoutErr)
	}
	if r.perm == nil {
		t.Fatal("bfs layout on a ring should produce a non-identity permutation")
	}
	st := r.newExecState(1)
	round := 0
	oneRound := func() {
		r.startRound(st, round)
		for _, sh := range st.shards {
			r.sweepShard(st, sh, round)
		}
		if err := r.deliver(st, round); err != nil {
			t.Fatal(err)
		}
		st.refreshLive()
		r.endRound(st, round)
		round++
	}
	for i := 0; i < 4; i++ {
		oneRound()
	}
	if avg := testing.AllocsPerRun(20, oneRound); avg != 0 {
		t.Fatalf("steady-state relabeled round allocates %v objects, want 0", avg)
	}
}

// TestSteadyStateRoundZeroAllocsWithDelays extends the gate to the faulted
// delivery path: with a plan that only delays (never drops), steady-state
// rounds must still allocate nothing once the delay buckets have cycled
// through the free list a few times.
func TestSteadyStateRoundZeroAllocsWithDelays(t *testing.T) {
	const n = 256
	r := NewRunner(ringGraph(n), func(int) Node { return steadyBroadcaster{} }, Options{
		Seed:     1,
		DropProb: 0, // keep the legacy knob off; the plan below is the fault model
		Faults:   &delayEveryFourth{},
	})
	st := r.newExecState(1)
	round := 0
	oneRound := func() {
		r.startRound(st, round)
		for _, sh := range st.shards {
			r.sweepShard(st, sh, round)
		}
		if err := r.deliver(st, round); err != nil {
			t.Fatal(err)
		}
		st.refreshLive()
		r.endRound(st, round)
		round++
	}
	// Longer warm-up: the delay map and its buckets need several rounds to
	// reach the steady population the free list then recycles.
	for i := 0; i < 12; i++ {
		oneRound()
	}
	if avg := testing.AllocsPerRun(20, oneRound); avg != 0 {
		t.Fatalf("steady-state delayed round allocates %v objects, want 0", avg)
	}
}
