package congest

// This file is the engine side of the distributed multi-process driver
// (DriverDistributed): every shard's nodes live in a separate OS process
// (a shard worker), and the coordinator exchanges round-batched frames
// with the fleet over sockets (internal/distrib provides the transports
// and the binary codec; this file is transport-agnostic).
//
// Determinism contract. The distributed driver reuses the in-process
// coordinator verbatim — runLoop, deliver, the event bus — so everything
// that consumes randomness or emits deterministic events stays on the
// coordinator, in global sender order:
//
//   - fault fates and fault-stream draws happen in deliver, exactly as for
//     the sequential driver (workers never see the fault RNG; they receive
//     the already-drawn vertex fates and the already-filtered inboxes);
//   - shards are contiguous ascending ID ranges and each worker sweeps its
//     nodes in ID order, so concatenating worker outboxes in shard order
//     reproduces the global send order every in-process driver uses;
//   - node RNG streams are Split(v) of the run seed on the worker — the
//     same pure function of (seed, v) the in-process drivers use, so
//     stream contents do not depend on which process draws them.
//
// Crash recovery. The coordinator keeps a per-shard log of every round
// input it sent plus a digest of every round output it received. When a
// shard's connection breaks (worker crash, SIGKILL, socket error), the
// coordinator asks the Fleet for a fresh worker and replays the log:
// because the worker is a pure function of (config, input sequence), the
// replayed outputs must digest-match the originals — a mismatch is
// reported as a hard nondeterminism error, never papered over — and after
// the fast-forward the run continues from the round that failed. The
// final fingerprint of a recovered run is bit-identical to an undisturbed
// one by construction.

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/faultsim"
	"repro/internal/rng"
	"repro/internal/trace"
)

// ShardConfig tells a worker process which slice of the run it owns. It
// carries engine parameters only; the program (algorithm name, arguments)
// and the adjacency of [Lo, Hi) travel with the Fleet implementation,
// which owns the graph and the program spec.
type ShardConfig struct {
	// Index is this shard's position in the fleet; NumShards is the
	// effective shard count (the fleet's size clamped to the vertex count).
	Index, NumShards int
	// Lo, Hi delimit the owned contiguous vertex range [Lo, Hi).
	//idspace:internal
	Lo, Hi int
	// N is the whole graph's vertex count.
	N int
	// Seed is the run's root seed; the worker splits node streams from it
	// exactly as the in-process drivers do.
	Seed uint64
	// MessageBitLimit mirrors Options.MessageBitLimit.
	MessageBitLimit int
	// Traced mirrors whether the run wants the full event stream; workers
	// buffer Context.Emit and halt events only when set.
	Traced bool
	// Layout names the run's vertex ordering (Options.Layout). The fleet
	// resolves it to ship relabeled (internal-order) adjacency plus the
	// internal→external ID map; Lo/Hi/N and every frontier index are in
	// internal order, while node identities stay external.
	Layout string
}

// VertexFate is one non-Up fault verdict for a live vertex this round,
// drawn (purely) on the coordinator and shipped to the owning worker.
// Fate uses the faultsim.VertexState values (1 = down, 2 = gone).
type VertexFate struct {
	//idspace:internal
	V    int32
	Fate int32
}

// RoundInput is one round's coordinator → worker payload: the round
// number, the non-Up fates for the shard's live vertices, and the shard's
// inboxes — per-vertex lengths over [Lo, Hi) plus the concatenated
// messages in ascending vertex order (the coordinator's arena layout).
// The slices are only valid during the Send call they are passed to.
type RoundInput struct {
	Round     int
	Fates     []VertexFate
	InboxLens []int32
	Inbox     []Message
}

// Packet is one outgoing message from a worker sweep, in (sender ID, send
// call) order — the exported form of the engine's internal outbox entry.
type Packet struct {
	// To addresses the coordinator's internal storage; From is the
	// sender's external node identity (what neighbors see on the wire).
	//
	//idspace:internal
	To int32
	//idspace:external
	From int32
	Wire Wire
}

// RoundOutput is one round's worker → coordinator payload.
type RoundOutput struct {
	// Packets are the shard's sends this round in global send order for
	// the shard (ascending sender ID, send-call order per sender).
	Packets []Packet
	// Events are the trace events the sweep buffered (Context.Emit node
	// states and halt events, interleaved per vertex exactly as the
	// in-process sweep produces them). Empty when the run is untraced.
	Events []trace.Event
	// Halted lists the vertices that halted this round, ascending. It is
	// always shipped (even untraced) because the coordinator's live count
	// — and so run termination — depends on it.
	//
	//idspace:internal
	Halted []int32
	// Draws is the worker's cumulative node-RNG draw count over all its
	// vertices, for the coordinator's EvRNG accounting.
	Draws uint64
	// Err is the first model violation a node of this shard committed
	// (send to a non-neighbor, oversized message), as an error string; it
	// aborts the run on the coordinator exactly as sh.err does in-process.
	Err string

	// Advisory transport measurements, filled by the connection (not the
	// worker): frame bytes written to the shard for this round, frame
	// bytes read back, and the exchange's round-trip latency. They feed
	// the EvFrame event and are excluded from the replay digest.
	BytesOut, BytesIn, LatencyNanos int64
}

// ShardConn is the coordinator's connection to one shard worker. Send and
// Recv are split so the coordinator can send round inputs to every shard
// before collecting any output — all workers sweep concurrently while the
// coordinator's round stays sequential and deterministic.
type ShardConn interface {
	// Send ships one round's input to the worker.
	Send(in RoundInput) error
	// Recv collects the worker's output for the round last sent.
	Recv() (RoundOutput, error)
	// Outputs ends the run and returns the worker's per-vertex exported
	// state (Porter.ExportState) for [Lo, Hi), in vertex order.
	Outputs() ([]uint64, error)
	// Close releases the connection.
	Close() error
}

// Fleet provides shard workers to the distributed coordinator. Shard is
// called once per shard at run start, and again whenever a shard's
// connection breaks (crash recovery respawns through it).
type Fleet interface {
	// NumShards is the fleet's worker count; the coordinator clamps it to
	// the vertex count.
	NumShards() int
	// Shard starts (or restarts) the worker for cfg.Index and returns its
	// connection.
	Shard(cfg ShardConfig) (ShardConn, error)
}

// Porter is the node-state transfer contract distributed runs require:
// a worker exports each vertex's terminal state as one 64-bit word and
// the coordinator imports it into its mirror node, so output readers
// (base.Statuses, experiment harnesses) work unchanged. Every MIS node
// type in this repository packs its status losslessly into the word.
type Porter interface {
	// ExportState packs the node's observable output state.
	ExportState() uint64
	// ImportState restores state packed by ExportState.
	ImportState(uint64)
}

// replay-divergence sentinel: a respawned worker's replayed output did not
// digest-match the original. This is a determinism violation, not a
// transient fault, so recovery does not retry past it.
var errReplayDiverged = errors.New("replayed round output diverged from the original (nondeterministic worker)")

// respawnAttempts bounds how many fresh workers recovery will try for one
// shard in one round before declaring the shard lost.
const respawnAttempts = 3

// shardLog is one shard's recovery state: deep copies of every round
// input sent so far, and a digest of every round output received.
type shardLog struct {
	inputs  []RoundInput
	digests []uint64
}

// distRun is the distributed coordinator's per-run state around the
// shared execState.
type distRun struct {
	r     *Runner
	st    *execState
	fleet Fleet
	cfgs  []ShardConfig
	conns []ShardConn
	logs  []shardLog
	ins   []RoundInput
	outs  []RoundOutput
	errs  []error
	lens  [][]int32     // per-shard InboxLens scratch, reused across rounds
	bufs  [][]Message   // per-shard inbox compaction scratch (faulted rounds)
	adv   []trace.Event // advisory frame/respawn events, emitted in afterRound
}

// runDistributed executes the program over Options.Fleet. It reuses the
// in-process round loop and delivery path: the only driver-specific part
// is the sweep, which ships inputs to the worker processes and merges
// their outputs back into the shard outboxes.
func (r *Runner) runDistributed() (Result, error) {
	fleet := r.opts.Fleet
	if fleet == nil {
		return Result{}, errors.New("congest: DriverDistributed requires Options.Fleet")
	}
	for v, nd := range r.nodes {
		if _, ok := nd.(Porter); !ok {
			ev := v
			if r.ext != nil {
				ev = r.ext[v]
			}
			return Result{}, fmt.Errorf("congest: distributed runs need every node to implement Porter; vertex %d (%T) does not", ev, nd)
		}
	}
	st := r.newExecState(fleet.NumShards())
	st.remote = true
	d := &distRun{r: r, st: st, fleet: fleet}
	if err := d.start(); err != nil {
		return st.res, err
	}
	// Connections are NOT closed here: the Fleet owns them, so a fleet can
	// serve several runs back-to-back (Fleet.Shard re-configures a live
	// worker) and Fleet close tears them down.
	res, err := r.runLoop(st, d.sweep, d.afterRound)
	if outErr := d.collectOutputs(err != nil); err == nil && outErr != nil {
		return res, outErr
	}
	return res, err
}

// start dials the fleet: one connection per non-empty shard.
func (d *distRun) start() error {
	nShards := len(d.st.shards)
	d.cfgs = make([]ShardConfig, nShards)
	d.conns = make([]ShardConn, nShards)
	d.logs = make([]shardLog, nShards)
	d.ins = make([]RoundInput, nShards)
	d.outs = make([]RoundOutput, nShards)
	d.errs = make([]error, nShards)
	d.lens = make([][]int32, nShards)
	d.bufs = make([][]Message, nShards)
	for s, sh := range d.st.shards {
		if sh.hi <= sh.lo {
			continue
		}
		d.cfgs[s] = ShardConfig{
			Index:           s,
			NumShards:       nShards,
			Lo:              sh.lo,
			Hi:              sh.hi,
			N:               d.r.g.N(),
			Seed:            d.r.opts.Seed,
			MessageBitLimit: d.r.opts.MessageBitLimit,
			Traced:          d.st.full,
			Layout:          d.r.opts.Layout,
		}
		conn, err := d.fleet.Shard(d.cfgs[s])
		if err != nil {
			return fmt.Errorf("congest: distributed shard %d failed to start: %w", s, err)
		}
		d.conns[s] = conn
		d.lens[s] = make([]int32, sh.hi-sh.lo)
	}
	return nil
}

// sweep is the distributed driver's round body: build every shard's
// input, ship all inputs, collect all outputs (recovering any shard whose
// connection broke), and merge the outputs into the shard outboxes that
// the shared deliver pass consumes.
func (d *distRun) sweep(round int) {
	st := d.st
	for s, sh := range st.shards {
		if d.conns[s] == nil {
			continue
		}
		in := RoundInput{Round: round}
		if round > 0 && st.plan != nil {
			in.Fates = d.scanFates(sh, round)
		}
		lens := d.lens[s]
		for v := sh.lo; v < sh.hi; v++ {
			lens[v-sh.lo] = int32(st.inboxLen[v])
		}
		in.InboxLens = lens
		if st.plan == nil {
			// Reliable delivery admits every counted message, so the arena
			// segment for [lo, hi) is dense and can ship as one slice.
			start := st.inboxOff[sh.lo]
			end := st.inboxOff[sh.hi-1] + st.inboxLen[sh.hi-1]
			in.Inbox = st.arena[start:end]
		} else {
			// Drops and delays leave gaps between inboxOff[v]+inboxLen[v]
			// and the next vertex's offset: compact the admitted segments.
			buf := d.bufs[s][:0]
			for v := sh.lo; v < sh.hi; v++ {
				off := st.inboxOff[v]
				buf = append(buf, st.arena[off:off+st.inboxLen[v]]...)
			}
			d.bufs[s] = buf
			in.Inbox = buf
		}
		d.ins[s] = in
	}
	d.exchange(round)
	d.apply(round)
}

// scanFates draws the round's vertex fates for a shard's live vertices —
// the same pure plan.Vertex consult the in-process sweep performs — and
// retires permanently-gone vertices from the coordinator's mirror
// frontier, exactly as sweepShard does.
func (d *distRun) scanFates(sh *shard, round int) []VertexFate {
	st := d.st
	var fates []VertexFate
	base := sh.lo >> 6
	for wi := range sh.frontier {
		w := sh.frontier[wi]
		if w == 0 {
			continue
		}
		vbase := (base + wi) << 6
		for rem := w; rem != 0; {
			b := bits.TrailingZeros64(rem)
			rem &^= 1 << uint(b)
			v := vbase + b
			// v indexes the internal frontier; plans speak external IDs.
			switch st.plan.Vertex(round, st.extID(v)) {
			case faultsim.VertexGone:
				fates = append(fates, VertexFate{V: int32(v), Fate: int32(faultsim.VertexGone)})
				sh.frontier[wi] &^= 1 << uint(b)
				sh.liveCount--
			case faultsim.VertexDown:
				fates = append(fates, VertexFate{V: int32(v), Fate: int32(faultsim.VertexDown)})
			}
		}
	}
	return fates
}

// exchange ships the round to the fleet: send phase in shard order, recv
// phase in shard order (workers sweep concurrently in between), then a
// recovery pass for any shard whose connection failed. A shard that
// cannot be recovered gets its mirror error set, which aborts the run in
// deliver with the lowest-shard error — the same precedence the
// in-process drivers give model violations.
func (d *distRun) exchange(round int) {
	st := d.st
	for s := range st.shards {
		if d.conns[s] == nil {
			continue
		}
		d.errs[s] = nil
		if err := d.conns[s].Send(d.ins[s]); err != nil {
			d.errs[s] = err
		}
	}
	for s := range st.shards {
		if d.conns[s] == nil || d.errs[s] != nil {
			continue
		}
		out, err := d.conns[s].Recv()
		if err != nil {
			d.errs[s] = err
		} else {
			d.outs[s] = out
		}
	}
	for s := range st.shards {
		if d.conns[s] == nil || d.errs[s] == nil {
			continue
		}
		out, err := d.recoverShard(s, round)
		if err != nil {
			if st.shards[s].err == nil {
				st.shards[s].err = fmt.Errorf("congest: distributed shard %d lost at round %d: %w", s, round, err)
			}
			continue
		}
		d.errs[s] = nil
		d.outs[s] = out
	}
}

// recoverShard respawns a shard through the fleet and fast-forwards it by
// replaying the logged round inputs, verifying every replayed output
// against its recorded digest, then redoes the current round.
func (d *distRun) recoverShard(s, round int) (RoundOutput, error) {
	lastErr := d.errs[s]
	for attempt := 0; attempt < respawnAttempts; attempt++ {
		d.conns[s].Close()
		conn, err := d.fleet.Shard(d.cfgs[s])
		if err != nil {
			lastErr = err
			continue
		}
		d.conns[s] = conn
		out, err := d.replayAndRedo(s)
		if err == nil {
			if d.st.full {
				d.adv = append(d.adv, trace.Event{
					Type: trace.EvRespawn, Round: int32(round),
					V: int32(s), X: int64(len(d.logs[s].inputs)),
				})
			}
			return out, nil
		}
		lastErr = err
		if errors.Is(err, errReplayDiverged) {
			break // determinism violation: a fresh worker will not fix it
		}
	}
	return RoundOutput{}, lastErr
}

// replayAndRedo feeds a fresh worker the shard's whole input log, checks
// each replayed output's digest against the recorded one, and then
// replays the current (unlogged) round for real.
func (d *distRun) replayAndRedo(s int) (RoundOutput, error) {
	log := &d.logs[s]
	for i, in := range log.inputs {
		if err := d.conns[s].Send(in); err != nil {
			return RoundOutput{}, fmt.Errorf("replay send round %d: %w", in.Round, err)
		}
		out, err := d.conns[s].Recv()
		if err != nil {
			return RoundOutput{}, fmt.Errorf("replay recv round %d: %w", in.Round, err)
		}
		if got := outputDigest(out); got != log.digests[i] {
			return RoundOutput{}, fmt.Errorf("round %d digest %#x != recorded %#x: %w",
				in.Round, got, log.digests[i], errReplayDiverged)
		}
	}
	if err := d.conns[s].Send(d.ins[s]); err != nil {
		return RoundOutput{}, err
	}
	return d.conns[s].Recv()
}

// apply merges the round's worker outputs into the coordinator's mirror
// state in shard order: outbox packets (validated), buffered trace
// events, halt retirements on the mirror frontier, draw totals, and any
// worker-reported model violation.
func (d *distRun) apply(round int) {
	st := d.st
	var draws uint64
	for s, sh := range st.shards {
		if d.conns[s] == nil || d.errs[s] != nil {
			continue
		}
		out := d.outs[s]
		// Log before interpreting: recovery needs the input/digest pair
		// even for a round that ends the run.
		d.logs[s].inputs = append(d.logs[s].inputs, copyRoundInput(d.ins[s]))
		d.logs[s].digests = append(d.logs[s].digests, outputDigest(out))
		draws += out.Draws
		if out.Err != "" && sh.err == nil {
			sh.err = errors.New(out.Err)
		}
		if sh.err == nil {
			for _, p := range out.Packets {
				// Packet.To addresses internal storage; Packet.From is the
				// sender's external ID, mapped through perm to check it
				// belongs to this shard's internal range.
				ifrom, ok := int(p.From), true
				if st.perm != nil {
					if ifrom < 0 || ifrom >= len(st.perm) {
						ok = false
					} else {
						ifrom = st.perm[ifrom]
					}
				}
				if !ok || int(p.To) < 0 || int(p.To) >= len(st.inboxLen) || ifrom < sh.lo || ifrom >= sh.hi {
					//idspace:ok addressing error: the internal To slot is exactly what went wrong
					sh.err = fmt.Errorf("congest: distributed shard %d returned packet with invalid addressing %d→%d", s, p.From, p.To)
					break
				}
				sh.out[0] = append(sh.out[0], addressed{to: int(p.To), msg: Message{From: int(p.From), Wire: p.Wire}})
			}
		}
		sh.events = append(sh.events, out.Events...)
		for _, v32 := range out.Halted {
			v := int(v32)
			if v < sh.lo || v >= sh.hi {
				if sh.err == nil {
					//idspace:ok addressing error: the internal halt slot is exactly what went wrong
					sh.err = fmt.Errorf("congest: distributed shard %d reported halt of foreign vertex %d", s, v)
				}
				continue
			}
			wi := v>>6 - sh.lo>>6
			bit := uint64(1) << uint(v&63)
			if sh.frontier[wi]&bit != 0 {
				sh.frontier[wi] &^= bit
				sh.liveCount--
			}
		}
		if st.full && d.r.opts.EventTiming {
			//lint:advisory frame bytes and round-trip latency are advisory transport measurements, never program logic
			d.adv = append(d.adv, trace.Event{
				Type: trace.EvFrame, Round: int32(round), V: int32(s),
				X: out.BytesOut, Y: out.BytesIn, Z: out.LatencyNanos,
			})
		}
	}
	st.remoteDraws = draws
}

// afterRound publishes the round's buffered advisory events (frame
// transport measurements, respawns) after delivery, mirroring where the
// pool driver publishes its timing events.
func (d *distRun) afterRound(int) {
	if !d.st.full {
		d.adv = d.adv[:0]
		return
	}
	for _, e := range d.adv {
		d.st.bus.Emit(e)
	}
	d.adv = d.adv[:0]
}

// collectOutputs ends the run on every worker and imports the exported
// per-vertex state into the coordinator's mirror nodes, so output readers
// see exactly what an in-process run leaves behind. When the run already
// failed, transport errors here are ignored (a lost shard cannot export).
func (d *distRun) collectOutputs(runFailed bool) error {
	for s, sh := range d.st.shards {
		conn := d.conns[s]
		if conn == nil {
			continue
		}
		vals, err := conn.Outputs()
		if err != nil {
			if runFailed {
				continue
			}
			return fmt.Errorf("congest: distributed shard %d outputs: %w", s, err)
		}
		if len(vals) != sh.hi-sh.lo {
			if runFailed {
				continue
			}
			return fmt.Errorf("congest: distributed shard %d exported %d states for %d vertices", s, len(vals), sh.hi-sh.lo)
		}
		for i, x := range vals {
			d.r.nodes[sh.lo+i].(Porter).ImportState(x)
		}
	}
	return nil
}

// copyRoundInput deep-copies a round input for the recovery log: the
// original's Inbox aliases the coordinator's arena (reused every round)
// and InboxLens aliases per-shard scratch.
func copyRoundInput(in RoundInput) RoundInput {
	return RoundInput{
		Round:     in.Round,
		Fates:     append([]VertexFate(nil), in.Fates...),
		InboxLens: append([]int32(nil), in.InboxLens...),
		Inbox:     append([]Message(nil), in.Inbox...),
	}
}

// digest constants: the FNV-1a offset basis seeds the accumulator and the
// Murmur3 finalizer multiplier mixes each word (the same recipe as the
// trace fingerprint, applied to round outputs).
const (
	digestOffset = 0xcbf29ce484222325
	digestMix    = 0xff51afd7ed558ccd
)

// digestFold mixes one word into a round-output digest accumulator.
func digestFold(h, x uint64) uint64 {
	h ^= x
	h *= digestMix
	h ^= h >> 33
	return h
}

// outputDigest summarizes the deterministic content of a round output for
// replay verification. The advisory transport fields are excluded: they
// legitimately differ between the original exchange and a replay.
func outputDigest(out RoundOutput) uint64 {
	h := uint64(digestOffset)
	h = digestFold(h, uint64(len(out.Packets)))
	for _, p := range out.Packets {
		h = digestFold(h, uint64(uint32(p.To))<<32|uint64(uint32(p.From)))
		h = digestFold(h, uint64(p.Wire.Kind)<<16|uint64(p.Wire.Bits))
		h = digestFold(h, p.Wire.A)
		h = digestFold(h, p.Wire.B)
	}
	h = digestFold(h, uint64(len(out.Events)))
	for _, e := range out.Events {
		h = digestFold(h, uint64(e.Type)<<32|uint64(uint32(e.Round)))
		h = digestFold(h, uint64(uint32(e.V))<<32|uint64(uint32(e.W)))
		h = digestFold(h, uint64(e.X))
		h = digestFold(h, uint64(e.Y))
		h = digestFold(h, uint64(e.Z))
	}
	h = digestFold(h, uint64(len(out.Halted)))
	for _, v := range out.Halted {
		h = digestFold(h, uint64(uint32(v)))
	}
	h = digestFold(h, out.Draws)
	h = digestFold(h, uint64(len(out.Err)))
	for i := 0; i < len(out.Err); i++ {
		h = digestFold(h, uint64(out.Err[i]))
	}
	return h
}

// ShardWorker is the worker-process side of the distributed driver: the
// sweep engine for one contiguous vertex shard. It reuses the in-process
// engine's Context and outbox machinery, so node programs observe exactly
// the environment the in-process drivers give them; what it does NOT have
// is the fault plan, the fault RNG, or delivery — those stay on the
// coordinator, which is what keeps socket transport outside the
// determinism surface.
type ShardWorker struct {
	cfg   ShardConfig
	r     *Runner // options/traced carcass for Context plumbing; never Run
	sh    *shard
	ctxs  []Context
	nodes []Node
	//idspace:index internal
	//idspace:external
	ext    []int   // internal -> external ID map; nil = identity layout
	round  int     // next expected round
	fate   []uint8 // per-vertex fate scratch for the current round
	off    []int   // per-vertex inbox offset scratch
	halted []int32
	pkts   []Packet
}

// extID translates one of this shard's internal vertex IDs to its
// external (original) ID.
//
//idspace:internal v
//idspace:returns external
func (w *ShardWorker) extID(v int) int {
	if w.ext == nil {
		return v //idspace:ok identity layout: internal and external IDs coincide
	}
	return w.ext[v]
}

// NewShardWorker builds the sweep engine for cfg. neighbors(v) must
// return the sorted internal-order adjacency of each owned vertex v in
// [cfg.Lo, cfg.Hi). ext maps internal IDs to external (original) IDs for
// the whole graph under a non-identity layout — nil means identity.
// factory is called with external IDs and must return the same state
// machine the coordinator's mirror uses. Every node must implement Porter.
func NewShardWorker(cfg ShardConfig, neighbors func(v int) []int, ext []int, factory func(v int) Node) (*ShardWorker, error) {
	if cfg.Lo < 0 || cfg.Hi < cfg.Lo || cfg.Hi > cfg.N {
		//idspace:ok the shard range is an internal-order concept; the error describes it as such
		return nil, fmt.Errorf("congest: shard range [%d, %d) invalid for n=%d", cfg.Lo, cfg.Hi, cfg.N)
	}
	if ext != nil && len(ext) != cfg.N {
		return nil, fmt.Errorf("congest: shard got %d ID-map entries for n=%d", len(ext), cfg.N)
	}
	width := cfg.Hi - cfg.Lo
	w := &ShardWorker{
		cfg:   cfg,
		r:     &Runner{opts: Options{MessageBitLimit: cfg.MessageBitLimit}, traced: cfg.Traced},
		sh:    &shard{idx: cfg.Index, out: make([][]addressed, 1)},
		ctxs:  make([]Context, width),
		nodes: make([]Node, width),
		ext:   ext,
		fate:  make([]uint8, width),
		off:   make([]int, width),
	}
	w.sh.resetFrontier(cfg.Lo, cfg.Hi)
	root := rng.New(cfg.Seed)
	for v := cfg.Lo; v < cfg.Hi; v++ {
		extv := w.extID(v)
		nd := factory(extv)
		if _, ok := nd.(Porter); !ok {
			return nil, fmt.Errorf("congest: distributed runs need every node to implement Porter; vertex %d (%T) does not", extv, nd)
		}
		i := v - cfg.Lo
		w.nodes[i] = nd
		// The context mirrors the coordinator's: external identity and
		// external-sorted neighbor list, internal send targets. Identity
		// layout aliases the shipped adjacency row for both.
		nbrs := neighbors(v)
		tgts := nbrs
		if ext != nil {
			row := nbrs
			nbrs = make([]int, len(row))
			tgts = make([]int, len(row))
			for j, q := range row {
				nbrs[j] = ext[q]
				tgts[j] = q
			}
			sort.Sort(&pairByExt{ext: nbrs, tgt: tgts})
		}
		w.ctxs[i] = Context{
			id:        extv,
			n:         cfg.N,
			neighbors: nbrs,
			targets:   tgts,
			rng:       root.Split(uint64(extv)),
			shard:     w.sh,
			runner:    w.r,
		}
	}
	return w, nil
}

// Live returns the number of not-yet-halted vertices in the shard.
func (w *ShardWorker) Live() int { return w.sh.liveCount }

// Sweep runs one round over the shard's live vertices and returns their
// sends, buffered trace events, halts and draw totals. The returned
// slices are valid until the next Sweep call. An error return is a
// protocol violation (malformed input, out-of-sequence round) and is
// fatal for the connection; a model violation by a node travels in
// RoundOutput.Err instead, like the in-process shard error.
//
// Sweep runs in a worker process: engine-side randomness (the fault
// stream) must never be drawn here — misvet's draworder analyzer walks
// everything reachable from this root. Node algorithms drawing from
// their own per-vertex Split streams sit behind the Node interface,
// the sanctioned dynamic seam.
//
//draworder:worker
func (w *ShardWorker) Sweep(in RoundInput) (RoundOutput, error) {
	if in.Round != w.round {
		return RoundOutput{}, fmt.Errorf("congest: shard %d expected round %d, got %d", w.cfg.Index, w.round, in.Round)
	}
	width := w.cfg.Hi - w.cfg.Lo
	if len(in.InboxLens) != width {
		return RoundOutput{}, fmt.Errorf("congest: shard %d got %d inbox lengths for %d vertices", w.cfg.Index, len(in.InboxLens), width)
	}
	total := 0
	for i, l := range in.InboxLens {
		if l < 0 {
			//idspace:ok protocol error about internal storage addressing; internal ID is the useful one
			return RoundOutput{}, fmt.Errorf("congest: shard %d got negative inbox length for vertex %d", w.cfg.Index, w.cfg.Lo+i)
		}
		w.off[i] = total
		total += int(l)
	}
	if total != len(in.Inbox) {
		return RoundOutput{}, fmt.Errorf("congest: shard %d inbox has %d messages, lengths sum to %d", w.cfg.Index, len(in.Inbox), total)
	}
	for _, f := range in.Fates {
		if int(f.V) < w.cfg.Lo || int(f.V) >= w.cfg.Hi {
			//idspace:ok protocol error about internal storage addressing; internal ID is the useful one
			return RoundOutput{}, fmt.Errorf("congest: shard %d got fate for foreign vertex %d", w.cfg.Index, f.V)
		}
		w.fate[int(f.V)-w.cfg.Lo] = uint8(f.Fate)
	}

	w.sh.events = w.sh.events[:0]
	w.sh.out[0] = w.sh.out[0][:0]
	w.halted = w.halted[:0]
	w.sweep(in)
	for _, f := range in.Fates {
		w.fate[int(f.V)-w.cfg.Lo] = 0
	}
	w.round++

	w.pkts = w.pkts[:0]
	for _, a := range w.sh.out[0] {
		w.pkts = append(w.pkts, Packet{To: int32(a.to), From: int32(a.msg.From), Wire: a.msg.Wire})
	}
	out := RoundOutput{
		Packets: w.pkts,
		Events:  w.sh.events,
		Halted:  w.halted,
		Draws:   w.draws(),
	}
	if w.sh.err != nil {
		out.Err = w.sh.err.Error()
	}
	return out, nil
}

// sweep is the mirror of the in-process sweepShard over the worker's own
// frontier: live vertices in ascending ID order, fates applied the way
// the coordinator drew them, halts retiring frontier bits.
func (w *ShardWorker) sweep(in RoundInput) {
	sh := w.sh
	round := in.Round
	base := sh.lo >> 6
	for wi := range sh.frontier {
		wd := sh.frontier[wi]
		if wd == 0 {
			continue
		}
		vbase := (base + wi) << 6
		for rem := wd; rem != 0; {
			b := bits.TrailingZeros64(rem)
			rem &^= 1 << uint(b)
			v := vbase + b
			i := v - w.cfg.Lo
			if f := w.fate[i]; f != 0 {
				if f == uint8(faultsim.VertexGone) {
					sh.frontier[wi] &^= 1 << uint(b)
					sh.liveCount--
				}
				continue
			}
			ctx := &w.ctxs[i]
			ctx.round = round
			if round == 0 {
				w.nodes[i].Init(ctx)
			} else {
				off := w.off[i]
				end := off + int(in.InboxLens[i])
				w.nodes[i].Round(ctx, in.Inbox[off:end:end])
			}
			if ctx.halted {
				sh.frontier[wi] &^= 1 << uint(b)
				sh.liveCount--
				// Halted addresses the coordinator's internal frontier;
				// the trace event reports the external identity.
				w.halted = append(w.halted, int32(v))
				if w.r.traced {
					sh.events = append(sh.events, trace.Event{
						Type: trace.EvHalt, Round: int32(round), V: int32(w.extID(v)),
					})
				}
			}
		}
	}
}

// draws sums the cumulative draw counts of the shard's node streams.
func (w *ShardWorker) draws() uint64 {
	var d uint64
	for i := range w.ctxs {
		d += w.ctxs[i].rng.Draws()
	}
	return d
}

// Outputs exports every owned vertex's terminal state, in vertex order.
func (w *ShardWorker) Outputs() []uint64 {
	vals := make([]uint64, len(w.nodes))
	for i, nd := range w.nodes {
		vals[i] = nd.(Porter).ExportState()
	}
	return vals
}
