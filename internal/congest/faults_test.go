package congest

// Engine-level fault-injection tests: the faultsim.Plan hooks as seen from
// the runner — crash skips, retirement, delayed delivery, receiver-crash
// loss, and DropProb back-compat. Cross-driver bit-identity of faulted
// runs is covered separately by crossdriver_test.go.

import (
	"testing"

	"repro/internal/faultsim"
	"repro/internal/graph"
)

// recorder logs the round of every received message and runs until told
// to stop, so tests can observe delivery timing under faults.
type recorder struct {
	stopAt   int
	execs    []int // rounds in which Round ran
	arrivals []int // rounds in which messages arrived (one entry per message)
}

func (r *recorder) Init(ctx *Context) {
	ctx.Broadcast(rawWire(8))
}

func (r *recorder) Round(ctx *Context, inbox []Message) {
	r.execs = append(r.execs, ctx.Round())
	for range inbox {
		r.arrivals = append(r.arrivals, ctx.Round())
	}
	if ctx.Round() >= r.stopAt {
		ctx.Halt()
		return
	}
	ctx.Broadcast(rawWire(8))
}

func pair(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.MustNew(2, []graph.Edge{{U: 0, V: 1}})
}

func TestCrashRestartSkipsRounds(t *testing.T) {
	g := pair(t)
	r := NewRunner(g, func(int) Node { return &recorder{stopAt: 6} }, Options{
		Seed:   1,
		Faults: faultsim.NewCrashRestart(map[int]faultsim.Window{1: {Down: 2, Up: 4}}),
	})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	got := r.Node(1).(*recorder).execs
	want := []int{1, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("vertex 1 executed rounds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex 1 executed rounds %v, want %v", got, want)
		}
	}
}

func TestCrashStopRetiresVertex(t *testing.T) {
	g := pair(t)
	r := NewRunner(g, func(int) Node { return &recorder{stopAt: 5} }, Options{
		Seed:   1,
		Faults: faultsim.NewCrashStop(map[int]int{1: 3}),
	})
	res, err := r.Run()
	if err != nil {
		t.Fatalf("run with a permanently crashed vertex must still terminate: %v", err)
	}
	execs := r.Node(1).(*recorder).execs
	if len(execs) == 0 || execs[len(execs)-1] != 2 {
		t.Fatalf("vertex 1 executed rounds %v, want none after round 2", execs)
	}
	if res.Dropped == 0 {
		t.Fatal("messages to the dead vertex were not counted as dropped")
	}
}

func TestDelayKDefersDelivery(t *testing.T) {
	g := pair(t)
	r := NewRunner(g, func(int) Node { return &recorder{stopAt: 8} }, Options{
		Seed:   1,
		Faults: faultsim.DelayK{K: 2},
	})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	arrivals := r.Node(0).(*recorder).arrivals
	if len(arrivals) == 0 || arrivals[0] != 3 {
		t.Fatalf("first arrival at rounds %v, want round 3 (sent in Init, delayed 2)", arrivals)
	}
	if res.Delayed == 0 {
		t.Fatal("Result.Delayed not counted")
	}
	// Both nodes stop at round 8: sends from the last rounds (consumed at
	// 10 and 11) die in flight, so delivered stays below deferred.
	if res.Messages >= res.Delayed {
		t.Fatalf("messages=%d delayed=%d: in-flight tail should make delivered < delayed", res.Messages, res.Delayed)
	}
}

func TestDropProbMatchesBernoulliPlan(t *testing.T) {
	run := func(opts Options) (Result, []int) {
		g := pair(t)
		opts.Seed = 9
		r := NewRunner(g, func(int) Node { return &recorder{stopAt: 30} }, opts)
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, r.Node(0).(*recorder).arrivals
	}
	legacyRes, legacyArr := run(Options{DropProb: 0.3})
	planRes, planArr := run(Options{Faults: faultsim.BernoulliDrop{P: 0.3}})
	if legacyRes != planRes {
		t.Fatalf("DropProb %+v != BernoulliDrop %+v", legacyRes, planRes)
	}
	if legacyRes.Dropped == 0 {
		t.Fatal("no drops at p=0.3 over 30 rounds")
	}
	if len(legacyArr) != len(planArr) {
		t.Fatalf("arrival traces differ: %d vs %d", len(legacyArr), len(planArr))
	}
	for i := range legacyArr {
		if legacyArr[i] != planArr[i] {
			t.Fatalf("arrival %d differs: round %d vs %d", i, legacyArr[i], planArr[i])
		}
	}
}

func TestDropProbComposesUnderExplicitPlan(t *testing.T) {
	// Both knobs set: the Bernoulli layer and the burst layer must both
	// apply. Dropping everything via the burst makes the expectation exact.
	g := pair(t)
	r := NewRunner(g, func(int) Node { return &recorder{stopAt: 4} }, Options{
		Seed:     3,
		DropProb: 0.5,
		Faults:   faultsim.NewLinkBurst(faultsim.BothWays([][2]int{{0, 1}}), 0, 100),
	})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 0 {
		t.Fatalf("burst covering every round delivered %d messages", res.Messages)
	}
	if res.Dropped == 0 {
		t.Fatal("nothing dropped")
	}
}

func TestObserverCountsSendsOnceUnderDelay(t *testing.T) {
	g := pair(t)
	var sends int64
	r := NewRunner(g, func(int) Node { return &recorder{stopAt: 5} }, Options{
		Seed:     1,
		Faults:   faultsim.DelayK{K: 1},
		Observer: func(_, _ int, sent int64) { sends += sent },
	})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Every broadcast is 1 message on a pair graph; each node sends in
	// Init plus rounds 1..4 (round 5 halts after its sends... stopAt halts
	// at round 5 before broadcasting). Total = 2 nodes × 5 sends.
	if sends != 10 {
		t.Fatalf("observer saw %d sends, want 10", sends)
	}
	if res.Delayed != 10 {
		t.Fatalf("delayed = %d, want 10", res.Delayed)
	}
}

func TestInitRunsEvenWhenCrashedAtRoundOne(t *testing.T) {
	g := pair(t)
	r := NewRunner(g, func(int) Node { return &recorder{stopAt: 2} }, Options{
		Seed:   1,
		Faults: faultsim.NewCrashStop(map[int]int{0: 1}),
	})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// Vertex 0 never executes a round, but its Init broadcast happened.
	if execs := r.Node(0).(*recorder).execs; len(execs) != 0 {
		t.Fatalf("crashed-at-1 vertex executed rounds %v", execs)
	}
	if arr := r.Node(1).(*recorder).arrivals; len(arr) == 0 || arr[0] != 1 {
		t.Fatalf("vertex 1 arrivals %v, want the Init message in round 1", arr)
	}
}
