package congest

import (
	"sort"
	"time"

	"repro/internal/faultsim"
	"repro/internal/trace"
)

// This file is the engine side of the execution-trace event bus
// (internal/trace): how the drivers publish typed per-round events, and
// how the deprecated Options.Observer / Options.PoolObserver callbacks are
// folded into that bus as adapter sinks.
//
// Determinism contract: tracing is purely observational. Emission consumes
// no randomness, never reorders work, and every deterministic event is
// produced on the coordinator in the same global order under every driver
// (program/halt events ride the same shard-ordered merge as messages), so
// a traced run is bit-identical to an untraced one and deterministic
// events are bit-identical across drivers.

// multiSink fans one event out to several sinks in order.
type multiSink []trace.Sink

// Emit forwards to every sink.
func (m multiSink) Emit(e trace.Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// observerSink adapts the deprecated Options.Observer callback: it fires
// on every round-end event with the same (round, live, sent) triple the
// engine used to deliver directly.
type observerSink struct {
	fn func(round, live int, sent int64)
}

// Emit translates round-end events into Observer calls.
func (s observerSink) Emit(e trace.Event) {
	if e.Type == trace.EvRoundEnd {
		s.fn(int(e.Round), int(e.V), e.X)
	}
}

// poolObserverSink adapts the deprecated Options.PoolObserver callback:
// it reassembles PoolRoundMetrics from the pool driver's timing events
// (shard-busy, merge) and fires once per round on round-end, reusing its
// slices exactly as the old plumbing did.
type poolObserverSink struct {
	fn    func(PoolRoundMetrics)
	m     PoolRoundMetrics
	timed bool // saw a timing event this round
}

// Emit accumulates timing events and flushes on round-end.
func (s *poolObserverSink) Emit(e trace.Event) {
	switch e.Type {
	case trace.EvShardBusy:
		i := int(e.V)
		for len(s.m.Busy) <= i {
			s.m.Busy = append(s.m.Busy, 0)
			s.m.Live = append(s.m.Live, 0)
		}
		s.m.Busy[i] = time.Duration(e.X)
		s.m.Live[i] = int(e.Y)
		s.timed = true
	case trace.EvMerge:
		s.m.Merge = time.Duration(e.X)
		s.timed = true
	case trace.EvRoundEnd:
		if !s.timed {
			return // non-pool driver: PoolObserver stays silent, as before
		}
		s.m.Round = int(e.Round)
		s.fn(s.m)
		s.timed = false
	}
}

// eventBus resolves the run's sink stack. The user sink (Options.Events)
// comes first, then the deprecated adapters in their historical callback
// order (Observer before PoolObserver). full reports whether the rich
// event stream is wanted: the adapters alone only need round-end and
// timing events, so the engine skips the per-round fate/draw bookkeeping
// unless a real sink is attached.
func (o Options) eventBus() (bus trace.Sink, full bool) {
	var sinks multiSink
	if o.Events != nil {
		sinks = append(sinks, o.Events)
	}
	if o.Observer != nil {
		sinks = append(sinks, observerSink{fn: o.Observer})
	}
	if o.PoolObserver != nil {
		sinks = append(sinks, &poolObserverSink{fn: o.PoolObserver})
	}
	switch len(sinks) {
	case 0:
		return nil, false
	case 1:
		return sinks[0], o.Events != nil
	default:
		return sinks, o.Events != nil
	}
}

// timingWanted reports whether the pool driver should pay for wall-clock
// sweep/merge timing: either the deprecated PoolObserver wants its
// metrics, or a tracing sink opted in via EventTiming.
func (o Options) timingWanted() bool {
	return o.PoolObserver != nil || (o.Events != nil && o.EventTiming)
}

// startRound opens a round on the bus: the round-start marker and, when a
// fault plan is active, the non-Up vertex fates for the round (evaluated
// on the coordinator; Vertex is pure and consumes no randomness, so the
// scan cannot perturb the run).
func (r *Runner) startRound(st *execState, round int) {
	if !st.full {
		return
	}
	st.bus.Emit(trace.Event{Type: trace.EvRoundStart, Round: int32(round)})
	if st.plan == nil || round == 0 {
		return
	}
	// The scan walks internal storage order (that is the order every
	// driver shares) but plans and events speak external IDs.
	for v := 0; v < len(st.ctxs); v++ {
		ev := st.extID(v)
		if f := st.plan.Vertex(round, ev); f != faultsim.VertexUp {
			st.bus.Emit(trace.Event{
				Type: trace.EvVertexFate, Round: int32(round), V: int32(ev), X: int64(f),
			})
		}
	}
}

// endRound closes a round on the bus: RNG draw totals, then the round-end
// record every adapter keys on. Deltas are tracked against the previous
// round so each event describes one round, not a running total.
func (r *Runner) endRound(st *execState, round int) {
	if st.bus == nil {
		return
	}
	sent := st.sent - st.observed
	st.observed = st.sent
	if st.full {
		draws := uint64(0)
		if st.remote {
			draws = st.remoteDraws
		} else {
			for v := range st.ctxs {
				draws += st.ctxs[v].rng.Draws()
			}
		}
		var faultDraws uint64
		if st.faults != nil {
			faultDraws = st.faults.Draws()
		}
		st.bus.Emit(trace.Event{
			Type:  trace.EvRNG,
			Round: int32(round),
			X:     int64(draws - st.lastDraws),
			Y:     int64(faultDraws - st.lastFaultDraws),
		})
		st.lastDraws, st.lastFaultDraws = draws, faultDraws
	}
	st.bus.Emit(trace.Event{
		Type:  trace.EvRoundEnd,
		Round: int32(round),
		V:     int32(st.live),
		X:     sent,
		Y:     st.res.Messages - st.lastDelivered,
		Z:     st.res.Dropped - st.lastDropped,
	})
	st.lastDelivered, st.lastDropped = st.res.Messages, st.res.Dropped
}

// drainShardEvents publishes the program/halt events the shard workers
// buffered during the sweep. Shards cover contiguous ascending vertex
// ranges and are drained in shard order, so the merged stream is in
// ascending vertex order under every driver — the same argument that
// makes message delivery driver-independent.
func (st *execState) drainShardEvents() {
	if !st.full {
		return
	}
	for _, sh := range st.shards {
		for _, e := range sh.events {
			st.bus.Emit(e)
		}
		sh.events = sh.events[:0]
	}
}

// flowKey packs a (source shard, destination shard) pair.
func flowKey(src, dst int32) uint64 { return uint64(uint32(src))<<32 | uint64(uint32(dst)) }

// noteFlow accumulates one message into the round's shard-flow matrix.
func (st *execState) noteFlow(srcShard int32, to int) {
	st.flow[flowKey(srcShard, st.vshard[to])]++
}

// emitFlow publishes the round's non-zero shard-flow counts in ascending
// (src, dst) order and resets the matrix. It only runs when flow tracing
// is enabled (st.flow is nil otherwise), so its collect-and-sort
// allocations never touch the untraced steady state.
//
//congest:coldpath
func (st *execState) emitFlow(round int) {
	if len(st.flow) == 0 {
		return
	}
	keys := make([]uint64, 0, len(st.flow))
	for k := range st.flow {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		st.bus.Emit(trace.Event{
			Type:  trace.EvShardFlow,
			Round: int32(round),
			V:     int32(k >> 32),
			W:     int32(uint32(k)),
			X:     st.flow[k],
		})
		delete(st.flow, k)
	}
}
