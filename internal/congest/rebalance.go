package congest

import (
	"math/bits"

	"repro/internal/trace"
)

// This file is the pool driver's live-weighted shard rebalancer. As a run
// shatters (the Pemmaraju–Riaz regime: most nodes halt early, stragglers
// concentrate in small residual components), the static equal-width shard
// layout degenerates — one worker owns most of the surviving frontier and
// the rest idle. Between rounds, while every worker is parked at its
// channel, the coordinator re-partitions the vertex range into contiguous
// pieces of near-equal *live weight*.
//
// Determinism is unaffected by construction: shards still cover ascending
// contiguous vertex ranges and are still merged in shard order, so the
// global sender order — the order inboxes are sorted by and the order the
// fault stream is consumed in — is identical for every layout. Rebalancing
// therefore changes only advisory events (EvShardBusy shapes, EvRebalance
// itself), never the deterministic stream.

// rebalanceMinPerShard is the live-vertex floor per shard below which
// rebalancing is pointless: sweeping a handful of vertices is cheaper than
// re-partitioning, and tail rounds are dominated by merge anyway.
const rebalanceMinPerShard = 64

// maybeRebalance re-partitions the shards when the live histogram is
// skewed: the fullest shard holds more than 1.5× the mean live weight and
// there is enough total work to be worth splitting. Called by the pool
// coordinator between rounds (workers idle, outboxes empty).
func (st *execState) maybeRebalance(round int) {
	numShards := len(st.shards)
	if numShards < 2 {
		return
	}
	total, maxLive := 0, 0
	for _, sh := range st.shards {
		total += sh.liveCount
		if sh.liveCount > maxLive {
			maxLive = sh.liveCount
		}
	}
	if total < rebalanceMinPerShard*numShards {
		return
	}
	// maxLive > 1.5 × (total / numShards), in integers.
	if maxLive*2*numShards <= total*3 {
		return
	}
	st.rebalance(round, total)
}

// rebalance gathers the shard frontiers into one whole-graph bitset and
// re-cuts it into contiguous ranges of near-equal popcount, on word (64
// vertex) boundaries so the per-shard frontiers are copied word-for-word.
// Word-aligned cuts bound the imbalance at 64 vertices per boundary —
// noise against the rebalanceMinPerShard floor.
func (st *execState) rebalance(round, total int) {
	n := len(st.ctxs)
	numShards := len(st.shards)
	words := (n + 63) >> 6
	if st.scratch == nil {
		st.scratch = make([]uint64, words)
	}
	for i := range st.scratch {
		st.scratch[i] = 0
	}
	// Gather: shard ranges partition [0, n), so word-wise OR at each
	// shard's base reassembles the global live bitset (edge words of
	// adjacent shards share a scratch word; their set bits are disjoint).
	for _, sh := range st.shards {
		base := sh.lo >> 6
		for wi, wd := range sh.frontier {
			st.scratch[base+wi] |= wd
		}
	}
	// Cut: walk the popcount and close shard s at the first word boundary
	// where the running count reaches s's cumulative target. Cuts are
	// monotone (targets are), every shard gets a valid possibly-empty
	// range, and the last shard always closes at n so the ranges partition
	// [0, n) — deliverBuckets' region layout depends on that.
	lo := 0
	seen := 0
	word := 0
	for s, sh := range st.shards {
		hi := n
		if s < numShards-1 {
			target := (s + 1) * total / numShards
			for word < words && seen < target {
				seen += bits.OnesCount64(st.scratch[word])
				word++
			}
			hi = word << 6
			if hi > n {
				hi = n
			}
			if hi < lo {
				hi = lo
			}
		}
		sh.loadFrontier(lo, hi, st.scratch)
		for v := lo; v < hi; v++ {
			st.ctxs[v].shard = sh
			if st.vshard != nil {
				st.vshard[v] = int32(sh.idx)
			}
		}
		lo = hi
	}
	st.rebalances++
	if st.full {
		st.bus.Emit(trace.Event{
			Type: trace.EvRebalance, Round: int32(round),
			X: int64(total), Y: st.rebalances,
		})
	}
}
