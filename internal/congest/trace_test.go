// Tracing integration suite: a traced run must be bit-identical to an
// untraced one, deterministic trace events must be bit-identical across
// all three drivers, a recorded golden trace must not drift across PRs,
// and trace.Bisect must pinpoint an injected single-event divergence to
// its exact round. Together with crossdriver_test.go this makes the
// event stream part of the engine's determinism contract.
package congest_test

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/faultsim"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/ftmetivier"
	"repro/internal/mis/metivier"
	"repro/internal/rng"
	"repro/internal/trace"
)

// tracedRun executes one program with a fresh MemorySink attached and
// returns the statuses, result, and captured events.
func tracedRun(t *testing.T, g *graph.Graph, opts congest.Options,
	run func(*graph.Graph, congest.Options) ([]base.Status, congest.Result, error)) ([]base.Status, congest.Result, []trace.Event) {
	t.Helper()
	mem := &trace.MemorySink{}
	opts.Events = mem
	st, res, err := run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, res, mem.Events
}

// TestTracedRunBitIdentical is the "tracing is observational" guarantee:
// attaching a sink must not change the run — same Result, same statuses —
// under every driver, clean and faulted.
func TestTracedRunBitIdentical(t *testing.T) {
	n := 256
	g := gen.UnionOfTrees(n, 2, rng.New(21))
	cases := []struct {
		name string
		opts congest.Options
		run  func(*graph.Graph, congest.Options) ([]base.Status, congest.Result, error)
	}{
		{"metivier", congest.Options{Seed: 33}, metivier.Run},
		{"ftmetivier-faulted", congest.Options{
			Seed:      33,
			Faults:    faultsim.Compose(faultsim.BernoulliDrop{P: 0.08}, faultsim.DelayK{K: 2}),
			MaxRounds: 400,
		}, ftmetivier.Run},
	}
	for _, tc := range cases {
		for _, d := range driverMatrix {
			plain := tc.opts
			d.set(&plain)
			wantSt, wantRes, err := tc.run(g, plain)
			if err != nil {
				t.Fatal(err)
			}
			gotSt, gotRes, events := tracedRun(t, g, plain, tc.run)
			if gotRes != wantRes {
				t.Fatalf("%s/%s: traced Result %+v != untraced %+v", tc.name, d.name, gotRes, wantRes)
			}
			for v := range wantSt {
				if gotSt[v] != wantSt[v] {
					t.Fatalf("%s/%s: node %d status changed under tracing", tc.name, d.name, v)
				}
			}
			if len(events) == 0 {
				t.Fatalf("%s/%s: no events recorded", tc.name, d.name)
			}
		}
	}
}

// TestCrossDriverTraceFingerprints asserts the deterministic event stream
// is bit-identical across all drivers: same events, same order, same
// fingerprint — with Bisect producing the divergence report on failure.
func TestCrossDriverTraceFingerprints(t *testing.T) {
	n := 256
	g := gen.UnionOfTrees(n, 2, rng.New(21))
	plan := faultsim.Compose(
		faultsim.BernoulliDrop{P: 0.05},
		faultsim.NewCrashRestart(map[int]faultsim.Window{7: {Down: 3, Up: 12}, 99: {Down: 5, Up: 0}}),
	)
	cases := []struct {
		name string
		opts congest.Options
		run  func(*graph.Graph, congest.Options) ([]base.Status, congest.Result, error)
	}{
		{"metivier-clean", congest.Options{Seed: 5}, metivier.Run},
		{"ftmetivier-faulted", congest.Options{Seed: 5, Faults: plan, MaxRounds: 400}, ftmetivier.Run},
	}
	for _, tc := range cases {
		var refName string
		var refEvents []trace.Event
		for _, d := range driverMatrix {
			opts := tc.opts
			d.set(&opts)
			_, _, events := tracedRun(t, g, opts, tc.run)
			if refName == "" {
				refName, refEvents = d.name, events
				continue
			}
			if div := trace.Bisect(refEvents, events); div != nil {
				t.Fatalf("%s: %s vs %s: %v", tc.name, refName, d.name, div)
			}
			if fa, fb := trace.Fingerprint(refEvents), trace.Fingerprint(events); fa != fb {
				t.Fatalf("%s: fingerprint %#x under %s, %#x under %s", tc.name, fa, refName, fb, d.name)
			}
		}
	}
}

// TestGoldenTraceFingerprint pins the deterministic trace of one fixed
// run — metivier, n = 256, seed 77 — under every driver. Any engine or
// program change that perturbs the event stream must update this value
// deliberately (re-derive by running with -v and reading the log line).
func TestGoldenTraceFingerprint(t *testing.T) {
	const wantFingerprint = uint64(0x1b0f6b6bc6528157)
	n := 256
	g := gen.UnionOfTrees(n, 2, rng.New(77))
	for _, d := range driverMatrix {
		opts := congest.Options{Seed: 77}
		d.set(&opts)
		rec := trace.NewRecorder(0)
		opts.Events = rec
		if _, _, err := metivier.Run(g, opts); err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		t.Logf("%s: fingerprint %#x over %d deterministic events", d.name, rec.Fingerprint(), rec.DeterministicCount())
		if rec.Fingerprint() != wantFingerprint {
			t.Fatalf("%s: trace fingerprint %#x, want %#x", d.name, rec.Fingerprint(), wantFingerprint)
		}
	}
}

// TestBisectPinpointsInjectedDivergence records a real run, corrupts a
// single deterministic event mid-trace, and requires Bisect to name
// exactly that round and event — the issue's acceptance scenario.
func TestBisectPinpointsInjectedDivergence(t *testing.T) {
	n := 256
	g := gen.UnionOfTrees(n, 2, rng.New(21))
	_, _, ref := tracedRun(t, g, congest.Options{Seed: 9}, metivier.Run)

	det := trace.Deterministic(ref)
	corrupt := append([]trace.Event(nil), ref...)
	// Corrupt the middle deterministic event (skipping round 0 markers).
	var target trace.Event
	pos := -1
	for i, mid := 0, len(det)/2; i < len(corrupt); i++ {
		if corrupt[i].Type.Deterministic() {
			if mid == 0 {
				pos, target = i, corrupt[i]
				break
			}
			mid--
		}
	}
	if pos < 0 {
		t.Fatal("no deterministic event to corrupt")
	}
	corrupt[pos].X += 1000

	div := trace.Bisect(ref, corrupt)
	if div == nil {
		t.Fatal("corruption not detected")
	}
	if div.Round != int(target.Round) {
		t.Fatalf("divergence blamed on round %d, corrupted round %d (event %v)", div.Round, target.Round, target)
	}
	if div.A == nil || div.B == nil || *div.A != target || div.B.X != target.X+1000 {
		t.Fatalf("wrong events reported: %v", div)
	}
}

// TestReplayAgainstRecordedTrace replays a program against its own
// recorded trace (must match) and against a different seed's trace (must
// diverge, with a well-formed report).
func TestReplayAgainstRecordedTrace(t *testing.T) {
	n := 128
	g := gen.UnionOfTrees(n, 2, rng.New(4))
	_, _, ref := tracedRun(t, g, congest.Options{Seed: 42}, metivier.Run)

	runWithSeed := func(seed uint64) func(trace.Sink) error {
		return func(s trace.Sink) error {
			_, _, err := metivier.Run(g, congest.Options{Seed: seed, Events: s})
			return err
		}
	}
	div, err := trace.Replay(ref, runWithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("same-seed replay diverged: %v", div)
	}
	div, err = trace.Replay(ref, runWithSeed(43))
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("different-seed replay did not diverge")
	}
	if div.A == nil && div.B == nil {
		t.Fatalf("divergence carries no events: %v", div)
	}
}

// TestObserverAdapterEquivalence checks the deprecated Observer callback
// sees exactly the values a sink reads off round-end events, and that it
// behaves identically whether or not a sink is also attached.
func TestObserverAdapterEquivalence(t *testing.T) {
	n := 128
	g := gen.UnionOfTrees(n, 2, rng.New(4))
	type obs struct {
		round, live int
		sent        int64
	}
	collect := func(withSink bool) ([]obs, []trace.Event) {
		var seen []obs
		opts := congest.Options{Seed: 11, Driver: congest.DriverPool, Workers: 4}
		opts.Observer = func(round, live int, sent int64) {
			seen = append(seen, obs{round, live, sent})
		}
		var mem *trace.MemorySink
		if withSink {
			mem = &trace.MemorySink{}
			opts.Events = mem
		}
		if _, _, err := metivier.Run(g, opts); err != nil {
			t.Fatal(err)
		}
		if mem == nil {
			return seen, nil
		}
		return seen, mem.Events
	}
	plain, _ := collect(false)
	traced, events := collect(true)
	if len(plain) == 0 || len(plain) != len(traced) {
		t.Fatalf("observer fired %d times plain, %d traced", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("call %d: plain %+v != traced %+v", i, plain[i], traced[i])
		}
	}
	// The callback triples are exactly the round-end events.
	i := 0
	for _, e := range events {
		if e.Type != trace.EvRoundEnd {
			continue
		}
		want := obs{int(e.Round), int(e.V), e.X}
		if i >= len(traced) || traced[i] != want {
			t.Fatalf("round-end %d: event %+v, observer saw %+v", i, want, traced[i])
		}
		i++
	}
	if i != len(traced) {
		t.Fatalf("%d round-end events for %d observer calls", i, len(traced))
	}
}

// TestPoolObserverAdapter checks the deprecated PoolObserver still
// receives per-round timing metrics through its bus adapter.
func TestPoolObserverAdapter(t *testing.T) {
	n := 128
	g := gen.UnionOfTrees(n, 2, rng.New(4))
	var stats congest.DriverStats
	opts := congest.Options{Seed: 11, Driver: congest.DriverPool, Workers: 4, PoolObserver: stats.Observe}
	_, res, err := metivier.Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != res.Rounds+1 { // Init included
		t.Fatalf("observed %d rounds, run had %d (+Init)", stats.Rounds, res.Rounds)
	}
	if stats.Workers != 4 {
		t.Fatalf("observed %d workers, want 4", stats.Workers)
	}
	// Under the sequential driver the adapter must stay silent.
	var seq congest.DriverStats
	_, _, err = metivier.Run(g, congest.Options{Seed: 11, PoolObserver: seq.Observe})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Rounds != 0 {
		t.Fatalf("sequential driver fired PoolObserver %d times", seq.Rounds)
	}
}

// TestNodeStateEventsMatchStatuses cross-checks the program-emitted
// node-state events against the run's actual output: every joined vertex
// must be StatusInMIS and vice versa.
func TestNodeStateEventsMatchStatuses(t *testing.T) {
	n := 256
	g := gen.UnionOfTrees(n, 2, rng.New(21))
	st, _, events := tracedRun(t, g, congest.Options{Seed: 3}, metivier.Run)
	joined := map[int32]bool{}
	for _, e := range events {
		if e.Type == trace.EvNodeState && e.X == 1 { // proto.KindJoined
			if joined[e.V] {
				t.Fatalf("vertex %d joined twice", e.V)
			}
			joined[e.V] = true
		}
	}
	for v, s := range st {
		if (s == base.StatusInMIS) != joined[int32(v)] {
			t.Fatalf("vertex %d: status %v but joined=%v", v, s, joined[int32(v)])
		}
	}
}
