package congest

// Wire is the value-typed message payload that travels the engine's hot
// path. It replaces the old boxed Payload interface: a kind tag, the
// payload's encoded size in bits (so the engine can audit CONGEST
// compliance without an interface call), and two 64-bit words that every
// protocol payload in this repository packs losslessly.
//
// The engine never interprets Kind, A or B — it only meters Bits and moves
// the value. Protocol packages own the kind namespace and the codec (see
// internal/mis/proto: each payload type has a Wire() encoder and a
// matching As* decoder). Because Wire contains no pointers, shard outboxes
// and the round's inbox arena are pointer-free memory: sending a message
// is a 40-byte value copy with no heap allocation, no interface boxing,
// and nothing for the garbage collector to scan.
type Wire struct {
	// Kind tags the payload family. Zero is invalid, so a forgotten
	// encoder shows up as kind 0 in tests.
	Kind WireKind
	// Bits is the payload's encoded size in bits — an honest upper bound
	// for the encoding a real implementation would use. The engine uses it
	// for Result.TotalBits/MaxMessageBits and the MessageBitLimit check.
	Bits uint16
	// A and B are the payload words; their meaning is defined by Kind.
	A, B uint64
}

// WireKind tags the payload family packed into a Wire. Kind 0 is invalid;
// protocol packages allocate kinds starting at 1 (internal/mis/proto owns
// 1..8 for the MIS protocol payloads).
type WireKind uint8

// MaxWireBits is the repository's concrete O(log n) CONGEST message-size
// budget: no Wire() encoder may declare more bits than this. Two 64-bit
// words bound any payload the Wire record can carry, and 128 = O(log n)
// for every feasible n, so the constant is both the physical and the
// model-level ceiling. The misvet congestbits analyzer enforces it at
// compile time; Options.MessageBitLimit meters it at run time.
const MaxWireBits = 128
