package congest

import "math/bits"

// This file is the dense-bitset frontier layer behind shard.frontier: the
// live set of a shard's contiguous vertex range [lo, hi), one bit per
// vertex, in the Ligra dense-active-set style. Word wi of the frontier
// covers vertices [((lo>>6)+wi)<<6, ((lo>>6)+wi+1)<<6) — word boundaries
// are global (vertex v always lives at bit v&63 of word v>>6 minus the
// shard's base), so rebalancing on word-aligned cuts moves whole words and
// a whole-graph gather (rebalance.go) is a word-wise OR.
//
// The bitset is grow-only within a run: sweepShard clears bits as nodes
// halt or crash for good, and nothing ever resurrects a cleared bit.
// liveCount mirrors the popcount so the empty-shard skip is O(1).

// frontierWords returns the word count a frontier over [lo, hi) needs.
func frontierWords(lo, hi int) int {
	if hi <= lo {
		return 0
	}
	return (hi-1)>>6 - lo>>6 + 1
}

// resetFrontier points the shard at [lo, hi) with every vertex live. The
// word storage is reused when capacity allows, so a rebalance in steady
// state allocates nothing (ranges only shrink in word count as nodes halt).
func (sh *shard) resetFrontier(lo, hi int) {
	sh.lo, sh.hi = lo, hi
	words := frontierWords(lo, hi)
	if cap(sh.frontier) < words {
		sh.frontier = make([]uint64, words)
	} else {
		sh.frontier = sh.frontier[:words]
	}
	base := lo >> 6
	for wi := range sh.frontier {
		vbase := (base + wi) << 6
		wd := ^uint64(0)
		if vbase < lo {
			wd &= ^uint64(0) << uint(lo-vbase)
		}
		if vbase+64 > hi {
			wd &= ^uint64(0) >> uint(vbase+64-hi)
		}
		sh.frontier[wi] = wd
	}
	sh.liveCount = hi - lo
}

// loadFrontier points the shard at [lo, hi) with liveness copied from the
// whole-graph bitset global (indexed by v>>6), masking the partial edge
// words. Rebalancing cuts on word boundaries, so in practice the masks are
// no-ops except at n's final partial word; the masking keeps the function
// correct for any range.
func (sh *shard) loadFrontier(lo, hi int, global []uint64) {
	sh.lo, sh.hi = lo, hi
	words := frontierWords(lo, hi)
	if cap(sh.frontier) < words {
		sh.frontier = make([]uint64, words)
	} else {
		sh.frontier = sh.frontier[:words]
	}
	base := lo >> 6
	count := 0
	for wi := range sh.frontier {
		vbase := (base + wi) << 6
		wd := global[base+wi]
		if vbase < lo {
			wd &= ^uint64(0) << uint(lo-vbase)
		}
		if vbase+64 > hi {
			wd &= ^uint64(0) >> uint(vbase+64-hi)
		}
		sh.frontier[wi] = wd
		count += bits.OnesCount64(wd)
	}
	sh.liveCount = count
}
