package congest

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/trace"
)

// PoolRoundMetrics is one round of driver-efficiency telemetry from the
// sharded worker-pool driver, as delivered to Options.PoolObserver.
// The slices are indexed by shard and reused between rounds: observers
// must copy anything they keep.
type PoolRoundMetrics struct {
	// Round is the round number (0 = Init).
	Round int
	// Live is the number of still-live nodes per shard after the round —
	// the live-node histogram that reveals shard imbalance as nodes halt.
	Live []int
	// Busy is each shard's sweep (node execution) time for the round. A
	// shard the empty-shard skip never dispatched reports zero.
	Busy []time.Duration
	// Merge is the coordinator's delivery time for the round: fault
	// draws, accounting, and the shard-order outbox merge.
	Merge time.Duration
}

// WorkerCount resolves Options.Workers for an n-vertex run: Workers when
// positive, else GOMAXPROCS, then clamped to at most n so no shard is
// empty at the start. For n = 0 it returns 1 — the value is then only a
// nominal shard count, since a zero-vertex run sweeps nothing (runPool
// short-circuits before starting any workers) and every driver handles it
// identically. The result is always at least 1.
func (o Options) WorkerCount(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// cmdMerge is the out-of-band command the pool coordinator sends on a
// worker's start channel to run that worker's destination-bucket merge
// instead of a sweep. Rounds are >= 0, so the value cannot collide.
const cmdMerge = -1

// runPool executes the program on the sharded worker pool: workerCount
// long-lived workers each own one contiguous vertex shard and sweep its
// live nodes every round, with a channel barrier per round (two channel
// operations per *worker* per round, against two per *vertex* per round
// for the legacy driver). Delivery happens on the coordinator between
// rounds — except that on a reliable untraced-flow network the
// destination-bucketed merge (deliverBuckets) ships one merge task per
// shard back to these same workers when volume is high. Between rounds the
// coordinator may also re-cut the shard ranges by live weight
// (rebalance.go); workers always sweep st.shards[s], whose range the
// rebalancer updates in place.
func (r *Runner) runPool() (Result, error) {
	n := r.g.N()
	workers := r.opts.WorkerCount(n)
	st := r.newExecState(workers)
	if n == 0 {
		return r.runLoop(st, func(int) {}, nil)
	}
	timed := r.opts.timingWanted()

	starts := make([]chan int, workers)
	done := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for s := 0; s < workers; s++ {
		starts[s] = make(chan int, 1)
		//lint:advisory shard workers are deterministic by construction: shard-ordered merge makes scheduling invisible (see package doc)
		go func(sh *shard, start chan int) {
			defer wg.Done()
			for cmd := range start {
				if cmd == cmdMerge {
					st.mergeBucket(sh.idx)
					done <- struct{}{}
					continue
				}
				if timed {
					t0 := time.Now() //lint:advisory shard-busy timings are advisory-only events, excluded from fingerprints
					r.sweepShard(st, sh, cmd)
					sh.busy = int64(time.Since(t0)) //lint:advisory shard-busy timings are advisory-only events, excluded from fingerprints
				} else {
					r.sweepShard(st, sh, cmd)
				}
				done <- struct{}{}
			}
		}(st.shards[s], starts[s])
	}
	defer func() {
		for _, start := range starts {
			close(start)
		}
		wg.Wait()
	}()

	// Parallel merge hook for deliverBuckets: one merge task per shard,
	// dispatched to every worker (an empty-frontier shard still owns its
	// destination inbox region) and awaited before delivery continues.
	// deliver runs strictly between sweep barriers, so the done channel is
	// empty when this fires.
	if st.buckets > 1 {
		st.parMerge = func() {
			for _, start := range starts {
				start <- cmdMerge
			}
			for range starts {
				<-done
			}
		}
	}

	// The barrier: every worker with live nodes sweeps, the coordinator
	// waits for exactly those. Shards whose frontier has drained get no
	// dispatch at all — their sweep would scan empty words, so skipping
	// the channel round-trip is observationally identical and removes the
	// per-empty-shard coordination cost of the tail rounds, where
	// shattering has halted most of the graph. A skipped shard's worker
	// is idle for the round, so the coordinator may safely clear its
	// timing residue. Before dispatch, while every worker is parked, the
	// coordinator re-cuts skewed shard layouts by live weight.
	sweep := func(round int) {
		if round > 0 && !r.opts.NoRebalance {
			st.maybeRebalance(round)
		}
		dispatched := 0
		for s, start := range starts {
			if st.shards[s].liveCount == 0 {
				st.shards[s].busy = 0
				continue
			}
			start <- round
			dispatched++
		}
		for i := 0; i < dispatched; i++ {
			<-done
		}
	}

	if !timed {
		return r.runLoop(st, sweep, nil)
	}

	// Timing plumbing: wrap deliver timing around the coordinator's merge
	// and publish one shard-busy event per shard plus the merge duration
	// on the event bus, ahead of the round-end record. The deprecated
	// PoolObserver adapter reassembles PoolRoundMetrics from exactly these
	// events, so its callers see the same per-round numbers as before.
	var mergeStart time.Time
	timedSweep := func(round int) {
		sweep(round)
		mergeStart = time.Now() //lint:advisory merge timings are advisory-only events, excluded from fingerprints
	}
	afterRound := func(round int) {
		merge := time.Since(mergeStart) //lint:advisory merge timings are advisory-only events, excluded from fingerprints
		for s, sh := range st.shards {
			st.bus.Emit(trace.Event{
				Type:  trace.EvShardBusy,
				Round: int32(round),
				V:     int32(s),
				X:     sh.busy,
				Y:     int64(sh.liveCount),
			})
		}
		st.bus.Emit(trace.Event{Type: trace.EvMerge, Round: int32(round), X: int64(merge)})
	}
	return r.runLoop(st, timedSweep, afterRound)
}

// runGoroutinePerVertex is the legacy parallel driver: one long-lived
// goroutine per vertex with a channel round-trip per vertex per round. It
// is kept as the baseline the pool driver is benchmarked against
// (BENCH_congest.json, BenchmarkEngineDrivers); its scheduler overhead
// dominates at large n. Each vertex is its own single-vertex shard, so the
// shared deliver sees the same shard-ordered outboxes as the other
// drivers.
func (r *Runner) runGoroutinePerVertex() (Result, error) {
	n := r.g.N()
	st := r.newExecState(n)
	if n == 0 {
		return r.runLoop(st, func(int) {}, nil)
	}
	starts := make([]chan int, n)
	done := make(chan struct{}, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		starts[v] = make(chan int, 1)
		//lint:advisory legacy per-vertex workers are deterministic by construction: shard-ordered merge makes scheduling invisible
		go func(sh *shard, start chan int) {
			defer wg.Done()
			for round := range start {
				r.sweepShard(st, sh, round)
				done <- struct{}{}
			}
		}(st.shards[v], starts[v])
	}
	defer func() {
		for _, start := range starts {
			close(start)
		}
		wg.Wait()
	}()

	sweep := func(round int) {
		dispatched := 0
		for v := 0; v < n; v++ {
			if st.shards[v].liveCount == 0 {
				continue
			}
			starts[v] <- round
			dispatched++
		}
		for i := 0; i < dispatched; i++ {
			<-done
		}
	}
	return r.runLoop(st, sweep, nil)
}

// DriverStats aggregates PoolRoundMetrics across a run (or several runs)
// into the driver-efficiency summary cmd/bench -parallel reports. Plug
// its Observe method into Options.PoolObserver. Not safe for concurrent
// use; the engine only calls the observer from the coordinator.
type DriverStats struct {
	// Rounds is the number of observed rounds (Init included).
	Rounds int
	// Workers is the widest shard count observed.
	Workers int
	// Busy is total worker time spent sweeping nodes, summed over shards.
	Busy time.Duration
	// Critical is the per-round maximum shard sweep time, summed over
	// rounds — the parallel critical path of the sweeps.
	Critical time.Duration
	// DispatchedCritical is the per-round critical path weighted by the
	// number of shards actually dispatched that round: Σ over rounds of
	// dispatched × max busy. In tail rounds the empty-shard skip
	// dispatches only the shards with live or just-halted nodes, so this —
	// not Workers × Critical — is the capacity the sweeps could have used.
	DispatchedCritical time.Duration
	// Merge is total coordinator time spent merging outboxes into
	// inboxes (delivery, fault draws, accounting).
	Merge time.Duration
	// LiveMax and LiveMin sum each round's largest and smallest per-shard
	// live count; their ratio exposes shard imbalance as nodes halt.
	LiveMax, LiveMin int64
}

// Observe folds one round of metrics into the aggregate. A shard counts as
// dispatched for the round when it reported sweep time or still holds live
// nodes — the frontier never regrows, so a shard with neither was skipped
// by the coordinator.
func (d *DriverStats) Observe(m PoolRoundMetrics) {
	d.Rounds++
	if len(m.Busy) > d.Workers {
		d.Workers = len(m.Busy)
	}
	var max time.Duration
	dispatched := 0
	for i, b := range m.Busy {
		d.Busy += b
		if b > max {
			max = b
		}
		if b > 0 || (i < len(m.Live) && m.Live[i] > 0) {
			dispatched++
		}
	}
	d.Critical += max
	d.DispatchedCritical += time.Duration(dispatched) * max
	if len(m.Live) > 0 {
		lo, hi := m.Live[0], m.Live[0]
		for _, l := range m.Live[1:] {
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		d.LiveMax += int64(hi)
		d.LiveMin += int64(lo)
	}
	d.Merge += m.Merge
}

// Efficiency returns sweep-parallelism efficiency in (0, 1]: total busy
// time divided by the dispatched-weighted critical path. 1 means the
// dispatched shards were perfectly balanced every round. Weighting by
// dispatched shards (not the widest-ever worker count) keeps tail rounds
// honest: when the empty-shard skip dispatches one straggler shard, that
// round's denominator is one shard's time, not the full pool's — a
// single-shard round is "efficient" by definition, and imbalance across
// the pool shows up in LiveMax/LiveMin instead. It returns NaN-free 0
// when nothing was observed.
func (d *DriverStats) Efficiency() float64 {
	if d.Workers == 0 || d.DispatchedCritical == 0 {
		return 0
	}
	return float64(d.Busy) / float64(d.DispatchedCritical)
}

// String renders the aggregate for cmd/bench.
func (d *DriverStats) String() string {
	if d.Rounds == 0 {
		return "pool driver: no rounds observed"
	}
	return fmt.Sprintf(
		"pool driver: %d rounds, %d workers, busy %v (critical path %v, efficiency %.2f), merge %v",
		d.Rounds, d.Workers, d.Busy.Round(time.Microsecond),
		d.Critical.Round(time.Microsecond), d.Efficiency(),
		d.Merge.Round(time.Microsecond))
}
