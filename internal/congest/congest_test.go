package congest

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// rawWire builds an uninterpreted test payload of the given bit size. Kind
// 99 is outside the proto range, which is fine: the engine never interprets
// kinds.
func rawWire(bits int) Wire {
	return Wire{Kind: 99, Bits: uint16(bits)}
}

// haltNow halts every node in Init.
type haltNow struct{}

func (haltNow) Init(ctx *Context)         { ctx.Halt() }
func (haltNow) Round(*Context, []Message) {}
func haltFactory(int) Node                { return haltNow{} }

// pingCounter broadcasts for k rounds, counting received messages.
type pingCounter struct {
	rounds   int
	received int
}

func (p *pingCounter) Init(ctx *Context) {
	ctx.Broadcast(rawWire(8))
}

func (p *pingCounter) Round(ctx *Context, inbox []Message) {
	p.received += len(inbox)
	if ctx.Round() >= p.rounds {
		ctx.Halt()
		return
	}
	ctx.Broadcast(rawWire(8))
}

func TestHaltInInit(t *testing.T) {
	g := graph.MustNew(5, []graph.Edge{{U: 0, V: 1}})
	r := NewRunner(g, haltFactory, Options{Seed: 1})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.Messages != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPingCounting(t *testing.T) {
	// Triangle, 3 rounds of broadcast: Init sends once, rounds 1..2 send.
	g := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	r := NewRunner(g, func(int) Node { return &pingCounter{rounds: 3} }, Options{Seed: 1})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	// 3 broadcast sweeps × 3 nodes × 2 neighbors = 18 messages.
	if res.Messages != 18 {
		t.Fatalf("messages = %d", res.Messages)
	}
	if res.TotalBits != 18*8 || res.MaxMessageBits != 8 {
		t.Fatalf("bits = %d max = %d", res.TotalBits, res.MaxMessageBits)
	}
	// Each node received 2 messages per sweep over 3 sweeps.
	for v := 0; v < 3; v++ {
		if got := r.Node(v).(*pingCounter).received; got != 6 {
			t.Fatalf("node %d received %d", v, got)
		}
	}
}

// sendToStranger violates the neighbor-only rule.
type sendToStranger struct{}

func (sendToStranger) Init(ctx *Context) {
	ctx.Send(2, rawWire(1)) // 2 is not a neighbor of 0 in the path 0-1-2
	ctx.Halt()
}
func (sendToStranger) Round(*Context, []Message) {}

func TestSendToNonNeighborFails(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	r := NewRunner(g, func(v int) Node {
		if v == 0 {
			return sendToStranger{}
		}
		return haltNow{}
	}, Options{Seed: 1})
	if _, err := r.Run(); err == nil {
		t.Fatal("non-neighbor send not detected")
	}
}

// oversize sends a payload above the bit limit.
type oversize struct{}

func (oversize) Init(ctx *Context) {
	ctx.Broadcast(rawWire(1000))
	ctx.Halt()
}
func (oversize) Round(*Context, []Message) {}

func TestMessageBitLimit(t *testing.T) {
	g := graph.MustNew(2, []graph.Edge{{U: 0, V: 1}})
	r := NewRunner(g, func(int) Node { return oversize{} }, Options{Seed: 1, MessageBitLimit: 64})
	if _, err := r.Run(); err == nil {
		t.Fatal("oversized message not detected")
	}
}

// neverHalt runs forever.
type neverHalt struct{}

func (neverHalt) Init(*Context)             {}
func (neverHalt) Round(*Context, []Message) {}

func TestMaxRounds(t *testing.T) {
	g := graph.MustNew(2, []graph.Edge{{U: 0, V: 1}})
	r := NewRunner(g, func(int) Node { return neverHalt{} }, Options{Seed: 1, MaxRounds: 10})
	_, err := r.Run()
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v", err)
	}
}

// rngRecorder records its first RNG draw.
type rngRecorder struct {
	draw uint64
}

func (r *rngRecorder) Init(ctx *Context) {
	r.draw = ctx.RNG().Uint64()
	ctx.Halt()
}
func (r *rngRecorder) Round(*Context, []Message) {}

func TestPerNodeRNGStreamsDifferAndAreSeeded(t *testing.T) {
	g := graph.MustNew(4, nil)
	run := func(seed uint64) []uint64 {
		r := NewRunner(g, func(int) Node { return &rngRecorder{} }, Options{Seed: seed})
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		draws := make([]uint64, 4)
		for v := 0; v < 4; v++ {
			draws[v] = r.Node(v).(*rngRecorder).draw
		}
		return draws
	}
	a, b, c := run(7), run(7), run(8)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("same seed produced different streams")
		}
	}
	diff := false
	for v := range a {
		if a[v] != c[v] {
			diff = true
		}
		for w := range a {
			if w != v && a[v] == a[w] {
				t.Fatal("two nodes share a stream")
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

// inboxOrderChecker asserts inboxes are sorted by sender.
type inboxOrderChecker struct {
	bad bool
}

func (c *inboxOrderChecker) Init(ctx *Context) {
	ctx.Broadcast(rawWire(4))
}

func (c *inboxOrderChecker) Round(ctx *Context, inbox []Message) {
	for i := 1; i < len(inbox); i++ {
		if inbox[i].From < inbox[i-1].From {
			c.bad = true
		}
	}
	ctx.Halt()
}

func TestInboxSortedBySender(t *testing.T) {
	g := graph.MustNew(6, []graph.Edge{
		{U: 0, V: 5}, {U: 0, V: 3}, {U: 0, V: 1}, {U: 0, V: 4}, {U: 0, V: 2},
	})
	for _, parallel := range []bool{false, true} {
		r := NewRunner(g, func(int) Node { return &inboxOrderChecker{} }, Options{Seed: 1, Parallel: parallel})
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 6; v++ {
			if r.Node(v).(*inboxOrderChecker).bad {
				t.Fatalf("parallel=%v: unsorted inbox at node %d", parallel, v)
			}
		}
	}
}

func TestDropInjection(t *testing.T) {
	g := graph.MustNew(2, []graph.Edge{{U: 0, V: 1}})
	r := NewRunner(g, func(int) Node { return &pingCounter{rounds: 50} }, Options{Seed: 3, DropProb: 0.5})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("no drops at p=0.5")
	}
	total := res.Messages + res.Dropped
	if total != 2*50 {
		t.Fatalf("delivered+dropped = %d, want 100", total)
	}
}

func TestDropInjectionDeterministic(t *testing.T) {
	g := graph.MustNew(2, []graph.Edge{{U: 0, V: 1}})
	run := func() int64 {
		r := NewRunner(g, func(int) Node { return &pingCounter{rounds: 30} }, Options{Seed: 9, DropProb: 0.3})
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Dropped
	}
	if run() != run() {
		t.Fatal("fault injection not deterministic")
	}
}

func TestParallelMatchesSequentialCounters(t *testing.T) {
	g := graph.MustNew(10, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5},
		{U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 8}, {U: 8, V: 9}, {U: 9, V: 0},
		{U: 0, V: 5}, {U: 2, V: 7},
	})
	run := func(parallel bool) Result {
		r := NewRunner(g, func(int) Node { return &pingCounter{rounds: 5} }, Options{Seed: 2, Parallel: parallel})
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(false), run(true)
	if seq != par {
		t.Fatalf("sequential %+v != parallel %+v", seq, par)
	}
}

func TestEmptyGraphRun(t *testing.T) {
	g := graph.MustNew(0, nil)
	r := NewRunner(g, haltFactory, Options{Seed: 1})
	res, err := r.Run()
	if err != nil || res.Rounds != 0 {
		t.Fatalf("empty run: %+v, %v", res, err)
	}
}

func TestContextAccessors(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	r := NewRunner(g, func(v int) Node {
		return nodeFunc(func(ctx *Context) {
			if ctx.ID() != v {
				t.Errorf("ID() = %d, want %d", ctx.ID(), v)
			}
			if ctx.ID() == 0 {
				if ctx.N() != 3 || ctx.Degree() != 2 || len(ctx.Neighbors()) != 2 {
					t.Errorf("accessors wrong: n=%d deg=%d", ctx.N(), ctx.Degree())
				}
				if ctx.Round() != 0 {
					t.Errorf("Init round = %d", ctx.Round())
				}
			}
			ctx.Halt()
		})
	}, Options{Seed: 1})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

// nodeFunc adapts a function to the Node interface for tests.
type nodeFunc func(ctx *Context)

func (f nodeFunc) Init(ctx *Context)       { f(ctx) }
func (nodeFunc) Round(*Context, []Message) {}

func TestObserverReportsRounds(t *testing.T) {
	g := graph.MustNew(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	type obs struct {
		round, live int
		sent        int64
	}
	var seen []obs
	r := NewRunner(g, func(int) Node { return &pingCounter{rounds: 3} }, Options{
		Seed: 1,
		Observer: func(round, live int, sent int64) {
			seen = append(seen, obs{round, live, sent})
		},
	})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Rounds+1 { // rounds 0..Rounds
		t.Fatalf("observer called %d times for %d rounds", len(seen), res.Rounds)
	}
	if seen[0].round != 0 || seen[0].live != 4 {
		t.Fatalf("init observation wrong: %+v", seen[0])
	}
	var total int64
	for _, o := range seen {
		total += o.sent
	}
	if total != res.Messages {
		t.Fatalf("observer sent sum %d != messages %d", total, res.Messages)
	}
	if last := seen[len(seen)-1]; last.live != 0 {
		t.Fatalf("final observation has %d live nodes", last.live)
	}
}

func TestObserverSequentialParallelAgree(t *testing.T) {
	g := graph.MustNew(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}})
	capture := func(parallel bool) []int {
		var lives []int
		r := NewRunner(g, func(int) Node { return &pingCounter{rounds: 4} }, Options{
			Seed:     2,
			Parallel: parallel,
			Observer: func(_, live int, _ int64) { lives = append(lives, live) },
		})
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return lives
	}
	a, b := capture(false), capture(true)
	if len(a) != len(b) {
		t.Fatalf("observation counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("live counts differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// haltAfterSend sends a message and halts in the same call; the engine
// must still deliver the message (the MIS protocols' join/removal
// announcements rely on exactly this).
type haltAfterSend struct{ got int }

func (h *haltAfterSend) Init(ctx *Context) {
	if ctx.ID() == 0 {
		ctx.Broadcast(rawWire(2))
		ctx.Halt()
	}
}

func (h *haltAfterSend) Round(ctx *Context, inbox []Message) {
	h.got += len(inbox)
	ctx.Halt()
}

func TestMessagesSentBeforeHaltAreDelivered(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	for _, parallel := range []bool{false, true} {
		r := NewRunner(g, func(int) Node { return &haltAfterSend{} }, Options{Seed: 1, Parallel: parallel})
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		for v := 1; v <= 2; v++ {
			if got := r.Node(v).(*haltAfterSend).got; got != 1 {
				t.Fatalf("parallel=%v: node %d received %d messages from halting sender", parallel, v, got)
			}
		}
	}
}

// allDrivers enumerates one Options per execution strategy, including
// pool shapes that exercise 1, several, and n shards.
func allDrivers(base Options) map[string]Options {
	out := map[string]Options{}
	for name, set := range map[string]func(*Options){
		"sequential":           func(o *Options) { o.Driver = DriverSequential },
		"pool-1":               func(o *Options) { o.Driver = DriverPool; o.Workers = 1 },
		"pool-3":               func(o *Options) { o.Driver = DriverPool; o.Workers = 3 },
		"pool-wide":            func(o *Options) { o.Driver = DriverPool; o.Workers = 1 << 20 },
		"goroutine-per-vertex": func(o *Options) { o.Driver = DriverGoroutinePerVertex },
	} {
		o := base
		set(&o)
		out[name] = o
	}
	return out
}

// strangerAtRound3 behaves like a well-formed broadcaster until round 3,
// when node 0 sends to a non-neighbor and poisons the run.
type strangerAtRound3 struct{}

func (strangerAtRound3) Init(ctx *Context) { ctx.Broadcast(rawWire(4)) }

func (strangerAtRound3) Round(ctx *Context, _ []Message) {
	if ctx.Round() == 3 && ctx.ID() == 0 {
		ctx.Send(2, rawWire(4)) // 2 is not a neighbor of 0 in the path 0-1-2
		return
	}
	ctx.Broadcast(rawWire(4))
}

// TestAbortedRoundNotCounted pins the Result.Rounds fix: a run aborted by
// a model violation mid-round must report the last *completed* round (2),
// not the round that failed (3).
func TestAbortedRoundNotCounted(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	for name, opts := range allDrivers(Options{Seed: 1, MaxRounds: 10}) {
		r := NewRunner(g, func(int) Node { return strangerAtRound3{} }, opts)
		res, err := r.Run()
		if err == nil {
			t.Fatalf("%s: non-neighbor send not detected", name)
		}
		if res.Rounds != 2 {
			t.Fatalf("%s: aborted run reports Rounds=%d, want 2 completed rounds", name, res.Rounds)
		}
	}
}

// TestAllDriversBitIdentical sweeps every driver shape over the same
// program and seed — with and without fault injection — and requires
// identical Result counters and identical per-node observations.
func TestAllDriversBitIdentical(t *testing.T) {
	g := graph.MustNew(10, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5},
		{U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 8}, {U: 8, V: 9}, {U: 9, V: 0},
		{U: 0, V: 5}, {U: 2, V: 7},
	})
	for _, drop := range []float64{0, 0.3} {
		base := Options{Seed: 42, DropProb: drop}
		var refName string
		var ref Result
		var refRecv []int
		for name, opts := range allDrivers(base) {
			r := NewRunner(g, func(int) Node { return &pingCounter{rounds: 6} }, opts)
			res, err := r.Run()
			if err != nil {
				t.Fatalf("drop=%v %s: %v", drop, name, err)
			}
			recv := make([]int, g.N())
			for v := range recv {
				recv[v] = r.Node(v).(*pingCounter).received
			}
			if refName == "" {
				refName, ref, refRecv = name, res, recv
				continue
			}
			if res != ref {
				t.Fatalf("drop=%v: %s result %+v != %s result %+v", drop, name, res, refName, ref)
			}
			for v := range recv {
				if recv[v] != refRecv[v] {
					t.Fatalf("drop=%v: node %d received %d under %s, %d under %s",
						drop, v, recv[v], name, refRecv[v], refName)
				}
			}
		}
	}
}

// TestPoolObserverMetrics exercises the per-round driver-efficiency hook:
// one metric per round (Init included), a live histogram matching the
// shard count, and a coherent DriverStats aggregate.
func TestPoolObserverMetrics(t *testing.T) {
	g := graph.MustNew(8, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
		{U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 7},
	})
	var agg DriverStats
	rounds := 0
	lastLive := -1
	r := NewRunner(g, func(int) Node { return &pingCounter{rounds: 4} }, Options{
		Seed:    1,
		Driver:  DriverPool,
		Workers: 2,
		PoolObserver: func(m PoolRoundMetrics) {
			if m.Round != rounds {
				t.Fatalf("metrics round %d, want %d", m.Round, rounds)
			}
			if len(m.Live) != 2 || len(m.Busy) != 2 {
				t.Fatalf("metrics sized for %d/%d shards, want 2", len(m.Live), len(m.Busy))
			}
			lastLive = m.Live[0] + m.Live[1]
			rounds++
			agg.Observe(m)
		},
	})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rounds != res.Rounds+1 {
		t.Fatalf("observed %d metric rounds for %d engine rounds", rounds, res.Rounds)
	}
	if lastLive != 0 {
		t.Fatalf("final live histogram sums to %d, want 0", lastLive)
	}
	if agg.Rounds != rounds || agg.Workers != 2 {
		t.Fatalf("aggregate %+v inconsistent with %d rounds / 2 workers", agg, rounds)
	}
	if agg.Busy < agg.Critical || agg.Critical <= 0 {
		t.Fatalf("busy %v must cover critical path %v > 0", agg.Busy, agg.Critical)
	}
	if e := agg.Efficiency(); e <= 0 || e > 1 {
		t.Fatalf("efficiency %v outside (0, 1]", e)
	}
	if agg.String() == "" || (&DriverStats{}).String() == "" {
		t.Fatal("DriverStats.String must render")
	}
}

// TestPoolShardingShapes runs the pool across degenerate worker counts.
func TestPoolShardingShapes(t *testing.T) {
	g := graph.MustNew(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	for _, workers := range []int{-1, 0, 1, 2, 5, 100} {
		r := NewRunner(g, func(int) Node { return &pingCounter{rounds: 3} }, Options{
			Seed: 2, Driver: DriverPool, Workers: workers,
		})
		res, err := r.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Rounds != 3 {
			t.Fatalf("workers=%d: rounds = %d", workers, res.Rounds)
		}
	}
	empty := graph.MustNew(0, nil)
	for name, opts := range allDrivers(Options{Seed: 1}) {
		r := NewRunner(empty, haltFactory, opts)
		if res, err := r.Run(); err != nil || res.Rounds != 0 {
			t.Fatalf("%s on empty graph: %+v, %v", name, res, err)
		}
	}
}

func TestDriverKindString(t *testing.T) {
	want := map[DriverKind]string{
		DriverAuto:               "auto",
		DriverSequential:         "sequential",
		DriverPool:               "pool",
		DriverGoroutinePerVertex: "goroutine-per-vertex",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestRunnerIsSingleUse(t *testing.T) {
	g := graph.MustNew(2, []graph.Edge{{U: 0, V: 1}})
	r := NewRunner(g, haltFactory, Options{Seed: 1})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}
