// Cross-driver determinism suite: every MIS program in internal/mis/...
// must produce bit-identical runs — same Result counters, same per-node
// outputs — under the sequential driver, the sharded worker pool (at
// several shard counts), and the legacy goroutine-per-vertex driver,
// with and without fault injection. This is the engine's load-bearing
// guarantee: experiments run on whichever driver is fastest and stay
// reproducible.
package congest_test

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/colevishkin"
	"repro/internal/mis/degreduce"
	"repro/internal/mis/ghaffari"
	"repro/internal/mis/localmin"
	"repro/internal/mis/luby"
	"repro/internal/mis/metivier"
	"repro/internal/mis/tree"
	"repro/internal/rng"
)

// driverMatrix is every execution strategy a program must agree across.
var driverMatrix = []struct {
	name string
	set  func(*congest.Options)
}{
	{"sequential", func(o *congest.Options) { o.Driver = congest.DriverSequential }},
	{"pool-1", func(o *congest.Options) { o.Driver = congest.DriverPool; o.Workers = 1 }},
	{"pool-4", func(o *congest.Options) { o.Driver = congest.DriverPool; o.Workers = 4 }},
	{"goroutine-per-vertex", func(o *congest.Options) { o.Driver = congest.DriverGoroutinePerVertex }},
}

// statusProgram is a status-returning MIS (or MIS-adjacent) program.
type statusProgram struct {
	name string
	run  func(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error)
}

// bfsParents builds the rooted-forest parent map Cole-Vishkin needs.
func bfsParents(g *graph.Graph) []int {
	parent := make([]int, g.N())
	for v := range parent {
		parent[v] = -2
	}
	for s := 0; s < g.N(); s++ {
		if parent[s] != -2 {
			continue
		}
		parent[s] = -1
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if parent[w] == -2 {
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
	}
	return parent
}

func statusPrograms() []statusProgram {
	return []statusProgram{
		{"metivier", metivier.Run},
		{"lubyA", luby.RunA},
		{"lubyB", luby.RunB},
		{"ghaffari", ghaffari.Run},
		{"localmin", localmin.Run},
		{"degreduce", func(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error) {
			return degreduce.Run(g, 4, opts)
		}},
		{"colevishkin", func(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error) {
			return colevishkin.Run(g, bfsParents(g), opts)
		}},
	}
}

// runMatrix executes one program under every driver and fails the test on
// the first divergence in error, Result, or statuses.
func runMatrix(t *testing.T, label string, g *graph.Graph, baseOpts congest.Options,
	run func(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error)) {
	t.Helper()
	var refName string
	var refSt []base.Status
	var refRes congest.Result
	var refErr error
	for _, d := range driverMatrix {
		opts := baseOpts
		d.set(&opts)
		st, res, err := run(g, opts)
		if refName == "" {
			refName, refSt, refRes, refErr = d.name, st, res, err
			continue
		}
		if (err == nil) != (refErr == nil) || (err != nil && err.Error() != refErr.Error()) {
			t.Fatalf("%s: %s err %v, %s err %v", label, d.name, err, refName, refErr)
		}
		if res != refRes {
			t.Fatalf("%s: %s Result %+v != %s Result %+v", label, d.name, res, refName, refRes)
		}
		for v := range st {
			if st[v] != refSt[v] {
				t.Fatalf("%s: node %d status %v under %s, %v under %s",
					label, v, st[v], d.name, refSt[v], refName)
			}
		}
	}
}

// TestCrossDriverAllPrograms sweeps every status-returning MIS program
// across the full driver matrix on a moderate bounded-arboricity graph,
// clean and with fault injection.
func TestCrossDriverAllPrograms(t *testing.T) {
	n := 300
	forest := gen.RandomTree(n, rng.New(11))
	union := gen.UnionOfTrees(n, 2, rng.New(12))
	for _, prog := range statusPrograms() {
		g := union
		if prog.name == "colevishkin" {
			g = forest // Cole-Vishkin is a forest algorithm
		}
		runMatrix(t, prog.name, g, congest.Options{Seed: 77}, prog.run)
		if prog.name != "colevishkin" && prog.name != "localmin" {
			// Randomized programs must also agree under message drops,
			// where a stalled run (ErrMaxRounds) is acceptable as long as
			// every driver stalls identically.
			runMatrix(t, prog.name+"/drop", g, congest.Options{Seed: 77, DropProb: 0.05, MaxRounds: 500}, prog.run)
		}
	}
}

// TestCrossDriverGoldenLarge is the n = 2^12 golden check from the issue:
// sequential vs the worker pool must produce identical Result (Rounds,
// Messages, TotalBits, Dropped) and identical MIS output for metivier,
// luby, ghaffari, and the tree algorithm, including a DropProb > 0 case.
func TestCrossDriverGoldenLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large cross-driver sweep skipped in -short mode")
	}
	n := 1 << 12
	g := gen.UnionOfTrees(n, 2, rng.New(5))
	pool := func(o *congest.Options) { o.Driver = congest.DriverPool; o.Workers = 4 }

	progs := []statusProgram{
		{"metivier", metivier.Run},
		{"lubyA", luby.RunA},
		{"lubyB", luby.RunB},
		{"ghaffari", ghaffari.Run},
	}
	for _, prog := range progs {
		for _, drop := range []float64{0, 0.02} {
			seqOpts := congest.Options{Seed: 9, DropProb: drop, MaxRounds: 2000}
			poolOpts := seqOpts
			pool(&poolOpts)
			seqSt, seqRes, seqErr := prog.run(g, seqOpts)
			poolSt, poolRes, poolErr := prog.run(g, poolOpts)
			if (seqErr == nil) != (poolErr == nil) {
				t.Fatalf("%s drop=%v: sequential err %v, pool err %v", prog.name, drop, seqErr, poolErr)
			}
			if seqRes != poolRes {
				t.Fatalf("%s drop=%v: sequential %+v != pool %+v", prog.name, drop, seqRes, poolRes)
			}
			for v := range seqSt {
				if seqSt[v] != poolSt[v] {
					t.Fatalf("%s drop=%v: node %d differs across drivers", prog.name, drop, v)
				}
			}
			if drop == 0 && seqErr == nil {
				if err := base.VerifyStatuses(g, seqSt); err != nil {
					t.Fatalf("%s: invalid MIS: %v", prog.name, err)
				}
			}
		}
	}

	// The tree algorithm (ArbMIS pipeline at α = 1) on a forest input.
	f := gen.RandomTree(n, rng.New(6))
	params := tree.PracticalParams(f.MaxDegree())
	seqOut, err := tree.Run(f, params, congest.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	poolOut, err := tree.Run(f, params, congest.Options{Seed: 9, Driver: congest.DriverPool, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seqOut.TotalRounds() != poolOut.TotalRounds() ||
		seqOut.TotalMessages() != poolOut.TotalMessages() ||
		seqOut.MaxMessageBits() != poolOut.MaxMessageBits() {
		t.Fatalf("tree: counters differ: seq rounds=%d msgs=%d bits=%d, pool rounds=%d msgs=%d bits=%d",
			seqOut.TotalRounds(), seqOut.TotalMessages(), seqOut.MaxMessageBits(),
			poolOut.TotalRounds(), poolOut.TotalMessages(), poolOut.MaxMessageBits())
	}
	for v := range seqOut.MIS {
		if seqOut.MIS[v] != poolOut.MIS[v] {
			t.Fatalf("tree: node %d MIS membership differs across drivers", v)
		}
	}
}
