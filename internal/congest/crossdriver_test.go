// Cross-driver determinism suite: every MIS program in internal/mis/...
// must produce bit-identical runs — same Result counters, same per-node
// outputs — under the sequential driver, the sharded worker pool (at
// several shard counts), and the legacy goroutine-per-vertex driver,
// with and without fault injection. This is the engine's load-bearing
// guarantee: experiments run on whichever driver is fastest and stay
// reproducible.
package congest_test

import (
	"hash/fnv"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/congest"
	"repro/internal/distrib"
	"repro/internal/faultsim"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/colevishkin"
	"repro/internal/mis/degreduce"
	"repro/internal/mis/ftmetivier"
	"repro/internal/mis/ghaffari"
	"repro/internal/mis/localmin"
	"repro/internal/mis/luby"
	"repro/internal/mis/metivier"
	"repro/internal/mis/tree"
	"repro/internal/rng"
	"repro/internal/trace"
)

// TestMain is the distributed driver's self-exec hook: when an ExecFleet
// spawns this test binary as a shard worker, MaybeWorker serves the run
// and exits before any test runs.
func TestMain(m *testing.M) {
	distrib.MaybeWorker()
	os.Exit(m.Run())
}

// driverMatrix is every execution strategy a program must agree across.
var driverMatrix = []struct {
	name string
	set  func(*congest.Options)
}{
	{"sequential", func(o *congest.Options) { o.Driver = congest.DriverSequential }},
	{"pool-1", func(o *congest.Options) { o.Driver = congest.DriverPool; o.Workers = 1 }},
	{"pool-4", func(o *congest.Options) { o.Driver = congest.DriverPool; o.Workers = 4 }},
	{"pool-8", func(o *congest.Options) { o.Driver = congest.DriverPool; o.Workers = 8 }},
	{"goroutine-per-vertex", func(o *congest.Options) { o.Driver = congest.DriverGoroutinePerVertex }},
}

// statusProgram is a status-returning MIS (or MIS-adjacent) program.
type statusProgram struct {
	name string
	run  func(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error)
}

// bfsParents builds the rooted-forest parent map Cole-Vishkin needs.
func bfsParents(g *graph.Graph) []int {
	parent := make([]int, g.N())
	for v := range parent {
		parent[v] = -2
	}
	for s := 0; s < g.N(); s++ {
		if parent[s] != -2 {
			continue
		}
		parent[s] = -1
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if parent[w] == -2 {
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
	}
	return parent
}

func statusPrograms() []statusProgram {
	return []statusProgram{
		{"metivier", metivier.Run},
		{"lubyA", luby.RunA},
		{"lubyB", luby.RunB},
		{"ghaffari", ghaffari.Run},
		{"localmin", localmin.Run},
		{"degreduce", func(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error) {
			return degreduce.Run(g, 4, opts)
		}},
		{"colevishkin", func(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error) {
			return colevishkin.Run(g, bfsParents(g), opts)
		}},
	}
}

// distProgram maps a matrix program label to the cross-process Program
// spec the distributed driver's workers construct their nodes from.
func distProgram(label string, g *graph.Graph) distrib.Program {
	switch name := strings.SplitN(label, "/", 2)[0]; name {
	case "lubyA":
		return distrib.Program{Algorithm: "luby-a"}
	case "lubyB":
		return distrib.Program{Algorithm: "luby-b"}
	case "degreduce":
		return distrib.Program{Algorithm: "degreduce", Args: []uint64{4}}
	case "colevishkin":
		return distrib.Program{Algorithm: "colevishkin", Args: distrib.ColeVishkinArgs(bfsParents(g))}
	default:
		return distrib.Program{Algorithm: name}
	}
}

// runMatrix executes one program under every driver — including the
// distributed driver over a unix-socket worker fleet — and fails the test
// on the first divergence in error, Result, or statuses.
func runMatrix(t *testing.T, label string, g *graph.Graph, baseOpts congest.Options,
	run func(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error)) {
	t.Helper()
	var refName string
	var refSt []base.Status
	var refRes congest.Result
	var refErr error
	check := func(name string, st []base.Status, res congest.Result, err error) {
		t.Helper()
		if refName == "" {
			refName, refSt, refRes, refErr = name, st, res, err
			return
		}
		if (err == nil) != (refErr == nil) || (err != nil && err.Error() != refErr.Error()) {
			t.Fatalf("%s: %s err %v, %s err %v", label, name, err, refName, refErr)
		}
		if res != refRes {
			t.Fatalf("%s: %s Result %+v != %s Result %+v", label, name, res, refName, refRes)
		}
		for v := range st {
			if st[v] != refSt[v] {
				t.Fatalf("%s: node %d status %v under %s, %v under %s",
					label, v, st[v], name, refSt[v], refName)
			}
		}
	}
	for _, d := range driverMatrix {
		opts := baseOpts
		d.set(&opts)
		st, res, err := run(g, opts)
		check(d.name, st, res, err)
	}
	fleet, err := distrib.NewExecFleet(g, distProgram(label, g), 4)
	if err != nil {
		t.Fatalf("%s: distributed fleet: %v", label, err)
	}
	defer fleet.Close()
	opts := baseOpts
	opts.Driver = congest.DriverDistributed
	opts.Fleet = fleet
	st, res, err := run(g, opts)
	check("distributed", st, res, err)
}

// TestCrossDriverAllPrograms sweeps every status-returning MIS program
// across the full driver matrix on a moderate bounded-arboricity graph,
// clean and with fault injection.
func TestCrossDriverAllPrograms(t *testing.T) {
	n := 300
	forest := gen.RandomTree(n, rng.New(11))
	union := gen.UnionOfTrees(n, 2, rng.New(12))
	for _, prog := range statusPrograms() {
		g := union
		if prog.name == "colevishkin" {
			g = forest // Cole-Vishkin is a forest algorithm
		}
		runMatrix(t, prog.name, g, congest.Options{Seed: 77}, prog.run)
		if prog.name != "colevishkin" && prog.name != "localmin" {
			// Randomized programs must also agree under message drops,
			// where a stalled run (ErrMaxRounds) is acceptable as long as
			// every driver stalls identically.
			runMatrix(t, prog.name+"/drop", g, congest.Options{Seed: 77, DropProb: 0.05, MaxRounds: 500}, prog.run)
		}
	}
}

// faultPlans builds one instance of every faultsim plan kind (plus a
// composition of all of them) sized for an n-vertex graph g, for the
// cross-driver matrix: faulted executions must be bit-identical across
// drivers for every plan, exactly like clean ones.
func faultPlans(g *graph.Graph) []struct {
	name string
	plan faultsim.Plan
} {
	n := g.N()
	var pairs [][2]int
	for v := 0; v < n && len(pairs) < 24; v += 7 {
		for _, w := range g.Neighbors(v) {
			pairs = append(pairs, [2]int{v, w})
		}
	}
	side := make([]bool, n)
	for v := range side {
		side[v] = v%2 == 0
	}
	bernoulli := faultsim.BernoulliDrop{P: 0.08}
	burst := faultsim.NewLinkBurst(faultsim.BothWays(pairs), 2, 9)
	partition := faultsim.NewPartition(side, 4, 12)
	crashStop := faultsim.NewCrashStop(faultsim.SpreadCrashes(n, n/16, 2, 5))
	crashRestart := faultsim.NewCrashRestart(map[int]faultsim.Window{
		1:     {Down: 2, Up: 8},
		n / 2: {Down: 3, Up: 0},
		n - 1: {Down: 5, Up: 20},
	})
	delay := faultsim.DelayK{K: 3}
	return []struct {
		name string
		plan faultsim.Plan
	}{
		{"bernoulli", bernoulli},
		{"linkburst", burst},
		{"partition", partition},
		{"crashstop", crashStop},
		{"crashrestart", crashRestart},
		{"delayk", delay},
		{"composed", faultsim.Compose(bernoulli, burst, partition, crashStop, crashRestart, delay)},
	}
}

// TestCrossDriverFaultPlans sweeps every fault plan kind across the full
// driver matrix for a priority program and its fault-tolerant variant. A
// stalled run (ErrMaxRounds) is acceptable as long as every driver stalls
// with identical counters and statuses.
func TestCrossDriverFaultPlans(t *testing.T) {
	n := 256
	g := gen.UnionOfTrees(n, 2, rng.New(21))
	progs := []statusProgram{
		{"metivier", metivier.Run},
		{"ftmetivier", ftmetivier.Run},
	}
	for _, fp := range faultPlans(g) {
		for _, prog := range progs {
			opts := congest.Options{Seed: 33, Faults: fp.plan, MaxRounds: 400}
			runMatrix(t, prog.name+"/"+fp.name, g, opts, prog.run)
		}
	}
}

// statusFingerprint hashes a status vector for golden pinning.
func statusFingerprint(st []base.Status) uint64 {
	h := fnv.New64a()
	for _, s := range st {
		h.Write([]byte{byte(s)})
	}
	return h.Sum64()
}

// TestGoldenFaultedExecution pins one faulted run exactly: fixed seed,
// fixed CrashRestart + BernoulliDrop plan, n = 256. Every driver must
// reproduce the same round count, the same Result counters, and the same
// per-node output, and those values must not drift across PRs — fault
// injection is part of the engine's determinism contract, so any change
// here must be deliberate (re-derive and update, as with golden_test.go).
func TestGoldenFaultedExecution(t *testing.T) {
	const (
		wantRounds      = 204
		wantMIS         = 94
		wantCrashed     = 3
		wantFingerprint = uint64(0x6608fb1ead99f649)
	)
	n := 256
	g := gen.UnionOfTrees(n, 2, rng.New(77))
	plan := faultsim.Compose(
		faultsim.BernoulliDrop{P: 0.1},
		faultsim.NewCrashRestart(map[int]faultsim.Window{
			5:   {Down: 2, Up: 14},
			64:  {Down: 4, Up: 0},
			128: {Down: 6, Up: 0},
			200: {Down: 3, Up: 0},
		}),
	)
	drivers := append([]struct {
		name string
		set  func(*congest.Options)
	}{}, driverMatrix...)
	fleet, err := distrib.NewExecFleet(g, distrib.Program{Algorithm: "ftmetivier"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	drivers = append(drivers, struct {
		name string
		set  func(*congest.Options)
	}{"distributed", func(o *congest.Options) { o.Driver = congest.DriverDistributed; o.Fleet = fleet }})
	for _, d := range drivers {
		opts := congest.Options{Seed: 1234, Faults: plan, MaxRounds: 400}
		d.set(&opts)
		st, res, err := ftmetivier.Run(g, opts)
		if err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		if res.Rounds != wantRounds {
			t.Fatalf("%s: rounds = %d, want %d", d.name, res.Rounds, wantRounds)
		}
		crashed := faultsim.CrashedAt(plan, res.Rounds+1, n)
		rep, err := faultsim.Check(g, base.MISSet(st), crashed)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Safe() {
			t.Fatalf("%s: independence violated: %v", d.name, rep.Violations)
		}
		if rep.InMIS != wantMIS || rep.Crashed != wantCrashed {
			t.Fatalf("%s: |MIS| = %d crashed = %d, want %d/%d", d.name, rep.InMIS, rep.Crashed, wantMIS, wantCrashed)
		}
		if fp := statusFingerprint(st); fp != wantFingerprint {
			t.Fatalf("%s: status fingerprint %#x, want %#x", d.name, fp, wantFingerprint)
		}
	}
}

// TestGoldenMulticoreFingerprint pins one clean traced run at n = 4096
// under GOMAXPROCS = 8 with shard rebalancing enabled (the default): the
// deterministic-event fingerprint, round count, and message totals must be
// identical across the sequential driver, pool at 1 and 8 workers, and the
// goroutine-per-vertex driver — and must not drift across PRs. The graph
// is deliberately lopsided (a path over the low half, isolated vertices
// above) so the live set concentrates in the low shards after round 1 and
// the 8-worker pool actually rebalances mid-run; the test therefore proves
// the rebalanced layout and the destination-bucketed parallel merge
// reproduce the exact event stream of the sequential sweep. It runs under
// make race, where the worker barrier, parallel merge, and rebalancer are
// all exercised with the race detector watching.
func TestGoldenMulticoreFingerprint(t *testing.T) {
	const (
		wantRounds      = 7
		wantMessages    = 8764
		wantFingerprint = uint64(0x12754683fe80ac53)
	)
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	n := 4096
	edges := make([]graph.Edge, 0, n/2)
	for v := 0; v+1 < n/2; v++ {
		edges = append(edges, graph.Edge{U: v, V: v + 1})
	}
	g := graph.MustNew(n, edges)
	drivers := append([]struct {
		name string
		set  func(*congest.Options)
	}{}, driverMatrix...)
	fleet, err := distrib.NewExecFleet(g, distrib.Program{Algorithm: "metivier"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	drivers = append(drivers, struct {
		name string
		set  func(*congest.Options)
	}{"distributed", func(o *congest.Options) { o.Driver = congest.DriverDistributed; o.Fleet = fleet }})
	for _, d := range drivers {
		rec := trace.NewRecorder(0)
		opts := congest.Options{Seed: 424242, Events: rec}
		d.set(&opts)
		st, res, err := metivier.Run(g, opts)
		if err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		if res.Rounds != wantRounds || res.Messages != wantMessages {
			t.Fatalf("%s: rounds=%d messages=%d, want %d/%d",
				d.name, res.Rounds, res.Messages, wantRounds, wantMessages)
		}
		if err := base.VerifyStatuses(g, st); err != nil {
			t.Fatalf("%s: invalid MIS: %v", d.name, err)
		}
		if fp := rec.Fingerprint(); fp != wantFingerprint {
			t.Fatalf("%s: deterministic fingerprint %#x, want %#x", d.name, fp, wantFingerprint)
		}
	}
}

// TestCrossDriverGoldenLarge is the n = 2^12 golden check from the issue:
// sequential vs the worker pool must produce identical Result (Rounds,
// Messages, TotalBits, Dropped) and identical MIS output for metivier,
// luby, ghaffari, and the tree algorithm, including a DropProb > 0 case.
func TestCrossDriverGoldenLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large cross-driver sweep skipped in -short mode")
	}
	n := 1 << 12
	g := gen.UnionOfTrees(n, 2, rng.New(5))
	pool := func(o *congest.Options) { o.Driver = congest.DriverPool; o.Workers = 4 }

	progs := []statusProgram{
		{"metivier", metivier.Run},
		{"lubyA", luby.RunA},
		{"lubyB", luby.RunB},
		{"ghaffari", ghaffari.Run},
	}
	for _, prog := range progs {
		for _, drop := range []float64{0, 0.02} {
			seqOpts := congest.Options{Seed: 9, DropProb: drop, MaxRounds: 2000}
			poolOpts := seqOpts
			pool(&poolOpts)
			seqSt, seqRes, seqErr := prog.run(g, seqOpts)
			poolSt, poolRes, poolErr := prog.run(g, poolOpts)
			if (seqErr == nil) != (poolErr == nil) {
				t.Fatalf("%s drop=%v: sequential err %v, pool err %v", prog.name, drop, seqErr, poolErr)
			}
			if seqRes != poolRes {
				t.Fatalf("%s drop=%v: sequential %+v != pool %+v", prog.name, drop, seqRes, poolRes)
			}
			for v := range seqSt {
				if seqSt[v] != poolSt[v] {
					t.Fatalf("%s drop=%v: node %d differs across drivers", prog.name, drop, v)
				}
			}
			if drop == 0 && seqErr == nil {
				if err := base.VerifyStatuses(g, seqSt); err != nil {
					t.Fatalf("%s: invalid MIS: %v", prog.name, err)
				}
			}
		}
	}

	// The tree algorithm (ArbMIS pipeline at α = 1) on a forest input.
	f := gen.RandomTree(n, rng.New(6))
	params := tree.PracticalParams(f.MaxDegree())
	seqOut, err := tree.Run(f, params, congest.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	poolOut, err := tree.Run(f, params, congest.Options{Seed: 9, Driver: congest.DriverPool, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seqOut.TotalRounds() != poolOut.TotalRounds() ||
		seqOut.TotalMessages() != poolOut.TotalMessages() ||
		seqOut.MaxMessageBits() != poolOut.MaxMessageBits() {
		t.Fatalf("tree: counters differ: seq rounds=%d msgs=%d bits=%d, pool rounds=%d msgs=%d bits=%d",
			seqOut.TotalRounds(), seqOut.TotalMessages(), seqOut.MaxMessageBits(),
			poolOut.TotalRounds(), poolOut.TotalMessages(), poolOut.MaxMessageBits())
	}
	for v := range seqOut.MIS {
		if seqOut.MIS[v] != poolOut.MIS[v] {
			t.Fatalf("tree: node %d MIS membership differs across drivers", v)
		}
	}
}
