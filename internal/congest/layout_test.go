// Layout suite: the cache-conscious relabeling pass must be invisible at
// every user-visible surface. Within a layout, all drivers stay
// bit-identical (clean and faulted); across layouts, a clean sequential
// run produces the same external-ID statuses; and each layout's traced
// run pins its own golden fingerprint — layout is part of run identity,
// so drift in any pinned value is a determinism break.
package congest_test

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/mis/base"
	"repro/internal/mis/ftmetivier"
	"repro/internal/mis/metivier"
	"repro/internal/rng"
	"repro/internal/trace"
)

// nonIdentityLayouts are the orderings that actually move vertices.
func nonIdentityLayouts() []layout.Ordering { return []layout.Ordering{layout.DegSort, layout.BFS} }

// TestCrossDriverLayouts runs the full driver matrix under every
// non-identity layout, clean and faulted: within a layout the engine's
// bit-identity guarantee must hold exactly as it does for identity.
func TestCrossDriverLayouts(t *testing.T) {
	n := 256
	g := gen.UnionOfTrees(n, 2, rng.New(21))
	plans := faultPlans(g)
	for _, lo := range nonIdentityLayouts() {
		name := string(lo)
		runMatrix(t, "metivier/"+name, g, congest.Options{Seed: 77, Layout: name}, metivier.Run)
		opts := congest.Options{Seed: 33, Faults: plans[len(plans)-1].plan, MaxRounds: 400, Layout: name}
		runMatrix(t, "ftmetivier/"+name+"/composed", g, opts, ftmetivier.Run)
	}
}

// TestLayoutInvariantMIS is the layout-transparency contract: a clean
// sequential run reports external-ID statuses, so the computed MIS must
// be byte-identical across every layout — the relabeling can change how
// memory is walked, never what is computed.
func TestLayoutInvariantMIS(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"union", gen.UnionOfTrees(300, 2, rng.New(12))},
		{"pa", gen.PreferentialAttachment(256, 4, rng.New(9))},
		{"grid", gen.Grid(16, 17)},
	}
	for _, tc := range graphs {
		var ref []base.Status
		for _, lo := range layout.Orderings() {
			st, _, err := metivier.Run(tc.g, congest.Options{Seed: 77, Layout: string(lo)})
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, lo, err)
			}
			if err := base.VerifyStatuses(tc.g, st); err != nil {
				t.Fatalf("%s/%s: invalid MIS: %v", tc.name, lo, err)
			}
			if ref == nil {
				ref = st
				continue
			}
			for v := range st {
				if st[v] != ref[v] {
					t.Fatalf("%s: node %d status %v under %s, %v under identity",
						tc.name, v, st[v], lo, ref[v])
				}
			}
		}
	}
}

// TestGoldenLayoutFingerprints pins one traced clean run per layout on
// the multicore golden graph. Identity must stay on the engine's
// long-standing pinned fingerprint (relabeling OFF is byte-for-byte the
// pre-layout engine); degsort and bfs each pin their own value, checked
// across the sequential and pool drivers. Any drift here must be
// deliberate (re-derive and update, as with golden_test.go).
func TestGoldenLayoutFingerprints(t *testing.T) {
	// BFS pins the identity value: the golden graph's path is already in
	// breadth-first order, so Cuthill-McKee computes the identity
	// permutation and the run must be byte-for-byte the identity run —
	// itself a transparency check.
	want := map[layout.Ordering]uint64{
		layout.Identity: 0x12754683fe80ac53,
		layout.DegSort:  0x4a63d15d437c03a3,
		layout.BFS:      0x12754683fe80ac53,
	}
	n := 4096
	edges := make([]graph.Edge, 0, n/2)
	for v := 0; v+1 < n/2; v++ {
		edges = append(edges, graph.Edge{U: v, V: v + 1})
	}
	g := graph.MustNew(n, edges)
	for _, lo := range layout.Orderings() {
		var fps []uint64
		for _, d := range []struct {
			name string
			set  func(*congest.Options)
		}{
			{"sequential", func(o *congest.Options) { o.Driver = congest.DriverSequential }},
			{"pool-8", func(o *congest.Options) { o.Driver = congest.DriverPool; o.Workers = 8 }},
		} {
			rec := trace.NewRecorder(0)
			opts := congest.Options{Seed: 424242, Events: rec, Layout: string(lo)}
			d.set(&opts)
			st, _, err := metivier.Run(g, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", lo, d.name, err)
			}
			if err := base.VerifyStatuses(g, st); err != nil {
				t.Fatalf("%s/%s: invalid MIS: %v", lo, d.name, err)
			}
			fps = append(fps, rec.Fingerprint())
			if fp := rec.Fingerprint(); fp != want[lo] {
				t.Errorf("%s/%s: deterministic fingerprint %#x, want %#x", lo, d.name, fp, want[lo])
			}
		}
		if fps[0] != fps[1] {
			t.Fatalf("%s: sequential fingerprint %#x != pool %#x", lo, fps[0], fps[1])
		}
	}
}

// TestLayoutUnknownRejected checks the error surface: an unrecognized
// ordering must fail the run with the layout package's contextual error,
// not fall back silently.
func TestLayoutUnknownRejected(t *testing.T) {
	g := gen.UnionOfTrees(32, 2, rng.New(1))
	_, _, err := metivier.Run(g, congest.Options{Seed: 1, Layout: "hilbert"})
	if err == nil {
		t.Fatal("unknown layout accepted")
	}
	want := `layout: unknown ordering "hilbert" (want identity|degsort|bfs)`
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
}
