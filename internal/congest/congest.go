// Package congest simulates the synchronous CONGEST model of distributed
// computing: one state machine per graph vertex, lock-step rounds, and
// messages between neighbors whose size the engine meters (the CONGEST
// model allows O(log n) bits per edge per round).
//
// Two interchangeable drivers execute a program:
//
//   - the sequential driver sweeps vertices in ID order each round (fast;
//     used for large experiment sweeps), and
//   - the goroutine driver runs one goroutine per vertex with a barrier
//     between rounds (the "goroutines map naturally to nodes" execution
//     the repository showcases).
//
// Both drivers produce bit-identical executions for the same seed: each
// node owns a private RNG stream split from the run seed by vertex ID, and
// inboxes are delivered sorted by sender, so scheduling order cannot leak
// into algorithm behaviour.
package congest

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Payload is the content of a message. Bits reports the payload's encoded
// size in bits so the engine can audit CONGEST compliance; implementations
// must return a positive constant or ID-length-bounded value.
type Payload interface {
	Bits() int
}

// Message is a payload annotated with its sender's vertex ID.
type Message struct {
	From    int
	Payload Payload
}

// Node is one vertex's state machine. Init runs before round 1 and may
// send messages (delivered in round 1). Round runs once per round with the
// messages delivered this round. A node that calls Context.Halt receives no
// further Round calls.
type Node interface {
	Init(ctx *Context)
	Round(ctx *Context, inbox []Message)
}

// Context is the per-node view of the network that the engine passes to
// Init and Round. It is only valid during the call it is passed to.
type Context struct {
	id        int
	n         int
	neighbors []int
	rng       *rng.RNG
	round     int
	halted    bool
	outbox    []addressed
	runner    *Runner
	err       error
}

type addressed struct {
	to  int
	msg Message
}

// ID returns this vertex's identifier (0..N-1). In CONGEST nodes know their
// own O(log n)-bit ID and those of their neighbors.
func (c *Context) ID() int { return c.id }

// N returns the number of vertices in the network. (Algorithms in this repo
// use it only for parameterization that the model allows — e.g. knowing n
// up to a constant factor.)
func (c *Context) N() int { return c.n }

// Round returns the current round number, starting at 1. During Init it
// returns 0.
func (c *Context) Round() int { return c.round }

// Neighbors returns the sorted neighbor IDs. The slice aliases graph
// storage and must not be modified.
func (c *Context) Neighbors() []int { return c.neighbors }

// Degree returns the vertex degree.
func (c *Context) Degree() int { return len(c.neighbors) }

// RNG returns this node's private random stream. Draws are deterministic
// given the run seed and vertex ID, and no other node shares the stream.
func (c *Context) RNG() *rng.RNG { return c.rng }

// Send queues a message to neighbor `to` for delivery next round. Sending
// to a non-neighbor is a programming error and poisons the run with an
// error (the model has no routing).
func (c *Context) Send(to int, p Payload) {
	if !c.isNeighbor(to) {
		c.err = fmt.Errorf("congest: node %d sent to non-neighbor %d", c.id, to)
		return
	}
	c.enqueue(to, p)
}

// Broadcast queues a message to every neighbor for delivery next round.
func (c *Context) Broadcast(p Payload) {
	for _, w := range c.neighbors {
		c.enqueue(w, p)
	}
}

func (c *Context) enqueue(to int, p Payload) {
	if c.runner.opts.MessageBitLimit > 0 && p.Bits() > c.runner.opts.MessageBitLimit {
		c.err = fmt.Errorf("congest: node %d message of %d bits exceeds limit %d",
			c.id, p.Bits(), c.runner.opts.MessageBitLimit)
		return
	}
	c.outbox = append(c.outbox, addressed{to: to, msg: Message{From: c.id, Payload: p}})
}

// Halt marks this node finished. Messages queued in the same call are still
// delivered, but the node receives no further Round calls.
func (c *Context) Halt() { c.halted = true }

func (c *Context) isNeighbor(w int) bool {
	i := sort.SearchInts(c.neighbors, w)
	return i < len(c.neighbors) && c.neighbors[i] == w
}

// Options configures a run.
type Options struct {
	// Seed is the root seed; node v's stream is Split(v) of it.
	Seed uint64
	// MaxRounds aborts the run if the program has not halted by then.
	// Zero means the DefaultMaxRounds safety net.
	MaxRounds int
	// Parallel selects the goroutine-per-node driver.
	Parallel bool
	// MessageBitLimit, when positive, fails the run if any single message
	// exceeds that many bits (CONGEST compliance enforcement).
	MessageBitLimit int
	// DropProb, when positive, drops each message independently with this
	// probability (deterministically, from a fault stream derived from
	// Seed). This deliberately breaks the reliable-delivery assumption of
	// CONGEST; it exists for robustness experiments only.
	DropProb float64
	// Observer, when non-nil, is called after every completed round with
	// the round number, the number of nodes still live after it, and the
	// number of messages sent during it. Round 0 reports Init. It runs on
	// the coordinator (never concurrently) and must not retain the engine.
	Observer func(round, live int, sent int64)
}

// DefaultMaxRounds bounds runaway programs. It is generous: every algorithm
// in this repository finishes in O(log² n) rounds with overwhelming
// probability.
const DefaultMaxRounds = 1 << 20

// Result summarizes a completed run.
type Result struct {
	// Rounds is the number of communication rounds executed (Init is round 0
	// and not counted; a program that halts every node in Init reports 0).
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// TotalBits is the sum of payload sizes over all delivered messages.
	TotalBits int64
	// MaxMessageBits is the largest single payload observed.
	MaxMessageBits int
	// Dropped counts messages discarded by fault injection.
	Dropped int64
}

// ErrMaxRounds reports that a run was aborted before all nodes halted.
var ErrMaxRounds = errors.New("congest: max rounds exceeded before all nodes halted")

// Runner executes a program over a graph. Construct with NewRunner; a
// Runner is single-use (Run may be called once).
type Runner struct {
	g     *graph.Graph
	nodes []Node
	opts  Options
	ran   bool
}

// NewRunner builds a runner for the given graph. factory(v) must return the
// state machine for vertex v; it is called once per vertex in ID order.
func NewRunner(g *graph.Graph, factory func(v int) Node, opts Options) *Runner {
	nodes := make([]Node, g.N())
	for v := range nodes {
		nodes[v] = factory(v)
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = DefaultMaxRounds
	}
	return &Runner{g: g, nodes: nodes, opts: opts}
}

// Node returns vertex v's state machine, for reading outputs after Run.
func (r *Runner) Node(v int) Node { return r.nodes[v] }

// Run executes the program to completion and returns run statistics. It
// returns ErrMaxRounds if any node is still live at the round limit, or the
// first model violation (send to non-neighbor, oversized message) detected.
func (r *Runner) Run() (Result, error) {
	if r.ran {
		return Result{}, errors.New("congest: Runner is single-use; construct a new one per run")
	}
	r.ran = true
	if r.opts.Parallel {
		return r.runParallel()
	}
	return r.runSequential()
}

// execState is the driver-independent bookkeeping for a run.
type execState struct {
	ctxs     []*Context
	inboxes  [][]Message
	live     int
	res      Result
	faults   *rng.RNG
	observed int64 // messages already reported to the observer
}

func (r *Runner) newExecState() *execState {
	root := rng.New(r.opts.Seed)
	n := r.g.N()
	st := &execState{
		ctxs:    make([]*Context, n),
		inboxes: make([][]Message, n),
		live:    n,
	}
	if r.opts.DropProb > 0 {
		st.faults = root.Split(^uint64(0))
	}
	for v := 0; v < n; v++ {
		st.ctxs[v] = &Context{
			id:        v,
			n:         n,
			neighbors: r.g.Neighbors(v),
			rng:       root.Split(uint64(v)),
			runner:    r,
		}
	}
	return st
}

// deliver moves every context's outbox into the next round's inboxes,
// applying fault injection and accounting. It returns the first model
// violation recorded by any context.
func (r *Runner) deliver(st *execState) error {
	for v := range st.ctxs {
		ctx := st.ctxs[v]
		if ctx.err != nil {
			return ctx.err
		}
	}
	for v := range st.inboxes {
		st.inboxes[v] = st.inboxes[v][:0]
	}
	// Deterministic fault decisions: iterate contexts in ID order.
	for v := range st.ctxs {
		ctx := st.ctxs[v]
		for _, a := range ctx.outbox {
			if st.faults != nil && st.faults.Bool(r.opts.DropProb) {
				st.res.Dropped++
				continue
			}
			st.inboxes[a.to] = append(st.inboxes[a.to], a.msg)
			st.res.Messages++
			bits := a.msg.Payload.Bits()
			st.res.TotalBits += int64(bits)
			if bits > st.res.MaxMessageBits {
				st.res.MaxMessageBits = bits
			}
		}
		ctx.outbox = ctx.outbox[:0]
	}
	// Sorted inboxes make delivery order independent of the driver.
	for v := range st.inboxes {
		inbox := st.inboxes[v]
		sort.SliceStable(inbox, func(i, j int) bool { return inbox[i].From < inbox[j].From })
	}
	return nil
}

// countHalts updates the live-node count after a sweep.
func (st *execState) countHalts() {
	live := 0
	for _, ctx := range st.ctxs {
		if !ctx.halted {
			live++
		}
	}
	st.live = live
}

func (r *Runner) runSequential() (Result, error) {
	st := r.newExecState()
	for v, node := range r.nodes {
		node.Init(st.ctxs[v])
	}
	if err := r.deliver(st); err != nil {
		return st.res, err
	}
	st.countHalts()
	r.observe(st, 0)
	for round := 1; st.live > 0; round++ {
		if round > r.opts.MaxRounds {
			return st.res, fmt.Errorf("%w (limit %d, %d nodes live)", ErrMaxRounds, r.opts.MaxRounds, st.live)
		}
		st.res.Rounds = round
		for v, node := range r.nodes {
			ctx := st.ctxs[v]
			if ctx.halted {
				continue
			}
			ctx.round = round
			node.Round(ctx, st.inboxes[v])
		}
		if err := r.deliver(st); err != nil {
			return st.res, err
		}
		st.countHalts()
		r.observe(st, round)
	}
	return st.res, nil
}

// observe reports one completed round to the configured observer, deriving
// the per-round sent count from the running message total.
func (r *Runner) observe(st *execState, round int) {
	if r.opts.Observer == nil {
		return
	}
	sent := st.res.Messages + st.res.Dropped - st.observed
	st.observed = st.res.Messages + st.res.Dropped
	r.opts.Observer(round, st.live, sent)
}

// runParallel runs one long-lived goroutine per vertex with a channel
// barrier per round. The execution is identical to the sequential driver
// because nodes only touch their own context and RNG stream, inboxes are
// pre-sorted by sender, and delivery happens on the coordinator between
// rounds.
func (r *Runner) runParallel() (Result, error) {
	st := r.newExecState()
	n := r.g.N()
	type work struct {
		round int
		inbox []Message
	}
	starts := make([]chan work, n)
	done := make(chan int, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		starts[v] = make(chan work, 1)
		go func(v int) {
			defer wg.Done()
			node, ctx := r.nodes[v], st.ctxs[v]
			for w := range starts[v] {
				ctx.round = w.round
				if w.round == 0 {
					node.Init(ctx)
				} else {
					node.Round(ctx, w.inbox)
				}
				done <- v
			}
		}(v)
	}
	defer func() {
		for v := range starts {
			close(starts[v])
		}
		wg.Wait()
	}()

	// runRound dispatches one lock-step round to every live node and waits
	// for all of them — the synchronous-model barrier.
	runRound := func(round int) {
		dispatched := 0
		for v := 0; v < n; v++ {
			if round > 0 && st.ctxs[v].halted {
				continue
			}
			starts[v] <- work{round: round, inbox: st.inboxes[v]}
			dispatched++
		}
		for i := 0; i < dispatched; i++ {
			<-done
		}
	}

	runRound(0)
	if err := r.deliver(st); err != nil {
		return st.res, err
	}
	st.countHalts()
	r.observe(st, 0)
	for round := 1; st.live > 0; round++ {
		if round > r.opts.MaxRounds {
			return st.res, fmt.Errorf("%w (limit %d, %d nodes live)", ErrMaxRounds, r.opts.MaxRounds, st.live)
		}
		st.res.Rounds = round
		runRound(round)
		if err := r.deliver(st); err != nil {
			return st.res, err
		}
		st.countHalts()
		r.observe(st, round)
	}
	return st.res, nil
}
