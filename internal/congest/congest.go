// Package congest simulates the synchronous CONGEST model of distributed
// computing: one state machine per graph vertex, lock-step rounds, and
// messages between neighbors whose size the engine meters (the CONGEST
// model allows O(log n) bits per edge per round).
//
// Three interchangeable drivers execute a program:
//
//   - the sequential driver sweeps vertices in ID order each round,
//   - the sharded worker-pool driver partitions vertices into contiguous
//     shards, one long-lived worker goroutine per shard (default: the
//     pool driver behind Options.Parallel), and
//   - the legacy goroutine-per-vertex driver, retained only as a
//     benchmark baseline (Options.Driver = DriverGoroutinePerVertex).
//
// All drivers produce bit-identical executions for the same seed. Three
// invariants make scheduling order invisible to programs:
//
//  1. each node owns a private RNG stream split from the run seed by
//     vertex ID (splitting is a pure function, so creation order is
//     irrelevant);
//  2. every driver materializes outgoing messages in ascending sender-ID
//     order — within a shard nodes are swept in ID order, and shards
//     cover contiguous ID ranges merged in shard order — so inboxes are
//     sorted by sender without any per-round sort; and
//  3. fault-injection decisions (the faultsim.Plan consults, including any
//     random draws) happen on the coordinator during delivery, in that
//     same global sender order, from a dedicated fault stream.
//
// Fault injection is delegated to internal/faultsim: Options.Faults
// accepts any faultsim.Plan (message drops, link bursts, partitions,
// vertex crashes and restarts, delivery delays), and the legacy
// Options.DropProb knob is implemented as a faultsim.BernoulliDrop layered
// under the plan.
package congest

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/faultsim"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Message is a wire payload annotated with its sender's vertex ID. It is
// a plain value (no pointers): messages move from shard outboxes into the
// round's inbox arena by value copy, with zero heap traffic.
type Message struct {
	//idspace:external
	From int
	Wire Wire
}

// Node is one vertex's state machine. Init runs before round 1 and may
// send messages (delivered in round 1). Round runs once per round with the
// messages delivered this round. A node that calls Context.Halt receives no
// further Round calls.
type Node interface {
	Init(ctx *Context)
	Round(ctx *Context, inbox []Message)
}

// Context is the per-node view of the network that the engine passes to
// Init and Round. It is only valid during the call it is passed to.
//
// Under a non-identity layout (Options.Layout) the engine stores vertices
// in permuted "internal" order but the context exposes only "external"
// (original) IDs: id, neighbors, and every Message.From are external.
// targets carries the internal ID of each neighbor, pairwise-aligned with
// neighbors, so sends address engine storage without a translation lookup;
// under the identity layout both slices alias the same CSR row.
type Context struct {
	//idspace:external
	id int
	n  int
	//idspace:external
	neighbors []int // external neighbor IDs, ascending
	//idspace:internal
	targets []int // internal neighbor IDs, aligned with neighbors
	rng     *rng.RNG
	round   int
	halted  bool
	shard   *shard
	runner  *Runner
}

type addressed struct {
	//idspace:internal
	to  int
	msg Message
}

// ID returns this vertex's identifier (0..N-1). In CONGEST nodes know their
// own O(log n)-bit ID and those of their neighbors.
func (c *Context) ID() int { return c.id }

// N returns the number of vertices in the network. (Algorithms in this repo
// use it only for parameterization that the model allows — e.g. knowing n
// up to a constant factor.)
func (c *Context) N() int { return c.n }

// Round returns the current round number, starting at 1. During Init it
// returns 0.
func (c *Context) Round() int { return c.round }

// Neighbors returns the sorted neighbor IDs. The slice aliases graph
// storage and must not be modified.
func (c *Context) Neighbors() []int { return c.neighbors }

// Degree returns the vertex degree.
func (c *Context) Degree() int { return len(c.neighbors) }

// RNG returns this node's private random stream. Draws are deterministic
// given the run seed and vertex ID, and no other node shares the stream.
func (c *Context) RNG() *rng.RNG { return c.rng }

// Send queues a message to neighbor `to` for delivery next round. Sending
// to a non-neighbor is a programming error and poisons the run with an
// error (the model has no routing). Send pays a binary search over the
// neighbor list to validate `to`; hot paths that already know the
// neighbor's position should use SendSlot instead.
func (c *Context) Send(to int, w Wire) {
	i := sort.SearchInts(c.neighbors, to)
	if i >= len(c.neighbors) || c.neighbors[i] != to {
		c.fail(fmt.Errorf("congest: node %d sent to non-neighbor %d", c.id, to))
		return
	}
	c.enqueue(c.targets[i], w)
}

// SendSlot queues a message to the i'th neighbor (Neighbors()[i]) for
// delivery next round. It addresses the neighbor by its slot in the
// adjacency list, so no neighbor-membership search is needed — this is the
// zero-overhead send for programs that iterate Neighbors() anyway. A slot
// outside [0, Degree()) poisons the run.
//
//congest:hotpath
func (c *Context) SendSlot(i int, w Wire) {
	if uint(i) >= uint(len(c.neighbors)) {
		//congest:coldpath slot violations poison the run; the error path may allocate
		c.fail(fmt.Errorf("congest: node %d sent to neighbor slot %d of %d", c.id, i, len(c.neighbors)))
		return
	}
	c.enqueue(c.targets[i], w)
}

// Broadcast queues a message to every neighbor for delivery next round,
// walking the adjacency list directly (no membership checks).
//
//congest:hotpath
func (c *Context) Broadcast(w Wire) {
	for _, v := range c.targets {
		c.enqueue(v, w)
	}
}

// BroadcastWire is Broadcast under the name the slot-addressed API family
// uses; both walk the neighbor slots directly.
//
//congest:hotpath
func (c *Context) BroadcastWire(w Wire) { c.Broadcast(w) }

// fail records the first model violation observed in this context's shard.
// Nodes within a shard are swept in ascending ID order and shards cover
// ascending contiguous ID ranges, so the surviving error is the lowest
// erring vertex's under every driver.
func (c *Context) fail(err error) {
	if c.shard.err == nil {
		c.shard.err = err
	}
}

// enqueue appends to the owning shard's outbox — the destination shard's
// bucket when the run is bucketed, out[0] otherwise. Only the worker that
// owns the shard runs this node, so the append is race-free, and because
// nodes within a shard are swept in ID order every bucket stays sorted by
// sender with per-sender append order preserved.
//
//idspace:internal to
//congest:hotpath
func (c *Context) enqueue(to int, w Wire) {
	if c.runner.opts.MessageBitLimit > 0 && int(w.Bits) > c.runner.opts.MessageBitLimit {
		//congest:coldpath oversized messages poison the run; the error path may allocate
		c.fail(fmt.Errorf("congest: node %d message of %d bits exceeds limit %d",
			c.id, w.Bits, c.runner.opts.MessageBitLimit))
		return
	}
	sh := c.shard
	d := 0
	if sh.vshard != nil {
		d = int(sh.vshard[to])
	}
	sh.out[d] = append(sh.out[d], addressed{to: to, msg: Message{From: c.id, Wire: w}})
}

// Halt marks this node finished. Messages queued in the same call are still
// delivered, but the node receives no further Round calls.
func (c *Context) Halt() { c.halted = true }

// Emit records a program-defined node-state transition on the run's
// execution trace (a trace.EvNodeState event with this vertex, the given
// code, and the given value — by convention code is a mis/proto
// announcement kind). It is a no-op when no trace sink is attached, so
// programs can instrument transitions unconditionally. Emission order is
// deterministic across drivers: events ride the same shard-ordered merge
// as messages.
func (c *Context) Emit(code int32, value int64) {
	if !c.runner.traced {
		return
	}
	c.shard.events = append(c.shard.events, trace.Event{
		Type:  trace.EvNodeState,
		Round: int32(c.round),
		V:     int32(c.id),
		X:     int64(code),
		Y:     value,
	})
}

// DriverKind selects the execution strategy for a run.
type DriverKind int

const (
	// DriverAuto picks the sequential driver, or the worker pool when
	// Options.Parallel is set. This is the zero value.
	DriverAuto DriverKind = iota
	// DriverSequential sweeps vertices in ID order on one goroutine.
	DriverSequential
	// DriverPool is the sharded worker-pool driver: GOMAXPROCS workers
	// (override with Options.Workers) each own a contiguous vertex shard.
	DriverPool
	// DriverGoroutinePerVertex is the legacy driver: one long-lived
	// goroutine and a channel round-trip per vertex per round. It exists
	// as a baseline for BENCH_congest.json and the engine benchmarks;
	// prefer DriverPool for real runs.
	DriverGoroutinePerVertex
	// DriverDistributed runs every shard in a separate OS process: the
	// coordinator exchanges round-batched frames with a fleet of shard
	// workers over unix sockets or TCP (see internal/distrib), performing
	// all fault/RNG draws itself in global sender order so executions stay
	// bit-identical with the in-process drivers. Requires Options.Fleet.
	DriverDistributed
)

// String names the driver for reports and benchmark output.
func (k DriverKind) String() string {
	switch k {
	case DriverSequential:
		return "sequential"
	case DriverPool:
		return "pool"
	case DriverGoroutinePerVertex:
		return "goroutine-per-vertex"
	case DriverDistributed:
		return "distributed"
	default:
		return "auto"
	}
}

// Options configures a run.
type Options struct {
	// Seed is the root seed; node v's stream is Split(v) of it.
	Seed uint64
	// MaxRounds aborts the run if the program has not halted by then.
	// Zero means the DefaultMaxRounds safety net.
	MaxRounds int
	// Parallel selects the sharded worker-pool driver (when Driver is
	// DriverAuto).
	Parallel bool
	// Driver, when not DriverAuto, selects the execution strategy
	// explicitly and takes precedence over Parallel.
	Driver DriverKind
	// Workers is the worker/shard count for the pool driver. Zero or
	// negative means GOMAXPROCS; the count is clamped to the vertex count.
	Workers int
	// MessageBitLimit, when positive, fails the run if any single message
	// exceeds that many bits (CONGEST compliance enforcement).
	MessageBitLimit int
	// Layout names the cache-conscious vertex ordering the engine applies
	// at ingest (see internal/layout): "" or "identity" keeps the original
	// labeling, "degsort" stores vertices by descending degree, "bfs"
	// clusters neighborhoods Cuthill–McKee style. Relabeling is invisible
	// to programs — contexts, messages, trace events, results, and errors
	// all carry original (external) IDs — but it changes the engine's
	// sweep and fault-draw order, so layout is part of run identity: trace
	// fingerprints are pinned per layout, and all drivers stay
	// bit-identical to each other within one. An unknown name fails Run
	// with the parse error.
	Layout string
	// NoRebalance disables the pool driver's live-weighted shard
	// rebalancing (see rebalance.go). Rebalancing re-partitions the
	// contiguous vertex ranges between rounds when the live histogram is
	// skewed; it changes which worker sweeps which vertex but not the
	// deterministic event stream or any program-visible state, so the knob
	// exists only for benchmarking the unbalanced baseline.
	NoRebalance bool
	// DropProb, when positive, drops each message independently with this
	// probability (deterministically, from a fault stream derived from
	// Seed).
	//
	// Deprecated: DropProb is the legacy uniform-loss knob, kept working
	// for callers and experiments that predate structured fault plans. It
	// is implemented as a faultsim.BernoulliDrop composed under Faults;
	// new code should set Faults directly.
	DropProb float64
	// Faults, when non-nil, is the fault-injection plan for the run: it
	// decides the fate of every message (drop, delay) and every vertex
	// (crash-stop, crash-restart) per round. Plans are consulted on the
	// coordinator in global sender order with a dedicated RNG stream split
	// from Seed, so faulted runs stay bit-identical across drivers. When
	// DropProb is also set, the Bernoulli layer is consulted first. This
	// deliberately breaks the reliable-delivery assumption of CONGEST; it
	// exists for robustness experiments only.
	Faults faultsim.Plan
	// Events, when non-nil, receives the run's typed execution-event
	// stream (see internal/trace): round boundaries and counters, fault
	// fates, node halts and program-emitted state transitions, and RNG
	// draw totals. Emission happens on the coordinator in an order that is
	// deterministic across drivers; tracing is purely observational and a
	// traced run is bit-identical to an untraced one. Attach a
	// trace.Recorder here to capture, export, or fingerprint a run.
	Events trace.Sink
	// EventTiming, when set alongside Events, adds the pool driver's
	// wall-clock shard-sweep and merge timing events (advisory: they are
	// real durations, not deterministic values).
	EventTiming bool
	// EventShardFlow, when set alongside Events, adds per-round message
	// counts per (source shard, destination shard) pair (advisory: shard
	// boundaries depend on the driver and worker count).
	EventShardFlow bool
	// Observer, when non-nil, is called after every completed round with
	// the round number, the number of nodes still live after it, and the
	// number of messages sent during it. Round 0 reports Init. It runs on
	// the coordinator (never concurrently) and must not retain the engine.
	//
	// Deprecated: Observer predates the event bus and is kept as a
	// bit-identical adapter over it (it fires on every trace.EvRoundEnd).
	// New code should attach a trace.Sink via Events instead.
	Observer func(round, live int, sent int64)
	// Fleet, when Driver is DriverDistributed, is the shard-worker fleet
	// the coordinator drives: one connection per contiguous vertex shard,
	// each backed by a separate OS process (see internal/distrib for the
	// socket transports). The fleet also serves as the respawn point for
	// crash recovery — a shard whose connection breaks mid-run is
	// restarted via Fleet.Shard and fast-forwarded from the coordinator's
	// round-input log. Ignored by the in-process drivers.
	Fleet Fleet
	// PoolObserver, when non-nil, receives per-round driver-efficiency
	// metrics (per-shard busy time, merge time, live-node histogram) from
	// the pool driver. It runs on the coordinator; the metric's slices are
	// reused between rounds and must not be retained. The sequential and
	// legacy drivers never call it.
	//
	// Deprecated: PoolObserver predates the event bus and is kept as an
	// adapter over its timing events (trace.EvShardBusy / trace.EvMerge).
	// New code should set Events with EventTiming instead.
	PoolObserver func(m PoolRoundMetrics)
}

// driverKind resolves the configured driver.
func (o Options) driverKind() DriverKind {
	if o.Driver != DriverAuto {
		return o.Driver
	}
	if o.Parallel {
		return DriverPool
	}
	return DriverSequential
}

// DefaultMaxRounds bounds runaway programs. It is generous: every algorithm
// in this repository finishes in O(log² n) rounds with overwhelming
// probability.
const DefaultMaxRounds = 1 << 20

// Result summarizes a completed run.
type Result struct {
	// Rounds is the number of communication rounds that ran to completion
	// (Init is round 0 and not counted; a program that halts every node in
	// Init reports 0). A round aborted mid-flight — by a model violation
	// such as a send to a non-neighbor — is not counted.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// TotalBits is the sum of payload sizes over all delivered messages.
	TotalBits int64
	// MaxMessageBits is the largest single payload observed.
	MaxMessageBits int
	// Dropped counts messages discarded by fault injection — random and
	// structured losses plus messages addressed to a crashed vertex.
	Dropped int64
	// Delayed counts messages the fault plan deferred to a later round.
	// A deferred message that is eventually delivered also counts in
	// Messages; one still in flight when the run ends does not.
	Delayed int64
}

// ErrMaxRounds reports that a run was aborted before all nodes halted.
var ErrMaxRounds = errors.New("congest: max rounds exceeded before all nodes halted")

// Runner executes a program over a graph. Construct with NewRunner; a
// Runner is single-use (Run may be called once).
type Runner struct {
	g      *graph.Graph // ingest graph, external labeling
	nodes  []Node       // indexed by internal ID
	opts   Options
	ran    bool
	traced bool // full event stream wanted; set before workers start, read-only after

	// Layout state (see internal/layout). Under the identity layout ig
	// aliases g and every other field is nil, so the engine runs exactly
	// the pre-layout code paths. Otherwise ig is the relabeled CSR the
	// drivers shard and sweep, perm/ext translate external↔internal IDs,
	// and the nbr arrays hold each internal vertex's neighbor row twice:
	// external IDs ascending (what contexts expose) pairwise-aligned with
	// internal IDs (what sends address).
	ig *graph.Graph
	//idspace:index external
	//idspace:internal
	perm []int // external ID -> internal ID; nil = identity
	//idspace:index internal
	//idspace:external
	ext    []int // internal ID -> external ID; nil = identity
	nbrOff []int // internal vertex -> offset into nbrExt/nbrInt
	//idspace:external
	nbrExt []int
	//idspace:internal
	nbrInt    []int
	layoutErr error // deferred to Run: NewRunner cannot return an error
}

// NewRunner builds a runner for the given graph. factory(v) must return the
// state machine for vertex v; it is called once per vertex in ascending
// external (original) ID order regardless of Options.Layout.
func NewRunner(g *graph.Graph, factory func(v int) Node, opts Options) *Runner {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = DefaultMaxRounds
	}
	r := &Runner{g: g, ig: g, opts: opts}
	r.resolveLayout()
	r.nodes = make([]Node, g.N())
	for v := 0; v < g.N(); v++ {
		p := v
		if r.perm != nil {
			p = r.perm[v]
		}
		r.nodes[p] = factory(v)
	}
	return r
}

// resolveLayout computes the configured ordering and relabels the graph.
// Failures (unknown ordering name) are recorded in layoutErr and poison
// Run; the runner falls back to identity internals so accessors stay safe.
func (r *Runner) resolveLayout() {
	o, err := layout.Parse(r.opts.Layout)
	if err != nil {
		r.layoutErr = err
		return
	}
	perm, ext, err := layout.Compute(r.g, o)
	if err != nil {
		r.layoutErr = err
		return
	}
	if perm == nil {
		return // identity: ig aliases g, nothing stored
	}
	ig, err := graph.Relabel(r.g, perm)
	if err != nil {
		r.layoutErr = err
		return
	}
	r.ig, r.perm, r.ext = ig, perm, ext
	// Build the dual neighbor rows: for internal vertex p, the external
	// IDs of its neighbors ascending, aligned with their internal IDs.
	n := ig.N()
	r.nbrOff = make([]int, n+1)
	for p := 0; p < n; p++ {
		r.nbrOff[p+1] = r.nbrOff[p] + ig.Degree(p)
	}
	r.nbrExt = make([]int, r.nbrOff[n])
	r.nbrInt = make([]int, r.nbrOff[n])
	for p := 0; p < n; p++ {
		extRow := r.nbrExt[r.nbrOff[p]:r.nbrOff[p+1]]
		intRow := r.nbrInt[r.nbrOff[p]:r.nbrOff[p+1]]
		for i, q := range ig.Neighbors(p) {
			extRow[i] = ext[q]
			intRow[i] = q
		}
		sort.Sort(&pairByExt{ext: extRow, tgt: intRow})
	}
}

// pairByExt sorts a (external ID, internal ID) neighbor-row pair by
// external ID, keeping the slices aligned.
type pairByExt struct{ ext, tgt []int }

func (s *pairByExt) Len() int           { return len(s.ext) }
func (s *pairByExt) Less(i, j int) bool { return s.ext[i] < s.ext[j] }
func (s *pairByExt) Swap(i, j int) {
	s.ext[i], s.ext[j] = s.ext[j], s.ext[i]
	s.tgt[i], s.tgt[j] = s.tgt[j], s.tgt[i]
}

// Node returns vertex v's state machine, for reading outputs after Run.
// v is the external (original) ID under every layout.
func (r *Runner) Node(v int) Node {
	if r.perm != nil {
		return r.nodes[r.perm[v]]
	}
	return r.nodes[v]
}

// Run executes the program to completion and returns run statistics. It
// returns ErrMaxRounds if any node is still live at the round limit, or the
// first model violation (send to non-neighbor, oversized message) detected.
func (r *Runner) Run() (Result, error) {
	if r.ran {
		return Result{}, errors.New("congest: Runner is single-use; construct a new one per run")
	}
	r.ran = true
	if r.layoutErr != nil {
		return Result{}, r.layoutErr
	}
	switch r.opts.driverKind() {
	case DriverPool:
		return r.runPool()
	case DriverGoroutinePerVertex:
		return r.runGoroutinePerVertex()
	case DriverDistributed:
		return r.runDistributed()
	default:
		return r.runSequential()
	}
}

// shard is a contiguous vertex range [lo, hi) owned by one worker. Its
// outboxes accumulate the messages its nodes send during a sweep, in
// (sender ID, send call) order per destination bucket; its frontier is a
// dense grow-only bitset of the not-yet-halted vertices in the range (see
// frontier.go). Only the owning worker touches a shard during a sweep; the
// coordinator reads and re-partitions it between sweeps (rebalance.go).
type shard struct {
	idx int // shard index; doubles as this shard's merge-bucket index
	//idspace:internal
	lo, hi    int      // owned contiguous vertex range [lo, hi)
	frontier  []uint64 // live bitset over [lo, hi); word 0 starts at (lo>>6)<<6
	liveCount int      // set bits in frontier (O(1) empty-shard skip)
	// out is the per-destination-bucket outbox family: out[d] holds the
	// messages this shard's nodes sent to vertices of destination shard d,
	// in send order. Unbucketed runs (sequential driver, fault plans,
	// shard-flow attribution, the legacy driver) use a single bucket and
	// out[0] is the classic global-send-order outbox.
	out    [][]addressed
	vshard []int32       // shared vertex→shard map for bucket routing (nil when unbucketed)
	events []trace.Event // program/halt events buffered during the sweep
	err    error         // first model violation by a node of this shard
	busy   int64         // sweep duration in nanoseconds, when timing is on

	// Bucketed-merge scratch, owned by this shard in its destination role:
	// mergeBase is the arena offset where the shard's inbox region starts,
	// and the merge* counters are the region's delivery tallies, folded
	// into Result by the coordinator in shard order after the merge.
	mergeBase int
	mergeMsgs int64
	mergeBits int64
	mergeMax  int
}

// execState is the driver-independent bookkeeping for a run.
type execState struct {
	ctxs   []Context
	shards []*shard

	// The flat inbox arena: one contiguous backing store for all of the
	// round's inboxes, sized by a counting pass over the shard outboxes
	// and reused across rounds (it only grows, so steady-state rounds
	// allocate nothing). Vertex v's inbox is arena[inboxOff[v] :
	// inboxOff[v]+inboxLen[v]] — inboxes are laid out in ascending vertex
	// order, so the sweep reads the arena sequentially.
	arena    []Message
	inboxOff []int // vertex -> arena offset of its inbox
	inboxLen []int // vertex -> messages delivered this round (write cursor)

	live      int
	res       Result
	plan      faultsim.Plan       // effective fault plan (nil = reliable network)
	faults    *rng.RNG            // coordinator-owned fault stream
	delayed   map[int][]addressed // in-flight messages keyed by consumption round
	delayFree [][]addressed       // drained delay buckets, kept for reuse
	sent      int64               // messages handed to delivery, any fate
	observed  int64               // sends already reported on the bus

	// Bucketed-merge state. buckets is the destination-bucket count per
	// shard outbox: numShards for the pool driver on a reliable network
	// (delivery decomposes into per-destination-shard merges that can run
	// on the workers), 1 otherwise (fault draws and flow attribution need
	// the global send order a single outbox preserves). parMerge, set by
	// the pool driver, dispatches one merge task per shard to the worker
	// pool and waits; nil means the coordinator merges the buckets itself.
	buckets    int
	parMerge   func()
	scratch    []uint64 // whole-graph frontier gather space for rebalancing
	rebalances int64    // rebalance count over the run

	// Event-bus state (see events.go). bus is nil when nothing listens;
	// full means a real sink (Options.Events) wants the rich stream, not
	// just the deprecated adapters.
	bus            trace.Sink
	full           bool
	flow           map[uint64]int64 // per-round (srcShard,dstShard) sends
	vshard         []int32          // vertex -> shard, for flow attribution
	lastDelivered  int64            // round-delta trackers for EvRoundEnd/EvRNG
	lastDropped    int64
	lastDraws      uint64
	lastFaultDraws uint64

	// Distributed-driver state: when remote is set, node RNG draws happen
	// in the shard worker processes and remoteDraws (the sum of the
	// workers' cumulative draw counts) replaces the coordinator-side
	// context scan in endRound — the coordinator's mirror contexts never
	// draw, so the scan would report zero.
	remote      bool
	remoteDraws uint64

	// Layout translation (mirrors Runner.ext/perm; nil = identity). The
	// engine's storage and sweep order are internal, but fault-plan
	// consults and trace-event vertex fields must speak external IDs.
	//
	//idspace:index internal
	//idspace:external
	ext []int
	//idspace:index external
	//idspace:internal
	perm []int
}

// extID translates an internal vertex ID to its external (original) ID.
// This is the one sanctioned internal→external crossing; misvet's idspace
// analyzer checks every other flow against the declared spaces.
//
//idspace:internal v
//idspace:returns external
//congest:hotpath
func (st *execState) extID(v int) int {
	if st.ext == nil {
		return v //idspace:ok identity layout: internal and external IDs coincide
	}
	return st.ext[v]
}

// effectivePlan resolves the run's fault model: the legacy DropProb knob
// becomes a BernoulliDrop layer consulted before any explicit plan, which
// keeps DropProb-only runs bit-identical to the pre-faultsim engine (one
// Bool draw per message from the same stream, in the same order).
func (o Options) effectivePlan() faultsim.Plan {
	plan := o.Faults
	if o.DropProb > 0 {
		drop := faultsim.BernoulliDrop{P: o.DropProb}
		if plan == nil {
			return drop
		}
		plan = faultsim.Compose(drop, plan)
	}
	return plan
}

// newExecState prepares contexts and shards. Shard boundaries split the
// vertex range into numShards near-equal contiguous pieces.
func (r *Runner) newExecState(numShards int) *execState {
	root := rng.New(r.opts.Seed)
	n := r.ig.N()
	if numShards > n {
		numShards = n
	}
	if numShards < 1 {
		numShards = 1
	}
	st := &execState{
		ctxs:     make([]Context, n),
		inboxOff: make([]int, n),
		inboxLen: make([]int, n),
		shards:   make([]*shard, numShards),
		live:     n,
		plan:     r.opts.effectivePlan(),
	}
	st.ext, st.perm = r.ext, r.perm
	if st.plan != nil {
		st.faults = root.Split(^uint64(0))
	}
	st.bus, st.full = r.opts.eventBus()
	r.traced = st.full
	flowWanted := st.full && r.opts.EventShardFlow
	// Destination-bucketed outboxes let delivery decompose into disjoint
	// per-shard merges (deliverBuckets); they require a reliable network
	// (fault draws consume the fault stream in global send order, which
	// only a single outbox preserves) and no flow attribution, and they
	// only pay off under the pool driver.
	st.buckets = 1
	if r.opts.driverKind() == DriverPool && numShards > 1 && st.plan == nil && !flowWanted {
		st.buckets = numShards
	}
	if flowWanted || st.buckets > 1 {
		st.vshard = make([]int32, n)
	}
	if flowWanted {
		st.flow = make(map[uint64]int64)
	}
	for s := range st.shards {
		lo, hi := s*n/numShards, (s+1)*n/numShards
		sh := &shard{idx: s, out: make([][]addressed, st.buckets)}
		sh.resetFrontier(lo, hi)
		if st.buckets > 1 {
			sh.vshard = st.vshard
		}
		for v := lo; v < hi; v++ {
			if st.vshard != nil {
				st.vshard[v] = int32(s)
			}
			// v is the internal ID; the context carries the external
			// identity (ID, neighbor list, RNG stream) so relabeling is
			// invisible to the program. Identity layout: both neighbor
			// slices alias the same CSR row and extv == v.
			extv, nbrs, tgts := v, r.ig.Neighbors(v), []int(nil)
			if r.perm != nil {
				extv = r.ext[v]
				nbrs = r.nbrExt[r.nbrOff[v]:r.nbrOff[v+1]]
				tgts = r.nbrInt[r.nbrOff[v]:r.nbrOff[v+1]]
			} else {
				tgts = nbrs
			}
			st.ctxs[v] = Context{
				id:        extv,
				n:         n,
				neighbors: nbrs,
				targets:   tgts,
				rng:       root.Split(uint64(extv)),
				shard:     sh,
				runner:    r,
			}
		}
		st.shards[s] = sh
	}
	return st
}

// sweepShard runs one round for every live node of a shard, in ascending
// ID order by iterating the frontier bitset word by word (set bits resolve
// low-to-high via TrailingZeros64, so bit order is ID order). A halted
// node's bit is cleared; a VertexGone fate also retires the bit so a run
// with permanent crashes can still terminate, while VertexDown leaves the
// bit set (the vertex is skipped this round only). Vertex fates are pure
// functions of (round, vertex), so concurrent shard workers agree with
// the sequential sweep.
//
//congest:hotpath
func (r *Runner) sweepShard(st *execState, sh *shard, round int) {
	base := sh.lo >> 6
	for wi := range sh.frontier {
		w := sh.frontier[wi]
		if w == 0 {
			continue
		}
		vbase := (base + wi) << 6
		for rem := w; rem != 0; {
			b := bits.TrailingZeros64(rem)
			rem &^= 1 << uint(b)
			v := vbase + b
			if round > 0 && st.plan != nil {
				switch st.plan.Vertex(round, st.extID(v)) {
				case faultsim.VertexGone:
					sh.frontier[wi] &^= 1 << uint(b)
					sh.liveCount--
					continue
				case faultsim.VertexDown:
					continue
				}
			}
			ctx := &st.ctxs[v]
			ctx.round = round
			if round == 0 {
				r.nodes[v].Init(ctx)
			} else {
				r.nodes[v].Round(ctx, st.inbox(v))
			}
			if ctx.halted {
				sh.frontier[wi] &^= 1 << uint(b)
				sh.liveCount--
				if r.traced {
					sh.events = append(sh.events, trace.Event{
						Type: trace.EvHalt, Round: int32(round), V: int32(st.extID(v)),
					})
				}
			}
		}
	}
}

// inbox returns vertex v's slice of the round's arena. The three-index
// form caps the slice at its own segment, so a program that (incorrectly)
// appends to its inbox forces a copy instead of corrupting a neighbor's
// inbox.
//
//congest:hotpath
func (st *execState) inbox(v int) []Message {
	off := st.inboxOff[v]
	end := off + st.inboxLen[v]
	return st.arena[off:end:end]
}

// deliver merges every shard's outbox into the next round's inboxes,
// applying the fault plan and accounting. round is the round that was just
// swept (the send round); its messages are consumed in round+1. It returns
// the first model violation recorded by any shard (shards cover ascending
// contiguous ID ranges and sweep in ID order, so the reported error is the
// lowest erring vertex's under every driver).
//
// Delivery is a two-pass scatter into the flat inbox arena. The counting
// pass upper-bounds each vertex's inbox (delayed messages due this round
// plus every outbox message addressed to it — drops only shorten a
// segment, never misplace one) and lays the inboxes out back-to-back via
// a prefix sum. The delivery pass then writes each admitted message at
// its recipient's cursor. Shards cover contiguous ascending ID ranges and
// each shard outbox is already in ascending sender order, so visiting
// shard outboxes in shard order delivers every inbox sorted by sender —
// no per-vertex append, no intermediate buffer, no sort, and the arena is
// reused across rounds so steady-state delivery allocates nothing. Fault
// decisions happen in that same global sender order (the counting pass
// consults no randomness), so fault stream consumption is identical
// across drivers. Messages a plan has delayed land ahead of the round's
// fresh traffic, in the order they were deferred (which is itself global
// send order, so the whole inbox is deterministic).
//
//congest:hotpath
func (r *Runner) deliver(st *execState, round int) error {
	for _, sh := range st.shards {
		if sh.err != nil {
			return sh.err
		}
	}
	st.drainShardEvents()
	if st.buckets > 1 {
		return st.deliverBuckets()
	}
	consume := round + 1
	var delayedNow []addressed
	if st.delayed != nil {
		delayedNow = st.delayed[consume]
	}

	// Counting pass: inboxLen doubles as the per-vertex counter, then the
	// prefix sum converts counts into offsets and resets the cursors.
	for v := range st.inboxLen {
		st.inboxLen[v] = 0
	}
	for _, a := range delayedNow {
		st.inboxLen[a.to]++
	}
	for _, sh := range st.shards {
		for _, a := range sh.out[0] {
			st.inboxLen[a.to]++
		}
	}
	total := 0
	for v, c := range st.inboxLen {
		st.inboxOff[v] = total
		st.inboxLen[v] = 0
		total += c
	}
	if cap(st.arena) < total {
		//congest:coldpath arena growth: the backing store only grows, so steady-state rounds never take this branch
		st.arena = make([]Message, total)
	} else {
		st.arena = st.arena[:total]
	}

	// Delivery pass: delayed messages first, then fresh traffic in shard
	// (= global sender) order.
	for _, a := range delayedNow {
		st.admit(a, consume)
	}
	if delayedNow != nil {
		st.delayFree = append(st.delayFree, delayedNow[:0])
		delete(st.delayed, consume)
	}
	for s, sh := range st.shards {
		if st.plan == nil && st.flow == nil {
			// Reliable fast path: no fates to draw, no flow to attribute.
			st.sent += int64(len(sh.out[0]))
			for _, a := range sh.out[0] {
				st.deposit(a)
			}
			sh.out[0] = sh.out[0][:0]
			continue
		}
		for _, a := range sh.out[0] {
			st.sent++
			if st.flow != nil {
				st.noteFlow(int32(s), a.to)
			}
			if st.plan != nil {
				fate := st.plan.Message(round, a.msg.From, st.extID(a.to), st.faults)
				if fate.Drop {
					st.res.Dropped++
					if st.full {
						st.bus.Emit(trace.Event{
							Type: trace.EvDrop, Round: int32(round),
							V: int32(a.msg.From), W: int32(st.extID(a.to)),
						})
					}
					continue
				}
				if fate.Delay > 0 {
					if st.delayed == nil {
						//congest:coldpath first delay fault of the run allocates the bucket map once
						st.delayed = make(map[int][]addressed)
					}
					at := consume + fate.Delay
					st.delayed[at] = st.appendDelayed(st.delayed[at], a)
					st.res.Delayed++
					if st.full {
						st.bus.Emit(trace.Event{
							Type: trace.EvDelay, Round: int32(round),
							V: int32(a.msg.From), W: int32(st.extID(a.to)), X: int64(fate.Delay),
						})
					}
					continue
				}
			}
			st.admit(a, consume)
		}
		sh.out[0] = sh.out[0][:0]
	}
	if st.flow != nil {
		st.emitFlow(round)
	}
	return nil
}

// parallelMergeMin is the outbox volume (messages in the round) below which
// deliverBuckets merges on the coordinator rather than dispatching merge
// tasks to the worker pool: under it, the channel round-trip costs more
// than the scatter it would parallelize.
const parallelMergeMin = 1 << 13

// deliverBuckets is delivery for bucketed runs (pool driver, reliable
// network, no flow attribution): every shard swept its nodes into
// per-destination-shard sub-outboxes, so shard d's whole inbox region is
// exactly {out[d] of every source shard} — a merge over disjoint arena
// ranges that can run per destination shard, in parallel, with no
// coordination beyond the range layout.
//
// Order is preserved exactly as in the single-outbox merge: recipient v's
// inbox concatenates source shards in ascending shard order (shards cover
// ascending contiguous ID ranges), and within a source bucket messages are
// in (sender ID, send call) order because the sweep visits nodes in ID
// order. That is the same sender-sorted inbox deliver produces, so bucketed
// and unbucketed runs are bit-identical.
//
//congest:hotpath
func (st *execState) deliverBuckets() error {
	// Region layout: shard d's inbox region starts where shard d-1's ends,
	// sized by the bucket lengths (a count pass over W² slice headers, not
	// messages).
	total := 0
	for _, dst := range st.shards {
		dst.mergeBase = total
		for _, src := range st.shards {
			total += len(src.out[dst.idx])
		}
	}
	if cap(st.arena) < total {
		//congest:coldpath arena growth: the backing store only grows, so steady-state rounds never take this branch
		st.arena = make([]Message, total)
	} else {
		st.arena = st.arena[:total]
	}
	if st.parMerge != nil && total >= parallelMergeMin {
		st.parMerge()
	} else {
		for d := range st.shards {
			st.mergeBucket(d)
		}
	}
	// Fold the per-region tallies into the run counters in shard order and
	// reset the buckets for the next sweep.
	for _, dst := range st.shards {
		st.sent += dst.mergeMsgs
		st.res.Messages += dst.mergeMsgs
		st.res.TotalBits += dst.mergeBits
		if dst.mergeMax > st.res.MaxMessageBits {
			st.res.MaxMessageBits = dst.mergeMax
		}
	}
	for _, src := range st.shards {
		for d := range src.out {
			src.out[d] = src.out[d][:0]
		}
	}
	return nil
}

// mergeBucket scatters destination shard d's inbox region: counting pass
// over every source shard's bucket for d, prefix sum from the region base,
// then the cursor scatter — the same two-pass layout as deliver, restricted
// to the region. Regions are disjoint in the arena and in inboxOff/inboxLen
// (shard vertex ranges partition [0, n)), so mergeBucket calls for distinct
// d are race-free and run on pool workers when volume warrants.
//
//congest:hotpath
func (st *execState) mergeBucket(d int) {
	dst := st.shards[d]
	for v := dst.lo; v < dst.hi; v++ {
		st.inboxLen[v] = 0
	}
	for _, src := range st.shards {
		for _, a := range src.out[d] {
			st.inboxLen[a.to]++
		}
	}
	off := dst.mergeBase
	for v := dst.lo; v < dst.hi; v++ {
		st.inboxOff[v] = off
		off += st.inboxLen[v]
		st.inboxLen[v] = 0
	}
	var msgs, totalBits int64
	maxBits := 0
	for _, src := range st.shards {
		for _, a := range src.out[d] {
			v := a.to
			st.arena[st.inboxOff[v]+st.inboxLen[v]] = a.msg
			st.inboxLen[v]++
			msgs++
			bits := int(a.msg.Wire.Bits)
			totalBits += int64(bits)
			if bits > maxBits {
				maxBits = bits
			}
		}
	}
	dst.mergeMsgs = msgs
	dst.mergeBits = totalBits
	dst.mergeMax = maxBits
}

// appendDelayed appends to a delay bucket, seeding empty buckets from the
// free list of previously drained ones so steady-state delay traffic
// reuses buffers instead of allocating.
//
//congest:hotpath
func (st *execState) appendDelayed(bucket []addressed, a addressed) []addressed {
	if bucket == nil && len(st.delayFree) > 0 {
		bucket = st.delayFree[len(st.delayFree)-1]
		st.delayFree = st.delayFree[:len(st.delayFree)-1]
	}
	return append(bucket, a)
}

// admit finalizes delivery of one message into its recipient's inbox for
// the given consumption round, unless the recipient is crashed then — a
// dead vertex is not listening, so the message is lost.
//
//congest:hotpath
func (st *execState) admit(a addressed, consume int) {
	if st.plan != nil && st.plan.Vertex(consume, st.extID(a.to)) != faultsim.VertexUp {
		st.res.Dropped++
		if st.full {
			// consume-1 is the round being delivered: event rounds stay
			// nondecreasing within the stream, which Bisect relies on.
			st.bus.Emit(trace.Event{
				Type: trace.EvDrop, Round: int32(consume - 1),
				V: int32(a.msg.From), W: int32(st.extID(a.to)), X: 1,
			})
		}
		return
	}
	st.deposit(a)
}

// deposit writes one delivered message at its recipient's arena cursor
// and folds it into the run counters.
//
//congest:hotpath
func (st *execState) deposit(a addressed) {
	v := a.to
	st.arena[st.inboxOff[v]+st.inboxLen[v]] = a.msg
	st.inboxLen[v]++
	st.res.Messages++
	bits := int(a.msg.Wire.Bits)
	st.res.TotalBits += int64(bits)
	if bits > st.res.MaxMessageBits {
		st.res.MaxMessageBits = bits
	}
}

// refreshLive recomputes the live-node count from the shard frontiers.
func (st *execState) refreshLive() {
	live := 0
	for _, sh := range st.shards {
		live += sh.liveCount
	}
	st.live = live
}

// runLoop is the coordinator shared by every driver: sweep round 0 (Init),
// then rounds 1, 2, ... until every node has halted. sweep(round) must run
// every live node once; afterRound, when non-nil, runs after each
// successfully delivered round, before the round-end event (the pool
// driver publishes its timing events there). Round reporting — the
// deprecated Observer/PoolObserver callbacks included — rides the event
// bus: startRound/endRound bracket each round on it.
//
// Result.Rounds is committed only after a round's delivery succeeds, so a
// run aborted by a mid-round model violation reports the last *completed*
// round, not the one that failed.
func (r *Runner) runLoop(st *execState, sweep func(round int), afterRound func(round int)) (Result, error) {
	r.startRound(st, 0)
	sweep(0)
	if err := r.deliver(st, 0); err != nil {
		return st.res, err
	}
	st.refreshLive()
	if afterRound != nil {
		afterRound(0)
	}
	r.endRound(st, 0)
	for round := 1; st.live > 0; round++ {
		if round > r.opts.MaxRounds {
			return st.res, fmt.Errorf("%w (limit %d, %d nodes live)", ErrMaxRounds, r.opts.MaxRounds, st.live)
		}
		r.startRound(st, round)
		sweep(round)
		if err := r.deliver(st, round); err != nil {
			return st.res, err
		}
		st.res.Rounds = round
		st.refreshLive()
		if afterRound != nil {
			afterRound(round)
		}
		r.endRound(st, round)
	}
	return st.res, nil
}

func (r *Runner) runSequential() (Result, error) {
	st := r.newExecState(1)
	return r.runLoop(st, func(round int) {
		for _, sh := range st.shards {
			r.sweepShard(st, sh, round)
		}
	}, nil)
}
