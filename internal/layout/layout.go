// Package layout computes cache-conscious vertex orderings: permutations
// that relabel a graph so the CSR adjacency arrays are walked in a
// locality-friendly order. The engine applies an ordering at ingest
// (congest.Options.Layout), storing vertices in permuted "internal" order
// while every user-visible surface keeps the original "external" IDs.
//
// An ordering is a pure function of the graph — no randomness, no
// wall-clock, no map iteration — so the same graph always yields the same
// permutation and relabeled runs stay bit-identical across drivers. The
// permutation convention matches graph.Relabel: perm[v] is the new
// (internal) ID of original vertex v, and inv[p] recovers the original ID
// of internal vertex p.
package layout

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Ordering names a vertex-relabeling strategy.
type Ordering string

const (
	// Identity keeps the ingest labeling: internal and external IDs
	// coincide and the engine stores nothing extra. The default.
	Identity Ordering = "identity"
	// DegSort orders vertices by degree descending, ties broken by
	// original ID ascending. High-degree hubs land at the front of the
	// CSR arrays, so the rows touched most often share cache lines.
	DegSort Ordering = "degsort"
	// BFS is a Cuthill–McKee-style ordering: each connected component is
	// traversed breadth-first from a deterministic minimum-degree root,
	// visiting unplaced neighbors in (degree ascending, ID ascending)
	// order. Neighbors receive nearby internal IDs, which clusters the
	// adjacency walks of neighborhood-local algorithms.
	BFS Ordering = "bfs"
)

// Orderings lists every supported ordering, Identity first.
func Orderings() []Ordering { return []Ordering{Identity, DegSort, BFS} }

// Parse resolves an ordering name. The empty string means Identity, so
// zero-valued options keep today's behavior; an unknown name is an error
// (never a panic) with the accepted set in the message.
func Parse(s string) (Ordering, error) {
	switch Ordering(s) {
	case "", Identity:
		return Identity, nil
	case DegSort:
		return DegSort, nil
	case BFS:
		return BFS, nil
	default:
		return "", fmt.Errorf("layout: unknown ordering %q (want identity|degsort|bfs)", s)
	}
}

// Compute returns the permutation for an ordering over g: perm maps
// original ID → internal ID and inv maps internal ID → original ID.
// Identity returns (nil, nil, nil) — the caller stores nothing and skips
// the relabel entirely, which is what keeps the default path byte-for-byte
// identical to the pre-layout engine.
func Compute(g *graph.Graph, o Ordering) (perm, inv []int, err error) {
	switch o {
	case Identity:
		return nil, nil, nil
	case DegSort:
		inv = degsortOrder(g)
	case BFS:
		inv = bfsOrder(g)
	default:
		return nil, nil, fmt.Errorf("layout: unknown ordering %q (want identity|degsort|bfs)", o)
	}
	perm = make([]int, len(inv))
	for p, v := range inv {
		perm[v] = p
	}
	return perm, inv, nil
}

// degsortOrder returns the visitation order (internal → original) of the
// DegSort ordering: degree descending, ties by original ID ascending.
// The returned slice holds external (original) IDs.
//
//idspace:returns external
func degsortOrder(g *graph.Graph) []int {
	n := g.N()
	order := make([]int, n)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return order
}

// bfsOrder returns the visitation order of the BFS (Cuthill–McKee-style)
// ordering. Components are discovered by scanning original IDs ascending;
// each component is rooted at its minimum-degree vertex (ties by lowest
// ID) and traversed breadth-first, appending unplaced neighbors sorted by
// (degree ascending, ID ascending). Every step is a deterministic function
// of the graph. The returned slice holds external (original) IDs.
//
//idspace:returns external
func bfsOrder(g *graph.Graph) []int {
	n := g.N()
	order := make([]int, 0, n)
	placed := make([]bool, n)
	var comp, queue, frontier []int
	for s := 0; s < n; s++ {
		if placed[s] {
			continue
		}
		// Discover the component of s (membership only; order comes from
		// the rooted traversal below).
		comp = append(comp[:0], s)
		placed[s] = true
		for i := 0; i < len(comp); i++ {
			for _, w := range g.Neighbors(comp[i]) {
				if !placed[w] {
					placed[w] = true
					comp = append(comp, w)
				}
			}
		}
		root := comp[0]
		for _, v := range comp {
			if dv, dr := g.Degree(v), g.Degree(root); dv < dr || (dv == dr && v < root) {
				root = v
			}
		}
		// Cuthill–McKee from the root. placed bits were consumed by the
		// discovery pass, so reset them for the traversal's visited role.
		for _, v := range comp {
			placed[v] = false
		}
		placed[root] = true
		queue = append(queue[:0], root)
		for i := 0; i < len(queue); i++ {
			v := queue[i]
			order = append(order, v)
			frontier = frontier[:0]
			for _, w := range g.Neighbors(v) {
				if !placed[w] {
					placed[w] = true
					frontier = append(frontier, w)
				}
			}
			sort.Slice(frontier, func(a, b int) bool {
				da, db := g.Degree(frontier[a]), g.Degree(frontier[b])
				if da != db {
					return da < db
				}
				return frontier[a] < frontier[b]
			})
			queue = append(queue, frontier...)
		}
	}
	return order
}
