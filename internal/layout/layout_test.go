package layout

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// checkPermutation fails unless perm and inv are mutually inverse
// permutations of 0..n-1.
func checkPermutation(t *testing.T, n int, perm, inv []int) {
	t.Helper()
	if len(perm) != n || len(inv) != n {
		t.Fatalf("perm/inv lengths %d/%d, want %d", len(perm), len(inv), n)
	}
	seen := make([]bool, n)
	for v, p := range perm {
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("perm is not a permutation at %d -> %d", v, p)
		}
		seen[p] = true
		if inv[p] != v {
			t.Fatalf("inv[%d] = %d, want %d", p, inv[p], v)
		}
	}
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Ordering
	}{
		{"", Identity},
		{"identity", Identity},
		{"degsort", DegSort},
		{"bfs", BFS},
	} {
		got, err := Parse(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("Parse(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"hilbert", "BFS", "deg-sort", "identity "} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted an unknown ordering", bad)
		}
	}
}

func TestOrderingsListsIdentityFirst(t *testing.T) {
	all := Orderings()
	if len(all) < 3 || all[0] != Identity {
		t.Fatalf("Orderings() = %v, want Identity first and at least 3 entries", all)
	}
	for _, o := range all {
		if _, err := Parse(string(o)); err != nil {
			t.Fatalf("Orderings() entry %q does not Parse: %v", o, err)
		}
	}
}

func TestComputeIdentityIsNil(t *testing.T) {
	g := gen.UnionOfTrees(64, 2, rng.New(1))
	perm, inv, err := Compute(g, Identity)
	if err != nil || perm != nil || inv != nil {
		t.Fatalf("Compute(identity) = %v, %v, %v; want nil, nil, nil", perm, inv, err)
	}
}

func TestComputeRejectsUnknown(t *testing.T) {
	g := gen.UnionOfTrees(8, 2, rng.New(1))
	if _, _, err := Compute(g, Ordering("hilbert")); err == nil {
		t.Fatal("Compute accepted an unknown ordering")
	}
}

func TestDegSortOrder(t *testing.T) {
	g := gen.PreferentialAttachment(256, 3, rng.New(7))
	perm, inv, err := Compute(g, DegSort)
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, g.N(), perm, inv)
	for p := 1; p < g.N(); p++ {
		da, db := g.Degree(inv[p-1]), g.Degree(inv[p])
		if da < db {
			t.Fatalf("degsort not degree-descending at internal %d: %d then %d", p, da, db)
		}
		if da == db && inv[p-1] > inv[p] {
			t.Fatalf("degsort tie at degree %d not broken by ID: %d before %d", da, inv[p-1], inv[p])
		}
	}
}

func TestBFSOrderIsPermutation(t *testing.T) {
	r := rng.New(99)
	for _, g := range []*graph.Graph{
		gen.RandomTree(200, r.Split(1)),
		gen.UnionOfTrees(200, 3, r.Split(2)),
		gen.GNP(100, 0.05, r.Split(3)),
		graph.MustNew(5, nil), // edgeless: every vertex its own component
	} {
		perm, inv, err := Compute(g, BFS)
		if err != nil {
			t.Fatal(err)
		}
		checkPermutation(t, g.N(), perm, inv)
	}
}

// TestBFSOrderClustersPath pins the ordering's point: on a path graph with
// scrambled labels, BFS relabeling must restore a small bandwidth (each
// vertex's neighbors within a few internal IDs) where the scrambled
// labeling has bandwidth ~n.
func TestBFSOrderClustersPath(t *testing.T) {
	n := 512
	var edges []graph.Edge
	for v := 0; v+1 < n; v++ {
		edges = append(edges, graph.Edge{U: v, V: v + 1})
	}
	path := graph.MustNew(n, edges)
	scramble := rng.New(5).Perm(n)
	scrambled, err := graph.Relabel(path, scramble)
	if err != nil {
		t.Fatal(err)
	}
	perm, _, err := Compute(scrambled, BFS)
	if err != nil {
		t.Fatal(err)
	}
	bandwidth := func(g *graph.Graph, perm []int) int {
		max := 0
		for v := 0; v < g.N(); v++ {
			pv := v
			if perm != nil {
				pv = perm[v]
			}
			for _, w := range g.Neighbors(v) {
				pw := w
				if perm != nil {
					pw = perm[w]
				}
				if d := pv - pw; d > max {
					max = d
				} else if -d > max {
					max = -d
				}
			}
		}
		return max
	}
	if before := bandwidth(scrambled, nil); before < n/4 {
		t.Fatalf("scrambled path bandwidth %d unexpectedly small; test premise broken", before)
	}
	if after := bandwidth(scrambled, perm); after > 2 {
		t.Fatalf("BFS-relabelled path bandwidth %d, want <= 2 (a path re-linearizes)", after)
	}
}

// TestComputeDeterministic re-runs every ordering on the same graph: the
// permutations must be byte-identical (layout is part of run identity, so
// any instability would break pinned fingerprints).
func TestComputeDeterministic(t *testing.T) {
	g := gen.UnionOfTrees(300, 3, rng.New(42))
	for _, o := range Orderings() {
		p1, i1, err := Compute(g, o)
		if err != nil {
			t.Fatal(err)
		}
		p2, i2, err := Compute(g, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p1, p2) || !reflect.DeepEqual(i1, i2) {
			t.Fatalf("%s: Compute is not deterministic", o)
		}
	}
}

// TestRelabeledIsomorphic checks the full ingest pass: relabeling by a
// computed ordering preserves the graph up to the permutation.
func TestRelabeledIsomorphic(t *testing.T) {
	g := gen.UnionOfTrees(128, 2, rng.New(9))
	for _, o := range []Ordering{DegSort, BFS} {
		perm, inv, err := Compute(g, o)
		if err != nil {
			t.Fatal(err)
		}
		h, err := graph.Relabel(g, perm)
		if err != nil {
			t.Fatal(err)
		}
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("%s: relabeled graph n=%d m=%d, want %d/%d", o, h.N(), h.M(), g.N(), g.M())
		}
		for p := 0; p < h.N(); p++ {
			v := inv[p]
			if h.Degree(p) != g.Degree(v) {
				t.Fatalf("%s: internal %d degree %d, external %d degree %d", o, p, h.Degree(p), v, g.Degree(v))
			}
			for _, q := range h.Neighbors(p) {
				if !g.HasEdge(v, inv[q]) {
					t.Fatalf("%s: relabeled edge (%d,%d) has no preimage (%d,%d)", o, p, q, v, inv[q])
				}
			}
		}
	}
}
