// Package stats provides the small statistics toolkit used by the
// experiment harness: streaming summaries, quantiles, histograms, simple
// regression for scaling exponents, and fixed-width table rendering.
//
// The package is deliberately self-contained (stdlib only) and allocation
// conscious: experiment sweeps record millions of samples.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates a stream of float64 samples using Welford's online
// algorithm, which is numerically stable for long streams. The zero value is
// an empty summary ready for use.
type Summary struct {
	n        int
	mean     float64
	m2       float64
	min, max float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddN records n copies of x in constant time, by merging the closed-form
// summary of n identical samples (mean x, zero second moment) via the
// Chan et al. parallel-merge update that Merge implements.
func (s *Summary) AddN(x float64, n int) {
	if n <= 0 {
		return
	}
	batch := Summary{n: n, mean: x, min: x, max: x}
	s.Merge(&batch)
}

// N returns the number of samples recorded.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or NaN if empty.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Var returns the unbiased sample variance, or NaN if fewer than 2 samples.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample, or NaN if empty.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest sample, or NaN if empty.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean, or NaN if fewer than 2 samples.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return 1.96 * s.Std() / math.Sqrt(float64(s.n))
}

// String renders the summary as "mean ± ci95 (min..max, n=N)".
func (s *Summary) String() string {
	if s.n == 0 {
		return "(empty)"
	}
	return fmt.Sprintf("%.3f ± %.3f (%.3f..%.3f, n=%d)", s.Mean(), s.CI95(), s.Min(), s.Max(), s.n)
}

// Merge folds other into s, as if every sample of other had been Added to s.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	nA, nB := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	total := nA + nB
	s.mean += delta * nB / total
	s.m2 += other.m2 + delta*delta*nA*nB/total
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs. Returns NaN
// for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MaxInt returns the maximum of xs, or 0 for an empty slice.
func MaxInt(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Histogram counts samples into equal-width bins over [lo, hi]. Samples
// outside the range are clamped into the first/last bin so totals are
// preserved.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi].
// It panics if bins <= 0 or hi <= lo (caller bug, not data-dependent).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// FitResult holds the slope/intercept of a least-squares line y = a + b*x
// plus the coefficient of determination.
type FitResult struct {
	Intercept float64
	Slope     float64
	R2        float64
}

// LinearFit fits y = a + b*x by ordinary least squares. It returns a zero
// FitResult and false if fewer than two distinct x values are supplied.
func LinearFit(xs, ys []float64) (FitResult, bool) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return FitResult{}, false
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return FitResult{}, false
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 0.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return FitResult{Intercept: a, Slope: b, R2: r2}, true
}

// PowerFit fits y = c * x^e by log-log least squares, returning (c, e).
// Points with non-positive coordinates are skipped; it returns false if
// fewer than two usable points remain.
func PowerFit(xs, ys []float64) (c, e float64, ok bool) {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	fit, ok := LinearFit(lx, ly)
	if !ok {
		return 0, 0, false
	}
	return math.Exp(fit.Intercept), fit.Slope, true
}

// Table renders aligned plain-text tables for the experiment harness.
// The zero value is not usable; construct with NewTable.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v. Short rows are padded.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			switch v := cells[i].(type) {
			case float64:
				row[i] = FormatFloat(v)
			default:
				row[i] = fmt.Sprintf("%v", v)
			}
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes in scientific notation, everything else with 3 decimals.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case v != 0 && math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Log2 returns log base 2 of x.
func Log2(x float64) float64 { return math.Log2(x) }

// LogStar returns the iterated logarithm (base 2) of x: the number of times
// log2 must be applied before the result is <= 1. LogStar(x) = 0 for x <= 1.
func LogStar(x float64) int {
	n := 0
	for x > 1 {
		x = math.Log2(x)
		n++
	}
	return n
}

// CSV renders the table as RFC-4180-ish CSV (no quoting needed: cells are
// numbers and simple labels). The title is omitted; the header row leads.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.headers)
	for _, row := range t.rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}
