package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEqual(s.Mean(), 3, 1e-12) {
		t.Fatalf("mean = %v", s.Mean())
	}
	if !almostEqual(s.Var(), 2.5, 1e-12) {
		t.Fatalf("var = %v", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Var()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatal("empty summary should report NaN")
	}
	if s.String() != "(empty)" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSummarySingleSample(t *testing.T) {
	var s Summary
	s.Add(7)
	if s.Mean() != 7 || s.Min() != 7 || s.Max() != 7 {
		t.Fatal("single-sample summary wrong")
	}
	if !math.IsNaN(s.Var()) {
		t.Fatal("variance of one sample should be NaN")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	r := rng.New(1)
	if err := quick.Check(func(seed uint64) bool {
		rr := r.Split(seed)
		nA, nB := 1+rr.Intn(50), 1+rr.Intn(50)
		var a, b, all Summary
		for i := 0; i < nA; i++ {
			x := rr.Float64() * 100
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < nB; i++ {
			x := rr.Float64() * 100
			b.Add(x)
			all.Add(x)
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			almostEqual(a.Mean(), all.Mean(), 1e-9) &&
			almostEqual(a.Var(), all.Var(), 1e-6) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeIntoEmpty(t *testing.T) {
	var a, b Summary
	b.Add(3)
	b.Add(5)
	a.Merge(&b)
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatalf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	var c Summary
	a.Merge(&c) // merging empty is a no-op
	if a.N() != 2 {
		t.Fatal("merging empty changed summary")
	}
}

func TestAddN(t *testing.T) {
	var s Summary
	s.AddN(2.5, 4)
	if s.N() != 4 || s.Mean() != 2.5 {
		t.Fatalf("AddN: n=%d mean=%v", s.N(), s.Mean())
	}
	s.AddN(3.0, 0)
	s.AddN(3.0, -2)
	if s.N() != 4 {
		t.Fatalf("AddN with n<=0 changed the summary: n=%d", s.N())
	}
}

// TestAddNMatchesRepeatedAdd pins the batched Welford update to the
// reference semantics: AddN(x, n) must agree with n repeated Adds to float
// tolerance in every statistic, including when interleaved with other
// samples.
func TestAddNMatchesRepeatedAdd(t *testing.T) {
	close := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return math.IsNaN(a) == math.IsNaN(b)
		}
		scale := math.Max(math.Abs(a), math.Abs(b))
		return math.Abs(a-b) <= 1e-9*math.Max(scale, 1)
	}
	steps := []struct {
		x float64
		n int
	}{
		{2.5, 1000}, {-7.25, 1}, {0.125, 313}, {1e6, 7}, {-3.5, 42},
	}
	var batched, repeated Summary
	for _, st := range steps {
		batched.AddN(st.x, st.n)
		for i := 0; i < st.n; i++ {
			repeated.Add(st.x)
		}
		if batched.N() != repeated.N() {
			t.Fatalf("N: %d vs %d", batched.N(), repeated.N())
		}
		checks := []struct {
			name string
			a, b float64
		}{
			{"mean", batched.Mean(), repeated.Mean()},
			{"var", batched.Var(), repeated.Var()},
			{"min", batched.Min(), repeated.Min()},
			{"max", batched.Max(), repeated.Max()},
		}
		for _, c := range checks {
			if !close(c.a, c.b) {
				t.Fatalf("after AddN(%v, %d): %s = %v, repeated Add gives %v",
					st.x, st.n, c.name, c.a, c.b)
			}
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// xs must not be modified.
	if xs[0] != 5 {
		t.Fatal("Quantile modified its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile of empty should be NaN")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("median of {0,10} = %v", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestMaxInt(t *testing.T) {
	if got := MaxInt([]int{3, 9, 2}); got != 9 {
		t.Fatalf("MaxInt = %d", got)
	}
	if got := MaxInt(nil); got != 0 {
		t.Fatalf("MaxInt(nil) = %d", got)
	}
	if got := MaxInt([]int{-5, -2}); got != -2 {
		t.Fatalf("MaxInt negatives = %d", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 5, 7, 9, 9.99} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	want := []int{2, 1, 1, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d: got %d want %d (all %v)", i, h.Counts[i], w, h.Counts)
		}
	}
}

func TestHistogramClamps(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(-100)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
	if !almostEqual(h.Fraction(0), 0.5, 1e-12) {
		t.Fatalf("Fraction = %v", h.Fraction(0))
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 5)
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, ok := LinearFit(xs, ys)
	if !ok {
		t.Fatal("fit failed")
	}
	if !almostEqual(fit.Slope, 2, 1e-9) || !almostEqual(fit.Intercept, 1, 1e-9) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, ok := LinearFit([]float64{1}, []float64{1}); ok {
		t.Fatal("single point should not fit")
	}
	if _, ok := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); ok {
		t.Fatal("vertical data should not fit")
	}
}

func TestPowerFit(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	c, e, ok := PowerFit(xs, ys)
	if !ok {
		t.Fatal("power fit failed")
	}
	if !almostEqual(c, 3, 1e-6) || !almostEqual(e, 1.5, 1e-9) {
		t.Fatalf("c=%v e=%v", c, e)
	}
}

func TestPowerFitSkipsNonPositive(t *testing.T) {
	_, _, ok := PowerFit([]float64{-1, 0, 1}, []float64{1, 1, 1})
	if ok {
		t.Fatal("only one usable point; fit should fail")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "n", "rounds")
	tbl.AddRow(1024, 12.0)
	tbl.AddRow(2048, 13.5)
	out := tbl.String()
	for _, want := range []string{"demo", "n", "rounds", "1024", "13.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow(1)
	out := tbl.String()
	if !strings.Contains(out, "1") {
		t.Fatalf("missing cell:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{3.14159, "3.142"},
		{0.00001, "1.00e-05"},
		{math.NaN(), "NaN"},
		{0, "0"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLogStar(t *testing.T) {
	cases := []struct {
		in   float64
		want int
	}{
		{1, 0}, {2, 1}, {4, 2}, {16, 3}, {65536, 4}, {1e18, 5},
	}
	for _, c := range cases {
		if got := LogStar(c.in); got != c.want {
			t.Errorf("LogStar(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := rng.New(2)
	var small, large Summary
	for i := 0; i < 100; i++ {
		small.Add(r.Float64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(r.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("ignored title", "n", "label", "x")
	tbl.AddRow(1, "plain", 2.5)
	tbl.AddRow(2, `with,comma`, 3.0)
	out := tbl.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "n,label,x" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %q", lines[2])
	}
	if strings.Contains(out, "ignored title") {
		t.Fatal("CSV includes title")
	}
}
