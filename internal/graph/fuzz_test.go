package graph

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// FuzzReadEdgeList exercises the parser against arbitrary input: it must
// either return an error or a structurally valid graph that round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("3 2\n0 1\n1 2\n")
	f.Add("0 0\n")
	f.Add("2 1\n0 1\n")
	f.Add("garbage")
	f.Add("5 1\n4 4\n")
	f.Add("3 2\n0 1\n")
	f.Add("-1 0\n")
	f.Add("1000000000 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		// Guard against astronomically large declared sizes: the parser
		// allocates n+m proportional structures, which is correct behaviour
		// but useless to fuzz.
		var n, m int
		if _, err := parseHeader(input, &n, &m); err == nil && (n > 1<<16 || m > 1<<16 || n < 0 || m < 0) {
			return
		}
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return // rejecting is always acceptable
		}
		// Accepted graphs must be internally consistent and round-trip.
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
			for _, w := range g.Neighbors(v) {
				if w < 0 || w >= g.N() || w == v {
					t.Fatalf("invalid neighbor %d of %d", w, v)
				}
				if !g.HasEdge(w, v) {
					t.Fatalf("asymmetric edge (%d,%d)", v, w)
				}
			}
		}
		if sum != 2*g.M() {
			t.Fatalf("handshake violated: %d vs %d", sum, 2*g.M())
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}

// parseHeader peeks at the "n m" header without committing to a parse.
func parseHeader(s string, n, m *int) (int, error) {
	return fmt.Fscan(strings.NewReader(s), n, m)
}

// FuzzNewGraph exercises the constructor with arbitrary edge soup encoded
// as byte pairs: it must reject invalid edges and otherwise produce a
// consistent simple graph.
func FuzzNewGraph(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 1, 2, 2, 3})
	f.Add(uint8(2), []byte{0, 0})
	f.Add(uint8(0), []byte{})
	f.Add(uint8(3), []byte{0, 1, 0, 1, 1, 0})
	f.Fuzz(func(t *testing.T, n uint8, raw []byte) {
		if len(raw) > 2048 {
			return
		}
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{U: int(raw[i]), V: int(raw[i+1])})
		}
		g, err := New(int(n), edges)
		valid := true
		for _, e := range edges {
			if e.U == e.V || e.U >= int(n) || e.V >= int(n) {
				valid = false
			}
		}
		if !valid {
			if err == nil {
				t.Fatal("invalid edge accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("valid input rejected: %v", err)
		}
		// Dedup semantics: M is the number of distinct undirected pairs.
		distinct := map[[2]int]bool{}
		for _, e := range edges {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			distinct[[2]int{u, v}] = true
		}
		if g.M() != len(distinct) {
			t.Fatalf("M = %d, distinct pairs = %d", g.M(), len(distinct))
		}
	})
}
