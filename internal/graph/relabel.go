package graph

import (
	"fmt"
	"sort"
)

// Relabel returns an isomorphic copy of g with vertex v renamed to
// perm[v]; perm must be a permutation of 0..n-1. Unlike reconstructing
// from an edge list, the copy is built row-by-row straight into CSR form:
// new vertex p's row is old vertex inv[p]'s neighbors mapped through perm
// and re-sorted. This is the ingest pass the engine's cache-conscious
// layouts (internal/layout, congest.Options.Layout) and the dynamic-MIS
// engine apply, so it avoids the O(m) edge-struct materialization.
func Relabel(g *Graph, perm []int) (*Graph, error) {
	n := g.N()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation has %d entries for %d vertices", len(perm), n)
	}
	inv := make([]int, n)
	for i := range inv {
		inv[i] = -1
	}
	for v, p := range perm {
		if p < 0 || p >= n || inv[p] >= 0 {
			return nil, fmt.Errorf("graph: not a permutation (at %d)", p)
		}
		inv[p] = v
	}
	offsets := make([]int, n+1)
	for p := 0; p < n; p++ {
		offsets[p+1] = offsets[p] + g.Degree(inv[p])
	}
	adj := make([]int, offsets[n])
	for p := 0; p < n; p++ {
		row := adj[offsets[p]:offsets[p+1]]
		for i, w := range g.Neighbors(inv[p]) {
			row[i] = perm[w]
		}
		sort.Ints(row)
	}
	return &Graph{offsets: offsets, adj: adj}, nil
}
