package graph

import (
	"testing"

	"repro/internal/rng"
)

func TestDegeneracyOfForest(t *testing.T) {
	g := path(50)
	_, d := g.DegeneracyOrder()
	if d != 1 {
		t.Fatalf("degeneracy of path = %d, want 1", d)
	}
}

func TestDegeneracyOfCycle(t *testing.T) {
	_, d := cycle(10).DegeneracyOrder()
	if d != 2 {
		t.Fatalf("degeneracy of cycle = %d, want 2", d)
	}
}

func TestDegeneracyOfComplete(t *testing.T) {
	_, d := complete(6).DegeneracyOrder()
	if d != 5 {
		t.Fatalf("degeneracy of K6 = %d, want 5", d)
	}
}

func TestDegeneracyOrderIsPermutation(t *testing.T) {
	r := rng.New(1)
	g := randomGraph(r, 60, 0.1)
	order, _ := g.DegeneracyOrder()
	if len(order) != g.N() {
		t.Fatalf("order length %d", len(order))
	}
	seen := make([]bool, g.N())
	for _, v := range order {
		if seen[v] {
			t.Fatalf("vertex %d repeated", v)
		}
		seen[v] = true
	}
}

func TestDegeneracyOrderProperty(t *testing.T) {
	// Every vertex must have at most `degeneracy` neighbors later in the
	// order — the defining property used by OrientByDegeneracy.
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 50, 0.1)
		order, d := g.DegeneracyOrder()
		pos := make([]int, g.N())
		for i, v := range order {
			pos[v] = i
		}
		for v := 0; v < g.N(); v++ {
			later := 0
			for _, w := range g.Neighbors(v) {
				if pos[w] > pos[v] {
					later++
				}
			}
			if later > d {
				t.Fatalf("vertex %d has %d later neighbors, degeneracy %d", v, later, d)
			}
		}
	}
}

func TestOrientByDegeneracy(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 40, 0.15)
		o, d := g.OrientByDegeneracy()
		if err := o.Validate(); err != nil {
			t.Fatal(err)
		}
		if o.MaxOutDegree() > d {
			t.Fatalf("out-degree %d exceeds degeneracy %d", o.MaxOutDegree(), d)
		}
	}
}

func TestOrientationParentsChildrenConsistent(t *testing.T) {
	r := rng.New(4)
	g := randomGraph(r, 30, 0.2)
	o, _ := g.OrientByDegeneracy()
	for v := 0; v < g.N(); v++ {
		for _, p := range o.Parents(v) {
			found := false
			for _, c := range o.Children(p) {
				if c == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("%d is parent of %d but %d not child of %d", p, v, v, p)
			}
		}
	}
}

func TestOrientByOrderWrongLength(t *testing.T) {
	g := path(5)
	if _, err := g.OrientByOrder([]int{0, 1}); err == nil {
		t.Fatal("wrong-length position accepted")
	}
}

func TestOrientationDegreeSum(t *testing.T) {
	r := rng.New(5)
	g := randomGraph(r, 35, 0.2)
	o, _ := g.OrientByDegeneracy()
	outSum, inSum := 0, 0
	for v := 0; v < g.N(); v++ {
		outSum += len(o.Parents(v))
		inSum += len(o.Children(v))
	}
	if outSum != g.M() || inSum != g.M() {
		t.Fatalf("out=%d in=%d m=%d", outSum, inSum, g.M())
	}
}

func TestArboricityBoundsTree(t *testing.T) {
	lo, hi := path(100).ArboricityBounds()
	if lo != 1 || hi != 1 {
		t.Fatalf("tree arboricity bounds [%d,%d], want [1,1]", lo, hi)
	}
}

func TestArboricityBoundsComplete(t *testing.T) {
	// K6: arboricity = ceil(15/5) = 3; degeneracy 5.
	lo, hi := complete(6).ArboricityBounds()
	if lo != 3 {
		t.Fatalf("K6 lower bound = %d, want 3", lo)
	}
	if hi < lo {
		t.Fatalf("bounds inverted: [%d,%d]", lo, hi)
	}
}

func TestArboricityBoundsEmpty(t *testing.T) {
	lo, hi := MustNew(5, nil).ArboricityBounds()
	if lo != 0 || hi != 0 {
		t.Fatalf("edgeless bounds [%d,%d]", lo, hi)
	}
}

func TestArboricityBoundsOrdering(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(r, 40, 0.15)
		lo, hi := g.ArboricityBounds()
		if lo > hi {
			t.Fatalf("lower %d > upper %d", lo, hi)
		}
	}
}

func TestForestPartition(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 40, 0.15)
		o, _ := g.OrientByDegeneracy()
		forests := o.ForestPartition()
		if len(forests) != o.MaxOutDegree() {
			t.Fatalf("got %d forests, want %d", len(forests), o.MaxOutDegree())
		}
		// Every edge appears in exactly one forest.
		covered := 0
		for _, parent := range forests {
			var edges []Edge
			for v, p := range parent {
				if p >= 0 {
					if !g.HasEdge(v, p) {
						t.Fatalf("forest edge (%d,%d) not in graph", v, p)
					}
					edges = append(edges, Edge{U: v, V: p})
					covered++
				}
			}
			// Each forest must be acyclic.
			fg := MustNew(g.N(), edges)
			if !fg.IsForest() {
				t.Fatal("forest partition produced a cyclic part")
			}
		}
		if covered != g.M() {
			t.Fatalf("forests cover %d edges, graph has %d", covered, g.M())
		}
	}
}

func TestForestPartitionParentUnique(t *testing.T) {
	r := rng.New(8)
	g := randomGraph(r, 30, 0.2)
	o, _ := g.OrientByDegeneracy()
	for f, parent := range o.ForestPartition() {
		if len(parent) != g.N() {
			t.Fatalf("forest %d has %d entries", f, len(parent))
		}
	}
}
