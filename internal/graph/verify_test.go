package graph

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestVerifyMISAcceptsValid(t *testing.T) {
	g := path(5)
	// {0, 2, 4} is an MIS of the path 0-1-2-3-4.
	set := []bool{true, false, true, false, true}
	if err := g.VerifyMIS(set); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMISRejectsDependent(t *testing.T) {
	g := path(3)
	set := []bool{true, true, false}
	err := g.VerifyMIS(set)
	if err == nil || !strings.Contains(err.Error(), "independent") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyMISRejectsNonMaximal(t *testing.T) {
	g := path(5)
	set := []bool{true, false, false, false, true} // 2 is uncovered
	err := g.VerifyMIS(set)
	if err == nil || !strings.Contains(err.Error(), "maximal") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyMISRejectsWrongLength(t *testing.T) {
	g := path(4)
	if err := g.VerifyMIS([]bool{true}); err == nil {
		t.Fatal("wrong length accepted")
	}
}

func TestVerifyMISEmptyGraph(t *testing.T) {
	g := MustNew(0, nil)
	if err := g.VerifyMIS(nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMISIsolatedVerticesMustJoin(t *testing.T) {
	g := MustNew(3, nil)
	if err := g.VerifyMIS([]bool{true, true, false}); err == nil {
		t.Fatal("isolated vertex left out but accepted")
	}
	if err := g.VerifyMIS([]bool{true, true, true}); err != nil {
		t.Fatal(err)
	}
}

func TestIsIndependentReportsEdge(t *testing.T) {
	g := cycle(4)
	ok, bad := g.IsIndependent([]bool{true, true, false, false})
	if ok {
		t.Fatal("dependent set accepted")
	}
	if bad.U != 0 || bad.V != 1 {
		t.Fatalf("bad edge = %v", bad)
	}
}

func TestSetSize(t *testing.T) {
	if SetSize([]bool{true, false, true, true}) != 3 {
		t.Fatal("SetSize wrong")
	}
	if SetSize(nil) != 0 {
		t.Fatal("SetSize(nil) != 0")
	}
}

func TestAllMaximalIndependentSetsTriangle(t *testing.T) {
	// K3 has exactly three maximal independent sets: each single vertex.
	sets := complete(3).AllMaximalIndependentSets()
	if len(sets) != 3 {
		t.Fatalf("got %d MIS, want 3", len(sets))
	}
	for _, s := range sets {
		if SetSize(s) != 1 {
			t.Fatalf("K3 MIS of size %d", SetSize(s))
		}
	}
}

func TestAllMaximalIndependentSetsPath(t *testing.T) {
	// P4 (0-1-2-3) maximal independent sets: {0,2}, {0,3}, {1,3}.
	sets := path(4).AllMaximalIndependentSets()
	if len(sets) != 3 {
		t.Fatalf("got %d MIS, want 3", len(sets))
	}
}

func TestAllMaximalIndependentSetsPanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(30, nil).AllMaximalIndependentSets()
}

func TestBruteForceAgreesWithVerifier(t *testing.T) {
	// Every set returned by the brute-force oracle passes the verifier, and
	// sampled non-returned sets fail it.
	r := rng.New(50)
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(r, 8, 0.3)
		valid := map[uint32]bool{}
		for _, s := range g.AllMaximalIndependentSets() {
			var mask uint32
			for v, in := range s {
				if in {
					mask |= 1 << v
				}
			}
			valid[mask] = true
		}
		for mask := uint32(0); mask < 1<<8; mask++ {
			set := make([]bool, 8)
			for v := 0; v < 8; v++ {
				set[v] = mask&(1<<v) != 0
			}
			err := g.VerifyMIS(set)
			if valid[mask] && err != nil {
				t.Fatalf("oracle set %b rejected: %v", mask, err)
			}
			if !valid[mask] && err == nil {
				t.Fatalf("non-oracle set %b accepted", mask)
			}
		}
	}
}
