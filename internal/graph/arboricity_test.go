package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestExactArboricityKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"edgeless", MustNew(4, nil), 0},
		{"single-edge", MustNew(2, []Edge{{0, 1}}), 1},
		{"path", path(8), 1},
		{"star", MustNew(6, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}), 1},
		{"cycle", cycle(7), 2}, // ⌈7/6⌉ = 2
		{"k4", complete(4), 2}, // ⌈6/3⌉ = 2
		{"k5", complete(5), 3}, // ⌈10/4⌉ = 3
		{"k6", complete(6), 3}, // ⌈15/5⌉ = 3
		{"k7", complete(7), 4}, // ⌈21/6⌉ = 4
		{"two-triangles", MustNew(6, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}), 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.g.ExactArboricity(); got != c.want {
				t.Fatalf("arboricity = %d, want %d", got, c.want)
			}
		})
	}
}

func TestExactArboricityPanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(25, nil).ExactArboricity()
}

func TestArboricityBoundsBracketExact(t *testing.T) {
	// Property: on random small graphs, the fast bounds always bracket the
	// exact Nash-Williams value.
	r := rng.New(60)
	if err := quick.Check(func(seed uint64) bool {
		rr := r.Split(seed)
		n := 4 + rr.Intn(10)
		g := randomGraph(rr, n, 0.3)
		if g.M() == 0 {
			return true
		}
		exact := g.ExactArboricity()
		lo, hi := g.ArboricityBounds()
		return lo <= exact && exact <= hi
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExactArboricityForestPartitionRealizable(t *testing.T) {
	// Upper-bound sanity: the degeneracy orientation splits edges into at
	// most `degeneracy` forests, so exact arboricity can never exceed it.
	r := rng.New(61)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 12, 0.3)
		if g.M() == 0 {
			continue
		}
		o, d := g.OrientByDegeneracy()
		if exact := g.ExactArboricity(); exact > d {
			t.Fatalf("exact %d > degeneracy %d", exact, d)
		}
		if len(o.ForestPartition()) > d {
			t.Fatal("partition exceeds degeneracy")
		}
	}
}
