package graph

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// path returns the path graph on n vertices.
func path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{U: i, V: i + 1})
	}
	return MustNew(n, edges)
}

// cycle returns the cycle graph on n vertices.
func cycle(n int) *Graph {
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{U: i, V: (i + 1) % n})
	}
	return MustNew(n, edges)
}

// complete returns K_n.
func complete(n int) *Graph {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{U: i, V: j})
		}
	}
	return MustNew(n, edges)
}

// randomGraph returns a GNP-ish graph for property tests.
func randomGraph(r *rng.RNG, n int, p float64) *Graph {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(p) {
				edges = append(edges, Edge{U: i, V: j})
			}
		}
	}
	return MustNew(n, edges)
}

func TestNewBasic(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
}

func TestNewRejectsSelfLoop(t *testing.T) {
	_, err := New(3, []Edge{{1, 1}})
	if !errors.Is(err, ErrBadEdge) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	for _, e := range []Edge{{-1, 0}, {0, 3}, {5, 1}} {
		if _, err := New(3, []Edge{e}); !errors.Is(err, ErrBadEdge) {
			t.Fatalf("edge %v: err = %v", e, err)
		}
	}
}

func TestNewRejectsNegativeN(t *testing.T) {
	if _, err := New(-1, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestNewDedupesParallelEdges(t *testing.T) {
	g := MustNew(2, []Edge{{0, 1}, {1, 0}, {0, 1}})
	if g.M() != 1 {
		t.Fatalf("m = %d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("degrees wrong after dedupe")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := MustNew(0, nil)
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 || g.AvgDegree() != 0 {
		t.Fatal("empty graph stats wrong")
	}
	if _, c := g.Components(); c != 0 {
		t.Fatal("empty graph has components")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := MustNew(5, []Edge{{0, 4}, {0, 2}, {0, 1}, {0, 3}})
	nb := g.Neighbors(0)
	want := []int{1, 2, 3, 4}
	for i, w := range want {
		if nb[i] != w {
			t.Fatalf("neighbors(0) = %v", nb)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	r := rng.New(10)
	g := randomGraph(r, 20, 0.3)
	g2 := MustNew(g.N(), g.Edges())
	if g2.M() != g.M() {
		t.Fatalf("m changed: %d -> %d", g.M(), g2.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != g2.Degree(v) {
			t.Fatalf("degree(%d) changed", v)
		}
	}
}

func TestMaxAvgDegree(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if g.MaxDegree() != 3 {
		t.Fatalf("maxdeg = %d", g.MaxDegree())
	}
	if g.AvgDegree() != 1.5 {
		t.Fatalf("avgdeg = %v", g.AvgDegree())
	}
}

func TestComponents(t *testing.T) {
	// Two triangles and an isolated vertex.
	g := MustNew(7, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	comp, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("first triangle split")
	}
	if comp[3] != comp[4] || comp[4] != comp[5] {
		t.Fatal("second triangle split")
	}
	if comp[0] == comp[3] || comp[0] == comp[6] || comp[3] == comp[6] {
		t.Fatal("components merged")
	}
	sizes := ComponentSizes(comp, count)
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 7 {
		t.Fatalf("sizes sum to %d", total)
	}
}

func TestBFSOnPath(t *testing.T) {
	g := path(5)
	dist := g.BFS(0)
	for v := 0; v < 5; v++ {
		if dist[v] != v {
			t.Fatalf("dist[%d] = %d", v, dist[v])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1}})
	dist := g.BFS(0)
	if dist[2] != -1 {
		t.Fatalf("dist to isolated vertex = %d", dist[2])
	}
}

func TestIsForest(t *testing.T) {
	if !path(10).IsForest() {
		t.Fatal("path should be forest")
	}
	if cycle(5).IsForest() {
		t.Fatal("cycle is not a forest")
	}
	if !MustNew(4, nil).IsForest() {
		t.Fatal("edgeless graph is a forest")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := cycle(6)
	sub, orig, err := g.InducedSubgraph([]int{0, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 4 {
		t.Fatalf("sub n = %d", sub.N())
	}
	// Edges 0-1 and 1-2 survive; 4 is isolated within the set.
	if sub.M() != 2 {
		t.Fatalf("sub m = %d", sub.M())
	}
	if orig[3] != 4 {
		t.Fatalf("orig = %v", orig)
	}
	if sub.Degree(3) != 0 {
		t.Fatal("vertex 4 should be isolated in subgraph")
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := path(4)
	if _, _, err := g.InducedSubgraph([]int{0, 0}); err == nil {
		t.Fatal("duplicate vertex accepted")
	}
	if _, _, err := g.InducedSubgraph([]int{99}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	r := rng.New(20)
	g := randomGraph(r, 30, 0.2)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed graph: %d/%d -> %d/%d", g.N(), g.M(), g2.N(), g2.M())
	}
	for v := 0; v < g.N(); v++ {
		nb1, nb2 := g.Neighbors(v), g2.Neighbors(v)
		if len(nb1) != len(nb2) {
			t.Fatalf("degree(%d) changed", v)
		}
		for i := range nb1 {
			if nb1[i] != nb2[i] {
				t.Fatalf("adjacency of %d changed", v)
			}
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(bytes.NewBufferString("garbage")); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("3 2\n0 1\n")); err == nil {
		t.Fatal("truncated edge list accepted")
	}
}

func TestHasEdgeSymmetricProperty(t *testing.T) {
	r := rng.New(30)
	g := randomGraph(r, 25, 0.25)
	if err := quick.Check(func(a, b uint8) bool {
		u, v := int(a)%g.N(), int(b)%g.N()
		return g.HasEdge(u, v) == g.HasEdge(v, u)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeSumEqualsTwiceM(t *testing.T) {
	r := rng.New(40)
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 40, 0.15)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		if sum != 2*g.M() {
			t.Fatalf("handshake lemma violated: sum=%d m=%d", sum, g.M())
		}
	}
}

func TestDistancePowerPath(t *testing.T) {
	// Path 0..5: distances are |i-j|. G^[2,3] connects pairs at 2 or 3.
	g := path(6)
	h, err := g.DistancePower(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			inRange := j-i >= 2 && j-i <= 3
			if inRange {
				want++
			}
			if h.HasEdge(i, j) != inRange {
				t.Fatalf("edge (%d,%d): got %v want %v", i, j, h.HasEdge(i, j), inRange)
			}
		}
	}
	if h.M() != want {
		t.Fatalf("m = %d want %d", h.M(), want)
	}
}

func TestDistancePowerOneIsIdentity(t *testing.T) {
	r := rng.New(70)
	g := randomGraph(r, 20, 0.2)
	h, err := g.DistancePower(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != g.M() {
		t.Fatalf("G^[1,1] has %d edges, G has %d", h.M(), g.M())
	}
}

func TestDistancePowerDisconnected(t *testing.T) {
	// Unreachable pairs (distance -1) must never be connected.
	g := MustNew(4, []Edge{{0, 1}, {2, 3}})
	h, err := g.DistancePower(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.HasEdge(0, 2) || h.HasEdge(1, 3) {
		t.Fatal("distance power bridged components")
	}
}

func TestDistancePowerRejectsBadRange(t *testing.T) {
	g := path(3)
	for _, r := range [][2]int{{0, 5}, {3, 2}, {-1, 1}} {
		if _, err := g.DistancePower(r[0], r[1]); err == nil {
			t.Fatalf("range %v accepted", r)
		}
	}
}

func TestDistancePowerLemma37Shape(t *testing.T) {
	// The lemma's use: nodes of a sparse set S form a G^[7,13] component
	// only if they chain at distances in [7,13]; spreading S out in G
	// keeps G^[7,13][S] edgeless. Sanity-check with an independent-ish set
	// on a long path: vertices 0, 20, 40 are ≥ 20 apart, no edges.
	g := path(60)
	h, err := g.DistancePower(7, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{0, 20}, {20, 40}, {0, 40}} {
		if h.HasEdge(pair[0], pair[1]) {
			t.Fatal("far vertices connected in G^[7,13]")
		}
	}
	// And 0-10 (distance 10) is connected.
	if !h.HasEdge(0, 10) {
		t.Fatal("distance-10 pair not connected")
	}
}
