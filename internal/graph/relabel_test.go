package graph_test

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// csrEqual reports whether two graphs have identical CSR contents: same
// vertex count and byte-for-byte identical sorted adjacency rows.
func csrEqual(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func invert(perm []int) []int {
	inv := make([]int, len(perm))
	for v, p := range perm {
		inv[p] = v
	}
	return inv
}

// TestRelabelRoundTrip is the layout pass's core safety property: relabeling
// by any permutation and then by its inverse must reproduce the original CSR
// exactly, across every generator family in the suite.
func TestRelabelRoundTrip(t *testing.T) {
	r := rng.New(20260808)
	rggGraph, _ := gen.RandomGeometric(200, 0.12, r.Split(6))
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"tree", gen.RandomTree(257, r.Split(1))},
		{"union", gen.UnionOfTrees(256, 3, r.Split(2))},
		{"grid", gen.Grid(16, 17)},
		{"gnp", gen.GNP(128, 0.07, r.Split(4))},
		{"pa", gen.PreferentialAttachment(256, 4, r.Split(5))},
		{"rgg", rggGraph},
	}
	for _, f := range families {
		t.Run(f.name, func(t *testing.T) {
			n := f.g.N()
			for trial := 0; trial < 4; trial++ {
				perm := rng.New(uint64(trial + 7)).Perm(n)
				h, err := graph.Relabel(f.g, perm)
				if err != nil {
					t.Fatalf("trial %d: Relabel: %v", trial, err)
				}
				if h.M() != f.g.M() {
					t.Fatalf("trial %d: relabeled m=%d, want %d", trial, h.M(), f.g.M())
				}
				back, err := graph.Relabel(h, invert(perm))
				if err != nil {
					t.Fatalf("trial %d: inverse Relabel: %v", trial, err)
				}
				if !csrEqual(back, f.g) {
					t.Fatalf("trial %d: perm/inverse round trip does not reproduce the CSR", trial)
				}
			}
		})
	}
}

// TestRelabelDegenerate pins the edge cases: identity and reversal
// permutations, and the single-vertex graph, where off-by-ones in the
// offsets rebuild would hide.
func TestRelabelDegenerate(t *testing.T) {
	ring := func(n int) *graph.Graph {
		edges := make([]graph.Edge, n)
		for v := 0; v < n; v++ {
			edges[v] = graph.Edge{U: v, V: (v + 1) % n}
		}
		return graph.MustNew(n, edges)
	}
	identity := func(n int) []int {
		p := make([]int, n)
		for i := range p {
			p[i] = i
		}
		return p
	}
	reversal := func(n int) []int {
		p := make([]int, n)
		for i := range p {
			p[i] = n - 1 - i
		}
		return p
	}
	cases := []struct {
		name string
		g    *graph.Graph
		perm []int
		// check validates the relabeled graph beyond the round trip.
		check func(t *testing.T, h *graph.Graph)
	}{
		{"identity", ring(8), identity(8), func(t *testing.T, h *graph.Graph) {
			if !csrEqual(h, ring(8)) {
				t.Fatal("identity permutation changed the CSR")
			}
		}},
		{"reversal", ring(8), reversal(8), func(t *testing.T, h *graph.Graph) {
			// Reversing a ring yields a ring: vertex p's neighbors are p±1 mod 8.
			for p := 0; p < 8; p++ {
				nbrs := h.Neighbors(p)
				if len(nbrs) != 2 {
					t.Fatalf("reversed ring vertex %d has %d neighbors", p, len(nbrs))
				}
			}
		}},
		{"single-vertex", graph.MustNew(1, nil), []int{0}, func(t *testing.T, h *graph.Graph) {
			if h.N() != 1 || h.M() != 0 {
				t.Fatalf("single-vertex relabel: n=%d m=%d", h.N(), h.M())
			}
		}},
		{"empty", graph.MustNew(0, nil), nil, func(t *testing.T, h *graph.Graph) {
			if h.N() != 0 {
				t.Fatalf("empty relabel: n=%d", h.N())
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := graph.Relabel(tc.g, tc.perm)
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, h)
			inv := invert(tc.perm)
			back, err := graph.Relabel(h, inv)
			if err != nil {
				t.Fatal(err)
			}
			if !csrEqual(back, tc.g) {
				t.Fatal("round trip does not reproduce the CSR")
			}
		})
	}
}

func TestRelabelRejectsBadPerms(t *testing.T) {
	g := gen.Grid(3, 3)
	bad := [][]int{
		{0, 1, 2},                         // wrong length
		{0, 1, 2, 3, 4, 5, 6, 7, 9},       // out of range
		{0, 1, 2, 3, 4, 5, 6, 7, -1},      // negative
		{0, 1, 2, 3, 4, 5, 6, 7, 7},       // duplicate
		make([]int, 9),                    // all zeros: duplicate
	}
	for i, perm := range bad {
		t.Run(fmt.Sprintf("case-%d", i), func(t *testing.T) {
			if _, err := graph.Relabel(g, perm); err == nil {
				t.Fatalf("Relabel accepted invalid permutation %v", perm)
			}
		})
	}
}
