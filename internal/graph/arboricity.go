package graph

import "math/bits"

// ExactArboricity computes the arboricity of a small graph exactly via the
// Nash-Williams formula
//
//	α(G) = max over vertex subsets S with |S| ≥ 2 of ⌈m(S)/(|S|-1)⌉,
//
// by enumerating all 2^n subsets. It is a test oracle for validating
// ArboricityBounds and generator guarantees, and panics for n > 20.
func (g *Graph) ExactArboricity() int {
	n := g.N()
	if n > 20 {
		panic("graph: ExactArboricity is a test oracle for n <= 20")
	}
	if g.M() == 0 {
		return 0
	}
	// Precompute adjacency bitmasks.
	adj := make([]uint32, n)
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			adj[v] |= 1 << uint(w)
		}
	}
	best := 1
	for mask := uint32(3); mask < 1<<uint(n); mask++ {
		size := bits.OnesCount32(mask)
		if size < 2 {
			continue
		}
		// Count edges inside the subset (each edge once: v against the
		// still-unprocessed remainder).
		edges := 0
		rest := mask
		for rest != 0 {
			v := bits.TrailingZeros32(rest)
			rest &^= 1 << uint(v)
			edges += bits.OnesCount32(adj[v] & rest)
		}
		if edges == 0 {
			continue
		}
		if b := (edges + size - 2) / (size - 1); b > best {
			best = b
		}
	}
	return best
}
