package graph

import (
	"errors"
	"fmt"
)

// Orientation assigns each edge of a graph a direction. In this repository
// orientations always point "up": a vertex's out-neighbors are its parents
// in the sense of the paper (Section 2: an arboricity-α graph admits an
// orientation with out-degree ≤ α; out-neighbors are Parent(v), in-neighbors
// Child(v)). The analysis of the core algorithm quantifies over such an
// orientation; the algorithm itself never sees it.
type Orientation struct {
	g   *Graph
	out [][]int // out[v] = parents of v, sorted
	in  [][]int // in[v]  = children of v, sorted
}

// Graph returns the underlying graph.
func (o *Orientation) Graph() *Graph { return o.g }

// Parents returns the out-neighbors of v (aliases internal storage).
func (o *Orientation) Parents(v int) []int { return o.out[v] }

// Children returns the in-neighbors of v (aliases internal storage).
func (o *Orientation) Children(v int) []int { return o.in[v] }

// OutDegree returns |Parents(v)|.
func (o *Orientation) OutDegree(v int) int { return len(o.out[v]) }

// MaxOutDegree returns the maximum out-degree over all vertices.
func (o *Orientation) MaxOutDegree() int {
	max := 0
	for v := range o.out {
		if d := len(o.out[v]); d > max {
			max = d
		}
	}
	return max
}

// Validate checks that the orientation covers every edge exactly once and
// orients only real edges.
func (o *Orientation) Validate() error {
	count := 0
	for v := range o.out {
		for _, p := range o.out[v] {
			if !o.g.HasEdge(v, p) {
				return fmt.Errorf("graph: oriented non-edge (%d,%d)", v, p)
			}
			count++
		}
	}
	if count != o.g.M() {
		return fmt.Errorf("graph: orientation covers %d edges, graph has %d", count, o.g.M())
	}
	for v := range o.in {
		for _, c := range o.in[v] {
			if !contains(o.out[c], v) {
				return fmt.Errorf("graph: in/out mismatch at (%d,%d)", c, v)
			}
		}
	}
	return nil
}

func contains(sorted []int, x int) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == x
}

// OrientByOrder orients every edge from the earlier vertex to the later
// vertex in the given total order (position[v] = rank of v). With a
// degeneracy (peel) order this yields out-degree ≤ degeneracy ≤ 2α-1.
func (g *Graph) OrientByOrder(position []int) (*Orientation, error) {
	if len(position) != g.N() {
		return nil, errors.New("graph: position slice has wrong length")
	}
	o := &Orientation{
		g:   g,
		out: make([][]int, g.N()),
		in:  make([][]int, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			// Edges go from lower rank to higher rank; ties are impossible
			// in a permutation but broken by ID defensively.
			if position[v] < position[w] || (position[v] == position[w] && v < w) {
				o.out[v] = append(o.out[v], w)
				o.in[w] = append(o.in[w], v)
			}
		}
	}
	return o, nil
}

// DegeneracyOrder computes a peel order by repeatedly removing a minimum
// degree vertex (bucket queue, O(n+m)). It returns the order (order[i] is
// the i-th vertex peeled) and the degeneracy: the maximum, over peels, of
// the removed vertex's residual degree.
func (g *Graph) DegeneracyOrder() (order []int, degeneracy int) {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue keyed by residual degree.
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	order = make([]int, 0, n)
	cur := 0
	for len(order) < n {
		// The minimum residual degree can only decrease by at most... it
		// can drop below cur when neighbors of the last peel lose an edge,
		// so rewind by one each iteration before scanning up.
		if cur > 0 {
			cur--
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] || deg[v] != cur {
			continue // stale entry
		}
		removed[v] = true
		order = append(order, v)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], w)
			}
		}
	}
	return order, degeneracy
}

// OrientByDegeneracy orients the graph along a degeneracy order so that
// out-degree ≤ degeneracy. This is the orientation the paper's analysis
// posits for an arboricity-α graph (out-degree ≤ 2α-1 ≥ α-quality in
// general; exact α-orientations require flow techniques the analysis does
// not need).
func (g *Graph) OrientByDegeneracy() (*Orientation, int) {
	order, d := g.DegeneracyOrder()
	position := make([]int, g.N())
	for i, v := range order {
		position[v] = i
	}
	o, err := g.OrientByOrder(position)
	if err != nil {
		// len(position) == g.N() by construction; unreachable.
		panic(err)
	}
	return o, d
}

// ArboricityBounds returns lower and upper bounds on the arboricity:
//
//   - lower: the Nash-Williams density bound max_S ⌈m_S/(n_S-1)⌉ evaluated
//     over the suffixes of a degeneracy order (which include the densest
//     cores) and the whole graph;
//   - upper: the degeneracy d (every d-degenerate graph splits into d
//     forests by the out-edge partition of a degeneracy orientation).
func (g *Graph) ArboricityBounds() (lower, upper int) {
	order, d := g.DegeneracyOrder()
	upper = d
	if d == 0 {
		return 0, 0
	}
	// Walk the peel order in reverse, growing the densest-suffix subgraph.
	inSet := make([]bool, g.N())
	nS, mS := 0, 0
	best := 1
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		inSet[v] = true
		nS++
		for _, w := range g.Neighbors(v) {
			if inSet[w] {
				mS++
			}
		}
		if nS >= 2 {
			if b := (mS + nS - 2) / (nS - 1); b > best { // ⌈mS/(nS-1)⌉
				best = b
			}
		}
	}
	lower = best
	if upper < lower {
		upper = lower
	}
	return lower, upper
}

// ForestPartition splits the edges into MaxOutDegree forests using the
// orientation: each vertex assigns its i-th out-edge to forest i, so every
// vertex has at most one parent per forest. Each forest is returned as a
// parent array (-1 = no parent in that forest). If the orientation is
// acyclic (e.g. from a vertex order) each forest is genuinely acyclic.
func (o *Orientation) ForestPartition() [][]int {
	k := o.MaxOutDegree()
	forests := make([][]int, k)
	for f := range forests {
		forests[f] = make([]int, o.g.N())
		for v := range forests[f] {
			forests[f][v] = -1
		}
	}
	for v := range o.out {
		for i, p := range o.out[v] {
			forests[i][v] = p
		}
	}
	return forests
}
