// Package graph provides the immutable undirected-graph core used by every
// algorithm in this repository: compressed adjacency storage, connectivity
// queries, induced subgraphs, low-out-degree orientations and degeneracy /
// arboricity machinery, and MIS verification oracles.
//
// Graphs are simple (no self-loops, no parallel edges) and immutable after
// construction, which makes them safe to share across goroutines without
// locks — the goroutine-per-node CONGEST driver relies on this.
package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Graph is an immutable simple undirected graph in CSR (compressed sparse
// row) form. Vertices are 0..N()-1. Construct with New or MustNew.
type Graph struct {
	offsets []int // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int // flattened sorted adjacency lists
}

// Edge is an undirected edge between U and V.
type Edge struct {
	U, V int
}

// ErrBadEdge reports an edge endpoint outside [0, n) or a self-loop.
var ErrBadEdge = errors.New("graph: edge endpoint out of range or self-loop")

// New builds a graph on n vertices from an edge list. Duplicate edges are
// merged; self-loops and out-of-range endpoints are rejected.
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	deg := make([]int, n)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrBadEdge, e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("%w: self-loop at %d", ErrBadEdge, e.U)
		}
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int, offsets[n])
	fill := make([]int, n)
	copy(fill, offsets[:n])
	for _, e := range edges {
		adj[fill[e.U]] = e.V
		fill[e.U]++
		adj[fill[e.V]] = e.U
		fill[e.V]++
	}
	g := &Graph{offsets: offsets, adj: adj}
	g.sortAndDedupe()
	return g, nil
}

// MustNew is New but panics on error; for tests and generators whose edge
// lists are correct by construction.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// sortAndDedupe sorts each adjacency list and removes duplicates, rebuilding
// the CSR arrays compactly.
func (g *Graph) sortAndDedupe() {
	n := g.N()
	newAdj := g.adj[:0]
	newOffsets := make([]int, n+1)
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		row := g.adj[lo:hi]
		sort.Ints(row)
		start := len(newAdj)
		for i, w := range row {
			if i > 0 && w == row[i-1] {
				continue
			}
			newAdj = append(newAdj, w)
		}
		newOffsets[v] = start
	}
	newOffsets[n] = len(newAdj)
	// newAdj aliases g.adj's storage (writes always trail reads), so copy
	// into a right-sized slice to release the slack.
	g.adj = append([]int(nil), newAdj...)
	g.offsets = newOffsets
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return g.offsets[v+1] - g.offsets[v] }

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[g.offsets[v]:g.offsets[v+1]] }

// HasEdge reports whether {u, v} is an edge (binary search).
func (g *Graph) HasEdge(u, v int) bool {
	row := g.Neighbors(u)
	i := sort.SearchInts(row, v)
	return i < len(row) && row[i] == v
}

// MaxDegree returns the maximum degree Δ, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns 2m/n, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.N())
}

// Edges returns the edge list with U < V in each edge, sorted.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.M())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				edges = append(edges, Edge{U: v, V: w})
			}
		}
	}
	return edges
}

// InducedSubgraph returns the subgraph induced by the given vertices along
// with the mapping back to original IDs: orig[i] is the original ID of the
// subgraph's vertex i. Duplicate vertices in the input are an error.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int, error) {
	index := make(map[int]int, len(vertices))
	orig := make([]int, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.N() {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range", v)
		}
		if _, dup := index[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		index[v] = i
		orig[i] = v
	}
	var edges []Edge
	for i, v := range orig {
		for _, w := range g.Neighbors(v) {
			if j, ok := index[w]; ok && i < j {
				edges = append(edges, Edge{U: i, V: j})
			}
		}
	}
	sub, err := New(len(vertices), edges)
	if err != nil {
		return nil, nil, err
	}
	return sub, orig, nil
}

// Components labels vertices with connected-component IDs (0-based, in
// order of first discovery) and returns the label slice and component count.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	queue := make([]int, 0, 64)
	for s := 0; s < g.N(); s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if comp[w] < 0 {
					comp[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return comp, next
}

// ComponentSizes returns the size of each component given a labeling from
// Components.
func ComponentSizes(comp []int, count int) []int {
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	return sizes
}

// BFS returns the distance (in hops) from src to every vertex, with -1 for
// unreachable vertices.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// IsForest reports whether the graph is acyclic (m = n - #components).
func (g *Graph) IsForest() bool {
	_, c := g.Components()
	return g.M() == g.N()-c
}

// WriteEdgeList writes the graph as "n m" followed by one "u v" line per
// edge, a format ReadEdgeList can parse back.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return fmt.Errorf("graph: write header: %w", err)
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return fmt.Errorf("graph: write edge: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flush: %w", err)
	}
	return nil
}

// ReadEdgeList parses the format produced by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var n, m int
	if _, err := fmt.Fscan(br, &n, &m); err != nil {
		return nil, fmt.Errorf("graph: read header: %w", err)
	}
	edges := make([]Edge, m)
	for i := 0; i < m; i++ {
		if _, err := fmt.Fscan(br, &edges[i].U, &edges[i].V); err != nil {
			return nil, fmt.Errorf("graph: read edge %d: %w", i, err)
		}
	}
	return New(n, edges)
}

// DistancePower returns the graph G^[lo,hi] that connects u and v exactly
// when their hop distance in g lies in [lo, hi]. The reproduced paper's
// Lemma 3.7 argues over G^[7,13]: bad events at nodes that far apart are
// independent, which is what bounds the size of connected bad clusters.
// Runs one BFS per vertex (O(n·m)); fine for the component-scale graphs
// the lemma is applied to.
func (g *Graph) DistancePower(lo, hi int) (*Graph, error) {
	if lo < 1 || hi < lo {
		return nil, fmt.Errorf("graph: invalid distance range [%d,%d]", lo, hi)
	}
	var edges []Edge
	for v := 0; v < g.N(); v++ {
		dist := g.BFS(v)
		for w := v + 1; w < g.N(); w++ {
			if dist[w] >= lo && dist[w] <= hi {
				edges = append(edges, Edge{U: v, V: w})
			}
		}
	}
	return New(g.N(), edges)
}
