package graph

import (
	"fmt"
)

// IsIndependent reports whether the vertex set marked by inSet is
// independent, returning a violating edge when it is not.
func (g *Graph) IsIndependent(inSet []bool) (ok bool, bad Edge) {
	for v := 0; v < g.N(); v++ {
		if !inSet[v] {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if w > v && inSet[w] {
				return false, Edge{U: v, V: w}
			}
		}
	}
	return true, Edge{}
}

// VerifyMIS checks that inSet marks a maximal independent set of g and
// returns a descriptive error when it does not. This is the oracle every
// algorithm's output is checked against in tests and in the experiment
// harness.
func (g *Graph) VerifyMIS(inSet []bool) error {
	if len(inSet) != g.N() {
		return fmt.Errorf("graph: set has %d entries, graph has %d vertices", len(inSet), g.N())
	}
	if ok, bad := g.IsIndependent(inSet); !ok {
		return fmt.Errorf("graph: not independent: edge (%d,%d) inside set", bad.U, bad.V)
	}
	for v := 0; v < g.N(); v++ {
		if inSet[v] {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if inSet[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("graph: not maximal: vertex %d has no neighbor in set", v)
		}
	}
	return nil
}

// SetSize counts true entries; a convenience for reporting MIS sizes.
func SetSize(inSet []bool) int {
	n := 0
	for _, b := range inSet {
		if b {
			n++
		}
	}
	return n
}

// AllMaximalIndependentSets enumerates every maximal independent set of a
// small graph by brute force (2^n subsets). It exists solely as a test
// oracle and panics for n > 24 to catch accidental use on real inputs.
func (g *Graph) AllMaximalIndependentSets() [][]bool {
	n := g.N()
	if n > 24 {
		panic("graph: AllMaximalIndependentSets is a test oracle for tiny graphs only")
	}
	var result [][]bool
	for mask := 0; mask < 1<<n; mask++ {
		set := make([]bool, n)
		for v := 0; v < n; v++ {
			set[v] = mask&(1<<v) != 0
		}
		if g.VerifyMIS(set) == nil {
			result = append(result, set)
		}
	}
	return result
}
