package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for seeds 1 and 2 collided %d/1000 times", same)
	}
}

func TestSplitIsPure(t *testing.T) {
	r := New(7)
	before := r.state
	c1 := r.Split(3)
	c2 := r.Split(3)
	if r.state != before {
		t.Fatal("Split advanced the parent state")
	}
	if c1.Uint64() != c2.Uint64() {
		t.Fatal("two splits with the same label disagree")
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	r := New(7)
	seen := map[uint64]uint64{}
	for label := uint64(0); label < 500; label++ {
		v := r.Split(label).Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("labels %d and %d produced the same first draw", prev, label)
		}
		seen[v] = label
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d: %d draws, want ~%v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolClamps(t *testing.T) {
	r := New(4)
	for i := 0; i < 100; i++ {
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	const n = 100000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bool(%v) frequency %v", p, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	if err := quick.Check(func(seed uint64) bool {
		n := 1 + int(seed%64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(8)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(xs)
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestExpRoundsMean(t *testing.T) {
	r := New(15)
	const n = 50000
	p := 0.25
	total := 0
	for i := 0; i < n; i++ {
		total += r.ExpRounds(p)
	}
	mean := float64(total) / n
	if math.Abs(mean-1/p) > 0.1 {
		t.Fatalf("geometric mean %v, want ~%v", mean, 1/p)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	if r.Uint64() == r.Uint64() {
		t.Fatal("zero-value RNG is not advancing")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkSplit(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Split(uint64(i))
	}
}
