// Package rng provides a small, fast, deterministic, splittable random
// number generator used throughout the repository.
//
// Distributed algorithms in this repo need per-node randomness that is
// (a) reproducible from a single scalar seed, (b) independent across nodes,
// and (c) cheap to fork without shared state. The generator here is
// splitmix64 (Steele, Lea & Flood 2014), whose output function is a strong
// 64-bit mixer; "splitting" a stream derives a new, statistically
// independent stream from a label. math/rand is deliberately not used: its
// global source is shared mutable state, and seeding many per-node
// generators from it is neither reproducible nor race-free.
package rng

import "math/bits"

// golden is the splitmix64 sequence constant (2^64 / phi, odd).
const golden = 0x9e3779b97f4a7c15

// RNG is a deterministic pseudo-random generator. The zero value is a valid
// generator seeded with 0; prefer New so distinct uses get distinct streams.
// An RNG is not safe for concurrent use; give each goroutine its own stream
// via Split.
type RNG struct {
	state uint64
	draws uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: mix(seed)}
}

// mix is the splitmix64 output function: a bijective 64-bit finalizer with
// full avalanche. It is used both for output and for deriving child seeds.
func mix(z uint64) uint64 {
	z += golden
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.draws++
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Draws returns the number of Uint64 calls this stream has served,
// including calls made internally by the derived samplers (Intn, Float64,
// Perm, ...). Draws is a pure observation — reading it does not advance the
// stream — and child streams created by Split start at zero. The execution
// tracer records per-round draw totals from it, so two runs that disagree
// anywhere in their randomness disagree in their traces too.
func (r *RNG) Draws() uint64 { return r.draws }

// Split derives a new generator from this one, labeled by label. Two splits
// of the same parent state with different labels yield independent streams,
// and splitting does not advance the parent: Split is a pure function of
// (parent state, label). This is what gives per-node determinism — node i's
// stream is Split(i) of the experiment's root generator regardless of the
// order nodes are visited.
func (r *RNG) Split(label uint64) *RNG {
	// Feed the label through two rounds of mixing against the parent state
	// so that consecutive labels (0, 1, 2, ...) land far apart.
	return &RNG{state: mix(r.state ^ mix(label^0xd6e8feb86659fd93))}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand, because a non-positive bound is a programming error at the call
// site, not a recoverable condition.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.uint64n(uint64(n)))
}

// uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method (unbiased).
func (r *RNG) uint64n(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. Probabilities outside [0, 1] are
// clamped: p <= 0 always returns false and p >= 1 always returns true.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniform random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place (Fisher-Yates).
func (r *RNG) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// ExpRounds returns a geometric sample: the number of independent trials
// with success probability p needed to see the first success, at least 1.
// Used by tests to exercise tail behaviour. p must be in (0, 1].
func (r *RNG) ExpRounds(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: ExpRounds requires p in (0,1]")
	}
	n := 1
	for !r.Bool(p) {
		n++
	}
	return n
}
