package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mis/base"
	"repro/internal/readk"
	"repro/internal/stats"
)

// A1RhoOptOut ablates the ρₖ high-degree opt-out (Algorithm 1's
// deterministic r(v) ← 0). The opt-out is what makes the parent events a
// read-ρₖ family; the ablation measures both that structural fact (via the
// Event 2 builder with and without the cap) and the end-to-end effect on
// Algorithm 1's outcome distribution.
func A1RhoOptOut(c Config) (*Report, error) {
	n := 1 << 12
	if c.Quick {
		n = 1 << 9
	}
	table := stats.NewTable(fmt.Sprintf("A1 — ρₖ opt-out on/off (PA graphs, n=%d, α=3)", n),
		"optout", "event2 K", "alg1 rounds", "inMIS/n", "bad/n", "deferred/n")
	graphLabel := uint64(0xA1) << 32
	for _, optout := range []bool{true, false} {
		runLabel := graphLabel
		if optout {
			runLabel |= 1
		}
		var rounds, inMIS, bad, deferred stats.Summary
		maxK := 0
		for i := 0; i < c.seeds(); i++ {
			// Same graphs for both arms — only the opt-out differs.
			g := gen.PreferentialAttachment(n, 3, c.graphRNG(graphLabel, i))
			params := stressParams(3, g.MaxDegree())
			params.RhoOptOut = optout
			out, err := core.RunAlg1(g, params, c.opts(runLabel, i))
			if err != nil {
				return nil, fmt.Errorf("A1: %w", err)
			}
			rounds.Add(float64(out.Result.Rounds))
			inMIS.Add(float64(out.CountStatus(base.StatusInMIS)) / float64(n))
			bad.Add(float64(out.CountStatus(base.StatusBad)) / float64(n))
			deferred.Add(float64(out.CountStatus(base.StatusActive)) / float64(n))
			if i == 0 {
				o, _ := g.OrientByDegeneracy()
				all := make([]int, g.N())
				for v := range all {
					all[v] = v
				}
				// The structural contrast uses the tightest scale's ρ —
				// the regime the paper's Event 2 analysis lives in.
				rho := params.Rho(params.NumScales)
				if !optout {
					rho = 1 << 30
				}
				_, k, err := readk.Event2Family(o, all, rho)
				if err != nil {
					return nil, err
				}
				maxK = k
			}
		}
		table.AddRow(optout, maxK, rounds.Mean(), inMIS.Mean(), bad.Mean(), deferred.Mean())
	}
	rep := &Report{
		ID:    "A1",
		Title: "without the opt-out, hub priorities are read by unboundedly many children (Event 2 stops being read-ρ)",
		Table: table,
	}
	rep.Notes = append(rep.Notes,
		"correctness survives either way (verified); the opt-out's role is to cap the read parameter the analysis needs, visible in the Event-2 K column.")
	return rep, nil
}

// A2ParamProfiles compares the paper's literal constants with the practical
// profile: where the work lands (shattering vs finishing) and at what cost.
func A2ParamProfiles(c Config) (*Report, error) {
	n := 1 << 12
	if c.Quick {
		n = 1 << 9
	}
	table := stats.NewTable(fmt.Sprintf("A2 — paper vs practical parameter profiles (union-of-trees, n=%d, α=2)", n),
		"profile", "theta", "lambda", "alg1 rounds", "alg1 resolved/n", "finish rounds", "total rounds")
	for _, profile := range []string{"paper", "practical"} {
		label := uint64(0xA2) << 32
		if profile == "paper" {
			label |= 1
		}
		var alg1R, resolved, finR, totR stats.Summary
		var theta, lambda int
		for i := 0; i < c.seeds(); i++ {
			g := arbGraph(n, 2, c.graphRNG(label, i))
			var params *core.Params
			if profile == "paper" {
				params = core.PaperParams(2, g.MaxDegree(), 1)
			} else {
				params = core.PracticalParams(2, g.MaxDegree())
			}
			theta, lambda = params.NumScales, params.Iterations
			out, err := core.ArbMIS(g, params, c.opts(label, i))
			if err != nil {
				return nil, fmt.Errorf("A2: %s: %w", profile, err)
			}
			alg1 := out.Stages[0].Result.Rounds
			alg1R.Add(float64(alg1))
			done := out.Alg1.CountStatus(base.StatusInMIS) + out.Alg1.CountStatus(base.StatusDominated)
			resolved.Add(float64(done) / float64(n))
			finR.Add(float64(out.TotalRounds() - alg1))
			totR.Add(float64(out.TotalRounds()))
		}
		table.AddRow(profile, theta, lambda, alg1R.Mean(), resolved.Mean(), finR.Mean(), totR.Mean())
	}
	rep := &Report{
		ID:    "A2",
		Title: "paper constants make Θ=0 at laptop Δ (alg1 is a no-op); practical constants move the work into the shattering stage",
		Table: table,
	}
	return rep, nil
}

// A3ScaleSensitivity sweeps Λ (iterations per scale), the knob the paper
// sets to Θ(α⁸·log(α·logΔ)): more iterations resolve more nodes inside
// Algorithm 1 (fewer deferred/bad) at proportional round cost.
func A3ScaleSensitivity(c Config) (*Report, error) {
	n := 1 << 12
	if c.Quick {
		n = 1 << 9
	}
	table := stats.NewTable(fmt.Sprintf("A3 — Λ sensitivity (union-of-trees, n=%d, α=3)", n),
		"lambda", "alg1 rounds", "resolved/n", "deferred/n", "bad/n", "total rounds")
	for _, lambda := range []int{1, 2, 4, 8} {
		label := uint64(0xA3)<<32 | uint64(lambda)
		var alg1R, resolved, deferred, bad, totR stats.Summary
		for i := 0; i < c.seeds(); i++ {
			g := arbGraph(n, 3, c.graphRNG(label, i))
			params := core.PracticalParams(3, g.MaxDegree())
			params.Iterations = lambda
			out, err := core.ArbMIS(g, params, c.opts(label, i))
			if err != nil {
				return nil, fmt.Errorf("A3: lambda=%d: %w", lambda, err)
			}
			alg1R.Add(float64(out.Stages[0].Result.Rounds))
			done := out.Alg1.CountStatus(base.StatusInMIS) + out.Alg1.CountStatus(base.StatusDominated)
			resolved.Add(float64(done) / float64(n))
			deferred.Add(float64(out.Alg1.CountStatus(base.StatusActive)) / float64(n))
			bad.Add(float64(out.Alg1.CountStatus(base.StatusBad)) / float64(n))
			totR.Add(float64(out.TotalRounds()))
		}
		table.AddRow(lambda, alg1R.Mean(), resolved.Mean(), deferred.Mean(), bad.Mean(), totR.Mean())
	}
	return &Report{
		ID:    "A3",
		Title: "Λ trades shattering rounds against deferred work, monotonically",
		Table: table,
	}, nil
}
