package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/mis/metivier"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// LayoutBenchEntry is one layout's row at a (family, n) cell of the
// locality matrix (the BENCH_layout.json schema).
type LayoutBenchEntry struct {
	Layout string `json:"layout"`
	// RelabelNS is the one-time cost of computing the ordering and
	// rebuilding the CSR in permuted order, paid once per run setup.
	RelabelNS int64 `json:"relabel_ns"`
	// WallNS is the best-of-reps wall time for one full untraced
	// sequential run (setup included; the relabel cost is also reported
	// separately so the steady-state win is visible).
	WallNS         int64   `json:"wall_ns"`
	Rounds         int     `json:"rounds"`
	Messages       int64   `json:"messages"`
	MessagesPerSec float64 `json:"messages_per_sec"`
	// SpeedupVsIdentity is wall(identity) / wall(this layout) at the same
	// cell; 1 for the identity row by construction.
	SpeedupVsIdentity float64 `json:"speedup_vs_identity,omitempty"`
	// FingerprintClean is the deterministic-event fingerprint of one
	// traced sequential run under this layout; the traced pool run of the
	// same cell must reproduce it exactly (enforced, not just recorded).
	FingerprintClean string `json:"fingerprint_clean"`
}

// LayoutBenchCase is the full layout sweep at one (family, n) cell.
type LayoutBenchCase struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	M      int64  `json:"m"`
	// ScrambleNS is the cost of the label scramble applied before any
	// layout ran (methodology, not part of any layout's own cost).
	ScrambleNS int64             `json:"scramble_ns"`
	Entries    []LayoutBenchEntry `json:"entries"`
}

// LayoutBenchReport is the layout × family × n locality matrix cmd/bench
// -layout-bench writes to BENCH_layout.json.
//
// Methodology: every input graph first has its vertex labels scrambled by
// a seeded random permutation. The generators emit natural, already
// cache-friendly labelings (a grid row-major, a tree in insertion order),
// which real inputs do not have; scrambling first means the identity
// baseline measures the memory layout an arbitrary input arrives with,
// and each layout measures what its relabeling recovers.
type LayoutBenchReport struct {
	Algorithm string `json:"algorithm"`
	Seed      uint64 `json:"seed"`
	Reps      int    `json:"reps"`
	NumCPU    int    `json:"num_cpu"`
	Scrambled bool   `json:"scrambled"`
	// MinSpeedup is the enforced in-run bar: the best non-identity layout
	// on the densest family at the largest n must reach this sequential
	// speedup over identity (0 = record only).
	MinSpeedup float64 `json:"min_speedup,omitempty"`
	// BarFamily/BarN name the cell the bar was evaluated on; BarLayout and
	// BarSpeedup record the winning layout there.
	BarFamily  string  `json:"bar_family,omitempty"`
	BarN       int     `json:"bar_n,omitempty"`
	BarLayout  string  `json:"bar_layout,omitempty"`
	BarSpeedup float64 `json:"bar_speedup,omitempty"`
	Cases      []LayoutBenchCase `json:"cases"`
}

// layoutBenchFamilies builds the benchmark's graph families at size n.
// union and powerlaw carry arboricity/attachment 4 so the largest sizes
// are dense enough for layout to matter; grid is the structured contrast.
func layoutBenchFamilies(r *rng.RNG) []struct {
	name  string
	build func(n int) *graph.Graph
} {
	return []struct {
		name  string
		build func(n int) *graph.Graph
	}{
		{"union", func(n int) *graph.Graph { return gen.UnionOfTrees(n, 4, r.Split(1)) }},
		{"powerlaw", func(n int) *graph.Graph { return gen.PreferentialAttachment(n, 4, r.Split(2)) }},
		{"grid", func(n int) *graph.Graph {
			side := 1
			for side*side < n {
				side++
			}
			return gen.Grid(side, side)
		}},
	}
}

// layoutTracedFingerprint runs one traced metivier run and returns the
// deterministic fingerprint (hex).
func layoutTracedFingerprint(g *graph.Graph, opts congest.Options) (string, error) {
	rec := trace.NewRecorder(0)
	opts.Events = rec
	if _, _, err := metivier.Run(g, opts); err != nil {
		return "", err
	}
	return fmt.Sprintf("%#016x", rec.Fingerprint()), nil
}

// RunLayoutBench measures the cache-locality win of vertex relabeling on
// Métivier MIS: for every (family, n) it scrambles the input's labels,
// then times a sequential run under every ordering in internal/layout,
// fingerprinting one traced sequential and one traced pool run per layout
// (divergence within a layout is an error — the relabeled engine must
// stay bit-identical across drivers at production scale). With
// minSpeedup > 0 the report must show the best non-identity layout
// beating identity by that factor on the densest (most edges) family at
// the largest n, or the bench fails.
func RunLayoutBench(ns []int, seed uint64, reps int, minSpeedup float64) (*LayoutBenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	root := rng.New(seed)
	report := &LayoutBenchReport{
		Algorithm:  "metivier",
		Seed:       seed,
		Reps:       reps,
		NumCPU:     runtime.NumCPU(),
		Scrambled:  true,
		MinSpeedup: minSpeedup,
	}
	maxN := 0
	for _, n := range ns {
		if n > maxN {
			maxN = n
		}
	}
	var barIdentity, barBest int64
	var barLayout string
	var barM int64

	for _, fam := range layoutBenchFamilies(root.Split(0xf)) {
		for _, n := range ns {
			g := fam.build(n)
			// Scramble: the locality an arbitrary input arrives with.
			start := time.Now()
			scrambled, err := graph.Relabel(g, root.Split(uint64(n)).Perm(g.N()))
			if err != nil {
				return nil, fmt.Errorf("layout bench: scramble %s n=%d: %w", fam.name, n, err)
			}
			cse := LayoutBenchCase{
				Family: fam.name, N: g.N(), M: int64(g.M()),
				ScrambleNS: int64(time.Since(start)),
			}
			var identityNS int64
			for _, lo := range layout.Orderings() {
				entry := LayoutBenchEntry{Layout: string(lo)}
				opts := congest.Options{Seed: seed, Layout: string(lo)}

				// One-time relabel cost, measured standalone.
				start := time.Now()
				if perm, _, err := layout.Compute(scrambled, lo); err != nil {
					return nil, fmt.Errorf("layout bench: %s: %w", lo, err)
				} else if perm != nil {
					if _, err := graph.Relabel(scrambled, perm); err != nil {
						return nil, fmt.Errorf("layout bench: %s: %w", lo, err)
					}
				}
				entry.RelabelNS = int64(time.Since(start))

				var best time.Duration
				for rep := 0; rep < reps; rep++ {
					start := time.Now()
					_, res, err := metivier.Run(scrambled, opts)
					wall := time.Since(start)
					if err != nil {
						return nil, fmt.Errorf("layout bench: %s n=%d %s: %w", fam.name, n, lo, err)
					}
					if rep == 0 || wall < best {
						best = wall
					}
					entry.Rounds, entry.Messages = res.Rounds, res.Messages
				}
				entry.WallNS = int64(best)
				if secs := best.Seconds(); secs > 0 {
					entry.MessagesPerSec = float64(entry.Messages) / secs
				}

				// Determinism at production scale: within a layout, the
				// traced sequential and pool runs must fingerprint alike.
				seqFP, err := layoutTracedFingerprint(scrambled, opts)
				if err != nil {
					return nil, fmt.Errorf("layout bench: %s n=%d %s traced: %w", fam.name, n, lo, err)
				}
				poolOpts := opts
				poolOpts.Driver = congest.DriverPool
				poolOpts.Workers = 4
				poolFP, err := layoutTracedFingerprint(scrambled, poolOpts)
				if err != nil {
					return nil, fmt.Errorf("layout bench: %s n=%d %s pool: %w", fam.name, n, lo, err)
				}
				if seqFP != poolFP {
					return nil, fmt.Errorf("layout bench: %s n=%d %s: sequential fingerprint %s != pool %s",
						fam.name, n, lo, seqFP, poolFP)
				}
				entry.FingerprintClean = seqFP

				if lo == layout.Identity {
					identityNS = entry.WallNS
					entry.SpeedupVsIdentity = 1
				} else if entry.WallNS > 0 {
					entry.SpeedupVsIdentity = float64(identityNS) / float64(entry.WallNS)
				}
				cse.Entries = append(cse.Entries, entry)
			}
			// The bar cell: densest family (most edges) at the largest n.
			if cse.N >= maxN && cse.M > barM {
				barM, report.BarFamily, report.BarN = cse.M, fam.name, cse.N
				barIdentity, barBest, barLayout = identityNS, 0, ""
				for _, e := range cse.Entries[1:] {
					if barBest == 0 || e.WallNS < barBest {
						barBest, barLayout = e.WallNS, e.Layout
					}
				}
			}
			report.Cases = append(report.Cases, cse)
		}
	}
	if barBest > 0 {
		report.BarLayout = barLayout
		report.BarSpeedup = float64(barIdentity) / float64(barBest)
	}
	if minSpeedup > 0 && report.BarSpeedup < minSpeedup {
		return nil, fmt.Errorf(
			"layout bench: best layout %s on %s n=%d reaches %.3fx over identity, below the %.2fx bar",
			report.BarLayout, report.BarFamily, report.BarN, report.BarSpeedup, minSpeedup)
	}
	return report, nil
}

// E22LayoutLocality runs a reduced slice of the layout × family matrix
// (DESIGN.md S30): every ordering over every scrambled family at one
// moderate size, asserting within-layout sequential/pool
// bit-identity while recording the locality speedups. The production
// matrix (n up to 2^20, BENCH_layout.json, with the ≥1.15x bar enforced)
// comes from `make bench-layout`; this experiment is the in-harness
// shape check and is record-only.
func E22LayoutLocality(c Config) (*Report, error) {
	n := 1 << 16
	reps := 2
	if c.Quick {
		n = 1 << 11
		reps = 1
	}
	seed := rng.New(c.Seed).Split(0xE22).Uint64()
	bench, err := RunLayoutBench([]int{n}, seed, reps, 0)
	if err != nil {
		return nil, err
	}
	table := stats.NewTable(fmt.Sprintf("Cache-conscious layouts — metivier, scrambled labels, n=%d, best of %d", n, reps),
		"family", "layout", "wall ms", "relabel ms", "speedup", "msgs/s")
	for _, cse := range bench.Cases {
		for _, e := range cse.Entries {
			table.AddRow(cse.Family, e.Layout, float64(e.WallNS)/1e6, float64(e.RelabelNS)/1e6,
				e.SpeedupVsIdentity, e.MessagesPerSec)
		}
	}
	rep := &Report{
		ID:    "E22",
		Title: "vertex relabeling recovers the locality scrambled labels destroy, bit-identically",
		Table: table,
	}
	rep.Notes = append(rep.Notes,
		"inputs are label-scrambled first: generators emit natural orderings real inputs lack, so identity here is the layout an arbitrary input arrives with")
	for _, cse := range bench.Cases {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s n=%d: every layout's traced pool run reproduced its sequential fingerprint (identity %s)",
			cse.Family, cse.N, cse.Entries[0].FingerprintClean))
	}
	return rep, nil
}
