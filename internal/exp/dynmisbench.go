package exp

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/congest"
	"repro/internal/dynmis"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/metivier"
	"repro/internal/rng"
	"repro/internal/stats"
)

// DynmisBenchEntry is one (family, n) row of the dynamic-MIS benchmark
// (the BENCH_dynmis.json schema): incremental-repair throughput against
// the full-recompute baseline on the same update stream, plus the
// repaired-region size distribution — the dynamic analogue of the paper's
// residual-component bound — and the cross-driver stream fingerprint.
type DynmisBenchEntry struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	// Batches/Updates describe the stream (bootstrap excluded).
	Batches int `json:"batches"`
	Updates int `json:"updates"`
	// BootstrapNS is the initial full compute; ApplyNS the wall time of
	// the whole incremental stream after it.
	BootstrapNS int64 `json:"bootstrap_ns"`
	ApplyNS     int64 `json:"apply_ns"`
	// UpdatesPerSec is incremental-repair throughput; RecomputePerSec the
	// full-recompute baseline's (sampled: snapshot + full Métivier run per
	// batch); Speedup their ratio.
	UpdatesPerSec   float64 `json:"updates_per_sec"`
	RecomputePerSec float64 `json:"recompute_per_sec"`
	Speedup         float64 `json:"speedup"`
	// RecomputeSampled is the number of batches the baseline timed.
	RecomputeSampled int `json:"recompute_sampled"`
	// Region size distribution across the stream's repairs (bootstrap
	// excluded); RegionZero counts batches that needed no repair at all.
	RegionMean float64 `json:"region_mean"`
	RegionP50  int     `json:"region_p50"`
	RegionP90  int     `json:"region_p90"`
	RegionMax  int     `json:"region_max"`
	RegionZero int     `json:"region_zero"`
	// Fingerprint is the stream fingerprint after the last batch, identical
	// across the sequential and pool drivers (enforced, not just recorded).
	Fingerprint string `json:"fingerprint"`
	// MISSize is the maintained set's final size.
	MISSize int `json:"mis_size"`
}

// DynmisBenchReport is what cmd/bench -dynmis-bench writes to
// BENCH_dynmis.json.
type DynmisBenchReport struct {
	Seed      uint64  `json:"seed"`
	BatchSize int     `json:"batch_size"`
	Locality  float64 `json:"locality"`
	Churn     float64 `json:"churn"`
	NumCPU    int     `json:"num_cpu"`
	// MinSpeedup is the acceptance bar enforced on rows with n >=
	// MinSpeedupN (0 = record only).
	MinSpeedup  float64            `json:"min_speedup,omitempty"`
	MinSpeedupN int                `json:"min_speedup_n,omitempty"`
	Entries     []DynmisBenchEntry `json:"entries"`
}

// DynmisBenchCase names one (family, n, batches) cell of the sweep.
type DynmisBenchCase struct {
	Family  string
	N       int
	Batches int
}

// dynmisBenchGraph builds the base graph for a benchmark case.
func dynmisBenchGraph(family string, n int, r *rng.RNG) (*graph.Graph, error) {
	switch family {
	case "tree":
		return gen.RandomTree(n, r), nil
	case "union":
		return gen.UnionOfTrees(n, 2, r), nil
	case "gnp":
		return gen.GNP(n, 4/float64(n), r), nil
	default:
		return nil, fmt.Errorf("dynmis bench: unknown family %q", family)
	}
}

// dynmisRecomputeSamples caps how many batches the full-recompute baseline
// times: a full Métivier run per sampled batch is the expensive half of
// the benchmark, and a handful of samples pins the per-batch cost tightly
// (full runs on near-identical graphs have tiny variance).
const dynmisRecomputeSamples = 8

// RunDynmisBench measures the dynamic-MIS engine on generated update
// streams: for every case it bootstraps an engine, replays the stream
// timing the incremental repairs, replays it again on the pool driver
// (enforcing a bit-identical stream fingerprint), and times the
// full-recompute baseline — snapshot the live graph, run Métivier from
// scratch — on a sample of the same batches. minSpeedup, when positive, is
// enforced on every row with n >= minSpeedupN: incremental repair must
// beat full recomputation by at least that factor or the bench errors.
func RunDynmisBench(cases []DynmisBenchCase, cfg dynmis.StreamConfig, seed uint64, minSpeedup float64, minSpeedupN int) (*DynmisBenchReport, error) {
	report := &DynmisBenchReport{
		Seed:        seed,
		BatchSize:   cfg.BatchSize,
		Locality:    cfg.Locality,
		Churn:       cfg.Churn,
		NumCPU:      runtime.NumCPU(),
		MinSpeedup:  minSpeedup,
		MinSpeedupN: minSpeedupN,
	}
	for ci, bc := range cases {
		caseCfg := cfg
		caseCfg.Batches = bc.Batches
		root := rng.New(seed).Split(0xE20).Split(uint64(ci))
		g, err := dynmisBenchGraph(bc.Family, bc.N, root.Split(1))
		if err != nil {
			return nil, err
		}
		batches, err := dynmis.UpdateStream(g, caseCfg, root.Split(2))
		if err != nil {
			return nil, fmt.Errorf("dynmis bench: %s n=%d stream: %w", bc.Family, bc.N, err)
		}
		engineSeed := root.Split(3).Uint64()

		entry := DynmisBenchEntry{Family: bc.Family, N: g.N(), M: g.M(), Batches: len(batches)}

		// Sequential engine: the timed run.
		start := time.Now()
		e, err := dynmis.New(g, dynmis.Options{Seed: engineSeed})
		if err != nil {
			return nil, fmt.Errorf("dynmis bench: %s n=%d bootstrap: %w", bc.Family, bc.N, err)
		}
		entry.BootstrapNS = int64(time.Since(start))
		regions := make([]int, 0, len(batches))
		start = time.Now()
		for bi, b := range batches {
			rep, err := e.Apply(b)
			if err != nil {
				return nil, fmt.Errorf("dynmis bench: %s n=%d batch %d: %w", bc.Family, bc.N, bi, err)
			}
			entry.Updates += rep.Updates
			regions = append(regions, rep.Region)
			if rep.Region == 0 {
				entry.RegionZero++
			}
		}
		applyWall := time.Since(start)
		entry.ApplyNS = int64(applyWall)
		if secs := applyWall.Seconds(); secs > 0 {
			entry.UpdatesPerSec = float64(entry.Updates) / secs
		}
		entry.Fingerprint = fmt.Sprintf("%#016x", e.Fingerprint())
		entry.MISSize = len(e.MIS())

		// Pool engine: untimed, fingerprint must match the sequential run.
		ep, err := dynmis.New(g, dynmis.Options{Seed: engineSeed, Parallel: true})
		if err != nil {
			return nil, fmt.Errorf("dynmis bench: %s n=%d pool bootstrap: %w", bc.Family, bc.N, err)
		}
		for bi, b := range batches {
			if _, err := ep.Apply(b); err != nil {
				return nil, fmt.Errorf("dynmis bench: %s n=%d pool batch %d: %w", bc.Family, bc.N, bi, err)
			}
		}
		if poolFP := fmt.Sprintf("%#016x", ep.Fingerprint()); poolFP != entry.Fingerprint {
			return nil, fmt.Errorf("dynmis bench: %s n=%d pool fingerprint %s != sequential %s",
				bc.Family, bc.N, poolFP, entry.Fingerprint)
		}

		// Full-recompute baseline: replay the stream on a bare DGraph and,
		// on a spread sample of batches, snapshot + full Métivier run.
		d := dynmis.NewDGraph(g)
		sample := dynmisRecomputeSamples
		if sample > len(batches) {
			sample = len(batches)
		}
		stride := 1
		if sample > 0 {
			stride = len(batches) / sample
		}
		var recomputeWall time.Duration
		sampledUpdates := 0
		for bi, b := range batches {
			for _, u := range b {
				if err := applyToDGraph(d, u); err != nil {
					return nil, fmt.Errorf("dynmis bench: %s n=%d baseline batch %d: %w", bc.Family, bc.N, bi, err)
				}
			}
			if stride == 0 || bi%stride != 0 || entry.RecomputeSampled >= sample {
				continue
			}
			start = time.Now()
			snap, _ := d.Snapshot()
			if _, _, err := metivier.Run(snap, recomputeOptions(engineSeed, bi)); err != nil {
				return nil, fmt.Errorf("dynmis bench: %s n=%d recompute batch %d: %w", bc.Family, bc.N, bi, err)
			}
			recomputeWall += time.Since(start)
			sampledUpdates += len(b)
			entry.RecomputeSampled++
		}
		if secs := recomputeWall.Seconds(); secs > 0 && sampledUpdates > 0 {
			entry.RecomputePerSec = float64(sampledUpdates) / secs
		}
		if entry.RecomputePerSec > 0 {
			entry.Speedup = entry.UpdatesPerSec / entry.RecomputePerSec
		}

		sort.Ints(regions)
		if len(regions) > 0 {
			sum := 0
			for _, r := range regions {
				sum += r
			}
			entry.RegionMean = float64(sum) / float64(len(regions))
			entry.RegionP50 = regions[len(regions)/2]
			entry.RegionP90 = regions[len(regions)*9/10]
			entry.RegionMax = regions[len(regions)-1]
		}

		if minSpeedup > 0 && entry.N >= minSpeedupN && entry.Speedup < minSpeedup {
			return nil, fmt.Errorf("dynmis bench: %s n=%d speedup %.1fx below the %.0fx acceptance bar",
				bc.Family, bc.N, entry.Speedup, minSpeedup)
		}
		report.Entries = append(report.Entries, entry)
	}
	return report, nil
}

// recomputeOptions builds the baseline run's options; the seed derivation
// mirrors the engine's per-batch scheme so baseline runs are themselves
// deterministic.
func recomputeOptions(seed uint64, batch int) congest.Options {
	return congest.Options{Seed: rng.New(seed).Split(uint64(batch)).Uint64()}
}

// applyToDGraph mirrors one update onto the baseline's bare graph.
func applyToDGraph(d *dynmis.DGraph, u dynmis.Update) error {
	switch u.Op {
	case dynmis.OpInsertEdge:
		return d.InsertEdge(u.U, u.V)
	case dynmis.OpRemoveEdge:
		return d.RemoveEdge(u.U, u.V)
	case dynmis.OpInsertNode:
		id := d.InsertNode()
		if u.U >= 0 && u.U != id {
			return fmt.Errorf("expected node ID %d, allocated %d", u.U, id)
		}
		return nil
	case dynmis.OpRemoveNode:
		_, err := d.RemoveNode(u.U)
		return err
	default:
		return fmt.Errorf("invalid op %v", u.Op)
	}
}

// E20DynamicUpdates is the in-harness slice of the dynamic-MIS benchmark
// (DESIGN.md S28): incremental repair versus full recomputation on a
// low-locality update stream, with the repaired-region size distribution
// and the cross-driver fingerprint check. The full trajectory (n up to
// 2^16 with the 10x acceptance bar enforced) comes from `make
// bench-dynmis`; the quick config is the smoke-test slice.
func E20DynamicUpdates(c Config) (*Report, error) {
	cases := []DynmisBenchCase{
		{Family: "tree", N: 1 << 12, Batches: 48},
		{Family: "union", N: 1 << 14, Batches: 48},
	}
	cfg := dynmis.StreamConfig{BatchSize: 16, Locality: 0, Churn: 0.05}
	if c.Quick {
		cases = []DynmisBenchCase{{Family: "tree", N: 1 << 8, Batches: 12}}
		cfg.BatchSize = 8
	}
	seed := rng.New(c.Seed).Split(0xE20).Uint64()
	bench, err := RunDynmisBench(cases, cfg, seed, 0, 0)
	if err != nil {
		return nil, err
	}
	table := stats.NewTable(fmt.Sprintf("Dynamic updates — incremental repair vs full recompute (batch=%d, locality=%v, churn=%v)",
		cfg.BatchSize, cfg.Locality, cfg.Churn),
		"family", "n", "updates/s", "recompute/s", "speedup", "region mean", "p90", "max")
	for _, e := range bench.Entries {
		table.AddRow(e.Family, e.N, e.UpdatesPerSec, e.RecomputePerSec, e.Speedup, e.RegionMean, e.RegionP90, e.RegionMax)
	}
	rep := &Report{
		ID:    "E20",
		Title: "incremental repair tracks the update's local consequences, not the graph",
		Table: table,
	}
	for _, e := range bench.Entries {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s n=%d: stream fingerprint %s identical across sequential and pool drivers (enforced); mean region %.1f of %d vertices",
			e.Family, e.N, e.Fingerprint, e.RegionMean, e.N))
	}
	return rep, nil
}
