package exp

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/mis/metivier"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TraceBenchEntry is one tracing mode's cost measurement in a trace
// overhead run (the BENCH_trace.json schema).
type TraceBenchEntry struct {
	// Mode names the tracing configuration: "off", "ring", "jsonl".
	Mode string `json:"mode"`
	// WallNS is the best-of-reps wall time for one full run.
	WallNS int64 `json:"wall_ns"`
	// OverheadPct is (WallNS/off.WallNS - 1) × 100; zero for the baseline.
	OverheadPct float64 `json:"overhead_pct"`
	// Events is the number of trace events the run emitted (0 when off).
	Events uint64 `json:"events"`
	// Fingerprint is the deterministic-stream fingerprint (0 when off);
	// identical for every traced mode of the same workload by construction.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Rounds and Messages are the run's CONGEST counters, identical across
	// modes (tracing is observational).
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
}

// TraceBenchReport is the seed-pinned tracing-cost trajectory that
// cmd/bench -trace-bench writes to BENCH_trace.json, so successive PRs can
// check the ring sink stays within its overhead budget on identical work.
type TraceBenchReport struct {
	Algorithm  string            `json:"algorithm"`
	Graph      string            `json:"graph"`
	N          int               `json:"n"`
	Seed       uint64            `json:"seed"`
	Reps       int               `json:"reps"`
	Driver     string            `json:"driver"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Modes      []TraceBenchEntry `json:"modes"`
}

// RunTraceBench measures tracing overhead on one pinned workload: Métivier
// MIS on UnionOfTrees(n, 2) under the pool driver, best wall time of reps
// runs per mode. Modes: "off" (no sink), "ring" (Recorder only), "jsonl"
// (Recorder streaming to a temp file, deleted afterwards). The run
// counters must agree across modes and the traced modes must agree on the
// deterministic fingerprint — a mismatch is an error, so the benchmark
// doubles as a tracing-is-observational check.
func RunTraceBench(n int, seed uint64, reps int) (*TraceBenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	g := gen.UnionOfTrees(n, 2, rng.New(seed))
	report := &TraceBenchReport{
		Algorithm:  "metivier",
		Graph:      "union-of-trees(alpha=2)",
		N:          n,
		Seed:       seed,
		Reps:       reps,
		Driver:     congest.DriverPool.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	modes := []string{"off", "ring", "jsonl"}
	var ref *congest.Result
	var refFP uint64
	for _, mode := range modes {
		entry := TraceBenchEntry{Mode: mode}
		var best time.Duration
		for rep := 0; rep < reps; rep++ {
			opts := congest.Options{Seed: seed, Driver: congest.DriverPool}
			var rec *trace.Recorder
			var jsonl *trace.JSONLSink
			var tmp *os.File
			switch mode {
			case "ring":
				rec = trace.NewRecorder(0)
				opts.Events = rec
			case "jsonl":
				f, err := os.CreateTemp("", "trace-bench-*.jsonl")
				if err != nil {
					return nil, fmt.Errorf("trace bench: %w", err)
				}
				tmp = f
				jsonl = trace.NewJSONLSink(f)
				rec = trace.NewRecorder(0, jsonl)
				opts.Events = rec
			}
			start := time.Now()
			_, res, err := metivier.Run(g, opts)
			if err == nil && jsonl != nil {
				err = jsonl.Flush()
			}
			wall := time.Since(start)
			if tmp != nil {
				tmp.Close()
				os.Remove(tmp.Name())
			}
			if err != nil {
				return nil, fmt.Errorf("trace bench: mode %s: %w", mode, err)
			}
			if ref == nil {
				r := res
				ref = &r
			} else if res != *ref {
				return nil, fmt.Errorf("trace bench: mode %s perturbed the run: %+v != %+v", mode, res, *ref)
			}
			if rec != nil {
				if refFP == 0 {
					refFP = rec.Fingerprint()
				} else if rec.Fingerprint() != refFP {
					return nil, fmt.Errorf("trace bench: mode %s fingerprint %#x != %#x", mode, rec.Fingerprint(), refFP)
				}
				entry.Events = rec.Total()
				entry.Fingerprint = fmt.Sprintf("%#x", rec.Fingerprint())
			}
			if rep == 0 || wall < best {
				best = wall
			}
			entry.Rounds, entry.Messages = res.Rounds, res.Messages
		}
		entry.WallNS = int64(best)
		if len(report.Modes) > 0 && report.Modes[0].WallNS > 0 {
			entry.OverheadPct = (float64(entry.WallNS)/float64(report.Modes[0].WallNS) - 1) * 100
		}
		report.Modes = append(report.Modes, entry)
	}
	return report, nil
}

// E17TraceOverhead measures the cost of the execution-trace subsystem
// (DESIGN.md S24): the same pinned workload with tracing off, with the
// in-memory ring recorder, and with JSONL streaming. The acceptance budget
// is ring ≤ 15% wall-clock overhead at n = 2^14 on the pool driver; the
// quick configuration shrinks n but checks the same shape.
func E17TraceOverhead(c Config) (*Report, error) {
	n := 1 << 14
	reps := 5
	if c.Quick {
		n = 1 << 9
		reps = 1
	}
	seed := rng.New(c.Seed).Split(0xE17).Uint64()
	bench, err := RunTraceBench(n, seed, reps)
	if err != nil {
		return nil, err
	}
	table := stats.NewTable(fmt.Sprintf("Tracing overhead — metivier, n=%d, pool driver, best of %d", n, reps),
		"mode", "wall ms", "overhead %", "events", "rounds")
	for _, m := range bench.Modes {
		table.AddRow(m.Mode, float64(m.WallNS)/1e6, m.OverheadPct, int(m.Events), m.Rounds)
	}
	rep := &Report{
		ID:    "E17",
		Title: "execution tracing is cheap: ring recording within its 15% overhead budget",
		Table: table,
	}
	ring := bench.Modes[1]
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"ring overhead %.1f%% (budget 15%%), jsonl %.1f%%; %d events, fingerprint %s identical across traced modes",
		ring.OverheadPct, bench.Modes[2].OverheadPct, ring.Events, ring.Fingerprint))
	return rep, nil
}
