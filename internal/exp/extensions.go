package exp

import (
	"errors"
	"fmt"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mis/base"
	"repro/internal/mis/degreduce"
	"repro/internal/mis/localmin"
	"repro/internal/mis/luby"
	"repro/internal/mis/metivier"
	"repro/internal/stats"
)

// E13DegreeReduction measures the §3.3 preprocessing (Barenboim et al.
// Theorem 7.2 as reproduced here): after O(√(log n·log log n)) priority
// iterations, the surviving subgraph's maximum degree is at most
// α·2^√(log n·log log n).
func E13DegreeReduction(c Config) (*Report, error) {
	n := 1 << 14
	if c.Quick {
		n = 1 << 10
	}
	budget := degreduce.Iterations(n, 1)
	target := degreduce.TargetDegree(n, 3)
	table := stats.NewTable(fmt.Sprintf(
		"Theorem 7.2 substrate — max degree vs preprocessing iterations (PA graphs, n=%d, α=3, budget=%d, target=%.0f)",
		n, budget, target),
		"iters", "survivors/n", "survivorMaxDeg", "belowTarget")
	label := uint64(0xE13)
	exceeded := 0
	for iters := 1; iters <= budget; iters++ {
		var surv, maxDeg stats.Summary
		ok := true
		for i := 0; i < c.seeds(); i++ {
			g := gen.PreferentialAttachment(n, 3, c.graphRNG(label, i))
			statuses, _, err := degreduce.Run(g, iters, c.opts(label+uint64(iters)<<16, i))
			if err != nil {
				return nil, fmt.Errorf("E13: %w", err)
			}
			_, sub, err := degreduce.Survivors(g, statuses)
			if err != nil {
				return nil, err
			}
			surv.Add(float64(sub.N()) / float64(n))
			maxDeg.Add(float64(sub.MaxDegree()))
			if float64(sub.MaxDegree()) > target {
				ok = false
			}
		}
		if !ok {
			exceeded++
		}
		table.AddRow(iters, surv.Mean(), maxDeg.Mean(), ok)
		if surv.Max() == 0 {
			break // everything already resolved; further rows are zeros
		}
	}
	rep := &Report{
		ID:    "E13",
		Title: "the √(log n·log log n)-iteration budget reduces the surviving max degree below α·2^√(log n·log log n)",
		Table: table,
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"rows above target after the first iteration: %d; at the full budget the survivor set is empty — stronger than the theorem needs", exceeded))
	return rep, nil
}

// E14RoundDecay uses the engine's observer to trace the active-set decay
// per round — the raw shattering dynamics behind Lemma 3.7 — for the two
// randomized engines the paper discusses.
func E14RoundDecay(c Config) (*Report, error) {
	n := 1 << 13
	if c.Quick {
		n = 1 << 9
	}
	table := stats.NewTable(fmt.Sprintf("Active-set decay per round (union-of-trees, n=%d, α=3)", n),
		"algorithm", "rounds to 50%", "to 10%", "to 1%", "to done")
	algos := []struct {
		name string
		run  func(g *graph.Graph, opts congest.Options) error
	}{
		{"metivier", func(g *graph.Graph, opts congest.Options) error {
			_, _, err := metivier.Run(g, opts)
			return err
		}},
		{"lubyB", func(g *graph.Graph, opts congest.Options) error {
			_, _, err := luby.RunB(g, opts)
			return err
		}},
	}
	for ai, algo := range algos {
		label := uint64(0xE14)<<32 | uint64(ai)
		var r50, r10, r1, rDone stats.Summary
		for i := 0; i < c.seeds(); i++ {
			g := arbGraph(n, 3, c.graphRNG(label, i))
			opts := c.opts(label, i)
			cross := map[string]int{}
			opts.Observer = func(round, live int, _ int64) {
				frac := float64(live) / float64(n)
				for _, mark := range []struct {
					key string
					at  float64
				}{{"50", 0.5}, {"10", 0.1}, {"1", 0.01}, {"0", 0}} {
					if _, seen := cross[mark.key]; !seen && frac <= mark.at {
						cross[mark.key] = round
					}
				}
			}
			if err := algo.run(g, opts); err != nil {
				return nil, fmt.Errorf("E14: %s: %w", algo.name, err)
			}
			r50.Add(float64(cross["50"]))
			r10.Add(float64(cross["10"]))
			r1.Add(float64(cross["1"]))
			rDone.Add(float64(cross["0"]))
		}
		table.AddRow(algo.name, r50.Mean(), r10.Mean(), r1.Mean(), rDone.Mean())
	}
	rep := &Report{
		ID:    "E14",
		Title: "active sets decay geometrically — most nodes resolve in the first few rounds, a short tail finishes the rest",
		Table: table,
	}
	return rep, nil
}

// A4Reliability ablates CONGEST's reliable-delivery assumption: with
// messages dropped at rate p, algorithms can emit invalid results (two
// adjacent joiners that never saw each other's priority) or stall (a
// removal announcement lost forever). The paper's model makes reliability
// load-bearing; this quantifies how much.
func A4Reliability(c Config) (*Report, error) {
	n := 1 << 9
	runs := 4 * c.seeds()
	table := stats.NewTable(fmt.Sprintf("A4 — message loss vs outcome (union-of-trees, n=%d, α=2)", n),
		"algorithm", "dropProb", "valid", "invalid", "stalled")
	algos := []struct {
		name string
		run  func(g *graph.Graph, opts congest.Options) ([]base.Status, error)
	}{
		{"metivier", func(g *graph.Graph, opts congest.Options) ([]base.Status, error) {
			st, _, err := metivier.Run(g, opts)
			return st, err
		}},
		{"localmin", func(g *graph.Graph, opts congest.Options) ([]base.Status, error) {
			st, _, err := localmin.Run(g, opts)
			return st, err
		}},
	}
	for ai, algo := range algos {
		for _, drop := range []float64{0, 0.02, 0.1} {
			label := uint64(0xA4)<<32 | uint64(ai)<<8 | uint64(drop*100)
			valid, invalid, stalled := 0, 0, 0
			for i := 0; i < runs; i++ {
				g := arbGraph(n, 2, c.graphRNG(label, i))
				opts := c.opts(label, i)
				opts.DropProb = drop
				opts.MaxRounds = 3000
				statuses, err := algo.run(g, opts)
				switch {
				case errors.Is(err, congest.ErrMaxRounds):
					stalled++
				case err != nil:
					return nil, fmt.Errorf("A4: %s: %w", algo.name, err)
				case base.VerifyStatuses(g, statuses) != nil:
					invalid++
				default:
					valid++
				}
			}
			table.AddRow(algo.name, drop, valid, invalid, stalled)
		}
	}
	rep := &Report{
		ID:    "A4",
		Title: "reliable delivery is load-bearing: under loss, priority MIS yields invalid sets and deterministic sweeps stall",
		Table: table,
	}
	rep.Notes = append(rep.Notes,
		"drop injection deliberately violates the CONGEST model; at drop=0 every run must be valid.")
	return rep, nil
}

// A5BadFinisher compares the two bad-component finishers on a forced bad
// set: the local-minimum sweep (component-size-bounded rounds) and the
// paper's Lemma 3.8 forest-decomposition + Cole-Vishkin pipeline.
func A5BadFinisher(c Config) (*Report, error) {
	n := 1 << 11
	if c.Quick {
		n = 1 << 9
	}
	table := stats.NewTable(fmt.Sprintf("A5 — bad-set finisher comparison (forced B, union-of-trees, n=%d, α=2)", n),
		"finisher", "|B|", "badStageRounds", "totalRounds")
	for _, fin := range []struct {
		name string
		kind core.BadFinisher
	}{
		{"localmin", core.FinisherLocalMin},
		{"forest+CV", core.FinisherForestCV},
	} {
		label := uint64(0xA5)<<32 | uint64(fin.kind)
		var badSize, badRounds, total stats.Summary
		for i := 0; i < c.seeds(); i++ {
			g := arbGraph(n, 2, c.graphRNG(uint64(0xA5)<<32, i)) // same graphs across arms
			params := core.PracticalParams(2, g.MaxDegree())
			params.Iterations = 1
			for k := 1; k <= params.NumScales; k++ {
				params.SetBadLimit(k, -1)
			}
			out, err := core.ArbMISWithFinisher(g, params, fin.kind, c.opts(label, i))
			if err != nil {
				return nil, fmt.Errorf("A5: %s: %w", fin.name, err)
			}
			badSize.Add(float64(out.Alg1.CountStatus(base.StatusBad)))
			for _, s := range out.Stages {
				if s.Name == "bad" {
					badRounds.Add(float64(s.Result.Rounds))
				}
			}
			total.Add(float64(out.TotalRounds()))
		}
		table.AddRow(fin.name, badSize.Mean(), badRounds.Mean(), total.Mean())
	}
	rep := &Report{
		ID:    "A5",
		Title: "both finishers yield verified MIS; forest+Cole-Vishkin pays decomposition+coloring overhead, local-min pays component-diameter rounds",
		Table: table,
	}
	return rep, nil
}

// E15Matching situates the third member of the paper's "late-80s trio"
// (reference [8], Israeli-Itai maximal matching) next to the MIS
// algorithms: O(log n) rounds with the same geometric-decay profile.
func E15Matching(c Config) (*Report, error) {
	ns := []int{1 << 10, 1 << 13, 1 << 16}
	if c.Quick {
		ns = []int{1 << 8, 1 << 10}
	}
	table := stats.NewTable("Israeli-Itai maximal matching (union-of-trees, α=2)",
		"n", "rounds", "rounds/log2n", "matchedFrac")
	for _, n := range ns {
		label := uint64(0xE15)<<32 | uint64(n)
		var rounds, frac stats.Summary
		for i := 0; i < c.seeds(); i++ {
			g := arbGraph(n, 2, c.graphRNG(label, i))
			partners, res, err := matching.Run(g, c.opts(label, i))
			if err != nil {
				return nil, fmt.Errorf("E15: %w", err)
			}
			rounds.Add(float64(res.Rounds))
			frac.Add(float64(2*matching.Size(partners)) / float64(n))
		}
		table.AddRow(n, rounds.Mean(), rounds.Mean()/log2f(n), frac.Mean())
	}
	rep := &Report{
		ID:    "E15",
		Title: "maximal matching — the paper's cited sibling primitive — in O(log n) rounds",
		Table: table,
	}
	return rep, nil
}

func log2f(n int) float64 {
	l := 0.0
	for m := 1; m < n; m *= 2 {
		l++
	}
	if l == 0 {
		return 1
	}
	return l
}
