package exp

import (
	"fmt"
	"math"

	"repro/internal/readk"
	"repro/internal/rng"
	"repro/internal/stats"
)

// slidingFamily builds the canonical read-k family used by E6/E7: n = m
// members over m base variables, member j computing a boolean of bits
// j..j+k-1 (cyclic). kind selects the member function: "parity" (p = 1/2)
// or "or" (p = 1 - 2⁻ᵏ, the high-p regime where conjunctions are likely).
func slidingFamily(m, k int, kind string) (*readk.Family, error) {
	f, err := readk.NewFamily(m)
	if err != nil {
		return nil, err
	}
	for j := 0; j < m; j++ {
		deps := make([]int, k)
		for i := 0; i < k; i++ {
			deps[i] = (j + i) % m
		}
		var fn func(vals []uint64) bool
		switch kind {
		case "parity":
			fn = func(vals []uint64) bool {
				var p uint64
				for _, v := range vals {
					p ^= v & 1
				}
				return p == 1
			}
		case "or":
			fn = func(vals []uint64) bool {
				for _, v := range vals {
					if v&1 == 1 {
						return true
					}
				}
				return false
			}
		default:
			return nil, fmt.Errorf("exp: unknown member kind %q", kind)
		}
		if err := f.Add(deps, fn); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// E6ConjunctionBound validates Theorem 1.1 (the read-k conjunction bound):
// empirical Pr[Y₁=...=Yₙ=1] never exceeds p^(n/k), while the independent
// bound pⁿ is genuinely violated for k ≥ 2 — demonstrating both that the
// read-k relaxation is needed and that it suffices.
func E6ConjunctionBound(c Config) (*Report, error) {
	m := 16
	trials := 400000
	if c.Quick {
		trials = 50000
	}
	table := stats.NewTable("Theorem 1.1 — conjunction probability vs bounds (OR members, m=n=16)",
		"k", "p", "empirical", "read-k p^(n/k)", "indep p^n", "indepViolated")
	violations, indepViolations := 0, 0
	r := rng.New(c.Seed).Split(0xE6)
	for _, k := range []int{1, 2, 3, 4, 6, 8} {
		f, err := slidingFamily(m, k, "or")
		if err != nil {
			return nil, err
		}
		exactAll, means := f.ExactBinary()
		_ = exactAll
		mc, err := f.Estimate(r.Split(uint64(k)), trials)
		if err != nil {
			return nil, err
		}
		p := means[0]
		bound := readk.ConjunctionBound(p, f.N(), k)
		indep := math.Pow(p, float64(f.N()))
		if mc.AllOnes > bound+0.005 {
			violations++
		}
		iv := exactAll > indep*1.0000001
		if iv {
			indepViolations++
		}
		table.AddRow(k, p, exactAll, bound, indep, iv)
	}
	rep := &Report{
		ID:    "E6",
		Title: "read-k conjunction bound p^(n/k) holds; naive independence bound pⁿ fails for k ≥ 2",
		Table: table,
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"read-k bound violations: %d (0 expected); independence bound violated in %d rows (expected for every k ≥ 2)",
		violations, indepViolations))
	return rep, nil
}

// E7TailBound validates Theorem 1.2 in both forms on the parity family,
// and quantifies the paper's remark that the bound beats the Azuma bound
// obtained from Y being k-Lipschitz in the base variables.
func E7TailBound(c Config) (*Report, error) {
	m := 4000
	trials := 30000
	if c.Quick {
		m, trials = 500, 8000
	}
	table := stats.NewTable(fmt.Sprintf("Theorem 1.2 — lower-tail mass vs bounds (parity members, n=m=%d)", m),
		"k", "delta", "empirical", "form2 bound", "chernoff(k=1)", "azuma")
	violations := 0
	r := rng.New(c.Seed).Split(0xE7)
	for _, k := range []int{1, 2, 4, 8} {
		f, err := slidingFamily(m, k, "parity")
		if err != nil {
			return nil, err
		}
		mc, err := f.Estimate(r.Split(uint64(k)), trials)
		if err != nil {
			return nil, err
		}
		expY := mc.ExpectedSum()
		for _, delta := range []float64{0.05, 0.1} {
			emp := mc.TailLE(int((1 - delta) * expY))
			form2 := readk.TailForm2(delta, expY, k)
			chern := readk.ChernoffLower(delta, expY)
			azuma := readk.AzumaBound(delta*expY, m, k)
			if emp > form2+0.01 {
				violations++
			}
			table.AddRow(k, delta, emp, form2, chern, azuma)
		}
	}
	rep := &Report{
		ID:    "E7",
		Title: "read-k tail bound exp(-δ²E[Y]/2k) holds; weaker than Chernoff by exactly 1/k; stronger than k-Lipschitz Azuma",
		Table: table,
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("bound violations: %d (0 expected)", violations))
	return rep, nil
}

// E8Events validates Section 3.1 on real graph orientations: the three
// event families have the claimed read structure (K within the structural
// bound from the orientation's out-degree d: read-d for Event 1, read-ρ for
// Event 2, read-d(d+1) for Event 3), and the theorem bounds hold
// empirically for Events 1 and 2.
func E8Events(c Config) (*Report, error) {
	n := 400
	trials := 30000
	if c.Quick {
		n, trials = 150, 8000
	}
	table := stats.NewTable(fmt.Sprintf("Events (1)-(3) — read structure and bounds on α-orientations (n=%d)", n),
		"alpha", "d(orient)", "event", "K", "claimK", "empirical", "bound", "ok")
	r := rng.New(c.Seed).Split(0xE8)
	rows := 0
	bad := 0
	for _, alpha := range []int{1, 2, 3} {
		g := arbGraph(n, alpha, r.Split(uint64(alpha)))
		o, _ := g.OrientByDegeneracy()
		d := o.MaxOutDegree()
		all := make([]int, g.N())
		for v := range all {
			all[v] = v
		}

		// Event 1: conjunction of "every member has a child beating it".
		var m1 []int
		for _, v := range readk.IndependentSubset(g, all) {
			if len(o.Children(v)) > 0 {
				m1 = append(m1, v)
			}
		}
		if len(m1) > 0 {
			f1, k1, err := readk.Event1Family(o, m1)
			if err != nil {
				return nil, err
			}
			mc, err := f1.Estimate(r.Split(100+uint64(alpha)), trials)
			if err != nil {
				return nil, err
			}
			maxP := 0.0
			for _, p := range mc.Means {
				if p > maxP {
					maxP = p
				}
			}
			bound := readk.ConjunctionBound(maxP, f1.N(), k1)
			ok := k1 <= d && mc.AllOnes <= bound+0.02
			if !ok {
				bad++
			}
			table.AddRow(alpha, d, "1-conj", k1, d, mc.AllOnes, bound, ok)
			rows++
		}

		// Event 2: lower tail of "nodes beating all competitive parents".
		rho := 2 * g.MaxDegree()
		f2, k2, err := readk.Event2Family(o, all, rho)
		if err != nil {
			return nil, err
		}
		mc2, err := f2.Estimate(r.Split(200+uint64(alpha)), trials)
		if err != nil {
			return nil, err
		}
		expY := mc2.ExpectedSum()
		delta := 0.2
		emp := mc2.TailLE(int((1 - delta) * expY))
		bound2 := readk.TailForm2(delta, expY, k2)
		ok2 := emp <= bound2+0.02
		if !ok2 {
			bad++
		}
		table.AddRow(alpha, d, "2-tail", k2, rho+1, emp, bound2, ok2)
		rows++

		// Event 3: read structure only (its probability bound composes
		// Events 1 and 2; the structural read-d(d+1) is the paper's point).
		_, k3, err := readk.Event3Family(o, all)
		if err != nil {
			return nil, err
		}
		claim3 := d*(d+1) + 1
		ok3 := k3 <= claim3
		if !ok3 {
			bad++
		}
		table.AddRow(alpha, d, "3-struct", k3, claim3, "-", "-", ok3)
		rows++
	}
	rep := &Report{
		ID:    "E8",
		Title: "Events (1)-(3) form read-d, read-ρ, read-d(d+1) families and respect the GLSS bounds",
		Table: table,
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("%d of %d rows failed (0 expected)", bad, rows))
	return rep, nil
}
