package exp

import (
	"strings"
	"testing"

	"repro/internal/congest"
	"repro/internal/trace"
)

func TestAllDriversRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are not short")
	}
	cfg := QuickConfig()
	for _, d := range All() {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			rep, err := d.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != d.ID {
				t.Fatalf("report ID %q for driver %q", rep.ID, d.ID)
			}
			if rep.Table == nil || rep.Table.NumRows() == 0 {
				t.Fatal("empty table")
			}
			out := rep.String()
			if !strings.Contains(out, rep.ID) {
				t.Fatal("rendered report missing ID")
			}
		})
	}
}

func TestDriverIDsUniqueAndOrdered(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range All() {
		if seen[d.ID] {
			t.Fatalf("duplicate driver %s", d.ID)
		}
		seen[d.ID] = true
		if d.Run == nil || d.Name == "" {
			t.Fatalf("driver %s incomplete", d.ID)
		}
	}
	if len(seen) != 27 {
		t.Fatalf("expected 27 drivers, got %d", len(seen))
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.seeds() != 1 {
		t.Fatalf("zero config seeds = %d", c.seeds())
	}
	if DefaultConfig().Seeds < 2 {
		t.Fatal("default config too small")
	}
	if !QuickConfig().Quick {
		t.Fatal("quick config not quick")
	}
}

func TestOptsDeterministic(t *testing.T) {
	c := QuickConfig()
	a, b := c.opts(7, 3), c.opts(7, 3)
	if a.Seed != b.Seed {
		t.Fatal("opts not deterministic")
	}
	if c.opts(7, 4).Seed == a.Seed || c.opts(8, 3).Seed == a.Seed {
		t.Fatal("labels/replications share seeds")
	}
}

func TestOptsWirePoolDriver(t *testing.T) {
	var stats congest.DriverStats
	c := Config{Seed: 1, Parallel: true, Workers: 3, PoolStats: &stats}
	o := c.opts(1, 0)
	if !o.Parallel || o.Workers != 3 || o.PoolObserver == nil {
		t.Fatalf("pool plumbing lost: %+v", o)
	}
	if seq := (Config{Seed: 1}).opts(1, 0); seq.PoolObserver != nil {
		t.Fatal("sequential config must not install a pool observer")
	}
}

// TestRunEngineBench covers the BENCH_congest.json producer: all three
// drivers measured on identical work, with identical counters.
func TestRunEngineBench(t *testing.T) {
	rep, err := RunEngineBench(256, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Drivers) != 3 {
		t.Fatalf("expected 3 drivers, got %d", len(rep.Drivers))
	}
	names := map[string]bool{}
	for _, d := range rep.Drivers {
		names[d.Driver] = true
		if d.Rounds != rep.Drivers[0].Rounds || d.Messages != rep.Drivers[0].Messages {
			t.Fatalf("driver %s counters diverge: %+v", d.Driver, d)
		}
		if d.WallNS <= 0 || d.RoundsPerSec <= 0 || d.MessagesPerSec <= 0 || d.NSPerRound <= 0 {
			t.Fatalf("driver %s has non-positive throughput: %+v", d.Driver, d)
		}
	}
	for _, want := range []string{"sequential", "pool", "goroutine-per-vertex"} {
		if !names[want] {
			t.Fatalf("driver %q missing from report", want)
		}
	}
	if rep.N != 256 || rep.Seed != 3 || rep.Algorithm == "" || rep.GoMaxProcs < 1 {
		t.Fatalf("report metadata wrong: %+v", rep)
	}
}

// TestRunTraceBench covers the BENCH_trace.json producer: all three
// tracing modes measured on identical work, with identical counters and
// identical fingerprints across the traced modes.
func TestRunTraceBench(t *testing.T) {
	rep, err := RunTraceBench(256, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 256 || rep.Seed != 3 || rep.Algorithm != "metivier" || rep.Driver != "pool" {
		t.Fatalf("report metadata wrong: %+v", rep)
	}
	if len(rep.Modes) != 3 {
		t.Fatalf("expected 3 modes, got %d", len(rep.Modes))
	}
	off, ring, jsonl := rep.Modes[0], rep.Modes[1], rep.Modes[2]
	if off.Mode != "off" || ring.Mode != "ring" || jsonl.Mode != "jsonl" {
		t.Fatalf("mode order wrong: %+v", rep.Modes)
	}
	if off.Events != 0 || off.Fingerprint != "" || off.OverheadPct != 0 {
		t.Fatalf("off baseline carries trace data: %+v", off)
	}
	for _, m := range rep.Modes {
		if m.WallNS <= 0 || m.Rounds != off.Rounds || m.Messages != off.Messages {
			t.Fatalf("mode %s: bad entry %+v", m.Mode, m)
		}
	}
	if ring.Events == 0 || ring.Events != jsonl.Events || ring.Fingerprint != jsonl.Fingerprint {
		t.Fatalf("traced modes disagree: ring %+v, jsonl %+v", ring, jsonl)
	}
}

func TestOptsWireEvents(t *testing.T) {
	mem := &trace.MemorySink{}
	c := Config{Seed: 1, Events: mem}
	if o := c.opts(1, 0); o.Events != trace.Sink(mem) {
		t.Fatal("events sink not plumbed through opts")
	}
	if o := (Config{Seed: 1}).opts(1, 0); o.Events != nil {
		t.Fatal("sink appeared from nowhere")
	}
}

// TestRunFaultBench covers the BENCH_faults.json producer: every scenario
// swept with zero safety violations and sane aggregates.
func TestRunFaultBench(t *testing.T) {
	rep, err := RunFaultBench(128, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 128 || rep.Seed != 3 || rep.Seeds != 2 || rep.Algorithm != "ftmetivier" {
		t.Fatalf("report metadata wrong: %+v", rep)
	}
	scenarios := map[string]bool{}
	for _, e := range rep.Entries {
		scenarios[e.Scenario] = true
		if e.Violations != 0 {
			t.Fatalf("%s x=%v: %d violations in a successful report", e.Scenario, e.Intensity, e.Violations)
		}
		if e.Stalled < e.Runs && (e.MeanRounds <= 0 || e.Coverage < 0 || e.Coverage > 1) {
			t.Fatalf("%s x=%v: bad aggregates %+v", e.Scenario, e.Intensity, e)
		}
	}
	for _, sc := range faultScenarios() {
		if !scenarios[sc.name] {
			t.Fatalf("scenario %q missing from report", sc.name)
		}
	}
	// The p=0 drop point is a clean run: full coverage, nothing dropped.
	clean := rep.Entries[0]
	if clean.Scenario != "drop" || clean.Intensity != 0 || clean.Coverage != 1 || clean.Dropped != 0 {
		t.Fatalf("clean baseline entry wrong: %+v", clean)
	}
}

func TestSqrtLogShapeMonotone(t *testing.T) {
	prev := 0.0
	for _, n := range []int{16, 256, 65536, 1 << 20} {
		s := sqrtLogShape(n)
		if s <= prev {
			t.Fatalf("shape not increasing at n=%d", n)
		}
		prev = s
	}
}

func TestStressParamsTighter(t *testing.T) {
	p := stressParams(3, 100)
	if p.Iterations != 1 {
		t.Fatalf("stress iterations = %d", p.Iterations)
	}
	base := 100 / 8 // practical badLimit at scale 1: Δ/2³
	if p.BadLimit(1) != base/4 {
		t.Fatalf("stress badLimit(1) = %d, want %d", p.BadLimit(1), base/4)
	}
}
