// E21 and the BENCH_dist.json producer: the distributed multi-process
// driver measured against the sequential reference. Every fleet shape
// must reproduce the sequential run bit-for-bit — deterministic trace
// fingerprint and Result counters, clean and faulted — while the report
// records what determinism costs in transport terms (frame bytes and
// round-trip latency per round).
package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/congest"
	"repro/internal/distrib"
	"repro/internal/faultsim"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DistBenchEntry is one fleet shape's measurement.
type DistBenchEntry struct {
	// Shards is the worker-process count; Transport and Socket name the
	// resolved topology (unix socket fleets report their socket path).
	Shards    int    `json:"shards"`
	Transport string `json:"transport"`
	Socket    string `json:"socket"`
	// WallNS is the best clean-run wall time across reps.
	WallNS int64 `json:"wall_ns"`
	// Rounds and Messages are the clean run's counters (identical to the
	// sequential reference by the determinism contract).
	Rounds         int     `json:"rounds"`
	Messages       int64   `json:"messages"`
	MessagesPerSec float64 `json:"messages_per_sec"`
	// SpeedupVsSequential compares the clean wall time against the
	// sequential reference (below 1 = the socket hop costs more than the
	// parallel sweeps buy, expected at small n).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
	// FrameBytes is the total coordinator↔worker transport volume of the
	// clean run; FrameBytesPerRound normalizes it.
	FrameBytes         int64   `json:"frame_bytes"`
	FrameBytesPerRound float64 `json:"frame_bytes_per_round"`
	// MeanRTTNanos is the mean per-shard frame round-trip of the clean run.
	MeanRTTNanos int64 `json:"mean_rtt_ns"`
	// FingerprintClean/Faulted are the deterministic trace fingerprints;
	// the Match fields record equality with the sequential reference.
	FingerprintClean   string `json:"fingerprint_clean"`
	FingerprintFaulted string `json:"fingerprint_faulted"`
	CleanMatch         bool   `json:"clean_match"`
	FaultedMatch       bool   `json:"faulted_match"`
}

// DistBenchReport is the BENCH_dist.json payload.
type DistBenchReport struct {
	N          int    `json:"n"`
	Seed       uint64 `json:"seed"`
	Algorithm  string `json:"algorithm"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// SequentialWallNS and the sequential fingerprints anchor every entry.
	SequentialWallNS           int64            `json:"sequential_wall_ns"`
	SequentialFingerprint      string           `json:"sequential_fingerprint"`
	SequentialFingerprintFault string           `json:"sequential_fingerprint_faulted"`
	Entries                    []DistBenchEntry `json:"entries"`
}

// frameStats accumulates the advisory EvFrame measurements of one run.
type frameStats struct {
	frames int64
	bytes  int64
	rtt    int64
}

// Emit implements trace.Sink.
func (f *frameStats) Emit(e trace.Event) {
	if e.Type != trace.EvFrame {
		return
	}
	f.frames++
	f.bytes += e.X + e.Y
	f.rtt += e.Z
}

// fanoutSink forwards one event stream to several sinks.
type fanoutSink []trace.Sink

// Emit implements trace.Sink.
func (s fanoutSink) Emit(e trace.Event) {
	for _, x := range s {
		x.Emit(e)
	}
}

// distBenchPlan is the seed-pinned faulted leg: drops plus a crash window
// spread, the same fault families the golden suites pin.
func distBenchPlan(n int) faultsim.Plan {
	return faultsim.Compose(
		faultsim.BernoulliDrop{P: 0.02},
		faultsim.NewCrashRestart(map[int]faultsim.Window{
			1:     {Down: 2, Up: 9},
			n / 2: {Down: 3, Up: 0},
		}),
	)
}

// distFingerprint runs one configuration and returns the deterministic
// trace fingerprint with the run result.
func distFingerprint(g *graph.Graph, opts congest.Options, factory func(int) congest.Node) (uint64, congest.Result, error) {
	rec := trace.NewRecorder(1)
	opts.Events = rec
	r := congest.NewRunner(g, factory, opts)
	res, err := r.Run()
	return rec.Fingerprint(), res, err
}

// RunDistBench measures the distributed driver across fleet shapes on a
// seed-pinned Métivier workload and reports transport volume, latency,
// and fingerprint equality with the sequential driver (clean and
// faulted). A fingerprint mismatch is an error, not a report entry: the
// bench doubles as the cross-process determinism gate.
func RunDistBench(n int, shardSet []int, seed uint64, reps int) (*DistBenchReport, error) {
	if n < 2 {
		return nil, fmt.Errorf("dist bench: n must be at least 2, got %d", n)
	}
	if len(shardSet) == 0 {
		return nil, fmt.Errorf("dist bench: empty shard set")
	}
	for _, s := range shardSet {
		if s < 1 {
			return nil, fmt.Errorf("dist bench: shard count must be positive, got %d", s)
		}
	}
	if reps < 1 {
		reps = 1
	}
	g := gen.UnionOfTrees(n, 2, rng.New(seed))
	prog := distrib.Program{Algorithm: "metivier"}
	factory, err := distrib.Factory(prog, n)
	if err != nil {
		return nil, err
	}
	plan := distBenchPlan(n)

	report := &DistBenchReport{
		N: n, Seed: seed, Algorithm: prog.Algorithm, GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	// Sequential reference: fingerprints and the wall-time anchor.
	seqStart := time.Now()
	seqFP, seqRes, err := distFingerprint(g, congest.Options{Seed: seed}, factory)
	if err != nil {
		return nil, fmt.Errorf("dist bench: sequential: %w", err)
	}
	report.SequentialWallNS = time.Since(seqStart).Nanoseconds()
	report.SequentialFingerprint = fmt.Sprintf("%#x", seqFP)
	seqFPFault, _, err := distFingerprint(g, congest.Options{Seed: seed, Faults: plan, MaxRounds: 4 * n}, factory)
	if err != nil {
		return nil, fmt.Errorf("dist bench: sequential faulted: %w", err)
	}
	report.SequentialFingerprintFault = fmt.Sprintf("%#x", seqFPFault)

	for _, shards := range shardSet {
		entry := DistBenchEntry{Shards: shards}
		var bestWall int64
		var bestFrames frameStats
		var cleanFP uint64
		var cleanRes congest.Result
		for rep := 0; rep < reps; rep++ {
			fleet, err := distrib.NewExecFleet(g, prog, shards)
			if err != nil {
				return nil, fmt.Errorf("dist bench: fleet(%d): %w", shards, err)
			}
			entry.Transport = fleet.Transport()
			entry.Socket = fleet.Socket()
			rec := trace.NewRecorder(1)
			frames := &frameStats{}
			opts := congest.Options{
				Seed: seed, Driver: congest.DriverDistributed, Fleet: fleet,
				Events: fanoutSink{rec, frames}, EventTiming: true,
			}
			start := time.Now()
			r := congest.NewRunner(g, factory, opts)
			res, err := r.Run()
			wall := time.Since(start).Nanoseconds()
			fleet.Close()
			if err != nil {
				return nil, fmt.Errorf("dist bench: shards=%d: %w", shards, err)
			}
			if rep == 0 || wall < bestWall {
				bestWall, bestFrames = wall, *frames
			}
			if rep > 0 && rec.Fingerprint() != cleanFP {
				return nil, fmt.Errorf("dist bench: shards=%d: fingerprint drifted across reps (%#x vs %#x)",
					shards, rec.Fingerprint(), cleanFP)
			}
			cleanFP, cleanRes = rec.Fingerprint(), res
		}
		entry.WallNS = bestWall
		entry.Rounds = cleanRes.Rounds
		entry.Messages = cleanRes.Messages
		if bestWall > 0 {
			entry.MessagesPerSec = float64(cleanRes.Messages) / (float64(bestWall) / 1e9)
			entry.SpeedupVsSequential = float64(report.SequentialWallNS) / float64(bestWall)
		}
		entry.FrameBytes = bestFrames.bytes
		if cleanRes.Rounds > 0 {
			entry.FrameBytesPerRound = float64(bestFrames.bytes) / float64(cleanRes.Rounds)
		}
		if bestFrames.frames > 0 {
			entry.MeanRTTNanos = bestFrames.rtt / bestFrames.frames
		}
		entry.FingerprintClean = fmt.Sprintf("%#x", cleanFP)
		entry.CleanMatch = cleanFP == seqFP && cleanRes == seqRes
		if !entry.CleanMatch {
			return nil, fmt.Errorf("dist bench: shards=%d: clean run diverged from sequential (fp %s vs %s)",
				shards, entry.FingerprintClean, report.SequentialFingerprint)
		}

		// Faulted leg: one run per shape, fingerprint-gated.
		fleet, err := distrib.NewExecFleet(g, prog, shards)
		if err != nil {
			return nil, fmt.Errorf("dist bench: faulted fleet(%d): %w", shards, err)
		}
		rec := trace.NewRecorder(1)
		opts := congest.Options{
			Seed: seed, Faults: plan, MaxRounds: 4 * n,
			Driver: congest.DriverDistributed, Fleet: fleet, Events: rec,
		}
		r := congest.NewRunner(g, factory, opts)
		_, err = r.Run()
		fleet.Close()
		if err != nil {
			return nil, fmt.Errorf("dist bench: faulted shards=%d: %w", shards, err)
		}
		entry.FingerprintFaulted = fmt.Sprintf("%#x", rec.Fingerprint())
		entry.FaultedMatch = rec.Fingerprint() == seqFPFault
		if !entry.FaultedMatch {
			return nil, fmt.Errorf("dist bench: shards=%d: faulted run diverged from sequential (fp %s vs %s)",
				shards, entry.FingerprintFaulted, report.SequentialFingerprintFault)
		}
		report.Entries = append(report.Entries, entry)
	}
	return report, nil
}

// E21DistributedDriver is the experiment-table view of the distributed
// driver: fleet shapes against the sequential reference, with transport
// cost per round and the fingerprint verdicts.
func E21DistributedDriver(cfg Config) (*Report, error) {
	n := 1 << 10
	shardSet := []int{1, 2, 4, 8}
	if cfg.Quick {
		n = 192
		shardSet = []int{2, 3}
	}
	seed := cfg.opts(21, 0).Seed
	report, err := RunDistBench(n, shardSet, seed, 1)
	if err != nil {
		return nil, err
	}
	table := stats.NewTable(
		fmt.Sprintf("distributed driver vs sequential, metivier, n=%d", n),
		"shards", "transport", "rounds", "messages", "frameKB/round", "rtt µs", "clean", "faulted")
	for _, e := range report.Entries {
		verdict := func(ok bool) string {
			if ok {
				return "match"
			}
			return "DIVERGED"
		}
		table.AddRow(e.Shards, e.Transport, e.Rounds, e.Messages,
			fmt.Sprintf("%.1f", e.FrameBytesPerRound/1024),
			fmt.Sprintf("%.0f", float64(e.MeanRTTNanos)/1e3),
			verdict(e.CleanMatch), verdict(e.FaultedMatch))
	}
	return &Report{
		ID:    "E21",
		Title: "distributed multi-process driver: bit-identical with sequential over sockets",
		Table: table,
		Notes: []string{
			fmt.Sprintf("deterministic fingerprint %s reproduced by every fleet shape, clean and faulted (plan: drop 2%% + crash windows)",
				report.SequentialFingerprint),
			"fault/RNG draws stay on the coordinator in global sender order; workers are pure functions of (config, input sequence)",
		},
	}, nil
}
