// Package exp contains the experiment harness: one driver per experiment
// in DESIGN.md's index (E1-E22, A1-A5). Each driver returns a Report with
// a rendered table and observations; cmd/bench regenerates all of them and
// bench_test.go exposes each as a testing.B benchmark.
//
// The reproduced paper is a brief announcement with no measured evaluation,
// so each experiment targets a numbered theorem/lemma (see DESIGN.md §3 for
// the mapping and the expected shapes).
package exp

import (
	"fmt"
	"math"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config controls sweep sizes and reproducibility.
type Config struct {
	// Seed is the root seed; every graph and run derives from it.
	Seed uint64
	// Seeds is the number of replications per configuration point.
	Seeds int
	// Quick shrinks sweeps for tests and smoke runs.
	Quick bool
	// Parallel selects the sharded worker-pool driver for the runs.
	Parallel bool
	// Workers is the pool driver's shard count (0 = GOMAXPROCS).
	Workers int
	// PoolStats, when non-nil and Parallel is set, accumulates the pool
	// driver's per-round efficiency metrics across every run the config
	// spawns (cmd/bench -parallel reports the aggregate).
	PoolStats *congest.DriverStats
	// Events, when non-nil, receives the execution-trace event stream of
	// every run the config spawns (cmd/bench -trace streams them all to
	// one JSONL or Chrome file).
	Events trace.Sink
}

// DefaultConfig returns the full-size configuration used by cmd/bench.
func DefaultConfig() Config {
	return Config{Seed: 1, Seeds: 5}
}

// QuickConfig returns a configuration small enough for unit tests.
func QuickConfig() Config {
	return Config{Seed: 1, Seeds: 2, Quick: true}
}

func (c Config) seeds() int {
	if c.Seeds < 1 {
		return 1
	}
	return c.Seeds
}

// opts builds engine options for replication i of a labeled sub-experiment.
func (c Config) opts(label uint64, i int) congest.Options {
	o := congest.Options{
		Seed:     rng.New(c.Seed).Split(label).Split(uint64(i)).Uint64(),
		Parallel: c.Parallel,
		Workers:  c.Workers,
	}
	if c.Parallel && c.PoolStats != nil {
		o.PoolObserver = c.PoolStats.Observe
	}
	o.Events = c.Events
	return o
}

// graphRNG derives the generator stream for a labeled sub-experiment.
func (c Config) graphRNG(label uint64, i int) *rng.RNG {
	return rng.New(c.Seed).Split(^label).Split(uint64(i))
}

// Report is the output of one experiment driver.
type Report struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E1").
	ID string
	// Title restates the claim under test.
	Title string
	// Table is the regenerated table.
	Table *stats.Table
	// Notes carries derived observations (fits, pass/fail of the shape).
	Notes []string
}

// String renders the report.
func (r *Report) String() string {
	s := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table.String())
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// Driver is an experiment entry point.
type Driver struct {
	ID   string
	Name string
	Run  func(Config) (*Report, error)
}

// All returns every experiment driver in DESIGN.md order.
func All() []Driver {
	return []Driver{
		{ID: "E1", Name: "rounds-vs-n", Run: E1RoundsVsN},
		{ID: "E2", Name: "rounds-vs-arboricity", Run: E2RoundsVsArboricity},
		{ID: "E3", Name: "bad-node-probability", Run: E3BadNodeProbability},
		{ID: "E4", Name: "shattering", Run: E4Shattering},
		{ID: "E5", Name: "invariant", Run: E5Invariant},
		{ID: "E6", Name: "conjunction-bound", Run: E6ConjunctionBound},
		{ID: "E7", Name: "tail-bound", Run: E7TailBound},
		{ID: "E8", Name: "event-families", Run: E8Events},
		{ID: "E9", Name: "message-size", Run: E9MessageSize},
		{ID: "E10", Name: "cole-vishkin", Run: E10ColeVishkin},
		{ID: "E11", Name: "forest-decomposition", Run: E11ForestDecomp},
		{ID: "E12", Name: "algorithm-comparison", Run: E12Comparison},
		{ID: "E13", Name: "degree-reduction", Run: E13DegreeReduction},
		{ID: "E14", Name: "round-decay", Run: E14RoundDecay},
		{ID: "E15", Name: "maximal-matching", Run: E15Matching},
		{ID: "E16", Name: "fault-tolerance", Run: E16FaultTolerance},
		{ID: "E17", Name: "trace-overhead", Run: E17TraceOverhead},
		{ID: "E18", Name: "alloc-profile", Run: E18AllocProfile},
		{ID: "E19", Name: "multicore-scaling", Run: E19MulticoreScaling},
		{ID: "E20", Name: "dynamic-updates", Run: E20DynamicUpdates},
		{ID: "E21", Name: "distributed-driver", Run: E21DistributedDriver},
		{ID: "E22", Name: "layout-locality", Run: E22LayoutLocality},
		{ID: "A1", Name: "rho-opt-out", Run: A1RhoOptOut},
		{ID: "A2", Name: "param-profiles", Run: A2ParamProfiles},
		{ID: "A3", Name: "scale-sensitivity", Run: A3ScaleSensitivity},
		{ID: "A4", Name: "reliability", Run: A4Reliability},
		{ID: "A5", Name: "bad-finisher", Run: A5BadFinisher},
	}
}

// sqrtLogShape returns √(log₂ n · log₂ log₂ n), the paper's target growth.
func sqrtLogShape(n int) float64 {
	l := math.Log2(float64(n))
	if l < 2 {
		l = 2
	}
	return math.Sqrt(l * math.Log2(l))
}

// arbGraph generates the workhorse arboricity-α instance.
func arbGraph(n, alpha int, r *rng.RNG) *graph.Graph {
	return gen.UnionOfTrees(n, alpha, r)
}

// practicalArbMIS runs ArbMIS with practical parameters on g.
func practicalArbMIS(g *graph.Graph, alpha int, opts congest.Options) (*core.Outcome, error) {
	params := core.PracticalParams(alpha, g.MaxDegree())
	return core.ArbMIS(g, params, opts)
}
