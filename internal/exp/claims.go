package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mis/base"
	"repro/internal/mis/metivier"
	"repro/internal/shatter"
	"repro/internal/stats"
)

// E1RoundsVsN reproduces Theorem 2.1's growth claim: ArbMIS round counts on
// bounded-arboricity graphs grow like poly(α)·√(log n · log log n) — i.e.
// distinctly slower in n than the Θ(log n) of Métivier/Luby. The table
// reports mean rounds and the rounds normalized by each theory shape; the
// reproduction succeeds if the ArbMIS-normalized column is flat or falling
// while Métivier's rounds/log n column is flat (its rounds/√-shape column
// rises).
func E1RoundsVsN(c Config) (*Report, error) {
	ns := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	if c.Quick {
		ns = []int{1 << 8, 1 << 10}
	}
	alphas := []int{1, 2, 3}
	if c.Quick {
		alphas = []int{1, 2}
	}
	table := stats.NewTable("Theorem 2.1 — rounds vs n (mean over seeds)",
		"alpha", "n", "arbmis", "arbmis/shape", "metivier", "metivier/log2n")
	var firstRatio, lastRatio float64
	for _, alpha := range alphas {
		for ni, n := range ns {
			label := uint64(alpha)<<32 | uint64(n)
			var arb, met stats.Summary
			for i := 0; i < c.seeds(); i++ {
				g := arbGraph(n, alpha, c.graphRNG(label, i))
				out, err := practicalArbMIS(g, alpha, c.opts(label, i))
				if err != nil {
					return nil, fmt.Errorf("E1: arbmis n=%d: %w", n, err)
				}
				arb.Add(float64(out.TotalRounds()))
				_, res, err := metivier.Run(g, c.opts(label+1, i))
				if err != nil {
					return nil, fmt.Errorf("E1: metivier n=%d: %w", n, err)
				}
				met.Add(float64(res.Rounds))
			}
			shape := sqrtLogShape(n)
			table.AddRow(alpha, n,
				arb.Mean(), arb.Mean()/shape,
				met.Mean(), met.Mean()/math.Log2(float64(n)))
			if alpha == alphas[0] {
				if ni == 0 {
					firstRatio = arb.Mean() / shape
				}
				lastRatio = arb.Mean() / shape
			}
		}
	}
	rep := &Report{
		ID:    "E1",
		Title: "ArbMIS rounds grow ~ poly(α)·√(log n·log log n); Métivier ~ log n",
		Table: table,
	}
	trend := "flat-or-falling (shape reproduced)"
	if lastRatio > 1.5*firstRatio {
		trend = "rising (shape NOT reproduced at this scale)"
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"arbmis/shape ratio at α=%d went %.2f → %.2f across the n sweep: %s",
		alphas[0], firstRatio, lastRatio, trend))
	rep.Notes = append(rep.Notes,
		"absolute rounds: at laptop scale the shattering constants dominate and Métivier wins outright; the reproduced claim is the growth shape, with the crossover beyond feasible n (see EXPERIMENTS.md).")
	return rep, nil
}

// E2RoundsVsArboricity reproduces the poly(α) dependence of Theorem 2.1 at
// fixed n, and the paper's own concession (§1.2) that Ghaffari's
// O(log α + √log n) dominates for every α.
func E2RoundsVsArboricity(c Config) (*Report, error) {
	n := 1 << 13
	alphas := []int{1, 2, 3, 4, 6, 8}
	if c.Quick {
		n = 1 << 9
		alphas = []int{1, 2, 3}
	}
	table := stats.NewTable(fmt.Sprintf("Theorem 2.1 — rounds vs α (n=%d)", n),
		"alpha", "delta", "theta", "lambda", "alg1", "finish", "total")
	var xs, ys []float64
	for _, alpha := range alphas {
		label := uint64(0xE2)<<32 | uint64(alpha)
		var alg1R, finR, totR, deltaS stats.Summary
		var theta, lambda int
		for i := 0; i < c.seeds(); i++ {
			g := arbGraph(n, alpha, c.graphRNG(label, i))
			params := core.PracticalParams(alpha, g.MaxDegree())
			theta, lambda = params.NumScales, params.Iterations
			out, err := core.ArbMIS(g, params, c.opts(label, i))
			if err != nil {
				return nil, fmt.Errorf("E2: alpha=%d: %w", alpha, err)
			}
			alg1R.Add(float64(out.Stages[0].Result.Rounds))
			finR.Add(float64(out.TotalRounds() - out.Stages[0].Result.Rounds))
			totR.Add(float64(out.TotalRounds()))
			deltaS.Add(float64(g.MaxDegree()))
		}
		table.AddRow(alpha, deltaS.Mean(), theta, lambda, alg1R.Mean(), finR.Mean(), totR.Mean())
		xs = append(xs, float64(alpha))
		ys = append(ys, totR.Mean())
	}
	rep := &Report{
		ID:    "E2",
		Title: "round count grows polynomially (mildly, at practical constants) with α",
		Table: table,
	}
	if cFit, e, ok := stats.PowerFit(xs, ys); ok {
		rep.Notes = append(rep.Notes, fmt.Sprintf("power fit: rounds ≈ %.1f·α^%.2f", cFit, e))
	}
	return rep, nil
}

// E3BadNodeProbability reproduces Theorem 3.6: Pr[v ∈ B] ≤ 1/Δ²ᵖ. Degree
// spread is needed for bad nodes to be possible at all, so the workload is
// preferential attachment (heavy-tailed degrees) plus union-of-trees.
func E3BadNodeProbability(c Config) (*Report, error) {
	ns := []int{1 << 10, 1 << 12, 1 << 14}
	if c.Quick {
		ns = []int{1 << 8, 1 << 10}
	}
	table := stats.NewTable("Theorem 3.6 — empirical Pr[v ∈ B] vs the 1/Δ² bound",
		"family", "n", "delta", "badFrac", "bound 1/Δ²", "ok")
	violated := 0
	for _, fam := range []string{"pa3", "union3"} {
		for _, n := range ns {
			label := uint64(0xE3)<<32 | uint64(n)
			if fam == "pa3" {
				label ^= 0xABCD
			}
			var badFrac, deltaS stats.Summary
			for i := 0; i < c.seeds(); i++ {
				r := c.graphRNG(label, i)
				g := arbGraph(n, 3, r)
				if fam == "pa3" {
					g = gen.PreferentialAttachment(n, 3, r)
				}
				params := core.PracticalParams(3, g.MaxDegree())
				out, err := core.RunAlg1(g, params, c.opts(label, i))
				if err != nil {
					return nil, fmt.Errorf("E3: %s n=%d: %w", fam, n, err)
				}
				badFrac.Add(float64(out.CountStatus(base.StatusBad)) / float64(n))
				deltaS.Add(float64(g.MaxDegree()))
			}
			bound := 1 / (deltaS.Mean() * deltaS.Mean())
			ok := badFrac.Mean() <= bound+3*badFrac.CI95()
			if !ok {
				violated++
			}
			table.AddRow(fam, n, deltaS.Mean(), badFrac.Mean(), bound, ok)
		}
	}
	rep := &Report{
		ID:    "E3",
		Title: "nodes join the bad set B with probability at most 1/Δ^2p",
		Table: table,
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("%d of %d rows exceeded the bound (0 expected)", violated, table.NumRows()))
	return rep, nil
}

// E4Shattering reproduces the shattering phenomenon behind Lemma 3.7. Two
// measurements per scale:
//
//   - the surviving active set's size and largest connected component —
//     the quantity whose collapse is what "shattering" means operationally
//     (components of survivors, hence of any B ⊆ survivors, are small);
//   - the measured bad set against the lemma's Δ⁶·log_Δ n bound. At laptop
//     scale B is typically empty — the iterations beat the analysis's
//     guarantees — which satisfies the lemma vacuously and is reported
//     as-is.
func E4Shattering(c Config) (*Report, error) {
	n := 1 << 14
	if c.Quick {
		n = 1 << 10
	}
	table := stats.NewTable(fmt.Sprintf("Lemma 3.7 — shattering per scale (PA graphs, n=%d, α=3, Λ=1)", n),
		"scale", "active/n", "maxActiveComp", "|B| so far", "maxBadComp", "lemma bound")
	label := uint64(0xE4)
	type row struct {
		active, maxComp, bad, maxBad stats.Summary
	}
	var deltaS stats.Summary
	rows := map[int]*row{}
	maxScale := 0
	for i := 0; i < c.seeds(); i++ {
		g := gen.PreferentialAttachment(n, 3, c.graphRNG(label, i))
		params := stressParams(3, g.MaxDegree())
		out, err := core.RunAlg1(g, params, c.opts(label, i))
		if err != nil {
			return nil, fmt.Errorf("E4: %w", err)
		}
		deltaS.Add(float64(g.MaxDegree()))
		for k := 1; k <= params.NumScales; k++ {
			var survivors, bad []int
			for v, tr := range out.Traces {
				if out.Statuses[v] == base.StatusBad && len(tr) <= k {
					bad = append(bad, v) // expelled at or before scale k
					continue
				}
				if len(tr) >= k {
					survivors = append(survivors, v)
				}
			}
			if len(survivors) == 0 && len(bad) == 0 && k > 1 {
				break
			}
			stA, err := shatter.Analyze(g, survivors)
			if err != nil {
				return nil, err
			}
			stB, err := shatter.Analyze(g, bad)
			if err != nil {
				return nil, err
			}
			rw := rows[k]
			if rw == nil {
				rw = &row{}
				rows[k] = rw
			}
			rw.active.Add(float64(len(survivors)) / float64(n))
			rw.maxComp.Add(float64(stA.MaxSize()))
			rw.bad.Add(float64(len(bad)))
			rw.maxBad.Add(float64(stB.MaxSize()))
			if k > maxScale {
				maxScale = k
			}
		}
	}
	for k := 1; k <= maxScale; k++ {
		rw := rows[k]
		if rw == nil {
			continue
		}
		bound := shatter.Lemma37Bound(int(deltaS.Mean()), n, 1)
		table.AddRow(k, rw.active.Mean(), rw.maxComp.Mean(), rw.bad.Mean(), rw.maxBad.Mean(), bound)
	}
	rep := &Report{
		ID:    "E4",
		Title: "survivor components collapse scale over scale; measured B (often empty) is far inside the Δ⁶·log_Δ n bound",
		Table: table,
	}
	rep.Notes = append(rep.Notes,
		"an empty B satisfies Lemma 3.7 vacuously: at laptop scale the priority iterations clear high-degree neighborhoods faster than the analysis guarantees.")
	return rep, nil
}

// stressParams tightens the practical profile so bad nodes actually occur:
// one iteration per scale and bad thresholds four times stricter.
func stressParams(alpha, delta int) *core.Params {
	p := core.PracticalParams(alpha, delta)
	p.Iterations = 1
	for k := 1; k <= p.NumScales; k++ {
		p.SetBadLimit(k, p.BadLimit(k)/4)
	}
	return p
}

// E5Invariant reproduces the paper's Invariant (§3): at the end of every
// scale k, each surviving node has at most Δ/2ᵏ⁺² active neighbors of
// degree above Δ/2ᵏ + α. The traces give, per scale, the worst surviving
// node's count against the bound; by construction violators moved to B, so
// the table also reports how many were expelled per scale (the Invariant's
// real content is that this number is tiny — Theorem 3.6).
func E5Invariant(c Config) (*Report, error) {
	n := 1 << 13
	if c.Quick {
		n = 1 << 9
	}
	label := uint64(0xE5)
	table := stats.NewTable(fmt.Sprintf("Invariant — per-scale high-degree neighbor counts (n=%d, α=3, scale 1 stalled)", n),
		"scale", "bound", "maxSurvivor", "meanSurvivor", "expelled")
	type agg struct {
		max      int
		sum, cnt float64
		expelled int
		bound    int
	}
	perScale := map[int]*agg{}
	maxScale := 0
	for i := 0; i < c.seeds(); i++ {
		g := gen.PreferentialAttachment(n, 3, c.graphRNG(label, i))
		params := stressParams(3, g.MaxDegree())
		// Stall scale 1 (ρ₁ = 0 makes every node non-competitive there) so
		// high-degree neighborhoods survive to the first bad test and the
		// Invariant's enforcement — not just its vacuous satisfaction — is
		// visible. Without this, hubs die in the very first iteration and
		// every count is zero (the E5 result under normal parameters).
		params.SetRho(1, 0)
		out, err := core.RunAlg1(g, params, c.opts(label, i))
		if err != nil {
			return nil, fmt.Errorf("E5: %w", err)
		}
		for v, tr := range out.Traces {
			for idx, rec := range tr {
				a := perScale[rec.Scale]
				if a == nil {
					a = &agg{}
					perScale[rec.Scale] = a
				}
				a.bound = rec.Bound
				if rec.Scale > maxScale {
					maxScale = rec.Scale
				}
				expelledHere := out.Statuses[v] == base.StatusBad && idx == len(tr)-1
				if expelledHere {
					a.expelled++
					continue
				}
				if rec.HighDegNbrs > a.max {
					a.max = rec.HighDegNbrs
				}
				a.sum += float64(rec.HighDegNbrs)
				a.cnt++
			}
		}
	}
	for k := 1; k <= maxScale; k++ {
		a := perScale[k]
		if a == nil {
			continue
		}
		mean := 0.0
		if a.cnt > 0 {
			mean = a.sum / a.cnt
		}
		table.AddRow(k, a.bound, a.max, mean, a.expelled)
	}
	rep := &Report{
		ID:    "E5",
		Title: "surviving nodes respect the Invariant at every scale; violators (few) move to B",
		Table: table,
	}
	return rep, nil
}
