package exp

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/congest"
	"repro/internal/faultsim"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/metivier"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ScaleBenchEntry is one (driver, worker count) cell of the cores × n
// scaling matrix (the BENCH_scale.json schema). WorkersRequested is the
// configured Options.Workers value and Workers the count the engine
// actually resolved it to (WorkerCount clamps to GOMAXPROCS and n), so a
// row is self-describing even when the request was silently clamped.
type ScaleBenchEntry struct {
	Driver           string `json:"driver"`
	WorkersRequested int    `json:"workers_requested,omitempty"`
	Workers          int    `json:"workers,omitempty"`
	// WallNS is the best-of-reps wall time for one full untraced run.
	WallNS int64 `json:"wall_ns"`
	// SpeedupVsPool1 is wall(pool, 1 worker) / wall(this entry) at the
	// same n; 0 when the size has no single-worker pool row.
	SpeedupVsPool1 float64 `json:"speedup_vs_pool1,omitempty"`
	// Rounds and Messages are the clean run's counters (identical across
	// every row of a size by the determinism guarantee).
	Rounds         int     `json:"rounds"`
	Messages       int64   `json:"messages"`
	MessagesPerSec float64 `json:"messages_per_sec"`
	// Rebalances counts the shard rebalances of the traced clean run
	// (advisory: depends on the worker count; always 0 off the pool).
	Rebalances int64 `json:"rebalances,omitempty"`
	// FingerprintClean / FingerprintFaulted are the deterministic-event
	// fingerprints of one traced clean and one traced faulted run; every
	// row of a size must agree on both (enforced, not just recorded).
	FingerprintClean   string `json:"fingerprint_clean"`
	FingerprintFaulted string `json:"fingerprint_faulted"`
	// FaultedStalled records whether the faulted run hit the round cap
	// (acceptable under message loss, as long as every row stalls
	// identically).
	FaultedStalled bool `json:"faulted_stalled,omitempty"`
}

// ScaleBenchSize is the full driver × workers matrix at one graph size.
type ScaleBenchSize struct {
	N       int               `json:"n"`
	Entries []ScaleBenchEntry `json:"entries"`
}

// ScaleBenchReport is the cores × n scaling trajectory cmd/bench
// -scale-bench writes to BENCH_scale.json. GoMaxProcsAmbient is the
// process value before the bench raised it to cover the widest worker
// request (GoMaxProcsEffective); on a machine with fewer physical cores
// than the widest request, wall-clock speedups are bounded by the cores,
// not the worker count — the ambient value documents that bound.
type ScaleBenchReport struct {
	Algorithm           string           `json:"algorithm"`
	Graph               string           `json:"graph"`
	Seed                uint64           `json:"seed"`
	Reps                int              `json:"reps"`
	NumCPU              int              `json:"num_cpu"`
	GoMaxProcsAmbient   int              `json:"gomaxprocs_ambient"`
	GoMaxProcsEffective int              `json:"gomaxprocs_effective"`
	FaultPlan           string           `json:"fault_plan"`
	Sizes               []ScaleBenchSize `json:"sizes"`
}

// scaleFaultPlan is the fault model for the faulted fingerprint runs: a
// light Bernoulli message drop, enough to exercise the fault stream in
// global sender order without stalling small instances.
func scaleFaultPlan() (faultsim.Plan, string) {
	return faultsim.BernoulliDrop{P: 0.01}, "bernoulli-drop(p=0.01)"
}

// scaleFaultMaxRounds caps the faulted fingerprint runs: Métivier under
// message loss can stall, and an identical stall is still a valid
// cross-config comparison.
const scaleFaultMaxRounds = 300

// RunScaleBench measures the pool driver's multicore scaling on Métivier
// MIS over UnionOfTrees(n, 2): for every n it times the sequential driver
// and the pool at each requested worker count (0 = GOMAXPROCS) — plus the
// legacy goroutine-per-vertex driver at the smallest n — and fingerprints
// one traced clean and one traced faulted run per cell. Any fingerprint or
// counter divergence across a size's cells is an error, so the benchmark
// doubles as the cross-worker-count determinism check at production scale.
//
// GOMAXPROCS is raised to the widest worker request for the duration of
// the bench (and restored), so requesting 8 workers measures 8-way
// parallelism wherever the hardware has the cores to back it.
func RunScaleBench(ns []int, workerSet []int, seed uint64, reps int, includeGPV bool) (*ScaleBenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	widest := 1
	for _, w := range workerSet {
		if w <= 0 {
			w = runtime.NumCPU()
		}
		if w > widest {
			widest = w
		}
	}
	ambient := runtime.GOMAXPROCS(0)
	effective := ambient
	if widest > effective {
		effective = widest
	}
	prev := runtime.GOMAXPROCS(effective)
	defer runtime.GOMAXPROCS(prev)

	plan, planName := scaleFaultPlan()
	report := &ScaleBenchReport{
		Algorithm:           "metivier",
		Graph:               "union-of-trees(alpha=2)",
		Seed:                seed,
		Reps:                reps,
		NumCPU:              runtime.NumCPU(),
		GoMaxProcsAmbient:   ambient,
		GoMaxProcsEffective: effective,
		FaultPlan:           planName,
	}

	for _, n := range ns {
		g := gen.UnionOfTrees(n, 2, rng.New(seed))
		type config struct {
			name    string
			kind    congest.DriverKind
			workers int // requested; pool only
		}
		configs := []config{{name: "sequential", kind: congest.DriverSequential}}
		for _, w := range workerSet {
			configs = append(configs, config{name: "pool", kind: congest.DriverPool, workers: w})
		}
		if includeGPV {
			configs = append(configs, config{name: "goroutine-per-vertex", kind: congest.DriverGoroutinePerVertex})
		}

		size := ScaleBenchSize{N: n}
		var refClean, refFaulted string
		var refRes congest.Result
		pool1 := int64(0)
		for _, cfg := range configs {
			entry := ScaleBenchEntry{Driver: cfg.name}
			if cfg.kind == congest.DriverPool {
				entry.WorkersRequested = cfg.workers
				entry.Workers = congest.Options{Workers: cfg.workers}.WorkerCount(n)
			}
			base := congest.Options{Seed: seed, Driver: cfg.kind, Workers: cfg.workers}

			// Timed runs: untraced, best of reps.
			var best time.Duration
			for rep := 0; rep < reps; rep++ {
				start := time.Now()
				_, res, err := metivier.Run(g, base)
				wall := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("scale bench: n=%d %s: %w", n, cfg.name, err)
				}
				if rep == 0 || wall < best {
					best = wall
				}
				entry.Rounds, entry.Messages = res.Rounds, res.Messages
				if size.Entries == nil && rep == 0 {
					refRes = res
				} else if res != refRes {
					return nil, fmt.Errorf("scale bench: n=%d %s diverged: %+v != %+v", n, cfg.name, res, refRes)
				}
			}
			entry.WallNS = int64(best)
			if secs := best.Seconds(); secs > 0 {
				entry.MessagesPerSec = float64(entry.Messages) / secs
			}

			// Traced clean run: fingerprint + rebalance count.
			cleanFP, rebalances, _, err := scaleTracedRun(g, base)
			if err != nil {
				return nil, fmt.Errorf("scale bench: n=%d %s traced: %w", n, cfg.name, err)
			}
			entry.FingerprintClean = cleanFP
			entry.Rebalances = rebalances

			// Traced faulted run: same seed, light drops, bounded rounds.
			faulted := base
			faulted.Faults = plan
			faulted.MaxRounds = scaleFaultMaxRounds
			faultedFP, _, stalled, err := scaleTracedRun(g, faulted)
			if err != nil {
				return nil, fmt.Errorf("scale bench: n=%d %s faulted: %w", n, cfg.name, err)
			}
			entry.FingerprintFaulted = faultedFP
			entry.FaultedStalled = stalled

			if len(size.Entries) == 0 {
				refClean, refFaulted = entry.FingerprintClean, entry.FingerprintFaulted
			} else {
				if entry.FingerprintClean != refClean {
					return nil, fmt.Errorf("scale bench: n=%d %s clean fingerprint %s != %s",
						n, cfg.name, entry.FingerprintClean, refClean)
				}
				if entry.FingerprintFaulted != refFaulted {
					return nil, fmt.Errorf("scale bench: n=%d %s faulted fingerprint %s != %s",
						n, cfg.name, entry.FingerprintFaulted, refFaulted)
				}
			}
			if cfg.kind == congest.DriverPool && entry.Workers == 1 {
				pool1 = entry.WallNS
			}
			size.Entries = append(size.Entries, entry)
		}
		if pool1 > 0 {
			for i := range size.Entries {
				if size.Entries[i].WallNS > 0 {
					size.Entries[i].SpeedupVsPool1 = float64(pool1) / float64(size.Entries[i].WallNS)
				}
			}
		}
		report.Sizes = append(report.Sizes, size)
	}
	return report, nil
}

// E19MulticoreScaling runs a reduced cores × workers slice of the scaling
// matrix (DESIGN.md S27): the sequential driver plus the pool at several
// worker counts on one moderate graph size, asserting bit-identical
// fingerprints across every cell while recording the wall-clock curve. The
// full production trajectory (n up to 2^22, BENCH_scale.json) comes from
// `make bench-scale`; this experiment is the in-harness shape check.
func E19MulticoreScaling(c Config) (*Report, error) {
	n := 1 << 16
	workerSet := []int{1, 2, 4, 8}
	reps := 2
	if c.Quick {
		n = 1 << 11
		workerSet = []int{1, 2}
		reps = 1
	}
	seed := rng.New(c.Seed).Split(0xE19).Uint64()
	bench, err := RunScaleBench([]int{n}, workerSet, seed, reps, false)
	if err != nil {
		return nil, err
	}
	size := bench.Sizes[0]
	table := stats.NewTable(fmt.Sprintf("Multicore scaling — metivier, n=%d, best of %d (cpus=%d)", n, reps, bench.NumCPU),
		"driver", "workers", "wall ms", "speedup", "msgs/s", "rebalances")
	for _, e := range size.Entries {
		table.AddRow(e.Driver, e.Workers, float64(e.WallNS)/1e6, e.SpeedupVsPool1, e.MessagesPerSec, int(e.Rebalances))
	}
	rep := &Report{
		ID:    "E19",
		Title: "the pool driver scales with cores while every worker count fingerprints identically",
		Table: table,
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"all %d cells agree on clean fingerprint %s and faulted fingerprint %s (enforced: divergence is an error)",
		len(size.Entries), size.Entries[0].FingerprintClean, size.Entries[0].FingerprintFaulted))
	if bench.NumCPU < bench.GoMaxProcsEffective {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"hardware bound: %d physical CPU(s) beneath GOMAXPROCS=%d — wall-clock speedup is capped by cores, not workers; determinism is what this cell matrix certifies",
			bench.NumCPU, bench.GoMaxProcsEffective))
	}
	return rep, nil
}

// rebalanceCounter forwards every event to the recorder and counts the
// advisory rebalance events on the side.
type rebalanceCounter struct {
	rec *trace.Recorder
	n   *int64
}

// Emit counts rebalances and forwards.
func (s rebalanceCounter) Emit(e trace.Event) {
	if e.Type == trace.EvRebalance {
		*s.n++
	}
	s.rec.Emit(e)
}

// scaleTracedRun executes one traced run and returns the deterministic
// fingerprint (hex), the rebalance count, and whether the run stalled at
// the round cap (tolerated only for faulted runs: Métivier is not
// guaranteed to terminate under message loss, and an identical stall is
// still a valid cross-config fingerprint comparison).
func scaleTracedRun(g *graph.Graph, opts congest.Options) (string, int64, bool, error) {
	rec := trace.NewRecorder(0)
	var rebalances int64
	opts.Events = rebalanceCounter{rec: rec, n: &rebalances}
	_, _, err := metivier.Run(g, opts)
	stalled := false
	if err != nil {
		if opts.Faults != nil && errors.Is(err, congest.ErrMaxRounds) {
			stalled = true
		} else {
			return "", 0, false, err
		}
	}
	return fmt.Sprintf("%#016x", rec.Fingerprint()), rebalances, stalled, nil
}
