package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/mis/metivier"
	"repro/internal/rng"
	"repro/internal/stats"
)

// AllocBenchEntry is one driver's allocation and throughput measurement in
// an E18 run (the BENCH_alloc.json schema).
type AllocBenchEntry struct {
	// Driver names the execution strategy (congest.DriverKind.String).
	Driver string `json:"driver"`
	// Workers is the pool shard count (0 for non-pool drivers).
	Workers int `json:"workers,omitempty"`
	// WallNS is the best-of-reps wall time for one full run.
	WallNS int64 `json:"wall_ns"`
	// Rounds and Messages are the run's CONGEST counters (identical across
	// drivers by the determinism guarantee).
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
	// AllocsPerRun and BytesPerRun are the smallest heap-allocation count
	// and allocated-byte total observed for one full run across the reps
	// (runtime.MemStats Mallocs / TotalAlloc deltas; the minimum filters
	// background noise the same way best-of wall time does).
	AllocsPerRun uint64 `json:"allocs_per_run"`
	BytesPerRun  uint64 `json:"bytes_per_run"`
	// AllocsPerMessage normalizes AllocsPerRun by delivered messages — the
	// headline number the zero-alloc message path drives toward 0.
	AllocsPerMessage float64 `json:"allocs_per_message"`
	// MessagesPerSec derives from WallNS.
	MessagesPerSec float64 `json:"messages_per_sec"`
}

// AllocBenchReport is the allocation-trajectory artifact cmd/bench
// -alloc-bench writes to BENCH_alloc.json. Baseline fields carry the
// sequential throughput recorded by an earlier PR's BENCH_congest.json so
// the speedup of the value-typed message path is part of the artifact.
type AllocBenchReport struct {
	Algorithm  string            `json:"algorithm"`
	Graph      string            `json:"graph"`
	N          int               `json:"n"`
	Seed       uint64            `json:"seed"`
	Reps       int               `json:"reps"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Drivers    []AllocBenchEntry `json:"drivers"`
	// BaselineMessagesPerSec is the sequential-driver throughput from the
	// pre-refactor BENCH_congest.json (0 when no baseline was supplied).
	BaselineMessagesPerSec float64 `json:"baseline_messages_per_sec,omitempty"`
	// SequentialSpeedup is this run's sequential throughput over the
	// baseline (0 when no baseline was supplied).
	SequentialSpeedup float64 `json:"sequential_speedup,omitempty"`
}

// RunAllocBench measures every engine driver's allocation profile on the
// same pinned workload as RunEngineBench — Métivier MIS on
// UnionOfTrees(n, 2) at the given seed — so BENCH_alloc.json is directly
// comparable to BENCH_congest.json. Per driver it records best-of-reps
// wall time plus minimum heap allocations and bytes for one full run.
// baselineMsgsPerSec, when positive, is the pre-refactor sequential
// throughput to compute the speedup against. The run counters must agree
// across drivers; a mismatch is an error, so the benchmark doubles as a
// determinism check.
func RunAllocBench(n int, seed uint64, reps int, baselineMsgsPerSec float64) (*AllocBenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	g := gen.UnionOfTrees(n, 2, rng.New(seed))
	report := &AllocBenchReport{
		Algorithm:              "metivier",
		Graph:                  "union-of-trees(alpha=2)",
		N:                      n,
		Seed:                   seed,
		Reps:                   reps,
		GoMaxProcs:             runtime.GOMAXPROCS(0),
		BaselineMessagesPerSec: baselineMsgsPerSec,
	}
	drivers := []struct {
		kind    congest.DriverKind
		workers int
	}{
		{congest.DriverSequential, 0},
		{congest.DriverPool, 0},
		{congest.DriverGoroutinePerVertex, 0},
	}
	var ref *congest.Result
	var ms runtime.MemStats
	for _, d := range drivers {
		entry := AllocBenchEntry{Driver: d.kind.String()}
		if d.kind == congest.DriverPool {
			entry.Workers = congest.Options{Workers: d.workers}.WorkerCount(n)
		}
		var best time.Duration
		for rep := 0; rep < reps; rep++ {
			opts := congest.Options{Seed: seed, Driver: d.kind, Workers: d.workers}
			// Settle the heap so the MemStats delta is the run's own work,
			// not a GC cycle that happened to land inside it.
			runtime.GC()
			runtime.ReadMemStats(&ms)
			mallocs, bytes := ms.Mallocs, ms.TotalAlloc
			start := time.Now()
			_, res, err := metivier.Run(g, opts)
			wall := time.Since(start)
			runtime.ReadMemStats(&ms)
			if err != nil {
				return nil, fmt.Errorf("alloc bench: %s: %w", d.kind, err)
			}
			if ref == nil {
				r := res
				ref = &r
			} else if res != *ref {
				return nil, fmt.Errorf("alloc bench: %s diverged: %+v != %+v", d.kind, res, *ref)
			}
			allocs, alloced := ms.Mallocs-mallocs, ms.TotalAlloc-bytes
			if rep == 0 || wall < best {
				best = wall
			}
			if rep == 0 || allocs < entry.AllocsPerRun {
				entry.AllocsPerRun = allocs
			}
			if rep == 0 || alloced < entry.BytesPerRun {
				entry.BytesPerRun = alloced
			}
			entry.Rounds, entry.Messages = res.Rounds, res.Messages
		}
		entry.WallNS = int64(best)
		if entry.Messages > 0 {
			entry.AllocsPerMessage = float64(entry.AllocsPerRun) / float64(entry.Messages)
		}
		if secs := best.Seconds(); secs > 0 {
			entry.MessagesPerSec = float64(entry.Messages) / secs
		}
		if d.kind == congest.DriverSequential && baselineMsgsPerSec > 0 {
			report.SequentialSpeedup = entry.MessagesPerSec / baselineMsgsPerSec
		}
		report.Drivers = append(report.Drivers, entry)
	}
	return report, nil
}

// E18AllocProfile measures the allocation profile of the zero-allocation
// message path (DESIGN.md S25): allocations and bytes per full run,
// allocations per delivered message, and throughput, per driver, on the
// same pinned workload as the engine benchmark. The acceptance shape is a
// per-message allocation rate far below 1 (steady-state rounds allocate
// nothing — the residual is run setup) on the sequential and pool drivers;
// the quick configuration shrinks n but checks the same shape.
func E18AllocProfile(c Config) (*Report, error) {
	n := 1 << 14
	reps := 5
	if c.Quick {
		n = 1 << 9
		reps = 1
	}
	seed := rng.New(c.Seed).Split(0xE18).Uint64()
	bench, err := RunAllocBench(n, seed, reps, 0)
	if err != nil {
		return nil, err
	}
	table := stats.NewTable(fmt.Sprintf("Allocation profile — metivier, n=%d, best of %d", n, reps),
		"driver", "wall ms", "msgs/s", "allocs/run", "KB/run", "allocs/msg")
	for _, d := range bench.Drivers {
		table.AddRow(d.Driver, float64(d.WallNS)/1e6, d.MessagesPerSec,
			int(d.AllocsPerRun), float64(d.BytesPerRun)/1024, d.AllocsPerMessage)
	}
	rep := &Report{
		ID:    "E18",
		Title: "the value-typed message path allocates nothing per steady-state round",
		Table: table,
	}
	seq := bench.Drivers[0]
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"sequential: %.3f allocs per delivered message (%d allocs over %d messages — run setup, not rounds; the AllocsPerRun CI gate pins steady-state rounds at 0)",
		seq.AllocsPerMessage, seq.AllocsPerRun, seq.Messages))
	return rep, nil
}
