package exp

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/congest"
	"repro/internal/forest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/colevishkin"
	"repro/internal/mis/ghaffari"
	"repro/internal/mis/luby"
	"repro/internal/mis/metivier"
	"repro/internal/rng"
	"repro/internal/stats"
)

// rootedParents builds a BFS parent map for a forest (used by the
// Cole-Vishkin drivers).
func rootedParents(g *graph.Graph) []int {
	parent := make([]int, g.N())
	for v := range parent {
		parent[v] = -2
	}
	for s := 0; s < g.N(); s++ {
		if parent[s] != -2 {
			continue
		}
		parent[s] = -1
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if parent[w] == -2 {
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
	}
	return parent
}

// E9MessageSize verifies CONGEST compliance: the largest single message of
// every algorithm stays within a small constant number of O(log n)-bit
// words, across a factor-256 range of n.
func E9MessageSize(c Config) (*Report, error) {
	ns := []int{1 << 8, 1 << 12, 1 << 16}
	if c.Quick {
		ns = []int{1 << 7, 1 << 9}
	}
	table := stats.NewTable("CONGEST compliance — max message bits (limit: O(log n))",
		"n", "log2n", "metivier", "lubyB", "ghaffari", "arbmis", "colevishkin")
	worstRatio := 0.0
	for _, n := range ns {
		label := uint64(0xE9)<<32 | uint64(n)
		g := arbGraph(n, 2, c.graphRNG(label, 0))
		opts := c.opts(label, 0)

		_, metRes, err := metivier.Run(g, opts)
		if err != nil {
			return nil, err
		}
		_, lubyRes, err := luby.RunB(g, opts)
		if err != nil {
			return nil, err
		}
		_, ghafRes, err := ghaffari.Run(g, opts)
		if err != nil {
			return nil, err
		}
		arbOut, err := practicalArbMIS(g, 2, opts)
		if err != nil {
			return nil, err
		}
		tree := gen.RandomTree(n, c.graphRNG(label, 1))
		_, cvRes, err := colevishkin.Run(tree, rootedParents(tree), opts)
		if err != nil {
			return nil, err
		}
		logn := math.Log2(float64(n))
		table.AddRow(n, logn,
			metRes.MaxMessageBits, lubyRes.MaxMessageBits, ghafRes.MaxMessageBits,
			arbOut.MaxMessageBits(), cvRes.MaxMessageBits)
		for _, bits := range []int{metRes.MaxMessageBits, lubyRes.MaxMessageBits,
			ghafRes.MaxMessageBits, arbOut.MaxMessageBits(), cvRes.MaxMessageBits} {
			if r := float64(bits) / logn; r > worstRatio {
				worstRatio = r
			}
		}
	}
	rep := &Report{
		ID:    "E9",
		Title: "every algorithm's messages stay within a constant number of O(log n)-bit words",
		Table: table,
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"worst bits/log₂n ratio %.1f — constant across the sweep (64-bit priorities dominate)", worstRatio))
	return rep, nil
}

// E10ColeVishkin measures the Lemma 3.8 substrate: Cole-Vishkin MIS on
// forests takes ReductionRounds(n)+12 = O(log* n) rounds — essentially flat
// in n.
func E10ColeVishkin(c Config) (*Report, error) {
	ns := []int{1 << 6, 1 << 9, 1 << 12, 1 << 15, 1 << 18}
	if c.Quick {
		ns = []int{1 << 6, 1 << 9, 1 << 12}
	}
	table := stats.NewTable("Lemma 3.8 substrate — Cole-Vishkin rounds vs n (forests)",
		"n", "rounds", "schedule T+12", "log*n")
	first, last := 0, 0
	for ni, n := range ns {
		label := uint64(0xE10)<<32 | uint64(n)
		var rounds stats.Summary
		for i := 0; i < c.seeds(); i++ {
			g := gen.RandomTree(n, c.graphRNG(label, i))
			_, res, err := colevishkin.Run(g, rootedParents(g), c.opts(label, i))
			if err != nil {
				return nil, err
			}
			rounds.Add(float64(res.Rounds))
		}
		table.AddRow(n, rounds.Mean(), colevishkin.ReductionRounds(n)+12, stats.LogStar(float64(n)))
		if ni == 0 {
			first = int(rounds.Mean())
		}
		last = int(rounds.Mean())
	}
	rep := &Report{
		ID:    "E10",
		Title: "deterministic forest MIS in O(log* n) rounds — flat across a 4096× range of n",
		Table: table,
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("rounds changed by %d across the sweep (log* growth)", last-first))
	return rep, nil
}

// E11ForestDecomp measures the Barenboim-Elkin substrate: number of forests
// vs the (2+ε)α = 4α bound, and O(log n) rounds.
func E11ForestDecomp(c Config) (*Report, error) {
	ns := []int{1 << 9, 1 << 12, 1 << 15}
	alphas := []int{1, 2, 4}
	if c.Quick {
		ns = []int{1 << 8, 1 << 10}
		alphas = []int{1, 2}
	}
	table := stats.NewTable("Barenboim-Elkin decomposition — forests vs 4α, rounds vs log n",
		"alpha", "n", "forests", "bound 4α", "levels", "rounds", "log2n")
	for _, alpha := range alphas {
		for _, n := range ns {
			label := uint64(0xE11)<<32 | uint64(alpha)<<16 | uint64(n)
			var forests, levels, rounds stats.Summary
			for i := 0; i < c.seeds(); i++ {
				g := arbGraph(n, alpha, c.graphRNG(label, i))
				d, res, err := forest.Decompose(g, alpha, c.opts(label, i))
				if err != nil {
					return nil, err
				}
				if err := d.Validate(g, alpha); err != nil {
					return nil, fmt.Errorf("E11: %w", err)
				}
				forests.Add(float64(d.NumForests()))
				levels.Add(float64(d.NumLevels))
				rounds.Add(float64(res.Rounds))
			}
			table.AddRow(alpha, n, forests.Mean(), 4*alpha, levels.Mean(), rounds.Mean(), math.Log2(float64(n)))
		}
	}
	return &Report{
		ID:    "E11",
		Title: "≤ 4α forests in O(log n) rounds, every edge covered exactly once",
		Table: table,
	}, nil
}

// E12Comparison regenerates the §1 landscape: rounds / messages-per-node /
// MIS size for every implemented algorithm across the graph families the
// literature discusses (trees, planar grids, bounded-arboricity unions,
// dense G(n,p)).
func E12Comparison(c Config) (*Report, error) {
	n := 1 << 12
	if c.Quick {
		n = 1 << 9
	}
	side := int(math.Sqrt(float64(n)))
	families := []struct {
		name  string
		make  func(i int) *graph.Graph
		alpha int
	}{
		{"tree", func(i int) *graph.Graph {
			return gen.RandomTree(n, c.graphRNG(0xE12+1, i))
		}, 1},
		{"grid", func(int) *graph.Graph { return gen.Grid(side, side) }, 2},
		{"union3", func(i int) *graph.Graph {
			return arbGraph(n, 3, c.graphRNG(0xE12+2, i))
		}, 3},
		{"gnp", func(i int) *graph.Graph {
			return gen.GNP(n, 8/float64(n), c.graphRNG(0xE12+3, i))
		}, 5},
	}
	algos := []struct {
		name string
		run  func(g *graph.Graph, alpha int, opts congest.Options) (rounds int, msgs int64, mis int, err error)
	}{
		{"lubyA", func(g *graph.Graph, _ int, opts congest.Options) (int, int64, int, error) {
			st, res, err := luby.RunA(g, opts)
			return res.Rounds, res.Messages, count(st), err
		}},
		{"lubyB", func(g *graph.Graph, _ int, opts congest.Options) (int, int64, int, error) {
			st, res, err := luby.RunB(g, opts)
			return res.Rounds, res.Messages, count(st), err
		}},
		{"metivier", func(g *graph.Graph, _ int, opts congest.Options) (int, int64, int, error) {
			st, res, err := metivier.Run(g, opts)
			return res.Rounds, res.Messages, count(st), err
		}},
		{"ghaffari", func(g *graph.Graph, _ int, opts congest.Options) (int, int64, int, error) {
			st, res, err := ghaffari.Run(g, opts)
			return res.Rounds, res.Messages, count(st), err
		}},
		{"arbmis", func(g *graph.Graph, alpha int, opts congest.Options) (int, int64, int, error) {
			out, err := practicalArbMIS(g, alpha, opts)
			if err != nil {
				return 0, 0, 0, err
			}
			return out.TotalRounds(), out.TotalMessages(), out.MISSize(), nil
		}},
	}
	table := stats.NewTable(fmt.Sprintf("Algorithm landscape (n=%d, mean over seeds)", n),
		"family", "algorithm", "rounds", "msgs/node", "|MIS|/n")
	for _, fam := range families {
		for ai, algo := range algos {
			label := uint64(0xE12)<<32 | uint64(ai)
			var rounds, msgs, mis stats.Summary
			for i := 0; i < c.seeds(); i++ {
				g := fam.make(i)
				r, m, s, err := algo.run(g, fam.alpha, c.opts(label, i))
				if err != nil {
					return nil, fmt.Errorf("E12: %s on %s: %w", algo.name, fam.name, err)
				}
				rounds.Add(float64(r))
				msgs.Add(float64(m) / float64(g.N()))
				mis.Add(float64(s) / float64(g.N()))
			}
			table.AddRow(fam.name, algo.name, rounds.Mean(), msgs.Mean(), mis.Mean())
		}
	}
	rep := &Report{
		ID:    "E12",
		Title: "rounds/messages/MIS-size across algorithms and graph families",
		Table: table,
	}
	rep.Notes = append(rep.Notes,
		"at these n the O(log n) algorithms win on absolute rounds — consistent with the paper, whose claim is asymptotic shape, not laptop-scale constants (§1.2 concedes Ghaffari dominates).")
	return rep, nil
}

// EngineBenchEntry is one driver's throughput measurement in an engine
// benchmark run (the BENCH_congest.json schema).
type EngineBenchEntry struct {
	// Driver names the execution strategy (congest.DriverKind.String).
	Driver string `json:"driver"`
	// Workers is the pool shard count (0 for non-pool drivers).
	Workers int `json:"workers,omitempty"`
	// WallNS is the best-of-reps wall time for one full run.
	WallNS int64 `json:"wall_ns"`
	// Rounds and Messages are the run's CONGEST counters (identical
	// across drivers by the determinism guarantee).
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
	// NSPerRound, RoundsPerSec and MessagesPerSec derive from WallNS.
	NSPerRound     float64 `json:"ns_per_round"`
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	MessagesPerSec float64 `json:"messages_per_sec"`
}

// EngineBenchReport is the seed-pinned engine throughput trajectory that
// cmd/bench -engine-bench writes to BENCH_congest.json, so successive PRs
// can compare driver performance on identical work.
type EngineBenchReport struct {
	Algorithm  string             `json:"algorithm"`
	Graph      string             `json:"graph"`
	N          int                `json:"n"`
	Seed       uint64             `json:"seed"`
	Reps       int                `json:"reps"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Drivers    []EngineBenchEntry `json:"drivers"`
}

// RunEngineBench measures every engine driver on one pinned workload:
// Métivier MIS on UnionOfTrees(n, 2) at the given seed, best wall time of
// reps runs per driver. The run counters must agree across drivers — a
// mismatch is reported as an error, making the benchmark double as a
// determinism check.
func RunEngineBench(n int, seed uint64, reps int) (*EngineBenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	g := gen.UnionOfTrees(n, 2, rng.New(seed))
	report := &EngineBenchReport{
		Algorithm:  "metivier",
		Graph:      "union-of-trees(alpha=2)",
		N:          n,
		Seed:       seed,
		Reps:       reps,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	drivers := []struct {
		kind    congest.DriverKind
		workers int
	}{
		{congest.DriverSequential, 0},
		{congest.DriverPool, 0},
		{congest.DriverGoroutinePerVertex, 0},
	}
	var ref *congest.Result
	for _, d := range drivers {
		entry := EngineBenchEntry{Driver: d.kind.String()}
		if d.kind == congest.DriverPool {
			entry.Workers = congest.Options{Workers: d.workers}.WorkerCount(n)
		}
		var best time.Duration
		for rep := 0; rep < reps; rep++ {
			opts := congest.Options{Seed: seed, Driver: d.kind, Workers: d.workers}
			start := time.Now()
			_, res, err := metivier.Run(g, opts)
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("engine bench: %s: %w", d.kind, err)
			}
			if ref == nil {
				r := res
				ref = &r
			} else if res != *ref {
				return nil, fmt.Errorf("engine bench: %s diverged: %+v != %+v", d.kind, res, *ref)
			}
			if rep == 0 || wall < best {
				best = wall
			}
			entry.Rounds, entry.Messages = res.Rounds, res.Messages
		}
		entry.WallNS = int64(best)
		secs := best.Seconds()
		if entry.Rounds > 0 {
			entry.NSPerRound = float64(best) / float64(entry.Rounds)
		}
		if secs > 0 {
			entry.RoundsPerSec = float64(entry.Rounds) / secs
			entry.MessagesPerSec = float64(entry.Messages) / secs
		}
		report.Drivers = append(report.Drivers, entry)
	}
	return report, nil
}

func count(statuses []base.Status) int {
	n := 0
	for _, s := range statuses {
		if s == base.StatusInMIS {
			n++
		}
	}
	return n
}
