package exp

import (
	"errors"
	"fmt"

	"repro/internal/congest"
	"repro/internal/faultsim"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/ftmetivier"
	"repro/internal/rng"
	"repro/internal/stats"
)

// faultScenario is one fault family swept at several intensities. The
// intensity knob means different things per family (drop probability,
// crashed fraction, delay in rounds) — build renders it into a plan.
type faultScenario struct {
	name        string
	intensities []float64
	build       func(n int, x float64) faultsim.Plan
}

// faultScenarios returns the E16 / fault-bench sweep: every faultsim plan
// kind at escalating intensities, plus a composed worst case.
func faultScenarios() []faultScenario {
	return []faultScenario{
		{"drop", []float64{0, 0.02, 0.05, 0.1, 0.2}, func(_ int, p float64) faultsim.Plan {
			if p == 0 {
				return nil
			}
			return faultsim.BernoulliDrop{P: p}
		}},
		{"crash-stop", []float64{1.0 / 32, 1.0 / 16, 1.0 / 8}, func(n int, f float64) faultsim.Plan {
			return faultsim.NewCrashStop(faultsim.SpreadCrashes(n, int(f*float64(n)), 2, 7))
		}},
		{"crash-restart", []float64{1.0 / 16, 1.0 / 8}, func(n int, f float64) faultsim.Plan {
			windows := make(map[int]faultsim.Window)
			for v, r := range faultsim.SpreadCrashes(n, int(f*float64(n)), 2, 7) {
				windows[v] = faultsim.Window{Down: r, Up: r + 9}
			}
			return faultsim.NewCrashRestart(windows)
		}},
		{"partition", []float64{6, 18}, func(n int, w float64) faultsim.Plan {
			side := make([]bool, n)
			for v := range side {
				side[v] = v%2 == 0
			}
			return faultsim.NewPartition(side, 3, 3+int(w))
		}},
		{"delay", []float64{1, 3}, func(_ int, k float64) faultsim.Plan {
			return faultsim.DelayK{K: int(k)}
		}},
		{"composed", []float64{0.05}, func(n int, p float64) faultsim.Plan {
			return faultsim.Compose(
				faultsim.BernoulliDrop{P: p},
				faultsim.NewCrashStop(faultsim.SpreadCrashes(n, n/32, 4, 11)),
			)
		}},
	}
}

// faultedRun executes fault-tolerant Métivier under plan and scores the
// output with the faultsim checker.
func faultedRun(g *graph.Graph, plan faultsim.Plan, opts congest.Options) (*faultsim.Report, congest.Result, bool, error) {
	opts.Faults = plan
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 3 * ftmetivier.DefaultMaxIters * 2
	}
	st, res, err := ftmetivier.Run(g, opts)
	if errors.Is(err, congest.ErrMaxRounds) {
		return nil, res, true, nil
	}
	if err != nil {
		return nil, res, false, err
	}
	crashed := faultsim.CrashedAt(plan, res.Rounds+1, g.N())
	rep, err := faultsim.Check(g, base.MISSet(st), crashed)
	if err != nil {
		return nil, res, false, err
	}
	return rep, res, false, nil
}

// E16FaultTolerance sweeps the faultsim plan families against the
// fault-tolerant Métivier variant: rounds and coverage degrade with fault
// intensity, but independence (safety) must hold in every single run —
// any violation fails the experiment outright. This is the constructive
// counterpart of A4, which measures how the *plain* algorithm breaks.
func E16FaultTolerance(c Config) (*Report, error) {
	n := 1 << 9
	if c.Quick {
		n = 1 << 7
	}
	table := stats.NewTable(fmt.Sprintf("E16 — fault intensity vs rounds and coverage (ftmetivier, union-of-trees, n=%d, α=2)", n),
		"scenario", "intensity", "rounds", "coverage", "undecided", "crashed", "dropped/run", "delayed/run")
	violations := 0
	for si, sc := range faultScenarios() {
		for _, x := range sc.intensities {
			label := uint64(0xE16)<<32 | uint64(si)<<16 | uint64(x*1000)
			var rounds, coverage, undecided, crashed, dropped, delayed stats.Summary
			for i := 0; i < c.seeds(); i++ {
				g := arbGraph(n, 2, c.graphRNG(label, i))
				rep, res, stalled, err := faultedRun(g, sc.build(n, x), c.opts(label, i))
				if err != nil {
					return nil, fmt.Errorf("E16: %s x=%v: %w", sc.name, x, err)
				}
				if stalled {
					return nil, fmt.Errorf("E16: %s x=%v: hit MaxRounds; the iteration budget must terminate every run", sc.name, x)
				}
				violations += len(rep.Violations)
				rounds.Add(float64(res.Rounds))
				coverage.Add(rep.Coverage())
				undecided.Add(float64(rep.Undecided))
				crashed.Add(float64(rep.Crashed))
				dropped.Add(float64(res.Dropped))
				delayed.Add(float64(res.Delayed))
			}
			table.AddRow(sc.name, x, rounds.Mean(), coverage.Mean(), undecided.Mean(), crashed.Mean(), dropped.Mean(), delayed.Mean())
		}
	}
	if violations > 0 {
		return nil, fmt.Errorf("E16: %d independence violations — the conservative join rule is broken", violations)
	}
	rep := &Report{
		ID:    "E16",
		Title: "fault-tolerant MIS: safety holds under every fault plan; liveness (coverage) degrades with intensity",
		Table: table,
	}
	rep.Notes = append(rep.Notes,
		"zero independence violations across the whole sweep — positive-evidence joining is safe under loss, crashes and partitions.",
		"coverage < 1 rows show the price: fault-stalled nodes give up undecided at the iteration budget instead of guessing.")
	return rep, nil
}

// FaultBenchEntry is one (scenario, intensity) point in a fault bench run
// (the BENCH_faults.json schema). Counters are summed over runs; rounds
// and coverage are means.
type FaultBenchEntry struct {
	Scenario   string  `json:"scenario"`
	Intensity  float64 `json:"intensity"`
	Runs       int     `json:"runs"`
	MeanRounds float64 `json:"mean_rounds"`
	// Coverage is the mean fraction of non-crashed vertices that ended
	// decided (in the MIS or dominated); 1 means full liveness.
	Coverage   float64 `json:"coverage"`
	Undecided  int     `json:"undecided"`
	Crashed    int     `json:"crashed"`
	Dropped    int64   `json:"dropped"`
	Delayed    int64   `json:"delayed"`
	Stalled    int     `json:"stalled"`
	Violations int     `json:"violations"`
}

// FaultBenchReport is the seed-pinned fault-tolerance trajectory that
// cmd/bench -faults writes to BENCH_faults.json, so successive PRs can
// compare safety (always zero violations) and liveness under identical
// fault plans.
type FaultBenchReport struct {
	Algorithm string            `json:"algorithm"`
	Graph     string            `json:"graph"`
	N         int               `json:"n"`
	Seed      uint64            `json:"seed"`
	Seeds     int               `json:"seeds"`
	Entries   []FaultBenchEntry `json:"entries"`
}

// RunFaultBench sweeps the E16 scenarios on one pinned workload:
// fault-tolerant Métivier on UnionOfTrees(n, 2), seeds replications per
// point. Any independence violation is returned as an error — safety is
// an invariant of the bench, not a metric.
func RunFaultBench(n int, seed uint64, seeds int) (*FaultBenchReport, error) {
	if seeds < 1 {
		seeds = 1
	}
	report := &FaultBenchReport{
		Algorithm: "ftmetivier",
		Graph:     "union-of-trees(alpha=2)",
		N:         n,
		Seed:      seed,
		Seeds:     seeds,
	}
	for si, sc := range faultScenarios() {
		for _, x := range sc.intensities {
			entry := FaultBenchEntry{Scenario: sc.name, Intensity: x, Runs: seeds}
			var rounds, coverage stats.Summary
			for i := 0; i < seeds; i++ {
				stream := rng.New(seed).Split(uint64(si)<<16 | uint64(x*1000)).Split(uint64(i))
				g := gen.UnionOfTrees(n, 2, stream)
				rep, res, stalled, err := faultedRun(g, sc.build(n, x), congest.Options{Seed: stream.Uint64()})
				if err != nil {
					return nil, fmt.Errorf("fault bench: %s x=%v: %w", sc.name, x, err)
				}
				if stalled {
					entry.Stalled++
					continue
				}
				rounds.Add(float64(res.Rounds))
				coverage.Add(rep.Coverage())
				entry.Undecided += rep.Undecided
				entry.Crashed += rep.Crashed
				entry.Violations += len(rep.Violations)
				entry.Dropped += res.Dropped
				entry.Delayed += res.Delayed
			}
			entry.MeanRounds = rounds.Mean()
			entry.Coverage = coverage.Mean()
			if entry.Violations > 0 {
				return nil, fmt.Errorf("fault bench: %s x=%v: %d independence violations", sc.name, x, entry.Violations)
			}
			report.Entries = append(report.Entries, entry)
		}
	}
	return report, nil
}
