package exp

import (
	"os"
	"strings"
	"testing"

	"repro/internal/distrib"
)

// TestMain lets this test binary double as the misnode worker: E21 and
// RunDistBench spawn self-exec fleets, which re-run the binary with the
// worker socket in the environment.
func TestMain(m *testing.M) {
	distrib.MaybeWorker()
	os.Exit(m.Run())
}

func TestRunDistBenchValidation(t *testing.T) {
	if _, err := RunDistBench(1, []int{2}, 7, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := RunDistBench(64, nil, 7, 1); err == nil {
		t.Fatal("empty shard set accepted")
	}
	if _, err := RunDistBench(64, []int{2, 0}, 7, 1); err == nil {
		t.Fatal("zero shard count accepted")
	}
}

func TestRunDistBench(t *testing.T) {
	rep, err := RunDistBench(96, []int{1, 3}, 99, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("expected 2 entries, got %d", len(rep.Entries))
	}
	if rep.SequentialFingerprint == "" || rep.SequentialFingerprintFault == "" {
		t.Fatalf("missing sequential fingerprints: %+v", rep)
	}
	for _, e := range rep.Entries {
		// RunDistBench hard-errors on divergence, so reaching here means
		// the match flags must all be set and fingerprints echoed.
		if !e.CleanMatch || !e.FaultedMatch {
			t.Fatalf("shards=%d: match flags not set: %+v", e.Shards, e)
		}
		if e.FingerprintClean != rep.SequentialFingerprint {
			t.Fatalf("shards=%d: clean fingerprint %s != sequential %s",
				e.Shards, e.FingerprintClean, rep.SequentialFingerprint)
		}
		if e.FingerprintFaulted != rep.SequentialFingerprintFault {
			t.Fatalf("shards=%d: faulted fingerprint %s != sequential %s",
				e.Shards, e.FingerprintFaulted, rep.SequentialFingerprintFault)
		}
		if e.Transport != "unix" || e.Socket == "" {
			t.Fatalf("shards=%d: topology not resolved: transport=%q socket=%q",
				e.Shards, e.Transport, e.Socket)
		}
		if e.Rounds <= 0 || e.Messages <= 0 || e.WallNS <= 0 {
			t.Fatalf("shards=%d: empty counters: %+v", e.Shards, e)
		}
		if e.FrameBytes <= 0 || e.MeanRTTNanos <= 0 {
			t.Fatalf("shards=%d: frame metrics missing: %+v", e.Shards, e)
		}
	}
}

func TestE21DistributedDriverQuick(t *testing.T) {
	rep, err := E21DistributedDriver(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "E21" || rep.Table.NumRows() != 2 {
		t.Fatalf("unexpected report shape: id=%s rows=%d", rep.ID, rep.Table.NumRows())
	}
	if !strings.Contains(rep.Table.String(), "match") {
		t.Fatalf("table missing match verdicts:\n%s", rep.Table.String())
	}
}
