package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// MemorySink accumulates every event in memory, unbounded. It is the sink
// tests and Replay use when the whole stream must be inspected.
type MemorySink struct {
	// Events is the captured stream in emission order.
	Events []Event
}

// Emit appends the event.
func (s *MemorySink) Emit(e Event) { s.Events = append(s.Events, e) }

// JSONLSink streams events to a writer as one JSON object per line:
//
//	{"t":"round-end","r":3,"v":120,"w":0,"x":340,"y":338,"z":2}
//
// The encoding is hand-rolled (strconv into a reused buffer) so a traced
// run does not pay encoding/json reflection per event. Call Flush before
// reading the output.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONLSink wraps w in a buffered JSONL encoder.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
}

// Emit writes one line. The first write error sticks and suppresses
// further output; Flush reports it.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.buf = appendEventJSON(s.buf[:0], e)
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// Flush drains the buffer and returns the first error the sink hit.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// appendEventJSON encodes one event as a JSONL line, newline included.
func appendEventJSON(buf []byte, e Event) []byte {
	buf = append(buf, `{"t":"`...)
	buf = append(buf, e.Type.String()...)
	buf = append(buf, `","r":`...)
	buf = strconv.AppendInt(buf, int64(e.Round), 10)
	buf = append(buf, `,"v":`...)
	buf = strconv.AppendInt(buf, int64(e.V), 10)
	buf = append(buf, `,"w":`...)
	buf = strconv.AppendInt(buf, int64(e.W), 10)
	buf = append(buf, `,"x":`...)
	buf = strconv.AppendInt(buf, e.X, 10)
	buf = append(buf, `,"y":`...)
	buf = strconv.AppendInt(buf, e.Y, 10)
	buf = append(buf, `,"z":`...)
	buf = strconv.AppendInt(buf, e.Z, 10)
	buf = append(buf, "}\n"...)
	return buf
}

// jsonEvent is the wire form ReadJSONL decodes.
type jsonEvent struct {
	T string `json:"t"`
	R int32  `json:"r"`
	V int32  `json:"v"`
	W int32  `json:"w"`
	X int64  `json:"x"`
	Y int64  `json:"y"`
	Z int64  `json:"z"`
}

// ReadJSONL decodes a JSONL trace back into events. Blank lines are
// skipped; an unknown event type or malformed line is an error (a trace
// file is a machine artifact, not a log to be forgiving about).
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t := TypeFromString(je.T)
		if t == 0 {
			return nil, fmt.Errorf("trace: line %d: unknown event type %q", line, je.T)
		}
		events = append(events, Event{Type: t, Round: je.R, V: je.V, W: je.W, X: je.X, Y: je.Y, Z: je.Z})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return events, nil
}

// ChromeSink converts the event stream to the Chrome trace-event format,
// loadable in chrome://tracing or https://ui.perfetto.dev. Each round
// becomes a complete ("X") slice on the coordinator track, pool shard
// sweeps become slices on per-shard tracks, and live/traffic counters
// become counter ("C") tracks. Rounds without timing events get a fixed
// synthetic 1ms width so untimed traces still render a readable timeline.
//
// The sink buffers per-round state and must be Closed to produce valid
// JSON.
type ChromeSink struct {
	w   io.Writer
	err error
	n   int // trace events written

	ts         float64 // synthetic timeline cursor, microseconds
	roundStart float64
	shards     []chromeShard
	mergeNS    int64
	dropped    int64
	delayed    int64
}

// chromeShard is one shard's sweep timing for the current round.
type chromeShard struct {
	shard int32
	busy  int64
	live  int64
}

// NewChromeSink starts a Chrome trace-event JSON document on w.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: w}
	s.printf(`{"displayTimeUnit":"ms","traceEvents":[`)
	return s
}

// printf writes formatted output, latching the first error.
func (s *ChromeSink) printf(format string, args ...any) {
	if s.err != nil {
		return
	}
	_, s.err = fmt.Fprintf(s.w, format, args...)
}

// entry writes one trace-event object, handling the comma separator.
func (s *ChromeSink) entry(format string, args ...any) {
	if s.n > 0 {
		s.printf(",")
	}
	s.n++
	s.printf("\n"+format, args...)
}

// Emit folds one engine event into the current round's timeline state.
func (s *ChromeSink) Emit(e Event) {
	switch e.Type {
	case EvRoundStart:
		s.roundStart = s.ts
		s.shards = s.shards[:0]
		s.mergeNS, s.dropped, s.delayed = 0, 0, 0
	case EvShardBusy:
		s.shards = append(s.shards, chromeShard{shard: e.V, busy: e.X, live: e.Y})
	case EvMerge:
		s.mergeNS = e.X
	case EvDrop:
		s.dropped++
	case EvDelay:
		s.delayed++
	case EvRoundEnd:
		s.endRound(e)
	}
}

// endRound flushes the buffered round to the JSON stream and advances the
// synthetic clock.
func (s *ChromeSink) endRound(e Event) {
	maxBusy := int64(0)
	for _, sh := range s.shards {
		if sh.busy > maxBusy {
			maxBusy = sh.busy
		}
	}
	durUS := float64(maxBusy+s.mergeNS) / 1e3
	if durUS <= 0 {
		durUS = 1000 // untimed trace: fixed 1ms per round
	}
	s.entry(`{"name":"round %d","ph":"X","pid":0,"tid":0,"ts":%.3f,"dur":%.3f,`+
		`"args":{"live":%d,"sent":%d,"delivered":%d,"dropped":%d,"delayed":%d}}`,
		e.Round, s.roundStart, durUS, e.V, e.X, e.Y, e.Z, s.delayed)
	for _, sh := range s.shards {
		s.entry(`{"name":"sweep","ph":"X","pid":0,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"live":%d}}`,
			sh.shard+1, s.roundStart, float64(sh.busy)/1e3, sh.live)
	}
	if s.mergeNS > 0 {
		s.entry(`{"name":"merge","ph":"X","pid":0,"tid":0,"ts":%.3f,"dur":%.3f,"args":{}}`,
			s.roundStart+float64(maxBusy)/1e3, float64(s.mergeNS)/1e3)
	}
	s.entry(`{"name":"live nodes","ph":"C","pid":0,"ts":%.3f,"args":{"live":%d}}`,
		s.roundStart, e.V)
	s.entry(`{"name":"traffic","ph":"C","pid":0,"ts":%.3f,"args":{"delivered":%d,"dropped":%d}}`,
		s.roundStart, e.Y, e.Z)
	s.ts = s.roundStart + durUS
	// Reset round state here too, so a stream without round-start markers
	// (an adapter-only trace) never re-flushes a stale shard slice.
	s.roundStart = s.ts
	s.shards = s.shards[:0]
	s.mergeNS, s.dropped, s.delayed = 0, 0, 0
}

// Close writes the metadata records and terminates the JSON document.
func (s *ChromeSink) Close() error {
	s.entry(`{"name":"process_name","ph":"M","pid":0,"args":{"name":"congest run"}}`)
	s.entry(`{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"coordinator"}}`)
	s.printf("\n]}\n")
	return s.err
}
