package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// allTypes is every defined event kind, for exhaustive table checks.
var allTypes = []Type{
	EvRoundStart, EvVertexFate, EvNodeState, EvHalt, EvDrop, EvDelay,
	EvRNG, EvRoundEnd, EvShardFlow, EvShardBusy, EvMerge, EvRebalance,
	EvRepair,
}

func TestTypeNamesRoundTrip(t *testing.T) {
	for _, ty := range allTypes {
		name := ty.String()
		if name == "" || strings.HasPrefix(name, "type(") {
			t.Fatalf("type %d has no wire name", ty)
		}
		if got := TypeFromString(name); got != ty {
			t.Fatalf("TypeFromString(%q) = %d, want %d", name, got, ty)
		}
	}
	if got := TypeFromString("no-such-event"); got != 0 {
		t.Fatalf("unknown name decoded to %d", got)
	}
	if got := Type(200).String(); got != "type(200)" {
		t.Fatalf("out-of-range String() = %q", got)
	}
}

func TestDeterministicClassification(t *testing.T) {
	advisory := map[Type]bool{EvShardFlow: true, EvShardBusy: true, EvMerge: true, EvRebalance: true}
	for _, ty := range allTypes {
		if ty.Deterministic() == advisory[ty] {
			t.Fatalf("type %v: Deterministic() = %v", ty, ty.Deterministic())
		}
	}
}

// sampleTrace builds a small synthetic trace with rounds+1 rounds of
// deterministic events and interleaved advisory noise.
func sampleTrace(rounds int) []Event {
	var ev []Event
	for r := 0; r <= rounds; r++ {
		ev = append(ev,
			Event{Type: EvRoundStart, Round: int32(r)},
			Event{Type: EvShardBusy, Round: int32(r), V: 0, X: int64(1000 + r)},
			Event{Type: EvNodeState, Round: int32(r), V: int32(r % 7), X: 1, Y: int64(r)},
			Event{Type: EvMerge, Round: int32(r), X: 50},
			Event{Type: EvRNG, Round: int32(r), X: int64(10 * r)},
			Event{Type: EvRoundEnd, Round: int32(r), V: int32(100 - r), X: int64(2 * r), Y: int64(2 * r)},
		)
	}
	return ev
}

func TestRecorderRingWrap(t *testing.T) {
	events := sampleTrace(20)
	rec := NewRecorder(8)
	for _, e := range events {
		rec.Emit(e)
	}
	if rec.Total() != uint64(len(events)) {
		t.Fatalf("Total = %d, want %d", rec.Total(), len(events))
	}
	got := rec.Events()
	if len(got) != 8 {
		t.Fatalf("ring kept %d events, want 8", len(got))
	}
	for i, e := range got {
		if e != events[len(events)-8+i] {
			t.Fatalf("ring[%d] = %v, want %v", i, e, events[len(events)-8+i])
		}
	}
	// The running fingerprint covers the whole stream, evicted events
	// included, and matches the offline hash of the same stream.
	if rec.Fingerprint() != Fingerprint(events) {
		t.Fatalf("running fingerprint %#x != offline %#x", rec.Fingerprint(), Fingerprint(events))
	}
	if want := uint64(len(Deterministic(events))); rec.DeterministicCount() != want {
		t.Fatalf("DeterministicCount = %d, want %d", rec.DeterministicCount(), want)
	}
}

func TestRecorderNoWrap(t *testing.T) {
	events := sampleTrace(3)
	rec := NewRecorder(0) // default size, no wrap
	for _, e := range events {
		rec.Emit(e)
	}
	got := rec.Events()
	if len(got) != len(events) {
		t.Fatalf("kept %d events, want %d", len(got), len(events))
	}
	if Fingerprint(got) != rec.Fingerprint() {
		t.Fatal("Fingerprint(Events()) disagrees with running fingerprint")
	}
}

func TestRecorderFanOut(t *testing.T) {
	mem := &MemorySink{}
	rec := NewRecorder(4, mem)
	events := sampleTrace(2)
	for _, e := range events {
		rec.Emit(e)
	}
	if len(mem.Events) != len(events) {
		t.Fatalf("sink saw %d events, want %d (fan-out must not be ring-bounded)", len(mem.Events), len(events))
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := sampleTrace(5)
	b := sampleTrace(5)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("equal traces fingerprint differently")
	}
	b[8].X++ // round 1's EvNodeState: deterministic
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("corrupted deterministic event did not change the fingerprint")
	}
	c := sampleTrace(5)
	c[1].X = 999999 // EvShardBusy: advisory
	if Fingerprint(a) != Fingerprint(c) {
		t.Fatal("advisory event perturbed the fingerprint")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleTrace(4)
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d: %v != %v", i, got[i], events[i])
		}
	}
}

func TestJSONLNegativeFields(t *testing.T) {
	e := Event{Type: EvNodeState, Round: 3, V: -1, W: -2, X: -3, Y: -4, Z: -5}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Emit(e)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != e {
		t.Fatalf("round trip mangled %v into %v", e, got)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"t":"bogus","r":1}` + "\n")); err == nil {
		t.Fatal("unknown event type accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	// Blank lines are tolerated.
	ev, err := ReadJSONL(strings.NewReader("\n" + `{"t":"halt","r":2,"v":7,"w":0,"x":0,"y":0,"z":0}` + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Type != EvHalt || ev[0].V != 7 {
		t.Fatalf("decoded %v", ev)
	}
}

// errWriter fails after limit bytes, to exercise the sticky error.
type errWriter struct{ limit int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.limit <= 0 {
		return 0, io.ErrClosedPipe
	}
	w.limit -= len(p)
	return len(p), nil
}

func TestJSONLStickyError(t *testing.T) {
	sink := NewJSONLSink(&errWriter{limit: 8})
	for _, e := range sampleTrace(200) { // overflow the 64KiB buffer
		sink.Emit(e)
	}
	for i := 0; i < 20000; i++ {
		sink.Emit(Event{Type: EvHalt, Round: 1, V: int32(i)})
	}
	if err := sink.Flush(); err == nil {
		t.Fatal("write error was swallowed")
	}
}

func TestChromeSinkProducesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	for _, e := range sampleTrace(3) {
		sink.Emit(e)
	}
	sink.Emit(Event{Type: EvDrop, Round: 4, V: 1, W: 2})
	sink.Emit(Event{Type: EvDelay, Round: 4, V: 1, W: 2, X: 3})
	sink.Emit(Event{Type: EvRoundEnd, Round: 4, V: 90, X: 5, Y: 4, Z: 1})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var rounds, sweeps, counters, meta int
	for _, te := range doc.TraceEvents {
		switch te["ph"] {
		case "X":
			if name, _ := te["name"].(string); strings.HasPrefix(name, "round") {
				rounds++
			} else if name == "sweep" {
				sweeps++
			}
		case "C":
			counters++
		case "M":
			meta++
		}
	}
	if rounds != 5 { // rounds 0..3 from sampleTrace plus round 4
		t.Fatalf("chrome trace has %d round slices, want 5", rounds)
	}
	if sweeps != 4 { // one EvShardBusy per sampleTrace round
		t.Fatalf("chrome trace has %d sweep slices, want 4", sweeps)
	}
	if counters == 0 || meta != 2 {
		t.Fatalf("chrome trace counters=%d meta=%d", counters, meta)
	}
}

func TestRegistryRendersPrometheusText(t *testing.T) {
	m := NewMetrics()
	for _, e := range sampleTrace(4) {
		m.Emit(e)
	}
	m.Emit(Event{Type: EvHalt, Round: 2, V: 3})
	m.Emit(Event{Type: EvDelay, Round: 2, V: 1, W: 2, X: 1})

	var buf bytes.Buffer
	m.Registry().WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE congest_rounds_total counter",
		"congest_rounds_total 5",
		"congest_node_halts_total 1",
		"congest_messages_delayed_total 1",
		"# TYPE congest_live_nodes gauge",
		"congest_live_nodes 96",
		"# TYPE congest_round_messages histogram",
		`congest_round_messages_bucket{le="+Inf"} 5`,
		"congest_round_messages_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// RNG draws: sampleTrace emits X=10r for r=0..4 → 100 total.
	if !strings.Contains(out, "congest_rng_draws_total 100") {
		t.Fatalf("rng counter wrong:\n%s", out)
	}
}

func TestRegistryHandler(t *testing.T) {
	m := NewMetrics()
	m.Rounds.Inc()
	srv := httptest.NewServer(m.Registry().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "congest_rounds_total 1") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total", "x")
	r.Counter("x_total", "x again")
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="10"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 55.5",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

func TestBisectIdenticalTraces(t *testing.T) {
	a := sampleTrace(10)
	if d := Bisect(a, sampleTrace(10)); d != nil {
		t.Fatalf("identical traces diverge: %v", d)
	}
	// Advisory differences are invisible.
	b := sampleTrace(10)
	for i := range b {
		if !b[i].Type.Deterministic() {
			b[i].X += 12345
		}
	}
	if d := Bisect(a, b); d != nil {
		t.Fatalf("advisory-only difference reported: %v", d)
	}
}

func TestBisectPinpointsCorruption(t *testing.T) {
	a := sampleTrace(50)
	for _, wantRound := range []int{0, 17, 50} {
		b := sampleTrace(50)
		// Corrupt the EvNodeState event of the target round (index 1 of the
		// round's deterministic events: round-start, node-state, rng, end).
		hit := false
		for i := range b {
			if b[i].Type == EvNodeState && int(b[i].Round) == wantRound {
				b[i].Y += 7
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("no node-state event in round %d", wantRound)
		}
		d := Bisect(a, b)
		if d == nil {
			t.Fatalf("round %d corruption not detected", wantRound)
		}
		if d.Round != wantRound || d.Index != 1 {
			t.Fatalf("divergence at round %d index %d, want round %d index 1: %v",
				d.Round, d.Index, wantRound, d)
		}
		if d.A == nil || d.B == nil || d.A.Type != EvNodeState || d.B.Y != d.A.Y+7 {
			t.Fatalf("wrong events reported: %v", d)
		}
	}
}

func TestBisectTraceEndsEarly(t *testing.T) {
	a := sampleTrace(10)
	b := sampleTrace(6)
	d := Bisect(a, b)
	if d == nil {
		t.Fatal("truncated trace not detected")
	}
	if d.Round != 7 || d.A == nil || d.B != nil {
		t.Fatalf("truncation reported as %v, want round 7 with B missing", d)
	}
	// Symmetric direction.
	d = Bisect(b, a)
	if d == nil || d.Round != 7 || d.B == nil || d.A != nil {
		t.Fatalf("reverse truncation reported as %v", d)
	}
}

func TestBisectExtraEventInRound(t *testing.T) {
	a := sampleTrace(5)
	var b []Event
	for _, e := range a {
		b = append(b, e)
		if e.Type == EvNodeState && e.Round == 3 {
			b = append(b, Event{Type: EvHalt, Round: 3, V: 42})
		}
	}
	d := Bisect(a, b)
	if d == nil || d.Round != 3 || d.Index != 2 {
		t.Fatalf("extra event reported as %v, want round 3 index 2", d)
	}
	if d.B == nil || d.B.Type != EvHalt {
		t.Fatalf("wrong event blamed: %v", d)
	}
}

func TestReplayMatchesAndDiverges(t *testing.T) {
	ref := sampleTrace(8)
	replayFrom := func(events []Event) func(Sink) error {
		return func(s Sink) error {
			for _, e := range events {
				s.Emit(e)
			}
			return nil
		}
	}
	d, err := Replay(ref, replayFrom(sampleTrace(8)))
	if err != nil || d != nil {
		t.Fatalf("faithful replay: d=%v err=%v", d, err)
	}
	bad := sampleTrace(8)
	bad[len(bad)-1].V++
	d, err = Replay(ref, replayFrom(bad))
	if err != nil || d == nil || d.Round != 8 {
		t.Fatalf("divergent replay: d=%v err=%v", d, err)
	}
	if _, err = Replay(ref, func(Sink) error { return io.ErrUnexpectedEOF }); err != io.ErrUnexpectedEOF {
		t.Fatalf("run error not propagated: %v", err)
	}
}

func TestDivergenceString(t *testing.T) {
	var d *Divergence
	if d.String() != "traces identical" {
		t.Fatalf("nil divergence renders %q", d.String())
	}
	ev := Event{Type: EvHalt, Round: 4, V: 9}
	d = &Divergence{Round: 4, Index: 2, A: &ev}
	s := d.String()
	if !strings.Contains(s, "round 4") || !strings.Contains(s, "<missing>") {
		t.Fatalf("divergence renders %q", s)
	}
}

func TestEventString(t *testing.T) {
	cases := map[Event]string{
		{Type: EvRoundEnd, Round: 3, V: 120, X: 340, Y: 338, Z: 2}: "round-end r=3 live=120 sent=340 delivered=338 dropped=2",
		{Type: EvVertexFate, Round: 2, V: 9, X: 2}:                 "vertex-fate r=2 v=9 gone",
		{Type: EvDrop, Round: 1, V: 4, W: 5, X: 1}:                 "drop r=1 4→5 (dead-recipient)",
	}
	for e, want := range cases {
		if got := e.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}
