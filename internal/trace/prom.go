package trace

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the Prometheus text-exposition side of the subsystem: a
// tiny dependency-free metric registry (counters, gauges, histograms) and
// a Metrics sink that folds the engine's event stream into it. cmd/traceview
// serves the registry at /metrics so a traced workload is scrapeable by a
// stock Prometheus server.

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Add increments the counter by d (negative deltas are a programming
// error Prometheus semantics forbid; they are ignored).
//
//lint:advisory Prometheus metrics are advisory observability, never program logic
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
//
//lint:advisory Prometheus metrics are advisory observability, never program logic
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
//
//lint:advisory Prometheus metrics are advisory observability, never program logic
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Safe for concurrent use.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set replaces the gauge value.
//
//lint:advisory Prometheus metrics are advisory observability, never program logic
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Value returns the current value.
//
//lint:advisory Prometheus metrics are advisory observability, never program logic
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a cumulative-bucket histogram with fixed upper bounds.
// Safe for concurrent use.
type Histogram struct {
	name, help string
	bounds     []float64
	mu         sync.Mutex
	counts     []int64
	sum        float64
	count      int64
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += x
	h.count++
	for i, b := range h.bounds {
		if x <= b {
			h.counts[i]++
		}
	}
}

// Registry holds metrics and renders them in the Prometheus text
// exposition format. Metric names must be unique; registering a duplicate
// panics (a wiring bug, not a runtime condition).
type Registry struct {
	mu    sync.Mutex
	names map[string]bool
	order []func(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// register claims a name and appends a renderer.
func (r *Registry) register(name string, render func(w io.Writer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("trace: duplicate metric " + name)
	}
	r.names[name] = true
	r.order = append(r.order, render)
}

// Counter creates and registers a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, func(w io.Writer) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, c.Value())
	})
	return c
}

// Gauge creates and registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, func(w io.Writer) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, g.Value())
	})
	return g
}

// Histogram creates and registers a histogram with the given upper
// bucket bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	h := &Histogram{name: name, help: help, bounds: sorted, counts: make([]int64, len(sorted))}
	r.register(name, func(w io.Writer) {
		h.mu.Lock()
		defer h.mu.Unlock()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for i, b := range h.bounds {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), h.counts[i])
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count)
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.sum, name, h.count)
	})
	return h
}

// formatBound renders a bucket bound the way Prometheus expects.
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// WriteTo renders every registered metric in registration order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	renders := append([]func(w io.Writer){}, r.order...)
	r.mu.Unlock()
	for _, render := range renders {
		render(w)
	}
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// Metrics folds the engine's event stream into a Prometheus registry: a
// Sink that turns a traced run (or a stream of runs) into scrapeable
// counters, gauges, and histograms.
type Metrics struct {
	reg *Registry

	Rounds    *Counter
	Sent      *Counter
	Delivered *Counter
	Dropped   *Counter
	Delayed   *Counter
	Halts     *Counter
	NodeDraws *Counter
	Live      *Gauge

	RoundMessages *Histogram
	MergeSeconds  *Histogram
}

// NewMetrics builds a Metrics sink over a fresh registry.
func NewMetrics() *Metrics {
	reg := NewRegistry()
	return &Metrics{
		reg:       reg,
		Rounds:    reg.Counter("congest_rounds_total", "Completed engine rounds (Init included)."),
		Sent:      reg.Counter("congest_messages_sent_total", "Messages handed to delivery, any fate."),
		Delivered: reg.Counter("congest_messages_delivered_total", "Messages delivered to inboxes."),
		Dropped:   reg.Counter("congest_messages_dropped_total", "Messages lost to fault injection."),
		Delayed:   reg.Counter("congest_messages_delayed_total", "Messages deferred by the fault plan."),
		Halts:     reg.Counter("congest_node_halts_total", "Nodes that halted."),
		NodeDraws: reg.Counter("congest_rng_draws_total", "Node-stream RNG draws."),
		Live:      reg.Gauge("congest_live_nodes", "Nodes still live after the latest round."),
		RoundMessages: reg.Histogram("congest_round_messages",
			"Messages delivered per round.",
			[]float64{0, 10, 100, 1000, 10000, 100000, 1e6}),
		MergeSeconds: reg.Histogram("congest_merge_seconds",
			"Coordinator delivery (merge) time per round.",
			[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}),
	}
}

// Registry exposes the underlying registry (for serving or rendering).
func (m *Metrics) Registry() *Registry { return m.reg }

// Emit implements Sink.
func (m *Metrics) Emit(e Event) {
	switch e.Type {
	case EvRoundEnd:
		m.Rounds.Inc()
		m.Sent.Add(e.X)
		m.Delivered.Add(e.Y)
		m.Dropped.Add(e.Z)
		m.Live.Set(int64(e.V))
		m.RoundMessages.Observe(float64(e.Y))
	case EvDelay:
		m.Delayed.Inc()
	case EvHalt:
		m.Halts.Inc()
	case EvRNG:
		m.NodeDraws.Add(e.X)
	case EvMerge:
		m.MergeSeconds.Observe(float64(e.X) / 1e9)
	}
}
