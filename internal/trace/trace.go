// Package trace is the execution-trace observability subsystem for the
// CONGEST engine: every run can record a typed, structured event stream —
// round boundaries, per-round counters, fault fates, node state
// transitions, RNG draw totals, and (optionally) driver timing — and that
// stream becomes a first-class artifact that can be stored, diffed,
// replayed, exported to chrome://tracing, or scraped as Prometheus
// metrics.
//
// The package is deliberately engine-agnostic: it defines the Event
// vocabulary and the Sink interface, and internal/congest emits into it.
// That direction keeps trace free of engine imports, so Replay and Bisect
// can compare traces from any producer.
//
// Determinism is the organizing idea. Events split into two classes:
//
//   - deterministic events (round boundaries, counters, fault fates, node
//     transitions, halts, RNG draw totals) are bit-identical across the
//     sequential, worker-pool, and goroutine-per-vertex drivers for the
//     same seed — they are covered by Fingerprint and compared by Bisect;
//   - advisory events (shard timings, merge time, per-shard message flow)
//     describe how a particular driver executed the run and legitimately
//     differ between drivers; Fingerprint and Bisect ignore them.
//
// A Recorder is the standard capture point: it keeps the most recent
// events in a bounded ring buffer, maintains a running fingerprint of the
// deterministic stream in O(1) space, and forwards every event to any
// number of attached sinks (JSONL file, Chrome trace-event export,
// in-memory capture, Prometheus registry).
package trace

import "fmt"

// Type enumerates the event kinds the engine emits.
type Type uint8

// Event kinds. They start at 1 so a zero-valued event is detectably
// invalid. The field comments give each type's Event field layout.
const (
	// EvRoundStart opens a round (round 0 is Init). No payload fields.
	EvRoundStart Type = iota + 1
	// EvVertexFate reports a fault plan's non-Up verdict for a vertex this
	// round: V = vertex, X = fate (1 = down, 2 = gone).
	EvVertexFate
	// EvNodeState is a program-defined node state transition emitted via
	// congest.Context.Emit: V = vertex, X = program code (the mis/proto
	// announcement kinds by convention), Y = program value.
	EvNodeState
	// EvHalt reports that a node halted this round: V = vertex.
	EvHalt
	// EvDrop reports a message discarded by fault injection: V = sender,
	// W = recipient, X = 1 when the loss was a crashed recipient, 0 for a
	// plan drop. The round is the delivery round the loss happened in
	// (for a crashed recipient, consumption would have been round+1).
	EvDrop
	// EvDelay reports a message deferred by the fault plan: V = sender,
	// W = recipient, X = extra rounds in flight.
	EvDelay
	// EvRNG reports the run's randomness consumption after a round:
	// X = cumulative node-stream draws delta for the round, Y = fault-
	// stream draws delta.
	EvRNG
	// EvRoundEnd closes a round: V = nodes still live, X = messages sent
	// this round (any fate), Y = messages delivered this round,
	// Z = messages dropped this round.
	EvRoundEnd
	// EvShardFlow is the advisory per-shard traffic matrix entry:
	// V = sender shard, W = recipient shard, X = messages sent this round
	// on that pair. Shard boundaries depend on the driver.
	EvShardFlow
	// EvShardBusy is the advisory per-shard sweep timing from the pool
	// driver: V = shard, X = busy nanoseconds, Y = live nodes in the shard.
	EvShardBusy
	// EvMerge is the advisory coordinator delivery timing from the pool
	// driver: X = merge nanoseconds.
	EvMerge
	// EvRebalance is the advisory shard-rebalance record from the pool
	// driver: the coordinator re-partitioned the vertex range by live
	// weight before the round's sweep. X = total live vertices at the
	// rebalance, Y = the run's cumulative rebalance count. Shard layout
	// depends on the worker count, so the event is advisory.
	EvRebalance
	// EvRepair is one incremental repair by the dynamic-MIS engine
	// (internal/dynmis): Round = the update-batch index (0 = bootstrap),
	// V = repair-region size, W = free (re-run) vertices in the region,
	// X = CONGEST rounds the repair run took, Y = the repair run's
	// deterministic trace fingerprint, Z = messages delivered. Region
	// discovery and the repair run are deterministic for a fixed
	// (graph, seed, update stream), so the event is deterministic.
	EvRepair
	// EvFrame is the advisory per-shard transport record from the
	// distributed driver: one round-trip of round-batched frames between
	// the coordinator and a shard process. V = shard, X = frame bytes sent
	// to the shard, Y = frame bytes received from it, Z = round-trip
	// latency in nanoseconds. Frame sizes and latency depend on the codec,
	// the socket, and the host, so the event is advisory.
	EvFrame
	// EvRespawn is the advisory crash-recovery record from the distributed
	// driver: a shard process died (or its connection broke) and the
	// coordinator respawned it and replayed its round-input log to catch
	// it up. Round = the round being retried, V = shard, X = rounds
	// replayed during fast-forward. Process death is not derived from the
	// run seed, so the event is advisory.
	EvRespawn
)

// typeNames maps Type to its wire name (JSONL "t" field).
var typeNames = [...]string{
	EvRoundStart: "round-start",
	EvVertexFate: "vertex-fate",
	EvNodeState:  "node-state",
	EvHalt:       "halt",
	EvDrop:       "drop",
	EvDelay:      "delay",
	EvRNG:        "rng",
	EvRoundEnd:   "round-end",
	EvShardFlow:  "shard-flow",
	EvShardBusy:  "shard-busy",
	EvMerge:      "merge",
	EvRebalance:  "rebalance",
	EvRepair:     "repair",
	EvFrame:      "frame",
	EvRespawn:    "respawn",
}

// String returns the event type's wire name.
func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// TypeFromString inverts String; it returns 0 for an unknown name.
func TypeFromString(s string) Type {
	for t, name := range typeNames {
		if name == s {
			return Type(t)
		}
	}
	return 0
}

// Deterministic reports whether events of this type are bit-identical
// across engine drivers for the same seed. Advisory types (timings, shard
// flow) depend on the driver's shard layout and wall clock and are
// excluded from Fingerprint and Bisect.
func (t Type) Deterministic() bool {
	switch t {
	case EvShardFlow, EvShardBusy, EvMerge, EvRebalance, EvFrame, EvRespawn:
		return false
	}
	return true
}

// Event is one trace record. The meaning of V, W, X, Y, Z depends on Type;
// unused fields are zero. The struct is flat and comparable so recording
// is allocation-free and traces can be diffed with ==.
type Event struct {
	// Type is the event kind.
	Type Type
	// Round is the engine round the event belongs to (0 = Init).
	Round int32
	// V and W are the subject vertices or shards (see the Type constants).
	// Vertex identities are always external (original graph) IDs, never
	// the engine's relabeled internal order — misvet's idspace analyzer
	// enforces the boundary.
	//
	//idspace:external
	V, W int32
	// X, Y and Z are type-specific values.
	X, Y, Z int64
}

// String renders the event for diagnostics and divergence reports.
func (e Event) String() string {
	switch e.Type {
	case EvRoundStart:
		return fmt.Sprintf("round-start r=%d", e.Round)
	case EvVertexFate:
		fate := "down"
		if e.X == 2 {
			fate = "gone"
		}
		return fmt.Sprintf("vertex-fate r=%d v=%d %s", e.Round, e.V, fate)
	case EvNodeState:
		return fmt.Sprintf("node-state r=%d v=%d code=%d value=%d", e.Round, e.V, e.X, e.Y)
	case EvHalt:
		return fmt.Sprintf("halt r=%d v=%d", e.Round, e.V)
	case EvDrop:
		cause := "plan"
		if e.X == 1 {
			cause = "dead-recipient"
		}
		return fmt.Sprintf("drop r=%d %d→%d (%s)", e.Round, e.V, e.W, cause)
	case EvDelay:
		return fmt.Sprintf("delay r=%d %d→%d +%d rounds", e.Round, e.V, e.W, e.X)
	case EvRNG:
		return fmt.Sprintf("rng r=%d node-draws=%d fault-draws=%d", e.Round, e.X, e.Y)
	case EvRoundEnd:
		return fmt.Sprintf("round-end r=%d live=%d sent=%d delivered=%d dropped=%d",
			e.Round, e.V, e.X, e.Y, e.Z)
	case EvShardFlow:
		return fmt.Sprintf("shard-flow r=%d %d→%d msgs=%d", e.Round, e.V, e.W, e.X)
	case EvShardBusy:
		return fmt.Sprintf("shard-busy r=%d shard=%d busy=%dns live=%d", e.Round, e.V, e.X, e.Y)
	case EvMerge:
		return fmt.Sprintf("merge r=%d %dns", e.Round, e.X)
	case EvRebalance:
		return fmt.Sprintf("rebalance r=%d live=%d count=%d", e.Round, e.X, e.Y)
	case EvRepair:
		return fmt.Sprintf("repair batch=%d region=%d free=%d rounds=%d fp=%#016x msgs=%d",
			e.Round, e.V, e.W, e.X, uint64(e.Y), e.Z)
	case EvFrame:
		return fmt.Sprintf("frame r=%d shard=%d out=%dB in=%dB rtt=%dns", e.Round, e.V, e.X, e.Y, e.Z)
	case EvRespawn:
		return fmt.Sprintf("respawn r=%d shard=%d replayed=%d", e.Round, e.V, e.X)
	default:
		return fmt.Sprintf("event(%d) r=%d", int(e.Type), e.Round)
	}
}

// Sink consumes a trace event stream. The engine calls Emit on the
// coordinator goroutine only, in a deterministic order for deterministic
// events; a Sink therefore does not need to be safe for concurrent Emit
// calls (a sink that is also read concurrently, like the Prometheus
// registry, synchronizes internally).
type Sink interface {
	Emit(Event)
}

// DefaultRingSize is the Recorder's default bounded-buffer capacity:
// enough for the full event stream of the repo's standard test workloads
// while bounding memory for production-scale runs.
const DefaultRingSize = 1 << 16

// Recorder is the standard capture point for a traced run: a bounded ring
// buffer of the most recent events, a running fingerprint over the
// deterministic stream, and fan-out to attached sinks. The zero value is
// not usable; construct with NewRecorder.
type Recorder struct {
	ring    []Event
	next    int
	wrapped bool
	total   uint64
	fp      uint64
	fpN     uint64
	sinks   []Sink
}

// NewRecorder builds a recorder with the given ring capacity (<= 0 means
// DefaultRingSize) that forwards every event to the attached sinks.
func NewRecorder(ringSize int, sinks ...Sink) *Recorder {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Recorder{ring: make([]Event, ringSize), fp: fnvOffset, sinks: sinks}
}

// Emit records one event: ring store, fingerprint fold, sink fan-out.
func (r *Recorder) Emit(e Event) {
	r.total++
	if e.Type.Deterministic() {
		r.fp = fpFold(r.fp, e)
		r.fpN++
	}
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
	for _, s := range r.sinks {
		s.Emit(e)
	}
}

// Events returns the buffered events in emission order. When the run
// outgrew the ring, only the most recent capacity-many events remain (the
// running fingerprint still covers the whole stream).
func (r *Recorder) Events() []Event {
	if !r.wrapped {
		return append([]Event(nil), r.ring[:r.next]...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	return append(out, r.ring[:r.next]...)
}

// Total returns the number of events emitted over the run, including any
// that have been evicted from the ring.
func (r *Recorder) Total() uint64 { return r.total }

// Fingerprint returns the running FNV-1a hash over every deterministic
// event emitted so far (evicted ones included). Two runs with equal
// fingerprints executed the same deterministic event stream; the value is
// what the golden trace tests pin and what the cross-driver matrix
// compares.
func (r *Recorder) Fingerprint() uint64 { return r.fp }

// DeterministicCount returns how many deterministic events the
// fingerprint covers.
func (r *Recorder) DeterministicCount() uint64 { return r.fpN }

// fnvOffset seeds the fingerprint accumulator (the FNV-1a offset basis,
// kept for its pedigree as a non-trivial seed); fpMix is the Murmur3
// finalizer multiplier.
const (
	fnvOffset = 0xcbf29ce484222325
	fpMix     = 0xff51afd7ed558ccd
)

// fpFold folds one event into the fingerprint accumulator, hashing every
// field in a fixed word layout. Type and Round share a word (both are
// small), so an event costs five word mixes — the fold is on the hot path
// of every traced run, which rules out byte-at-a-time hashing.
func fpFold(h uint64, e Event) uint64 {
	h = fpU64(h, uint64(e.Type)<<32|uint64(uint32(e.Round)))
	h = fpU64(h, uint64(uint32(e.V))<<32|uint64(uint32(e.W)))
	h = fpU64(h, uint64(e.X))
	h = fpU64(h, uint64(e.Y))
	h = fpU64(h, uint64(e.Z))
	return h
}

// fpU64 mixes one word into the accumulator: xor, multiply, xorshift —
// the Murmur3 finalizer step, chosen for avalanche quality at three
// operations per word.
func fpU64(h, x uint64) uint64 {
	h ^= x
	h *= fpMix
	h ^= h >> 33
	return h
}

// Fingerprint hashes a recorded event slice the same way a Recorder does
// on the fly, skipping advisory events. Fingerprint(rec.Events()) equals
// rec.Fingerprint() whenever the ring did not overflow.
func Fingerprint(events []Event) uint64 {
	h := uint64(fnvOffset)
	for _, e := range events {
		if e.Type.Deterministic() {
			h = fpFold(h, e)
		}
	}
	return h
}

// Deterministic filters a trace to its deterministic events, preserving
// order — the subset Bisect compares.
func Deterministic(events []Event) []Event {
	out := make([]Event, 0, len(events))
	for _, e := range events {
		if e.Type.Deterministic() {
			out = append(out, e)
		}
	}
	return out
}
