package trace

import "fmt"

// This file turns a failed determinism assertion from a boolean into a
// diagnosis. Bisect compares two traces (two drivers, a faulted vs clean
// run, a recorded file vs a fresh re-execution) and pinpoints the first
// deterministic event where they part ways; Replay re-executes a program
// and bisects it against a reference trace.

// Divergence pinpoints the first difference between two deterministic
// event streams.
type Divergence struct {
	// Round is the first round whose deterministic events differ.
	Round int
	// Index is the position within that round's deterministic events.
	Index int
	// A and B are the differing events from each trace; one is nil when a
	// trace ends early or its round has fewer events.
	A, B *Event
}

// String renders the divergence for error messages.
func (d *Divergence) String() string {
	if d == nil {
		return "traces identical"
	}
	fmtEv := func(e *Event) string {
		if e == nil {
			return "<missing>"
		}
		return e.String()
	}
	return fmt.Sprintf("first divergence at round %d, event %d: %s vs %s",
		d.Round, d.Index, fmtEv(d.A), fmtEv(d.B))
}

// roundIndex groups a trace's deterministic events by round: offsets[r]
// is the start of round r's events in det, and hashes[r] is the running
// fingerprint of everything up to and including round r (a prefix hash,
// so a single corrupted event poisons every later entry and binary search
// lands exactly on the first bad round).
type roundIndex struct {
	det     []Event
	offsets []int
	hashes  []uint64
}

// indexRounds builds the per-round index. Rounds are assumed
// nondecreasing, which the engine guarantees.
func indexRounds(events []Event) roundIndex {
	det := Deterministic(events)
	idx := roundIndex{det: det}
	h := uint64(fnvOffset)
	cur := int32(-1)
	for i, e := range det {
		for cur < e.Round { // open rounds (handles empty rounds defensively)
			if cur >= 0 {
				idx.hashes = append(idx.hashes, h)
			}
			cur++
			idx.offsets = append(idx.offsets, i)
		}
		h = fpFold(h, e)
	}
	if cur >= 0 {
		idx.hashes = append(idx.hashes, h)
	}
	return idx
}

// rounds returns the number of rounds the index covers.
func (ri roundIndex) rounds() int { return len(ri.offsets) }

// round returns round r's deterministic events.
func (ri roundIndex) round(r int) []Event {
	lo := ri.offsets[r]
	hi := len(ri.det)
	if r+1 < len(ri.offsets) {
		hi = ri.offsets[r+1]
	}
	return ri.det[lo:hi]
}

// Bisect locates the first divergent deterministic event between two
// traces. It binary-searches the per-round prefix fingerprints to find
// the first round whose history differs, then scans that round event by
// event. Advisory events (timings, shard flow) are ignored, so traces
// from different drivers compare cleanly. It returns nil when the
// deterministic streams are identical.
func Bisect(a, b []Event) *Divergence {
	ia, ib := indexRounds(a), indexRounds(b)
	common := ia.rounds()
	if ib.rounds() < common {
		common = ib.rounds()
	}
	// Binary search for the first round r (within the common prefix) with
	// differing prefix hashes. Invariant: rounds < lo agree, rounds >= hi
	// are unknown-or-differing.
	lo, hi := 0, common
	for lo < hi {
		mid := (lo + hi) / 2
		if ia.hashes[mid] == ib.hashes[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == common {
		// The common prefix agrees; any divergence is a trace ending early.
		if ia.rounds() == ib.rounds() {
			return nil
		}
		longer, missingB := ia, true
		if ib.rounds() > ia.rounds() {
			longer, missingB = ib, false
		}
		ev := longer.round(common)[0]
		d := &Divergence{Round: int(ev.Round)}
		if missingB {
			d.A = &ev
		} else {
			d.B = &ev
		}
		return d
	}
	// Round lo is the first divergent round; pinpoint the event.
	ra, rb := ia.round(lo), ib.round(lo)
	for i := 0; i < len(ra) || i < len(rb); i++ {
		var ea, eb *Event
		if i < len(ra) {
			ea = &ra[i]
		}
		if i < len(rb) {
			eb = &rb[i]
		}
		if ea == nil || eb == nil || *ea != *eb {
			round := lo
			if ea != nil {
				round = int(ea.Round)
			} else if eb != nil {
				round = int(eb.Round)
			}
			return &Divergence{Round: round, Index: i, A: ea, B: eb}
		}
	}
	// Prefix hashes differed but the events agree — impossible unless the
	// index is corrupt; report the round boundary rather than lying.
	return &Divergence{Round: lo}
}

// Replay re-executes a program and diffs its deterministic event stream
// against a reference trace. run must execute the program with the given
// sink attached to the engine (typically by setting
// congest.Options.Events); Replay returns the first divergence, or nil if
// the re-execution reproduced the reference exactly. A run error is
// returned as-is: a replay that cannot even complete is a different
// failure than one that diverges.
func Replay(ref []Event, run func(Sink) error) (*Divergence, error) {
	got := &MemorySink{}
	if err := run(got); err != nil {
		return nil, err
	}
	return Bisect(ref, got.Events), nil
}
