package core

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/rng"
)

func TestPaperParamsFormulas(t *testing.T) {
	// At astronomically large Δ the paper's Θ goes positive even for α=2.
	p := PaperParams(2, 1<<40, 1)
	if p.NumScales <= 0 {
		t.Fatalf("Θ = %d at Δ=2^40", p.NumScales)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Λ grows like α⁸·log(α log Δ): enormous even for α=2.
	if p.Iterations < 8*4*(32*64+1) {
		t.Fatalf("Λ = %d smaller than the formula's leading term", p.Iterations)
	}
	// ρ halves per scale.
	for k := 2; k <= p.NumScales; k++ {
		if p.Rho(k) > p.Rho(k-1) {
			t.Fatalf("ρ increased between scales %d and %d", k-1, k)
		}
	}
}

func TestPaperParamsDegenerateAtSmallDelta(t *testing.T) {
	// Honest paper constants: at laptop-scale Δ the scale loop is empty.
	p := PaperParams(2, 100, 1)
	if p.NumScales != 0 {
		t.Fatalf("Θ = %d at Δ=100, expected 0", p.NumScales)
	}
	if p.TotalRounds() != 0 {
		t.Fatal("empty schedule should have 0 rounds")
	}
}

func TestPracticalParamsExecuteAtSmallDelta(t *testing.T) {
	p := PracticalParams(2, 60)
	if p.NumScales < 1 {
		t.Fatalf("practical Θ = %d", p.NumScales)
	}
	if p.Iterations < 1 {
		t.Fatalf("practical Λ = %d", p.Iterations)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Thresholds have the paper's shape: highDeg halves (+α), badLimit
	// quarters.
	for k := 1; k <= p.NumScales; k++ {
		if p.HighDeg(k) != 60/(1<<uint(k))+2 {
			t.Fatalf("highDeg(%d) = %d", k, p.HighDeg(k))
		}
		if p.BadLimit(k) != 60/(1<<uint(k+2)) {
			t.Fatalf("badLimit(%d) = %d", k, p.BadLimit(k))
		}
	}
}

func TestParamsValidateRejects(t *testing.T) {
	cases := []*Params{
		{Alpha: 0, Delta: 10},
		{Alpha: 1, Delta: -1},
		{Alpha: 1, Delta: 10, NumScales: -1},
		{Alpha: 1, Delta: 10, NumScales: 2, Iterations: 0},
		{Alpha: 1, Delta: 10, NumScales: 2, Iterations: 1}, // missing slices
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestRunAlg1AllNodesClassified(t *testing.T) {
	g := gen.UnionOfTrees(300, 2, rng.New(1))
	params := PracticalParams(2, g.MaxDegree())
	out, err := RunAlg1(g, params, congest.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range out.Statuses {
		switch s {
		case base.StatusInMIS, base.StatusDominated, base.StatusBad, base.StatusActive:
		default:
			t.Fatalf("node %d has status %v", v, s)
		}
	}
	// The independent set I must be independent.
	if ok, bad := g.IsIndependent(base.MISSet(out.Statuses)); !ok {
		t.Fatalf("I not independent: edge %v", bad)
	}
	// Every dominated node has an I neighbor.
	for v, s := range out.Statuses {
		if s != base.StatusDominated {
			continue
		}
		found := false
		for _, w := range g.Neighbors(v) {
			if out.Statuses[w] == base.StatusInMIS {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d dominated without I neighbor", v)
		}
	}
}

func TestRunAlg1ScheduleLength(t *testing.T) {
	g := gen.UnionOfTrees(200, 2, rng.New(2))
	params := PracticalParams(2, g.MaxDegree())
	out, err := RunAlg1(g, params, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Rounds > params.TotalRounds() {
		t.Fatalf("rounds %d exceed schedule %d", out.Result.Rounds, params.TotalRounds())
	}
}

func TestRunAlg1TracesRespectSchedule(t *testing.T) {
	g := gen.UnionOfTrees(250, 3, rng.New(3))
	params := PracticalParams(3, g.MaxDegree())
	out, err := RunAlg1(g, params, congest.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sawTrace := false
	for v, tr := range out.Traces {
		for i, rec := range tr {
			sawTrace = true
			if rec.Scale != i+1 {
				t.Fatalf("node %d trace %d has scale %d", v, i, rec.Scale)
			}
			if rec.Bound != params.BadLimit(rec.Scale) {
				t.Fatalf("node %d: bound %d, want %d", v, rec.Bound, params.BadLimit(rec.Scale))
			}
			if rec.HighDegNbrs > rec.DegIB {
				t.Fatalf("node %d: more high-degree neighbors (%d) than neighbors (%d)", v, rec.HighDegNbrs, rec.DegIB)
			}
		}
	}
	if !sawTrace {
		t.Fatal("no node produced a trace; scales did not run")
	}
}

func TestRunAlg1SurvivorsSatisfyInvariant(t *testing.T) {
	// Nodes still active at a scale's end either satisfied the Invariant
	// or were moved to B: survivors' final trace entries must be within
	// the bound. (This is satisfied by construction — the test pins the
	// mechanism.)
	g := gen.UnionOfTrees(400, 2, rng.New(4))
	params := PracticalParams(2, g.MaxDegree())
	out, err := RunAlg1(g, params, congest.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range out.Statuses {
		if s != base.StatusActive {
			continue
		}
		tr := out.Traces[v]
		if len(tr) != params.NumScales {
			t.Fatalf("survivor %d has %d trace entries, want %d", v, len(tr), params.NumScales)
		}
		for _, rec := range tr {
			if rec.HighDegNbrs > rec.Bound {
				t.Fatalf("survivor %d violates Invariant at scale %d: %d > %d",
					v, rec.Scale, rec.HighDegNbrs, rec.Bound)
			}
		}
	}
	// Bad nodes must have violated the bound at their last scale.
	for v, s := range out.Statuses {
		if s != base.StatusBad {
			continue
		}
		tr := out.Traces[v]
		if len(tr) == 0 {
			t.Fatalf("bad node %d has no trace", v)
		}
		lastRec := tr[len(tr)-1]
		if lastRec.HighDegNbrs <= lastRec.Bound {
			t.Fatalf("bad node %d within bound: %d <= %d", v, lastRec.HighDegNbrs, lastRec.Bound)
		}
	}
}

func TestRunAlg1RejectsWrongDelta(t *testing.T) {
	g := gen.Star(50)
	params := PracticalParams(1, 3) // graph has Δ=49
	if _, err := RunAlg1(g, params, congest.Options{Seed: 1}); err == nil {
		t.Fatal("accepted params built for smaller Δ")
	}
}

func TestRunAlg1ThetaZeroNoop(t *testing.T) {
	g := gen.UnionOfTrees(100, 2, rng.New(5))
	params := PaperParams(2, g.MaxDegree(), 1) // Θ=0 at this scale
	out, err := RunAlg1(g, params, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Rounds != 0 {
		t.Fatalf("no-op ran %d rounds", out.Result.Rounds)
	}
	for v, s := range out.Statuses {
		if s != base.StatusActive {
			t.Fatalf("node %d status %v after no-op", v, s)
		}
	}
}

func TestArbMISValidOnFamilies(t *testing.T) {
	r := rng.New(10)
	cases := []struct {
		name  string
		g     *graph.Graph
		alpha int
	}{
		{"tree", gen.RandomTree(400, r.Split(1)), 1},
		{"star", gen.Star(120), 1},
		{"caterpillar", gen.Caterpillar(30, 6), 1},
		{"grid", gen.Grid(15, 15), 2},
		{"union2", gen.UnionOfTrees(300, 2, r.Split(2)), 2},
		{"union4", gen.UnionOfTrees(300, 4, r.Split(3)), 4},
		{"ktree3", gen.KTree(250, 3, r.Split(4)), 3},
		{"pa3", gen.PreferentialAttachment(300, 3, r.Split(5)), 3},
		{"isolated", graph.MustNew(10, nil), 1},
		{"single", graph.MustNew(1, nil), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			params := PracticalParams(c.alpha, c.g.MaxDegree())
			out, err := ArbMIS(c.g, params, congest.Options{Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			// ArbMIS verifies internally; double-check anyway.
			if err := c.g.VerifyMIS(out.MIS); err != nil {
				t.Fatal(err)
			}
			if out.TotalRounds() < 0 || out.MISSize() == 0 && c.g.N() > 0 {
				t.Fatalf("degenerate outcome: rounds=%d |MIS|=%d", out.TotalRounds(), out.MISSize())
			}
		})
	}
}

func TestArbMISManySeeds(t *testing.T) {
	g := gen.UnionOfTrees(250, 3, rng.New(20))
	params := PracticalParams(3, g.MaxDegree())
	for seed := uint64(0); seed < 15; seed++ {
		out, err := ArbMIS(g, params, congest.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := g.VerifyMIS(out.MIS); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestArbMISWithPaperParams(t *testing.T) {
	// With the paper's literal constants (Θ=0 at this scale) the pipeline
	// still produces a valid MIS — everything falls to the finisher.
	g := gen.UnionOfTrees(200, 2, rng.New(21))
	params := PaperParams(2, g.MaxDegree(), 1)
	out, err := ArbMIS(g, params, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMIS(out.MIS); err != nil {
		t.Fatal(err)
	}
	if out.Stages[0].Result.Rounds != 0 {
		t.Fatal("alg1 should be a no-op under paper params here")
	}
}

func TestArbMISStagesAccounted(t *testing.T) {
	g := gen.UnionOfTrees(300, 2, rng.New(22))
	params := PracticalParams(2, g.MaxDegree())
	out, err := ArbMIS(g, params, congest.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stages) != 4 {
		t.Fatalf("got %d stages", len(out.Stages))
	}
	names := []string{"alg1", "vlo", "vhi", "bad"}
	total := 0
	for i, s := range out.Stages {
		if s.Name != names[i] {
			t.Fatalf("stage %d is %q", i, s.Name)
		}
		total += s.Result.Rounds
	}
	if total != out.TotalRounds() {
		t.Fatalf("TotalRounds %d != sum %d", out.TotalRounds(), total)
	}
}

func TestArbMISDeterministicGivenSeed(t *testing.T) {
	g := gen.UnionOfTrees(200, 2, rng.New(23))
	params := PracticalParams(2, g.MaxDegree())
	a, err := ArbMIS(g, params, congest.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ArbMIS(g, params, congest.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.MIS {
		if a.MIS[v] != b.MIS[v] {
			t.Fatalf("node %d differs between identical runs", v)
		}
	}
}

func TestArbMISParallelDriver(t *testing.T) {
	g := gen.UnionOfTrees(150, 2, rng.New(24))
	params := PracticalParams(2, g.MaxDegree())
	seq, err := ArbMIS(g, params, congest.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ArbMIS(g, params, congest.Options{Seed: 4, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq.MIS {
		if seq.MIS[v] != par.MIS[v] {
			t.Fatalf("node %d differs across drivers", v)
		}
	}
}

func TestArbMISRhoOptOutAblation(t *testing.T) {
	// A1: disabling the ρₖ opt-out must still give a valid MIS (the
	// opt-out matters for the analysis, not correctness).
	g := gen.UnionOfTrees(250, 3, rng.New(25))
	params := PracticalParams(3, g.MaxDegree())
	params.RhoOptOut = false
	out, err := ArbMIS(g, params, congest.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMIS(out.MIS); err != nil {
		t.Fatal(err)
	}
}

func TestBadComponentSizesSorted(t *testing.T) {
	g := gen.UnionOfTrees(500, 3, rng.New(26))
	params := PracticalParams(3, g.MaxDegree())
	out, err := ArbMIS(g, params, congest.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sizes := out.BadComponentSizes
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatal("component sizes not sorted descending")
		}
	}
	badCount := out.Alg1.CountStatus(base.StatusBad)
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != badCount {
		t.Fatalf("component sizes sum to %d, |B| = %d", sum, badCount)
	}
}

func TestCountStatus(t *testing.T) {
	out := &Alg1Output{Statuses: []base.Status{
		base.StatusInMIS, base.StatusBad, base.StatusInMIS, base.StatusActive,
	}}
	if out.CountStatus(base.StatusInMIS) != 2 || out.CountStatus(base.StatusBad) != 1 {
		t.Fatal("CountStatus wrong")
	}
}

func TestArbMISForcedBadSet(t *testing.T) {
	// Force the bad test to expel every scale-1 survivor (badLimit = -1):
	// B becomes non-empty, exercising the deterministic bad-set finisher,
	// and the composed MIS must still verify.
	g := gen.UnionOfTrees(400, 3, rng.New(30))
	params := PracticalParams(3, g.MaxDegree())
	params.Iterations = 1
	for k := 1; k <= params.NumScales; k++ {
		params.SetBadLimit(k, -1)
	}
	out, err := ArbMIS(g, params, congest.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out.Alg1.CountStatus(base.StatusBad) == 0 {
		t.Fatal("forcing produced no bad nodes")
	}
	if len(out.BadComponentSizes) == 0 {
		t.Fatal("no bad components recorded")
	}
	var badStage *Stage
	for i := range out.Stages {
		if out.Stages[i].Name == "bad" {
			badStage = &out.Stages[i]
		}
	}
	if badStage == nil || badStage.Nodes == 0 {
		t.Fatal("bad finisher stage did not run")
	}
	if err := g.VerifyMIS(out.MIS); err != nil {
		t.Fatal(err)
	}
}

func TestArbMISForcedBadManySeeds(t *testing.T) {
	g := gen.PreferentialAttachment(300, 3, rng.New(31))
	params := PracticalParams(3, g.MaxDegree())
	params.Iterations = 1
	for k := 1; k <= params.NumScales; k++ {
		params.SetBadLimit(k, -1)
	}
	for seed := uint64(0); seed < 10; seed++ {
		out, err := ArbMIS(g, params, congest.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := g.VerifyMIS(out.MIS); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
