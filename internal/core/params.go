// Package core implements the reproduced paper's contribution: Algorithm 1
// (BoundedArbIndependentSet — scales of Métivier-style priority iterations
// with a high-degree opt-out and a "bad node" escape hatch) and Algorithm 2
// (ArbMIS — the full MIS pipeline that finishes off the deferred and bad
// nodes), together with the per-scale instrumentation the experiments
// consume.
package core

import (
	"fmt"
	"math"
)

// Params are the knobs of Algorithm 1. The paper fixes them as functions of
// the maximum degree Δ and the arboricity α; the two constructors below
// provide the paper's literal values and a practically-scaled profile with
// the same functional shape (see DESIGN.md §2, "Substitutions").
type Params struct {
	// Alpha is the arboricity bound α the algorithm is parameterized by.
	Alpha int
	// Delta is the maximum degree Δ of the input graph.
	Delta int
	// NumScales is Θ, the number of degree scales.
	NumScales int
	// Iterations is Λ, the number of priority iterations per scale.
	Iterations int
	// P is the paper's confidence constant p (Λ is proportional to it and
	// the bad-node probability is 1/Δ^2p).
	P int
	// rho[k] is ρₖ for scale k (1-based): nodes with active degree above it
	// set their priority to 0 (the opt-out that bounds the read-k of
	// parent events).
	rho []int
	// highDeg[k]: an active neighbor with degree above this counts as a
	// high-degree neighbor in scale k (Δ/2ᵏ + α in the paper).
	highDeg []int
	// badLimit[k]: more than this many high-degree neighbors at the end of
	// scale k makes a node bad (Δ/2ᵏ⁺² in the paper).
	badLimit []int
	// RhoOptOut enables the deterministic r(v)←0 for high-degree nodes.
	// Disabling it is ablation A1 and deviates from the paper.
	RhoOptOut bool
}

// Rho returns ρₖ for scale k in 1..NumScales.
func (p *Params) Rho(k int) int { return p.rho[k-1] }

// HighDeg returns the scale-k high-degree threshold Δ/2ᵏ + α.
func (p *Params) HighDeg(k int) int { return p.highDeg[k-1] }

// BadLimit returns the scale-k bad threshold Δ/2ᵏ⁺².
func (p *Params) BadLimit(k int) int { return p.badLimit[k-1] }

// SetBadLimit overrides the scale-k bad threshold; experiment stress
// profiles use it to force the bad set to populate at laptop scale.
func (p *Params) SetBadLimit(k, limit int) { p.badLimit[k-1] = limit }

// SetRho overrides ρₖ for scale k (parameter-sensitivity ablations).
func (p *Params) SetRho(k, rho int) { p.rho[k-1] = rho }

// Validate checks internal consistency.
func (p *Params) Validate() error {
	if p.Alpha < 1 {
		return fmt.Errorf("core: alpha %d < 1", p.Alpha)
	}
	if p.Delta < 0 {
		return fmt.Errorf("core: delta %d < 0", p.Delta)
	}
	if p.NumScales < 0 {
		return fmt.Errorf("core: negative scale count %d", p.NumScales)
	}
	if p.NumScales > 0 && p.Iterations < 1 {
		return fmt.Errorf("core: %d scales but %d iterations", p.NumScales, p.Iterations)
	}
	for _, s := range [][]int{p.rho, p.highDeg, p.badLimit} {
		if len(s) != p.NumScales {
			return fmt.Errorf("core: per-scale slice has %d entries for %d scales", len(s), p.NumScales)
		}
	}
	return nil
}

// lnDelta returns ln Δ floored at 1 so the formulas stay meaningful for
// tiny Δ (the paper implicitly assumes large Δ).
func lnDelta(delta int) float64 {
	l := math.Log(float64(delta))
	if l < 1 {
		return 1
	}
	return l
}

// PaperParams returns Algorithm 1's parameters exactly as printed:
//
//	Θ  = ⌊log₂(Δ / (1176·16·α¹⁰·ln²Δ))⌋
//	Λ  = ⌈p·8α²(32α⁶+1)·ln(260·α⁴·ln²Δ)⌉
//	ρₖ = 8·lnΔ·Δ/2ᵏ⁺¹
//
// For laptop-scale Δ the Θ formula is negative, in which case the scale
// loop is empty — Algorithm 1 is a no-op and all the work falls to the
// finishing stages. That is the honest behaviour of the printed constants
// and is measured by ablation A2.
func PaperParams(alpha, delta, p int) *Params {
	if p < 1 {
		p = 1
	}
	a := float64(alpha)
	ln := lnDelta(delta)
	theta := int(math.Floor(math.Log2(float64(delta) / (1176 * 16 * math.Pow(a, 10) * ln * ln))))
	if theta < 0 {
		theta = 0
	}
	lambda := int(math.Ceil(float64(p) * 8 * a * a * (32*math.Pow(a, 6) + 1) * math.Log(260*math.Pow(a, 4)*ln*ln)))
	pp := &Params{
		Alpha:      alpha,
		Delta:      delta,
		NumScales:  theta,
		Iterations: lambda,
		P:          p,
		RhoOptOut:  true,
	}
	pp.fillScales(func(k int) int {
		return int(math.Ceil(8 * ln * float64(delta) / math.Pow(2, float64(k+1))))
	})
	return pp
}

// PracticalParams returns parameters with the same functional shape as the
// paper's but constants scaled so the scale loop actually executes at
// laptop-scale Δ:
//
//	Θ  = ⌊log₂(Δ / lnΔ)⌋, at least 1 when Δ ≥ 2
//	Λ  = max(1, ⌈½·ln(α·lnΔ)⌉)
//	ρₖ = ⌈2·lnΔ·Δ/2ᵏ⁺¹⌉  (same Δ/2ᵏ·logΔ shape, smaller constant)
//
// Λ is deliberately small per scale: priority iterations make constant-
// factor progress per round at laptop scale (a few iterations resolve a
// sparse graph outright — measured by E12), so visible scale progression
// requires Λ of 1-2 while keeping the paper's Λ = Θ(poly(α)·log(α·logΔ))
// shape in α and Δ.
// Correctness of the full ArbMIS pipeline does not depend on these values;
// they only shift work between the shattering and finishing stages (A3
// measures the sensitivity).
func PracticalParams(alpha, delta int) *Params {
	a := float64(alpha)
	ln := lnDelta(delta)
	theta := 0
	if delta >= 2 {
		theta = int(math.Floor(math.Log2(float64(delta) / ln)))
		if theta < 1 {
			theta = 1
		}
	}
	lambda := int(math.Ceil(0.5 * math.Log(a*ln)))
	if lambda < 1 {
		lambda = 1
	}
	pp := &Params{
		Alpha:      alpha,
		Delta:      delta,
		NumScales:  theta,
		Iterations: lambda,
		P:          1,
		RhoOptOut:  true,
	}
	pp.fillScales(func(k int) int {
		return int(math.Ceil(2 * ln * float64(delta) / math.Pow(2, float64(k+1))))
	})
	return pp
}

// NewParams builds a profile with explicit Θ, Λ and ρ formula, keeping the
// standard Δ/2ᵏ+α and Δ/2ᵏ⁺² threshold shapes. It is the constructor for
// variant parameterizations (e.g. the tree algorithm's constants).
func NewParams(alpha, delta, p, theta, lambda int, rho func(k int) int) *Params {
	if p < 1 {
		p = 1
	}
	if theta < 0 {
		theta = 0
	}
	if theta > 0 && lambda < 1 {
		lambda = 1
	}
	pp := &Params{
		Alpha:      alpha,
		Delta:      delta,
		NumScales:  theta,
		Iterations: lambda,
		P:          p,
		RhoOptOut:  true,
	}
	pp.fillScales(rho)
	return pp
}

// fillScales populates the per-scale thresholds given the ρ formula.
func (p *Params) fillScales(rho func(k int) int) {
	p.rho = make([]int, p.NumScales)
	p.highDeg = make([]int, p.NumScales)
	p.badLimit = make([]int, p.NumScales)
	for k := 1; k <= p.NumScales; k++ {
		r := rho(k)
		if r < 1 {
			r = 1
		}
		p.rho[k-1] = r
		p.highDeg[k-1] = p.Delta/(1<<uint(k)) + p.Alpha
		p.badLimit[k-1] = p.Delta / (1 << uint(k+2))
	}
}

// RoundsPerScale returns the engine rounds one scale consumes: three per
// priority iteration plus the degree-exchange and bad-marking rounds.
func (p *Params) RoundsPerScale() int { return 3*p.Iterations + 2 }

// TotalRounds returns the fixed length of the Algorithm 1 schedule.
func (p *Params) TotalRounds() int { return p.NumScales * p.RoundsPerScale() }
