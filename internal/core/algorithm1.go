package core

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/proto"
)

// ScaleRecord is one node's instrumentation snapshot at the end of a scale,
// taken just before the bad test. It is exactly the quantity the paper's
// Invariant bounds: the number of active neighbors whose active degree
// exceeds the scale's high-degree threshold.
type ScaleRecord struct {
	// Scale is the 1-based scale index k.
	Scale int
	// DegIB is this node's own active degree at the end of the scale.
	DegIB int
	// HighDegNbrs is |{w ∈ Γ_IB(v) : deg_IB(w) > Δ/2ᵏ + α}|.
	HighDegNbrs int
	// Bound is the Invariant's right-hand side Δ/2ᵏ⁺² for this scale.
	Bound int
}

// Alg1Output is the result of one BoundedArbIndependentSet run.
type Alg1Output struct {
	// Statuses holds, per node: StatusInMIS (joined I), StatusDominated
	// (neighbor joined I), StatusBad (placed in B), or StatusActive (still
	// in V_IB when the scales ran out — the deferred set the finishing
	// stages handle).
	Statuses []base.Status
	// Traces[v] holds v's per-scale records for the scales it survived.
	Traces [][]ScaleRecord
	// Result carries engine round/message accounting.
	Result congest.Result
	// Params echoes the parameters the run used.
	Params *Params
}

// CountStatus tallies how many nodes finished with status s.
func (o *Alg1Output) CountStatus(s base.Status) int {
	n := 0
	for _, got := range o.Statuses {
		if got == s {
			n++
		}
	}
	return n
}

// node is the per-vertex state machine of Algorithm 1. The whole schedule
// is fixed in advance (nodes know Δ and α, hence Θ, Λ and every
// threshold), so a node derives its current (scale, iteration, phase) from
// the global round number:
//
//	slot s = round; scale k = s/(3Λ+2)+1; within a scale:
//	  slots 0..3Λ-1: priority iterations, three phases each
//	    phase 0: process removals, choose & broadcast priority (ρₖ opt-out)
//	    phase 1: compare priorities; local maxima join I and halt
//	    phase 2: neighbors of joiners announce removal and halt
//	  slot 3Λ:    process removals, broadcast current active degree
//	  slot 3Λ+1:  count high-degree active neighbors; nodes over the
//	              Invariant bound turn bad, announce removal and halt
type node struct {
	params   *Params
	status   base.Status
	active   *base.ActiveSet
	priority uint64
	compete  bool
	trace    []ScaleRecord
}

// Status implements base.Membership.
func (nd *node) Status() base.Status { return nd.status }

// NewProgram returns a factory for Algorithm 1 nodes with the given
// parameters.
func NewProgram(params *Params) func(v int) congest.Node {
	return func(int) congest.Node {
		return &node{params: params, status: base.StatusActive}
	}
}

// RunAlg1 executes BoundedArbIndependentSet on g.
func RunAlg1(g *graph.Graph, params *Params, opts congest.Options) (*Alg1Output, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.Delta < g.MaxDegree() {
		return nil, fmt.Errorf("core: params built for Δ=%d but graph has Δ=%d", params.Delta, g.MaxDegree())
	}
	r := congest.NewRunner(g, NewProgram(params), opts)
	res, err := r.Run()
	if err != nil {
		return nil, err
	}
	out := &Alg1Output{
		Statuses: base.Statuses(r, g.N()),
		Traces:   make([][]ScaleRecord, g.N()),
		Result:   res,
		Params:   params,
	}
	for v := 0; v < g.N(); v++ {
		out.Traces[v] = r.Node(v).(*node).trace
	}
	return out, nil
}

func (nd *node) Init(ctx *congest.Context) {
	nd.active = base.NewActiveSet(ctx.Neighbors())
	if nd.params.TotalRounds() == 0 {
		// Θ = 0: the scale loop is empty (paper constants at small Δ);
		// every node stays in V_IB for the finishing stages.
		ctx.Halt()
		return
	}
	nd.startIteration(ctx, 1)
}

// scaleOf maps a slot (round number) to its 1-based scale.
func (nd *node) scaleOf(slot int) int {
	return slot/nd.params.RoundsPerScale() + 1
}

// startIteration is phase 0: apply the ρₖ opt-out and broadcast a priority.
func (nd *node) startIteration(ctx *congest.Context, scale int) {
	nd.compete = !nd.params.RhoOptOut || nd.active.Count() <= nd.params.Rho(scale)
	if nd.compete {
		nd.priority = ctx.RNG().Uint64()
	} else {
		nd.priority = 0 // the paper's deterministic r(v) ← 0
	}
	ctx.Broadcast(proto.Priority{Value: nd.priority, Competitive: nd.compete}.Wire())
}

// processRemovals shrinks the active set from removal announcements.
func (nd *node) processRemovals(inbox []congest.Message) {
	for _, m := range inbox {
		if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindRemoved {
			nd.active.Remove(m.From)
		}
	}
}

func (nd *node) Round(ctx *congest.Context, inbox []congest.Message) {
	slot := ctx.Round()
	p := nd.params
	inScale := slot % p.RoundsPerScale()
	scale := nd.scaleOf(slot)
	last := slot == p.TotalRounds()-1

	switch {
	case inScale < 3*p.Iterations:
		switch inScale % 3 {
		case 0: // fresh iteration
			nd.processRemovals(inbox)
			nd.startIteration(ctx, scale)
		case 1: // priorities arrived
			if nd.wins(ctx.ID(), inbox) {
				nd.status = base.StatusInMIS
				ctx.Broadcast(proto.Flag{Kind: proto.KindJoined}.Wire())
				ctx.Halt()
			}
		case 2: // join announcements
			for _, m := range inbox {
				if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindJoined {
					nd.status = base.StatusDominated
					ctx.Broadcast(proto.Flag{Kind: proto.KindRemoved}.Wire())
					ctx.Halt()
					return
				}
			}
		}
	case inScale == 3*p.Iterations: // degree exchange
		nd.processRemovals(inbox)
		ctx.Broadcast(proto.Degree{Value: int32(nd.active.Count())}.Wire())
	default: // bad test (inScale == 3Λ+1)
		high := 0
		threshold := p.HighDeg(scale)
		for _, m := range inbox {
			if d, ok := proto.AsDegree(m.Wire); ok && nd.active.Contains(m.From) {
				if int(d.Value) > threshold {
					high++
				}
			}
		}
		nd.trace = append(nd.trace, ScaleRecord{
			Scale:       scale,
			DegIB:       nd.active.Count(),
			HighDegNbrs: high,
			Bound:       p.BadLimit(scale),
		})
		if high > p.BadLimit(scale) {
			nd.status = base.StatusBad
			ctx.Broadcast(proto.Flag{Kind: proto.KindRemoved}.Wire())
			ctx.Halt()
			return
		}
		if last {
			ctx.Halt() // survivor: stays StatusActive for the finisher
		}
	}
}

// wins reports whether this node's priority beats every neighbor's. The
// paper's semantics: non-competitive nodes hold r = 0 and can never win;
// the strict comparison r(v) > max r(w) is emulated on 64-bit draws with
// sender-ID tie-breaking.
func (nd *node) wins(id int, inbox []congest.Message) bool {
	if !nd.compete {
		return false
	}
	for _, m := range inbox {
		p, ok := proto.AsPriority(m.Wire)
		if !ok {
			continue
		}
		eff := uint64(0)
		if p.Competitive {
			eff = p.Value
		}
		if eff > nd.priority || (eff == nd.priority && m.From > id) {
			return false
		}
	}
	return true
}
