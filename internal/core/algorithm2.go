package core

import (
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/ghaffari"
)

// Stage identifies one run of the ArbMIS pipeline with its cost.
type Stage struct {
	// Name is the stage label ("alg1", "vlo", "vhi", "bad").
	Name string
	// Nodes is the size of the subgraph the stage ran on.
	Nodes int
	// Result carries the stage's engine accounting.
	Result congest.Result
}

// Outcome is the result of a full ArbMIS run.
type Outcome struct {
	// MIS marks the final maximal independent set; it is verified against
	// the input graph before ArbMIS returns.
	MIS []bool
	// Alg1 is the instrumented output of the shattering stage.
	Alg1 *Alg1Output
	// Stages lists every pipeline stage in execution order.
	Stages []Stage
	// BadComponentSizes are the connected-component sizes of G[B]
	// (Lemma 3.7's shattering quantity), largest first.
	BadComponentSizes []int
	// VloSize and VhiSize are the sizes of the deferred-set split.
	VloSize, VhiSize int
}

// TotalRounds sums engine rounds across stages. The pipeline stages
// compose sequentially in the paper as well, so the sum is the honest
// CONGEST round count of the whole algorithm.
func (o *Outcome) TotalRounds() int {
	t := 0
	for _, s := range o.Stages {
		t += s.Result.Rounds
	}
	return t
}

// TotalMessages sums delivered messages across stages.
func (o *Outcome) TotalMessages() int64 {
	var t int64
	for _, s := range o.Stages {
		t += s.Result.Messages
	}
	return t
}

// MaxMessageBits returns the largest single message across stages.
func (o *Outcome) MaxMessageBits() int {
	m := 0
	for _, s := range o.Stages {
		if s.Result.MaxMessageBits > m {
			m = s.Result.MaxMessageBits
		}
	}
	return m
}

// MISSize returns |MIS|.
func (o *Outcome) MISSize() int { return graph.SetSize(o.MIS) }

// ArbMIS runs the full Algorithm 2 pipeline on g:
//
//  1. BoundedArbIndependentSet (Algorithm 1) yields I, the bad set B, and
//     the deferred set V_IB.
//  2. V_IB splits into V_lo / V_hi at the last scale's high-degree
//     threshold Δ/2^Θ + α (which is exactly the paper's
//     1176·16·α¹⁰·ln²Δ + α when Θ takes its defining value); by the
//     Invariant, G[V_hi] has small maximum degree.
//  3. An MIS of G[V_lo], then of G[V_hi \ Γ(I_lo)], is computed with
//     Ghaffari's algorithm (substituting for Barenboim et al. Theorem 7.4,
//     which this repository does not reproduce separately — both are
//     "fast MIS on bounded-degree sparse graphs" black boxes here).
//  4. The bad set is finished deterministically with the local-minimum
//     sweep, whose round count is bounded by the largest component of
//     G[B] — small by shattering (Lemma 3.7). Algorithm 2 as printed
//     computes each bad component's MIS in isolation, which can conflict
//     with I_lo/I_hi across B–V_IB edges; as in the standard shattering
//     composition we run the finisher on B \ Γ(I ∪ I_lo ∪ I_hi).
//
// The returned MIS is verified; an error means a bug, never bad luck.
func ArbMIS(g *graph.Graph, params *Params, opts congest.Options) (*Outcome, error) {
	return arbMIS(g, params, opts, localMinStage)
}

// stageFn computes an MIS of a subgraph, returning per-node statuses and
// the stage's round accounting.
type stageFn func(sub *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error)

func arbMIS(g *graph.Graph, params *Params, opts congest.Options, badFinisher stageFn) (*Outcome, error) {
	out1, err := RunAlg1(g, params, opts)
	if err != nil {
		return nil, fmt.Errorf("core: algorithm 1: %w", err)
	}
	o := &Outcome{
		MIS:  make([]bool, g.N()),
		Alg1: out1,
		Stages: []Stage{{
			Name:   "alg1",
			Nodes:  g.N(),
			Result: out1.Result,
		}},
	}
	var deferred, bad []int
	for v, s := range out1.Statuses {
		switch s {
		case base.StatusInMIS:
			o.MIS[v] = true
		case base.StatusBad:
			bad = append(bad, v)
		case base.StatusActive:
			deferred = append(deferred, v)
		}
	}

	// Shattering statistics on the full bad set (Lemma 3.7).
	o.BadComponentSizes, err = componentSizes(g, bad)
	if err != nil {
		return nil, err
	}

	// Split the deferred set by active degree within it.
	vlo, vhi, err := splitDeferred(g, deferred, params)
	if err != nil {
		return nil, err
	}
	o.VloSize, o.VhiSize = len(vlo), len(vhi)

	seedOffset := uint64(1)
	randomStage := func(name string, vertices []int) error {
		stage, err := runStage(g, vertices, name, func(sub *graph.Graph) ([]base.Status, congest.Result, error) {
			return ghaffari.Run(sub, stageOpts(opts, seedOffset))
		}, o.MIS)
		seedOffset++
		if err != nil {
			return err
		}
		o.Stages = append(o.Stages, stage)
		return nil
	}
	if err := randomStage("vlo", vlo); err != nil {
		return nil, err
	}
	if err := randomStage("vhi", excludeDominated(g, vhi, o.MIS)); err != nil {
		return nil, err
	}
	badStage, err := runStage(g, excludeDominated(g, bad, o.MIS), "bad", func(sub *graph.Graph) ([]base.Status, congest.Result, error) {
		return badFinisher(sub, stageOpts(opts, seedOffset))
	}, o.MIS)
	if err != nil {
		return nil, err
	}
	o.Stages = append(o.Stages, badStage)

	if err := g.VerifyMIS(o.MIS); err != nil {
		return nil, fmt.Errorf("core: pipeline produced an invalid MIS: %w", err)
	}
	return o, nil
}

// stageOpts derives per-stage options: a distinct seed stream per stage,
// same driver and limits.
func stageOpts(opts congest.Options, offset uint64) congest.Options {
	opts.Seed = opts.Seed*0x9e3779b97f4a7c15 + offset
	return opts
}

// runStage computes an MIS of G[vertices] with the supplied algorithm and
// merges the members into mis (indexed by original IDs).
func runStage(g *graph.Graph, vertices []int, name string, run func(sub *graph.Graph) ([]base.Status, congest.Result, error), mis []bool) (Stage, error) {
	stage := Stage{Name: name, Nodes: len(vertices)}
	if len(vertices) == 0 {
		return stage, nil
	}
	sub, orig, err := g.InducedSubgraph(vertices)
	if err != nil {
		return stage, fmt.Errorf("core: stage %s: %w", name, err)
	}
	statuses, res, err := run(sub)
	if err != nil {
		return stage, fmt.Errorf("core: stage %s: %w", name, err)
	}
	stage.Result = res
	for i, s := range statuses {
		if s == base.StatusInMIS {
			mis[orig[i]] = true
		}
	}
	return stage, nil
}

// splitDeferred partitions the deferred vertices into V_lo (active degree
// within the deferred set at most Δ/2^Θ + α) and V_hi (the rest). With
// Θ = 0 every deferred vertex lands in V_lo.
func splitDeferred(g *graph.Graph, deferred []int, params *Params) (vlo, vhi []int, err error) {
	if len(deferred) == 0 {
		return nil, nil, nil
	}
	threshold := params.Delta + params.Alpha
	if params.NumScales > 0 {
		threshold = params.HighDeg(params.NumScales)
	}
	inDeferred := make(map[int]bool, len(deferred))
	for _, v := range deferred {
		inDeferred[v] = true
	}
	for _, v := range deferred {
		deg := 0
		for _, w := range g.Neighbors(v) {
			if inDeferred[w] {
				deg++
			}
		}
		if deg <= threshold {
			vlo = append(vlo, v)
		} else {
			vhi = append(vhi, v)
		}
	}
	return vlo, vhi, nil
}

// excludeDominated drops vertices already adjacent to the partial MIS.
func excludeDominated(g *graph.Graph, vertices []int, mis []bool) []int {
	var keep []int
	for _, v := range vertices {
		dominated := false
		for _, w := range g.Neighbors(v) {
			if mis[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, v)
		}
	}
	return keep
}

// componentSizes returns the connected-component sizes of G[vertices],
// sorted descending.
func componentSizes(g *graph.Graph, vertices []int) ([]int, error) {
	if len(vertices) == 0 {
		return nil, nil
	}
	sub, _, err := g.InducedSubgraph(vertices)
	if err != nil {
		return nil, fmt.Errorf("core: bad-set components: %w", err)
	}
	comp, count := sub.Components()
	sizes := graph.ComponentSizes(comp, count)
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes, nil
}
