package core

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/degreduce"
	"repro/internal/mis/localmin"
	"repro/internal/shatter"
)

// BadFinisher selects the deterministic algorithm used on the shattered
// bad components (and, in ArbMIS, nothing else).
type BadFinisher int

// Finisher choices. They start at 1 so the zero value is caught.
const (
	// FinisherLocalMin is the local-minimum-ID sweep: rounds bounded by
	// the largest bad component. The default.
	FinisherLocalMin BadFinisher = iota + 1
	// FinisherForestCV is the paper's Lemma 3.8 pipeline: Barenboim-Elkin
	// forest decomposition + per-forest Cole-Vishkin colorings + a color-
	// vector sweep.
	FinisherForestCV
)

// ArbMISWithFinisher is ArbMIS with an explicit choice of bad-component
// finisher; see ArbMIS for the pipeline description.
func ArbMISWithFinisher(g *graph.Graph, params *Params, finisher BadFinisher, opts congest.Options) (*Outcome, error) {
	switch finisher {
	case FinisherLocalMin:
		return arbMIS(g, params, opts, localMinStage)
	case FinisherForestCV:
		alpha := params.Alpha
		return arbMIS(g, params, opts, func(sub *graph.Graph, o congest.Options) ([]base.Status, congest.Result, error) {
			res, err := shatter.Finish(sub, alpha, o)
			if err != nil {
				return nil, congest.Result{}, err
			}
			return res.Statuses, congest.Result{Rounds: res.TotalRounds()}, nil
		})
	default:
		return nil, fmt.Errorf("core: unknown bad finisher %d", int(finisher))
	}
}

func localMinStage(sub *graph.Graph, o congest.Options) ([]base.Status, congest.Result, error) {
	return localmin.Run(sub, o)
}

// FullOutcome is the result of the complete §3.3 pipeline including the
// degree-reduction preprocessing.
type FullOutcome struct {
	// MIS is the verified maximal independent set of the input graph.
	MIS []bool
	// ReductionResult accounts the preprocessing stage.
	ReductionResult congest.Result
	// ReductionIterations is the preprocessing budget that was used.
	ReductionIterations int
	// SurvivorCount and SurvivorMaxDegree describe the graph handed to
	// ArbMIS; TargetDegree is the α·2^√(log n·log log n) goal from the
	// degree-reduction theorem.
	SurvivorCount     int
	SurvivorMaxDegree int
	TargetDegree      float64
	// Core is the ArbMIS outcome on the survivor subgraph (nil when the
	// preprocessing resolved the whole graph).
	Core *Outcome
}

// TotalRounds sums preprocessing and ArbMIS rounds.
func (o *FullOutcome) TotalRounds() int {
	t := o.ReductionResult.Rounds
	if o.Core != nil {
		t += o.Core.TotalRounds()
	}
	return t
}

// ArbMISFull runs the paper's complete recipe (§3.3 closing paragraph):
// degree-reduction preprocessing for O(√(log n·log log n)) priority
// iterations, then ArbMIS — with parameters rebuilt for the *reduced*
// maximum degree — on the surviving subgraph, then composition. The
// preprocessing constant c scales the iteration budget (the theorem's
// "large enough constant"); 1 is a sensible default.
func ArbMISFull(g *graph.Graph, alpha int, c float64, opts congest.Options) (*FullOutcome, error) {
	if alpha < 1 {
		return nil, fmt.Errorf("core: alpha %d < 1", alpha)
	}
	iters := degreduce.Iterations(g.N(), c)
	statuses, res, err := degreduce.Run(g, iters, opts)
	if err != nil {
		return nil, fmt.Errorf("core: degree reduction: %w", err)
	}
	full := &FullOutcome{
		MIS:                 make([]bool, g.N()),
		ReductionResult:     res,
		ReductionIterations: iters,
		TargetDegree:        degreduce.TargetDegree(g.N(), alpha),
	}
	for v, s := range statuses {
		if s == base.StatusInMIS {
			full.MIS[v] = true
		}
	}
	alive, sub, err := degreduce.Survivors(g, statuses)
	if err != nil {
		return nil, err
	}
	full.SurvivorCount = len(alive)
	full.SurvivorMaxDegree = sub.MaxDegree()
	if len(alive) > 0 {
		params := PracticalParams(alpha, sub.MaxDegree())
		out, err := ArbMIS(sub, params, stageOpts(opts, 0xF))
		if err != nil {
			return nil, fmt.Errorf("core: arbmis on survivors: %w", err)
		}
		full.Core = out
		for i, v := range alive {
			if out.MIS[i] {
				full.MIS[v] = true
			}
		}
	}
	if err := g.VerifyMIS(full.MIS); err != nil {
		return nil, fmt.Errorf("core: full pipeline produced an invalid MIS: %w", err)
	}
	return full, nil
}
