package core

import (
	"testing"
	"testing/quick"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/mis/base"
	"repro/internal/mis/proto"
	"repro/internal/rng"
)

func TestScheduleArithmetic(t *testing.T) {
	// RoundsPerScale and TotalRounds pin the slot layout the node state
	// machine decodes: 3 rounds per iteration + degree exchange + bad test.
	p := &Params{Alpha: 2, Delta: 40, NumScales: 3, Iterations: 4, P: 1, RhoOptOut: true}
	p.fillScales(func(k int) int { return 10 >> uint(k) })
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.RoundsPerScale() != 3*4+2 {
		t.Fatalf("RoundsPerScale = %d", p.RoundsPerScale())
	}
	if p.TotalRounds() != 3*(3*4+2) {
		t.Fatalf("TotalRounds = %d", p.TotalRounds())
	}
	nd := &node{params: p}
	// Slot 0 is scale 1; the last slot of scale 1 is RoundsPerScale-1.
	if nd.scaleOf(0) != 1 || nd.scaleOf(p.RoundsPerScale()-1) != 1 {
		t.Fatal("scale 1 boundary wrong")
	}
	if nd.scaleOf(p.RoundsPerScale()) != 2 {
		t.Fatal("scale 2 start wrong")
	}
	if nd.scaleOf(p.TotalRounds()-1) != 3 {
		t.Fatal("last scale wrong")
	}
}

func TestWinsSemantics(t *testing.T) {
	mk := func(from int, val uint64, compete bool) congest.Message {
		return congest.Message{From: from, Wire: proto.Priority{Value: val, Competitive: compete}.Wire()}
	}
	nd := &node{compete: true, priority: 100}
	// Beats lower competitive priorities and all non-competitive ones.
	if !nd.wins(5, []congest.Message{mk(1, 99, true), mk(2, 1000, false)}) {
		t.Fatal("should win against lower/non-competitive")
	}
	// Loses to a higher competitive priority.
	if nd.wins(5, []congest.Message{mk(1, 101, true)}) {
		t.Fatal("should lose to higher priority")
	}
	// Tie broken by sender ID: higher ID wins.
	if nd.wins(5, []congest.Message{mk(9, 100, true)}) {
		t.Fatal("tie against higher ID should lose")
	}
	if !nd.wins(5, []congest.Message{mk(3, 100, true)}) {
		t.Fatal("tie against lower ID should win")
	}
	// Non-competitive nodes never win, even against nothing.
	nd.compete = false
	if nd.wins(5, nil) {
		t.Fatal("non-competitive node won")
	}
}

func TestRhoOptOutOnStar(t *testing.T) {
	// On a star with ρ forced to 1, the hub (degree n-1) must never join
	// during Algorithm 1 — it is never competitive — so it ends dominated
	// (a leaf joins) with overwhelming probability, or deferred.
	g := gen.Star(64)
	params := PracticalParams(1, g.MaxDegree())
	for k := 1; k <= params.NumScales; k++ {
		params.SetRho(k, 1)
	}
	hubJoined := 0
	for seed := uint64(0); seed < 20; seed++ {
		out, err := RunAlg1(g, params, congest.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if out.Statuses[0] == base.StatusInMIS {
			hubJoined++
		}
	}
	if hubJoined != 0 {
		t.Fatalf("opted-out hub joined the MIS in %d/20 runs", hubJoined)
	}
}

func TestArbMISQuickProperty(t *testing.T) {
	// Randomized end-to-end property: any union-of-trees graph, any α in
	// range, any seed → verified MIS.
	r := rng.New(90)
	if err := quick.Check(func(seed uint64) bool {
		rr := r.Split(seed)
		n := 50 + rr.Intn(300)
		alpha := 1 + rr.Intn(4)
		g := gen.UnionOfTrees(n, alpha, rr.Split(1))
		params := PracticalParams(alpha, g.MaxDegree())
		out, err := ArbMIS(g, params, congest.Options{Seed: rr.Uint64()})
		if err != nil {
			return false
		}
		return g.VerifyMIS(out.MIS) == nil
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestArbMISRelabelInvariance(t *testing.T) {
	// Relabeling vertices must not break anything (IDs are only
	// tie-breakers): the relabeled instance still yields a verified MIS
	// of the relabeled graph.
	g := gen.UnionOfTrees(200, 2, rng.New(91))
	perm := rng.New(92).Perm(g.N())
	h, err := gen.Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	params := PracticalParams(2, h.MaxDegree())
	out, err := ArbMIS(h, params, congest.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.VerifyMIS(out.MIS); err != nil {
		t.Fatal(err)
	}
}

func TestArbMISLargeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g := gen.UnionOfTrees(1<<15, 3, rng.New(93))
	params := PracticalParams(3, g.MaxDegree())
	out, err := ArbMIS(g, params, congest.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMIS(out.MIS); err != nil {
		t.Fatal(err)
	}
	if out.TotalRounds() > 500 {
		t.Fatalf("n=2^15 took %d rounds", out.TotalRounds())
	}
}

func TestOutcomeAccessors(t *testing.T) {
	g := gen.UnionOfTrees(150, 2, rng.New(94))
	params := PracticalParams(2, g.MaxDegree())
	out, err := ArbMIS(g, params, congest.Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalMessages() <= 0 {
		t.Fatal("no messages accounted")
	}
	if out.MaxMessageBits() <= 0 || out.MaxMessageBits() > 128 {
		t.Fatalf("MaxMessageBits = %d", out.MaxMessageBits())
	}
}

func TestNewParamsConstructor(t *testing.T) {
	p := NewParams(2, 64, 1, 3, 5, func(k int) int { return 64 >> uint(k) })
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumScales != 3 || p.Iterations != 5 {
		t.Fatalf("params = %+v", p)
	}
	if p.Rho(1) != 32 || p.Rho(2) != 16 {
		t.Fatalf("rho = %d,%d", p.Rho(1), p.Rho(2))
	}
	if p.HighDeg(1) != 64/2+2 || p.BadLimit(1) != 64/8 {
		t.Fatalf("thresholds wrong: %d %d", p.HighDeg(1), p.BadLimit(1))
	}
	// Clamps: negative theta -> 0; p < 1 -> 1; lambda floor when scales > 0.
	p2 := NewParams(1, 10, 0, -5, 0, func(int) int { return 1 })
	if p2.NumScales != 0 || p2.P != 1 {
		t.Fatalf("clamps wrong: %+v", p2)
	}
	p3 := NewParams(1, 10, 1, 2, 0, func(int) int { return 1 })
	if p3.Iterations != 1 {
		t.Fatalf("lambda floor wrong: %d", p3.Iterations)
	}
}

func TestFullOutcomeTotalRoundsNoCore(t *testing.T) {
	// A graph the preprocessing fully resolves: Core is nil and
	// TotalRounds is just the reduction cost.
	g := gen.Path(8)
	out, err := ArbMISFull(g, 1, 5, congest.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if out.Core == nil && out.TotalRounds() != out.ReductionResult.Rounds {
		t.Fatal("TotalRounds wrong without core stage")
	}
	if err := g.VerifyMIS(out.MIS); err != nil {
		t.Fatal(err)
	}
}
