package core

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/rng"
	"repro/internal/shatter"
)

func TestArbMISWithFinisherForestCV(t *testing.T) {
	// Force a non-empty bad set and finish it with the Lemma 3.8 pipeline.
	g := gen.UnionOfTrees(300, 2, rng.New(40))
	params := PracticalParams(2, g.MaxDegree())
	params.Iterations = 1
	for k := 1; k <= params.NumScales; k++ {
		params.SetBadLimit(k, -1)
	}
	out, err := ArbMISWithFinisher(g, params, FinisherForestCV, congest.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if out.Alg1.CountStatus(base.StatusBad) == 0 {
		t.Fatal("forcing produced no bad nodes")
	}
	if err := g.VerifyMIS(out.MIS); err != nil {
		t.Fatal(err)
	}
}

func TestArbMISWithFinisherRejectsUnknown(t *testing.T) {
	g := gen.Path(5)
	params := PracticalParams(1, g.MaxDegree())
	if _, err := ArbMISWithFinisher(g, params, BadFinisher(0), congest.Options{Seed: 1}); err == nil {
		t.Fatal("zero finisher accepted")
	}
}

func TestFinishersAgreeOnValidity(t *testing.T) {
	g := gen.PreferentialAttachment(250, 3, rng.New(41))
	params := PracticalParams(3, g.MaxDegree())
	params.Iterations = 1
	for k := 1; k <= params.NumScales; k++ {
		params.SetBadLimit(k, -1)
	}
	for _, fin := range []BadFinisher{FinisherLocalMin, FinisherForestCV} {
		out, err := ArbMISWithFinisher(g, params, fin, congest.Options{Seed: 2})
		if err != nil {
			t.Fatalf("finisher %d: %v", fin, err)
		}
		if err := g.VerifyMIS(out.MIS); err != nil {
			t.Fatalf("finisher %d: %v", fin, err)
		}
	}
}

func TestArbMISFullOnFamilies(t *testing.T) {
	r := rng.New(42)
	cases := []struct {
		name  string
		g     *graph.Graph
		alpha int
	}{
		{"tree", gen.RandomTree(500, r.Split(1)), 1},
		{"union3", gen.UnionOfTrees(400, 3, r.Split(2)), 3},
		{"pa", gen.PreferentialAttachment(400, 3, r.Split(3)), 3},
		{"star", gen.Star(200), 1},
		{"tiny", gen.Path(3), 1},
		{"isolated", graph.MustNew(5, nil), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := ArbMISFull(c.g, c.alpha, 1, congest.Options{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.g.VerifyMIS(out.MIS); err != nil {
				t.Fatal(err)
			}
			if out.ReductionIterations < 1 {
				t.Fatal("no reduction iterations")
			}
			if out.SurvivorCount > 0 && out.Core == nil {
				t.Fatal("survivors but no core outcome")
			}
		})
	}
}

func TestArbMISFullReducesDegree(t *testing.T) {
	// The preprocessing's purpose: surviving max degree well below the
	// input Δ on heavy-tailed graphs (and below the theorem target).
	g := gen.PreferentialAttachment(4096, 3, rng.New(43))
	out, err := ArbMISFull(g, 3, 1, congest.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if out.SurvivorCount == g.N() {
		t.Fatal("preprocessing resolved nothing")
	}
	if out.SurvivorCount > 0 && float64(out.SurvivorMaxDegree) > out.TargetDegree {
		t.Fatalf("survivor degree %d above target %.1f", out.SurvivorMaxDegree, out.TargetDegree)
	}
	if out.SurvivorMaxDegree >= g.MaxDegree() && g.MaxDegree() > 10 {
		t.Fatalf("degree not reduced: %d vs input %d", out.SurvivorMaxDegree, g.MaxDegree())
	}
}

func TestArbMISFullRejectsBadAlpha(t *testing.T) {
	if _, err := ArbMISFull(gen.Path(5), 0, 1, congest.Options{Seed: 1}); err == nil {
		t.Fatal("alpha 0 accepted")
	}
}

func TestArbMISFullTotalRounds(t *testing.T) {
	g := gen.UnionOfTrees(300, 2, rng.New(44))
	out, err := ArbMISFull(g, 2, 1, congest.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := out.ReductionResult.Rounds
	if out.Core != nil {
		want += out.Core.TotalRounds()
	}
	if out.TotalRounds() != want {
		t.Fatalf("TotalRounds %d != %d", out.TotalRounds(), want)
	}
}

func TestShatterFinishUsableViaCore(t *testing.T) {
	// The shatter pipeline itself must produce verified MIS on the same
	// subgraph shapes core feeds it (regression guard for the adapter).
	g := gen.RandomForest(120, 10, rng.New(45))
	res, err := shatter.Finish(g, 1, congest.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMIS(base.MISSet(res.Statuses)); err != nil {
		t.Fatal(err)
	}
}
