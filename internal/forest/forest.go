// Package forest implements the distributed Nash-Williams forest
// decomposition of Barenboim and Elkin (PODC 2008), the substrate Lemma 3.8
// of the reproduced paper uses to process the shattered "bad" components:
// an H-partition peels low-degree nodes level by level, the level order
// orients every edge with out-degree at most (2+ε)·α, and each node's i-th
// out-edge lands in forest i, yielding at most ⌈(2+ε)α⌉ rooted forests in
// O(log n) CONGEST rounds.
//
// The implementation fixes ε = 2, i.e. the 4α-forest decomposition the
// paper's Lemma 3.8 quotes.
package forest

import (
	"fmt"
	"math/bits"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/proto"
)

// Epsilon is the slack in the peeling threshold (2+ε)·α.
const Epsilon = 2

// Decomposition is the collected output of a run.
type Decomposition struct {
	// Levels[v] is the H-partition level at which v was peeled (1-based).
	Levels []int
	// Parent[f][v] is v's parent in forest f, or -1. len(Parent) is the
	// number of forests (max out-degree of the level orientation).
	Parent [][]int
	// NumLevels is the number of peeling phases that were needed.
	NumLevels int
}

// NumForests returns the number of forests in the decomposition.
func (d *Decomposition) NumForests() int { return len(d.Parent) }

// Validate checks the decomposition against its graph: every edge in
// exactly one forest, every forest acyclic, and — when alpha is the
// arboricity bound the decomposition was built with — at most
// (2+ε)·alpha forests.
func (d *Decomposition) Validate(g *graph.Graph, alpha int) error {
	if len(d.Levels) != g.N() {
		return fmt.Errorf("forest: %d levels for %d vertices", len(d.Levels), g.N())
	}
	if max := (2 + Epsilon) * alpha; d.NumForests() > max {
		return fmt.Errorf("forest: %d forests exceeds (2+ε)α = %d", d.NumForests(), max)
	}
	covered := 0
	for f, parent := range d.Parent {
		var edges []graph.Edge
		for v, p := range parent {
			if p < 0 {
				continue
			}
			if !g.HasEdge(v, p) {
				return fmt.Errorf("forest %d: parent link (%d,%d) not a graph edge", f, v, p)
			}
			edges = append(edges, graph.Edge{U: v, V: p})
			covered++
		}
		fg, err := graph.New(g.N(), edges)
		if err != nil {
			return fmt.Errorf("forest %d: %w", f, err)
		}
		if !fg.IsForest() {
			return fmt.Errorf("forest %d: contains a cycle", f)
		}
		if fg.M() != len(edges) {
			return fmt.Errorf("forest %d: duplicate parent links", f)
		}
	}
	if covered != g.M() {
		return fmt.Errorf("forest: forests cover %d edges, graph has %d", covered, g.M())
	}
	return nil
}

// node is the per-vertex state machine of the H-partition program.
//
// Schedule (all nodes know n, so the schedule is lock-step):
//
//	phase rounds 1..L: nodes whose remaining degree is ≤ (2+ε)α adopt the
//	  current level and announce it; everyone tracks neighbors' levels.
//	round L+1: orient edges by (level, ID); assign forest indices to
//	  out-edges; tell each parent the index (so both endpoints know).
//	round L+2: collect incoming forest-index messages; halt.
type node struct {
	alpha     int
	threshold int
	levels    map[int]int // neighbor -> level (0 = still active)
	level     int
	active    *base.ActiveSet
	numPhases int
	// parents[i] is this node's parent in forest i (local view).
	parents []int
}

// phases returns L: with threshold (2+ε)α ≥ 4α, at least half the
// remaining nodes peel per phase on any arboricity-α graph, so ⌈log₂ n⌉+1
// phases always suffice; +1 more absorbs the n=1 edge case.
func phases(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n-1)) + 1
}

// New returns a factory for H-partition nodes with arboricity bound alpha.
func New(alpha, n int) func(v int) congest.Node {
	return func(int) congest.Node {
		return &node{
			alpha:     alpha,
			threshold: (2 + Epsilon) * alpha,
			levels:    make(map[int]int),
			numPhases: phases(n),
		}
	}
}

func (nd *node) Init(ctx *congest.Context) {
	nd.active = base.NewActiveSet(ctx.Neighbors())
	nd.maybePeel(ctx, 1)
}

// maybePeel adopts the given level if the remaining degree allows it.
func (nd *node) maybePeel(ctx *congest.Context, level int) {
	if nd.level != 0 {
		return
	}
	if nd.active.Count() <= nd.threshold {
		nd.level = level
		ctx.Broadcast(proto.Level{Value: int32(level)}.Wire())
	}
}

func (nd *node) Round(ctx *congest.Context, inbox []congest.Message) {
	for _, m := range inbox {
		switch m.Wire.Kind {
		case proto.WireLevel:
			p, _ := proto.AsLevel(m.Wire)
			nd.levels[m.From] = int(p.Value)
			nd.active.Remove(m.From)
		case proto.WireForestEdge:
			// A child tells us which forest the connecting edge is in;
			// nothing to record on the parent side (the child owns the
			// parent pointer), but receiving it validates symmetry.
		}
	}
	r := ctx.Round()
	switch {
	case r < nd.numPhases:
		nd.maybePeel(ctx, r+1)
	case r == nd.numPhases:
		// Fallback: a node never peeled (caller under-estimated α) takes a
		// final catch-all level so the decomposition is still total.
		if nd.level == 0 {
			nd.level = nd.numPhases + 1
			ctx.Broadcast(proto.Level{Value: int32(nd.level)}.Wire())
		}
	case r == nd.numPhases+1:
		nd.orient(ctx)
	case r == nd.numPhases+2:
		ctx.Halt()
	}
}

// orient directs each incident edge by (level, ID) and assigns forest
// indices to out-edges.
func (nd *node) orient(ctx *congest.Context) {
	id := ctx.ID()
	for slot, w := range ctx.Neighbors() {
		wl, ok := nd.levels[w]
		if !ok {
			// Neighbor peeled in the same round we did and its
			// announcement arrived; missing entries can only be same-round
			// peers whose message is in this round's inbox — handled in
			// Round before orient. Defensively treat as same level.
			wl = nd.level
		}
		// Out-edge: toward strictly higher level, or same level with
		// higher ID.
		if wl > nd.level || (wl == nd.level && w > id) {
			idx := len(nd.parents)
			nd.parents = append(nd.parents, w)
			ctx.SendSlot(slot, proto.ForestEdge{Forest: int32(idx)}.Wire())
		}
	}
}

// Decompose runs the H-partition program on g with arboricity bound alpha
// and returns the decomposition plus run statistics.
func Decompose(g *graph.Graph, alpha int, opts congest.Options) (*Decomposition, congest.Result, error) {
	if alpha < 1 {
		return nil, congest.Result{}, fmt.Errorf("forest: alpha must be >= 1, got %d", alpha)
	}
	r := congest.NewRunner(g, New(alpha, g.N()), opts)
	res, err := r.Run()
	if err != nil {
		return nil, res, err
	}
	d := &Decomposition{Levels: make([]int, g.N())}
	maxOut := 0
	maxLevel := 0
	for v := 0; v < g.N(); v++ {
		nd := r.Node(v).(*node)
		d.Levels[v] = nd.level
		if len(nd.parents) > maxOut {
			maxOut = len(nd.parents)
		}
		if nd.level > maxLevel {
			maxLevel = nd.level
		}
	}
	d.NumLevels = maxLevel
	d.Parent = make([][]int, maxOut)
	for f := range d.Parent {
		d.Parent[f] = make([]int, g.N())
		for v := range d.Parent[f] {
			d.Parent[f][v] = -1
		}
	}
	for v := 0; v < g.N(); v++ {
		nd := r.Node(v).(*node)
		for f, p := range nd.parents {
			d.Parent[f][v] = p
		}
	}
	return d, res, nil
}
