package forest

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestDecomposeTree(t *testing.T) {
	g := gen.RandomTree(300, rng.New(1))
	d, _, err := Decompose(g, 1, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(g, 1); err != nil {
		t.Fatal(err)
	}
	if d.NumForests() > 4 {
		t.Fatalf("tree decomposed into %d forests, bound is 4", d.NumForests())
	}
}

func TestDecomposeFamilies(t *testing.T) {
	r := rng.New(2)
	cases := []struct {
		name  string
		g     *graph.Graph
		alpha int
	}{
		{"path", gen.Path(100), 1},
		{"star", gen.Star(100), 1},
		{"grid", gen.Grid(15, 15), 2},
		{"union3", gen.UnionOfTrees(250, 3, r.Split(1)), 3},
		{"ktree4", gen.KTree(200, 4, r.Split(2)), 4},
		{"pa3", gen.PreferentialAttachment(300, 3, r.Split(3)), 3},
		{"isolated", graph.MustNew(10, nil), 1},
		{"single", graph.MustNew(1, nil), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d, _, err := Decompose(c.g, c.alpha, congest.Options{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(c.g, c.alpha); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDecomposeRejectsBadAlpha(t *testing.T) {
	if _, _, err := Decompose(gen.Path(5), 0, congest.Options{Seed: 1}); err == nil {
		t.Fatal("alpha=0 accepted")
	}
}

func TestLevelsPositiveAndBounded(t *testing.T) {
	g := gen.UnionOfTrees(400, 2, rng.New(3))
	d, _, err := Decompose(g, 2, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range d.Levels {
		if l < 1 {
			t.Fatalf("vertex %d has level %d", v, l)
		}
	}
	if d.NumLevels > phases(g.N()) {
		t.Fatalf("levels %d exceed phase budget %d (fallback triggered on correct alpha)", d.NumLevels, phases(g.N()))
	}
}

func TestRoundsLogarithmic(t *testing.T) {
	// The schedule is phases(n)+2 rounds, i.e. O(log n).
	for _, n := range []int{16, 256, 4096} {
		g := gen.UnionOfTrees(n, 2, rng.New(uint64(n)))
		_, res, err := Decompose(g, 2, congest.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != phases(n)+2 {
			t.Fatalf("n=%d: %d rounds, want %d", n, res.Rounds, phases(n)+2)
		}
	}
}

func TestValidateCatchesOverCount(t *testing.T) {
	// Validation against a too-small alpha must fail when the forest count
	// exceeds (2+ε)alpha.
	g := gen.KTree(100, 5, rng.New(4))
	d, _, err := Decompose(g, 5, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumForests() <= 4 {
		t.Skip("decomposition unexpectedly small; nothing to check")
	}
	if err := d.Validate(g, 1); err == nil {
		t.Fatal("validate accepted alpha=1 for a 5-tree")
	}
}

func TestUnderestimatedAlphaStillTotal(t *testing.T) {
	// With alpha=1 on a 3-arboricity graph the fallback level fires, but
	// every edge must still land in exactly one acyclic forest.
	g := gen.UnionOfTrees(150, 3, rng.New(5))
	d, _, err := Decompose(g, 1, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Validate with a generous alpha so only structure is checked.
	if err := d.Validate(g, d.NumForests()); err != nil {
		t.Fatal(err)
	}
	for v, l := range d.Levels {
		if l < 1 {
			t.Fatalf("vertex %d unleveled", v)
		}
	}
}

// pathForest builds k disjoint paths of l vertices each.
func pathForest(k, l int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < k; i++ {
		base := i * l
		for j := 1; j < l; j++ {
			edges = append(edges, graph.Edge{U: base + j - 1, V: base + j})
		}
	}
	return graph.MustNew(k*l, edges)
}

// parentLinks counts parent pointers across all forests (must equal the
// edge count: every edge lands in exactly one forest).
func parentLinks(d *Decomposition) int {
	total := 0
	for _, parent := range d.Parent {
		for _, p := range parent {
			if p >= 0 {
				total++
			}
		}
	}
	return total
}

func TestDecomposeSingleVertex(t *testing.T) {
	g := graph.MustNew(1, nil)
	d, res, err := Decompose(g, 1, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(g, 1); err != nil {
		t.Fatal(err)
	}
	if d.Levels[0] != 1 || d.NumLevels != 1 {
		t.Fatalf("single vertex leveled %d/%d, want 1/1", d.Levels[0], d.NumLevels)
	}
	if parentLinks(d) != 0 {
		t.Fatal("edgeless graph produced parent links")
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestDecomposeStarInvariants(t *testing.T) {
	// A star peels in exactly two levels: every leaf has degree 1 ≤ 4α and
	// goes in the first phase; the hub's residual degree then drops to 0.
	g := gen.Star(64)
	d, _, err := Decompose(g, 1, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(g, 1); err != nil {
		t.Fatal(err)
	}
	if d.NumLevels != 2 || d.Levels[0] != 2 {
		t.Fatalf("hub level %d of %d, want 2 of 2", d.Levels[0], d.NumLevels)
	}
	for v := 1; v < g.N(); v++ {
		if d.Levels[v] != 1 {
			t.Fatalf("leaf %d at level %d, want 1", v, d.Levels[v])
		}
	}
	if got := parentLinks(d); got != g.M() {
		t.Fatalf("parent links %d != edges %d", got, g.M())
	}
}

func TestDecomposeForestOfPaths(t *testing.T) {
	// Disjoint paths: max degree 2 ≤ 4α, so the whole graph peels in one
	// level and the α=1 bound of 4 forests must hold with room to spare.
	g := pathForest(8, 25)
	d, _, err := Decompose(g, 1, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(g, 1); err != nil {
		t.Fatal(err)
	}
	if d.NumLevels != 1 {
		t.Fatalf("paths leveled in %d phases, want 1", d.NumLevels)
	}
	if d.NumForests() > 4 {
		t.Fatalf("%d forests for a forest of paths, bound is 4", d.NumForests())
	}
	if got := parentLinks(d); got != g.M() {
		t.Fatalf("parent links %d != edges %d", got, g.M())
	}
}

func TestParallelDriverIdentical(t *testing.T) {
	g := gen.UnionOfTrees(200, 2, rng.New(6))
	a, _, err := Decompose(g, 2, congest.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Decompose(g, 2, congest.Options{Seed: 3, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Levels {
		if a.Levels[v] != b.Levels[v] {
			t.Fatalf("levels differ at %d", v)
		}
	}
	if a.NumForests() != b.NumForests() {
		t.Fatal("forest counts differ")
	}
	for f := range a.Parent {
		for v := range a.Parent[f] {
			if a.Parent[f][v] != b.Parent[f][v] {
				t.Fatalf("forest %d parent differs at %d", f, v)
			}
		}
	}
}

func TestForestsUsableByColeVishkin(t *testing.T) {
	// Every forest of a decomposition must be a valid rooted forest: at
	// most one parent per node and acyclic — the contract Cole-Vishkin
	// needs. Validate() checks acyclicity; here we additionally check the
	// parent maps are usable to build forest graphs of the right size.
	g := gen.Grid(12, 12)
	d, _, err := Decompose(g, 2, congest.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, parent := range d.Parent {
		for _, p := range parent {
			if p >= 0 {
				total++
			}
		}
	}
	if total != g.M() {
		t.Fatalf("parent links %d != edges %d", total, g.M())
	}
}
