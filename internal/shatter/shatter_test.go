package shatter

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/rng"
)

func TestAnalyzeEmpty(t *testing.T) {
	g := gen.Path(10)
	st, err := Analyze(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Vertices != 0 || st.Components != 0 || st.MaxSize() != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAnalyzeComponents(t *testing.T) {
	// Path 0-1-2-3-4-5; take {0,1, 3, 5}: components {0,1}, {3}, {5}.
	g := gen.Path(6)
	st, err := Analyze(g, []int{0, 1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Components != 3 {
		t.Fatalf("components = %d", st.Components)
	}
	if st.MaxSize() != 2 {
		t.Fatalf("max size = %d", st.MaxSize())
	}
	if st.Sizes[0] != 2 || st.Sizes[1] != 1 || st.Sizes[2] != 1 {
		t.Fatalf("sizes = %v", st.Sizes)
	}
}

func TestAnalyzeBadVertices(t *testing.T) {
	g := gen.Path(4)
	if _, err := Analyze(g, []int{0, 0}); err == nil {
		t.Fatal("duplicate vertex accepted")
	}
}

func TestLemma37Bound(t *testing.T) {
	// Monotone in Δ, positive, and huge compared to measured sizes.
	b1 := Lemma37Bound(4, 1000, 1)
	b2 := Lemma37Bound(8, 1000, 1)
	if b1 <= 0 || b2 <= b1 {
		t.Fatalf("bounds: %v, %v", b1, b2)
	}
	if Lemma37Bound(0, 10, 1) <= 0 {
		t.Fatal("degenerate delta")
	}
}

func TestFinishOnFamilies(t *testing.T) {
	r := rng.New(1)
	cases := []struct {
		name  string
		g     *graph.Graph
		alpha int
	}{
		{"tree", gen.RandomTree(200, r.Split(1)), 1},
		{"grid", gen.Grid(10, 10), 2},
		{"union2", gen.UnionOfTrees(150, 2, r.Split(2)), 2},
		{"forest", gen.RandomForest(100, 8, r.Split(3)), 1},
		{"isolated", graph.MustNew(7, nil), 1},
		{"empty", graph.MustNew(0, nil), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Finish(c.g, c.alpha, congest.Options{Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.g.VerifyMIS(base.MISSet(res.Statuses)); err != nil && c.g.N() > 0 {
				t.Fatal(err)
			}
			if res.TotalRounds() < 0 {
				t.Fatal("negative rounds")
			}
		})
	}
}

// pathForest builds k disjoint paths of l vertices each.
func pathForest(k, l int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < k; i++ {
		base := i * l
		for j := 1; j < l; j++ {
			edges = append(edges, graph.Edge{U: base + j - 1, V: base + j})
		}
	}
	return graph.MustNew(k*l, edges)
}

func TestAnalyzeStar(t *testing.T) {
	// All leaves of a star form independent singletons; adding the hub
	// merges them into one component.
	g := gen.Star(10)
	leaves := make([]int, 0, 9)
	for v := 1; v < 10; v++ {
		leaves = append(leaves, v)
	}
	st, err := Analyze(g, leaves)
	if err != nil {
		t.Fatal(err)
	}
	if st.Components != 9 || st.MaxSize() != 1 {
		t.Fatalf("leaf-only stats = %+v", st)
	}
	st, err = Analyze(g, append(leaves, 0))
	if err != nil {
		t.Fatal(err)
	}
	if st.Components != 1 || st.MaxSize() != 10 {
		t.Fatalf("full-star stats = %+v", st)
	}
}

func TestFinishSingleVertex(t *testing.T) {
	g := graph.MustNew(1, nil)
	res, err := Finish(g, 1, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Statuses[0] != base.StatusInMIS {
		t.Fatalf("lone vertex ended %v, must join", res.Statuses[0])
	}
}

func TestFinishStar(t *testing.T) {
	// A star has exactly two maximal independent sets: {hub} or all leaves.
	g := gen.Star(33)
	res, err := Finish(g, 1, congest.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mis := base.MISSet(res.Statuses)
	if err := g.VerifyMIS(mis); err != nil {
		t.Fatal(err)
	}
	size := 0
	for _, in := range mis {
		if in {
			size++
		}
	}
	if size != 1 && size != g.N()-1 {
		t.Fatalf("star MIS of size %d, want 1 or %d", size, g.N()-1)
	}
}

func TestFinishForestOfPaths(t *testing.T) {
	// Each path of l vertices needs at least ⌈l/3⌉ MIS members, and every
	// component must be fully classified.
	k, l := 6, 20
	g := pathForest(k, l)
	res, err := Finish(g, 1, congest.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMIS(base.MISSet(res.Statuses)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		size := 0
		for v := i * l; v < (i+1)*l; v++ {
			if res.Statuses[v] == base.StatusInMIS {
				size++
			}
		}
		if min := (l + 2) / 3; size < min {
			t.Fatalf("path %d has MIS size %d, maximality needs ≥ %d", i, size, min)
		}
	}
}

func TestFinishDeterministic(t *testing.T) {
	g := gen.UnionOfTrees(120, 2, rng.New(4))
	a, err := Finish(g, 2, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Finish(g, 2, congest.Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Statuses {
		if a.Statuses[v] != b.Statuses[v] {
			t.Fatal("Finish is not deterministic")
		}
	}
}

func TestFinishSweepCostReported(t *testing.T) {
	g := gen.Grid(8, 8)
	res, err := Finish(g, 2, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SweepRounds <= 0 {
		t.Fatal("sweep rounds not reported")
	}
	maxClasses := 1
	for i := 0; i < res.Decomposition.NumForests(); i++ {
		maxClasses *= 3
	}
	if res.SweepRounds > 2*maxClasses {
		t.Fatalf("sweep rounds %d exceed 2*3^k = %d", res.SweepRounds, 2*maxClasses)
	}
}

func TestFinishMatchesComponentStructure(t *testing.T) {
	// On a disconnected forest, Finish processes every component (all
	// nodes classified) and the per-component MIS sizes are sane.
	g := gen.RandomForest(240, 12, rng.New(5))
	res, err := Finish(g, 1, congest.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range res.Statuses {
		if s != base.StatusInMIS && s != base.StatusDominated {
			t.Fatalf("node %d unclassified: %v", v, s)
		}
	}
	if err := g.VerifyMIS(base.MISSet(res.Statuses)); err != nil {
		t.Fatal(err)
	}
}
