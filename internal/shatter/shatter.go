// Package shatter analyzes and finishes the "shattered" remainder of a
// graph-shattering MIS run: the connected components induced by the bad set
// B. Lemma 3.7 of the reproduced paper proves these components are small
// (O(Δ⁶·log_Δ n) whp); this package measures that claim (experiment E4)
// and provides the Lemma 3.8 finishing pipeline — Barenboim-Elkin forest
// decomposition, per-forest Cole-Vishkin coloring, and a color-sweep MIS —
// as an alternative to the local-minimum finisher used by core.ArbMIS.
package shatter

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/congest"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/colevishkin"
)

// Stats summarizes the component structure of an induced subgraph.
type Stats struct {
	// Vertices is the number of vertices in the subgraph.
	Vertices int
	// Components is the number of connected components.
	Components int
	// Sizes holds the component sizes, descending.
	Sizes []int
}

// MaxSize returns the largest component size (0 when empty).
func (s *Stats) MaxSize() int {
	if len(s.Sizes) == 0 {
		return 0
	}
	return s.Sizes[0]
}

// Lemma37Bound returns the paper's component-size bound Δ⁶·c·log_Δ n.
// It is astronomically loose at laptop scale — the experiments report both
// the bound and the measured maximum.
func Lemma37Bound(delta, n int, c float64) float64 {
	if delta < 2 {
		delta = 2
	}
	logDN := math.Log(float64(n)) / math.Log(float64(delta))
	if logDN < 1 {
		logDN = 1
	}
	return math.Pow(float64(delta), 6) * c * logDN
}

// Analyze computes component statistics of G[vertices].
func Analyze(g *graph.Graph, vertices []int) (*Stats, error) {
	st := &Stats{Vertices: len(vertices)}
	if len(vertices) == 0 {
		return st, nil
	}
	sub, _, err := g.InducedSubgraph(vertices)
	if err != nil {
		return nil, fmt.Errorf("shatter: %w", err)
	}
	comp, count := sub.Components()
	st.Components = count
	st.Sizes = graph.ComponentSizes(comp, count)
	sort.Sort(sort.Reverse(sort.IntSlice(st.Sizes)))
	return st, nil
}

// FinishResult is the outcome of the Lemma 3.8 pipeline on a subgraph.
type FinishResult struct {
	// Statuses classify every subgraph vertex as in-MIS or dominated.
	Statuses []base.Status
	// Decomposition is the forest decomposition used.
	Decomposition *forest.Decomposition
	// DecompResult, ColorResult account for the two CONGEST stages; the
	// sweep is SweepRounds additional rounds (2 per (forest, color) pair).
	DecompResult congest.Result
	ColorResults []congest.Result
	SweepRounds  int
}

// TotalRounds sums the pipeline's round costs. Colorings of different
// forests run on disjoint edge sets but share vertices, so we account them
// sequentially (an implementation could interleave them at k× message
// cost; the paper's Lemma 3.8 also runs them in turn).
func (r *FinishResult) TotalRounds() int {
	t := r.DecompResult.Rounds + r.SweepRounds
	for _, c := range r.ColorResults {
		t += c.Rounds
	}
	return t
}

// Finish computes an MIS of g via the Lemma 3.8 pipeline:
//
//  1. Barenboim-Elkin decomposition into ≤ 4α forests (O(log n) rounds).
//  2. Cole-Vishkin 3-coloring of every forest (O(log* n) rounds each).
//  3. A deterministic sweep over (forest-colors): the vector of per-forest
//     colors is a proper O(3^k)-coloring of g (every edge lies in some
//     forest, where its endpoints' vectors differ), and sweeping the color
//     classes in lexicographic order yields an MIS greedily. The sweep is
//     performed centrally here but corresponds to 2 rounds per non-empty
//     class; SweepRounds reports that cost honestly.
//
// Finish is deterministic: it uses no randomness anywhere.
func Finish(g *graph.Graph, alpha int, opts congest.Options) (*FinishResult, error) {
	d, dres, err := forest.Decompose(g, alpha, opts)
	if err != nil {
		return nil, fmt.Errorf("shatter: decomposition: %w", err)
	}
	res := &FinishResult{Decomposition: d, DecompResult: dres}
	k := d.NumForests()
	colorVec := make([][]uint64, g.N())
	for v := range colorVec {
		colorVec[v] = make([]uint64, k)
	}
	for f := 0; f < k; f++ {
		fg, err := forestGraph(g.N(), d.Parent[f])
		if err != nil {
			return nil, err
		}
		colors, cres, err := colevishkin.Colors(fg, d.Parent[f], opts)
		if err != nil {
			return nil, fmt.Errorf("shatter: coloring forest %d: %w", f, err)
		}
		res.ColorResults = append(res.ColorResults, cres)
		for v, c := range colors {
			colorVec[v][f] = c
		}
	}
	// Lexicographic sweep over color vectors. Group vertices by vector.
	classes := map[string][]int{}
	var keys []string
	for v := 0; v < g.N(); v++ {
		key := vecKey(colorVec[v])
		if _, ok := classes[key]; !ok {
			keys = append(keys, key)
		}
		classes[key] = append(classes[key], v)
	}
	sort.Strings(keys)
	res.SweepRounds = 2 * len(keys)
	statuses := make([]base.Status, g.N())
	for i := range statuses {
		statuses[i] = base.StatusActive
	}
	for _, key := range keys {
		for _, v := range classes[key] {
			if statuses[v] != base.StatusActive {
				continue
			}
			// Same-class vertices are pairwise non-adjacent (the vector
			// coloring is proper), so joining all eligible ones at once is
			// safe — this is one broadcast round in the real execution.
			statuses[v] = base.StatusInMIS
			for _, w := range g.Neighbors(v) {
				if statuses[w] == base.StatusActive {
					statuses[w] = base.StatusDominated
				}
			}
		}
	}
	res.Statuses = statuses
	if err := base.VerifyStatuses(g, statuses); err != nil {
		return nil, fmt.Errorf("shatter: pipeline produced invalid MIS: %w", err)
	}
	return res, nil
}

// forestGraph builds the graph of one forest from its parent array.
func forestGraph(n int, parent []int) (*graph.Graph, error) {
	var edges []graph.Edge
	for v, p := range parent {
		if p >= 0 {
			edges = append(edges, graph.Edge{U: v, V: p})
		}
	}
	fg, err := graph.New(n, edges)
	if err != nil {
		return nil, fmt.Errorf("shatter: forest graph: %w", err)
	}
	return fg, nil
}

// vecKey encodes a color vector as a sortable string (colors are < 3).
func vecKey(vec []uint64) string {
	b := make([]byte, len(vec))
	for i, c := range vec {
		b[i] = byte('0' + c)
	}
	return string(b)
}
