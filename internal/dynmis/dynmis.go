// Package dynmis maintains a maximal independent set over a dynamic graph
// under streaming updates — the long-lived-instance scenario: an unbounded
// stream of edge and node mutations against one graph, with the MIS kept
// valid after every batch.
//
// The engine applies updates in deterministic batches (InsertEdge /
// RemoveEdge / InsertNode / RemoveNode), discovers the affected region
// (BFS from the violated and orphaned vertices, grown until the frontier
// is MIS-stable — see region.go), and repairs it by re-running the CONGEST
// machinery on that region alone, with everything outside frozen as
// boundary constraints (repair.go). The motivation comes straight from the
// reproduced paper: the shattering analysis bounds the residual components
// that survive the randomized phase, and an update's consequences have
// exactly that local structure — so re-running the engine on the region
// beats recomputing from scratch by the ratio of region size to graph
// size (experiment E20 measures the gap).
//
// Determinism extends from single runs to streams: for a fixed (graph,
// seed, update stream), the maintained MIS, the region of every repair,
// and the trace fingerprint of every repair run are bit-identical across
// the sequential and worker-pool CONGEST drivers. Each repair seeds its
// run from (engine seed, batch index) alone, so the guarantee survives
// replay from any prefix.
package dynmis

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/trace"
)

// Options configures an Engine.
type Options struct {
	// Seed is the engine's root seed: repair run b draws its CONGEST seed
	// from (Seed, b), so the whole stream's randomness derives from it.
	Seed uint64
	// Driver selects the CONGEST driver for repair runs (DriverAuto picks
	// sequential, or the pool when Parallel is set).
	Driver congest.DriverKind
	// Parallel selects the sharded worker-pool driver for repair runs.
	Parallel bool
	// Workers is the pool driver's worker count (0 = GOMAXPROCS).
	Workers int
	// MaxRounds caps each repair run (0 = the CONGEST default).
	MaxRounds int
	// Events, when non-nil, receives one deterministic trace.EvRepair
	// event per applied batch (bootstrap included): Round = batch index,
	// V = region size, W = free vertices, X = repair rounds, Y = the
	// repair run's trace fingerprint, Z = messages delivered.
	Events trace.Sink
}

// BatchReport accounts one applied batch and its repair.
type BatchReport struct {
	// Batch is the batch index; 0 is the bootstrap (the initial full
	// compute, modeled as a repair whose region is the whole graph).
	Batch int
	// Updates is the number of updates the batch carried.
	Updates int
	// Seeds counts the violated/orphaned vertices the region grew from.
	Seeds int
	// Region is the repaired-region size; Frozen of those were excluded
	// as dominated by a frozen outside-MIS vertex, and Free were
	// re-decided by the CONGEST run.
	Region, Frozen, Free int
	// Rounds and Messages account the repair run (zero when the batch
	// needed no repair).
	Rounds   int
	Messages int64
	// RepairFingerprint is the repair run's deterministic trace
	// fingerprint (zero when no repair ran); StreamFingerprint is the
	// engine's running fold over every batch so far.
	RepairFingerprint uint64
	StreamFingerprint uint64
}

// Stats aggregates an engine's lifetime accounting.
type Stats struct {
	// Batches counts applied batches, bootstrap included; Updates counts
	// individual updates (the bootstrap contributes none).
	Batches, Updates int
	// Repairs counts the batches that needed a repair run.
	Repairs int
	// RegionVertices sums repaired-region sizes; FrozenVertices the
	// boundary-dominated exclusions.
	RegionVertices, FrozenVertices int64
	// Rounds and Messages sum over every repair run.
	Rounds   int64
	Messages int64
}

// Engine maintains a maximal independent set over a DGraph. Construct
// with New; an Engine is not safe for concurrent use.
type Engine struct {
	opts  Options
	d     *DGraph
	inMIS []bool
	fp    uint64
	stats Stats
	err   error // first fatal error; poisons the engine

	// Per-batch scratch, epoch-stamped so Apply never pays O(n) resets.
	// dynmis never relabels: its vertex IDs are the caller's original
	// (external) labels, so the scratch tables are indexed externally.
	epoch int64
	//idspace:index external
	mark []int64 // vertex -> epoch when it last entered a region
	//idspace:index external
	local    []int32 // region vertex -> repair-subgraph ID (-1 = frozen)
	region   []int
	seeds    []int
	free     []int
	affected []int
	edges    []graph.Edge
}

// New builds an engine over a snapshot of g and bootstraps the maintained
// set with a full CONGEST run, recorded as batch 0: every vertex starts
// orphaned, so the repair region is the whole graph and the bootstrap goes
// through the same code path — and the same fingerprint fold — as every
// later batch.
func New(g *graph.Graph, opts Options) (*Engine, error) {
	if g == nil {
		return nil, errors.New("dynmis: nil graph")
	}
	n := g.N()
	e := &Engine{
		opts:  opts,
		d:     NewDGraph(g),
		inMIS: make([]bool, n),
		fp:    streamFPOffset,
		mark:  make([]int64, n),
		local: make([]int32, n),
	}
	rep := BatchReport{Batch: 0}
	affected := e.affected[:0]
	for v := 0; v < n; v++ {
		affected = append(affected, v)
	}
	e.affected = affected
	if err := e.runBatch(&rep, affected); err != nil {
		return nil, err
	}
	return e, nil
}

// Apply runs one batch: the updates are applied to the graph sequentially
// in order, then a single incremental repair re-establishes the MIS. The
// returned report accounts the batch; rep.StreamFingerprint is the running
// stream fingerprint after the batch.
//
// A batch is atomic with respect to repair, not with respect to
// validation: an invalid update (unknown op, absent edge, dead endpoint,
// ...) aborts the batch mid-application and poisons the engine — the error
// is sticky and every later call returns it. Streams are deterministic, so
// a poisoned engine means the stream itself is malformed; there is nothing
// to recover.
func (e *Engine) Apply(b Batch) (BatchReport, error) {
	if e.err != nil {
		return BatchReport{}, e.err
	}
	rep := BatchReport{Batch: e.stats.Batches, Updates: len(b)}
	affected := e.affected[:0]
	for i, u := range b {
		var err error
		switch u.Op {
		case OpInsertEdge:
			err = e.d.InsertEdge(u.U, u.V)
			affected = append(affected, u.U, u.V)
		case OpRemoveEdge:
			err = e.d.RemoveEdge(u.U, u.V)
			affected = append(affected, u.U, u.V)
		case OpInsertNode:
			id := e.d.InsertNode()
			if u.U >= 0 && u.U != id {
				err = fmt.Errorf("expected node ID %d, allocated %d", u.U, id)
				break
			}
			e.inMIS = append(e.inMIS, false)
			e.mark = append(e.mark, 0)
			e.local = append(e.local, 0)
			affected = append(affected, id)
		case OpRemoveNode:
			var former []int
			former, err = e.d.RemoveNode(u.U)
			if err != nil {
				break
			}
			e.inMIS[u.U] = false
			affected = append(affected, former...)
		default:
			err = fmt.Errorf("invalid op %v", u.Op)
		}
		if err != nil {
			e.affected = affected
			e.err = fmt.Errorf("dynmis: batch %d update %d (%v): %w", rep.Batch, i, u, err)
			return BatchReport{}, e.err
		}
	}
	// Canonicalize the touched set: sorted, deduped, live vertices only.
	sort.Ints(affected)
	k := 0
	for i, v := range affected {
		if i > 0 && v == affected[i-1] {
			continue
		}
		if !e.d.Alive(v) {
			continue
		}
		affected[k] = v
		k++
	}
	affected = affected[:k]
	e.affected = affected
	if err := e.runBatch(&rep, affected); err != nil {
		e.err = err
		return BatchReport{}, err
	}
	return rep, nil
}

// runBatch does the shared post-mutation half of New and Apply: seed
// discovery, region growth, repair, fingerprint fold, stats, event.
func (e *Engine) runBatch(rep *BatchReport, affected []int) error {
	seeds := e.seedsFrom(affected)
	rep.Seeds = len(seeds)
	if len(seeds) > 0 {
		region := e.growRegion(seeds)
		rep.Region = len(region)
		if err := e.repair(region, rep); err != nil {
			return err
		}
		e.stats.Repairs++
	}
	e.fp = foldReport(e.fp, rep)
	rep.StreamFingerprint = e.fp

	e.stats.Batches++
	e.stats.Updates += rep.Updates
	e.stats.RegionVertices += int64(rep.Region)
	e.stats.FrozenVertices += int64(rep.Frozen)
	e.stats.Rounds += int64(rep.Rounds)
	e.stats.Messages += rep.Messages

	if e.opts.Events != nil {
		e.opts.Events.Emit(trace.Event{
			Type:  trace.EvRepair,
			Round: int32(rep.Batch),
			V:     int32(rep.Region),
			W:     int32(rep.Free),
			X:     int64(rep.Rounds),
			Y:     int64(rep.RepairFingerprint),
			Z:     rep.Messages,
		})
	}
	return nil
}

// streamFPOffset seeds the stream fingerprint (FNV-1a offset basis);
// streamFPMix is the Murmur3 finalizer multiplier — the same scheme the
// trace recorder uses, applied one level up, to whole batches.
const (
	streamFPOffset = 0xcbf29ce484222325
	streamFPMix    = 0xff51afd7ed558ccd
)

// foldReport folds one batch's deterministic facts into the stream
// fingerprint: the batch shape, the region decomposition, and the repair
// run's own trace fingerprint. Two engines agree on the stream fingerprint
// iff they agreed on every batch — the cross-driver golden tests pin it.
func foldReport(h uint64, rep *BatchReport) uint64 {
	h = streamFPMix64(h, uint64(rep.Batch)<<32|uint64(uint32(rep.Updates)))
	h = streamFPMix64(h, uint64(rep.Seeds)<<32|uint64(uint32(rep.Region)))
	h = streamFPMix64(h, uint64(rep.Frozen)<<32|uint64(uint32(rep.Free)))
	h = streamFPMix64(h, uint64(rep.Rounds))
	h = streamFPMix64(h, uint64(rep.Messages))
	h = streamFPMix64(h, rep.RepairFingerprint)
	return h
}

// streamFPMix64 mixes one word: xor, multiply, xorshift (the Murmur3
// finalizer step).
func streamFPMix64(h, x uint64) uint64 {
	h ^= x
	h *= streamFPMix
	h ^= h >> 33
	return h
}

// Err returns the engine's sticky error (nil while healthy).
func (e *Engine) Err() error { return e.err }

// Fingerprint returns the running stream fingerprint: a fold over every
// applied batch (bootstrap included) covering the region decompositions
// and each repair run's deterministic trace fingerprint.
func (e *Engine) Fingerprint() uint64 { return e.fp }

// Batches returns the number of applied batches, bootstrap included.
func (e *Engine) Batches() int { return e.stats.Batches }

// Stats returns the engine's lifetime accounting.
func (e *Engine) Stats() Stats { return e.stats }

// Graph returns the engine's dynamic graph. The caller must treat it as
// read-only: mutating it behind the engine's back invalidates the
// maintained set.
func (e *Engine) Graph() *DGraph { return e.d }

// IsInMIS reports whether vertex v is in the maintained set. Dead and
// out-of-range IDs report false.
func (e *Engine) IsInMIS(v int) bool {
	return v >= 0 && v < len(e.inMIS) && e.inMIS[v]
}

// MIS returns the maintained set as a sorted slice of live vertex IDs
// (freshly allocated).
func (e *Engine) MIS() []int {
	out := make([]int, 0, len(e.inMIS)/4+1)
	for v, in := range e.inMIS {
		if in {
			out = append(out, v)
		}
	}
	return out
}

// Verify checks the maintained set directly against the dynamic graph:
// dead vertices are outside the set, no two set members are adjacent
// (independence), and every live non-member has a member neighbor
// (maximality). It is the engine's self-check, used by the property tests
// after every batch.
func (e *Engine) Verify() error {
	for v := 0; v < e.d.NumIDs(); v++ {
		if !e.d.Alive(v) {
			if e.inMIS[v] {
				return fmt.Errorf("dynmis: removed vertex %d still in MIS", v)
			}
			continue
		}
		dominated := false
		for _, w := range e.d.adj[v] {
			if e.inMIS[w] {
				if e.inMIS[v] {
					return fmt.Errorf("dynmis: independence violated: edge (%d,%d) inside MIS", v, w)
				}
				dominated = true
				break
			}
		}
		if !e.inMIS[v] && !dominated {
			return fmt.Errorf("dynmis: maximality violated: vertex %d has no MIS neighbor", v)
		}
	}
	return nil
}
