package dynmis_test

import (
	"fmt"
	"testing"

	"repro/internal/dynmis"
	"repro/internal/gen"
	"repro/internal/rng"
)

// Golden regression pin for the dynamic-MIS engine: a fixed (graph, seed,
// stream) triple must reproduce this exact stream fingerprint on BOTH the
// sequential and pool drivers, forever. The fingerprint folds every
// batch's region decomposition and every repair run's deterministic trace
// fingerprint, so it pins the whole pipeline: stream generation, region
// growth, boundary freezing, and the CONGEST repair runs. If a deliberate
// protocol change shifts the value, re-derive and update — such shifts
// must always be deliberate (see golden_test.go at the repo root for the
// idiom).
const goldenStreamFingerprint = "0xa63bebaa842283f0"

func TestGoldenStreamFingerprint(t *testing.T) {
	root := rng.New(424242)
	g := gen.UnionOfTrees(512, 2, root.Split(1))
	cfg := dynmis.StreamConfig{Batches: 24, BatchSize: 10, Locality: 0.25, Churn: 0.15}
	batches, err := dynmis.UpdateStream(g, cfg, root.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []struct {
		name string
		opts dynmis.Options
	}{
		{"sequential", dynmis.Options{Seed: 99}},
		{"pool", dynmis.Options{Seed: 99, Parallel: true, Workers: 4}},
	} {
		t.Run(d.name, func(t *testing.T) {
			e, err := dynmis.New(g, d.opts)
			if err != nil {
				t.Fatal(err)
			}
			for bi, b := range batches {
				if _, err := e.Apply(b); err != nil {
					t.Fatalf("batch %d: %v", bi, err)
				}
			}
			if err := e.Verify(); err != nil {
				t.Fatal(err)
			}
			if got := fmt.Sprintf("%#016x", e.Fingerprint()); got != goldenStreamFingerprint {
				t.Fatalf("stream fingerprint drift on the %s driver: got %s, want %s",
					d.name, got, goldenStreamFingerprint)
			}
		})
	}
}
