package dynmis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Op enumerates the update kinds a stream can carry. Values start at 1 so
// a zero-valued update is detectably invalid.
type Op uint8

// Update kinds.
const (
	// OpInsertEdge adds the edge {U, V}.
	OpInsertEdge Op = iota + 1
	// OpRemoveEdge deletes the edge {U, V}.
	OpRemoveEdge
	// OpInsertNode allocates the next vertex ID. U must be that ID (the
	// stream records it so replays are self-checking) or -1 for "whatever
	// comes next".
	OpInsertNode
	// OpRemoveNode retires vertex U and every incident edge.
	OpRemoveNode
)

// opNames maps Op to its wire name (the JSONL "op" field).
var opNames = [...]string{
	OpInsertEdge: "insert-edge",
	OpRemoveEdge: "remove-edge",
	OpInsertNode: "insert-node",
	OpRemoveNode: "remove-node",
}

// String returns the op's wire name.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// OpFromString inverts String; it returns 0 for an unknown name.
func OpFromString(s string) Op {
	for o, name := range opNames {
		if name == s {
			return Op(o)
		}
	}
	return 0
}

// Update is one graph mutation. Edge ops use U and V; node ops use U only
// (V is ignored and stays 0 on the wire).
type Update struct {
	Op   Op
	U, V int
}

// InsertEdge returns an insert-edge update.
func InsertEdge(u, v int) Update { return Update{Op: OpInsertEdge, U: u, V: v} }

// RemoveEdge returns a remove-edge update.
func RemoveEdge(u, v int) Update { return Update{Op: OpRemoveEdge, U: u, V: v} }

// InsertNode returns an insert-node update expecting the given ID to be
// allocated (-1 accepts any).
func InsertNode(id int) Update { return Update{Op: OpInsertNode, U: id} }

// RemoveNode returns a remove-node update.
func RemoveNode(v int) Update { return Update{Op: OpRemoveNode, U: v} }

// String renders the update for diagnostics.
func (u Update) String() string {
	switch u.Op {
	case OpInsertEdge, OpRemoveEdge:
		return fmt.Sprintf("%s(%d,%d)", u.Op, u.U, u.V)
	default:
		return fmt.Sprintf("%s(%d)", u.Op, u.U)
	}
}

// Batch is one atomic group of updates. The engine applies a batch's
// updates sequentially in order, then runs a single incremental repair for
// the whole batch — batches are the unit of both atomicity and repair.
type Batch []Update

// StreamHeader is the self-description line at the top of a stream file:
// enough to regenerate the base graph and the stream itself, so one JSONL
// file is a complete replayable workload.
type StreamHeader struct {
	// Family, N, Alpha and P name the base-graph generator and its
	// parameters (cmd/graphgen vocabulary).
	Family string  `json:"family"`
	N      int     `json:"n"`
	Alpha  int     `json:"alpha,omitempty"`
	P      float64 `json:"p,omitempty"`
	// Seed is the base-graph generator seed; StreamSeed drives the update
	// stream generator.
	Seed       uint64 `json:"seed"`
	StreamSeed uint64 `json:"stream_seed"`
	// Batches/BatchSize/Locality/Churn are the stream-shape knobs (see
	// StreamConfig).
	Batches   int     `json:"batches"`
	BatchSize int     `json:"batch_size"`
	Locality  float64 `json:"locality"`
	Churn     float64 `json:"churn"`
}

// streamLine is the JSONL wire form: exactly one of Header or Ops per line.
type streamLine struct {
	Header *StreamHeader `json:"header,omitempty"`
	Ops    []wireUpdate  `json:"ops,omitempty"`
}

// wireUpdate is Update's JSON form with the symbolic op name. V is
// omitted when zero (node ops never carry it); an edge op with a missing
// "v" therefore means vertex 0 — the round trip is exact.
type wireUpdate struct {
	Op string `json:"op"`
	U  int    `json:"u"`
	V  int    `json:"v,omitempty"`
}

// WriteStream writes an update stream as JSONL: an optional header line
// (hdr may be nil), then one line per batch. The format round-trips
// through ReadStream.
func WriteStream(w io.Writer, hdr *StreamHeader, batches []Batch) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if hdr != nil {
		if err := enc.Encode(streamLine{Header: hdr}); err != nil {
			return fmt.Errorf("dynmis: write header: %w", err)
		}
	}
	for i, b := range batches {
		ops := make([]wireUpdate, len(b))
		for j, u := range b {
			ops[j] = wireUpdate{Op: u.Op.String(), U: u.U}
			if u.Op == OpInsertEdge || u.Op == OpRemoveEdge {
				ops[j].V = u.V
			}
		}
		if err := enc.Encode(streamLine{Ops: ops}); err != nil {
			return fmt.Errorf("dynmis: write batch %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dynmis: flush stream: %w", err)
	}
	return nil
}

// ReadStream parses a JSONL update stream: the header (nil when the file
// has none) and the batches in order. An empty "ops" line decodes as an
// empty batch — a legal no-op the engine accepts.
func ReadStream(r io.Reader) (*StreamHeader, []Batch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var hdr *StreamHeader
	var batches []Batch
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line streamLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return nil, nil, fmt.Errorf("dynmis: stream line %d: %w", lineNo, err)
		}
		if line.Header != nil {
			if lineNo != 1 {
				return nil, nil, fmt.Errorf("dynmis: stream line %d: header after data", lineNo)
			}
			hdr = line.Header
			continue
		}
		b := make(Batch, len(line.Ops))
		for j, wu := range line.Ops {
			op := OpFromString(wu.Op)
			if op == 0 {
				return nil, nil, fmt.Errorf("dynmis: stream line %d op %d: unknown op %q", lineNo, j, wu.Op)
			}
			b[j] = Update{Op: op, U: wu.U, V: wu.V}
		}
		batches = append(batches, b)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("dynmis: read stream: %w", err)
	}
	return hdr, batches, nil
}
