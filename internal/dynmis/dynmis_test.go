package dynmis_test

import (
	"strings"
	"testing"

	"repro/internal/dynmis"
	"repro/internal/graph"
)

// path returns the path graph 0-1-...-(n-1).
func path(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	return graph.MustNew(n, edges)
}

// mustEngine bootstraps an engine over g and fails the test on error.
func mustEngine(t *testing.T, g *graph.Graph, opts dynmis.Options) *dynmis.Engine {
	t.Helper()
	e, err := dynmis.New(g, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := e.Verify(); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	return e
}

// apply applies one batch, asserting success and a valid MIS afterwards.
func apply(t *testing.T, e *dynmis.Engine, b dynmis.Batch) dynmis.BatchReport {
	t.Helper()
	rep, err := e.Apply(b)
	if err != nil {
		t.Fatalf("Apply(%v): %v", b, err)
	}
	if err := e.Verify(); err != nil {
		t.Fatalf("after Apply(%v): %v", b, err)
	}
	return rep
}

func TestBootstrapIsBatchZero(t *testing.T) {
	e := mustEngine(t, path(8), dynmis.Options{Seed: 7})
	st := e.Stats()
	if st.Batches != 1 || st.Repairs != 1 || st.Updates != 0 {
		t.Fatalf("bootstrap stats = %+v", st)
	}
	if st.RegionVertices != 8 {
		t.Fatalf("bootstrap region covered %d of 8 vertices", st.RegionVertices)
	}
	if e.Fingerprint() == 0 {
		t.Fatal("zero stream fingerprint after bootstrap")
	}
}

func TestEmptyGraph(t *testing.T) {
	e := mustEngine(t, graph.MustNew(0, nil), dynmis.Options{Seed: 1})
	rep := apply(t, e, dynmis.Batch{dynmis.InsertNode(-1)})
	if rep.Region != 1 || !e.IsInMIS(0) {
		t.Fatalf("first node not repaired into MIS: rep=%+v", rep)
	}
}

func TestEmptyBatchIsNoOp(t *testing.T) {
	e := mustEngine(t, path(5), dynmis.Options{Seed: 3})
	before := e.MIS()
	rep := apply(t, e, nil)
	if rep.Seeds != 0 || rep.Region != 0 || rep.Rounds != 0 {
		t.Fatalf("empty batch repaired something: %+v", rep)
	}
	after := e.MIS()
	if len(before) != len(after) {
		t.Fatalf("empty batch changed the MIS: %v -> %v", before, after)
	}
	// The fold still advances: every batch, even a no-op, is part of the
	// stream's identity.
	if rep.StreamFingerprint == 0 {
		t.Fatal("no-op batch did not fold into the stream fingerprint")
	}
}

func TestDeleteMISVertex(t *testing.T) {
	// Star: bootstrap puts either the center or all leaves in the MIS.
	// Removing an MIS member orphans its exclusive neighbors; repair must
	// re-cover them.
	g := graph.MustNew(5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	e := mustEngine(t, g, dynmis.Options{Seed: 11})
	// Delete every MIS member in one batch: whichever side the bootstrap
	// chose (center or leaves), every surviving vertex is orphaned and the
	// repair must rebuild the set from them.
	victims := e.MIS()
	var b dynmis.Batch
	for _, v := range victims {
		b = append(b, dynmis.RemoveNode(v))
	}
	rep := apply(t, e, b)
	for _, v := range victims {
		if e.IsInMIS(v) {
			t.Fatalf("removed vertex %d still reported in MIS", v)
		}
	}
	if rep.Seeds == 0 || rep.Region == 0 {
		t.Fatalf("deleting MIS %v triggered no repair: %+v", victims, rep)
	}
	if got := len(e.MIS()); got == 0 {
		t.Fatal("repair left the set empty with live vertices remaining")
	}
}

func TestIsolateVertex(t *testing.T) {
	// Remove every edge of a dominated vertex: it becomes orphaned and must
	// join the set itself.
	e := mustEngine(t, path(3), dynmis.Options{Seed: 5})
	// Path 0-1-2: whatever the bootstrap chose, deleting both edges
	// isolates all three vertices, so all three must end up in the set.
	apply(t, e, dynmis.Batch{dynmis.RemoveEdge(0, 1), dynmis.RemoveEdge(1, 2)})
	for v := 0; v < 3; v++ {
		if !e.IsInMIS(v) {
			t.Fatalf("isolated vertex %d outside MIS", v)
		}
	}
}

func TestReinsertRemovedEdge(t *testing.T) {
	// Remove an edge, then re-insert it: the graph returns to the original
	// topology and the MIS must be valid at every step. If both endpoints
	// joined the set while the edge was gone, the re-insertion creates a
	// violation the repair must resolve.
	e := mustEngine(t, path(2), dynmis.Options{Seed: 2})
	apply(t, e, dynmis.Batch{dynmis.RemoveEdge(0, 1)})
	if !e.IsInMIS(0) || !e.IsInMIS(1) {
		t.Fatalf("after removing the only edge: MIS=%v", e.MIS())
	}
	rep := apply(t, e, dynmis.Batch{dynmis.InsertEdge(0, 1)})
	if rep.Seeds == 0 || rep.Region == 0 {
		t.Fatalf("re-inserting the edge between two MIS vertices triggered no repair: %+v", rep)
	}
}

func TestInsertNodeAllocatesSequentialIDs(t *testing.T) {
	e := mustEngine(t, path(3), dynmis.Options{Seed: 9})
	apply(t, e, dynmis.Batch{dynmis.InsertNode(3), dynmis.InsertNode(4), dynmis.InsertEdge(3, 4)})
	if got := e.Graph().NumIDs(); got != 5 {
		t.Fatalf("ID space = %d, want 5", got)
	}
	if e.IsInMIS(3) == e.IsInMIS(4) {
		t.Fatalf("adjacent new nodes 3,4 agree on membership: MIS=%v", e.MIS())
	}
	// Removed IDs are never reused.
	apply(t, e, dynmis.Batch{dynmis.RemoveNode(4)})
	apply(t, e, dynmis.Batch{dynmis.InsertNode(5)})
	if e.Graph().Alive(4) {
		t.Fatal("removed ID 4 back alive")
	}
}

func TestInsertNodeIDMismatchPoisons(t *testing.T) {
	e := mustEngine(t, path(3), dynmis.Options{Seed: 1})
	if _, err := e.Apply(dynmis.Batch{dynmis.InsertNode(99)}); err == nil {
		t.Fatal("ID mismatch accepted")
	}
	if e.Err() == nil {
		t.Fatal("engine not poisoned")
	}
	if _, err := e.Apply(nil); err == nil {
		t.Fatal("poisoned engine accepted a batch")
	}
}

func TestInvalidUpdatesPoison(t *testing.T) {
	cases := []struct {
		name string
		b    dynmis.Batch
	}{
		{"duplicate edge", dynmis.Batch{dynmis.InsertEdge(0, 1)}},
		{"absent edge", dynmis.Batch{dynmis.RemoveEdge(0, 2)}},
		{"self loop", dynmis.Batch{dynmis.InsertEdge(1, 1)}},
		{"out of range", dynmis.Batch{dynmis.InsertEdge(0, 99)}},
		{"remove dead", dynmis.Batch{dynmis.RemoveNode(1), dynmis.RemoveNode(1)}},
		{"zero op", dynmis.Batch{{}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := mustEngine(t, path(3), dynmis.Options{Seed: 4})
			if _, err := e.Apply(tc.b); err == nil {
				t.Fatalf("batch %v accepted", tc.b)
			}
			if _, err := e.Apply(nil); err == nil {
				t.Fatal("engine not poisoned after invalid batch")
			} else if !strings.Contains(err.Error(), "batch") {
				t.Fatalf("sticky error lost context: %v", err)
			}
		})
	}
}

func TestNilGraph(t *testing.T) {
	if _, err := dynmis.New(nil, dynmis.Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestAccessors(t *testing.T) {
	e := mustEngine(t, path(4), dynmis.Options{Seed: 6})
	if e.IsInMIS(-1) || e.IsInMIS(99) {
		t.Fatal("out-of-range membership reported true")
	}
	mis := e.MIS()
	for i := 1; i < len(mis); i++ {
		if mis[i-1] >= mis[i] {
			t.Fatalf("MIS() not sorted: %v", mis)
		}
	}
	for _, v := range mis {
		if !e.IsInMIS(v) {
			t.Fatalf("MIS() and IsInMIS disagree on %d", v)
		}
	}
	if e.Batches() != 1 {
		t.Fatalf("Batches() = %d after bootstrap", e.Batches())
	}
}

func TestDGraphBasics(t *testing.T) {
	d := dynmis.NewDGraph(path(4))
	if d.NumIDs() != 4 || d.AliveCount() != 4 || d.M() != 3 {
		t.Fatalf("seed state: ids=%d alive=%d m=%d", d.NumIDs(), d.AliveCount(), d.M())
	}
	if !d.HasEdge(1, 2) || d.HasEdge(0, 2) || d.HasEdge(-1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if err := d.InsertEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if d.Degree(0) != 2 {
		t.Fatalf("degree(0) = %d", d.Degree(0))
	}
	former, err := d.RemoveNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(former) != 2 || former[0] != 0 || former[1] != 2 {
		t.Fatalf("former neighbors = %v", former)
	}
	if d.Alive(1) || d.AliveCount() != 3 || d.M() != 2 {
		t.Fatalf("post-removal state: alive=%d m=%d", d.AliveCount(), d.M())
	}
	if err := d.InsertEdge(0, 1); err == nil {
		t.Fatal("edge to dead vertex accepted")
	}
	snap, orig := d.Snapshot()
	if snap.N() != 3 || snap.M() != 2 {
		t.Fatalf("snapshot n=%d m=%d", snap.N(), snap.M())
	}
	if orig[0] != 0 || orig[1] != 2 || orig[2] != 3 {
		t.Fatalf("snapshot mapping = %v", orig)
	}
}
