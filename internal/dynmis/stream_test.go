package dynmis_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dynmis"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestStreamRoundTrip(t *testing.T) {
	hdr := &dynmis.StreamHeader{
		Family: "tree", N: 64, Alpha: 2, P: 0.25,
		Seed: 3, StreamSeed: 9, Batches: 2, BatchSize: 3,
		Locality: 0.5, Churn: 0.1,
	}
	batches := []dynmis.Batch{
		{dynmis.InsertEdge(0, 5), dynmis.RemoveEdge(5, 0), dynmis.InsertNode(64)},
		{}, // empty batch is a legal no-op
		{dynmis.RemoveNode(7), dynmis.InsertEdge(2, 0)}, // edge touching vertex 0
	}
	var buf bytes.Buffer
	if err := dynmis.WriteStream(&buf, hdr, batches); err != nil {
		t.Fatal(err)
	}
	gotHdr, gotBatches, err := dynmis.ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotHdr, hdr) {
		t.Fatalf("header round trip: %+v != %+v", gotHdr, hdr)
	}
	if len(gotBatches) != len(batches) {
		t.Fatalf("batch count %d != %d", len(gotBatches), len(batches))
	}
	for i := range batches {
		if len(batches[i]) == 0 && len(gotBatches[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(gotBatches[i], batches[i]) {
			t.Fatalf("batch %d round trip: %v != %v", i, gotBatches[i], batches[i])
		}
	}
}

func TestStreamHeaderless(t *testing.T) {
	var buf bytes.Buffer
	if err := dynmis.WriteStream(&buf, nil, []dynmis.Batch{{dynmis.InsertEdge(1, 2)}}); err != nil {
		t.Fatal(err)
	}
	hdr, batches, err := dynmis.ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr != nil || len(batches) != 1 {
		t.Fatalf("hdr=%v batches=%d", hdr, len(batches))
	}
}

func TestStreamRejectsMisplacedHeader(t *testing.T) {
	in := `{"ops":[{"op":"insert-edge","u":1,"v":2}]}
{"header":{"family":"tree","n":4,"seed":1,"stream_seed":1,"batches":1,"batch_size":1,"locality":0,"churn":0}}
`
	if _, _, err := dynmis.ReadStream(strings.NewReader(in)); err == nil {
		t.Fatal("header after data accepted")
	}
}

func TestStreamRejectsUnknownOp(t *testing.T) {
	in := `{"ops":[{"op":"explode","u":1}]}` + "\n"
	if _, _, err := dynmis.ReadStream(strings.NewReader(in)); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestOpNames(t *testing.T) {
	for _, op := range []dynmis.Op{dynmis.OpInsertEdge, dynmis.OpRemoveEdge, dynmis.OpInsertNode, dynmis.OpRemoveNode} {
		if got := dynmis.OpFromString(op.String()); got != op {
			t.Fatalf("OpFromString(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if dynmis.OpFromString("nope") != 0 {
		t.Fatal("unknown name resolved")
	}
	if s := dynmis.Op(0).String(); !strings.Contains(s, "0") {
		t.Fatalf("zero op renders as %q", s)
	}
}

// TestGeneratorDeterministic: same (graph, config, seed) must yield the
// byte-identical stream; a different stream seed must diverge.
func TestGeneratorDeterministic(t *testing.T) {
	g := gen.RandomTree(128, rng.New(3))
	cfg := dynmis.StreamConfig{Batches: 8, BatchSize: 8, Locality: 0.4, Churn: 0.2}
	a, err := dynmis.UpdateStream(g, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := dynmis.UpdateStream(g, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c, err := dynmis.UpdateStream(g, cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestGeneratorStreamsReplay: every generated stream must replay cleanly
// against the base graph it was generated for, across the knob space.
func TestGeneratorStreamsReplay(t *testing.T) {
	g := gen.RandomTree(96, rng.New(5))
	for _, cfg := range []dynmis.StreamConfig{
		{Batches: 6, BatchSize: 8},
		{Batches: 6, BatchSize: 8, Locality: 1},
		{Batches: 6, BatchSize: 8, Churn: 1},
		{Batches: 6, BatchSize: 8, Locality: 0.7, Churn: 0.3, InsertBias: 0.9, Attach: 4},
		{Batches: 6, BatchSize: 8, InsertBias: 0.1},
	} {
		batches, err := dynmis.UpdateStream(g, cfg, rng.New(11))
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		e, err := dynmis.New(g, dynmis.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for bi, b := range batches {
			if _, err := e.Apply(b); err != nil {
				t.Fatalf("%+v batch %d: %v", cfg, bi, err)
			}
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
	}
}

func TestGeneratorRejectsBadConfig(t *testing.T) {
	g := graph.MustNew(4, nil)
	for _, cfg := range []dynmis.StreamConfig{
		{Batches: 0, BatchSize: 4},
		{Batches: 4, BatchSize: 0},
		{Batches: 4, BatchSize: 4, Locality: 1.5},
		{Batches: 4, BatchSize: 4, Churn: -0.1},
		{Batches: 4, BatchSize: 4, InsertBias: 2},
		{Batches: 4, BatchSize: 4, Attach: -1},
	} {
		if _, err := dynmis.UpdateStream(g, cfg, rng.New(1)); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

// TestGeneratorFromEmptyGraph: churn can grow a graph from nothing.
func TestGeneratorFromEmptyGraph(t *testing.T) {
	g := graph.MustNew(0, nil)
	batches, err := dynmis.UpdateStream(g, dynmis.StreamConfig{Batches: 4, BatchSize: 4, Churn: 0.5}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	e, err := dynmis.New(g, dynmis.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for bi, b := range batches {
		if _, err := e.Apply(b); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if e.Graph().AliveCount() == 0 {
		t.Fatal("stream never grew the empty graph")
	}
}
