package dynmis

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// StreamConfig shapes a synthetic update stream for the dynamic-MIS
// engine. The zero value is invalid; Batches and BatchSize are required.
type StreamConfig struct {
	// Batches is the number of update batches to generate; BatchSize is
	// the target number of updates per batch (a batch may run slightly
	// over when a node insertion attaches edges).
	Batches, BatchSize int
	// Locality in [0,1] is the probability that an update targets a
	// recently-touched vertex instead of a uniformly random one. High
	// locality hammers one neighborhood (repair regions overlap batch to
	// batch); zero locality sprays updates across the graph — the regime
	// where incremental repair beats full recomputation by the widest
	// margin, and the one E20's acceptance bar measures.
	Locality float64
	// Churn in [0,1] is the probability that an update is node churn
	// (insert or remove a vertex) rather than an edge flip.
	Churn float64
	// InsertBias in [0,1] is the probability that an edge update is an
	// insertion rather than a removal; 0 means the default 0.5. Biasing
	// above 0.5 densifies the graph over the stream, below 0.5 thins it.
	InsertBias float64
	// Attach is the number of edges wired to a freshly churned-in node
	// (0 means the default 2). Attachment targets follow Locality.
	Attach int
}

// streamRecentSize is the capacity of the recently-touched ring the
// Locality knob draws from.
const streamRecentSize = 32

// streamSampleRetries bounds rejection sampling (absent edge, live local
// vertex, ...) before falling back to a different update kind; generation
// must terminate even on pathological graphs (complete, empty).
const streamSampleRetries = 20

// UpdateStream generates a seeded replayable update stream against base
// graph g: Batches batches of ~BatchSize mixed insert/delete updates, every
// one valid at its point in the stream (the generator maintains a DGraph
// mirror and only emits updates the mirror accepts). Determinism: the
// output is a pure function of (g, cfg, r's seed).
func UpdateStream(g *graph.Graph, cfg StreamConfig, r *rng.RNG) ([]Batch, error) {
	if cfg.Batches <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("dynmis: stream needs positive batches (%d) and batch size (%d)", cfg.Batches, cfg.BatchSize)
	}
	if cfg.Locality < 0 || cfg.Locality > 1 {
		return nil, fmt.Errorf("dynmis: stream locality %v outside [0,1]", cfg.Locality)
	}
	if cfg.Churn < 0 || cfg.Churn > 1 {
		return nil, fmt.Errorf("dynmis: stream churn %v outside [0,1]", cfg.Churn)
	}
	if cfg.InsertBias < 0 || cfg.InsertBias > 1 {
		return nil, fmt.Errorf("dynmis: stream insert bias %v outside [0,1]", cfg.InsertBias)
	}
	if cfg.Attach < 0 {
		return nil, fmt.Errorf("dynmis: stream attach %d negative", cfg.Attach)
	}
	insertBias := cfg.InsertBias
	if insertBias == 0 {
		insertBias = 0.5
	}
	attach := cfg.Attach
	if attach == 0 {
		attach = 2
	}

	s := &streamState{d: NewDGraph(g), edgeIdx: make(map[uint64]int)}
	s.pos = make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		s.pos[v] = len(s.alive)
		s.alive = append(s.alive, v)
		for _, w := range g.Neighbors(v) {
			if v < w {
				s.edgeIdx[edgeKey(v, w)] = len(s.edges)
				s.edges = append(s.edges, [2]int{v, w})
			}
		}
	}

	batches := make([]Batch, cfg.Batches)
	for bi := range batches {
		b := make(Batch, 0, cfg.BatchSize)
		for len(b) < cfg.BatchSize {
			switch {
			case r.Float64() < cfg.Churn:
				b = s.churn(b, r, cfg.Locality, attach)
			case r.Float64() < insertBias:
				b = s.edgeInsert(b, r, cfg.Locality)
			default:
				b = s.edgeRemove(b, r, cfg.Locality)
			}
		}
		batches[bi] = b
	}
	return batches, nil
}

// streamState is the generator's mirror of the evolving graph: a DGraph
// plus O(1)-sampling side structures (live-vertex list, edge list with a
// packed-key position index — lookups and deletes only, never ranged) and
// the recently-touched ring the Locality knob draws from.
type streamState struct {
	d       *DGraph
	alive   []int // live vertex IDs, swap-removed
	pos     []int // vertex -> index in alive (-1 when dead)
	edges   [][2]int
	edgeIdx map[uint64]int // edgeKey -> index in edges
	recent  [streamRecentSize]int
	nRecent int
	next    int
}

// edgeKey packs an undirected edge into one map key.
func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// touch records v in the recently-touched ring.
func (s *streamState) touch(v int) {
	s.recent[s.next] = v
	s.next = (s.next + 1) % streamRecentSize
	if s.nRecent < streamRecentSize {
		s.nRecent++
	}
}

// pickVertex samples a live vertex: from the recent ring with probability
// locality (falling back to uniform when the sampled entry died), else
// uniformly from the live set. Returns -1 when no vertex is live.
func (s *streamState) pickVertex(r *rng.RNG, locality float64) int {
	if len(s.alive) == 0 {
		return -1
	}
	if s.nRecent > 0 && r.Float64() < locality {
		for try := 0; try < streamSampleRetries; try++ {
			v := s.recent[r.Intn(s.nRecent)]
			if s.d.Alive(v) {
				return v
			}
		}
	}
	return s.alive[r.Intn(len(s.alive))]
}

// addEdge mirrors an edge insertion into the side structures.
func (s *streamState) addEdge(u, v int) {
	s.edgeIdx[edgeKey(u, v)] = len(s.edges)
	if u > v {
		u, v = v, u
	}
	s.edges = append(s.edges, [2]int{u, v})
}

// dropEdge mirrors an edge removal: swap-remove from the edge list, fix
// the moved edge's index.
func (s *streamState) dropEdge(u, v int) {
	k := edgeKey(u, v)
	i := s.edgeIdx[k]
	last := len(s.edges) - 1
	if i != last {
		moved := s.edges[last]
		s.edges[i] = moved
		s.edgeIdx[edgeKey(moved[0], moved[1])] = i
	}
	s.edges = s.edges[:last]
	delete(s.edgeIdx, k)
}

// edgeInsert emits one valid edge insertion, falling back to a removal
// (dense neighborhood) or node churn (fewer than two live vertices).
func (s *streamState) edgeInsert(b Batch, r *rng.RNG, locality float64) Batch {
	if len(s.alive) >= 2 {
		for try := 0; try < streamSampleRetries; try++ {
			u := s.pickVertex(r, locality)
			v := s.alive[r.Intn(len(s.alive))]
			if u == v || s.d.HasEdge(u, v) {
				continue
			}
			if err := s.d.InsertEdge(u, v); err != nil {
				panic(fmt.Sprintf("dynmis: stream mirror insert (%d,%d): %v", u, v, err))
			}
			s.addEdge(u, v)
			s.touch(u)
			s.touch(v)
			return append(b, InsertEdge(u, v))
		}
	}
	if len(s.edges) > 0 {
		return s.edgeRemove(b, r, locality)
	}
	return s.nodeInsert(b, r, locality, 0)
}

// edgeRemove emits one valid edge removal, preferring an edge incident to
// a local vertex, falling back to an insertion when the graph is empty.
func (s *streamState) edgeRemove(b Batch, r *rng.RNG, locality float64) Batch {
	if len(s.edges) == 0 {
		return s.edgeInsert(b, r, locality)
	}
	var u, v int
	picked := false
	if r.Float64() < locality {
		for try := 0; try < streamSampleRetries; try++ {
			c := s.pickVertex(r, locality)
			if c < 0 || s.d.Degree(c) == 0 {
				continue
			}
			u, v = c, s.d.Neighbors(c)[r.Intn(s.d.Degree(c))]
			picked = true
			break
		}
	}
	if !picked {
		e := s.edges[r.Intn(len(s.edges))]
		u, v = e[0], e[1]
	}
	if err := s.d.RemoveEdge(u, v); err != nil {
		panic(fmt.Sprintf("dynmis: stream mirror remove (%d,%d): %v", u, v, err))
	}
	s.dropEdge(u, v)
	s.touch(u)
	s.touch(v)
	return append(b, RemoveEdge(u, v))
}

// churn emits node churn: insert (wired with attach edges) or remove with
// equal probability, never removing below two live vertices.
func (s *streamState) churn(b Batch, r *rng.RNG, locality float64, attach int) Batch {
	if len(s.alive) > 2 && r.Bool(0.5) {
		return s.nodeRemove(b, r, locality)
	}
	return s.nodeInsert(b, r, locality, attach)
}

// nodeInsert emits a node insertion plus up to attach edge insertions
// wiring the newcomer in.
func (s *streamState) nodeInsert(b Batch, r *rng.RNG, locality float64, attach int) Batch {
	id := s.d.InsertNode()
	s.pos = append(s.pos, len(s.alive))
	s.alive = append(s.alive, id)
	s.touch(id)
	b = append(b, InsertNode(id))
	for i := 0; i < attach && len(s.alive) >= 2; i++ {
		w := -1
		for try := 0; try < streamSampleRetries; try++ {
			c := s.pickVertex(r, locality)
			if c != id && !s.d.HasEdge(id, c) {
				w = c
				break
			}
		}
		if w < 0 {
			break
		}
		if err := s.d.InsertEdge(id, w); err != nil {
			panic(fmt.Sprintf("dynmis: stream mirror attach (%d,%d): %v", id, w, err))
		}
		s.addEdge(id, w)
		s.touch(w)
		b = append(b, InsertEdge(id, w))
	}
	return b
}

// nodeRemove emits a node removal, mirroring the cascade of incident-edge
// deletions into the side structures.
func (s *streamState) nodeRemove(b Batch, r *rng.RNG, locality float64) Batch {
	v := s.pickVertex(r, locality)
	former, err := s.d.RemoveNode(v)
	if err != nil {
		panic(fmt.Sprintf("dynmis: stream mirror remove node %d: %v", v, err))
	}
	for _, w := range former {
		s.dropEdge(v, w)
		s.touch(w)
	}
	i, last := s.pos[v], len(s.alive)-1
	if i != last {
		moved := s.alive[last]
		s.alive[i] = moved
		s.pos[moved] = i
	}
	s.alive = s.alive[:last]
	s.pos[v] = -1
	return append(b, RemoveNode(v))
}
