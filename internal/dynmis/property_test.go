package dynmis_test

import (
	"fmt"
	"testing"

	"repro/internal/dynmis"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// propertyFamilies spans every generator family: the engine's correctness
// argument is topology-free and the suite holds it to that.
var propertyFamilies = []struct {
	name  string
	build func(n int, r *rng.RNG) *graph.Graph
}{
	{"tree", func(n int, r *rng.RNG) *graph.Graph { return gen.RandomTree(n, r) }},
	{"union", func(n int, r *rng.RNG) *graph.Graph { return gen.UnionOfTrees(n, 3, r) }},
	{"grid", func(n int, r *rng.RNG) *graph.Graph {
		side := 1
		for side*side < n {
			side++
		}
		return gen.Grid(side, side)
	}},
	{"gnp", func(n int, r *rng.RNG) *graph.Graph { return gen.GNP(n, 4/float64(n), r) }},
	{"pa", func(n int, r *rng.RNG) *graph.Graph { return gen.PreferentialAttachment(n, 2, r) }},
	{"rgg", func(n int, r *rng.RNG) *graph.Graph {
		g, _ := gen.RandomGeometric(n, 0.08, r)
		return g
	}},
}

// checkAgainstRecompute asserts the maintained set is a valid MIS of the
// engine's live graph two independent ways: the engine's own Verify, and
// graph.VerifyMIS on a fresh immutable snapshot (the same checker every
// static experiment trusts).
func checkAgainstRecompute(t *testing.T, e *dynmis.Engine, ctx string) {
	t.Helper()
	if err := e.Verify(); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	snap, orig := e.Graph().Snapshot()
	inSet := make([]bool, snap.N())
	for i, v := range orig {
		inSet[i] = e.IsInMIS(v)
	}
	if err := snap.VerifyMIS(inSet); err != nil {
		t.Fatalf("%s: snapshot check: %v", ctx, err)
	}
}

// TestPropertyRandomStreams is the subsystem's main correctness net:
// random update streams over every family, with the maintained set checked
// for independence and maximality after every single batch.
func TestPropertyRandomStreams(t *testing.T) {
	streams := []dynmis.StreamConfig{
		{Batches: 10, BatchSize: 6, Locality: 0, Churn: 0.1},
		{Batches: 10, BatchSize: 6, Locality: 0.8, Churn: 0.3},
		{Batches: 10, BatchSize: 6, InsertBias: 0.2},
	}
	for _, fam := range propertyFamilies {
		for si, cfg := range streams {
			t.Run(fmt.Sprintf("%s/stream%d", fam.name, si), func(t *testing.T) {
				root := rng.New(uint64(1000 + si))
				g := fam.build(200, root.Split(1))
				batches, err := dynmis.UpdateStream(g, cfg, root.Split(2))
				if err != nil {
					t.Fatal(err)
				}
				e, err := dynmis.New(g, dynmis.Options{Seed: root.Split(3).Uint64()})
				if err != nil {
					t.Fatal(err)
				}
				checkAgainstRecompute(t, e, "bootstrap")
				for bi, b := range batches {
					if _, err := e.Apply(b); err != nil {
						t.Fatalf("batch %d: %v", bi, err)
					}
					checkAgainstRecompute(t, e, fmt.Sprintf("batch %d", bi))
				}
			})
		}
	}
}

// TestPropertyCrossDriver: the same stream replayed on the sequential and
// pool drivers must agree on every batch report and every membership bit.
func TestPropertyCrossDriver(t *testing.T) {
	for _, fam := range propertyFamilies {
		t.Run(fam.name, func(t *testing.T) {
			root := rng.New(77)
			g := fam.build(150, root.Split(1))
			cfg := dynmis.StreamConfig{Batches: 8, BatchSize: 8, Locality: 0.3, Churn: 0.2}
			batches, err := dynmis.UpdateStream(g, cfg, root.Split(2))
			if err != nil {
				t.Fatal(err)
			}
			seed := root.Split(3).Uint64()
			seq, err := dynmis.New(g, dynmis.Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			pool, err := dynmis.New(g, dynmis.Options{Seed: seed, Parallel: true, Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			if seq.Fingerprint() != pool.Fingerprint() {
				t.Fatalf("bootstrap fingerprints diverge: %#x != %#x", seq.Fingerprint(), pool.Fingerprint())
			}
			for bi, b := range batches {
				rs, err := seq.Apply(b)
				if err != nil {
					t.Fatalf("sequential batch %d: %v", bi, err)
				}
				rp, err := pool.Apply(b)
				if err != nil {
					t.Fatalf("pool batch %d: %v", bi, err)
				}
				if rs != rp {
					t.Fatalf("batch %d reports diverge:\nseq  %+v\npool %+v", bi, rs, rp)
				}
			}
			for v := 0; v < seq.Graph().NumIDs(); v++ {
				if seq.IsInMIS(v) != pool.IsInMIS(v) {
					t.Fatalf("membership of %d diverges across drivers", v)
				}
			}
		})
	}
}
