package dynmis

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/metivier"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Incremental repair: re-run the CONGEST shattering machinery on the
// repair region only, with everything outside the region frozen.
//
// The region splits into two classes:
//
//   - *frozen-dominated* vertices are adjacent to an MIS vertex outside
//     the region. The frozen neighbor keeps its membership, so these
//     vertices are already dominated and barred from joining; they take
//     no part in the repair run — exclusion is how the boundary
//     constraint is enforced (a node that cannot join and is already
//     covered has nothing left to decide).
//   - *free* vertices are re-decided from scratch: the repair run is the
//     Métivier priority protocol (the workhorse inside the paper's
//     tree/bounded-arboricity pipeline) on the subgraph induced by the
//     free vertices, executed on the zero-allocation congest.Wire engine
//     with whichever driver the engine was configured with.
//
// Correctness of the composition (see DESIGN.md S28 for the full
// argument): free vertices are never adjacent to an outside MIS vertex
// (those are frozen-dominated by definition), region growth guarantees
// every outside non-MIS vertex keeps a dominator outside the region, and
// the only MIS vertices inside a region are violated seeds — so stitching
// the repair run's output over the region into the frozen outside yields
// a maximal independent set of the whole graph.

// repairSeed derives the deterministic CONGEST seed for batch b: a pure
// function of (engine seed, batch index), so replays and cross-driver runs
// agree regardless of what earlier batches did.
func repairSeed(seed uint64, batch int) uint64 {
	return rng.New(seed).Split(uint64(batch)).Uint64()
}

// repair re-decides the region and folds the run into the maintained set.
// region is sorted ascending; rep's region accounting fields are filled by
// the caller.
func (e *Engine) repair(region []int, rep *BatchReport) error {
	// Split the region: frozen-dominated out, free in. The subgraph keeps
	// ascending-ID order, so local IDs are a deterministic relabeling.
	free := e.free[:0]
	for _, v := range region {
		if e.blockedByFrozenMIS(v) {
			if e.inMIS[v] {
				// An MIS vertex adjacent to an outside MIS vertex would be a
				// pre-existing independence violation — impossible while the
				// maintained set is valid between batches.
				return fmt.Errorf("dynmis: internal: MIS vertex %d frozen-dominated", v)
			}
			e.local[v] = -1
			continue
		}
		e.local[v] = int32(len(free))
		free = append(free, v)
	}
	e.free = free

	edges := e.edges[:0]
	for i, v := range free {
		for _, w := range e.d.adj[v] {
			if e.mark[w] != e.epoch || e.local[w] < 0 {
				continue // outside the region or frozen-dominated
			}
			if j := int(e.local[w]); i < j {
				edges = append(edges, graph.Edge{U: i, V: j})
			}
		}
	}
	e.edges = edges
	sub, err := graph.New(len(free), edges)
	if err != nil {
		return fmt.Errorf("dynmis: build repair subgraph: %w", err)
	}

	rec := trace.NewRecorder(repairRingSize)
	opts := congest.Options{
		Seed:      repairSeed(e.opts.Seed, rep.Batch),
		Driver:    e.opts.Driver,
		Parallel:  e.opts.Parallel,
		Workers:   e.opts.Workers,
		MaxRounds: e.opts.MaxRounds,
		Events:    rec,
	}
	statuses, res, err := metivier.Run(sub, opts)
	if err != nil {
		return fmt.Errorf("dynmis: repair run (batch %d, region %d): %w", rep.Batch, len(region), err)
	}
	for i, v := range free {
		e.inMIS[v] = statuses[i] == base.StatusInMIS
	}
	for _, v := range region {
		if e.local[v] < 0 {
			e.inMIS[v] = false // frozen-dominated: covered from outside
		}
	}

	rep.Free = len(free)
	rep.Frozen = len(region) - len(free)
	rep.Rounds = res.Rounds
	rep.Messages = res.Messages
	rep.RepairFingerprint = rec.Fingerprint()
	return nil
}

// repairRingSize bounds the per-repair trace ring. The running fingerprint
// covers the whole event stream regardless of ring capacity, and repair
// regions are small, so a modest ring keeps per-batch allocation flat.
const repairRingSize = 1 << 10
