package dynmis_test

import (
	"testing"

	"repro/internal/dynmis"
	"repro/internal/gen"
	"repro/internal/rng"
)

// TestAdversarialClusteredStream is the worst-case-locality stress net:
// with Locality ≈ 1 every update targets the recently-touched
// neighborhood, so consecutive batches hammer one region and the repair
// regions overlap and merge batch after batch — the regime where a
// region-growth bug would compound instead of washing out. The test holds
// the engine to three things under that pressure: the maintained set
// stays a verified MIS after every batch, the repaired regions stay local
// (a regression bound far below n, since clustered updates must not
// cascade into whole-graph repairs), and the stream fingerprint is
// reproducible.
func TestAdversarialClusteredStream(t *testing.T) {
	const (
		n       = 2048
		batches = 40
		// regionCap is the regression bound on any single post-bootstrap
		// repair region. Observed max under this pinned stream is far
		// lower; a cascade regression would blow through n/8 immediately.
		regionCap = n / 8
	)
	g := gen.UnionOfTrees(n, 3, rng.New(41))
	stream, err := dynmis.UpdateStream(g, dynmis.StreamConfig{
		Batches:   batches,
		BatchSize: 24,
		Locality:  0.98,
		Churn:     0.15,
	}, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}

	run := func() (uint64, int, int64, int) {
		e, err := dynmis.New(g, dynmis.Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		regionMax, regionSum := 0, int64(0)
		for i, b := range stream {
			rep, err := e.Apply(b)
			if err != nil {
				t.Fatalf("batch %d: %v", i, err)
			}
			if rep.Region > regionMax {
				regionMax = rep.Region
			}
			regionSum += int64(rep.Region)
			checkAgainstRecompute(t, e, "clustered stream")
		}
		return e.Fingerprint(), regionMax, regionSum, e.Stats().Repairs
	}

	fp, regionMax, regionSum, repairs := run()
	t.Logf("repairs=%d regionMax=%d regionMean=%.1f (bound %d, n=%d)",
		repairs, regionMax, float64(regionSum)/float64(batches), regionCap, n)
	if repairs < batches/2 {
		t.Fatalf("stream too quiet to stress anything: %d repairs over %d batches", repairs, batches)
	}
	if regionMax > regionCap {
		t.Fatalf("clustered updates cascaded: max repair region %d exceeds bound %d (n=%d)",
			regionMax, regionCap, n)
	}
	// The mean must stay near the batch scale, not the graph scale:
	// overlapping regions may merge, but merged regions must still be
	// bounded by the touched neighborhood.
	if mean := float64(regionSum) / float64(batches); mean > float64(regionCap)/2 {
		t.Fatalf("mean repair region %.1f is graph-scale, not neighborhood-scale (cap %d)", mean, regionCap)
	}

	fp2, _, _, _ := run()
	if fp2 != fp {
		t.Fatalf("clustered stream fingerprint not reproducible: %#x vs %#x", fp, fp2)
	}
}
