package dynmis

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// DGraph is a mutable simple undirected graph under streaming updates: the
// substrate the dynamic-MIS engine maintains its set over, and the state
// the update-stream generator (internal/gen) mirrors while emitting ops.
//
// Vertex IDs are append-only: InsertNode always allocates the next unused
// ID and RemoveNode retires an ID forever (no reuse). That keeps every ID
// in a stream meaningful for its whole lifetime — a replayed stream means
// the same thing on every run — and makes the ID space a deterministic
// function of the update stream alone. Adjacency lists are kept sorted, so
// neighbor iteration order is ID order everywhere, the same invariant the
// immutable graph.Graph core guarantees.
type DGraph struct {
	adj    [][]int // sorted adjacency per ID; nil for isolated and dead IDs
	dead   []bool  // retired IDs (RemoveNode)
	nAlive int
	m      int
}

// NewDGraph builds a dynamic graph seeded with a snapshot of g (every
// vertex of g alive, IDs preserved).
func NewDGraph(g *graph.Graph) *DGraph {
	d := &DGraph{
		adj:    make([][]int, g.N()),
		dead:   make([]bool, g.N()),
		nAlive: g.N(),
		m:      g.M(),
	}
	for v := 0; v < g.N(); v++ {
		if ns := g.Neighbors(v); len(ns) > 0 {
			d.adj[v] = append([]int(nil), ns...)
		}
	}
	return d
}

// NumIDs returns the size of the ID space: every ID ever allocated,
// retired ones included. Valid IDs are 0..NumIDs()-1.
func (d *DGraph) NumIDs() int { return len(d.adj) }

// AliveCount returns the number of live vertices.
func (d *DGraph) AliveCount() int { return d.nAlive }

// M returns the number of (undirected) edges.
func (d *DGraph) M() int { return d.m }

// Alive reports whether v is a live vertex (allocated and not removed).
func (d *DGraph) Alive(v int) bool { return v >= 0 && v < len(d.adj) && !d.dead[v] }

// Neighbors returns v's sorted adjacency list. The slice aliases internal
// storage, is invalidated by the next mutation, and must not be modified.
func (d *DGraph) Neighbors(v int) []int { return d.adj[v] }

// Degree returns v's degree.
func (d *DGraph) Degree(v int) int { return len(d.adj[v]) }

// HasEdge reports whether {u, v} is an edge (binary search).
func (d *DGraph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(d.adj) {
		return false
	}
	row := d.adj[u]
	i := sort.SearchInts(row, v)
	return i < len(row) && row[i] == v
}

// checkEndpoint validates one edge endpoint.
func (d *DGraph) checkEndpoint(v int) error {
	if v < 0 || v >= len(d.adj) {
		return fmt.Errorf("vertex %d out of range [0,%d)", v, len(d.adj))
	}
	if d.dead[v] {
		return fmt.Errorf("vertex %d is removed", v)
	}
	return nil
}

// InsertEdge adds the edge {u, v}. Self-loops, dead or out-of-range
// endpoints, and edges that already exist are errors.
func (d *DGraph) InsertEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("self-loop at %d", u)
	}
	if err := d.checkEndpoint(u); err != nil {
		return err
	}
	if err := d.checkEndpoint(v); err != nil {
		return err
	}
	if d.HasEdge(u, v) {
		return fmt.Errorf("edge (%d,%d) already exists", u, v)
	}
	d.adj[u] = insertSorted(d.adj[u], v)
	d.adj[v] = insertSorted(d.adj[v], u)
	d.m++
	return nil
}

// RemoveEdge deletes the edge {u, v}; removing an absent edge is an error.
func (d *DGraph) RemoveEdge(u, v int) error {
	if err := d.checkEndpoint(u); err != nil {
		return err
	}
	if err := d.checkEndpoint(v); err != nil {
		return err
	}
	if !d.HasEdge(u, v) {
		return fmt.Errorf("edge (%d,%d) does not exist", u, v)
	}
	d.adj[u] = removeSorted(d.adj[u], v)
	d.adj[v] = removeSorted(d.adj[v], u)
	d.m--
	return nil
}

// InsertNode allocates the next vertex ID and returns it. The new vertex
// starts isolated; wire it with InsertEdge.
func (d *DGraph) InsertNode() int {
	id := len(d.adj)
	d.adj = append(d.adj, nil)
	d.dead = append(d.dead, false)
	d.nAlive++
	return id
}

// RemoveNode retires vertex v, deleting every incident edge, and returns
// v's former neighbors (sorted). The returned slice is v's old adjacency
// storage, owned by the caller from here on.
func (d *DGraph) RemoveNode(v int) ([]int, error) {
	if err := d.checkEndpoint(v); err != nil {
		return nil, err
	}
	former := d.adj[v]
	for _, w := range former {
		d.adj[w] = removeSorted(d.adj[w], v)
	}
	d.m -= len(former)
	d.adj[v] = nil
	d.dead[v] = true
	d.nAlive--
	return former, nil
}

// Snapshot materializes the live subgraph as an immutable graph.Graph plus
// the mapping back to DGraph IDs: orig[i] is the DGraph ID of snapshot
// vertex i. Used by the full-recompute baseline and the property tests.
func (d *DGraph) Snapshot() (*graph.Graph, []int) {
	orig := make([]int, 0, d.nAlive)
	local := make([]int, len(d.adj))
	for v := range d.adj {
		if d.dead[v] {
			local[v] = -1
			continue
		}
		local[v] = len(orig)
		orig = append(orig, v)
	}
	edges := make([]graph.Edge, 0, d.m)
	for i, v := range orig {
		for _, w := range d.adj[v] {
			if j := local[w]; i < j {
				edges = append(edges, graph.Edge{U: i, V: j})
			}
		}
	}
	return graph.MustNew(len(orig), edges), orig
}

// insertSorted inserts x into sorted row, preserving order.
func insertSorted(row []int, x int) []int {
	i := sort.SearchInts(row, x)
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = x
	return row
}

// removeSorted deletes x from sorted row; the caller guarantees presence.
func removeSorted(row []int, x int) []int {
	i := sort.SearchInts(row, x)
	copy(row[i:], row[i+1:])
	return row[:len(row)-1]
}
