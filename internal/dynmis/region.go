package dynmis

import "sort"

// Affected-region discovery: which vertices a repair run must re-decide.
//
// After a batch of updates the maintained set can be locally broken in
// exactly two ways:
//
//   - a *violated* vertex is in the MIS with an MIS neighbor (only an
//     inserted edge between two members creates this), and
//   - an *orphaned* vertex is outside the MIS with no MIS neighbor (a
//     deleted dominator edge/vertex or a freshly inserted node).
//
// Those are the repair seeds. The repair region grows from the seeds by
// BFS, but a frontier vertex is only absorbed when its current status
// could be invalidated by the repair; otherwise it stays outside as a
// frozen boundary. The stability rule:
//
//   - an MIS frontier vertex is always stable: it keeps its membership,
//     and region vertices adjacent to it are barred from joining (they are
//     excluded from the repair run as externally dominated), so no new
//     conflict can reach it;
//   - a non-MIS frontier vertex is stable iff it has an MIS neighbor
//     *outside* the region — a dominator the repair cannot touch. If every
//     dominator is inside the region (all of them violated seeds whose
//     membership the repair may revoke), its domination is at stake and it
//     joins the region.
//
// The rule is safe to evaluate during a single BFS pass: the only MIS
// vertices ever inside the region are violated seeds, all marked before
// growth starts (a stable MIS frontier vertex is never absorbed), so
// "outside the region" is monotone for the MIS vertices the rule reads.
// The radius is therefore exactly as large as the update's consequences
// and no larger — the dynamic analogue of the shattering analysis' bound
// on residual components.

// violated reports whether live vertex v is an MIS member with an MIS
// neighbor.
func (e *Engine) violated(v int) bool {
	if !e.inMIS[v] {
		return false
	}
	for _, w := range e.d.adj[v] {
		if e.inMIS[w] {
			return true
		}
	}
	return false
}

// orphaned reports whether live vertex v is outside the MIS with no MIS
// neighbor.
func (e *Engine) orphaned(v int) bool {
	if e.inMIS[v] {
		return false
	}
	for _, w := range e.d.adj[v] {
		if e.inMIS[w] {
			return false
		}
	}
	return true
}

// seedsFrom filters the affected vertices (sorted, deduped, live) down to
// the repair seeds: the violated and orphaned ones.
func (e *Engine) seedsFrom(affected []int) []int {
	seeds := e.seeds[:0]
	for _, v := range affected {
		if e.violated(v) || e.orphaned(v) {
			seeds = append(seeds, v)
		}
	}
	e.seeds = seeds
	return seeds
}

// growRegion BFS-grows the repair region from the seeds until the
// frontier is MIS-stable, and returns the region in ascending ID order.
// The returned slice is engine scratch, valid until the next batch.
func (e *Engine) growRegion(seeds []int) []int {
	e.epoch++
	region := e.region[:0]
	for _, v := range seeds {
		if e.mark[v] != e.epoch {
			e.mark[v] = e.epoch
			region = append(region, v)
		}
	}
	for i := 0; i < len(region); i++ {
		for _, w := range e.d.adj[region[i]] {
			if e.mark[w] == e.epoch || e.stableFrontier(w) {
				continue
			}
			e.mark[w] = e.epoch
			region = append(region, w)
		}
	}
	// BFS discovery order depends on seed order; canonicalize so every
	// downstream consumer (blocked split, subgraph IDs) is order-free.
	sort.Ints(region)
	e.region = region
	return region
}

// stableFrontier reports whether vertex w, adjacent to the region, can
// keep its status without being re-decided (see the package comment on
// the stability rule).
func (e *Engine) stableFrontier(w int) bool {
	if e.inMIS[w] {
		return true
	}
	for _, x := range e.d.adj[w] {
		if e.inMIS[x] && e.mark[x] != e.epoch {
			return true
		}
	}
	return false
}

// blockedByFrozenMIS reports whether region vertex v is adjacent to a
// frozen MIS vertex outside the region. Such a vertex is externally
// dominated: it must not join the set, so the repair run excludes it.
func (e *Engine) blockedByFrozenMIS(v int) bool {
	for _, w := range e.d.adj[v] {
		if e.inMIS[w] && e.mark[w] != e.epoch {
			return true
		}
	}
	return false
}
