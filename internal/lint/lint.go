// Package lint is misvet's analyzer suite: static checks over go/ast +
// go/types that enforce, at compile time, the determinism and CONGEST
// contracts this repository otherwise states only in prose and guards
// only with runtime tests (cross-driver matrices, pinned trace
// fingerprints, AllocsPerRun gates).
//
// The suite ships eight analyzers. Five are syntactic, per-construct
// checks:
//
//   - determinism: no wall-clock reads, math/rand, sync/atomic operations,
//     or goroutine spawns inside deterministic packages;
//   - maprange: no bare `range` over a map in deterministic packages
//     (collect-and-sort the keys instead);
//   - wirekind: the proto wire-kind namespace is closed — unique non-zero
//     tags, one Wire() encoder and an As* decoder per kind, well-formed
//     kind-switches;
//   - congestbits: every Wire() encoder declares a constant bit size that
//     agrees with the payload's Bits() method and stays within the
//     congest.MaxWireBits CONGEST budget;
//   - framecodec: the distrib transport's frame-kind namespace is closed
//     the same way, and decoded frame bit sizes are bounds-checked
//     against congest.MaxWireBits.
//
// Three are interprocedural, built on a shared call-graph core
// (callgraph.go):
//
//   - hotalloc: functions annotated //congest:hotpath — and the
//     statically-resolved callees they reach, to a bounded depth —
//     contain no allocating constructs (closures, make/new, heap-escaping
//     composite literals, appends to fresh slices, interface
//     conversions);
//   - idspace: a flow-sensitive taint analysis proving internal
//     (permuted) vertex IDs never reach external surfaces (trace events,
//     error strings, fault consults) without the extID translation, and
//     external IDs never index internal-order tables;
//   - draworder: rng.RNG draws are unreachable from worker goroutines
//     and per-shard contexts, so randomness is always consumed
//     coordinator-side in global sender order.
//
// Escape hatches are comment directives (see directives.go): a finding on
// a line marked //lint:advisory — or inside a function whose doc comment
// carries the directive — is suppressed and counted, the documented
// contract for advisory-only code such as the pool driver's wall-clock
// timing. Scoping rules (which packages count as deterministic, and that
// _test.go files are never analyzed) live in scope.go.
//
// The package is stdlib-only by design: golang.org/x/tools is not a
// dependency, so cmd/misvet is a standalone checker rather than a `go vet
// -vettool` plugin, but it emits the same clickable file:line:col
// diagnostic format.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
)

// Analyzer is one named check. Run inspects the Pass's package (or, for
// module-level analyzers, every package of the module) and reports
// findings through Pass.Reportf.
type Analyzer struct {
	// Name is the short identifier used as the diagnostic prefix and in
	// baseline files.
	Name string
	// Doc is a one-line description, shown by `misvet -list`.
	Doc string
	// ModuleLevel analyzers run once with Pass.Pkg == nil and inspect
	// pass.Module.Pkgs themselves; they exist for cross-package contracts
	// (e.g. wire-kind tag uniqueness). Package-level analyzers run once
	// per loaded package.
	ModuleLevel bool
	// Run performs the check.
	Run func(*Pass)
}

// Pass carries one analyzer invocation's inputs and its report sink.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	// Pkg is the package under analysis; nil for module-level analyzers.
	Pkg *Package

	diags      *[]Diagnostic
	suppressed *int
}

// Diagnostic is one finding, positioned for go-vet-style output.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// File is the offending file, relative to the module root.
	File string `json:"file"`
	// Line and Col are 1-based.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message states the violation.
	Message string `json:"message"`
}

// String renders the diagnostic in the clickable format go vet uses,
// prefixed with the analyzer name.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Reportf records a finding at pos inside pkg, unless an advisory
// directive suppresses it (in which case it is only counted).
func (p *Pass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	if pkg.advisoryAt(p.Module, pos) {
		*p.suppressed++
		return
	}
	file := position.Filename
	if rel, err := filepath.Rel(p.Module.Root, file); err == nil && !filepath.IsAbs(rel) {
		file = filepath.ToSlash(rel)
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suite returns the full analyzer suite in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		MaprangeAnalyzer,
		WirekindAnalyzer,
		CongestbitsAnalyzer,
		FramecodecAnalyzer,
		HotallocAnalyzer,
		IdspaceAnalyzer,
		DraworderAnalyzer,
	}
}

// Run executes the analyzers over the module and returns the findings
// sorted by position plus the number of advisory-suppressed findings.
func Run(m *Module, analyzers []*Analyzer) (diags []Diagnostic, suppressed int) {
	for _, a := range analyzers {
		if a.ModuleLevel {
			a.Run(&Pass{Analyzer: a, Module: m, diags: &diags, suppressed: &suppressed})
			continue
		}
		for _, pkg := range m.Pkgs {
			a.Run(&Pass{Analyzer: a, Module: m, Pkg: pkg, diags: &diags, suppressed: &suppressed})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, suppressed
}
