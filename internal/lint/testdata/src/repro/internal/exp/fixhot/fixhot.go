// Package fixhot exercises the hotalloc analyzer. It lives under
// internal/exp — outside the deterministic scope — so the goroutine spawn
// below is attributed to hotalloc alone; the analyzer itself is opt-in
// per function and runs everywhere.
package fixhot

// point is a small non-pointer-shaped value for boxing tests.
type point struct{ x int }

// sink accepts a boxed value.
func sink(v any) { _ = v }

// sinkAll accepts boxed values variadically.
func sinkAll(vs ...any) { _ = vs }

// Hot exercises every allocating construct inside one marked function.
//
//congest:hotpath
func Hot(n int) {
	f := func() {} // want "closure literal in a hot-path function"
	go f()         // want "goroutine spawn in a hot-path function"

	p := &point{x: n}           // want "heap-escaping composite literal"
	buf := make([]int, n)       // want "make in a hot-path function"
	q := new(point)             // want "new in a hot-path function"
	fresh := append([]int{}, n) // want "append to a fresh slice"

	sink(n) // want "argument to interface parameter"
	sink(p) // pointer-shaped: fits the interface word, no boxing

	sinkAll(n, p) // want "argument to interface parameter"

	v := any(n) // want "conversion to"
	var w any
	w = n // want "assignment to"

	_, _, _, _, _, _ = p, buf, q, fresh, v, w
}

// boxed is pre-boxed storage for the ellipsis-spread case.
var boxed []any

// HotSpread shows the ellipsis spread staying clean.
//
//congest:hotpath
func HotSpread() {
	sinkAll(boxed...)
}

// HotBox returns a value through an interface result.
//
//congest:hotpath
func HotBox(n int) any {
	return n // want "return into"
}

// HotGrow carves out its grow path with the coldpath directive.
//
//congest:hotpath
func HotGrow(buf []int, n int) []int {
	if n > cap(buf) {
		//congest:coldpath the grow path runs O(log) times per run
		buf = make([]int, n)
	}
	return buf
}

// Cold is unmarked: the same constructs are fine here.
func Cold(n int) []int {
	out := make([]int, n)
	return append(out, n)
}
