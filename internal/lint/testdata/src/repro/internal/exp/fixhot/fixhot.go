// Package fixhot exercises the hotalloc analyzer. It lives under
// internal/exp — outside the deterministic scope — so the goroutine spawn
// below is attributed to hotalloc alone; the analyzer itself is opt-in
// per function and runs everywhere.
package fixhot

// point is a small non-pointer-shaped value for boxing tests.
type point struct{ x int }

// sink accepts a boxed value.
func sink(v any) { _ = v }

// sinkAll accepts boxed values variadically.
func sinkAll(vs ...any) { _ = vs }

// Hot exercises every allocating construct inside one marked function.
//
//congest:hotpath
func Hot(n int) {
	f := func() {} // want "closure literal in a hot-path function"
	go f()         // want "goroutine spawn in a hot-path function"

	p := &point{x: n}           // want "heap-escaping composite literal"
	buf := make([]int, n)       // want "make in a hot-path function"
	q := new(point)             // want "new in a hot-path function"
	fresh := append([]int{}, n) // want "append to a fresh slice"

	sink(n) // want "argument to interface parameter"
	sink(p) // pointer-shaped: fits the interface word, no boxing

	sinkAll(n, p) // want "argument to interface parameter"

	v := any(n) // want "conversion to"
	var w any
	w = n // want "assignment to"

	_, _, _, _, _, _ = p, buf, q, fresh, v, w
}

// boxed is pre-boxed storage for the ellipsis-spread case.
var boxed []any

// HotSpread shows the ellipsis spread staying clean.
//
//congest:hotpath
func HotSpread() {
	sinkAll(boxed...)
}

// HotBox returns a value through an interface result.
//
//congest:hotpath
func HotBox(n int) any {
	return n // want "return into"
}

// HotGrow carves out its grow path with the coldpath directive.
//
//congest:hotpath
func HotGrow(buf []int, n int) []int {
	if n > cap(buf) {
		//congest:coldpath the grow path runs O(log) times per run
		buf = make([]int, n)
	}
	return buf
}

// Cold is unmarked: the same constructs are fine here.
func Cold(n int) []int {
	out := make([]int, n)
	return append(out, n)
}

// chainHelper has no annotation of its own; the v2 traversal from
// HotChain reaches it and attributes the finding to the root.
func chainHelper(n int) []int {
	return make([]int, n) // want "make in a hot-path function allocates.*reached from //congest:hotpath HotChain"
}

// HotChain extends the contract through an unannotated helper.
//
//congest:hotpath
func HotChain(n int) []int {
	return chainHelper(n)
}

// coldEmit is a sanctioned cold callee: its doc-level coldpath directive
// cuts the traversal, mirroring the engine's traced-only flow emitter.
//
//congest:coldpath
func coldEmit(n int) []int {
	return make([]int, n)
}

// HotWithColdCallee calls the cold emitter without findings.
//
//congest:hotpath
func HotWithColdCallee(n int) []int {
	return coldEmit(n)
}

// HotDeep starts a call chain that outruns the traversal bound: the
// depth-exceeded call is itself the finding.
//
//congest:hotpath
func HotDeep() { depth1() }

func depth1() { depth2() }
func depth2() { depth3() }
func depth3() { depth4() }
func depth4() { depth5() } // want "call to depth5 exceeds hotalloc's depth-4 traversal"
func depth5() {}
