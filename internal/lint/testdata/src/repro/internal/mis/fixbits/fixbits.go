// Package fixbits exercises the congestbits analyzer: every encoder-side
// violation of the CONGEST message-size contract. The kind namespace here
// is deliberately clean — unique tags from 10 up, one encoder and one
// decoder per kind — so the module-level wirekind analyzer stays quiet.
package fixbits

import "repro/internal/congest"

// Wire kind tags for the payloads under test.
const (
	// WireClean tags the well-formed payload.
	WireClean congest.WireKind = 10
	// WireNoBits tags the payload whose encoder omits Bits.
	WireNoBits congest.WireKind = 11
	// WireVarBits tags the payload whose size is not a constant.
	WireVarBits congest.WireKind = 12
	// WireZeroBits tags the payload that declares zero bits.
	WireZeroBits congest.WireKind = 13
	// WireHuge tags the payload that blows the budget.
	WireHuge congest.WireKind = 14
	// WireLiar tags the payload whose Bits() method disagrees.
	WireLiar congest.WireKind = 15
)

// Clean is well-formed: constant Bits within budget, agreeing with the
// documentation-level Bits() method.
type Clean struct{ V uint64 }

// Bits reports the payload size.
func (Clean) Bits() int { return 64 }

// Wire encodes Clean.
func (c Clean) Wire() congest.Wire { return congest.Wire{Kind: WireClean, Bits: 64, A: c.V} }

// AsClean decodes Clean.
func AsClean(w congest.Wire) (Clean, bool) {
	if w.Kind != WireClean {
		return Clean{}, false
	}
	return Clean{V: w.A}, true
}

// NoBits omits the Bits field, shipping size-0 messages past the meter.
type NoBits struct{}

// Wire encodes NoBits, badly.
func (NoBits) Wire() congest.Wire {
	return congest.Wire{Kind: WireNoBits} // want "does not declare Bits"
}

// AsNoBits decodes NoBits.
func AsNoBits(w congest.Wire) bool { return w.Kind == WireNoBits }

// VarBits declares a run-time size the static audit cannot bound.
type VarBits struct{ N uint16 }

// Wire encodes VarBits, badly.
func (v VarBits) Wire() congest.Wire {
	return congest.Wire{Kind: WireVarBits, Bits: v.N} // want "not a compile-time constant"
}

// AsVarBits decodes VarBits.
func AsVarBits(w congest.Wire) bool { return w.Kind == WireVarBits }

// ZeroBits declares an impossible zero-bit payload.
type ZeroBits struct{}

// Wire encodes ZeroBits, badly.
func (ZeroBits) Wire() congest.Wire {
	return congest.Wire{Kind: WireZeroBits, Bits: 0} // want "at least one bit"
}

// AsZeroBits decodes ZeroBits.
func AsZeroBits(w congest.Wire) bool { return w.Kind == WireZeroBits }

// Huge declares more bits than the congest.MaxWireBits budget.
type Huge struct{}

// Wire encodes Huge, badly.
func (Huge) Wire() congest.Wire {
	return congest.Wire{Kind: WireHuge, Bits: 256} // want "exceeding the congest.MaxWireBits"
}

// AsHuge decodes Huge.
func AsHuge(w congest.Wire) bool { return w.Kind == WireHuge }

// Liar declares one size on the wire and another in its Bits() method.
type Liar struct{}

// Bits reports a size the encoder contradicts.
func (Liar) Bits() int { return 32 }

// Wire encodes Liar, badly.
func (Liar) Wire() congest.Wire {
	return congest.Wire{Kind: WireLiar, Bits: 16} // want "the two declarations must agree"
}

// AsLiar decodes Liar.
func AsLiar(w congest.Wire) bool { return w.Kind == WireLiar }
