// Package fixwire exercises the wirekind analyzer: tag-value rules,
// encoder/decoder coverage, and kind-switch validation. Every encoder
// declares a legal constant Bits so the congestbits analyzer stays quiet;
// its violations live in the fixbits fixture.
package fixwire

import "repro/internal/congest"

// Wire kind tags under test. Tags 1-3 are reserved by this package;
// fixbits uses 10 and up so the module-wide uniqueness check only fires
// where this file intends it to.
const (
	// WireZero breaks the tags-start-at-1 rule.
	WireZero congest.WireKind = 0 // want "has non-positive tag 0"
	// WireGood is fully wired: one encoder, one decoder.
	WireGood congest.WireKind = 1
	// WireDup collides with WireGood.
	WireDup congest.WireKind = 1 // want "duplicate wire kind tag 1"
	// WireOrphan has neither an encoder nor a decoder.
	WireOrphan congest.WireKind = 2 // want "has no Wire\\(\\) encoder" "has no As\\* decoder"
	// WireTwice is claimed by two encoders.
	WireTwice congest.WireKind = 3 // want "is set by 2 Wire\\(\\) encoders"
)

// Good is the well-formed payload.
type Good struct{ V uint64 }

// Wire encodes Good.
func (g Good) Wire() congest.Wire {
	return congest.Wire{Kind: WireGood, Bits: 64, A: g.V}
}

// AsGood decodes Good.
func AsGood(w congest.Wire) (Good, bool) {
	if w.Kind != WireGood {
		return Good{}, false
	}
	return Good{V: w.A}, true
}

// Twice1 is the first claimant of WireTwice.
type Twice1 struct{}

// Wire encodes Twice1.
func (Twice1) Wire() congest.Wire { return congest.Wire{Kind: WireTwice, Bits: 8} }

// Twice2 is the second claimant of WireTwice.
type Twice2 struct{}

// Wire encodes Twice2.
func (Twice2) Wire() congest.Wire { return congest.Wire{Kind: WireTwice, Bits: 8} }

// AsTwice decodes the contested kind.
func AsTwice(w congest.Wire) bool { return w.Kind == WireTwice }

// Kindless forgets the Kind field, shipping detectably-invalid zero.
type Kindless struct{}

// Wire encodes Kindless, badly.
func (Kindless) Wire() congest.Wire {
	return congest.Wire{Bits: 8} // want "builds a congest.Wire without setting Kind"
}

// Rogue sets Kind to a conversion instead of a declared constant, so the
// namespace audit cannot see which kind it claims.
type Rogue struct{}

// Wire encodes Rogue, badly.
func (Rogue) Wire() congest.Wire {
	return congest.Wire{Kind: congest.WireKind(9), Bits: 8} // want "not a declared wire kind constant"
}

// Indirect builds its record elsewhere, so the kind cannot be audited.
type Indirect struct{}

// Wire encodes Indirect through a helper.
func (Indirect) Wire() congest.Wire { // want "never builds a congest.Wire literal"
	return passthrough()
}

// passthrough launders a record built by a real encoder.
func passthrough() congest.Wire { return Good{V: 1}.Wire() }

// Name switches over declared kinds plus one rogue label.
func Name(k congest.WireKind) string {
	switch k {
	case WireGood:
		return "good"
	case congest.WireKind(42): // want "kind-switch case .* is not a declared wire kind constant"
		return "rogue"
	}
	return ""
}

// Registry claims exhaustiveness but covers one kind.
func Registry(k congest.WireKind) string {
	//wirekind:exhaustive
	switch k { // want "is missing"
	case WireGood:
		return "good"
	}
	return ""
}
