// Package fixmap exercises the maprange analyzer: bare map iteration is
// flagged, the collect-then-sort idiom and the clear builtin are not, and
// the advisory escape applies.
package fixmap

import "sort"

// Sum iterates a map directly; its result is order-insensitive but the
// analyzer cannot know that, so the loop is flagged.
func Sum(m map[int]int) int {
	total := 0
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}

// Keys is the sanctioned collect-then-sort idiom: the body only appends,
// and the caller-visible order comes from the sort.
func Keys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Reset clears with the builtin instead of a delete-loop.
func Reset(m map[int]int) {
	clear(m)
}

// Observed carries a documented advisory iteration.
func Observed(m map[int]int) int {
	n := 0
	//lint:advisory fixture: pure count, order-insensitive by construction
	for range m {
		n++
	}
	return n
}
