// Package fixid exercises the idspace analyzer: internal (permuted)
// vertex IDs must not reach external surfaces — annotated fields, error
// strings, annotated parameters — without the ext translation, and
// external IDs must not index internal-order tables.
package fixid

import "fmt"

// Event mirrors a trace record: vertex identities are external.
type Event struct {
	//idspace:external
	V int32
}

// State mirrors the engine's layout tables.
type State struct {
	//idspace:index internal
	//idspace:external
	ext []int
	//idspace:internal
	order []int
}

// ExtID translates an internal ID to its external identity — the one
// sanctioned crossing.
//
//idspace:internal v
//idspace:returns external
func (s *State) ExtID(v int) int {
	if s.ext == nil {
		return v //idspace:ok identity layout: internal and external IDs coincide
	}
	return s.ext[v]
}

// Consult mimics a fault-plan consult that takes external IDs.
//
//idspace:external v
func Consult(v int) {}

// Leak stores an internal ID everywhere it must not go.
func Leak(s *State) (Event, error) {
	v := s.order[0]
	e := Event{V: int32(v)}                       // want "internal-space ID stored into field V"
	Consult(v)                                    // want "internal-space ID passed to parameter declared //idspace:external of Consult"
	err := fmt.Errorf("vertex %d misbehaved", v)  // want "internal .permuted. vertex ID reaches an error string"
	return e, err
}

// Alias indexes the translation table with an external ID.
func Alias(s *State, e Event) int {
	return s.ext[int(e.V)] // want "external-space ID indexes ext, declared //idspace:index internal"
}

// Backwards returns the wrong space from a declared translator.
//
//idspace:internal v
//idspace:returns external
func Backwards(v int) int {
	return v + 1 // want "returning an internal-space ID from Backwards"
}

// Sanctioned goes through the translator and draws no findings.
func Sanctioned(s *State) Event {
	return Event{V: int32(s.ExtID(s.order[0]))}
}
