// Package fixdet exercises the determinism analyzer: each construct the
// bit-identical-replay contract forbids, plus every shape of the
// //lint:advisory escape hatch. The package sits under internal/mis, so
// the deterministic scope binds it.
package fixdet

import (
	"math/rand" // want "deterministic package imports math/rand"
	"sync/atomic"
	"time"
)

// counter exists so the method form of atomics can be exercised; the
// declaration itself is legal, only operations are flagged.
var counter atomic.Int64

// Draw reads the two state sources a seed cannot replay.
func Draw() int64 {
	now := time.Now() // want "call of time.Now in a deterministic package"
	return rand.Int63() + now.Unix()
}

// Spawn forks concurrency the seed does not schedule.
func Spawn(work func()) {
	go work() // want "goroutine spawn in a deterministic package"
}

// Count uses atomics both as package functions and as methods.
func Count(p *int64) int64 {
	atomic.AddInt64(p, 1) // want "sync/atomic operation AddInt64 in a deterministic package"
	return counter.Add(1) // want "sync/atomic operation Add in a deterministic package"
}

// SameLine exercises the same-line advisory escape.
func SameLine() time.Time {
	return time.Now() //lint:advisory fixture: documented advisory clock read
}

// LineAbove exercises the line-above advisory escape.
func LineAbove(work func()) {
	//lint:advisory fixture: scheduling here is documented as invisible
	go work()
}

// DocEscape exercises the function-doc advisory escape: both findings
// inside are suppressed by the single directive below.
//
//lint:advisory fixture: the whole function is advisory instrumentation
func DocEscape() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
