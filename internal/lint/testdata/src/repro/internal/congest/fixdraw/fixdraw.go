// Package fixdraw exercises the draworder analyzer: rng.RNG draws must
// be unreachable from worker contexts — goroutines spawned in the
// engine scope and functions rooted //draworder:worker — unless a
// //draworder:coordinator cut sanctions the path. It lives under
// internal/congest so its goroutines count as worker contexts.
package fixdraw

import "repro/internal/rng"

// stream stands in for an engine-owned RNG stream that worker code must
// not touch.
var stream = rng.New(1)

// BadGoroutine spawns a worker that draws from the shared stream. The
// goroutine spawn itself is advisory-escaped (determinism is not the
// analyzer under test here); the draw inside is the draworder finding.
func BadGoroutine() {
	done := make(chan struct{})
	go func() { //lint:advisory fixture goroutine; draworder is the analyzer under test
		defer close(done)
		_ = stream.Uint64() // want "Uint64 draw reachable from worker context"
	}()
	<-done
}

// Sweep mimics a remote-driven worker entry point: no local `go`
// statement spawns it, so the doc directive roots the traversal.
//
//draworder:worker
func Sweep() {
	helper()
	coordinatorOnly()
	pureUse()
}

// helper hides the draw one call below the root.
func helper() {
	deeper()
}

// deeper draws from the shared stream, two frames below the root.
func deeper() {
	_ = stream.Intn(7) // want "Intn draw reachable from worker context"
}

// coordinatorOnly asserts it only ever runs coordinator-side; the
// analyzer holds it to nothing further.
//
//draworder:coordinator
func coordinatorOnly() {
	_ = stream.Uint64()
}

// pureUse touches only the sanctioned pure methods.
func pureUse() {
	child := stream.Split(3)
	_ = child.Draws()
}
