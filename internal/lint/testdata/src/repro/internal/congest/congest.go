// Package congest is the fixture tree's stand-in for the real engine
// package. The wirekind and congestbits analyzers match the Wire and
// WireKind type names by their package's "internal/congest" path suffix,
// so the fixtures can exercise the wire contracts against this skeleton
// without importing (or depending on the shape of) the real engine.
package congest

// Wire mirrors the engine's value-typed payload record.
type Wire struct {
	// Kind tags the payload family; zero is invalid.
	Kind WireKind
	// Bits is the payload's declared encoded size.
	Bits uint16
	// A and B are the payload words.
	A, B uint64
}

// WireKind tags the payload family packed into a Wire.
type WireKind uint8

// MaxWireBits mirrors the engine's O(log n) CONGEST budget.
const MaxWireBits = 128
