// Package distrib is the fixture tree's stand-in for the multi-process
// frame codec. The framecodec analyzer triggers on any package that
// declares a frameKind type, so these skeleton declarations exercise
// the closed-namespace, one-encoder-per-kind, and bit-bound contracts
// without the real transport.
package distrib

import "repro/internal/congest"

// frameKind tags a frame payload.
type frameKind uint8

// The tag namespace: fkZero, fkDup and fkOrphan are the deliberate
// violations; fkTwice is encoded twice below.
const (
	fkConfig frameKind = 1
	fkRound  frameKind = 2
	fkOrphan frameKind = 3 // want "frame kind fkOrphan is never encoded"
	fkTwice  frameKind = 4 // want "frame kind fkTwice is encoded by 2 reset calls"
	fkZero   frameKind = 0 // want "frame kind fkZero has non-positive tag 0"
	fkDup    frameKind = 2 // want "duplicate frame kind tag 2: fkDup collides with fkRound"
)

// encoder mirrors the real codec's frame builder.
type encoder struct {
	kind frameKind
	buf  []byte
}

// reset starts a frame of the given kind.
func (e *encoder) reset(k frameKind) {
	e.kind = k
	e.buf = e.buf[:0]
}

// encodeConfig builds a config frame.
func encodeConfig(e *encoder) { e.reset(fkConfig) }

// encodeRound builds a round frame.
func encodeRound(e *encoder) { e.reset(fkRound) }

// encodeTwiceA and encodeTwiceB both claim the same kind.
func encodeTwiceA(e *encoder) { e.reset(fkTwice) }
func encodeTwiceB(e *encoder) { e.reset(fkTwice) }

// encodeComputed passes a computed kind the audit cannot track.
func encodeComputed(e *encoder, k frameKind) {
	e.reset(k + 1) // want "is not a declared frame kind constant"
}

// String names the kind; the switch is the canonical registry the
// exhaustive marker holds to the full namespace.
func (k frameKind) String() string {
	//framecodec:exhaustive
	switch k { // want "frame-kind switch marked //framecodec:exhaustive is missing fkOrphan"
	case fkConfig:
		return "config"
	case fkRound:
		return "round"
	case fkTwice:
		return "twice"
	case 9: // want "frame-kind switch case 9 is not a declared frame kind constant"
		return "mystery"
	default:
		return "?"
	}
}

// decodeGood stores a bit size bounded by the engine's budget.
func decodeGood(v uint64) congest.Wire {
	var w congest.Wire
	if v > congest.MaxWireBits {
		return w
	}
	w.Bits = uint16(v)
	return w
}

// decodeUnguarded stores an unchecked bit size.
func decodeUnguarded(v uint64) congest.Wire {
	var w congest.Wire
	w.Bits = uint16(v) // want "without a preceding"
	return w
}

// decodeLoose bounds against the wrong budget.
func decodeLoose(v uint64) congest.Wire {
	var w congest.Wire
	if v > 65535 { // want "frame bit-size bound 65535 is looser than congest.MaxWireBits = 128"
		return w
	}
	w.Bits = uint16(v)
	return w
}

// decodeConst stores an over-budget constant.
func decodeConst() congest.Wire {
	var w congest.Wire
	w.Bits = 4096 // want "Wire.Bits set to constant 4096, exceeding"
	return w
}

// decodeOpaque stores an expression the analyzer cannot bound.
func decodeOpaque(v uint64) congest.Wire {
	var w congest.Wire
	w.Bits = uint16(v + 1) // want "cannot bound"
	return w
}
