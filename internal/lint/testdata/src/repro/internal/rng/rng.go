// Package rng is the fixture tree's stand-in for the real splittable
// generator. The draworder analyzer matches the RNG type by its
// package's "internal/rng" path suffix, so the fixtures can exercise
// the draw-order contract without importing the real generator.
package rng

// RNG mirrors the real generator's method surface: Split and Draws are
// pure, everything else is a draw.
type RNG struct {
	state uint64
	n     uint64
}

// New derives a root stream from seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent child stream; pure, not a draw.
func (r *RNG) Split(i uint64) *RNG { return &RNG{state: r.state ^ i} }

// Draws reads the draw counter; pure, not a draw.
func (r *RNG) Draws() uint64 { return r.n }

// Uint64 draws 64 bits.
func (r *RNG) Uint64() uint64 {
	r.n++
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state
}

// Intn draws an integer in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Uint64() % uint64(n)) }
