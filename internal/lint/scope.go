package lint

import "strings"

// Analyzer scoping: which packages the determinism contract binds.
//
// Two levels decide whether restricted constructs (wall clocks,
// math/rand, atomics, goroutines, map iteration) are flagged:
//
//  1. Package scope. Packages on the deterministic list below carry the
//     repo's bit-identical-replay contract: the engine, every MIS/matching
//     protocol, the dynamic-MIS maintainer, the distributed fleet
//     transport, the graph/forest/shatter
//     substrate, the splittable RNG,
//     the fault planner, the trace subsystem's deterministic event
//     machinery, and the paper's read-k accounting. Benchmark and
//     experiment infrastructure (internal/exp), binaries (cmd/...), and
//     examples are exempt: they may time, sample, and parallelize freely
//     because nothing replays them.
//  2. File scope. _test.go files are never loaded or analyzed: tests
//     may use math/rand and wall clocks to generate adversarial inputs,
//     and the runtime suites (cross-driver matrices, pinned fingerprints)
//     already catch a test that breaks determinism where it matters.
//
// New packages land in the right bucket by path: anything under
// internal/ is deterministic unless listed in exemptScopes; top-level
// cmd/ and examples/ trees are always exempt. DESIGN.md documents the
// same rules prose-side.

// deterministicScopes lists module-relative path prefixes bound by the
// determinism contract. A prefix covers the package and its subtree.
var deterministicScopes = []string{
	"internal/congest",
	"internal/core",
	"internal/distrib",
	"internal/dynmis",
	"internal/faultsim",
	"internal/forest",
	"internal/gen",
	"internal/graph",
	"internal/layout",
	"internal/matching",
	"internal/mis",
	"internal/readk",
	"internal/rng",
	"internal/shatter",
	"internal/stats",
	"internal/trace",
}

// exemptScopes lists module-relative path prefixes that are never
// deterministic, even if a deterministic prefix would otherwise cover
// them. internal/lint itself is exempt: the analyzers run offline, not
// inside a replayed execution.
var exemptScopes = []string{
	"internal/exp",
	"internal/lint",
	"cmd",
	"examples",
}

// underScope reports whether rel is path or inside its subtree.
func underScope(rel, path string) bool {
	return rel == path || strings.HasPrefix(rel, path+"/")
}

// Deterministic reports whether the package at pkgPath is bound by the
// determinism contract.
func (m *Module) Deterministic(pkgPath string) bool {
	rel := m.Rel(pkgPath)
	for _, e := range exemptScopes {
		if underScope(rel, e) {
			return false
		}
	}
	for _, d := range deterministicScopes {
		if underScope(rel, d) {
			return true
		}
	}
	return false
}
