package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FramecodecAnalyzer closes the distrib transport's frame-kind namespace,
// mirroring what wirekind does for congest.Wire payloads one layer up:
// the multi-process fleet speaks length-prefixed frames whose first
// payload byte is a frameKind tag, and a tag mixup desynchronizes the
// whole protocol rather than one message. For any package declaring a
// frameKind type the analyzer enforces:
//
//   - every frameKind constant has a positive, unique tag (zero stays
//     detectably invalid);
//   - every kind is encoded by exactly one encoder.reset(kind) call, and
//     reset is only ever given a declared kind constant;
//   - switches over a frameKind value use only declared constants as
//     labels, and a switch marked //framecodec:exhaustive (the canonical
//     String registry) enumerates every kind;
//   - decoded payload sizes respect the CONGEST contract: an assignment
//     `w.Bits = uint16(v)` to a congest.Wire's Bits field must be
//     dominated by a constant bound check `if v > K` with K no larger
//     than congest.MaxWireBits, so a corrupt or malicious frame cannot
//     smuggle an over-budget bit size past the engine's metering.
var FramecodecAnalyzer = &Analyzer{
	Name: "framecodec",
	Doc:  "the distrib frame-kind namespace is closed and frame bit sizes respect congest.MaxWireBits",
	Run:  runFramecodec,
}

func runFramecodec(pass *Pass) {
	pkg := pass.Pkg
	kindType := frameKindType(pkg)
	if kindType == nil {
		return
	}
	kinds := collectFrameKinds(pkg, kindType)
	byObj := make(map[*types.Const]*kindConst, len(kinds))
	for i := range kinds {
		byObj[kinds[i].obj] = &kinds[i]
	}

	// Tag values: positive and unique within the namespace.
	bad := make(map[*types.Const]bool)
	firstByValue := make(map[int64]*kindConst)
	for i := range kinds {
		k := &kinds[i]
		val := constInt(k.obj)
		if val <= 0 {
			pass.Reportf(k.pkg, k.pos,
				"frame kind %s has non-positive tag %d; tags start at 1 so a zeroed frame is detectably corrupt",
				k.obj.Name(), val)
			bad[k.obj] = true
			continue
		}
		if prev, ok := firstByValue[val]; ok {
			pass.Reportf(k.pkg, k.pos,
				"duplicate frame kind tag %d: %s collides with %s",
				val, k.obj.Name(), prev.obj.Name())
			bad[k.obj] = true
			continue
		}
		firstByValue[val] = k
	}

	resets := make(map[*types.Const]int)
	for _, file := range pkg.Files {
		scanFrameResets(pass, pkg, file, kindType, byObj, resets)
		scanFrameSwitches(pass, pkg, file, kindType, kinds, byObj, bad)
		scanBitsBounds(pass, pkg, file)
	}
	for i := range kinds {
		k := &kinds[i]
		if bad[k.obj] {
			continue
		}
		switch resets[k.obj] {
		case 0:
			pass.Reportf(k.pkg, k.pos,
				"frame kind %s is never encoded: no encoder.reset(%s) call", k.obj.Name(), k.obj.Name())
		case 1:
		default:
			pass.Reportf(k.pkg, k.pos,
				"frame kind %s is encoded by %d reset calls; frame payloads and kinds must map one-to-one",
				k.obj.Name(), resets[k.obj])
		}
	}
}

// frameKindType returns the package's defined frameKind type, if it
// declares one with an integer underlying type.
func frameKindType(pkg *Package) *types.Named {
	if pkg.Types == nil {
		return nil
	}
	tn, ok := pkg.Types.Scope().Lookup("frameKind").(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	if basic, ok := named.Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	return named
}

// collectFrameKinds gathers the package's frameKind constants in
// declaration-position order.
func collectFrameKinds(pkg *Package, kindType *types.Named) []kindConst {
	var kinds []kindConst
	for ident, obj := range pkg.Info.Defs {
		c, ok := obj.(*types.Const)
		if !ok || c.Type() != kindType {
			continue
		}
		kinds = append(kinds, kindConst{obj: c, pkg: pkg, pos: ident.Pos()})
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].pos < kinds[j].pos })
	return kinds
}

// scanFrameResets audits every encoder reset call: the kind argument
// must be a declared constant, and the per-kind counts feed the
// one-encoder-per-kind check.
func scanFrameResets(pass *Pass, pkg *Package, file *ast.File, kindType *types.Named, byObj map[*types.Const]*kindConst, resets map[*types.Const]int) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "reset" {
			return true
		}
		if pkg.Info.TypeOf(call.Args[0]) != kindType {
			return true
		}
		c := resolveConst(pkg, call.Args[0])
		if c == nil || byObj[c] == nil {
			pass.Reportf(pkg, call.Args[0].Pos(),
				"encoder reset with %s, which is not a declared frame kind constant; the encoded kind cannot be audited",
				exprString(call.Args[0]))
			return true
		}
		resets[c]++
		return true
	})
}

// scanFrameSwitches validates switches over a frameKind value: labels
// must be declared kinds, and //framecodec:exhaustive switches must
// enumerate every kind not already reported as bad.
func scanFrameSwitches(pass *Pass, pkg *Package, file *ast.File, kindType *types.Named, kinds []kindConst, byObj map[*types.Const]*kindConst, bad map[*types.Const]bool) {
	ast.Inspect(file, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil || pkg.Info.TypeOf(sw.Tag) != kindType {
			return true
		}
		present := make(map[*types.Const]bool)
		for _, clause := range sw.Body.List {
			cc, ok := clause.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, expr := range cc.List {
				c := resolveConst(pkg, expr)
				if c == nil || byObj[c] == nil {
					pass.Reportf(pkg, expr.Pos(),
						"frame-kind switch case %s is not a declared frame kind constant", exprString(expr))
					continue
				}
				present[c] = true
			}
		}
		if pkg.markedAt(pass.Module, sw.Pos(), DirFrameExhaustive) {
			var missing []string
			for i := range kinds {
				if !present[kinds[i].obj] && !bad[kinds[i].obj] {
					missing = append(missing, kinds[i].obj.Name())
				}
			}
			if len(missing) > 0 {
				pass.Reportf(pkg, sw.Pos(),
					"frame-kind switch marked %s is missing %s", DirFrameExhaustive, strings.Join(missing, ", "))
			}
		}
		return true
	})
}

// scanBitsBounds audits Wire.Bits assignments in the frame codec: a
// decoded bit size must pass a constant bound check no looser than
// congest.MaxWireBits before it is stored.
func scanBitsBounds(pass *Pass, pkg *Package, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.SelectorExpr)
		if !ok || lhs.Sel.Name != "Bits" || !isCongestWire(pkg.Info.TypeOf(lhs.X)) {
			return true
		}
		bound := maxWireBits(pkg.Info.TypeOf(lhs.X))
		src := bitsSourceVar(pkg, as.Rhs[0])
		if src == nil {
			// A constant RHS is auditable directly; anything else is not.
			if tv, ok := pkg.Info.Types[as.Rhs[0]]; ok && tv.Value != nil {
				if v := constTVInt(tv); v > bound {
					pass.Reportf(pkg, as.Rhs[0].Pos(),
						"Wire.Bits set to constant %d, exceeding the congest.MaxWireBits = %d budget", v, bound)
				}
				return true
			}
			pass.Reportf(pkg, as.Rhs[0].Pos(),
				"Wire.Bits assigned from an expression the analyzer cannot bound; assign uint16(v) with v checked against congest.MaxWireBits first")
			return true
		}
		guard, guardPos := bitsGuardBound(pkg, as, src)
		switch {
		case guardPos == token.NoPos:
			pass.Reportf(pkg, as.Pos(),
				"Wire.Bits = uint16(%s) without a preceding `if %s > K` bound check; a corrupt frame length defeats the CONGEST metering",
				src.Name(), src.Name())
		case guard > bound:
			pass.Reportf(pkg, guardPos,
				"frame bit-size bound %d is looser than congest.MaxWireBits = %d; the decoder must agree with the engine's budget",
				guard, bound)
		}
		return true
	})
}

// bitsSourceVar unwraps `uint16(v)` to the variable v, or nil when the
// RHS has another shape.
func bitsSourceVar(pkg *Package, expr ast.Expr) *types.Var {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	if tv, ok := pkg.Info.Types[call.Fun]; !ok || !tv.IsType() {
		return nil
	}
	ident, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pkg.Info.Uses[ident].(*types.Var)
	return v
}

// bitsGuardBound finds the nearest `if src > K` (or `K < src`) constant
// bound check preceding the assignment in its enclosing function and
// returns K. A guard is only credited when it precedes the store.
func bitsGuardBound(pkg *Package, assign *ast.AssignStmt, src *types.Var) (bound int64, pos token.Pos) {
	fd := pkg.enclosingFunc(assign.Pos())
	if fd == nil {
		return 0, token.NoPos
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Pos() >= assign.Pos() {
			return true
		}
		cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok {
			return true
		}
		var varSide, constSide ast.Expr
		switch cond.Op {
		case token.GTR: // src > K
			varSide, constSide = cond.X, cond.Y
		case token.LSS: // K < src
			varSide, constSide = cond.Y, cond.X
		default:
			return true
		}
		ident, ok := ast.Unparen(varSide).(*ast.Ident)
		if !ok || pkg.Info.Uses[ident] != src {
			return true
		}
		tv, ok := pkg.Info.Types[constSide]
		if !ok || tv.Value == nil {
			return true
		}
		bound, pos = constTVInt(tv), constSide.Pos()
		return true
	})
	return bound, pos
}
