package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expectation is one `// want "regexp"` annotation in a fixture file.
type expectation struct {
	file    string // module-relative, matching Diagnostic.File
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// wantToken extracts the quoted regexps after a `// want` marker.
var wantToken = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// parseWants scans every fixture file for want annotations.
func parseWants(t *testing.T, srcRoot string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.Walk(srcRoot, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(srcRoot, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(data), "\n") {
			_, after, found := strings.Cut(line, "// want ")
			if !found {
				continue
			}
			tokens := wantToken.FindAllString(after, -1)
			if len(tokens) == 0 {
				return fmt.Errorf("%s:%d: malformed want comment %q", rel, i+1, line)
			}
			for _, tok := range tokens {
				pattern, err := strconv.Unquote(tok)
				if err != nil {
					return fmt.Errorf("%s:%d: unquoting %s: %v", rel, i+1, tok, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					return fmt.Errorf("%s:%d: compiling %q: %v", rel, i+1, pattern, err)
				}
				wants = append(wants, &expectation{file: rel, line: i + 1, pattern: pattern, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("parsing want annotations: %v", err)
	}
	if len(wants) == 0 {
		t.Fatalf("no want annotations under %s", srcRoot)
	}
	return wants
}

// TestFixtures runs the full suite over the fixture tree and checks the
// findings against the want annotations, in both directions: every
// diagnostic must be wanted, and every want must be hit.
func TestFixtures(t *testing.T) {
	m, err := LoadTree("testdata/src", "repro")
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	diags, suppressed := Run(m, Suite())
	wants := parseWants(t, "testdata/src")

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}

	// The escapes must be suppressed, not silently dropped: the advisory
	// escapes in fixdet (4: same-line, line-above, and a two-finding
	// function doc), fixmap (1), and fixdraw's goroutine spawn (1), plus
	// fixid's //idspace:ok identity-return escape (1).
	if want := 7; suppressed != want {
		t.Errorf("suppressed = %d, want %d", suppressed, want)
	}
}

// TestFixtureDeterministicOutput runs the suite twice over fresh loads
// and demands byte-identical reports: analyzer output order is part of
// the tool's contract (diffable CI logs, stable baselines).
func TestFixtureDeterministicOutput(t *testing.T) {
	render := func() string {
		m, err := LoadTree("testdata/src", "repro")
		if err != nil {
			t.Fatalf("LoadTree: %v", err)
		}
		diags, _ := Run(m, Suite())
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString(d.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	first, second := render(), render()
	if first != second {
		t.Errorf("two runs disagree:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestOnlySubsetOfSuite checks analyzers run independently: the
// determinism analyzer alone must produce only determinism findings.
func TestOnlySubsetOfSuite(t *testing.T) {
	m, err := LoadTree("testdata/src", "repro")
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	diags, _ := Run(m, []*Analyzer{DeterminismAnalyzer})
	if len(diags) == 0 {
		t.Fatal("determinism alone found nothing")
	}
	for _, d := range diags {
		if d.Analyzer != "determinism" {
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
		if !strings.HasPrefix(d.File, "repro/internal/mis/fixdet/") {
			t.Errorf("determinism finding outside fixdet: %s", d)
		}
	}
}
