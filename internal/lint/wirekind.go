package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WirekindAnalyzer closes the wire-kind namespace. Wire payloads travel
// the engine as value-typed congest.Wire records whose Kind tag is the
// only dispatch information a receiver has, so the tag space must be
// airtight: every declared congest.WireKind constant must be non-zero
// (zero is the detectably-invalid value), unique module-wide, encoded by
// exactly one Wire() method, and decodable by at least one As* function.
// Switches over a WireKind value may only use declared kind constants as
// case labels, and a switch marked //wirekind:exhaustive (the canonical
// kind registries, e.g. proto.KindName) must enumerate every declared
// kind.
var WirekindAnalyzer = &Analyzer{
	Name:        "wirekind",
	Doc:         "wire-kind tags are unique, encoded, decoded, and switched exhaustively",
	ModuleLevel: true,
	Run:         runWirekind,
}

// isCongestNamed reports whether t is the named type name declared in an
// internal/congest package (matched by path suffix so analyzer fixtures
// can supply a stand-in congest package).
func isCongestNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		(obj.Pkg().Path() == "congest" || strings.HasSuffix(obj.Pkg().Path(), "internal/congest"))
}

func isWireKind(t types.Type) bool    { return t != nil && isCongestNamed(t, "WireKind") }
func isCongestWire(t types.Type) bool { return t != nil && isCongestNamed(t, "Wire") }
func constInt(c *types.Const) int64   { v, _ := constant.Int64Val(constant.ToInt(c.Val())); return v }

// constTVInt extracts the int value of a constant expression's
// TypeAndValue.
func constTVInt(tv types.TypeAndValue) int64 {
	v, _ := constant.Int64Val(constant.ToInt(tv.Value))
	return v
}
func constLabel(c *types.Const) string { return c.Pkg().Name() + "." + c.Name() }

// kindConst is one declared wire-kind constant.
type kindConst struct {
	obj *types.Const
	pkg *Package
	pos token.Pos
}

func runWirekind(pass *Pass) {
	kinds := collectKindConsts(pass.Module)
	if len(kinds) == 0 {
		return
	}
	byObj := make(map[*types.Const]*kindConst, len(kinds))
	for i := range kinds {
		byObj[kinds[i].obj] = &kinds[i]
	}

	// Tag values: non-zero and unique module-wide. Kinds that fail here
	// are excluded from the encoder/decoder/exhaustiveness checks below —
	// one actionable finding per broken constant, not a cascade.
	bad := make(map[*types.Const]bool)
	firstByValue := make(map[int64]*kindConst)
	for i := range kinds {
		k := &kinds[i]
		val := constInt(k.obj)
		if val <= 0 {
			pass.Reportf(k.pkg, k.pos,
				"wire kind %s has non-positive tag %d; tags start at 1 so the zero Wire is detectably invalid",
				constLabel(k.obj), val)
			bad[k.obj] = true
			continue
		}
		if prev, ok := firstByValue[val]; ok {
			pass.Reportf(k.pkg, k.pos,
				"duplicate wire kind tag %d: %s collides with %s",
				val, constLabel(k.obj), constLabel(prev.obj))
			bad[k.obj] = true
			continue
		}
		firstByValue[val] = k
	}

	encoders := make(map[*types.Const]int)
	decoded := make(map[*types.Const]bool)
	for _, pkg := range pass.Module.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				switch {
				case isWireEncoder(pkg, fd):
					scanEncoder(pass, pkg, fd, byObj, encoders)
				case isWireDecoder(pkg, fd):
					markDecoded(pkg, fd, byObj, decoded)
				}
			}
			scanKindSwitches(pass, pkg, file, kinds, byObj, bad)
		}
	}

	for i := range kinds {
		k := &kinds[i]
		if bad[k.obj] {
			continue
		}
		label := constLabel(k.obj)
		switch encoders[k.obj] {
		case 0:
			pass.Reportf(k.pkg, k.pos, "wire kind %s has no Wire() encoder setting it as Kind", label)
		case 1:
		default:
			pass.Reportf(k.pkg, k.pos, "wire kind %s is set by %d Wire() encoders; payload types and kinds must map one-to-one",
				label, encoders[k.obj])
		}
		if !decoded[k.obj] {
			pass.Reportf(k.pkg, k.pos, "wire kind %s has no As* decoder checking for it", label)
		}
	}
}

// collectKindConsts gathers every congest.WireKind constant declared in
// the module, in deterministic (package, position) order.
func collectKindConsts(m *Module) []kindConst {
	var kinds []kindConst
	for _, pkg := range m.Pkgs {
		for ident, obj := range pkg.Info.Defs {
			c, ok := obj.(*types.Const)
			if !ok || !isWireKind(c.Type()) {
				continue
			}
			kinds = append(kinds, kindConst{obj: c, pkg: pkg, pos: ident.Pos()})
		}
	}
	sort.Slice(kinds, func(i, j int) bool {
		if kinds[i].pkg.Path != kinds[j].pkg.Path {
			return kinds[i].pkg.Path < kinds[j].pkg.Path
		}
		return kinds[i].pos < kinds[j].pos
	})
	return kinds
}

// isWireEncoder reports whether fd is a `func (T) Wire() congest.Wire`
// method.
func isWireEncoder(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Wire" || fd.Recv == nil || fd.Type.Results == nil ||
		len(fd.Type.Results.List) != 1 {
		return false
	}
	return isCongestWire(pkg.Info.TypeOf(fd.Type.Results.List[0].Type))
}

// isWireDecoder reports whether fd is an `As*` package function taking a
// congest.Wire parameter.
func isWireDecoder(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "As") || fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isCongestWire(pkg.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// scanEncoder inspects one Wire() method: its congest.Wire composite
// literals must set Kind to a declared kind constant.
func scanEncoder(pass *Pass, pkg *Package, fd *ast.FuncDecl, byObj map[*types.Const]*kindConst, encoders map[*types.Const]int) {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || !isCongestWire(pkg.Info.TypeOf(lit)) {
			return true
		}
		found = true
		kindExpr := fieldValue(lit, "Kind")
		if kindExpr == nil {
			pass.Reportf(pkg, lit.Pos(), "Wire() encoder builds a congest.Wire without setting Kind")
			return true
		}
		c := resolveConst(pkg, kindExpr)
		if c == nil || byObj[c] == nil {
			pass.Reportf(pkg, kindExpr.Pos(), "Wire() encoder sets Kind to %s, which is not a declared wire kind constant",
				exprString(kindExpr))
			return true
		}
		encoders[c]++
		return true
	})
	if !found {
		pass.Reportf(pkg, fd.Pos(), "Wire() encoder never builds a congest.Wire literal; the kind it encodes cannot be audited")
	}
}

// markDecoded records every declared kind constant an As* decoder
// references (typically `if w.Kind != WireFoo`).
func markDecoded(pkg *Package, fd *ast.FuncDecl, byObj map[*types.Const]*kindConst, decoded map[*types.Const]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if c := resolveConst(pkg, expr); c != nil && byObj[c] != nil {
			decoded[c] = true
		}
		return true
	})
}

// scanKindSwitches validates every switch over a WireKind value in file:
// case labels must be declared kind constants, and //wirekind:exhaustive
// switches must cover every kind not already reported as bad.
func scanKindSwitches(pass *Pass, pkg *Package, file *ast.File, kinds []kindConst, byObj map[*types.Const]*kindConst, bad map[*types.Const]bool) {
	ast.Inspect(file, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil || !isWireKind(pkg.Info.TypeOf(sw.Tag)) {
			return true
		}
		present := make(map[*types.Const]bool)
		for _, clause := range sw.Body.List {
			cc, ok := clause.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, expr := range cc.List {
				c := resolveConst(pkg, expr)
				if c == nil || byObj[c] == nil {
					pass.Reportf(pkg, expr.Pos(),
						"kind-switch case %s is not a declared wire kind constant", exprString(expr))
					continue
				}
				present[c] = true
			}
		}
		if pkg.markedAt(pass.Module, sw.Pos(), DirExhaustive) {
			var missing []string
			for i := range kinds {
				if !present[kinds[i].obj] && !bad[kinds[i].obj] {
					missing = append(missing, constLabel(kinds[i].obj))
				}
			}
			if len(missing) > 0 {
				pass.Reportf(pkg, sw.Pos(),
					"kind-switch marked %s is missing %s", DirExhaustive, strings.Join(missing, ", "))
			}
		}
		return true
	})
}

// fieldValue returns the value of the named field in a keyed composite
// literal, or nil if absent.
func fieldValue(lit *ast.CompositeLit, name string) ast.Expr {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == name {
			return kv.Value
		}
	}
	return nil
}

// resolveConst resolves an identifier or selector expression to the
// constant object it names, unwrapping conversions like WireKind(x).
func resolveConst(pkg *Package, expr ast.Expr) *types.Const {
	switch e := expr.(type) {
	case *ast.Ident:
		c, _ := pkg.Info.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := pkg.Info.Uses[e.Sel].(*types.Const)
		return c
	case *ast.ParenExpr:
		return resolveConst(pkg, e.X)
	}
	return nil
}

// exprString renders a short expression for diagnostics.
func exprString(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("%T", expr)
	}
}
