package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Comment directives recognized by the suite. They use Go's directive
// comment form (`//tool:verb`, no space after `//`), so gofmt preserves
// them and godoc hides them.
const (
	// DirAdvisory suppresses findings: on the finding's line or the line
	// above it, or in the enclosing function's doc comment, it marks code
	// whose nondeterminism is documented as advisory-only (wall-clock
	// driver timings, Prometheus metrics). Suppressed findings are counted
	// and reported in misvet's summary so escapes stay visible.
	DirAdvisory = "//lint:advisory"
	// DirHotpath marks a function (doc comment) as part of the
	// zero-allocation message hot path; hotalloc analyzes only marked
	// functions.
	DirHotpath = "//congest:hotpath"
	// DirColdpath marks a statement (same line or the line above) inside a
	// hot-path function as a cold branch — error construction, buffer
	// growth — that hotalloc skips.
	DirColdpath = "//congest:coldpath"
	// DirExhaustive marks a wire-kind switch (same line or the line above)
	// that must enumerate every declared kind constant.
	DirExhaustive = "//wirekind:exhaustive"
)

// commentIndex maps filename -> line -> comment texts starting on that
// line, for O(1) "is there a directive at/above this position" checks.
type commentIndex map[string]map[int][]string

// commentsAt returns the comment texts recorded for the file at line.
func (p *Package) commentsAt(m *Module, file string, line int) []string {
	if p.comments == nil {
		p.comments = make(commentIndex)
		for _, f := range p.Files {
			name := m.Fset.Position(f.FileStart).Filename
			byLine := make(map[int][]string)
			for _, group := range f.Comments {
				for _, c := range group.List {
					l := m.Fset.Position(c.Pos()).Line
					byLine[l] = append(byLine[l], c.Text)
				}
			}
			p.comments[name] = byLine
		}
	}
	return p.comments[file][line]
}

// markedAt reports whether a directive comment sits on pos's line or the
// line directly above it.
func (p *Package) markedAt(m *Module, pos token.Pos, directive string) bool {
	position := m.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, text := range p.commentsAt(m, position.Filename, line) {
			if strings.HasPrefix(text, directive) {
				return true
			}
		}
	}
	return false
}

// docHas reports whether a declaration's doc comment carries a directive.
func docHas(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// enclosingFunc returns the function declaration containing pos, if any.
func (p *Package) enclosingFunc(pos token.Pos) *ast.FuncDecl {
	for _, f := range p.Files {
		if pos < f.FileStart || pos > f.FileEnd {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}

// advisoryAt reports whether pos is covered by an advisory escape: a
// line-level //lint:advisory, or one in the enclosing function's doc.
func (p *Package) advisoryAt(m *Module, pos token.Pos) bool {
	if p == nil {
		return false
	}
	if p.markedAt(m, pos, DirAdvisory) {
		return true
	}
	fd := p.enclosingFunc(pos)
	return fd != nil && docHas(fd.Doc, DirAdvisory)
}
