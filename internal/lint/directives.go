package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Comment directives recognized by the suite. They use Go's directive
// comment form (`//tool:verb`, no space after `//`), so gofmt preserves
// them and godoc hides them.
const (
	// DirAdvisory suppresses findings: on the finding's line or the line
	// above it, or in the enclosing function's doc comment, it marks code
	// whose nondeterminism is documented as advisory-only (wall-clock
	// driver timings, Prometheus metrics). Suppressed findings are counted
	// and reported in misvet's summary so escapes stay visible.
	DirAdvisory = "//lint:advisory"
	// DirHotpath marks a function (doc comment) as part of the
	// zero-allocation message hot path; hotalloc analyzes only marked
	// functions.
	DirHotpath = "//congest:hotpath"
	// DirColdpath marks a statement (same line or the line above) inside a
	// hot-path function as a cold branch — error construction, buffer
	// growth — that hotalloc skips. On a function's doc comment it marks
	// the whole function as a sanctioned cold callee: hotalloc's
	// interprocedural traversal does not follow calls into it.
	DirColdpath = "//congest:coldpath"
	// DirExhaustive marks a wire-kind switch (same line or the line above)
	// that must enumerate every declared kind constant.
	DirExhaustive = "//wirekind:exhaustive"

	// DirIdspaceInternal declares ID-space membership for the idspace
	// analyzer: on a struct field it marks the field's values (a slice
	// field's elements) as internal (permuted) vertex IDs; on a function
	// or interface-method doc it takes parameter names
	// (`//idspace:internal v w`) and marks those parameters.
	DirIdspaceInternal = "//idspace:internal"
	// DirIdspaceExternal is the external (original, user-visible) ID
	// counterpart of DirIdspaceInternal.
	DirIdspaceExternal = "//idspace:external"
	// DirIdspaceIndex, on a slice/array struct field, declares which ID
	// space may index it: `//idspace:index internal` or
	// `//idspace:index external`. A field may carry both an index-space
	// and an element-space directive (e.g. the perm table is indexed by
	// external IDs and stores internal ones).
	DirIdspaceIndex = "//idspace:index"
	// DirIdspaceReturns, on a function doc, declares the space of the
	// (single) result: `//idspace:returns external`.
	DirIdspaceReturns = "//idspace:returns"
	// DirIdspaceOK suppresses an idspace finding on its line or the line
	// above, for flows the analyzer cannot see are safe (the identity
	// layout's extID returning its argument unchanged). Suppressions are
	// counted in misvet's summary like advisory escapes.
	DirIdspaceOK = "//idspace:ok"

	// DirWorker marks a function (doc comment) as running in a worker /
	// per-shard context even though no `go` statement spawns it directly
	// (the distrib ShardWorker methods, driven from a remote process);
	// draworder treats it as a traversal root.
	DirWorker = "//draworder:worker"
	// DirCoordinator marks a function (doc comment) as coordinator-side
	// by contract: draworder does not traverse into it even when a worker
	// path appears to call it.
	DirCoordinator = "//draworder:coordinator"

	// DirFrameExhaustive marks a frame-kind switch (same line or the line
	// above) that must enumerate every declared frame kind constant.
	DirFrameExhaustive = "//framecodec:exhaustive"
)

// directiveArgs matches text against a directive and returns its
// space-separated arguments. The match is exact-or-spaced: "//idspace:ok"
// matches "//idspace:ok" and "//idspace:ok reason...", but a directive
// that merely shares a prefix ("//idspace:index" vs "//idspace:internal")
// does not match.
func directiveArgs(text, directive string) ([]string, bool) {
	if !strings.HasPrefix(text, directive) {
		return nil, false
	}
	rest := text[len(directive):]
	if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
		return nil, false
	}
	return strings.Fields(rest), true
}

// commentIndex maps filename -> line -> comment texts starting on that
// line, for O(1) "is there a directive at/above this position" checks.
type commentIndex map[string]map[int][]string

// commentsAt returns the comment texts recorded for the file at line.
func (p *Package) commentsAt(m *Module, file string, line int) []string {
	if p.comments == nil {
		p.comments = make(commentIndex)
		for _, f := range p.Files {
			name := m.Fset.Position(f.FileStart).Filename
			byLine := make(map[int][]string)
			for _, group := range f.Comments {
				for _, c := range group.List {
					l := m.Fset.Position(c.Pos()).Line
					byLine[l] = append(byLine[l], c.Text)
				}
			}
			p.comments[name] = byLine
		}
	}
	return p.comments[file][line]
}

// markedAt reports whether a directive comment sits on pos's line or the
// line directly above it.
func (p *Package) markedAt(m *Module, pos token.Pos, directive string) bool {
	position := m.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, text := range p.commentsAt(m, position.Filename, line) {
			if strings.HasPrefix(text, directive) {
				return true
			}
		}
	}
	return false
}

// docHas reports whether a declaration's doc comment carries a directive.
func docHas(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// enclosingFunc returns the function declaration containing pos, if any.
func (p *Package) enclosingFunc(pos token.Pos) *ast.FuncDecl {
	for _, f := range p.Files {
		if pos < f.FileStart || pos > f.FileEnd {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}

// advisoryAt reports whether pos is covered by an advisory escape: a
// line-level //lint:advisory, or one in the enclosing function's doc.
func (p *Package) advisoryAt(m *Module, pos token.Pos) bool {
	if p == nil {
		return false
	}
	if p.markedAt(m, pos, DirAdvisory) {
		return true
	}
	fd := p.enclosingFunc(pos)
	return fd != nil && docHas(fd.Doc, DirAdvisory)
}
