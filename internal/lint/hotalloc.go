package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotallocAnalyzer guards the zero-allocation message hot path. The
// engine's steady-state round — send, scatter, deliver — performs zero
// heap allocations, an invariant the AllocsPerRun gates enforce at
// runtime; this analyzer enforces it structurally so a refactor cannot
// reintroduce an allocation that the gate only catches later (or only on
// a code path the gate's workload misses).
//
// Functions opt in with a //congest:hotpath doc-comment directive.
// Inside a marked function the analyzer flags the constructs that
// allocate (or defeat escape analysis):
//
//   - closures (func literals) and goroutine spawns,
//   - make and new calls,
//   - heap-escaping composite literals (&T{...}),
//   - append to a fresh slice (nil, composite-literal, or make operand),
//   - implicit interface conversions of non-pointer values — call
//     arguments, assignments, returns, and explicit conversions — which
//     box their operand.
//
// v2 is interprocedural: from each marked root the analyzer follows
// statically-resolved in-module callees (depth-bounded), so a helper
// extracted from the send/scatter path is held to the same contract even
// without its own annotation. Callees marked //congest:hotpath are their
// own roots and are skipped; a callee whose doc carries
// //congest:coldpath is a sanctioned cold cut (the traced-only
// flow-summary emitter); dynamic calls — interface methods, func values —
// cut naturally. A chain deeper than the traversal bound is itself a
// finding: annotate the callee so the contract stays visible.
//
// Cold branches inside a hot function — error construction, grow paths —
// are exempted statement-by-statement with //congest:coldpath, keeping
// the escape visible and narrow.
var HotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "//congest:hotpath functions, and the callees they reach, contain no allocating constructs",
	Run:  runHotalloc,
}

// hotCallDepth bounds the callee traversal from each hot-path root. The
// engine's real chains are depth ≤ 2 (deliver → drainShardEvents →
// noteFlow); the bound exists so a pathological call web cannot stall
// the analyzer, and exceeding it is reported rather than ignored.
const hotCallDepth = 4

func runHotalloc(pass *Pass) {
	pkg := pass.Pkg
	h := &hotWalker{pass: pass, cg: pass.Module.callGraph(), visited: make(map[*types.Func]bool)}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !docHas(fd.Doc, DirHotpath) {
				continue
			}
			h.walk(hotFrame{
				pkg:  pkg,
				sig:  pkg.Info.Defs[fd.Name].Type().(*types.Signature),
				root: fd.Name.Name,
			}, fd.Body)
		}
	}
}

type hotWalker struct {
	pass    *Pass
	cg      *callGraph
	visited map[*types.Func]bool // callees traversed this pass, walked once
}

// hotFrame is the per-body traversal context: the package the body lives
// in (directives and type info are per-package), the body's own signature
// (for returns), the traversal depth, and the hot-path root for callee
// diagnostics.
type hotFrame struct {
	pkg   *Package
	sig   *types.Signature
	depth int
	root  string
}

// reportf emits a finding; findings inside traversed callees name the
// hot-path root that reaches them.
func (h *hotWalker) reportf(f hotFrame, pos token.Pos, format string, args ...any) {
	if f.depth > 0 {
		format += " (reached from //congest:hotpath %s)"
		args = append(args, f.root)
	}
	h.pass.Reportf(f.pkg, pos, format, args...)
}

func (h *hotWalker) walk(f hotFrame, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool { return h.visit(f, n) })
}

func (h *hotWalker) visit(f hotFrame, n ast.Node) bool {
	if n == nil {
		return false
	}
	if stmt, ok := n.(ast.Stmt); ok && f.pkg.markedAt(h.pass.Module, stmt.Pos(), DirColdpath) {
		return false // cold branch: skip the whole subtree
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		h.reportf(f, n.Pos(), "closure literal in a hot-path function allocates; hoist it out of the hot path")
		return false
	case *ast.GoStmt:
		h.reportf(f, n.Pos(), "goroutine spawn in a hot-path function allocates a stack per call")
		return true
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				h.reportf(f, n.Pos(), "heap-escaping composite literal (&T{...}) in a hot-path function")
			}
		}
	case *ast.CallExpr:
		h.checkCall(f, n)
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			if i >= len(n.Rhs) {
				break // x, y = f() — conversion happens at the call result, skip
			}
			if n.Tok == token.DEFINE {
				continue // defines take the RHS type verbatim; no conversion
			}
			h.checkConversion(f, n.Rhs[i], f.pkg.Info.TypeOf(lhs), "assignment to")
		}
	case *ast.ReturnStmt:
		results := f.sig.Results()
		if len(n.Results) == results.Len() {
			for i, res := range n.Results {
				h.checkConversion(f, res, results.At(i).Type(), "return into")
			}
		}
	}
	return true
}

// checkCall flags allocating builtins and implicit interface conversions
// at call boundaries, then follows statically-resolved in-module callees.
func (h *hotWalker) checkCall(f hotFrame, call *ast.CallExpr) {
	// Builtins: make/new allocate; append to a fresh slice allocates.
	if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := f.pkg.Info.Uses[ident].(*types.Builtin); isBuiltin {
			switch ident.Name {
			case "make", "new":
				h.reportf(f, call.Pos(), "%s in a hot-path function allocates; reuse a preallocated buffer", ident.Name)
			case "append":
				if len(call.Args) > 0 && freshSlice(f.pkg, call.Args[0]) {
					h.reportf(f, call.Pos(), "append to a fresh slice in a hot-path function allocates; append to a reused, grow-only buffer")
				}
			}
			return
		}
	}
	tv, ok := f.pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x): boxing if T is an interface.
		if len(call.Args) == 1 {
			h.checkConversion(f, call.Args[0], tv.Type, "conversion to")
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // arg is already the []T; no per-element conversion
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		h.checkConversion(f, arg, paramType, "argument to interface parameter of")
	}
	h.followCallee(f, call)
}

// followCallee extends the hot-path contract through a non-annotated
// in-module callee.
func (h *hotWalker) followCallee(f hotFrame, call *ast.CallExpr) {
	fn := staticCallee(f.pkg, call)
	if fn == nil {
		return // func value or builtin: dynamic, cut
	}
	site, ok := h.cg.decls[fn]
	if !ok {
		return // interface method or out-of-module: cut
	}
	if docHas(site.fd.Doc, DirHotpath) {
		return // its own root; analyzed (and reported) independently
	}
	if docHas(site.fd.Doc, DirColdpath) {
		return // sanctioned cold callee (e.g. the traced-only flow emitter)
	}
	if h.visited[fn] {
		return
	}
	if f.depth >= hotCallDepth {
		h.reportf(f, call.Pos(),
			"call to %s exceeds hotalloc's depth-%d traversal; annotate it //congest:hotpath or //congest:coldpath so the contract stays auditable",
			fn.Name(), hotCallDepth)
		return
	}
	h.visited[fn] = true
	h.walk(hotFrame{
		pkg:   site.pkg,
		sig:   fn.Type().(*types.Signature),
		depth: f.depth + 1,
		root:  f.root,
	}, site.fd.Body)
}

// checkConversion reports expr being converted to target when that
// conversion boxes: target is an interface, expr's static type is a
// concrete non-pointer-shaped value (pointers, channels, maps, and funcs
// fit the interface word and do not allocate).
func (h *hotWalker) checkConversion(f hotFrame, expr ast.Expr, target types.Type, context string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := f.pkg.Info.Types[expr]
	if !ok || tv.IsNil() || tv.Type == nil || types.IsInterface(tv.Type) {
		return
	}
	if pointerShaped(tv.Type) {
		return
	}
	h.reportf(f, expr.Pos(),
		"%s %s boxes a %s value in a hot-path function; interface conversions of non-pointer values allocate",
		context, target, tv.Type)
}

// pointerShaped reports whether values of t fit an interface's data word
// without boxing.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// freshSlice reports whether expr denotes a slice that did not exist
// before this statement: nil, a composite literal, or a make call.
func freshSlice(pkg *Package, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if ident, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && ident.Name == "make" {
			_, isBuiltin := pkg.Info.Uses[ident].(*types.Builtin)
			return isBuiltin
		}
	case *ast.Ident:
		if tv, ok := pkg.Info.Types[e]; ok && tv.IsNil() {
			return true
		}
	}
	return false
}
