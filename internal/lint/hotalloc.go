package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotallocAnalyzer guards the zero-allocation message hot path. The
// engine's steady-state round — send, scatter, deliver — performs zero
// heap allocations, an invariant the AllocsPerRun gates enforce at
// runtime; this analyzer enforces it structurally so a refactor cannot
// reintroduce an allocation that the gate only catches later (or only on
// a code path the gate's workload misses).
//
// Functions opt in with a //congest:hotpath doc-comment directive.
// Inside a marked function the analyzer flags the constructs that
// allocate (or defeat escape analysis):
//
//   - closures (func literals) and goroutine spawns,
//   - make and new calls,
//   - heap-escaping composite literals (&T{...}),
//   - append to a fresh slice (nil, composite-literal, or make operand),
//   - implicit interface conversions of non-pointer values — call
//     arguments, assignments, returns, and explicit conversions — which
//     box their operand.
//
// Cold branches inside a hot function — error construction, grow paths —
// are exempted statement-by-statement with //congest:coldpath, keeping
// the escape visible and narrow.
var HotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions marked //congest:hotpath contain no allocating constructs",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !docHas(fd.Doc, DirHotpath) {
				continue
			}
			h := &hotWalker{pass: pass, pkg: pkg, sig: pkg.Info.Defs[fd.Name].Type().(*types.Signature)}
			ast.Inspect(fd.Body, h.visit)
		}
	}
}

type hotWalker struct {
	pass *Pass
	pkg  *Package
	sig  *types.Signature // the hot function's own signature, for returns
}

func (h *hotWalker) visit(n ast.Node) bool {
	if n == nil {
		return false
	}
	if stmt, ok := n.(ast.Stmt); ok && h.pkg.markedAt(h.pass.Module, stmt.Pos(), DirColdpath) {
		return false // cold branch: skip the whole subtree
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		h.pass.Reportf(h.pkg, n.Pos(), "closure literal in a hot-path function allocates; hoist it out of the hot path")
		return false
	case *ast.GoStmt:
		h.pass.Reportf(h.pkg, n.Pos(), "goroutine spawn in a hot-path function allocates a stack per call")
		return true
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				h.pass.Reportf(h.pkg, n.Pos(), "heap-escaping composite literal (&T{...}) in a hot-path function")
			}
		}
	case *ast.CallExpr:
		h.checkCall(n)
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			if i >= len(n.Rhs) {
				break // x, y = f() — conversion happens at the call result, skip
			}
			if n.Tok == token.DEFINE {
				continue // defines take the RHS type verbatim; no conversion
			}
			h.checkConversion(n.Rhs[i], h.pkg.Info.TypeOf(lhs), "assignment to")
		}
	case *ast.ReturnStmt:
		results := h.sig.Results()
		if len(n.Results) == results.Len() {
			for i, res := range n.Results {
				h.checkConversion(res, results.At(i).Type(), "return into")
			}
		}
	}
	return true
}

// checkCall flags allocating builtins and implicit interface conversions
// at call boundaries.
func (h *hotWalker) checkCall(call *ast.CallExpr) {
	// Builtins: make/new allocate; append to a fresh slice allocates.
	if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := h.pkg.Info.Uses[ident].(*types.Builtin); isBuiltin {
			switch ident.Name {
			case "make", "new":
				h.pass.Reportf(h.pkg, call.Pos(), "%s in a hot-path function allocates; reuse a preallocated buffer", ident.Name)
			case "append":
				if len(call.Args) > 0 && freshSlice(h.pkg, call.Args[0]) {
					h.pass.Reportf(h.pkg, call.Pos(), "append to a fresh slice in a hot-path function allocates; append to a reused, grow-only buffer")
				}
			}
			return
		}
	}
	tv, ok := h.pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x): boxing if T is an interface.
		if len(call.Args) == 1 {
			h.checkConversion(call.Args[0], tv.Type, "conversion to")
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // arg is already the []T; no per-element conversion
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		h.checkConversion(arg, paramType, "argument to interface parameter of")
	}
}

// checkConversion reports expr being converted to target when that
// conversion boxes: target is an interface, expr's static type is a
// concrete non-pointer-shaped value (pointers, channels, maps, and funcs
// fit the interface word and do not allocate).
func (h *hotWalker) checkConversion(expr ast.Expr, target types.Type, context string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := h.pkg.Info.Types[expr]
	if !ok || tv.IsNil() || tv.Type == nil || types.IsInterface(tv.Type) {
		return
	}
	if pointerShaped(tv.Type) {
		return
	}
	h.pass.Reportf(h.pkg, expr.Pos(),
		"%s %s boxes a %s value in a hot-path function; interface conversions of non-pointer values allocate",
		context, target, tv.Type)
}

// pointerShaped reports whether values of t fit an interface's data word
// without boxing.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// freshSlice reports whether expr denotes a slice that did not exist
// before this statement: nil, a composite literal, or a make call.
func freshSlice(pkg *Package, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if ident, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && ident.Name == "make" {
			_, isBuiltin := pkg.Info.Uses[ident].(*types.Builtin)
			return isBuiltin
		}
	case *ast.Ident:
		if tv, ok := pkg.Info.Types[e]; ok && tv.IsNil() {
			return true
		}
	}
	return false
}
