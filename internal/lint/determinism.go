package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DeterminismAnalyzer enforces the core replay contract inside
// deterministic packages: no wall-clock reads, no math/rand, no
// sync/atomic operations whose results could feed program logic, and no
// goroutine spawns. Every driver must replay a run bit-identically from
// the seed alone; each of these constructs injects state the seed does
// not control.
//
// Escapes: the pool driver's wall-clock shard timings and the Prometheus
// metric plumbing are documented as advisory-only and carry
// //lint:advisory directives at their use sites (see directives.go).
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now/math/rand/sync-atomic/goroutines in deterministic packages",
	Run:  runDeterminism,
}

// forbiddenTimeFuncs are the wall-clock and timer entry points of package
// time. Pure types and constants (time.Duration, time.Microsecond) stay
// allowed: they denominate advisory metrics without reading a clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// forbiddenRandImports are the stdlib random sources; internal/rng is the
// only sanctioned randomness (splittable, seeded, draw-counted).
var forbiddenRandImports = map[string]bool{
	"math/rand": true, "math/rand/v2": true,
}

func runDeterminism(pass *Pass) {
	pkg := pass.Pkg
	if !pass.Module.Deterministic(pkg.Path) {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				if path, err := strconv.Unquote(n.Path.Value); err == nil && forbiddenRandImports[path] {
					pass.Reportf(pkg, n.Pos(),
						"deterministic package imports %s; draw randomness from internal/rng streams instead", path)
				}
			case *ast.GoStmt:
				pass.Reportf(pkg, n.Pos(),
					"goroutine spawn in a deterministic package: scheduling order is not controlled by the run seed")
			case *ast.SelectorExpr:
				fn, ok := pkg.Info.Uses[n.Sel].(*types.Func)
				if !ok {
					return true
				}
				switch {
				case fn.Pkg() != nil && fn.Pkg().Path() == "time" && forbiddenTimeFuncs[fn.Name()]:
					pass.Reportf(pkg, n.Pos(),
						"call of time.%s in a deterministic package: wall-clock values are not replayable from the seed", fn.Name())
				case isAtomicOp(fn):
					pass.Reportf(pkg, n.Pos(),
						"sync/atomic operation %s in a deterministic package: atomics read cross-goroutine state the seed does not control", fn.Name())
				}
			}
			return true
		})
	}
}

// isAtomicOp reports whether fn is a sync/atomic package function or a
// method on one of its types (atomic.Int64.Load and friends).
func isAtomicOp(fn *types.Func) bool {
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}
