package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package's source directory.
	Dir string
	// Files holds the parsed non-test source files, sorted by filename.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info

	comments commentIndex // filename -> line -> comment texts, built lazily
}

// Module is a loaded, type-checked set of packages sharing one FileSet.
type Module struct {
	// Path is the module path ("repro"); scope decisions use paths
	// relative to it.
	Path string
	// Root is the module root directory diagnostics are relativized to.
	Root string
	Fset *token.FileSet
	// Pkgs are the analyzed packages in ascending import-path order.
	Pkgs []*Package

	byPath  map[string]*Package
	srcDirs map[string]string // module import path -> source dir
	loading map[string]bool   // import-cycle guard
	imp     types.Importer    // export-data importer for out-of-module deps
	typeErr []error
	cg      *callGraph // lazily-built declaration index (callgraph.go)
}

// Rel returns pkgPath relative to the module path ("" for the root
// package, the path unchanged when it is not under the module).
func (m *Module) Rel(pkgPath string) string {
	if pkgPath == m.Path {
		return ""
	}
	return strings.TrimPrefix(pkgPath, m.Path+"/")
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Module     *struct{ Path string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter builds a gc-export-data importer over the Export files
// `go list -export` reported. This is how misvet type-checks against the
// standard library without golang.org/x/tools: the toolchain's own
// compiled export data backs every out-of-module import.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q (not reported by go list -export)", path)
		}
		return os.Open(file)
	})
}

// LoadModule loads and type-checks every package of the Go module rooted
// at root (equivalent to `./...`). Test files are never loaded — see
// scope.go for the rationale. Out-of-module imports (the standard
// library) are resolved from compiler export data via `go list -export`,
// so loading needs no network and no third-party packages.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	listed, err := goList(root, "-e", "-export", "-json", "-deps", "./...")
	if err != nil {
		return nil, err
	}
	m := newModule(root)
	exports := make(map[string]string)
	for _, p := range listed {
		inModule := !p.Standard &&
			(strings.HasPrefix(p.Dir, root+string(filepath.Separator)) || p.Dir == root)
		if inModule {
			if p.Module != nil && m.Path == "" {
				m.Path = p.Module.Path
			}
			m.srcDirs[p.ImportPath] = p.Dir
		} else if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	if len(m.srcDirs) == 0 {
		return nil, fmt.Errorf("lint: no module packages found under %s", root)
	}
	if m.Path == "" {
		// Fallback: the shortest listed module import path is the root.
		for path := range m.srcDirs {
			if m.Path == "" || len(path) < len(m.Path) {
				m.Path = path
			}
		}
	}
	m.imp = exportImporter(m.Fset, exports)
	return m, m.loadAll()
}

// LoadTree loads every package under srcRoot, mapping directory paths to
// import paths verbatim (srcRoot/a/b -> import path "a/b"). It exists for
// the analyzer fixture tests, whose testdata trees mirror module layouts
// (testdata/src/repro/internal/... packages). modulePath scopes the tree
// the same way LoadModule's go.mod path does. Standard-library imports
// used by fixtures are resolved through `go list -export`.
func LoadTree(srcRoot, modulePath string) (*Module, error) {
	srcRoot, err := filepath.Abs(srcRoot)
	if err != nil {
		return nil, err
	}
	m := newModule(srcRoot)
	m.Path = modulePath
	if err := filepath.Walk(srcRoot, func(path string, info os.FileInfo, err error) error {
		if err != nil || !info.IsDir() {
			return err
		}
		files, err := sourceFiles(path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(srcRoot, path)
		if err != nil {
			return err
		}
		m.srcDirs[filepath.ToSlash(rel)] = path
		return nil
	}); err != nil {
		return nil, err
	}
	if len(m.srcDirs) == 0 {
		return nil, fmt.Errorf("lint: no packages under %s", srcRoot)
	}
	external, err := m.externalImports()
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	if len(external) > 0 {
		listed, err := goList(srcRoot, append([]string{"-e", "-export", "-json", "-deps"}, external...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	m.imp = exportImporter(m.Fset, exports)
	return m, m.loadAll()
}

func newModule(root string) *Module {
	return &Module{
		Root:    root,
		Fset:    token.NewFileSet(),
		byPath:  make(map[string]*Package),
		srcDirs: make(map[string]string),
		loading: make(map[string]bool),
	}
}

// sourceFiles lists dir's non-test .go files in sorted order.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// externalImports parses every tree package's imports and returns the
// ones no in-tree package provides (the standard-library dependencies).
func (m *Module) externalImports() ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, dir := range m.srcDirs {
		files, err := sourceFiles(dir)
		if err != nil {
			return nil, err
		}
		for _, file := range files {
			f, err := parser.ParseFile(m.Fset, file, nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, spec := range f.Imports {
				path, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if _, local := m.srcDirs[path]; local || path == "unsafe" || seen[path] {
					continue
				}
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// loadAll type-checks every source package in import-path order.
func (m *Module) loadAll() error {
	paths := make([]string, 0, len(m.srcDirs))
	for path := range m.srcDirs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if _, err := m.load(path); err != nil {
			return err
		}
	}
	// Recursive imports append dependencies before their importers;
	// restore import-path order so analysis and reports are stable.
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	if len(m.typeErr) > 0 {
		msgs := make([]string, 0, len(m.typeErr))
		for i, err := range m.typeErr {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(m.typeErr)-i))
				break
			}
			msgs = append(msgs, err.Error())
		}
		return fmt.Errorf("lint: type errors:\n%s", strings.Join(msgs, "\n"))
	}
	return nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// importPkg resolves one import: in-tree packages are type-checked from
// source (shared object identity with the analyzed packages), everything
// else comes from export data.
func (m *Module) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := m.srcDirs[path]; ok {
		p, err := m.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return m.imp.Import(path)
}

// load parses and type-checks one source package (memoized).
func (m *Module) load(path string) (*Package, error) {
	if p, ok := m.byPath[path]; ok {
		return p, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	dir := m.srcDirs[path]
	filenames, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(m.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: importerFunc(m.importPkg),
		Error: func(err error) {
			var te types.Error
			if errors.As(err, &te) && te.Soft {
				return
			}
			m.typeErr = append(m.typeErr, err)
		},
	}
	tpkg, _ := conf.Check(path, m.Fset, files, info)
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	m.byPath[path] = p
	m.Pkgs = append(m.Pkgs, p)
	return p, nil
}
