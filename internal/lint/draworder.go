package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DraworderAnalyzer proves randomness is consumed coordinator-side. The
// paper's read-k argument — and this repo's bit-identical fingerprints —
// hold because every rng.RNG draw happens in one global order: the
// coordinator draws fault fates in sender order, and per-vertex protocol
// draws come from streams pre-split per vertex. A draw reached from a
// worker goroutine or a per-shard context would consume from a shared
// stream in scheduling order, which no replay could reproduce.
//
// The analyzer roots at every worker context in internal/congest and
// internal/distrib: function literals and functions spawned by `go`
// statements, plus functions whose doc carries //draworder:worker (the
// distrib ShardWorker entry points, driven from a remote process rather
// than a local `go`). From each root it walks the static call graph and
// reports any reachable call of an rng.RNG drawing method (every method
// except the pure Split and Draws). Dynamic seams — interface methods
// such as protocol Node.Round, func values such as the worker factory —
// are cuts: per-vertex protocol draws behind Node.Round use the vertex's
// own split stream and are sanctioned. A function whose doc carries
// //draworder:coordinator is a contract-level cut: the caller asserts it
// only runs coordinator-side, and the analyzer holds it to nothing
// further.
var DraworderAnalyzer = &Analyzer{
	Name:        "draworder",
	Doc:         "rng.RNG draws are unreachable from worker goroutines and per-shard contexts",
	ModuleLevel: true,
	Run:         runDraworder,
}

// draworderScopes are the module-relative subtrees whose goroutines count
// as worker contexts: the engine's drivers and the multi-process fleet.
var draworderScopes = []string{"internal/congest", "internal/distrib"}

func runDraworder(pass *Pass) {
	cg := pass.Module.callGraph()
	d := &drawWalker{pass: pass, cg: cg, visited: make(map[*types.Func]bool)}
	for _, pkg := range pass.Module.Pkgs {
		if !d.inScope(pkg) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if docHas(fd.Doc, DirWorker) {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						d.walkFunc(fn, fd.Name.Name)
					}
					continue
				}
				// Functions spawned with `go` root at the go statement.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					root := fd.Name.Name + "'s goroutine"
					if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
						d.walkBody(pkg, lit.Body, root)
						return false // walkBody covers nested go statements
					}
					if fn := staticCallee(pkg, g.Call); fn != nil {
						d.walkFunc(fn, root)
					}
					return true
				})
			}
		}
	}
}

type drawWalker struct {
	pass    *Pass
	cg      *callGraph
	visited map[*types.Func]bool
}

func (d *drawWalker) inScope(pkg *Package) bool {
	rel := d.pass.Module.Rel(pkg.Path)
	for _, s := range draworderScopes {
		if underScope(rel, s) {
			return true
		}
	}
	return false
}

// walkFunc traverses into a declared function reachable from a worker
// context, unless it is a sanctioned coordinator cut or already visited.
func (d *drawWalker) walkFunc(fn *types.Func, root string) {
	site, ok := d.cg.decls[fn]
	if !ok || d.visited[fn] {
		return // interface method, out-of-module, or already covered
	}
	d.visited[fn] = true
	if docHas(site.fd.Doc, DirCoordinator) {
		return
	}
	d.walkBody(site.pkg, site.fd.Body, root)
}

// walkBody scans one body for draw calls and follows static callees.
// Function literals nested in a worker body run in the worker context and
// are scanned in place.
func (d *drawWalker) walkBody(pkg *Package, body *ast.BlockStmt, root string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pkg, call)
		if fn == nil {
			return true
		}
		if isRNGDraw(fn) {
			d.pass.Reportf(pkg, call.Pos(),
				"rng.RNG.%s draw reachable from worker context (%s); randomness must be drawn coordinator-side in global sender order",
				fn.Name(), root)
			return true
		}
		d.walkFunc(fn, root)
		return true
	})
}

// isRNGDraw reports whether fn is a drawing method of rng.RNG: any
// method except the pure Split (stream derivation) and Draws (counter
// read). The type is matched by package-path suffix so fixtures can
// supply a stand-in rng package.
func isRNGDraw(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "RNG" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path != "rng" && !strings.HasSuffix(path, "internal/rng") {
		return false
	}
	switch fn.Name() {
	case "Split", "Draws":
		return false
	}
	return true
}
