package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestScopeExhaustive pins scope.go's lists to the real module tree:
// every package directory under internal/ must be claimed by the
// deterministic or exempt scope list, so a new subsystem cannot land
// silently outside the determinism contract; and every listed scope
// must still exist on disk, so a renamed package cannot leave a stale
// entry matching nothing.
func TestScopeExhaustive(t *testing.T) {
	claimed := func(rel string) bool {
		for _, s := range exemptScopes {
			if underScope(rel, s) {
				return true
			}
		}
		for _, s := range deterministicScopes {
			if underScope(rel, s) {
				return true
			}
		}
		return false
	}

	entries, err := os.ReadDir("../../internal")
	if err != nil {
		t.Fatalf("reading internal/: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rel := "internal/" + e.Name()
		if !claimed(rel) {
			t.Errorf("%s is in neither deterministicScopes nor exemptScopes; classify it in scope.go", rel)
		}
	}

	for _, s := range append(append([]string(nil), deterministicScopes...), exemptScopes...) {
		info, err := os.Stat(filepath.Join("../..", s))
		if err != nil || !info.IsDir() {
			t.Errorf("scope entry %q does not name a directory in the module; remove or fix it in scope.go", s)
		}
	}
}
