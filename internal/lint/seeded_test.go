package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyModule clones the real module's buildable sources into a temp dir
// so a test can seed violations without touching the working tree. Test
// files, fixture trees, and result artifacts are skipped: the analyzers
// never load them and the copy stays cheap.
func copyModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	srcRoot := "../.."
	err := filepath.Walk(srcRoot, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(srcRoot, path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			switch info.Name() {
			case ".git", "testdata", "results":
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(root, rel), 0o755)
		}
		if rel != "go.mod" && (!strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go")) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(root, rel), data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module: %v", err)
	}
	return root
}

// mutate rewrites the first occurrence of anchor in path. A missing
// anchor fails loudly: it means the engine changed shape and the seeded
// violation no longer describes real code.
func mutate(t *testing.T, path, anchor, replacement string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, anchor) {
		t.Fatalf("%s: seeding anchor %q not found; update the seeded-violation test", path, anchor)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(s, anchor, replacement, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSeededViolations re-seeds the two leak shapes the interprocedural
// analyzers exist to prevent into a copy of the real module and asserts
// misvet's suite catches both: an internal (permuted) vertex ID reaching
// a trace event without the extID translation, and an engine RNG draw
// inside a pool worker goroutine. The module is clean before seeding
// (TestModuleClean), so every finding here is mutation-caused.
func TestSeededViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks a full module copy")
	}
	root := copyModule(t)

	// Seed A: drop the extID translation on deliver's drop event, leaking
	// the internal inbox slot into the trace stream.
	mutate(t, filepath.Join(root, "internal/congest/congest.go"),
		"W: int32(st.extID(a.to))", "W: int32(a.to)")

	// Seed B: draw from the coordinator-owned fault stream inside a pool
	// worker goroutine — randomness consumed in scheduling order.
	mutate(t, filepath.Join(root, "internal/congest/driver.go"),
		"for cmd := range start {",
		"for cmd := range start {\n\t\t\t\t_ = st.faults.Uint64()")

	m, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule on seeded copy: %v", err)
	}
	diags, _ := Run(m, Suite())
	var idspace, draworder int
	for _, d := range diags {
		switch d.Analyzer {
		case "idspace":
			idspace++
		case "draworder":
			draworder++
		default:
			t.Errorf("unexpected %s finding on seeded copy: %s", d.Analyzer, d)
		}
	}
	if idspace == 0 {
		t.Error("seeded internal-ID leak into a trace event not caught by idspace")
	}
	if draworder == 0 {
		t.Error("seeded worker-goroutine RNG draw not caught by draworder")
	}
}
