package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is a recorded set of accepted findings, used to adopt misvet
// on a codebase with pre-existing violations: baselined findings do not
// fail the run, so the debt can be burned down deliberately while new
// violations still break CI. Matching ignores line numbers — a baselined
// finding survives unrelated edits to its file — and is multiset-based:
// two identical findings need two baseline entries.
type Baseline struct {
	// Version guards the file format.
	Version int `json:"version"`
	// Findings are the accepted diagnostics (Line/Col are informational
	// and ignored during matching).
	Findings []Diagnostic `json:"findings"`
}

// baselineKey is the line-insensitive identity of a finding.
func baselineKey(d Diagnostic) string {
	return d.Analyzer + "\x00" + d.File + "\x00" + d.Message
}

// NewBaseline records the given findings as accepted.
func NewBaseline(diags []Diagnostic) *Baseline {
	b := &Baseline{Version: 1, Findings: append([]Diagnostic(nil), diags...)}
	sort.Slice(b.Findings, func(i, j int) bool {
		return baselineKey(b.Findings[i]) < baselineKey(b.Findings[j])
	})
	return b
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %v", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s has unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Write saves the baseline to path.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diags into findings not covered by the baseline (fresh),
// the number it absorbed, and the baseline entries that matched nothing
// (stale — the violation was fixed but the entry lingers, so burn-down
// accounting would silently overstate the remaining debt). A nil
// baseline absorbs nothing and has no stale entries.
func (b *Baseline) Filter(diags []Diagnostic) (fresh []Diagnostic, absorbed int, stale []Diagnostic) {
	if b == nil {
		return diags, 0, nil
	}
	budget := make(map[string]int, len(b.Findings))
	for _, d := range b.Findings {
		budget[baselineKey(d)]++
	}
	for _, d := range diags {
		key := baselineKey(d)
		if budget[key] > 0 {
			budget[key]--
			absorbed++
			continue
		}
		fresh = append(fresh, d)
	}
	// Whatever budget survives matching is stale; report the entries in
	// their recorded order so the output is stable.
	for _, d := range b.Findings {
		if key := baselineKey(d); budget[key] > 0 {
			budget[key]--
			stale = append(stale, d)
		}
	}
	return fresh, absorbed, stale
}
