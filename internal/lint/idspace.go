package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// IdspaceAnalyzer is a taint analysis over the two vertex-ID spaces the
// layout subsystem introduced: internal (permuted, cache-conscious
// storage order) and external (the caller's original labels, the only
// ones that may appear on user-visible surfaces). The runtime keeps the
// two apart with one sanctioned translation — extID, backed by the ext
// table — and the cross-driver fingerprint tests catch a mixup only when
// a non-identity layout happens to be exercised on the leaking path;
// this analyzer proves the separation per call site instead.
//
// Declarations opt in with directives (see directives.go): struct fields
// and parameters are annotated //idspace:internal or //idspace:external,
// translation tables additionally declare which space may index them
// (//idspace:index external), and translators declare their result space
// (//idspace:returns external). The analyzer then walks every function
// body with a flow-sensitive environment mapping locals to spaces and
// reports where a known-space value reaches a surface declared for the
// other space:
//
//   - assignments and composite literals writing an annotated field
//     (trace.Event's V/W are external; a raw loop index is not),
//   - arguments to annotated parameters (faultsim.Plan consults take
//     external IDs; enqueue takes internal slots),
//   - error strings — fmt.Errorf / fmt.Sprintf / errors.New arguments
//     must never be internal IDs,
//   - indexing an annotated table with the wrong space's ID,
//   - returning the wrong space from a declared translator.
//
// The lattice is deliberately lossy toward "unknown": arithmetic mixing
// a known ID with an offset keeps the space, but subtracting two IDs of
// the same space yields a width (unknown), and control-flow joins where
// branches disagree yield unknown. Unknown passes everywhere — the
// analyzer under-reports rather than guessing. The residual escape is
// //idspace:ok on the flagged line, for flows like the identity layout's
// `return v` where internal and external provably coincide; like
// advisory escapes, these are counted in misvet's summary.
var IdspaceAnalyzer = &Analyzer{
	Name:        "idspace",
	Doc:         "internal (permuted) vertex IDs never cross to external surfaces without extID, and vice versa",
	ModuleLevel: true,
	Run:         runIdspace,
}

// idSpace is the taint lattice: unknown passes every check.
type idSpace uint8

const (
	spaceUnknown idSpace = iota
	spaceInternal
	spaceExternal
)

func (s idSpace) String() string {
	switch s {
	case spaceInternal:
		return "internal"
	case spaceExternal:
		return "external"
	}
	return "unknown"
}

// parseSpace resolves a directive argument to a space.
func parseSpace(arg string) idSpace {
	switch arg {
	case "internal":
		return spaceInternal
	case "external":
		return spaceExternal
	}
	return spaceUnknown
}

// idspaceTables is the module-wide annotation index.
type idspaceTables struct {
	// fieldElem maps an annotated struct field to the space of its values
	// (a slice field's elements).
	fieldElem map[*types.Var]idSpace
	// fieldIndex maps an annotated slice/array field to the space allowed
	// to index it.
	fieldIndex map[*types.Var]idSpace
	// params maps a function (or interface method) to per-parameter
	// declared spaces, positionally; spaceUnknown means unannotated.
	params map[*types.Func][]idSpace
	// results maps a function to its declared single-result space.
	results map[*types.Func]idSpace
}

// fieldSpaces reads the idspace directives attached to a struct field's
// doc or trailing comment.
func fieldSpaces(field *ast.Field) (elem, index idSpace) {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if _, ok := directiveArgs(c.Text, DirIdspaceInternal); ok {
				elem = spaceInternal
			}
			if _, ok := directiveArgs(c.Text, DirIdspaceExternal); ok {
				elem = spaceExternal
			}
			if args, ok := directiveArgs(c.Text, DirIdspaceIndex); ok && len(args) > 0 {
				index = parseSpace(args[0])
			}
		}
	}
	return elem, index
}

// funcSpaces reads a function doc's idspace directives: named-parameter
// spaces and the declared result space.
func funcSpaces(doc *ast.CommentGroup, ft *ast.FuncType) (params []idSpace, result idSpace) {
	if doc == nil {
		return nil, spaceUnknown
	}
	byName := make(map[string]idSpace)
	for _, c := range doc.List {
		if args, ok := directiveArgs(c.Text, DirIdspaceInternal); ok {
			for _, name := range args {
				byName[name] = spaceInternal
			}
		}
		if args, ok := directiveArgs(c.Text, DirIdspaceExternal); ok {
			for _, name := range args {
				byName[name] = spaceExternal
			}
		}
		if args, ok := directiveArgs(c.Text, DirIdspaceReturns); ok && len(args) > 0 {
			result = parseSpace(args[0])
		}
	}
	if len(byName) == 0 {
		return nil, result
	}
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			params = append(params, spaceUnknown)
			continue
		}
		for _, name := range field.Names {
			params = append(params, byName[name.Name])
		}
	}
	return params, result
}

// buildIdspaceTables scans every package for annotated struct fields,
// interface methods, and function declarations.
func buildIdspaceTables(m *Module) *idspaceTables {
	tabs := &idspaceTables{
		fieldElem:  make(map[*types.Var]idSpace),
		fieldIndex: make(map[*types.Var]idSpace),
		params:     make(map[*types.Func][]idSpace),
		results:    make(map[*types.Func]idSpace),
	}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.StructType:
					for _, field := range n.Fields.List {
						elem, index := fieldSpaces(field)
						if elem == spaceUnknown && index == spaceUnknown {
							continue
						}
						for _, name := range field.Names {
							fv, ok := pkg.Info.Defs[name].(*types.Var)
							if !ok {
								continue
							}
							if elem != spaceUnknown {
								tabs.fieldElem[fv] = elem
							}
							if index != spaceUnknown {
								tabs.fieldIndex[fv] = index
							}
						}
					}
				case *ast.InterfaceType:
					for _, method := range n.Methods.List {
						ft, ok := method.Type.(*ast.FuncType)
						if !ok || len(method.Names) != 1 {
							continue
						}
						fn, ok := pkg.Info.Defs[method.Names[0]].(*types.Func)
						if !ok {
							continue
						}
						recordFuncSpaces(tabs, fn, method.Doc, ft)
					}
				case *ast.FuncDecl:
					if fn, ok := pkg.Info.Defs[n.Name].(*types.Func); ok {
						recordFuncSpaces(tabs, fn, n.Doc, n.Type)
					}
					return false // bodies are walked by the checker, not here
				}
				return true
			})
		}
	}
	return tabs
}

func recordFuncSpaces(tabs *idspaceTables, fn *types.Func, doc *ast.CommentGroup, ft *ast.FuncType) {
	params, result := funcSpaces(doc, ft)
	if params != nil {
		tabs.params[fn] = params
	}
	if result != spaceUnknown {
		tabs.results[fn] = result
	}
}

func runIdspace(pass *Pass) {
	tabs := buildIdspaceTables(pass.Module)
	if len(tabs.fieldElem) == 0 && len(tabs.params) == 0 &&
		len(tabs.results) == 0 && len(tabs.fieldIndex) == 0 {
		return
	}
	for _, pkg := range pass.Module.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				w := &idWalker{pass: pass, tabs: tabs, pkg: pkg, fn: fn,
					env: make(map[types.Object]idSpace)}
				w.bindParams(fd.Type, tabs.params[fn])
				w.stmts(fd.Body.List)
			}
		}
	}
}

// idWalker checks one function body with a flow-sensitive environment.
type idWalker struct {
	pass *Pass
	tabs *idspaceTables
	pkg  *Package
	fn   *types.Func // enclosing declared function; nil inside func literals
	env  map[types.Object]idSpace
}

// report emits a finding unless an //idspace:ok escape covers the line.
func (w *idWalker) report(pos token.Pos, format string, args ...any) {
	if w.pkg.markedAt(w.pass.Module, pos, DirIdspaceOK) {
		*w.pass.suppressed++
		return
	}
	w.pass.Reportf(w.pkg, pos, format, args...)
}

// bindParams seeds the environment from declared parameter spaces.
func (w *idWalker) bindParams(ft *ast.FuncType, spaces []idSpace) {
	if spaces == nil {
		return
	}
	i := 0
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if i >= len(spaces) {
				return
			}
			if obj := w.pkg.Info.Defs[name]; obj != nil {
				w.env[obj] = spaces[i]
			}
			i++
		}
	}
}

func copyEnv(env map[types.Object]idSpace) map[types.Object]idSpace {
	out := make(map[types.Object]idSpace, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// branch runs fn on a copy of the environment and returns the copy.
func (w *idWalker) branch(fn func()) map[types.Object]idSpace {
	saved := w.env
	w.env = copyEnv(saved)
	fn()
	out := w.env
	w.env = saved
	return out
}

// joinInto folds a branch environment back in: bindings the branch may
// have changed become unknown unless they agree.
func (w *idWalker) joinInto(branch map[types.Object]idSpace) {
	for obj, space := range w.env {
		if branch[obj] != space {
			w.env[obj] = spaceUnknown
		}
	}
}

// joinBoth replaces the environment with the join of two exclusive
// branches (if/else): bindings agreeing across both are kept — even when
// they differ from the pre-branch value — everything else goes unknown.
func (w *idWalker) joinBoth(a, b map[types.Object]idSpace) {
	for obj := range w.env {
		if a[obj] == b[obj] {
			w.env[obj] = a[obj]
		} else {
			w.env[obj] = spaceUnknown
		}
	}
}

func (w *idWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *idWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.expr(v)
			}
			if len(vs.Values) == len(vs.Names) {
				for i, name := range vs.Names {
					if obj := w.pkg.Info.Defs[name]; obj != nil {
						w.env[obj] = w.spaceOf(vs.Values[i])
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X) // ID ± 1 stays in its space; the binding is unchanged
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			w.expr(res)
		}
		if w.fn != nil && len(s.Results) == 1 {
			if declared, ok := w.tabs.results[w.fn]; ok {
				if got := w.spaceOf(s.Results[0]); got != spaceUnknown && got != declared {
					w.report(s.Results[0].Pos(),
						"returning an %s-space ID from %s, declared %s %s",
						got, w.fn.Name(), DirIdspaceReturns, declared)
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		body := w.branch(func() { w.stmts(s.Body.List) })
		if s.Else == nil {
			w.joinInto(body)
			return
		}
		els := w.branch(func() { w.stmt(s.Else) })
		w.joinBoth(body, els)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.joinInto(w.branch(func() {
			w.stmts(s.Body.List)
			if s.Post != nil {
				w.stmt(s.Post)
			}
		}))
	case *ast.RangeStmt:
		w.expr(s.X)
		w.joinInto(w.branch(func() {
			w.bindRange(s)
			w.stmts(s.Body.List)
		}))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.caseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.caseBodies(s.Body)
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			w.joinInto(w.branch(func() {
				if cc.Comm != nil {
					w.stmt(cc.Comm)
				}
				w.stmts(cc.Body)
			}))
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.DeferStmt:
		w.expr(s.Call)
	}
}

// caseBodies runs every switch clause as an exclusive branch.
func (w *idWalker) caseBodies(body *ast.BlockStmt) {
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.expr(e)
		}
		w.joinInto(w.branch(func() { w.stmts(cc.Body) }))
	}
}

// bindRange seeds the key/value bindings of a range statement: ranging
// over an annotated table gives the key its index space and the value
// its element space.
func (w *idWalker) bindRange(s *ast.RangeStmt) {
	if s.Tok != token.DEFINE {
		return
	}
	elem, index := w.containerSpaces(s.X)
	bind := func(e ast.Expr, space idSpace) {
		if ident, ok := e.(*ast.Ident); ok && ident.Name != "_" {
			if obj := w.pkg.Info.Defs[ident]; obj != nil {
				w.env[obj] = space
			}
		}
	}
	if s.Key != nil {
		bind(s.Key, index)
	}
	if s.Value != nil {
		bind(s.Value, elem)
	}
}

// containerSpaces resolves the element and index spaces of a ranged or
// indexed container expression.
func (w *idWalker) containerSpaces(e ast.Expr) (elem, index idSpace) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if fv := w.fieldOf(e); fv != nil {
			return w.tabs.fieldElem[fv], w.tabs.fieldIndex[fv]
		}
	case *ast.Ident:
		if obj := objectOf(w.pkg, e); obj != nil {
			return w.env[obj], spaceUnknown
		}
	}
	return spaceUnknown, spaceUnknown
}

// fieldOf resolves a selector to the struct field it reads, if any.
func (w *idWalker) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := w.pkg.Info.Selections[sel]; ok {
		if fv, ok := s.Obj().(*types.Var); ok && fv.IsField() {
			return fv
		}
	}
	return nil
}

// objectOf resolves an identifier through Uses or Defs.
func objectOf(pkg *Package, ident *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[ident]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[ident]
}

// assign updates bindings and checks annotated-field sinks.
func (w *idWalker) assign(s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		w.expr(rhs)
	}
	for _, lhs := range s.Lhs {
		if _, ok := lhs.(*ast.Ident); !ok {
			w.expr(lhs) // index-space checks on lhs like st.perm[v] = x
		}
	}
	if len(s.Lhs) != len(s.Rhs) {
		// x, y := f(): multi-result spaces are undeclared; invalidate.
		for _, lhs := range s.Lhs {
			if ident, ok := lhs.(*ast.Ident); ok && ident.Name != "_" {
				if obj := objectOf(w.pkg, ident); obj != nil {
					w.env[obj] = spaceUnknown
				}
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		rhsSpace := w.spaceOf(s.Rhs[i])
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			continue // x += off keeps x's space; the binding is unchanged
		}
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			if obj := objectOf(w.pkg, lhs); obj != nil {
				w.env[obj] = rhsSpace
			}
		default:
			w.checkStore(lhs, rhsSpace, s.Rhs[i].Pos())
		}
	}
}

// checkStore reports a known-space value stored into a location declared
// for the other space: an annotated field, or an element of an annotated
// table.
func (w *idWalker) checkStore(lhs ast.Expr, rhsSpace idSpace, pos token.Pos) {
	if rhsSpace == spaceUnknown {
		return
	}
	var declared idSpace
	var what string
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if fv := w.fieldOf(lhs); fv != nil {
			declared, what = w.tabs.fieldElem[fv], "field "+fv.Name()
		}
	case *ast.IndexExpr:
		elem, _ := w.containerSpaces(lhs.X)
		declared, what = elem, "an element of "+exprString(lhs.X)
	}
	if declared != spaceUnknown && declared != rhsSpace {
		w.report(pos, "%s-space ID stored into %s, declared //idspace:%s%s",
			rhsSpace, what, declared, translateHint(rhsSpace))
	}
}

// translateHint names the sanctioned fix for the common direction.
func translateHint(got idSpace) string {
	if got == spaceInternal {
		return " (translate with the extID mapping first)"
	}
	return ""
}

// expr recursively scans an expression for sinks.
func (w *idWalker) expr(e ast.Expr) {
	switch e := e.(type) {
	case *ast.CallExpr:
		w.call(e)
	case *ast.IndexExpr:
		w.indexCheck(e)
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.SliceExpr:
		w.expr(e.X)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Value)
	case *ast.CompositeLit:
		w.composite(e)
	case *ast.FuncLit:
		// A literal's body runs with the captured bindings; check it with
		// a copy so its writes stay local, and without a declared result.
		savedFn := w.fn
		w.fn = nil
		w.joinInto(w.branch(func() { w.stmts(e.Body.List) }))
		w.fn = savedFn
	}
}

// call checks annotated-parameter and error-string sinks, then recurses.
func (w *idWalker) call(c *ast.CallExpr) {
	fn := staticCallee(w.pkg, c)
	if fn != nil {
		if isErrStringFunc(fn) {
			for _, arg := range c.Args {
				if w.spaceOf(arg) == spaceInternal {
					w.report(arg.Pos(),
						"internal (permuted) vertex ID reaches an error string via %s.%s (translate with the extID mapping first)",
						fn.Pkg().Name(), fn.Name())
				}
			}
		}
		if spaces := w.tabs.params[fn]; spaces != nil {
			for i, arg := range c.Args {
				if i >= len(spaces) || spaces[i] == spaceUnknown {
					continue
				}
				if got := w.spaceOf(arg); got != spaceUnknown && got != spaces[i] {
					w.report(arg.Pos(),
						"%s-space ID passed to parameter declared //idspace:%s of %s%s",
						got, spaces[i], fn.Name(), translateHint(got))
				}
			}
		}
	}
	w.expr(c.Fun)
	for _, arg := range c.Args {
		w.expr(arg)
	}
}

// isErrStringFunc reports whether fn formats values into user-visible
// strings: fmt.Errorf, fmt.Sprintf, errors.New.
func isErrStringFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return fn.Name() == "Errorf" || fn.Name() == "Sprintf"
	case "errors":
		return fn.Name() == "New"
	}
	return false
}

// indexCheck reports indexing an annotated table with the wrong space.
func (w *idWalker) indexCheck(e *ast.IndexExpr) {
	sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fv := w.fieldOf(sel)
	if fv == nil {
		return
	}
	declared := w.tabs.fieldIndex[fv]
	if declared == spaceUnknown {
		return
	}
	if got := w.spaceOf(e.Index); got != spaceUnknown && got != declared {
		w.report(e.Index.Pos(),
			"%s-space ID indexes %s, declared //idspace:index %s",
			got, fv.Name(), declared)
	}
}

// composite checks annotated fields in struct literals, keyed or
// positional.
func (w *idWalker) composite(lit *ast.CompositeLit) {
	tv := w.pkg.Info.TypeOf(lit)
	var st *types.Struct
	if tv != nil {
		if s, ok := tv.Underlying().(*types.Struct); ok {
			st = s
		}
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			w.expr(kv.Value)
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if fv, ok := w.pkg.Info.Uses[key].(*types.Var); ok && fv.IsField() {
				w.checkFieldInit(fv, kv.Value)
			}
			continue
		}
		w.expr(elt)
		if st != nil && i < st.NumFields() {
			w.checkFieldInit(st.Field(i), elt)
		}
	}
}

func (w *idWalker) checkFieldInit(fv *types.Var, value ast.Expr) {
	declared := w.tabs.fieldElem[fv]
	if declared == spaceUnknown {
		return
	}
	if got := w.spaceOf(value); got != spaceUnknown && got != declared {
		w.report(value.Pos(), "%s-space ID stored into field %s, declared //idspace:%s%s",
			got, fv.Name(), declared, translateHint(got))
	}
}

// spaceOf evaluates an expression's ID space. Pure — no reports.
func (w *idWalker) spaceOf(e ast.Expr) idSpace {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := objectOf(w.pkg, e); obj != nil {
			return w.env[obj]
		}
	case *ast.SelectorExpr:
		if fv := w.fieldOf(e); fv != nil {
			return w.tabs.fieldElem[fv]
		}
	case *ast.IndexExpr:
		elem, _ := w.containerSpaces(e.X)
		return elem
	case *ast.CallExpr:
		if tv, ok := w.pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return w.spaceOf(e.Args[0]) // int32(v) and friends keep the space
		}
		if fn := staticCallee(w.pkg, e); fn != nil {
			return w.tabs.results[fn]
		}
	case *ast.BinaryExpr:
		a, b := w.spaceOf(e.X), w.spaceOf(e.Y)
		switch e.Op {
		case token.ADD:
			// ID + offset stays an ID; ID + ID is meaningless (unknown).
			if a != spaceUnknown && b == spaceUnknown {
				return a
			}
			if b != spaceUnknown && a == spaceUnknown {
				return b
			}
		case token.SUB:
			// ID - offset stays an ID; ID - ID is a width, not an ID.
			if a != spaceUnknown && b == spaceUnknown {
				return a
			}
		}
	}
	return spaceUnknown
}
