package lint

import "testing"

// TestModuleClean is the suite's own regression test: the real module
// must stay free of findings. This pins the fixes the analyzers forced
// (ftmetivier's map-clearing delete-loop is now clear()) and the advisory
// contract for the code that legitimately escapes (the pool driver's
// wall-clock timings, the Prometheus metric plumbing) — if an escape
// annotation is deleted, or a new violation lands, this test fails with
// the same file:line diagnostic misvet prints.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	m, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags, suppressed := Run(m, Suite())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
	if suppressed == 0 {
		t.Error("no advisory-suppressed findings; the driver-timing and metrics escapes should be exercised")
	}
	if m.Path != "repro" {
		t.Errorf("module path = %q, want %q", m.Path, "repro")
	}
}

// TestDeterministicScope pins the package scoping rules DESIGN.md
// documents: engine/protocol/substrate subtrees are bound, experiment
// infrastructure, binaries, examples, and the lint package itself are
// exempt.
func TestDeterministicScope(t *testing.T) {
	m := &Module{Path: "repro"}
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/congest", true},
		{"repro/internal/distrib", true},
		{"repro/internal/dynmis", true},
		{"repro/internal/mis", true},
		{"repro/internal/mis/metivier", true},
		{"repro/internal/rng", true},
		{"repro/internal/trace", true},
		{"repro/internal/faultsim", true},
		{"repro/internal/exp", false},
		{"repro/internal/exp/bench", false},
		{"repro/internal/lint", false},
		{"repro/cmd/misvet", false},
		{"repro/cmd/bench", false},
		{"repro/examples/demo", false},
		{"repro", false},
		{"repro/internal/unlisted", false},
	}
	for _, c := range cases {
		if got := m.Deterministic(c.path); got != c.want {
			t.Errorf("Deterministic(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestDiagnosticString pins the clickable go-vet output format.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "determinism", File: "internal/mis/m.go", Line: 42, Col: 9, Message: "call of time.Now"}
	want := "internal/mis/m.go:42:9: determinism: call of time.Now"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestRel pins module-relative path computation.
func TestRel(t *testing.T) {
	m := &Module{Path: "repro"}
	if got := m.Rel("repro"); got != "" {
		t.Errorf("Rel(module root) = %q, want empty", got)
	}
	if got := m.Rel("repro/internal/congest"); got != "internal/congest" {
		t.Errorf("Rel = %q", got)
	}
	if got := m.Rel("other/pkg"); got != "other/pkg" {
		t.Errorf("Rel(foreign) = %q", got)
	}
}
