package lint

import (
	"go/ast"
	"go/types"
)

// defaultMaxWireBits bounds payload sizes when the congest package does
// not export a MaxWireBits constant (analyzer fixtures may omit it). The
// real bound lives next to the Wire type so the engine and the analyzer
// agree on one number.
const defaultMaxWireBits = 128

// CongestbitsAnalyzer audits the CONGEST message-size contract at the
// encoder level. The model allows O(log n) bits per edge per round, which
// this repository concretizes as the congest.MaxWireBits constant; the
// engine meters sizes at runtime through Wire.Bits, so every Wire()
// encoder must declare Bits as a positive constant within the budget —
// an encoder that omits Bits ships size-0 messages and silently defeats
// the metering. When the payload type also has the documentation-level
// `Bits() int` method, the two declared sizes must agree.
var CongestbitsAnalyzer = &Analyzer{
	Name: "congestbits",
	Doc:  "Wire() encoders declare constant bit sizes within the congest.MaxWireBits budget",
	Run:  runCongestbits,
}

func runCongestbits(pass *Pass) {
	pkg := pass.Pkg
	type encoder struct {
		fd   *ast.FuncDecl
		recv string
	}
	var encoders []encoder
	bitsMethods := make(map[string]*ast.FuncDecl) // receiver type name -> Bits() decl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			switch {
			case isWireEncoder(pkg, fd):
				encoders = append(encoders, encoder{fd: fd, recv: recvTypeName(fd)})
			case fd.Name.Name == "Bits":
				bitsMethods[recvTypeName(fd)] = fd
			}
		}
	}
	if len(encoders) == 0 {
		return
	}
	for _, enc := range encoders {
		ast.Inspect(enc.fd.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isCongestWire(pkg.Info.TypeOf(lit)) {
				return true
			}
			bitsExpr := fieldValue(lit, "Bits")
			if bitsExpr == nil {
				pass.Reportf(pkg, lit.Pos(),
					"Wire() encoder does not declare Bits; undeclared sizes defeat the engine's CONGEST metering")
				return true
			}
			tv, ok := pkg.Info.Types[bitsExpr]
			if !ok || tv.Value == nil {
				pass.Reportf(pkg, bitsExpr.Pos(),
					"Wire() encoder's Bits is not a compile-time constant; the CONGEST budget cannot be audited statically")
				return true
			}
			bits := constTVInt(tv)
			bound := maxWireBits(pkg.Info.TypeOf(lit))
			switch {
			case bits <= 0:
				pass.Reportf(pkg, bitsExpr.Pos(),
					"Wire() encoder declares %d bits; payloads must be at least one bit", bits)
			case bits > bound:
				pass.Reportf(pkg, bitsExpr.Pos(),
					"Wire() encoder declares %d bits, exceeding the congest.MaxWireBits = %d O(log n) budget", bits, bound)
			}
			if bm, ok := bitsMethods[enc.recv]; ok {
				if declared, ok := bitsMethodValue(pkg, bm); ok && declared != bits {
					pass.Reportf(pkg, bitsExpr.Pos(),
						"Wire() encoder declares %d bits but %s.Bits() reports %d; the two declarations must agree",
						bits, enc.recv, declared)
				}
			}
			return true
		})
	}
}

// recvTypeName returns the receiver's type name ("" if unresolvable).
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}

// maxWireBits reads the MaxWireBits constant from the congest package
// that declares the Wire type, defaulting when absent.
func maxWireBits(wireType types.Type) int64 {
	named, ok := wireType.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return defaultMaxWireBits
	}
	c, ok := named.Obj().Pkg().Scope().Lookup("MaxWireBits").(*types.Const)
	if !ok {
		return defaultMaxWireBits
	}
	return constInt(c)
}

// bitsMethodValue extracts the constant a `Bits() int` method returns,
// when its body is the documented single-constant-return shape.
func bitsMethodValue(pkg *Package, fd *ast.FuncDecl) (int64, bool) {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return 0, false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return 0, false
	}
	tv, ok := pkg.Info.Types[ret.Results[0]]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constTVInt(tv), true
}
