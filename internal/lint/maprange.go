package lint

import (
	"go/ast"
	"go/types"
)

// MaprangeAnalyzer flags `range` over a map inside deterministic
// packages. Go randomizes map iteration order per execution, so any map
// range whose body's effect is order-sensitive silently breaks the
// bit-identical-replay contract — historically the most common way a
// deterministic Go codebase rots.
//
// One shape is exempt because it is order-insensitive by construction:
// the collect-then-sort idiom, where the loop body does nothing but
// append keys (or values) to a slice that the surrounding code sorts
// before use:
//
//	keys := make([]uint64, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Slice(keys, ...)
//
// Anything else — including delete-loops, which should use the clear()
// builtin — is reported. //lint:advisory escapes apply as usual.
var MaprangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc:  "forbid order-sensitive map iteration in deterministic packages",
	Run:  runMaprange,
}

func runMaprange(pass *Pass) {
	pkg := pass.Pkg
	if !pass.Module.Deterministic(pkg.Path) {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectOnlyBody(rs.Body) {
				return true
			}
			pass.Reportf(pkg, rs.Pos(),
				"range over map (%s): iteration order is randomized; collect the keys into a slice and sort before iterating (map clears should use the clear builtin)", t)
			return true
		})
	}
}

// collectOnlyBody reports whether every statement in the loop body is an
// append of the iteration variables onto a slice (`xs = append(xs, k)`),
// the order-insensitive half of the collect-then-sort idiom.
func collectOnlyBody(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return false
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		lhs, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		arg0, ok := call.Args[0].(*ast.Ident)
		if !ok || arg0.Name != lhs.Name {
			return false
		}
	}
	return true
}
