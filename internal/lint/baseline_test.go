package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func diag(analyzer, file, msg string, line int) Diagnostic {
	return Diagnostic{Analyzer: analyzer, File: file, Line: line, Col: 1, Message: msg}
}

// TestBaselineRoundTrip writes a baseline and reads it back.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	diags := []Diagnostic{
		diag("determinism", "a.go", "call of time.Now", 10),
		diag("maprange", "b.go", "range over map", 20),
	}
	if err := NewBaseline(diags).Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(b.Findings) != 2 || b.Version != 1 {
		t.Fatalf("round trip: got version %d with %d findings", b.Version, len(b.Findings))
	}
	fresh, absorbed, stale := b.Filter(diags)
	if len(fresh) != 0 || absorbed != 2 || len(stale) != 0 {
		t.Errorf("Filter over own findings: fresh=%d absorbed=%d stale=%d, want 0/2/0",
			len(fresh), absorbed, len(stale))
	}
}

// TestBaselineLineInsensitive checks a baselined finding survives the
// file shifting under it: matching ignores Line and Col.
func TestBaselineLineInsensitive(t *testing.T) {
	b := NewBaseline([]Diagnostic{diag("determinism", "a.go", "call of time.Now", 10)})
	fresh, absorbed, stale := b.Filter([]Diagnostic{diag("determinism", "a.go", "call of time.Now", 99)})
	if len(fresh) != 0 || absorbed != 1 || len(stale) != 0 {
		t.Errorf("line-shifted finding not absorbed: fresh=%d absorbed=%d stale=%d",
			len(fresh), absorbed, len(stale))
	}
}

// TestBaselineMultiset checks matching is budgeted: one baseline entry
// absorbs one finding, a second identical finding stays fresh.
func TestBaselineMultiset(t *testing.T) {
	d := diag("maprange", "a.go", "range over map", 5)
	b := NewBaseline([]Diagnostic{d})
	fresh, absorbed, stale := b.Filter([]Diagnostic{d, d})
	if len(fresh) != 1 || absorbed != 1 || len(stale) != 0 {
		t.Errorf("multiset budget: fresh=%d absorbed=%d stale=%d, want 1/1/0",
			len(fresh), absorbed, len(stale))
	}
}

// TestBaselineNil checks a nil baseline absorbs nothing.
func TestBaselineNil(t *testing.T) {
	var b *Baseline
	d := diag("hotalloc", "a.go", "make in a hot-path function", 3)
	fresh, absorbed, stale := b.Filter([]Diagnostic{d})
	if len(fresh) != 1 || absorbed != 0 || len(stale) != 0 {
		t.Errorf("nil baseline: fresh=%d absorbed=%d stale=%d, want 1/0/0",
			len(fresh), absorbed, len(stale))
	}
}

// TestBaselineStale checks that unmatched baseline entries surface as
// stale, in recorded order, with multiset budgeting: two entries and one
// matching finding leave exactly one stale entry.
func TestBaselineStale(t *testing.T) {
	fixed := diag("determinism", "gone.go", "call of time.Now", 7)
	kept := diag("maprange", "a.go", "range over map", 5)
	b := NewBaseline([]Diagnostic{fixed, kept, kept})
	fresh, absorbed, stale := b.Filter([]Diagnostic{kept})
	if len(fresh) != 0 || absorbed != 1 {
		t.Fatalf("fresh=%d absorbed=%d, want 0/1", len(fresh), absorbed)
	}
	if len(stale) != 2 {
		t.Fatalf("stale=%d, want 2 (the fixed entry and the extra duplicate)", len(stale))
	}
	seen := map[string]int{}
	for _, d := range stale {
		seen[baselineKey(d)]++
	}
	if seen[baselineKey(fixed)] != 1 || seen[baselineKey(kept)] != 1 {
		t.Errorf("stale entries wrong: %v", stale)
	}
}

// TestBaselineErrors checks the load-time validation paths.
func TestBaselineErrors(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Error("loading malformed JSON should fail")
	}
	wrongVersion := filepath.Join(t.TempDir(), "v9.json")
	if err := os.WriteFile(wrongVersion, []byte(`{"version": 9, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(wrongVersion); err == nil {
		t.Error("loading an unsupported version should fail")
	}
}
