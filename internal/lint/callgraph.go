package lint

import (
	"go/ast"
	"go/types"
)

// Interprocedural core shared by the dataflow analyzers (idspace,
// draworder, hotalloc v2): a module-wide index of function declarations
// plus a static call-site resolver. The graph is deliberately modest —
// only statically-dispatched calls resolve (package functions and
// methods on concrete receivers); interface-method calls and func-value
// calls return an object with no declaration, which every traversal
// treats as a cut. That under-approximation is the right bias for this
// suite: the engine's sanctioned dynamic seams (protocol Node.Round,
// trace.Bus.Emit, the distrib worker factory) are exactly where a
// contract hands responsibility to runtime tests, and an analyzer that
// guessed at dynamic targets would report flows the code cannot take.

// declSite pairs a function declaration with the package it lives in, so
// traversals can report (and read directives) in the callee's file.
type declSite struct {
	pkg *Package
	fd  *ast.FuncDecl
}

// callGraph indexes every function declaration in the module by its
// types object. Built lazily, once per loaded Module.
type callGraph struct {
	decls map[*types.Func]declSite
}

// callGraph returns the module's declaration index, building it on first
// use. Analyzers run sequentially, so no locking is needed.
func (m *Module) callGraph() *callGraph {
	if m.cg != nil {
		return m.cg
	}
	cg := &callGraph{decls: make(map[*types.Func]declSite)}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					cg.decls[fn] = declSite{pkg: pkg, fd: fd}
				}
			}
		}
	}
	m.cg = cg
	return cg
}

// staticCallee resolves a call expression to the function object it
// names: a package function, a method on a concrete receiver, or an
// interface method (which has no declaration in the graph — callers that
// need a body will find none and cut there). Func-value calls, type
// conversions, and builtins return nil.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: otherpkg.Func(...).
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
