// Package tree exposes the TreeIndependentSet algorithm of Barenboim,
// Elkin, Pettie and Schneider (FOCS 2012, Section 8 of the journal
// version) — the algorithm the reproduced paper generalizes. The paper is
// explicit that BoundedArbIndependentSet "is essentially identical to the
// TreeIndependentSet algorithm ... except for parameter values (which now
// depend on the arboricity α)"; accordingly, this package is a documented
// parameterization of the core implementation at α = 1 with the tree
// constants:
//
//	Θ  = ⌊log₂(Δ / (c·ln²Δ))⌋   (the α¹⁰ factor gone)
//	Λ  = ⌈p·c'·ln(c''·ln²Δ)⌉    (the α⁸ factor gone: O(log log Δ))
//	ρₖ = 8·lnΔ·Δ/2ᵏ⁺¹           (unchanged)
//
// As with the bounded-arboricity version, the printed constants only
// activate at asymptotic Δ; PracticalParams scales them the way
// core.PracticalParams does.
package tree

import (
	"errors"
	"math"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
)

// ErrNotForest rejects non-forest inputs: the tree algorithm's guarantees
// are for trees — what to do beyond them is the reproduced paper's topic.
var ErrNotForest = errors.New("tree: input is not a forest")

// Params returns TreeIndependentSet's printed parameters for maximum
// degree delta and confidence constant p.
func Params(delta, p int) *core.Params {
	ln := math.Log(float64(delta))
	if ln < 1 {
		ln = 1
	}
	theta := int(math.Floor(math.Log2(float64(delta) / (1176 * 16 * ln * ln))))
	if theta < 0 {
		theta = 0
	}
	if p < 1 {
		p = 1
	}
	lambda := int(math.Ceil(float64(p) * 8 * 33 * math.Log(260*ln*ln)))
	return core.NewParams(1, delta, p, theta, lambda, func(k int) int {
		return int(math.Ceil(8 * ln * float64(delta) / math.Pow(2, float64(k+1))))
	})
}

// PracticalParams returns laptop-scale tree parameters (the core practical
// profile at α = 1).
func PracticalParams(delta int) *core.Params {
	return core.PracticalParams(1, delta)
}

// Run executes TreeIndependentSet followed by the standard finishing
// stages on a forest input, returning the full pipeline outcome.
func Run(g *graph.Graph, params *core.Params, opts congest.Options) (*core.Outcome, error) {
	if !g.IsForest() {
		return nil, ErrNotForest
	}
	return core.ArbMIS(g, params, opts)
}
