package tree

import (
	"errors"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestRunOnTrees(t *testing.T) {
	r := rng.New(1)
	cases := map[string]*graph.Graph{
		"random":      gen.RandomTree(400, r.Split(1)),
		"star":        gen.Star(100),
		"binary":      gen.CompleteBinaryTree(255),
		"caterpillar": gen.Caterpillar(25, 5),
		"forest":      gen.RandomForest(300, 10, r.Split(2)),
		"path":        gen.Path(100),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			out, err := Run(g, PracticalParams(g.MaxDegree()), congest.Options{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if err := g.VerifyMIS(out.MIS); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunRejectsNonForest(t *testing.T) {
	g := gen.Cycle(8)
	_, err := Run(g, PracticalParams(g.MaxDegree()), congest.Options{Seed: 1})
	if !errors.Is(err, ErrNotForest) {
		t.Fatalf("err = %v", err)
	}
}

func TestParamsShape(t *testing.T) {
	// Tree parameters must be strictly cheaper than the α=2 bounded-
	// arboricity parameters at the same Δ: Θ activates at smaller Δ (no
	// α¹⁰ term) and Λ has no α⁸ factor.
	p := Params(1<<26, 1)
	if p.Alpha != 1 {
		t.Fatalf("alpha = %d", p.Alpha)
	}
	if p.NumScales <= 0 {
		t.Fatalf("tree Θ = %d at Δ=2^26, expected positive", p.NumScales)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The arboricity version needs Δ/ln²Δ > 1176·16·2¹⁰ to activate; the
	// tree version activates at Δ/ln²Δ > 1176·16.
	if big := Params(1<<40, 1); big.NumScales <= p.NumScales {
		t.Fatal("Θ not increasing in Δ")
	}
}

func TestParamsDegenerateSmallDelta(t *testing.T) {
	p := Params(50, 1)
	if p.NumScales != 0 {
		t.Fatalf("Θ = %d at Δ=50", p.NumScales)
	}
}

func TestRunWithPaperParamsStillValid(t *testing.T) {
	g := gen.RandomTree(300, rng.New(4))
	out, err := Run(g, Params(g.MaxDegree(), 1), congest.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMIS(out.MIS); err != nil {
		t.Fatal(err)
	}
}

func TestManySeeds(t *testing.T) {
	g := gen.RandomTree(250, rng.New(6))
	params := PracticalParams(g.MaxDegree())
	for seed := uint64(0); seed < 15; seed++ {
		out, err := Run(g, params, congest.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := g.VerifyMIS(out.MIS); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
