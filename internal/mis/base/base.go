// Package base holds the small pieces shared by every MIS node program:
// the node-status vocabulary, the active-neighbor tracker, and helpers for
// reading results out of a finished CONGEST run.
package base

import (
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
)

// Status is a node's final (or current) classification.
type Status int

// Node statuses. They start at 1 so an uninitialized status is detectably
// invalid.
const (
	// StatusActive means the node is still undecided.
	StatusActive Status = iota + 1
	// StatusInMIS means the node joined the independent set.
	StatusInMIS
	// StatusDominated means a neighbor joined the independent set.
	StatusDominated
	// StatusBad means the node was placed in the bad set B by the core
	// algorithm (Algorithm 1 step 2(b)) and awaits the finishing stage.
	StatusBad
)

// String renders a status for diagnostics.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusInMIS:
		return "in-mis"
	case StatusDominated:
		return "dominated"
	case StatusBad:
		return "bad"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Membership is implemented by node programs whose output is a Status.
type Membership interface {
	Status() Status
}

// Statuses reads the final status of every node from a finished runner.
// It panics if a node program does not implement Membership (a wiring bug).
func Statuses(r *congest.Runner, n int) []Status {
	out := make([]Status, n)
	for v := 0; v < n; v++ {
		m, ok := r.Node(v).(Membership)
		if !ok {
			panic(fmt.Sprintf("base: node %d (%T) does not implement Membership", v, r.Node(v)))
		}
		out[v] = m.Status()
	}
	return out
}

// MISSet converts statuses to the boolean set representation the graph
// verifier consumes.
func MISSet(statuses []Status) []bool {
	set := make([]bool, len(statuses))
	for v, s := range statuses {
		set[v] = s == StatusInMIS
	}
	return set
}

// ActiveSet tracks which neighbors of a node are still active. MIS node
// programs use it to maintain deg_IB(v) (the paper's notation for a node's
// degree restricted to active nodes) as neighbors announce removal.
type ActiveSet struct {
	ids    []int // sorted neighbor IDs
	active []bool
	count  int
}

// NewActiveSet starts with every listed neighbor active. The ids slice must
// be sorted (graph adjacency lists are); it is not copied.
func NewActiveSet(ids []int) *ActiveSet {
	return &ActiveSet{
		ids:    ids,
		active: allTrue(len(ids)),
		count:  len(ids),
	}
}

func allTrue(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

// Count returns the number of active neighbors (deg_IB).
func (s *ActiveSet) Count() int { return s.count }

// Contains reports whether neighbor id is still active.
func (s *ActiveSet) Contains(id int) bool {
	i := s.indexOf(id)
	return i >= 0 && s.active[i]
}

// Remove marks neighbor id inactive. Removing an unknown or already
// inactive neighbor is a no-op (duplicate announcements are harmless).
func (s *ActiveSet) Remove(id int) {
	i := s.indexOf(id)
	if i >= 0 && s.active[i] {
		s.active[i] = false
		s.count--
	}
}

// Each calls f for every active neighbor in increasing ID order.
func (s *ActiveSet) Each(f func(id int)) {
	for i, id := range s.ids {
		if s.active[i] {
			f(id)
		}
	}
}

// EachSlot calls f for every active neighbor in increasing ID order,
// passing the neighbor's slot in the ids list alongside its ID. When the
// set was built from congest.Context.Neighbors (the universal pattern in
// this repo), slot is exactly the argument Context.SendSlot expects, so
// programs can address messages without any neighbor search.
func (s *ActiveSet) EachSlot(f func(slot, id int)) {
	for i, id := range s.ids {
		if s.active[i] {
			f(i, id)
		}
	}
}

func (s *ActiveSet) indexOf(id int) int {
	i := sort.SearchInts(s.ids, id)
	if i < len(s.ids) && s.ids[i] == id {
		return i
	}
	return -1
}

// VerifyStatuses checks that statuses encode a complete, consistent MIS
// outcome for g: no node still active, every dominated node has an in-MIS
// neighbor, and the in-MIS set passes the graph verifier.
func VerifyStatuses(g *graph.Graph, statuses []Status) error {
	for v, s := range statuses {
		switch s {
		case StatusInMIS, StatusDominated:
		case StatusActive, StatusBad:
			return fmt.Errorf("base: node %d finished with status %v", v, s)
		default:
			return fmt.Errorf("base: node %d has invalid status %d", v, int(s))
		}
	}
	for v, s := range statuses {
		if s != StatusDominated {
			continue
		}
		ok := false
		for _, w := range g.Neighbors(v) {
			if statuses[w] == StatusInMIS {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("base: node %d dominated but no neighbor in MIS", v)
		}
	}
	return g.VerifyMIS(MISSet(statuses))
}
