package base

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestActiveSetBasics(t *testing.T) {
	s := NewActiveSet([]int{2, 5, 9})
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	if !s.Contains(5) || s.Contains(4) {
		t.Fatal("Contains wrong")
	}
	s.Remove(5)
	if s.Count() != 2 || s.Contains(5) {
		t.Fatal("Remove failed")
	}
	// Removing again, or removing a stranger, is a no-op.
	s.Remove(5)
	s.Remove(100)
	if s.Count() != 2 {
		t.Fatalf("count after no-op removals = %d", s.Count())
	}
}

func TestActiveSetEachOrdered(t *testing.T) {
	s := NewActiveSet([]int{1, 3, 5, 7})
	s.Remove(3)
	var got []int
	s.Each(func(id int) { got = append(got, id) })
	want := []int{1, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestActiveSetEmpty(t *testing.T) {
	s := NewActiveSet(nil)
	if s.Count() != 0 {
		t.Fatal("empty set has members")
	}
	s.Each(func(int) { t.Fatal("Each on empty set called f") })
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusActive:    "active",
		StatusInMIS:     "in-mis",
		StatusDominated: "dominated",
		StatusBad:       "bad",
		Status(99):      "status(99)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestMISSet(t *testing.T) {
	set := MISSet([]Status{StatusInMIS, StatusDominated, StatusInMIS})
	if !set[0] || set[1] || !set[2] {
		t.Fatalf("set = %v", set)
	}
}

func TestVerifyStatusesAccepts(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err := VerifyStatuses(g, []Status{StatusInMIS, StatusDominated, StatusInMIS}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyStatusesRejectsActive(t *testing.T) {
	g := graph.MustNew(2, []graph.Edge{{U: 0, V: 1}})
	err := VerifyStatuses(g, []Status{StatusInMIS, StatusActive})
	if err == nil || !strings.Contains(err.Error(), "active") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyStatusesRejectsFalseDomination(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}})
	// Node 2 claims dominated but has no neighbors at all.
	err := VerifyStatuses(g, []Status{StatusInMIS, StatusDominated, StatusDominated})
	if err == nil || !strings.Contains(err.Error(), "no neighbor in MIS") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyStatusesRejectsInvalid(t *testing.T) {
	g := graph.MustNew(1, nil)
	if err := VerifyStatuses(g, []Status{Status(0)}); err == nil {
		t.Fatal("invalid status accepted")
	}
}
