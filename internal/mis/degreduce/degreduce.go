// Package degreduce implements the degree-reduction preprocessing the
// paper's §3.3 invokes (Barenboim et al., Theorem 7.2): when Δ is large,
// run O(√(log n · log log n)) priority iterations first; with high
// probability every surviving node then has degree at most
// α·2^√(log n·log log n), after which ArbMIS runs with the reduced Δ.
//
// Like the source theorem, the mechanism is simply the priority process
// run for a fixed budget: high-degree nodes have many independent chances
// of a neighbor joining the MIS, so they are eliminated first, and the
// budget is chosen so the surviving degree matches the target whp. The
// repository measures the resulting degree-vs-iterations curve in
// experiment E13.
package degreduce

import (
	"math"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/proto"
)

// Iterations returns the preprocessing budget c·√(log₂ n · log₂ log₂ n)
// for the given constant multiplier.
func Iterations(n int, c float64) int {
	if n < 4 {
		return 1
	}
	l := math.Log2(float64(n))
	t := int(math.Ceil(c * math.Sqrt(l*math.Log2(l))))
	if t < 1 {
		t = 1
	}
	return t
}

// TargetDegree returns the reduced-degree target α·2^√(log₂ n·log₂ log₂ n).
func TargetDegree(n, alpha int) float64 {
	if n < 4 {
		return float64(alpha)
	}
	l := math.Log2(float64(n))
	return float64(alpha) * math.Pow(2, math.Sqrt(l*math.Log2(l)))
}

// node runs the Métivier priority process for a fixed number of
// iterations, then stops with whatever is left active.
type node struct {
	status   base.Status
	priority uint64
	budget   int // iterations remaining after the current one
}

// Status implements base.Membership.
func (nd *node) Status() base.Status { return nd.status }

// New returns a factory running exactly iters priority iterations.
func New(iters int) func(v int) congest.Node {
	return func(int) congest.Node {
		return &node{status: base.StatusActive, budget: iters}
	}
}

// Run executes the preprocessing on g: statuses are StatusInMIS,
// StatusDominated, or StatusActive (survivor). Survivors plus the residual
// graph are what the caller feeds to the main algorithm.
func Run(g *graph.Graph, iters int, opts congest.Options) ([]base.Status, congest.Result, error) {
	r := congest.NewRunner(g, New(iters), opts)
	res, err := r.Run()
	if err != nil {
		return nil, res, err
	}
	return base.Statuses(r, g.N()), res, nil
}

// Survivors extracts the still-active vertices and their induced subgraph.
func Survivors(g *graph.Graph, statuses []base.Status) ([]int, *graph.Graph, error) {
	var alive []int
	for v, s := range statuses {
		if s == base.StatusActive {
			alive = append(alive, v)
		}
	}
	if len(alive) == 0 {
		return nil, graph.MustNew(0, nil), nil
	}
	sub, _, err := g.InducedSubgraph(alive)
	if err != nil {
		return nil, nil, err
	}
	return alive, sub, nil
}

func (nd *node) Init(ctx *congest.Context) {
	if nd.budget <= 0 {
		ctx.Halt()
		return
	}
	nd.start(ctx)
}

func (nd *node) start(ctx *congest.Context) {
	nd.priority = ctx.RNG().Uint64()
	ctx.Broadcast(proto.Priority{Value: nd.priority, Competitive: true}.Wire())
}

func (nd *node) Round(ctx *congest.Context, inbox []congest.Message) {
	switch ctx.Round() % 3 {
	case 1:
		win := true
		for _, m := range inbox {
			if p, ok := proto.AsPriority(m.Wire); ok {
				if p.Value > nd.priority || (p.Value == nd.priority && m.From > ctx.ID()) {
					win = false
					break
				}
			}
		}
		if win {
			nd.status = base.StatusInMIS
			ctx.Broadcast(proto.Flag{Kind: proto.KindJoined}.Wire())
			ctx.Halt()
		}
	case 2:
		for _, m := range inbox {
			if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindJoined {
				nd.status = base.StatusDominated
				ctx.Broadcast(proto.Flag{Kind: proto.KindRemoved}.Wire())
				ctx.Halt()
				return
			}
		}
		nd.budget--
		if nd.budget <= 0 {
			ctx.Halt() // survivor: stays StatusActive
		}
	case 0:
		nd.start(ctx)
	}
}

// ExportState packs the node's observable output (its status) for the
// distributed driver's cross-process state transfer (congest.Porter).
func (nd *node) ExportState() uint64 { return uint64(nd.status) }

// ImportState restores a status packed by ExportState.
func (nd *node) ImportState(x uint64) { nd.status = base.Status(x) }
