package degreduce

import (
	"math"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/rng"
)

func TestIterationsShape(t *testing.T) {
	if Iterations(2, 1) != 1 {
		t.Fatal("tiny n should give 1 iteration")
	}
	// √(log n·log log n) growth: doubling the exponent of n multiplies the
	// budget by < 2.
	a, b := Iterations(1<<10, 1), Iterations(1<<20, 1)
	if b <= a {
		t.Fatal("budget not growing")
	}
	if float64(b) > 1.8*float64(a) {
		t.Fatalf("budget grew too fast: %d -> %d", a, b)
	}
	if Iterations(1<<20, 2) < 2*Iterations(1<<20, 1)-1 {
		t.Fatal("constant multiplier not honored")
	}
}

func TestTargetDegreeShape(t *testing.T) {
	if TargetDegree(2, 3) != 3 {
		t.Fatal("tiny n target should be alpha")
	}
	// Target is 2^√(log n·log log n) scaled by alpha: monotone in both.
	if TargetDegree(1<<20, 2) <= TargetDegree(1<<10, 2) {
		t.Fatal("target not monotone in n")
	}
	if TargetDegree(1<<10, 4) != 2*TargetDegree(1<<10, 2) {
		t.Fatal("target not linear in alpha")
	}
	// And it is subpolynomial: far below n for large n.
	if TargetDegree(1<<20, 1) > math.Pow(2, 10) {
		t.Fatalf("target %.0f too large", TargetDegree(1<<20, 1))
	}
}

func TestRunPartialOutcome(t *testing.T) {
	g := gen.UnionOfTrees(400, 3, rng.New(1))
	statuses, res, err := Run(g, 1, congest.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[base.Status]int{}
	for _, s := range statuses {
		counts[s]++
	}
	// One iteration: some joined, some dominated, some survive.
	if counts[base.StatusInMIS] == 0 || counts[base.StatusActive] == 0 {
		t.Fatalf("unexpected outcome distribution: %v", counts)
	}
	// One iteration = at most 3 engine rounds.
	if res.Rounds > 3 {
		t.Fatalf("1 iteration took %d rounds", res.Rounds)
	}
	// Partial result is independent and consistent.
	if ok, bad := g.IsIndependent(base.MISSet(statuses)); !ok {
		t.Fatalf("not independent: %v", bad)
	}
	for v, s := range statuses {
		if s != base.StatusDominated {
			continue
		}
		found := false
		for _, w := range g.Neighbors(v) {
			if statuses[w] == base.StatusInMIS {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d dominated without MIS neighbor", v)
		}
	}
}

func TestRunZeroBudget(t *testing.T) {
	g := gen.Path(10)
	statuses, res, err := Run(g, 0, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Fatalf("zero budget ran %d rounds", res.Rounds)
	}
	for _, s := range statuses {
		if s != base.StatusActive {
			t.Fatal("zero budget resolved nodes")
		}
	}
}

func TestSurvivors(t *testing.T) {
	g := gen.UnionOfTrees(300, 2, rng.New(3))
	statuses, _, err := Run(g, 1, congest.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	alive, sub, err := Survivors(g, statuses)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != len(alive) {
		t.Fatalf("subgraph %d vs alive %d", sub.N(), len(alive))
	}
	for _, v := range alive {
		if statuses[v] != base.StatusActive {
			t.Fatalf("non-survivor %d in alive list", v)
		}
	}
}

func TestSurvivorsEmpty(t *testing.T) {
	g := graph.MustNew(3, nil)
	// Isolated vertices join immediately: no survivors after 1 iteration.
	statuses, _, err := Run(g, 1, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	alive, sub, err := Survivors(g, statuses)
	if err != nil {
		t.Fatal(err)
	}
	if len(alive) != 0 || sub.N() != 0 {
		t.Fatal("expected no survivors")
	}
}

func TestManyIterationsResolveEverything(t *testing.T) {
	g := gen.UnionOfTrees(300, 2, rng.New(5))
	statuses, _, err := Run(g, 50, congest.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.VerifyStatuses(g, statuses); err != nil {
		t.Fatalf("50 iterations should finish the MIS: %v", err)
	}
}

func TestDegreeReductionOnHeavyTail(t *testing.T) {
	g := gen.PreferentialAttachment(2000, 3, rng.New(7))
	statuses, _, err := Run(g, Iterations(g.N(), 1), congest.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, sub, err := Survivors(g, statuses)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() > 0 && sub.MaxDegree() >= g.MaxDegree() {
		t.Fatalf("no degree reduction: %d vs %d", sub.MaxDegree(), g.MaxDegree())
	}
}
