// Package colevishkin implements the deterministic Cole-Vishkin (1986)
// coloring pipeline on rooted forests, and the standard MIS extraction from
// the resulting 3-coloring. The reproduced paper uses it (Lemma 3.8) to
// finish off the small "bad" components: a forest decomposition gives each
// forest an orientation, Cole-Vishkin 3-colors each forest in O(log* n)
// rounds, and color classes are then swept into an MIS.
//
// The schedule is fully deterministic and known in advance from n:
//
//	rounds 1..T          color reduction: IDs → <6 colors (T = O(log* n))
//	rounds T+1..T+6      three shift-down+recolor steps: 6 → 3 colors
//	rounds T+7..T+12     three color-class sweeps: 3-coloring → MIS
//
// Every message is a single color of at most 64 bits, comfortably CONGEST.
package colevishkin

import (
	"fmt"
	"math/bits"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/proto"
)

// ReductionRounds returns T, the number of Cole-Vishkin iterations needed
// to bring n distinct initial colors below 6. It is log*-ish: 5 covers
// every feasible n.
func ReductionRounds(n int) int {
	space := n
	if space < 2 {
		space = 2
	}
	t := 0
	for space > 6 {
		// Colors in [0, space) have bitlen(space-1) bits; one iteration
		// maps them into [0, 2*bitlen(space-1)).
		space = 2 * bits.Len(uint(space-1))
		t++
	}
	return t
}

// node is the per-vertex state machine.
type node struct {
	status base.Status
	parent int // -1 for roots
	color  uint64
	// preShift remembers the color held before the current shift-down so
	// the recolor step knows its children's (uniform) new color.
	preShift uint64
	total    int // T, cached
}

// Status implements base.Membership.
func (nd *node) Status() base.Status { return nd.status }

// Color returns the node's final color; exported for the coloring tests.
func (nd *node) Color() uint64 { return nd.color }

// New returns a factory for Cole-Vishkin nodes on an n-vertex forest.
// parent[v] is v's parent or -1 for roots.
func New(parent []int, n int) func(v int) congest.Node {
	t := ReductionRounds(n)
	return func(v int) congest.Node {
		return &node{
			status: base.StatusActive,
			parent: parent[v],
			color:  uint64(v),
			total:  t,
		}
	}
}

// Run executes the pipeline on a forest g with the given parent map and
// returns per-node statuses (a valid MIS of g) plus run statistics. It
// rejects inputs that are not forests or whose parent map does not match
// the graph.
func Run(g *graph.Graph, parent []int, opts congest.Options) ([]base.Status, congest.Result, error) {
	if err := validate(g, parent); err != nil {
		return nil, congest.Result{}, err
	}
	r := congest.NewRunner(g, New(parent, g.N()), opts)
	res, err := r.Run()
	if err != nil {
		return nil, res, err
	}
	return base.Statuses(r, g.N()), res, nil
}

// Colors runs only through the coloring stages and returns the 3-coloring
// (values 0..2). Used by the forest-decomposition finisher, which sweeps
// several forests' colorings jointly, and by the coloring experiments.
func Colors(g *graph.Graph, parent []int, opts congest.Options) ([]uint64, congest.Result, error) {
	if err := validate(g, parent); err != nil {
		return nil, congest.Result{}, err
	}
	r := congest.NewRunner(g, New(parent, g.N()), opts)
	res, err := r.Run()
	if err != nil {
		return nil, res, err
	}
	colors := make([]uint64, g.N())
	for v := 0; v < g.N(); v++ {
		colors[v] = r.Node(v).(*node).Color()
	}
	return colors, res, nil
}

func validate(g *graph.Graph, parent []int) error {
	if len(parent) != g.N() {
		return fmt.Errorf("colevishkin: parent map has %d entries for %d vertices", len(parent), g.N())
	}
	if !g.IsForest() {
		return fmt.Errorf("colevishkin: input graph is not a forest")
	}
	links := 0
	for v, p := range parent {
		if p < 0 {
			continue
		}
		if p == v || p >= g.N() {
			return fmt.Errorf("colevishkin: bad parent %d for vertex %d", p, v)
		}
		if !g.HasEdge(v, p) {
			return fmt.Errorf("colevishkin: parent link (%d,%d) is not a graph edge", v, p)
		}
		links++
	}
	if links != g.M() {
		return fmt.Errorf("colevishkin: %d parent links but %d edges", links, g.M())
	}
	return nil
}

func (nd *node) Init(ctx *congest.Context) {
	// When n <= 6 the reduction stage is empty (T = 0): IDs already form a
	// <6 coloring and the schedule proceeds straight to shift-down.
	ctx.Broadcast(proto.Color{Value: nd.color}.Wire())
}

// parentColor extracts the color sent by nd's parent this round, if any.
func (nd *node) parentColor(inbox []congest.Message) (uint64, bool) {
	if nd.parent < 0 {
		return 0, false
	}
	for _, m := range inbox {
		if m.From == nd.parent {
			if c, ok := proto.AsColor(m.Wire); ok {
				return c.Value, true
			}
		}
	}
	return 0, false
}

func (nd *node) Round(ctx *congest.Context, inbox []congest.Message) {
	t := nd.total
	r := ctx.Round()
	switch {
	case r <= t:
		nd.reduceStep(ctx, inbox)
	case r <= t+6:
		step := r - t - 1 // 0..5: three (shift, recolor) pairs
		if step%2 == 0 {
			nd.shiftDown(ctx, inbox)
		} else {
			nd.recolor(ctx, inbox, uint64(5-step/2)) // eliminate colors 5,4,3
		}
	case r <= t+12:
		step := r - t - 7 // 0..5: three (join, absorb) pairs
		if step%2 == 0 {
			nd.joinTurn(ctx, uint64(step/2))
		} else {
			nd.absorbJoins(ctx, inbox, r == t+12)
		}
	}
}

// reduceStep performs one Cole-Vishkin iteration: find the lowest bit where
// my color differs from my parent's, and adopt 2*index + myBit. Roots use a
// fictive parent differing at bit 0.
func (nd *node) reduceStep(ctx *congest.Context, inbox []congest.Message) {
	pc, ok := nd.parentColor(inbox)
	if !ok {
		pc = nd.color ^ 1
	}
	diff := nd.color ^ pc
	i := uint64(bits.TrailingZeros64(diff))
	b := (nd.color >> i) & 1
	nd.color = 2*i + b
	ctx.Broadcast(proto.Color{Value: nd.color}.Wire())
}

// shiftDown makes each vertex adopt its parent's color (roots rotate),
// which leaves every vertex's children monochromatic — the precondition
// for safe parallel recoloring.
func (nd *node) shiftDown(ctx *congest.Context, inbox []congest.Message) {
	nd.preShift = nd.color
	if pc, ok := nd.parentColor(inbox); ok {
		nd.color = pc
	} else {
		// Roots pick the smallest color in {0,1,2} different from their
		// own. Rotating within all six colors would risk reintroducing a
		// color a previous recolor pass already eliminated.
		if nd.color == 0 {
			nd.color = 1
		} else {
			nd.color = 0
		}
	}
	ctx.Broadcast(proto.Color{Value: nd.color}.Wire())
}

// recolor moves every vertex of color c into {0,1,2}, avoiding its parent's
// color and its children's (uniform, = preShift) color.
func (nd *node) recolor(ctx *congest.Context, inbox []congest.Message, c uint64) {
	if nd.color == c {
		pc, hasParent := nd.parentColor(inbox)
		for candidate := uint64(0); candidate < 3; candidate++ {
			if hasParent && candidate == pc {
				continue
			}
			if candidate == nd.preShift {
				continue
			}
			nd.color = candidate
			break
		}
	}
	ctx.Broadcast(proto.Color{Value: nd.color}.Wire())
}

// joinTurn lets color class c join the MIS (if not already dominated).
func (nd *node) joinTurn(ctx *congest.Context, c uint64) {
	if nd.status == base.StatusActive && nd.color == c {
		nd.status = base.StatusInMIS
		ctx.Broadcast(proto.Flag{Kind: proto.KindJoined}.Wire())
	}
}

// absorbJoins marks nodes dominated by a freshly joined neighbor; on the
// final sweep everyone halts.
func (nd *node) absorbJoins(ctx *congest.Context, inbox []congest.Message, last bool) {
	if nd.status == base.StatusActive {
		for _, m := range inbox {
			if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindJoined {
				nd.status = base.StatusDominated
				break
			}
		}
	}
	if last {
		ctx.Halt()
	}
}

// ExportState packs the node's observable output (its status) for the
// distributed driver's cross-process state transfer (congest.Porter).
func (nd *node) ExportState() uint64 { return uint64(nd.status) }

// ImportState restores a status packed by ExportState.
func (nd *node) ImportState(x uint64) { nd.status = base.Status(x) }
