package colevishkin

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/rng"
)

// rootedParents builds a parent map for a forest by BFS from the smallest
// vertex of each component.
func rootedParents(g *graph.Graph) []int {
	parent := make([]int, g.N())
	for v := range parent {
		parent[v] = -2 // unvisited
	}
	for s := 0; s < g.N(); s++ {
		if parent[s] != -2 {
			continue
		}
		parent[s] = -1
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if parent[w] == -2 {
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
	}
	return parent
}

func forests(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	r := rng.New(77)
	return map[string]*graph.Graph{
		"path":        gen.Path(100),
		"star":        gen.Star(64),
		"binary":      gen.CompleteBinaryTree(127),
		"caterpillar": gen.Caterpillar(20, 5),
		"random":      gen.RandomTree(500, r.Split(1)),
		"forest":      gen.RandomForest(300, 9, r.Split(2)),
		"single":      graph.MustNew(1, nil),
		"isolated":    graph.MustNew(8, nil),
		"two":         graph.MustNew(2, []graph.Edge{{U: 0, V: 1}}),
	}
}

func TestProducesMISOnForests(t *testing.T) {
	for name, g := range forests(t) {
		t.Run(name, func(t *testing.T) {
			statuses, _, err := Run(g, rootedParents(g), congest.Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := base.VerifyStatuses(g, statuses); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDeterministic(t *testing.T) {
	// Cole-Vishkin uses no randomness: any two runs agree exactly.
	g := gen.RandomTree(200, rng.New(3))
	p := rootedParents(g)
	a, _, err := Run(g, p, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(g, p, congest.Options{Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d differs across seeds (algorithm should be deterministic)", v)
		}
	}
}

func TestColorsAreProper3Coloring(t *testing.T) {
	for name, g := range forests(t) {
		t.Run(name, func(t *testing.T) {
			colors, _, err := Colors(g, rootedParents(g), congest.Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < g.N(); v++ {
				if colors[v] > 2 {
					t.Fatalf("node %d has color %d", v, colors[v])
				}
				for _, w := range g.Neighbors(v) {
					if colors[v] == colors[w] {
						t.Fatalf("edge (%d,%d) monochromatic with color %d", v, w, colors[v])
					}
				}
			}
		})
	}
}

func TestRoundsAreLogStar(t *testing.T) {
	// The total schedule is ReductionRounds(n) + 12; check both that the
	// engine agrees and that it grows like log*: doubling n adds at most
	// one round across this whole range.
	prev := 0
	for _, n := range []int{10, 100, 1000, 10000, 100000} {
		g := gen.Path(n)
		_, res, err := Run(g, rootedParents(g), congest.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := ReductionRounds(n) + 12
		if res.Rounds != want {
			t.Fatalf("n=%d: %d rounds, schedule says %d", n, res.Rounds, want)
		}
		if prev > 0 && res.Rounds > prev+1 {
			t.Fatalf("rounds jumped from %d to %d on 10x n", prev, res.Rounds)
		}
		prev = res.Rounds
	}
}

func TestReductionRounds(t *testing.T) {
	if ReductionRounds(1) != 0 || ReductionRounds(6) != 0 {
		t.Fatal("tiny n should need 0 reductions")
	}
	if ReductionRounds(7) < 1 {
		t.Fatal("7 colors need at least one reduction")
	}
	// Monotone-ish sanity and log* scale: even astronomically large n
	// needs only a handful of iterations.
	if r := ReductionRounds(1 << 30); r > 6 {
		t.Fatalf("ReductionRounds(2^30) = %d", r)
	}
}

func TestValidateRejectsNonForest(t *testing.T) {
	g := gen.Cycle(5)
	parent := []int{-1, 0, 1, 2, 3}
	if _, _, err := Run(g, parent, congest.Options{Seed: 1}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestValidateRejectsBadParentMap(t *testing.T) {
	g := gen.Path(4)
	cases := [][]int{
		{-1, 0, 1},     // wrong length
		{-1, 3, 1, 2},  // parent link not an edge
		{-1, 1, 1, 2},  // self-parent
		{-1, -1, 1, 2}, // missing a link (covers 2 edges, graph has 3)
		{-1, 0, 1, 9},  // out of range
	}
	for i, p := range cases {
		if _, _, err := Run(g, p, congest.Options{Seed: 1}); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestParallelDriverIdentical(t *testing.T) {
	g := gen.RandomTree(300, rng.New(4))
	p := rootedParents(g)
	seq, seqRes, err := Run(g, p, congest.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	par, parRes, err := Run(g, p, congest.Options{Seed: 2, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seqRes != parRes {
		t.Fatalf("stats differ: %+v vs %+v", seqRes, parRes)
	}
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatalf("node %d differs", v)
		}
	}
}

func TestMessageBitsBounded(t *testing.T) {
	g := gen.RandomTree(1000, rng.New(5))
	_, res, err := Run(g, rootedParents(g), congest.Options{Seed: 1, MessageBitLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMessageBits > 64 {
		t.Fatalf("max bits %d", res.MaxMessageBits)
	}
}

func TestDeepPathColoringEveryN(t *testing.T) {
	// Paths of many lengths, catching off-by-one issues in the schedule.
	for n := 1; n <= 64; n++ {
		g := gen.Path(n)
		statuses, _, err := Run(g, rootedParents(g), congest.Options{Seed: 1})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := base.VerifyStatuses(g, statuses); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}
