package metivier

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/rng"
)

func TestProducesMISOnFamilies(t *testing.T) {
	r := rng.New(1)
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(50)},
		{"cycle", gen.Cycle(51)},
		{"star", gen.Star(40)},
		{"tree", gen.RandomTree(300, r.Split(1))},
		{"grid", gen.Grid(12, 12)},
		{"gnp", gen.GNP(150, 0.1, r.Split(2))},
		{"union3", gen.UnionOfTrees(200, 3, r.Split(3))},
		{"isolated", graph.MustNew(10, nil)},
		{"k1", graph.MustNew(1, nil)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			statuses, _, err := Run(c.g, congest.Options{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if err := base.VerifyStatuses(c.g, statuses); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestManySeeds(t *testing.T) {
	g := gen.UnionOfTrees(100, 2, rng.New(5))
	for seed := uint64(0); seed < 25; seed++ {
		statuses, _, err := Run(g, congest.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := base.VerifyStatuses(g, statuses); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestParallelDriverIdentical(t *testing.T) {
	g := gen.RandomTree(200, rng.New(9))
	seq, seqRes, err := Run(g, congest.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	par, parRes, err := Run(g, congest.Options{Seed: 7, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seqRes != parRes {
		t.Fatalf("run stats differ: %+v vs %+v", seqRes, parRes)
	}
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatalf("node %d: sequential %v, parallel %v", v, seq[v], par[v])
		}
	}
}

func TestIsolatedVertexJoinsImmediately(t *testing.T) {
	g := graph.MustNew(3, nil)
	statuses, res, err := Run(g, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range statuses {
		if s != base.StatusInMIS {
			t.Fatalf("isolated node %d status %v", v, s)
		}
	}
	if res.Rounds != 1 {
		t.Fatalf("isolated vertices took %d rounds", res.Rounds)
	}
}

func TestCompleteGraphPicksExactlyOne(t *testing.T) {
	var edges []graph.Edge
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	g := graph.MustNew(20, edges)
	for seed := uint64(0); seed < 10; seed++ {
		statuses, _, err := Run(g, congest.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if got := graph.SetSize(base.MISSet(statuses)); got != 1 {
			t.Fatalf("K20 MIS size %d", got)
		}
	}
}

func TestMessageSizesAreConstant(t *testing.T) {
	g := gen.RandomTree(100, rng.New(2))
	_, res, err := Run(g, congest.Options{Seed: 3, MessageBitLimit: 65})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMessageBits > 65 {
		t.Fatalf("max message bits %d", res.MaxMessageBits)
	}
}

func TestRoundsLogarithmic(t *testing.T) {
	// Sanity bound: O(log n) whp with a generous constant. 3 engine rounds
	// per iteration, so 3 * 8 * log2(n) is comfortably above the whp bound.
	g := gen.GNP(500, 0.05, rng.New(4))
	_, res, err := Run(g, congest.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 3*8*10 { // log2(500) < 10
		t.Fatalf("took %d rounds", res.Rounds)
	}
}

func TestStatusesCompleteOnEveryNode(t *testing.T) {
	g := gen.Caterpillar(20, 4)
	statuses, _, err := Run(g, congest.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range statuses {
		if s != base.StatusInMIS && s != base.StatusDominated {
			t.Fatalf("node %d unresolved: %v", v, s)
		}
	}
}
