// Package metivier implements the randomized MIS algorithm of Métivier,
// Robson, Saheb-Djahromi and Zemmari (SIROCCO 2009): in each iteration every
// still-active node draws a uniform priority and joins the MIS if its
// priority beats every active neighbor's. The paper under reproduction
// calls this "the algorithm that does all the important hard work" inside
// the tree/bounded-arboricity MIS algorithms; it terminates in O(log n)
// rounds with high probability.
//
// Each iteration costs three CONGEST rounds:
//
//	phase 0: process removal announcements, broadcast a fresh priority
//	phase 1: compare priorities; local maxima broadcast "joined" and halt
//	phase 2: nodes with a joined neighbor broadcast "removed" and halt
//
// Priorities are 64 random bits with ties broken by node ID, an O(log n)-
// bit stand-in for the uniform reals of the analysis.
package metivier

import (
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/proto"
)

// node is the per-vertex state machine.
type node struct {
	status   base.Status
	priority uint64
}

// Status implements base.Membership.
func (nd *node) Status() base.Status { return nd.status }

// New returns a factory for Métivier MIS nodes, for use with
// congest.NewRunner.
func New() func(v int) congest.Node {
	return func(int) congest.Node {
		return &node{status: base.StatusActive}
	}
}

// Run executes the algorithm on g and returns the per-node statuses and
// run statistics.
func Run(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error) {
	r := congest.NewRunner(g, New(), opts)
	res, err := r.Run()
	if err != nil {
		return nil, res, err
	}
	return base.Statuses(r, g.N()), res, nil
}

func (nd *node) Init(ctx *congest.Context) {
	nd.startIteration(ctx)
}

// startIteration draws and broadcasts a fresh priority (phase 0's send).
func (nd *node) startIteration(ctx *congest.Context) {
	nd.priority = ctx.RNG().Uint64()
	ctx.Broadcast(proto.Priority{Value: nd.priority, Competitive: true}.Wire())
}

func (nd *node) Round(ctx *congest.Context, inbox []congest.Message) {
	switch ctx.Round() % 3 {
	case 1: // phase 1: priorities arrived; am I the local maximum?
		if nd.winsAgainst(ctx.ID(), inbox) {
			nd.status = base.StatusInMIS
			ctx.Emit(int32(proto.KindJoined), int64(ctx.Round()/3))
			ctx.Broadcast(proto.Flag{Kind: proto.KindJoined}.Wire())
			ctx.Halt()
		}
	case 2: // phase 2: join announcements arrived.
		for _, m := range inbox {
			if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindJoined {
				nd.status = base.StatusDominated
				ctx.Emit(int32(proto.KindRemoved), int64(ctx.Round()/3))
				ctx.Broadcast(proto.Flag{Kind: proto.KindRemoved}.Wire())
				ctx.Halt()
				return
			}
		}
	case 0: // phase 0 of the next iteration: removals arrived; go again.
		nd.startIteration(ctx)
	}
}

// winsAgainst reports whether this node's (priority, ID) pair beats every
// priority in the inbox. A node with no active neighbors wins trivially.
func (nd *node) winsAgainst(id int, inbox []congest.Message) bool {
	for _, m := range inbox {
		p, ok := proto.AsPriority(m.Wire)
		if !ok {
			continue
		}
		if p.Value > nd.priority || (p.Value == nd.priority && m.From > id) {
			return false
		}
	}
	return true
}

// ExportState packs the node's observable output (its status) for the
// distributed driver's cross-process state transfer (congest.Porter).
func (nd *node) ExportState() uint64 { return uint64(nd.status) }

// ImportState restores a status packed by ExportState.
func (nd *node) ImportState(x uint64) { nd.status = base.Status(x) }
