package proto

import (
	"math/rand"
	"testing"

	"repro/internal/congest"
)

func TestBitsArePositiveAndSmall(t *testing.T) {
	// Every payload must report a positive size bounded by a constant
	// multiple of an O(log n) word — the CONGEST requirement.
	payloads := []interface{ Bits() int }{
		Priority{}, Flag{}, Degree{}, Desire{}, Color{}, Level{}, ForestEdge{},
	}
	for _, p := range payloads {
		if b := p.Bits(); b <= 0 || b > 128 {
			t.Errorf("%T.Bits() = %d", p, b)
		}
	}
}

func TestKindZeroValueInvalid(t *testing.T) {
	// Kinds start at 1 so the zero value signals a forgotten field.
	if KindJoined == 0 || KindRemoved == 0 || KindMarked == 0 || KindLeader == 0 {
		t.Fatal("a Kind constant is zero")
	}
}

func TestKindsDistinct(t *testing.T) {
	kinds := []Kind{KindJoined, KindRemoved, KindMarked, KindLeader}
	seen := map[Kind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate kind %d", k)
		}
		seen[k] = true
	}
}

// wireCodecs enumerates every payload codec in the package once, so the
// round-trip and collision tests below fail to compile when a payload is
// added without being registered here.
func wireKinds() []congest.WireKind {
	return []congest.WireKind{
		WirePriority, WireEpochPriority, WireFlag, WireDegree,
		WireDesire, WireColor, WireLevel, WireForestEdge,
	}
}

// TestWireRoundTrip is the codec property test: for many randomized field
// values, every payload must survive encode→decode with identical fields,
// and its Wire record must carry the same bit size Bits() reports.
func TestWireRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		{
			p := Priority{Value: r.Uint64(), Competitive: r.Intn(2) == 0}
			w := p.Wire()
			got, ok := AsPriority(w)
			if !ok || got != p {
				t.Fatalf("Priority %+v round-tripped to %+v (ok=%v)", p, got, ok)
			}
			if int(w.Bits) != p.Bits() {
				t.Fatalf("Priority wire bits %d != Bits() %d", w.Bits, p.Bits())
			}
		}
		{
			p := EpochPriority{Value: r.Uint64(), Epoch: int32(r.Uint32())}
			w := p.Wire()
			got, ok := AsEpochPriority(w)
			if !ok || got != p {
				t.Fatalf("EpochPriority %+v round-tripped to %+v (ok=%v)", p, got, ok)
			}
			if int(w.Bits) != p.Bits() {
				t.Fatalf("EpochPriority wire bits %d != Bits() %d", w.Bits, p.Bits())
			}
		}
		{
			p := Flag{Kind: Kind(r.Intn(256))}
			w := p.Wire()
			got, ok := AsFlag(w)
			if !ok || got != p {
				t.Fatalf("Flag %+v round-tripped to %+v (ok=%v)", p, got, ok)
			}
			if int(w.Bits) != p.Bits() {
				t.Fatalf("Flag wire bits %d != Bits() %d", w.Bits, p.Bits())
			}
		}
		{
			p := Degree{Value: int32(r.Uint32())}
			w := p.Wire()
			got, ok := AsDegree(w)
			if !ok || got != p {
				t.Fatalf("Degree %+v round-tripped to %+v (ok=%v)", p, got, ok)
			}
			if int(w.Bits) != p.Bits() {
				t.Fatalf("Degree wire bits %d != Bits() %d", w.Bits, p.Bits())
			}
		}
		{
			p := Desire{P30: r.Uint32()}
			w := p.Wire()
			got, ok := AsDesire(w)
			if !ok || got != p {
				t.Fatalf("Desire %+v round-tripped to %+v (ok=%v)", p, got, ok)
			}
			if int(w.Bits) != p.Bits() {
				t.Fatalf("Desire wire bits %d != Bits() %d", w.Bits, p.Bits())
			}
		}
		{
			p := Color{Value: r.Uint64()}
			w := p.Wire()
			got, ok := AsColor(w)
			if !ok || got != p {
				t.Fatalf("Color %+v round-tripped to %+v (ok=%v)", p, got, ok)
			}
			if int(w.Bits) != p.Bits() {
				t.Fatalf("Color wire bits %d != Bits() %d", w.Bits, p.Bits())
			}
		}
		{
			p := Level{Value: int32(r.Uint32())}
			w := p.Wire()
			got, ok := AsLevel(w)
			if !ok || got != p {
				t.Fatalf("Level %+v round-tripped to %+v (ok=%v)", p, got, ok)
			}
			if int(w.Bits) != p.Bits() {
				t.Fatalf("Level wire bits %d != Bits() %d", w.Bits, p.Bits())
			}
		}
		{
			p := ForestEdge{Forest: int32(r.Uint32())}
			w := p.Wire()
			got, ok := AsForestEdge(w)
			if !ok || got != p {
				t.Fatalf("ForestEdge %+v round-tripped to %+v (ok=%v)", p, got, ok)
			}
			if int(w.Bits) != p.Bits() {
				t.Fatalf("ForestEdge wire bits %d != Bits() %d", w.Bits, p.Bits())
			}
		}
	}
}

// TestWireKindsDistinctAndNonzero is the exhaustive kind-tag collision
// check: every wire kind in the package is distinct and none is the
// invalid zero tag.
func TestWireKindsDistinctAndNonzero(t *testing.T) {
	seen := map[congest.WireKind]bool{}
	for _, k := range wireKinds() {
		if k == 0 {
			t.Fatalf("wire kind %d is the invalid zero tag", k)
		}
		if seen[k] {
			t.Fatalf("wire kind %d assigned twice", k)
		}
		seen[k] = true
	}
	if len(seen) != 8 {
		t.Fatalf("expected 8 wire kinds, saw %d", len(seen))
	}
}

// TestWireDecodersRejectForeignKinds checks every decoder returns ok=false
// for every wire kind it does not own — the moral equivalent of a failed
// type assertion — including the zero Wire and an out-of-range tag.
func TestWireDecodersRejectForeignKinds(t *testing.T) {
	decoders := map[congest.WireKind]func(congest.Wire) bool{
		WirePriority:      func(w congest.Wire) bool { _, ok := AsPriority(w); return ok },
		WireEpochPriority: func(w congest.Wire) bool { _, ok := AsEpochPriority(w); return ok },
		WireFlag:          func(w congest.Wire) bool { _, ok := AsFlag(w); return ok },
		WireDegree:        func(w congest.Wire) bool { _, ok := AsDegree(w); return ok },
		WireDesire:        func(w congest.Wire) bool { _, ok := AsDesire(w); return ok },
		WireColor:         func(w congest.Wire) bool { _, ok := AsColor(w); return ok },
		WireLevel:         func(w congest.Wire) bool { _, ok := AsLevel(w); return ok },
		WireForestEdge:    func(w congest.Wire) bool { _, ok := AsForestEdge(w); return ok },
	}
	probes := append(wireKinds(), 0, 99)
	for own, dec := range decoders {
		for _, k := range probes {
			if got := dec(congest.Wire{Kind: k}); got != (k == own) {
				t.Fatalf("decoder for kind %d accepted=%v on kind %d", own, got, k)
			}
		}
	}
}
