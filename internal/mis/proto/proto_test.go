package proto

import "testing"

func TestBitsArePositiveAndSmall(t *testing.T) {
	// Every payload must report a positive size bounded by a constant
	// multiple of an O(log n) word — the CONGEST requirement.
	payloads := []interface{ Bits() int }{
		Priority{}, Flag{}, Degree{}, Desire{}, Color{}, Level{}, ForestEdge{},
	}
	for _, p := range payloads {
		if b := p.Bits(); b <= 0 || b > 128 {
			t.Errorf("%T.Bits() = %d", p, b)
		}
	}
}

func TestKindZeroValueInvalid(t *testing.T) {
	// Kinds start at 1 so the zero value signals a forgotten field.
	if KindJoined == 0 || KindRemoved == 0 || KindMarked == 0 || KindLeader == 0 {
		t.Fatal("a Kind constant is zero")
	}
}

func TestKindsDistinct(t *testing.T) {
	kinds := []Kind{KindJoined, KindRemoved, KindMarked, KindLeader}
	seen := map[Kind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate kind %d", k)
		}
		seen[k] = true
	}
}
