// Package proto defines the small message payloads shared by the MIS
// algorithms in this repository. Every payload reports its size in bits so
// the CONGEST engine can audit the O(log n) message-size guarantee; sizes
// are honest upper bounds for an encoding a real implementation would use.
package proto

// Priority carries one round's random priority. The analysis treats
// priorities as uniform reals in (0,1); operationally 64 random bits give a
// collision probability ~2⁻⁶⁴ per pair per round (ties are additionally
// broken by sender ID at the receiver), and 64 = O(log n) bits for every
// feasible n. Competitive == false encodes the paper's deterministic
// r(v) ← 0 for high-degree nodes (ρₖ opt-out).
type Priority struct {
	Value       uint64
	Competitive bool
}

// Bits reports the payload size: 64 priority bits plus one compete flag.
func (Priority) Bits() int { return 65 }

// EpochPriority is a Priority tagged with the iteration that drew it.
// Fault-tolerant programs need the tag: under message delay a stale
// priority may surface rounds later, and using it in the wrong iteration
// would void the safety argument, so receivers discard mismatched epochs.
type EpochPriority struct {
	Value uint64
	// Epoch is the iteration index the priority belongs to.
	Epoch int32
}

// Bits reports the payload size: 64 priority bits plus a 32-bit epoch
// (an honest upper bound; epochs are O(log n) in any terminating run).
func (EpochPriority) Bits() int { return 96 }

// Kind enumerates the one-byte announcements the algorithms exchange.
type Kind uint8

// Announcement kinds. They start at 1 so the zero value is invalid and a
// forgotten initialization is caught by tests.
const (
	// KindJoined announces "I entered the MIS".
	KindJoined Kind = iota + 1
	// KindRemoved announces "I left the competition" (a neighbor joined, or
	// I was classified bad/deferred); receivers shrink their active sets.
	KindRemoved
	// KindMarked is Luby-A/Ghaffari's "I marked myself this round".
	KindMarked
	// KindLeader is used by component-gathering to announce a leader claim.
	KindLeader
	// KindPropose is a matching proposal (Israeli-Itai).
	KindPropose
	// KindAccept accepts a matching proposal.
	KindAccept
	// KindMatched announces "I am matched" (receivers drop the sender from
	// their active sets).
	KindMatched
)

// Flag is a one-byte announcement.
type Flag struct {
	Kind Kind
}

// Bits reports the payload size.
func (Flag) Bits() int { return 8 }

// Degree carries a vertex's current active degree (Algorithm 1 step 2(b)
// needs neighbors' degrees to count high-degree neighbors).
type Degree struct {
	Value int32
}

// Bits reports the payload size.
func (Degree) Bits() int { return 32 }

// Desire carries Ghaffari's desire-level p_v as a fixed-point fraction with
// 30 fractional bits — exact for the algorithm's dyadic values (p is always
// 2^-k, k ≤ 30).
type Desire struct {
	// P30 is the desire level scaled by 2^30.
	P30 uint32
}

// Bits reports the payload size.
func (Desire) Bits() int { return 32 }

// Color carries a Cole-Vishkin color (initially an O(log n)-bit ID,
// shrinking to 3 values).
type Color struct {
	Value uint64
}

// Bits reports the payload size.
func (Color) Bits() int { return 64 }

// Level carries an H-partition / forest-decomposition level index.
type Level struct {
	Value int32
}

// Bits reports the payload size.
func (Level) Bits() int { return 32 }

// ForestEdge tells a neighbor which forest index the sender assigned to
// the connecting edge in a forest decomposition.
type ForestEdge struct {
	Forest int32
}

// Bits reports the payload size.
func (ForestEdge) Bits() int { return 32 }
