// Package proto defines the small message payloads shared by the MIS
// algorithms in this repository. Every payload reports its size in bits so
// the CONGEST engine can audit the O(log n) message-size guarantee; sizes
// are honest upper bounds for an encoding a real implementation would use.
//
// Payloads travel the engine as value-typed congest.Wire records (kind tag
// + two 64-bit words + bit size) rather than boxed interface values, so
// the message hot path performs no heap allocation. Each payload type has
// a Wire() encoder, and each has a matching As* decoder that recovers the
// typed payload from a received Wire (returning ok=false on a kind
// mismatch, the moral equivalent of a failed type assertion). Encoding is
// lossless for every payload in this package.
package proto

import "repro/internal/congest"

// Priority carries one round's random priority. The analysis treats
// priorities as uniform reals in (0,1); operationally 64 random bits give a
// collision probability ~2⁻⁶⁴ per pair per round (ties are additionally
// broken by sender ID at the receiver), and 64 = O(log n) bits for every
// feasible n. Competitive == false encodes the paper's deterministic
// r(v) ← 0 for high-degree nodes (ρₖ opt-out).
type Priority struct {
	Value       uint64
	Competitive bool
}

// Bits reports the payload size: 64 priority bits plus one compete flag.
func (Priority) Bits() int { return 65 }

// EpochPriority is a Priority tagged with the iteration that drew it.
// Fault-tolerant programs need the tag: under message delay a stale
// priority may surface rounds later, and using it in the wrong iteration
// would void the safety argument, so receivers discard mismatched epochs.
type EpochPriority struct {
	Value uint64
	// Epoch is the iteration index the priority belongs to.
	Epoch int32
}

// Bits reports the payload size: 64 priority bits plus a 32-bit epoch
// (an honest upper bound; epochs are O(log n) in any terminating run).
func (EpochPriority) Bits() int { return 96 }

// Kind enumerates the one-byte announcements the algorithms exchange.
type Kind uint8

// Announcement kinds. They start at 1 so the zero value is invalid and a
// forgotten initialization is caught by tests.
const (
	// KindJoined announces "I entered the MIS".
	KindJoined Kind = iota + 1
	// KindRemoved announces "I left the competition" (a neighbor joined, or
	// I was classified bad/deferred); receivers shrink their active sets.
	KindRemoved
	// KindMarked is Luby-A/Ghaffari's "I marked myself this round".
	KindMarked
	// KindLeader is used by component-gathering to announce a leader claim.
	KindLeader
	// KindPropose is a matching proposal (Israeli-Itai).
	KindPropose
	// KindAccept accepts a matching proposal.
	KindAccept
	// KindMatched announces "I am matched" (receivers drop the sender from
	// their active sets).
	KindMatched
)

// Flag is a one-byte announcement.
type Flag struct {
	Kind Kind
}

// Bits reports the payload size.
func (Flag) Bits() int { return 8 }

// Degree carries a vertex's current active degree (Algorithm 1 step 2(b)
// needs neighbors' degrees to count high-degree neighbors).
type Degree struct {
	Value int32
}

// Bits reports the payload size.
func (Degree) Bits() int { return 32 }

// Desire carries Ghaffari's desire-level p_v as a fixed-point fraction with
// 30 fractional bits — exact for the algorithm's dyadic values (p is always
// 2^-k, k ≤ 30).
type Desire struct {
	// P30 is the desire level scaled by 2^30.
	P30 uint32
}

// Bits reports the payload size.
func (Desire) Bits() int { return 32 }

// Color carries a Cole-Vishkin color (initially an O(log n)-bit ID,
// shrinking to 3 values).
type Color struct {
	Value uint64
}

// Bits reports the payload size.
func (Color) Bits() int { return 64 }

// Level carries an H-partition / forest-decomposition level index.
type Level struct {
	Value int32
}

// Bits reports the payload size.
func (Level) Bits() int { return 32 }

// ForestEdge tells a neighbor which forest index the sender assigned to
// the connecting edge in a forest decomposition.
type ForestEdge struct {
	Forest int32
}

// Bits reports the payload size.
func (ForestEdge) Bits() int { return 32 }

// Wire kind tags for the payloads in this package. They start at 1 so the
// zero Wire (kind 0) is detectably invalid, mirroring the Kind convention
// above. The tags are part of the cross-driver determinism surface only in
// so far as programs branch on them; the engine never interprets them.
const (
	// WirePriority tags a Priority payload.
	WirePriority congest.WireKind = iota + 1
	// WireEpochPriority tags an EpochPriority payload.
	WireEpochPriority
	// WireFlag tags a Flag payload.
	WireFlag
	// WireDegree tags a Degree payload.
	WireDegree
	// WireDesire tags a Desire payload.
	WireDesire
	// WireColor tags a Color payload.
	WireColor
	// WireLevel tags a Level payload.
	WireLevel
	// WireForestEdge tags a ForestEdge payload.
	WireForestEdge
)

// KindName is the canonical registry of this package's wire-kind tags:
// it names every declared kind for trace tooling and test output, and
// returns "invalid" for anything outside the namespace. The switch is
// marked exhaustive, so adding a ninth payload kind without extending it
// is a misvet error — the compile-time reminder that a new kind also
// needs an encoder, a decoder, and a name.
func KindName(k congest.WireKind) string {
	//wirekind:exhaustive
	switch k {
	case WirePriority:
		return "priority"
	case WireEpochPriority:
		return "epoch-priority"
	case WireFlag:
		return "flag"
	case WireDegree:
		return "degree"
	case WireDesire:
		return "desire"
	case WireColor:
		return "color"
	case WireLevel:
		return "level"
	case WireForestEdge:
		return "forest-edge"
	default:
		return "invalid"
	}
}

// boolWord encodes a flag into a wire word.
func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Wire encodes the priority for the engine hot path.
func (p Priority) Wire() congest.Wire {
	return congest.Wire{Kind: WirePriority, Bits: 65, A: p.Value, B: boolWord(p.Competitive)}
}

// AsPriority decodes a Priority from a received wire payload.
func AsPriority(w congest.Wire) (Priority, bool) {
	if w.Kind != WirePriority {
		return Priority{}, false
	}
	return Priority{Value: w.A, Competitive: w.B != 0}, true
}

// Wire encodes the tagged priority for the engine hot path.
func (p EpochPriority) Wire() congest.Wire {
	return congest.Wire{Kind: WireEpochPriority, Bits: 96, A: p.Value, B: uint64(uint32(p.Epoch))}
}

// AsEpochPriority decodes an EpochPriority from a received wire payload.
func AsEpochPriority(w congest.Wire) (EpochPriority, bool) {
	if w.Kind != WireEpochPriority {
		return EpochPriority{}, false
	}
	return EpochPriority{Value: w.A, Epoch: int32(uint32(w.B))}, true
}

// Wire encodes the announcement for the engine hot path.
func (f Flag) Wire() congest.Wire {
	return congest.Wire{Kind: WireFlag, Bits: 8, A: uint64(f.Kind)}
}

// AsFlag decodes a Flag from a received wire payload.
func AsFlag(w congest.Wire) (Flag, bool) {
	if w.Kind != WireFlag {
		return Flag{}, false
	}
	return Flag{Kind: Kind(w.A)}, true
}

// Wire encodes the degree for the engine hot path.
func (d Degree) Wire() congest.Wire {
	return congest.Wire{Kind: WireDegree, Bits: 32, A: uint64(uint32(d.Value))}
}

// AsDegree decodes a Degree from a received wire payload.
func AsDegree(w congest.Wire) (Degree, bool) {
	if w.Kind != WireDegree {
		return Degree{}, false
	}
	return Degree{Value: int32(uint32(w.A))}, true
}

// Wire encodes the desire level for the engine hot path.
func (d Desire) Wire() congest.Wire {
	return congest.Wire{Kind: WireDesire, Bits: 32, A: uint64(d.P30)}
}

// AsDesire decodes a Desire from a received wire payload.
func AsDesire(w congest.Wire) (Desire, bool) {
	if w.Kind != WireDesire {
		return Desire{}, false
	}
	return Desire{P30: uint32(w.A)}, true
}

// Wire encodes the color for the engine hot path.
func (c Color) Wire() congest.Wire {
	return congest.Wire{Kind: WireColor, Bits: 64, A: c.Value}
}

// AsColor decodes a Color from a received wire payload.
func AsColor(w congest.Wire) (Color, bool) {
	if w.Kind != WireColor {
		return Color{}, false
	}
	return Color{Value: w.A}, true
}

// Wire encodes the level for the engine hot path.
func (l Level) Wire() congest.Wire {
	return congest.Wire{Kind: WireLevel, Bits: 32, A: uint64(uint32(l.Value))}
}

// AsLevel decodes a Level from a received wire payload.
func AsLevel(w congest.Wire) (Level, bool) {
	if w.Kind != WireLevel {
		return Level{}, false
	}
	return Level{Value: int32(uint32(w.A))}, true
}

// Wire encodes the forest index for the engine hot path.
func (f ForestEdge) Wire() congest.Wire {
	return congest.Wire{Kind: WireForestEdge, Bits: 32, A: uint64(uint32(f.Forest))}
}

// AsForestEdge decodes a ForestEdge from a received wire payload.
func AsForestEdge(w congest.Wire) (ForestEdge, bool) {
	if w.Kind != WireForestEdge {
		return ForestEdge{}, false
	}
	return ForestEdge{Forest: int32(uint32(w.A))}, true
}
