package ftmetivier_test

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/faultsim"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/ftmetivier"
	"repro/internal/mis/metivier"
	"repro/internal/rng"
)

// TestReliableNetworkMatchesMetivierOutput: with no faults, the
// conservative rule decides exactly like plain Métivier (the inbox then
// holds precisely the active neighbors' priorities), so the algorithm
// must produce a complete valid MIS.
func TestReliableNetworkMatchesMetivierOutput(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g := gen.UnionOfTrees(400, 2, rng.New(seed))
		st, res, err := ftmetivier.Run(g, congest.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := base.VerifyStatuses(g, st); err != nil {
			t.Fatalf("seed %d: clean run not a valid MIS: %v", seed, err)
		}
		// Same priority draws, same decisions: plain Métivier on the same
		// seed must agree on the output set.
		mst, mres, err := metivier.Run(g, congest.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for v := range st {
			if (st[v] == base.StatusInMIS) != (mst[v] == base.StatusInMIS) {
				t.Fatalf("seed %d: node %d decided differently from plain Métivier", seed, v)
			}
		}
		if res.Rounds != mres.Rounds {
			t.Fatalf("seed %d: %d rounds vs Métivier's %d", seed, res.Rounds, mres.Rounds)
		}
	}
}

// checkSafety runs one faulted configuration and asserts independence.
func checkSafety(t *testing.T, label string, g *graph.Graph, opts congest.Options) *faultsim.Report {
	t.Helper()
	st, res, err := ftmetivier.Run(g, opts)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	crashed := faultsim.CrashedAt(opts.Faults, res.Rounds+1, g.N())
	rep, err := faultsim.Check(g, base.MISSet(st), crashed)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !rep.Safe() {
		t.Fatalf("%s: independence violated: %v", label, rep.Violations)
	}
	return rep
}

// TestSafetyUnderHeavyLoss hammers the algorithm with aggressive drop
// rates across many seeds; independence must hold in every single run
// (this is the property plain Métivier fails — see experiment A4).
func TestSafetyUnderHeavyLoss(t *testing.T) {
	for _, p := range []float64{0.05, 0.2, 0.5} {
		for seed := uint64(0); seed < 8; seed++ {
			g := gen.UnionOfTrees(300, 2, rng.New(100+seed))
			checkSafety(t, "drop", g, congest.Options{
				Seed:   seed,
				Faults: faultsim.BernoulliDrop{P: p},
			})
		}
	}
}

// TestSafetyUnderCrashAndPartition exercises the vertex-fault and
// structured-loss plans, composed.
func TestSafetyUnderCrashAndPartition(t *testing.T) {
	n := 300
	for seed := uint64(0); seed < 6; seed++ {
		g := gen.UnionOfTrees(n, 3, rng.New(200+seed))
		side := make([]bool, n)
		for v := range side {
			side[v] = v%2 == 0
		}
		plan := faultsim.Compose(
			faultsim.BernoulliDrop{P: 0.05},
			faultsim.NewPartition(side, 4, 16),
			faultsim.NewCrashRestart(map[int]faultsim.Window{
				3:  {Down: 2, Up: 11},
				77: {Down: 5, Up: 0},
			}),
			faultsim.NewCrashStop(faultsim.SpreadCrashes(n, 10, 6, 9)),
		)
		rep := checkSafety(t, "composed", g, congest.Options{Seed: seed, Faults: plan})
		if rep.Crashed == 0 {
			t.Fatal("crash plan had no victims")
		}
	}
}

// TestDelayDegradesLivenessNotSafety: uniform delay makes every priority
// stale, so (almost) nobody can gather current-epoch evidence — coverage
// collapses but the output stays independent and the run still
// terminates at the iteration budget.
func TestDelayDegradesLivenessNotSafety(t *testing.T) {
	g := gen.UnionOfTrees(200, 2, rng.New(5))
	st, res, err := ftmetivier.RunBudget(g, 8, congest.Options{
		Seed:   5,
		Faults: faultsim.DelayK{K: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := faultsim.Check(g, base.MISSet(st), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe() {
		t.Fatalf("independence violated under delay: %v", rep.Violations)
	}
	if rep.Coverage() > 0.5 {
		t.Fatalf("coverage %.2f under uniform delay; expected a liveness collapse", rep.Coverage())
	}
	if res.Rounds > 3*8+3 {
		t.Fatalf("run of %d rounds exceeded the iteration budget", res.Rounds)
	}
}

// TestBudgetTerminatesStalledRuns: a crash-stopped hub blocks its
// neighbors forever; they must give up at the budget instead of hitting
// MaxRounds.
func TestBudgetTerminatesStalledRuns(t *testing.T) {
	g := gen.Star(50)
	st, res, err := ftmetivier.RunBudget(g, 10, congest.Options{
		Seed:   1,
		Faults: faultsim.NewCrashStop(map[int]int{0: 1}), // kill the hub
	})
	if err != nil {
		t.Fatalf("stalled region must drain at the budget, got %v", err)
	}
	if res.Rounds > 33 {
		t.Fatalf("%d rounds for a 10-iteration budget", res.Rounds)
	}
	// The hub's Init broadcast (round 0 always runs) gives every leaf its
	// epoch-0 priority, so leaves that beat the dead hub still join.
	// Leaves that lost epoch 0 can never gather hub evidence again: they
	// must end undecided — never dominated, since the hub never joined.
	joined, undecided := 0, 0
	for v := 1; v < g.N(); v++ {
		switch st[v] {
		case base.StatusInMIS:
			joined++
		case base.StatusActive:
			undecided++
		default:
			t.Fatalf("leaf %d ended %v; the dead hub cannot dominate anyone", v, st[v])
		}
	}
	if joined == 0 || undecided == 0 {
		t.Fatalf("joined=%d undecided=%d: expected an epoch-0 split against the dead hub", joined, undecided)
	}
}

func TestStatusVocabulary(t *testing.T) {
	g := gen.Path(4)
	st, _, err := ftmetivier.Run(g, congest.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range st {
		switch s {
		case base.StatusInMIS, base.StatusDominated:
		default:
			t.Fatalf("clean run left node %d as %v", v, s)
		}
	}
}
