// Package ftmetivier implements a fault-tolerant variant of the Métivier
// et al. priority MIS algorithm, designed so that *safety survives any
// omission-style fault* the faultsim plans can inject — message loss
// (Bernoulli, link bursts, partitions), delivery delay, and vertex
// crash-stop/crash-restart — while liveness degrades gracefully instead
// of silently corrupting the output.
//
// The plain Métivier rule ("join if my priority beats every priority in
// this round's inbox") is unsafe under loss: if the two priority messages
// crossing an edge are both dropped, both endpoints can join, violating
// independence (experiment A4 measures exactly this). The variant here
// hardens the rule to be *conservative*:
//
//	a node joins the MIS in iteration i only if it received an
//	iteration-i priority from EVERY neighbor it still believes active,
//	and its own priority beats all of them (ties by ID).
//
// Three mechanisms make this safe under the full fault model:
//
//  1. Positive evidence: a missing priority blocks joining rather than
//     being treated as absence of competition. Two adjacent joiners in the
//     same iteration would each have had to receive — and beat — the
//     other's priority, which the total (priority, ID) order forbids.
//  2. Epoch tags: priorities carry their iteration (proto.EpochPriority),
//     so a delayed priority surfacing rounds later is discarded instead of
//     competing in the wrong iteration.
//  3. Monotone active views: a node removes a neighbor from its active
//     view only on explicit evidence (a Joined/Removed announcement, which
//     is safe to act on however stale). A neighbor that halted into the
//     MIS but whose announcement was lost stays in the view forever,
//     blocking the node from joining — losing liveness, never safety.
//
// Crashed neighbors block their survivors the same way, so after a
// crash-stop the affected region simply stops deciding. Undecided nodes
// give up after MaxIters iterations and halt with StatusActive; the
// faultsim checker scores them as coverage loss. On a reliable network
// the algorithm makes exactly the decisions of plain Métivier (the inbox
// then contains precisely the active neighbors' priorities), at the same
// three-rounds-per-iteration cadence.
package ftmetivier

import (
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/proto"
)

// DefaultMaxIters bounds the iterations a node waits before giving up
// undecided. Métivier finishes in O(log n) iterations whp on a reliable
// network; the default leaves generous slack for fault-stalled regions to
// drain once a crash window closes.
const DefaultMaxIters = 64

// node is the per-vertex state machine.
type node struct {
	status   base.Status
	priority uint64
	epoch    int32
	active   *base.ActiveSet
	// got holds the priorities received for the current epoch.
	got      map[int]uint64
	maxIters int
}

// Status implements base.Membership.
func (nd *node) Status() base.Status { return nd.status }

// New returns a factory for fault-tolerant Métivier nodes with the given
// iteration budget (<= 0 means DefaultMaxIters), for use with
// congest.NewRunner.
func New(maxIters int) func(v int) congest.Node {
	if maxIters <= 0 {
		maxIters = DefaultMaxIters
	}
	return func(int) congest.Node {
		return &node{status: base.StatusActive, maxIters: maxIters}
	}
}

// Run executes the algorithm on g with the default iteration budget and
// returns the per-node statuses and run statistics. Unlike the plain
// algorithms, a faulted run may legitimately finish with StatusActive
// nodes — score the output with faultsim.Check, not base.VerifyStatuses.
func Run(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error) {
	return RunBudget(g, 0, opts)
}

// RunBudget is Run with an explicit per-node iteration budget.
func RunBudget(g *graph.Graph, maxIters int, opts congest.Options) ([]base.Status, congest.Result, error) {
	r := congest.NewRunner(g, New(maxIters), opts)
	res, err := r.Run()
	if err != nil {
		return nil, res, err
	}
	return base.Statuses(r, g.N()), res, nil
}

func (nd *node) Init(ctx *congest.Context) {
	nd.active = base.NewActiveSet(ctx.Neighbors())
	nd.got = make(map[int]uint64)
	nd.startEpoch(ctx, 0)
}

// startEpoch draws and broadcasts a fresh tagged priority.
func (nd *node) startEpoch(ctx *congest.Context, epoch int32) {
	nd.epoch = epoch
	nd.priority = ctx.RNG().Uint64()
	clear(nd.got)
	ctx.Broadcast(proto.EpochPriority{Value: nd.priority, Epoch: epoch}.Wire())
}

// Round follows Métivier's three-round cadence (priorities, joins,
// removals), but every announcement kind is handled in every round:
// under delay faults a Joined or Removed can surface in any phase, and
// both are safe to act on no matter how stale.
func (nd *node) Round(ctx *congest.Context, inbox []congest.Message) {
	for _, m := range inbox {
		switch m.Wire.Kind {
		case proto.WireEpochPriority:
			if p, _ := proto.AsEpochPriority(m.Wire); p.Epoch == nd.epoch {
				nd.got[m.From] = p.Value
			}
		case proto.WireFlag:
			p, _ := proto.AsFlag(m.Wire)
			switch p.Kind {
			case proto.KindJoined:
				// A neighbor is in the MIS: we are dominated, whenever we
				// learn it.
				nd.status = base.StatusDominated
				ctx.Emit(int32(proto.KindRemoved), int64(nd.epoch))
				ctx.Broadcast(proto.Flag{Kind: proto.KindRemoved}.Wire())
				ctx.Halt()
				return
			case proto.KindRemoved:
				nd.active.Remove(m.From)
			}
		}
	}
	switch ctx.Round() % 3 {
	case 1: // evaluation phase: do I hold positive evidence of winning?
		if nd.wins(ctx.ID()) {
			nd.status = base.StatusInMIS
			ctx.Emit(int32(proto.KindJoined), int64(nd.epoch))
			ctx.Broadcast(proto.Flag{Kind: proto.KindJoined}.Wire())
			ctx.Halt()
		}
	case 0: // next iteration: redraw, or give up undecided at the budget.
		next := nd.epoch + 1
		if int(next) >= nd.maxIters {
			ctx.Halt()
			return
		}
		nd.startEpoch(ctx, next)
	}
}

// wins reports whether this node received a current-epoch priority from
// every neighbor in its active view and beat them all (ties by ID). A
// node whose active view is empty wins trivially.
func (nd *node) wins(id int) bool {
	ok := true
	nd.active.Each(func(w int) {
		if !ok {
			return
		}
		p, heard := nd.got[w]
		if !heard || p > nd.priority || (p == nd.priority && w > id) {
			ok = false
		}
	})
	return ok
}

// ExportState packs the node's observable output (its status) for the
// distributed driver's cross-process state transfer (congest.Porter).
func (nd *node) ExportState() uint64 { return uint64(nd.status) }

// ImportState restores a status packed by ExportState.
func (nd *node) ImportState(x uint64) { nd.status = base.Status(x) }
